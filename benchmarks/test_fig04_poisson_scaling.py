"""Fig. 4 reproduction: Poisson Hex8 weak/strong scaling.

Benchmarks the HYMV SPMV kernel the figure times, and regenerates both
scaling tables, asserting the paper's shape claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_bench
from repro.harness.fig04 import run as run_fig04
from repro.problems import poisson_problem

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tables():
    return run_fig04("small")


def test_fig04_reproduction_shapes(tables, save_tables):
    save_tables("fig04", tables)
    weak_em, weak_mod, strong_em, strong_mod = tables

    # modeled tier, paper claims
    methods = np.array(weak_mod.column("method"))
    setup = np.array(weak_mod.column("setup_s"))
    spmv = np.array(weak_mod.column("spmv10_s"))
    h_set = setup[methods == "hymv"]
    p_set = setup[methods == "petsc"]
    m_spmv = spmv[methods == "matrix-free"]
    h_spmv = spmv[methods == "hymv"]
    p_spmv = spmv[methods == "petsc"]
    # HYMV setup flat in p (weak scaling)
    assert h_set.max() / h_set.min() < 1.05
    # PETSc setup ~10x HYMV at the largest run (band: 4-14x)
    assert 4.0 < p_set[-1] / h_set[-1] < 14.0
    # matrix-free SPMV far above both; HYMV comparable to PETSc
    assert (m_spmv > 3.0 * np.maximum(h_spmv, p_spmv)).all()
    assert 0.4 < (h_spmv / p_spmv).mean() < 2.5

    # strong scaling: all methods speed up with cores
    sm = np.array(strong_mod.column("method"))
    st = np.array(strong_mod.column("spmv10_s"))
    for m in ("hymv", "petsc", "matrix-free"):
        ts = st[sm == m]
        assert (np.diff(ts) < 0).all()

    # emulated tier: matrix-free SPMV dominates, HYMV setup flat-ish
    em = np.array(weak_em.column("method"))
    es = np.array(weak_em.column("setup_s"))
    ev = np.array(weak_em.column("spmv10_s"))
    assert (ev[em == "matfree"] > 3 * ev[em == "hymv"]).all()
    h = es[em == "hymv"]
    assert h.max() / h.min() < 3.0  # flat up to small-scale noise


def test_fig04_hymv_spmv_kernel(benchmark):
    spec = poisson_problem(12, 2)
    benchmark(lambda: run_bench(spec, "hymv", n_spmv=10).spmv_time)
