"""Benchmark-suite fixtures: result capture for the figure reproductions."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``benchmark`` marker."""
    here = pathlib.Path(__file__).parent
    for item in items:
        if here in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_tables(results_dir):
    """Write an experiment's tables to benchmarks/results/<name>.txt."""

    def _save(name: str, tables) -> None:
        from repro.util.tables import render_many

        (results_dir / f"{name}.txt").write_text(render_many(tables) + "\n")

    return _save
