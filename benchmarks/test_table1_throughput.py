"""Table I reproduction: flops, time and flop rate of ten SPMV."""

from __future__ import annotations

import pytest

from repro.harness.driver import run_bench
from repro.harness.table1 import PAPER_TABLE1, run as run_table1
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem


@pytest.fixture(scope="module")
def tables():
    return run_table1("small")


def test_table1_reproduction(tables, save_tables):
    save_tables("table1", tables)
    mod, em = tables

    rows = {(r[0], r[1], r[2]): r for r in mod.rows}
    for (gran, nodes), paper in PAPER_TABLE1.items():
        for m, (gflop_p, time_p, rate_p) in paper.items():
            _, _, _, gflop, _, t, _, rate, _ = rows[(gran, nodes, m)]
            # flop counts match the paper's within 40%
            assert abs(gflop / gflop_p - 1) < 0.45, (m, gran, nodes)
        # the orderings the paper reads off the table:
        t = {m: rows[(gran, nodes, m)][5] for m in paper}
        r = {m: rows[(gran, nodes, m)][7] for m in paper}
        assert r["matfree"] > r["hymv"] > r["assembled"]  # rates
        assert t["matfree"] > t["assembled"] > t["hymv_gpu"]  # times
        assert t["hymv"] < 1.05 * t["assembled"]  # HYMV lowest CPU time

    # emulated: flop ordering holds on the host, and matfree achieves the
    # highest measured rate (minimum memory traffic per flop)
    for p in (1, 2):
        sel = [row for row in em.rows if row[1] == p]
        by = {row[2]: row for row in sel}
        assert by["matfree"][3] > by["hymv"][3] > by["assembled"][3]
        assert by["matfree"][5] == max(row[5] for row in sel)


def test_table1_flop_rate_kernel(benchmark):
    spec = elastic_bar_problem(4, 1, ElementType.HEX20)
    benchmark(lambda: run_bench(spec, "hymv", n_spmv=10).gflops_rate)
