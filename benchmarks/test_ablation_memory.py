"""Ablation: memory footprint across the operator design space.

Quantifies the paper's §III trade-off ("storage can still be high" for
HYMV) including the partial-assembly extension point.
"""

from __future__ import annotations

import pytest

from repro.harness.driver import run_bench
from repro.harness.memory import run as run_memory
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem


@pytest.fixture(scope="module")
def tables(save_tables):
    t = run_memory("small")
    save_tables("ablation_memory", t)
    return t


def test_memory_orderings(tables):
    mod, em = tables
    rows = {(r[0], r[1]): r for r in mod.rows}
    for etype in ("hex8", "hex20", "hex27", "tet4", "tet10"):
        for op in ("Poisson", "Elasticity"):
            _, _, hymv, assembled, partial, matfree, _ = rows[(etype, op)]
            # matrix-free stores (almost) nothing
            assert matfree < 0.15 * min(hymv, assembled)
            # HYMV footprint is material (the paper's §III caveat)
            assert hymv > 100.0
    # partial assembly pays off exactly where the paper's use-cases live:
    # quadratic vector operators
    assert rows[("hex20", "Elasticity")][4] < 0.1 * rows[("hex20", "Elasticity")][2]
    # ... but NOT for low-order scalar operators (more q-data than Ke)
    assert rows[("hex8", "Poisson")][4] > rows[("hex8", "Poisson")][2] * 0.5

    # emulated measurements agree in ordering for the hex20 case
    m = {(r[0], r[1]): r[3] for r in em.rows}
    assert m[("elastic hex20", "partial")] < m[("elastic hex20", "hymv")]
    assert m[("elastic hex20", "matfree")] == 0.0


def test_hymv_vs_assembled_footprint_measured():
    spec = elastic_bar_problem(4, 2, ElementType.HEX20)
    hymv = run_bench(spec, "hymv", n_spmv=1)
    asm = run_bench(spec, "assembled", n_spmv=1)
    # same order of magnitude; neither dominates by 10x (paper §III:
    # "node-local storage ... higher than the matrix-assembled approach")
    ratio = hymv.stored_bytes / asm.stored_bytes
    assert 0.3 < ratio < 3.0


def test_memory_model_kernel(benchmark):
    from repro.harness.memory import _modeled_bytes_per_dof
    from repro.fem.operators import ElasticityOperator

    benchmark(
        lambda: _modeled_bytes_per_dof(ElementType.HEX20, ElasticityOperator())
    )
