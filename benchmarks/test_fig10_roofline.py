"""Fig. 10 reproduction: roofline placement of the three SPMV methods."""

from __future__ import annotations

import pytest

from repro.fem.operators import ElasticityOperator
from repro.harness.fig10 import run as run_fig10
from repro.mesh.element import ElementType
from repro.perfmodel.counters import advisor_counters
from repro.perfmodel.roofline import PAPER_ROOFLINE


@pytest.fixture(scope="module")
def tables():
    return run_fig10("small")


def test_fig10_reproduction_values(tables, save_tables):
    save_tables("fig10", tables)
    table, art = tables
    rows = {r[0]: r for r in table.rows}
    for method, (ai_p, gf_p) in PAPER_ROOFLINE.items():
        _, ai_m, ai_paper, gf_m, gf_paper, gf_host, _ = rows[method]
        assert ai_paper == ai_p and gf_paper == gf_p
        # model matches the paper within 10% / 5%
        assert abs(ai_m / ai_p - 1) < 0.10
        assert abs(gf_m / gf_p - 1) < 0.05
        assert gf_host > 0
    # the orderings the paper highlights
    assert rows["assembled"][1] > rows["hymv"][1]  # AI
    assert rows["matfree"][3] > rows["hymv"][3] > rows["assembled"][3]
    # host-measured ordering: matfree achieves the highest NumPy rate too
    assert rows["matfree"][5] > rows["assembled"][5]


def test_fig10_counter_kernel(benchmark):
    op = ElasticityOperator()
    benchmark(
        lambda: advisor_counters(
            "hymv", ElementType.HEX20, op, 1.0e5, 4.0e5
        ).arithmetic_intensity
    )
