"""Fig. 8 reproduction: HYMV-GPU vs HYMV-CPU SPMV."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_bench
from repro.harness.fig08 import run as run_fig08
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem


@pytest.fixture(scope="module")
def tables():
    return run_fig08("small")


def test_fig08_reproduction_shapes(tables, save_tables):
    save_tables("fig08", tables)
    em, a, b = tables

    # (a) single node: speedup roughly constant, in the paper's band
    speedups = np.array(a.column("speedup"))
    assert (speedups > 4.0).all() and (speedups < 11.0).all()
    assert speedups[-1] / speedups[0] < 2.0  # "approximately constant"
    # GPU setup slightly above CPU setup at every size
    cpu_su = np.array(a.column("cpu_setup_s"))
    gpu_su = np.array(a.column("gpu_setup_s"))
    assert (gpu_su > cpu_su).all()
    assert (gpu_su < 1.6 * cpu_su).all()

    # (b) weak scaling: GPU ~7.5x; GPU/CPU(O) slower than GPU/GPU(O)
    cpu = np.array(b.column("cpu_spmv10_s"))
    gpu = np.array(b.column("gpu_spmv10_s"))
    gco = np.array(b.column("gpu_cpu_ovl_s"))
    ggo = np.array(b.column("gpu_gpu_ovl_s"))
    # paper: ~7.5x; our 4-thread CPU model overshoots somewhat (see
    # EXPERIMENTS.md), so assert the order of magnitude
    assert (5.0 < cpu / gpu).all() and (cpu / gpu < 18.0).all()
    assert (gco >= ggo).all()
    # no notable difference between GPU and GPU/GPU(O) at this scale
    assert np.abs(gpu / ggo - 1.0).max() < 0.15

    # emulated tier: the simulated device produces real numbers with
    # modeled times that grow with problem size (the CPU-vs-GPU speedup
    # claim lives on the modeled tier above, where both sides are modeled)
    methods = np.array(em.column("method"))
    spmv = np.array(em.column("spmv10_s"))
    gpu_times = spmv[methods == "hymv_gpu"]
    assert (gpu_times > 0).all()
    assert gpu_times[-1] > gpu_times[0]


def test_fig08_gpu_operator_kernel(benchmark):
    spec = elastic_bar_problem(3, 2, ElementType.HEX20)
    benchmark(lambda: run_bench(spec, "hymv_gpu", n_spmv=10).spmv_time)
