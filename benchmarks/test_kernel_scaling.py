"""Throughput of the core kernels across batch sizes and element types.

Not a paper figure — engineering benchmarks that document how the NumPy
substrate behaves as local problems grow (the regime where HYMV's batched
dense sweeps amortize their per-call overhead).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import emv_einsum
from repro.fem.elemmat import elasticity_ke_batch, poisson_ke_batch
from repro.mesh import ElementType, box_hex_mesh
from repro.util.arrays import scatter_add


@pytest.mark.parametrize("batch", [100, 1000, 4000])
def test_emv_batch_scaling(benchmark, batch):
    rng = np.random.default_rng(0)
    ke = rng.standard_normal((batch, 24, 24))
    ue = rng.standard_normal((batch, 24))
    benchmark.extra_info["flops"] = 2 * batch * 24 * 24
    benchmark(emv_einsum, ke, ue)


@pytest.mark.parametrize(
    "etype", [ElementType.HEX8, ElementType.HEX20, ElementType.HEX27]
)
def test_poisson_ke_kernel(benchmark, etype):
    mesh = box_hex_mesh(6, 6, 6, etype)
    coords = mesh.coords[mesh.conn]
    benchmark(poisson_ke_batch, coords, etype)


def test_elasticity_ke_kernel(benchmark):
    mesh = box_hex_mesh(5, 5, 5, ElementType.HEX20)
    coords = mesh.coords[mesh.conn]
    benchmark(elasticity_ke_batch, coords, ElementType.HEX20, 1.0, 1.0)


def test_scatter_accumulate_kernel(benchmark):
    rng = np.random.default_rng(1)
    idx = rng.integers(0, 50_000, size=(8000, 24))
    vals = rng.standard_normal((8000, 24))
    out = np.zeros(50_000)

    def run():
        out[:] = 0.0
        scatter_add(out, idx, vals)

    benchmark(run)


def test_emv_rate_reasonable():
    """The batched EMV achieves at least ~0.5 GF/s on any host (sanity
    bound ensuring benchmarks time real work, not allocation)."""
    import time

    rng = np.random.default_rng(2)
    ke = rng.standard_normal((2000, 60, 60))
    ue = rng.standard_normal((2000, 60))
    emv_einsum(ke, ue)  # warm
    t0 = time.perf_counter()
    n = 5
    for _ in range(n):
        emv_einsum(ke, ue)
    dt = time.perf_counter() - t0
    rate = n * 2 * 2000 * 60 * 60 / dt / 1e9
    assert rate > 0.3
