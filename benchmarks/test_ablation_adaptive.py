"""Ablation: the adaptive-matrix property (XFEM enrichment use-case).

Sweeps the fraction of "cracked" elements and compares HYMV's incremental
update against the matrix-assembled approach's full reassembly — the
paper's motivating scenario (§I: "only the cracked elements are
recomputed; ... the entire global matrix must be reassembled").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AssembledOperator
from repro.core import HymvOperator
from repro.fem import ElasticityOperator
from repro.mesh import ElementType, box_hex_mesh
from repro.partition import build_partition
from repro.simmpi import run_spmd
from repro.util.tables import ResultTable


def _update_costs(frac: float, nel: int = 6):
    mesh = box_hex_mesh(nel, nel, nel, ElementType.HEX20)
    part = build_partition(mesh, 2, method="slab")
    op = ElasticityOperator()
    k = max(1, int(frac * mesh.n_elements / 2))

    def prog(comm, lmesh):
        A = HymvOperator(comm, lmesh, op)
        t0 = comm.vtime
        A.update_elements(np.arange(k), stiffness_scale=0.5)
        t_update = comm.vtime - t0
        # full reassembly cost = a fresh assembled operator setup
        t1 = comm.vtime
        AssembledOperator(comm, lmesh, op)
        t_reassemble = comm.vtime - t1
        return t_update, t_reassemble

    res, _ = run_spmd(2, prog, rank_args=[(part.local(r),) for r in range(2)])
    return max(r[0] for r in res), max(r[1] for r in res)


@pytest.fixture(scope="module")
def table(save_tables):
    t = ResultTable(
        "Ablation: adaptive update (XFEM) — HYMV incremental update vs "
        "full reassembly (Hex20 elasticity)",
        ["cracked_fraction", "hymv_update_s", "full_reassembly_s", "speedup"],
    )
    for frac in (0.01, 0.05, 0.2, 1.0):
        up, re = _update_costs(frac)
        t.add_row(frac, up, re, re / up)
    save_tables("ablation_adaptive", [t])
    return t


def test_small_updates_much_cheaper_than_reassembly(table):
    rows = {r[0]: r for r in table.rows}
    # a 1% enrichment is at least 10x cheaper than global reassembly
    assert rows[0.01][3] > 10.0
    # update cost grows with the cracked fraction
    ups = [rows[f][1] for f in (0.01, 0.05, 0.2, 1.0)]
    assert ups[0] < ups[2] < ups[3]


def test_update_kernel(benchmark):
    mesh = box_hex_mesh(5, 5, 5, ElementType.HEX20)
    part = build_partition(mesh, 1, method="slab")
    op = ElasticityOperator()

    def prog(comm, lmesh):
        A = HymvOperator(comm, lmesh, op)

        def update():
            A.update_elements(np.arange(4), stiffness_scale=0.9)

        benchmark(update)

    run_spmd(1, prog, rank_args=[(part.local(0),)])
