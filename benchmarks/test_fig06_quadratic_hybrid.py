"""Fig. 6 reproduction: Hex20 elasticity, pure MPI vs hybrid MPI+OpenMP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_bench
from repro.harness.fig06 import run as run_fig06
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem


@pytest.fixture(scope="module")
def tables():
    return run_fig06("small")


def test_fig06_reproduction_shapes(tables, save_tables):
    save_tables("fig06", tables)
    weak_em, weak_mod, strong_mod = tables

    for mod in (weak_mod, strong_mod):
        series = np.array(mod.column("series"))
        t = np.array(mod.column("spmv10_s"))
        petsc = t[series == "petsc"]
        mpi = t[series == "hymv pure-MPI"]
        hyb = t[series == "hymv hybrid (28 thr)"]
        # paper ordering at every point: hybrid < pure-MPI < petsc
        assert (hyb < mpi).all()
        assert (mpi <= petsc).all()
    # weak tier: hybrid advantage over petsc in the paper's band
    series = np.array(weak_mod.column("series"))
    t = np.array(weak_mod.column("spmv10_s"))
    ratio = (t[series == "petsc"] / t[series == "hymv hybrid (28 thr)"]).mean()
    assert 1.2 < ratio < 2.2  # paper: 1.7x average


def test_fig06_hex20_spmv_kernel(benchmark):
    spec = elastic_bar_problem(4, 2, ElementType.HEX20)
    benchmark(lambda: run_bench(spec, "hymv", n_spmv=10).spmv_time)
