"""Ablation: Algorithm 2's communication/computation overlap.

DESIGN.md calls out the independent/dependent element split as a design
choice.  On the emulated tier the deterministic observable is the
*exposed communication wait* (virtual time spent blocked in
``scatter_end``): overlap lets the independent-element sweep absorb it.
The wall-clock benefit at paper scale is asserted on the model tier
(``tests/test_perfmodel.py::test_overlap_helps_or_is_neutral``).
"""

from __future__ import annotations

import pytest

from repro.harness.driver import run_bench
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem, poisson_problem
from repro.simmpi import NetworkModel
from repro.util.tables import ResultTable

# a slow network makes the exposed wait visible at emulation scale
SLOW_NET = NetworkModel(
    latency_inter=1e-3, bandwidth_inter=0.5e6,
    latency_intra=1e-3, bandwidth_intra=0.5e6, cores_per_node=1,
)


@pytest.fixture(scope="module")
def table(save_tables):
    t = ResultTable(
        "Ablation: overlapped vs blocking HYMV SPMV (deterministic "
        "modeled-compute mode, slow-network model, Hex20 elasticity, "
        "10 SPMV)",
        ["ranks", "overlap", "spmv10_s", "scatter_wait_s"],
    )
    for p in (2, 4, 8):
        # three element layers per slab so each rank has an independent
        # (interior) layer to hide the exchange behind
        spec = elastic_bar_problem((4, 4, 3 * p), p, ElementType.HEX20)
        for overlap in (True, False):
            # compute_scale=0 + modeled sweep rate -> fully deterministic
            # virtual time: the only difference between the modes is
            # whether the independent sweep hides the ghost transfer
            b = run_bench(
                spec, "hymv", n_spmv=10, overlap=overlap,
                network=SLOW_NET, compute_scale=0.0,
                modeled_rate_gflops=0.05,
            )
            t.add_row(
                p, overlap, b.spmv_time,
                b.breakdown.get("spmv.scatter.wait", 0.0),
            )
    save_tables("ablation_overlap", [t])
    return t


def test_overlap_reduces_exposed_wait_and_time(table):
    rows = table.rows
    for p in (2, 4, 8):
        w_ov = next(r[3] for r in rows if r[0] == p and r[1] is True)
        w_bl = next(r[3] for r in rows if r[0] == p and r[1] is False)
        assert w_ov < w_bl
        t_ov = next(r[2] for r in rows if r[0] == p and r[1] is True)
        t_bl = next(r[2] for r in rows if r[0] == p and r[1] is False)
        assert t_ov < t_bl


def test_dependent_fraction_grows_with_parts():
    """The mechanism behind §V-D's GPU/CPU(O) degradation: more ranks ⇒
    larger dependent-element fraction."""

    from repro.core.maps import build_node_maps
    from repro.partition import build_partition

    spec_mesh = poisson_problem(10, 2).mesh
    fracs = []
    for p in (2, 4, 8):
        part = build_partition(spec_mesh, p, method="slab")
        dep = 0
        for r in range(p):
            lm = part.local(r)
            maps = build_node_maps(lm.e2g, lm.n_begin, lm.n_end)
            dep += maps.dependent.size
        fracs.append(dep / spec_mesh.n_elements)
    assert fracs[0] < fracs[1] < fracs[2]


def test_overlap_kernel(benchmark):
    spec = poisson_problem(8, 2)
    benchmark(lambda: run_bench(spec, "hymv", n_spmv=5, overlap=True).spmv_time)
