"""Fig. 11 reproduction: total solve time with preconditioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_solve
from repro.harness.fig11 import run as run_fig11
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tables():
    return run_fig11("small")


def _by_method(table):
    out = {}
    for row in table.rows:
        out.setdefault(row[2], []).append(row)
    return out


def test_fig11a_jacobi_vs_none(tables, save_tables):
    save_tables("fig11", tables)
    a = _by_method(tables[0])
    # identical iteration counts between HYMV and assembled with Jacobi;
    # unpreconditioned CG on the ill-conditioned jittered system is
    # sensitive to the summation order (HYMV/matfree accumulate per
    # element, CSR per row), so only a loose band holds there
    it_h = [r[3] for r in a["hymv/jacobi"]]
    it_a = [r[3] for r in a["assembled/jacobi"]]
    assert all(abs(x - y) <= 2 for x, y in zip(it_h, it_a))
    it_h = np.array([r[3] for r in a["hymv/none"]], dtype=float)
    it_a = np.array([r[3] for r in a["assembled/none"]], dtype=float)
    assert (np.abs(it_h / it_a - 1.0) < 0.6).all()
    # Jacobi reduces iterations vs no preconditioning
    assert np.mean([r[3] for r in a["hymv/jacobi"]]) < np.mean(
        [r[3] for r in a["hymv/none"]]
    )
    # HYMV total time below assembled's (setup advantage; paper: 1.1-1.2x)
    t_h = np.array([r[6] for r in a["hymv/jacobi"]])
    t_a = np.array([r[6] for r in a["assembled/jacobi"]])
    assert (t_h < t_a).all()


def test_fig11b_block_jacobi(tables):
    b = _by_method(tables[1])
    it_j = np.array([r[3] for r in b["hymv/jacobi"]])
    it_bj = np.array([r[3] for r in b["hymv/bjacobi"]])
    assert (it_bj < it_j).all()  # block Jacobi cuts iterations everywhere
    # both methods converge to the same discrete solution
    err_h = np.array([r[7] for r in b["hymv/bjacobi"]])
    err_a = np.array([r[7] for r in b["assembled/bjacobi"]])
    np.testing.assert_allclose(err_h, err_a, rtol=1e-6)


def test_fig11c_gpu_total_solve(tables):
    c = _by_method(tables[2])
    t_h = np.array([r[6] for r in c["hymv_gpu/jacobi"]])
    t_p = np.array([r[6] for r in c["assembled_gpu/jacobi"]])
    assert (t_h < t_p).all()  # paper: HYMV-GPU 1.8x faster
    it_h = [r[3] for r in c["hymv_gpu/jacobi"]]
    it_p = [r[3] for r in c["assembled_gpu/jacobi"]]
    assert it_h == it_p


def test_fig11_solve_kernel(benchmark):
    spec = elastic_bar_problem(3, 2, ElementType.HEX20)
    benchmark(
        lambda: run_solve(spec, "hymv", precond="bjacobi", rtol=1e-3).iterations
    )
