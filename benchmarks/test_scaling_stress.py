"""Emulated weak scaling at higher rank counts (stress of the runtime).

Pushes the thread-per-rank simulator to 32 ranks with the real HYMV and
assembled pipelines, verifying the key weak-scaling shapes hold in the
emulation itself (not just the model): HYMV setup stays flat while the
assembled setup's communication share grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_bench
from repro.problems import poisson_problem
from repro.util.tables import ResultTable

pytestmark = pytest.mark.slow

P_LIST = [4, 8, 16, 32]


@pytest.fixture(scope="module")
def table(save_tables):
    t = ResultTable(
        "Emulated runtime stress (Poisson Hex8, z-slabs, up to 32 ranks)",
        ["ranks", "dofs", "method", "setup_s", "spmv10_s", "setup_comm_s"],
    )
    for p in P_LIST:
        spec = poisson_problem(
            (7, 7, max(2 * p // 7 + 1, 2)), p, part_method="slab"
        )
        for method in ("hymv", "assembled"):
            b = run_bench(spec, method, n_spmv=10)
            comm = b.breakdown.get("setup.comm", 0.0) + b.breakdown.get(
                "setup.comm_maps", 0.0
            )
            t.add_row(p, spec.n_dofs, method, b.setup_time, b.spmv_time, comm)
    save_tables("scaling_stress", [t])
    return t


def test_hymv_setup_flat_in_emulation(table):
    m = np.array(table.column("method"))
    setup = np.array(table.column("setup_s"))
    h = setup[m == "hymv"]
    # flat within measurement noise on a shared host
    assert h.max() / np.median(h) < 4.0


def test_spmv_completes_at_32_ranks(table):
    m = np.array(table.column("method"))
    spmv = np.array(table.column("spmv10_s"))
    assert (spmv > 0).all()
    assert m.size == 2 * len(P_LIST)


def test_32_rank_collectives(benchmark):
    """allreduce across 32 rank threads (runtime overhead benchmark)."""
    from repro.simmpi import run_spmd

    def prog(comm):
        total = 0.0
        for _ in range(5):
            total = comm.allreduce(float(comm.rank))
        return total

    def run():
        res, _ = run_spmd(32, prog)
        assert res[0] == sum(range(32))

    benchmark.pedantic(run, rounds=3, iterations=1)
