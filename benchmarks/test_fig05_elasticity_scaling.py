"""Fig. 5 reproduction: elasticity Hex8 weak/strong scaling with setup
breakdown (element-matrix compute vs assembly overhead)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_bench
from repro.harness.fig05 import run as run_fig05
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tables():
    return run_fig05("small")


def test_fig05_reproduction_shapes(tables, save_tables):
    save_tables("fig05", tables)
    weak_em, weak_mod, strong_mod = tables

    m = np.array(weak_mod.column("method"))
    setup = np.array(weak_mod.column("setup_s"))
    emat = np.array(weak_mod.column("emat_s"))
    over = np.array(weak_mod.column("overhead_s"))
    # paper: HYMV setup ~5x faster than PETSc (band 3-8)
    r = setup[m == "petsc"][-1] / setup[m == "hymv"][-1]
    assert 3.0 < r < 8.0
    # breakdown: both pay the same emat compute; the difference is the
    # assembly overhead (the figure's second bar segment)
    np.testing.assert_allclose(
        emat[m == "petsc"], emat[m == "hymv"], rtol=1e-12
    )
    assert (over[m == "petsc"] > 5 * over[m == "hymv"]).all()

    # emulated tier sanity: hymv overhead (local copy) below assembled's
    em = np.array(weak_em.column("method"))
    eo = np.array(weak_em.column("overhead_s"))
    assert eo[em == "assembled"].mean() > eo[em == "hymv"].mean()

    # strong scaling decreases
    sm = np.array(strong_mod.column("method"))
    st = np.array(strong_mod.column("spmv10_s"))
    for name in ("hymv", "petsc"):
        assert (np.diff(st[sm == name]) < 0).all()


def test_fig05_elasticity_setup_kernel(benchmark):
    spec = elastic_bar_problem(5, 2, ElementType.HEX8)
    benchmark(lambda: run_bench(spec, "hymv", n_spmv=1).setup_time)
