"""Ablation: EMV kernel formulation — batched gemv vs the paper's eq. (4)
column-major sum-of-scaled-columns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import emv_columns, emv_einsum
from repro.harness.driver import run_bench
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem
from repro.util.tables import ResultTable


@pytest.fixture(scope="module")
def batch(rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    ke = rng.standard_normal((2000, 60, 60))
    ue = rng.standard_normal((2000, 60))
    return ke, ue


def test_kernels_numerically_identical(batch):
    ke, ue = batch
    np.testing.assert_allclose(
        emv_einsum(ke, ue), emv_columns(ke, ue), atol=1e-10
    )


def test_kernel_choice_in_full_spmv(save_tables):
    t = ResultTable(
        "Ablation: EMV kernel formulation (Hex20 elasticity, 10 SPMV)",
        ["kernel", "spmv10_s", "gflops"],
    )
    spec = elastic_bar_problem(4, 2, ElementType.HEX20)
    times = {}
    for kernel in ("einsum", "columns"):
        b = run_bench(spec, "hymv", n_spmv=10, kernel=kernel)
        times[kernel] = b.spmv_time
        t.add_row(kernel, b.spmv_time, b.gflops_rate)
    t.add_note(
        "the paper vectorizes eq. (4) with AVX512; in NumPy the batched "
        "gemv maps to BLAS while the column loop pays Python overhead"
    )
    save_tables("ablation_kernels", [t])
    assert all(v > 0 for v in times.values())


@pytest.mark.parametrize("kernel", [emv_einsum, emv_columns])
def test_emv_kernel_microbench(benchmark, batch, kernel):
    ke, ue = batch
    benchmark(kernel, ke, ue)
