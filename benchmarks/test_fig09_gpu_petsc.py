"""Fig. 9 reproduction: HYMV-GPU vs PETSc-GPU (cuSPARSE substitute) on
unstructured Hex27 elasticity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_bench
from repro.harness.fig09 import run as run_fig09
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem


@pytest.fixture(scope="module")
def tables():
    return run_fig09("small")


def test_fig09_reproduction_shapes(tables, save_tables):
    save_tables("fig09", tables)
    em, weak, strong = tables

    for t in (weak, strong):
        h_su = np.array(t.column("hymv_setup_s"))
        p_su = np.array(t.column("petsc_setup_s"))
        h_sp = np.array(t.column("hymv_spmv10_s"))
        p_sp = np.array(t.column("petsc_spmv10_s"))
        # HYMV-GPU faster in both setup and SPMV at every point
        assert (h_su < p_su).all()
        assert (h_sp < p_sp).all()
        # SPMV advantage in the paper's band (1.4-1.5x)
        assert 1.1 < (p_sp / h_sp).mean() < 2.5
    # weak scaling roughly flat for HYMV-GPU
    h_sp = np.array(weak.column("hymv_spmv10_s"))
    assert h_sp.max() / h_sp.min() < 1.1

    # emulated tier: hymv_gpu setup below assembled_gpu setup
    m = np.array(em.column("method"))
    su = np.array(em.column("setup_s"))
    assert su[m == "hymv_gpu"][0] < su[m == "assembled_gpu"][0]


def test_fig09_hex27_gpu_kernel(benchmark):
    spec = elastic_bar_problem(
        2, 2, ElementType.HEX27, unstructured=True, jitter=0.15
    )
    benchmark(lambda: run_bench(spec, "hymv_gpu", n_spmv=5).spmv_time)
