"""Fig. 3 / §V-D reproduction: stream-count sweep and overlap timeline."""

from __future__ import annotations

import pytest

from repro.gpu.streams import StreamScheduler
from repro.harness.fig03 import run as run_fig03


@pytest.fixture(scope="module")
def tables():
    return run_fig03("small")


def test_fig03_reproduction_shapes(tables, save_tables):
    save_tables("fig03", tables)
    sweep, timeline = tables
    streams = sweep.column("streams")
    makespans = sweep.column("makespan_ms")
    # monotone improvement, saturating at 8 (the paper's pick)
    assert all(b <= a + 1e-12 for a, b in zip(makespans, makespans[1:]))
    assert makespans[-1] < 0.8 * makespans[0]
    effs = sweep.column("overlap_efficiency")
    assert effs[-1] > 1.5  # real copy/kernel overlap
    # timeline contains all three engine lanes
    txt = "\n".join(r[0] for r in timeline.rows)
    assert "h2d" in txt and "kernel" in txt and "d2h" in txt


def test_fig03_scheduler_kernel(benchmark):
    def schedule():
        s = StreamScheduler(n_streams=8)
        return s.run_batch(5e8, 7e9, 3.6e9, 5e8, n_chunks=64)

    benchmark(schedule)
