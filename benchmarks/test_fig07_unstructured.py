"""Fig. 7 reproduction: unstructured Tet10 Poisson strong scaling —
the paper's headline unstructured result (11x setup, 3.6x SPMV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.driver import run_bench
from repro.harness.fig07 import run as run_fig07
from repro.mesh import ElementType
from repro.problems import poisson_problem

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tables():
    return run_fig07("small")


def test_fig07_reproduction_shapes(tables, save_tables):
    save_tables("fig07", tables)
    em, mod = tables

    m = np.array(mod.column("method"))
    cores = np.array(mod.column("cores"))
    setup = np.array(mod.column("setup_s"))
    spmv = np.array(mod.column("spmv10_s"))
    su_ratio = setup[m == "petsc"] / setup[m == "hymv"]
    sp_ratio = spmv[m == "petsc"] / spmv[m == "hymv"]
    # paper averages: 11x setup, 3.6x SPMV
    assert 7.0 < su_ratio.mean() < 16.0
    assert 2.5 < sp_ratio.mean() < 5.5
    # strong scaling: both methods shrink with cores
    for name in ("hymv", "petsc"):
        assert (np.diff(setup[m == name]) < 0).all()
        assert (np.diff(spmv[m == name]) < 0).all()

    # emulated tier: assembled overhead dominates hymv's local copy
    eme = np.array(em.column("method"))
    over = np.array(em.column("overhead_s"))
    assert (over[eme == "assembled"] > over[eme == "hymv"]).all()


def test_fig07_unstructured_spmv_kernel(benchmark):
    spec = poisson_problem(5, 2, ElementType.TET10)
    benchmark(lambda: run_bench(spec, "hymv", n_spmv=10).spmv_time)
