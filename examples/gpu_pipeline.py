#!/usr/bin/env python
"""HYMV-GPU (Algorithm 3): the stream pipeline and overlap schemes.

Renders the Fig. 3-style timeline of H2D transfers, batched EMV kernels
and D2H transfers across CUDA streams on the simulated Quadro RTX 5000,
sweeps the stream count (§V-D: eight streams were best), and compares the
three overlap schemes on a distributed solve.

Run:  python examples/gpu_pipeline.py
"""

from repro.fem.operators import ElasticityOperator
from repro.gpu import StreamScheduler
from repro.harness import run_solve
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem


def main() -> None:
    print("HYMV-GPU stream pipeline (simulated Quadro RTX 5000)")
    print("=" * 64)

    op = ElasticityOperator()
    nd = op.element_dofs(ElementType.HEX20)
    n_elements = 50_000  # one device batch
    work = dict(
        h2d_bytes=n_elements * nd * 8.0,
        kernel_flops=2.0 * n_elements * nd * nd,
        kernel_bytes=n_elements * nd * nd * 8.0,
        d2h_bytes=n_elements * nd * 8.0,
    )

    print("stream-count sweep (paper §V-D):")
    base = None
    for ns in (1, 2, 4, 8):
        s = StreamScheduler(n_streams=ns)
        t = s.run_batch(**work, n_chunks=max(8, ns))
        base = base or t
        print(
            f"  {ns} streams: {t * 1e3:7.3f} ms  "
            f"(speedup {base / t:4.2f}x, overlap {s.overlap_efficiency():.2f}x)"
        )
    print()

    s = StreamScheduler(n_streams=8)
    s.run_batch(**work)
    print("timeline with 8 streams:")
    print(s.render_ascii(64))
    print()

    print("distributed solve with the three overlap schemes (Fig. 8b):")
    spec = elastic_bar_problem(4, n_parts=3, etype=ElementType.HEX20)
    for scheme in ("gpu", "gpu_cpu_overlap", "gpu_gpu_overlap"):
        out = run_solve(
            spec, "hymv_gpu", precond="jacobi", rtol=1e-8, scheme=scheme
        )
        print(
            f"  {scheme:16s} iters={out.iterations:3d} "
            f"err={out.err_inf:.2e} total={out.total_time * 1e3:8.2f} ms"
        )
    print()
    print("The numerics are identical across schemes (and identical to the")
    print("CPU path); only the modeled device/communication timing differs.")


if __name__ == "__main__":
    main()
