#!/usr/bin/env python
"""Unstructured-mesh workflow (paper §V-C.3 / Fig. 7): quadratic
tetrahedra, graph partitioning, and the HYMV vs matrix-assembled
comparison where the assembled approach suffers most.

Run:  python examples/unstructured_poisson.py
"""


from repro.harness import run_solve
from repro.harness.driver import run_bench
from repro.mesh import ElementType
from repro.partition import partition_metrics
from repro.problems import poisson_problem


def main() -> None:
    print("Unstructured Tet10 Poisson (Gmsh/METIS substitute pipeline)")
    print("=" * 64)
    spec = poisson_problem(6, n_parts=4, etype=ElementType.TET10, jitter=0.25)
    mesh, part = spec.mesh, spec.partition
    met = partition_metrics(part)
    print(
        f"mesh: {mesh.n_elements} Tet10 elements, {mesh.n_nodes} nodes "
        f"(jittered Kuhn triangulation)"
    )
    print(
        f"graph partition: 4 parts, element imbalance "
        f"{met.element_imbalance:.3f}, edge cut {met.edge_cut} "
        f"({met.edge_cut_fraction:.1%} of dual edges), "
        f"ghosts per rank {met.ghost_nodes.tolist()}"
    )
    print()

    print("setup + 10 SPMV (the protocol of Fig. 7):")
    for method in ("hymv", "assembled", "matfree"):
        b = run_bench(spec, method, n_spmv=10)
        print(
            f"  {method:10s} setup {b.setup_time * 1e3:8.2f} ms   "
            f"10xSPMV {b.spmv_time * 1e3:8.2f} ms   "
            f"rate {b.gflops_rate:6.2f} GF/s   "
            f"stored {b.stored_bytes / 1e6:6.2f} MB"
        )
    print()

    print("full solve with Jacobi-preconditioned CG:")
    out = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10,
                    return_solution=True)
    print(
        f"  iters={out.iterations}  err vs exact solution = "
        f"{out.err_inf:.3e}"
    )
    # write the solution and the partition for ParaView
    from repro.util.vtk import write_vtk

    u_old = part.to_mesh_order(out.solution)
    path = write_vtk(
        "poisson_tet10.vtk", mesh,
        point_data={"u": u_old},
        cell_data={"rank": part.elem_part.astype(float)},
    )
    print(f"  solution + partition written to {path}")
    print()
    print("On unstructured meshes the assembled matrix's sparsity and the")
    print("partition boundaries are irregular — exactly where the paper")
    print("reports HYMV's largest advantages (11x setup, 3.6x SPMV).")


if __name__ == "__main__":
    main()
