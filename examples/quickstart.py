#!/usr/bin/env python
"""Quickstart: solve a Poisson problem with HYMV on 4 simulated MPI ranks.

Walks the full pipeline the paper describes:

1. build a structured hex mesh of the unit cube,
2. partition it (z-slabs, like the paper's verification runs),
3. per rank: HYMV setup (compute + store element matrices, build the
   E2L/LNSM/GNGM maps),
4. CG solve through the MatShell-style operator with a Jacobi
   preconditioner,
5. check the error against the exact manufactured solution
   (paper §V-B: errors between 23.4e-5 and 0.1e-5 under refinement).

Run:  python examples/quickstart.py
"""


from repro.harness import run_solve
from repro.mesh import ElementType
from repro.problems import poisson_problem


def main() -> None:
    print("HYMV quickstart — Poisson on the unit cube, 4 simulated ranks")
    print("=" * 64)

    for nel in (10, 20):
        spec = poisson_problem(nel, n_parts=4, etype=ElementType.HEX8)
        out = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10)
        print(
            f"mesh {nel}^3  dofs={spec.n_dofs:6d}  "
            f"CG iters={out.iterations:3d}  converged={out.converged}  "
            f"||u - u_exact||_inf = {out.err_inf:.3e}"
        )
        print(
            f"  setup {out.setup_time * 1e3:7.2f} ms   "
            f"solve {out.solve_time * 1e3:7.2f} ms   "
            f"(virtual time: measured compute + modeled network)"
        )

    print()
    print("Comparing the three SPMV methods on the same 12^3 problem:")
    spec = poisson_problem(12, n_parts=4)
    for method in ("hymv", "assembled", "matfree"):
        out = run_solve(spec, method, precond="jacobi", rtol=1e-10)
        print(
            f"  {method:10s} iters={out.iterations:3d} "
            f"err={out.err_inf:.3e} setup={out.setup_time * 1e3:7.2f} ms "
            f"solve={out.solve_time * 1e3:7.2f} ms"
        )
    print()
    print("All three methods apply the *same* operator — identical "
          "iteration counts and errors; they differ in where the time goes.")
    print()
    print("(Curiosity: CG converges in one iteration here because the "
          "sin·sin·sin forcing sampled on a uniform grid is an exact "
          "eigenvector of the discrete operator. On unstructured meshes — "
          "see examples/unstructured_poisson.py — iteration counts are "
          "ordinary.)")


if __name__ == "__main__":
    main()
