#!/usr/bin/env python
"""Per-rank virtual-time timeline of the HYMV SPMV (Algorithm 2).

Runs ten overlapped SPMV products with virtual-time tracing enabled and
renders a Gantt chart per rank: element-matrix setup, EMV sweeps, and the
blocking waits the overlap is hiding.  Uses the deterministic
modeled-compute mode so the picture is reproducible.

Run:  python examples/spmv_timeline.py
"""

import numpy as np

from repro.core import HymvOperator
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem
from repro.simmpi import NetworkModel, run_spmd
from repro.simmpi.trace import render_gantt


def main() -> None:
    print("HYMV SPMV timeline on 4 simulated ranks (Hex20 elasticity)")
    print("=" * 66)
    spec = elastic_bar_problem((4, 4, 12), n_parts=4, etype=ElementType.HEX20)
    net = NetworkModel(
        latency_inter=0.5e-3, bandwidth_inter=2e6,
        latency_intra=0.5e-3, bandwidth_intra=2e6, cores_per_node=1,
    )

    def prog(comm, lmesh, overlap):
        A = HymvOperator(
            comm, lmesh, spec.operator, modeled_rate_gflops=0.05
        )
        u, v = A.new_array(), A.new_array()
        u.set_owned(np.ones(A.n_dofs_owned))
        for _ in range(3):
            A.spmv(u, v, overlap=overlap)
        return comm.vtime

    for overlap in (False, True):
        res, sim = run_spmd(
            4, prog,
            rank_args=[(spec.partition.local(r), overlap) for r in range(4)],
            network=net,
            compute_scale=0.0,  # deterministic: modeled compute only
            trace=True,
        )
        mode = "overlapped (Algorithm 2)" if overlap else "blocking"
        print(f"\n--- {mode}: total virtual time {max(res) * 1e3:.2f} ms ---")
        print(render_gantt(sim.comms, width=66))


if __name__ == "__main__":
    main()
