#!/usr/bin/env python
"""The adaptive-matrix use-case that motivates HYMV (paper §I, §III):
XFEM-style crack enrichment.

"When a crack occurs, additional unknowns are enriched in the cracked
element.  This enrichment changes the stiffness matrix of few (cracked)
elements while most (uncracked) elements are intact.  HYMV handles this
issue efficiently since only the cracked elements are recomputed (in
contrast, if a matrix-assembled approach is used, the entire global
matrix must be reassembled)."

This example simulates a crack sweeping through an elastic bar: at each
step the elements crossed by the crack front get their stiffness scaled
down, HYMV updates only those element matrices, and the system is
re-solved.  The cost of each update is compared against what a full
matrix reassembly would cost.

Run:  python examples/xfem_enrichment.py
"""

import numpy as np

from repro.baselines import AssembledOperator
from repro.core import HymvOperator
from repro.core.rhs import local_node_coords
from repro.fem import ElasticityOperator
from repro.mesh import ElementType, box_hex_mesh
from repro.partition import build_partition
from repro.simmpi import run_spmd
from repro.solvers import JacobiPreconditioner, cg, dirichlet_system


def main() -> None:
    print("XFEM-style crack propagation with adaptive element updates")
    print("=" * 64)
    mesh = box_hex_mesh(8, 8, 8, ElementType.HEX8, lengths=(1, 1, 1))
    part = build_partition(mesh, 2, method="slab")
    op = ElasticityOperator()
    centroids = mesh.element_centroids()
    print(f"mesh: {mesh.n_elements} Hex8 elements, {mesh.n_nodes * 3} dofs")

    # crack plane y = 0.5 advancing in +x, softening crossed elements
    steps = [0.25, 0.5, 0.75, 1.0]

    def prog(comm, lmesh):
        A = HymvOperator(comm, lmesh, op)
        setup_t = comm.timing.total("setup.emat_compute") + comm.timing.total(
            "setup.local_copy"
        )
        rng = np.random.default_rng(0)
        f = rng.standard_normal(A.n_dofs_owned)
        # clamp the bottom face (z = 0) so the operator is SPD
        coords = local_node_coords(A.maps, lmesh)[A.maps.owned_slice]
        mask = np.repeat(np.abs(coords[:, 2]) < 1e-12, 3)
        u0 = np.zeros(A.n_dofs_owned)
        log = []
        cracked_before = np.zeros(lmesh.n_local_elements, dtype=bool)
        for front in steps:
            c = centroids[lmesh.elements]
            in_crack = (np.abs(c[:, 1] - 0.5) < 1.0 / 8.0) & (c[:, 0] < front)
            newly = np.flatnonzero(in_crack & ~cracked_before)
            cracked_before |= in_crack
            t0 = comm.vtime
            A.update_elements(newly, stiffness_scale=0.05)
            t_update = comm.vtime - t0
            # a representative re-solve on the updated operator
            apply_hat, b_hat = dirichlet_system(A.apply_owned, f, u0, mask)
            d = A.diagonal_owned()
            d[mask] = 1.0
            res = cg(
                comm, apply_hat, b_hat, apply_M=JacobiPreconditioner(d),
                rtol=1e-6, maxiter=2000,
            )
            n_new = comm.allreduce(int(newly.size))
            log.append((front, n_new, t_update, res.iterations))
        # what a full reassembly costs (the matrix-assembled alternative)
        t0 = comm.vtime
        AssembledOperator(comm, lmesh, op)
        t_reassemble = comm.vtime - t0
        return setup_t, log, t_reassemble

    res, _ = run_spmd(2, prog, rank_args=[(part.local(r),) for r in range(2)])
    setup_t = max(r[0] for r in res)
    t_reassemble = max(r[2] for r in res)
    print(f"one-time HYMV setup: {setup_t * 1e3:8.2f} ms")
    print(f"full reassembly (matrix-assembled approach): "
          f"{t_reassemble * 1e3:8.2f} ms per crack step")
    print()
    print(f"{'front':>6s} {'new cracked':>12s} {'HYMV update':>12s} "
          f"{'vs reassembly':>14s} {'CG iters':>9s}")
    for i, (front, n_new, _, iters) in enumerate(res[0][1]):
        t_update = max(r[1][i][2] for r in res)
        speed = t_reassemble / max(t_update, 1e-9)
        print(
            f"{front:6.2f} {n_new:12d} {t_update * 1e3:10.2f}ms "
            f"{speed:12.0f}x {iters:9d}"
        )
    print()
    print("Each enrichment touches a handful of elements; HYMV recomputes")
    print("only those, while the assembled approach would rebuild and")
    print("re-communicate the whole global matrix.")


if __name__ == "__main__":
    main()
