#!/usr/bin/env python
"""Adaptive mesh refinement with element-matrix reuse — the AMR use-case
of the paper's §III ("applications with adaptive multiresolution (AMR)
... only a minor subset of elements needs to be updated, while the global
assembly is completely avoided").

Workflow per adaptation cycle:

1. solve the Poisson problem on the current tet mesh,
2. estimate per-element error (gradient-jump-style indicator: elemental
   residual against the smooth exact solution here, for simplicity),
3. Rivara-bisect the worst elements (conformity closure included),
4. rebuild the HYMV operator **reusing the stored element matrices of all
   untouched elements** via the ancestry map — only new elements pay the
   elemental computation.

Run:  python examples/amr_poisson.py
"""

import numpy as np

from repro.core import HymvOperator
from repro.fem import PoissonOperator
from repro.fem.analytic import poisson_exact, poisson_forcing
from repro.fem.loads import body_force_rhs_batch
from repro.mesh import box_tet_mesh
from repro.mesh.adapt import refine_local
from repro.partition import build_partition
from repro.simmpi import run_spmd
from repro.solvers import JacobiPreconditioner, cg, dirichlet_system
from repro.util.arrays import scatter_add


def solve_on(mesh, ke_cache=None):
    """One serial-rank HYMV solve; returns (err_inf, per-element err
    indicator, exported Ke cache, #cache hits, emat time)."""
    part = build_partition(mesh, 1, method="slab")
    lmesh = part.local(0)
    op = PoissonOperator()

    def prog(comm):
        A = HymvOperator(comm, lmesh, op, ke_cache=ke_cache)
        t_emat = comm.timing.total("setup.emat_compute")
        f = np.zeros(A.n_dofs_owned)
        fe = body_force_rhs_batch(
            lmesh.coords, mesh.etype,
            lambda x: poisson_forcing(x)[..., None], 1,
        )
        scatter_add(f, A.maps.e2l, fe[:, :, 0])
        mask = np.zeros(mesh.n_nodes, dtype=bool)
        mask[part.new_of_old[mesh.boundary_nodes()]] = True
        u0 = np.zeros(mesh.n_nodes)
        apply_hat, b_hat = dirichlet_system(A.apply_owned, f, u0, mask)
        d = A.diagonal_owned()
        d[mask] = 1.0
        res = cg(comm, apply_hat, b_hat, apply_M=JacobiPreconditioner(d),
                 rtol=1e-10, maxiter=3000)
        u = res.x
        exact = poisson_exact(part.owned_coords(0))
        err = np.abs(u - exact).max()
        # element indicator: max nodal error over the element
        e_err = np.abs(u - exact)[A.maps.e2l].max(axis=1)
        # undo the independent/dependent permutation (identity at p=1,
        # but keep it explicit)
        return err, e_err, A.export_ke_cache(), A.cache_hits, t_emat

    res, _ = run_spmd(1, prog)
    return res[0]


def main() -> None:
    print("AMR Poisson with element-matrix reuse (Rivara bisection)")
    print("=" * 64)
    mesh = box_tet_mesh(4, 4, 4, jitter=0.1)
    cache = None
    print(f"{'cycle':>5s} {'elements':>9s} {'new':>6s} {'reused':>7s} "
          f"{'emat_ms':>8s} {'err_inf':>10s}")
    for cycle in range(4):
        err, e_err, new_cache, hits, t_emat = solve_on(mesh, cache)
        print(
            f"{cycle:5d} {mesh.n_elements:9d} "
            f"{mesh.n_elements - hits:6d} {hits:7d} "
            f"{t_emat * 1e3:8.2f} {err:10.3e}"
        )
        # mark the worst 10% of elements and refine
        thresh = np.quantile(e_err, 0.9)
        marked = np.flatnonzero(e_err >= thresh)
        ref = refine_local(mesh, marked)
        # carry matrices of untouched elements to the new mesh
        cache = {
            int(ei): new_cache[int(ref.ancestor[ei])]
            for ei in np.flatnonzero(ref.unchanged)
        }
        mesh = ref.mesh
    print()
    print("Each cycle recomputes element matrices only for the elements")
    print("created by the bisection — the 'reused' column is the paper's")
    print("adaptive-matrix saving; a matrix-assembled code would rebuild")
    print("the whole global matrix every cycle.")


if __name__ == "__main__":
    main()
