#!/usr/bin/env python
"""The paper's elasticity verification problem (§V-B): a prismatic bar
hanging under its own weight (Timoshenko & Goodier), with the exact
solution reproduced to machine precision by quadratic elements.

Demonstrates the preconditioning study of Fig. 11: no preconditioner vs
Jacobi vs block Jacobi, across the three SPMV methods.

Run:  python examples/elasticity_bar.py
"""

from repro.harness import run_solve
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem


def main() -> None:
    print("Hanging elastic bar (Timoshenko & Goodier) — Hex20 elements")
    print("=" * 68)
    spec = elastic_bar_problem(4, n_parts=3, etype=ElementType.HEX20)
    print(
        f"mesh: {spec.mesh.n_elements} Hex20 elements, "
        f"{spec.n_dofs} dofs, 3 simulated ranks"
    )
    print(
        "loads: gravity body force + uniform traction on the top face; "
        "rigid modes pinned at 6 dofs (exact values)"
    )
    print()
    header = (
        f"{'method':11s} {'precond':8s} {'iters':>6s} {'err_inf':>10s} "
        f"{'setup_ms':>9s} {'solve_ms':>9s} {'total_ms':>9s}"
    )
    print(header)
    print("-" * len(header))
    for method in ("hymv", "assembled", "matfree"):
        for precond in ("none", "jacobi", "bjacobi"):
            out = run_solve(spec, method, precond=precond, rtol=1e-10,
                            maxiter=8000)
            print(
                f"{method:11s} {precond:8s} {out.iterations:6d} "
                f"{out.err_inf:10.2e} {out.setup_time * 1e3:9.2f} "
                f"{out.solve_time * 1e3:9.2f} {out.total_time * 1e3:9.2f}"
            )
    print()
    print("Things to note (all three mirror the paper):")
    print(" * quadratic elements hit err ~1e-9 — the solution is exactly")
    print("   representable (paper reports err < 1e-8)")
    print(" * block Jacobi cuts iterations vs Jacobi vs none (Fig. 11)")
    print(" * identical iteration counts across SPMV methods — they apply")
    print("   the same operator; only setup/SPMV cost differs")


if __name__ == "__main__":
    main()
