"""Property-based laws of the autotuner machinery.

* Pareto: no dominated point ever survives the front, the front is
  invariant under any permutation of the candidates, and every dropped
  candidate is dominated by some front member (no over-pruning).
* Search: the full strategy battery is a pure function of the seed.
* Evaluation cache: a config re-probed under any fingerprint-preserving
  rewrite (knob order, inactive-knob noise) hits the cache and returns
  the identical result.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tune.evaluate import BaseEvaluator
from repro.tune.pareto import Objectives, dominates, pareto_front
from repro.tune.space import default_space
from repro.tune.strategies import run_search

# small positive floats with ties made likely (ties are the sharp edge
# of dominance logic)
_vals = st.sampled_from([1.0, 2.0, 3.0, 5.0, 8.0])


class _Cand:
    def __init__(self, i, thr, p99, mem):
        self.fingerprint = f"c{i:04d}-{thr}-{p99}-{mem}"
        self.objectives = Objectives(thr, p99, mem)


_cands = st.lists(
    st.tuples(_vals, _vals, _vals), min_size=1, max_size=24
).map(lambda ts: [_Cand(i, *t) for i, t in enumerate(ts)])


class TestParetoProperties:
    @given(_cands)
    @settings(max_examples=200, deadline=None)
    def test_no_dominated_point_survives(self, cands):
        front = pareto_front(cands)
        assert front
        for a in front:
            for b in front:
                assert not dominates(a.objectives, b.objectives) or a is b

    @given(_cands, st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_front_is_order_invariant(self, cands, rnd):
        ref = pareto_front(cands)
        shuffled = list(cands)
        rnd.shuffle(shuffled)
        perm = pareto_front(shuffled)
        assert [c.fingerprint for c in ref] == [c.fingerprint for c in perm]

    @given(_cands)
    @settings(max_examples=200, deadline=None)
    def test_every_dropped_candidate_is_dominated(self, cands):
        front = pareto_front(cands)
        kept = {c.fingerprint for c in front}
        for c in cands:
            if c.fingerprint in kept:
                continue
            assert any(
                dominates(f.objectives, c.objectives)
                or f.objectives == c.objectives
                for f in front
            )


class _StubEvaluator(BaseEvaluator):
    """Deterministic analytic metrics (no harness runs)."""

    def _compute(self, config):
        thr = 1e4 / config["max_batch"] + config["n_streams"]
        return {
            "serve.throughput_rps": thr,
            "serve.p99_s": 1e-4 * config["max_batch"]
            + 1e-6 * config["queue_capacity"],
            "serve.time_per_req_s": 1.0 / thr,
            "solve.vtime_s": 1e-3 if config["fused_cg"] else 2e-3,
            "model.gpu_pipeline_s": 1e-2 / config["n_streams"]
            + 1e-4 * config["gpu_chunks"],
            "mem.bytes": float(
                config["cache_capacity"] * 1000
                + config["queue_capacity"] * 8
                + config["max_batch"] * 16
            ),
        }


class TestSearchDeterminism:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_battery_is_a_pure_function_of_the_seed(self, seed):
        space = default_space()
        runs = []
        for _ in range(2):
            traj, results = run_search(
                space, _StubEvaluator(space), seed, budget_per_strategy=6
            )
            runs.append((traj, [r.fingerprint for r in results]))
        assert runs[0] == runs[1]

    def test_different_seeds_can_diverge(self):
        space = default_space()
        t1, _ = run_search(space, _StubEvaluator(space), 1, 6)
        t2, _ = run_search(space, _StubEvaluator(space), 2, 6)
        # the deterministic hill-climb prefix may agree; the random
        # strategy must not produce the identical trajectory
        assert t1 != t2


def _space_configs(space):
    return st.fixed_dictionaries(
        {k.name: st.sampled_from(list(k.values)) for k in space.knobs}
    )


class TestEvalCacheProperties:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_fingerprint_equivalence_implies_cache_hit(self, data):
        space = default_space()
        ev = _StubEvaluator(space)
        cfg = data.draw(_space_configs(space))
        first = ev.evaluate(cfg)
        assert not first.cached and ev.evaluations == 1

        # same config, different dict ordering
        reordered = dict(sorted(cfg.items(), reverse=True))
        again = ev.evaluate(reordered)
        assert again.cached
        assert again.objectives == first.objectives
        assert again.score == first.score

        # inactive-knob noise must also hit (fingerprints collapse)
        if space.normalize(cfg)["sellcs_crossover_dofs"] == 0:
            noisy = dict(cfg, sell_c=4, sell_sigma_factor=16)
            assert ev.evaluate(noisy).cached
        assert ev.evaluations == 1

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_distinct_fingerprints_recompute(self, data):
        space = default_space()
        ev = _StubEvaluator(space)
        a = data.draw(_space_configs(space))
        b = data.draw(_space_configs(space))
        ra = ev.evaluate(a)
        rb = ev.evaluate(b)
        if ra.fingerprint != rb.fingerprint:
            assert ev.evaluations == 2
        else:
            assert ev.evaluations == 1 and rb.cached
