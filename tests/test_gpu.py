"""GPU simulation: stream scheduler semantics and the GPU operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import StreamScheduler
from repro.harness import run_solve
from repro.mesh import ElementType
from repro.perfmodel.machine import GpuModel
from repro.problems import elastic_bar_problem
from repro.problems import poisson_problem


def _assert_valid_timeline(s: StreamScheduler) -> None:
    """Engine serialization + per-stream (h2d -> kernel -> d2h) order."""
    by_engine: dict[str, list] = {"h2d": [], "kernel": [], "d2h": []}
    by_stream: dict[int, list] = {}
    for e in s.events:
        by_engine[e.kind].append(e)
        by_stream.setdefault(e.stream, []).append(e)
    # engines execute serially
    for evs in by_engine.values():
        evs.sort(key=lambda e: e.start)
        for a, b in zip(evs, evs[1:]):
            assert b.start >= a.end - 1e-15
    # within a stream: h2d -> kernel -> d2h per chunk, in order
    for evs in by_stream.values():
        evs.sort(key=lambda e: e.start)
        kinds = [e.kind for e in evs]
        assert kinds == ["h2d", "kernel", "d2h"] * (len(evs) // 3)


def test_stream_events_obey_engine_and_stream_order():
    s = StreamScheduler(n_streams=4)
    s.run_batch(h2d_bytes=1e6, kernel_flops=1e7, kernel_bytes=1e7, d2h_bytes=1e6)
    _assert_valid_timeline(s)


@given(st.integers(min_value=1, max_value=16))
def test_more_streams_never_slower(n):
    one = StreamScheduler(n_streams=1)
    one.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=16)
    many = StreamScheduler(n_streams=n)
    many.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=16)
    assert many.makespan <= one.makespan + 1e-12


def test_overlap_efficiency_bounds():
    s = StreamScheduler(n_streams=8)
    s.run_batch(1e7, 1e8, 1e8, 1e7)
    eff = s.overlap_efficiency()
    assert 1.0 <= eff <= 3.0  # three engines max


def test_single_stream_serializes():
    s = StreamScheduler(n_streams=1)
    s.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=4)
    total = sum(e.duration for e in s.events)
    np.testing.assert_allclose(s.makespan, total, rtol=1e-12)


def test_eight_streams_best_for_paper_workload():
    """§V-D: sweeping stream counts, more streams monotonically improve
    until the pipeline saturates (the paper picked 8)."""
    times = {}
    for ns in (1, 2, 4, 8):
        s = StreamScheduler(n_streams=ns)
        times[ns] = s.run_batch(
            h2d_bytes=5e8, kernel_flops=7e9, kernel_bytes=3.6e9, d2h_bytes=5e8,
            n_chunks=ns,
        )
    assert times[8] <= times[4] <= times[2] <= times[1]
    assert times[8] < 0.75 * times[1]


def test_invalid_stream_count():
    with pytest.raises(ValueError):
        StreamScheduler(n_streams=0)


def test_run_batch_rejects_invalid_chunking():
    s = StreamScheduler(n_streams=2)
    with pytest.raises(ValueError, match="n_chunks"):
        s.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=0)
    with pytest.raises(ValueError, match="kernel_scale"):
        s.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=4, kernel_scale=[1.0, 1.0])
    with pytest.raises(ValueError, match=">= 1"):
        s.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=2, kernel_scale=[1.0, 0.5])


def test_single_chunk_serializes_on_any_stream_count():
    s = StreamScheduler(n_streams=8)
    s.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=1)
    assert len(s.events) == 3
    assert {e.stream for e in s.events} == {0}
    np.testing.assert_allclose(
        s.makespan, sum(e.duration for e in s.events), rtol=1e-12
    )
    _assert_valid_timeline(s)


def test_zero_byte_chunks_cost_only_launch_overhead():
    """Empty transfers pipeline cleanly; kernels still pay the launch."""
    s = StreamScheduler(n_streams=4)
    ms = s.run_batch(0.0, 0.0, 0.0, 0.0, n_chunks=4)
    assert len(s.events) == 12
    for e in s.events:
        if e.kind in ("h2d", "d2h"):
            assert e.duration == 0.0
    # four zero-size kernels on one serial compute engine
    np.testing.assert_allclose(ms, 4 * s.gpu.kernel_launch_s, rtol=1e-12)
    _assert_valid_timeline(s)


def test_more_streams_than_chunks_leaves_streams_idle():
    s = StreamScheduler(n_streams=8)
    s.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=3)
    assert {e.stream for e in s.events} == {0, 1, 2}
    _assert_valid_timeline(s)


def test_straggler_chunk_stretches_timeline_consistently():
    """A slowed chunk (kernel_scale > 1) delays the makespan and scales
    exactly its own kernel; the pipeline invariants survive."""
    base = StreamScheduler(n_streams=4)
    base.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=8)
    slow = StreamScheduler(n_streams=4)
    scale = [1.0] * 8
    scale[5] = 4.0
    slow.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=8, kernel_scale=scale)

    def kernel(s, chunk):
        return next(
            e for e in s.events if e.kind == "kernel" and e.chunk == chunk
        )

    assert slow.makespan > base.makespan
    np.testing.assert_allclose(
        kernel(slow, 5).duration, 4.0 * kernel(base, 5).duration, rtol=1e-12
    )
    np.testing.assert_allclose(
        kernel(slow, 0).duration, kernel(base, 0).duration, rtol=1e-12
    )
    _assert_valid_timeline(slow)


def test_uniform_kernel_scale_one_changes_nothing():
    a = StreamScheduler(n_streams=3)
    a.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=6)
    b = StreamScheduler(n_streams=3)
    b.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=6, kernel_scale=[1.0] * 6)
    assert a.events == b.events


def test_timeline_render_contains_lanes():
    s = StreamScheduler(n_streams=2)
    s.run_batch(1e6, 1e7, 1e7, 1e6)
    txt = s.render_ascii(40)
    assert "s0:h2d" in txt and "s1:d2h" in txt and "makespan" in txt


@pytest.mark.parametrize("scheme", ["gpu", "gpu_cpu_overlap", "gpu_gpu_overlap"])
def test_gpu_schemes_solve_identically(scheme):
    spec = elastic_bar_problem(3, 3, ElementType.HEX20)
    out = run_solve(spec, "hymv_gpu", precond="jacobi", rtol=1e-10,
                    scheme=scheme)
    ref = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10)
    assert out.iterations == ref.iterations
    np.testing.assert_allclose(out.err_inf, ref.err_inf, rtol=1e-6)


def test_gpu_setup_includes_h2d_cost():
    from repro.harness import run_bench

    spec = poisson_problem(8, 2)
    cpu = run_bench(spec, "hymv", n_spmv=2)
    gpu = run_bench(spec, "hymv_gpu", n_spmv=2)
    assert "setup.ke_h2d" in gpu.breakdown
    assert gpu.breakdown["setup.ke_h2d"] > 0


def test_gpu_rejects_unknown_scheme():
    spec = poisson_problem(4, 1)
    with pytest.raises(ValueError):
        run_solve(spec, "hymv_gpu", precond="none", scheme="warp-drive")


def test_faster_gpu_model_gives_faster_vtime():
    from repro.harness import run_bench

    # single rank: no communication, so the SPMV virtual time is purely
    # the deterministic device model
    spec = poisson_problem(8, 1)
    slow = run_bench(spec, "hymv_gpu", n_spmv=5, gpu=GpuModel(mem_gbps=50.0))
    fast = run_bench(spec, "hymv_gpu", n_spmv=5, gpu=GpuModel(mem_gbps=800.0))
    assert fast.spmv_time < slow.spmv_time


def test_gpu_operator_single_element_ranks():
    """Boundary: one element per rank (every element is dependent, the
    independent device batch is empty) still matches the CPU operator."""
    from repro.core import HymvOperator
    from repro.fem import PoissonOperator
    from repro.gpu import HymvGpuOperator
    from repro.mesh import box_hex_mesh
    from repro.partition import build_partition
    from repro.simmpi import run_spmd

    mesh = box_hex_mesh(1, 1, 2)
    op = PoissonOperator()
    part = build_partition(mesh, 2, method="slab")
    x = np.random.default_rng(11).standard_normal(mesh.n_nodes)

    def prog(comm, lmesh, xo, gpu):
        cls = HymvGpuOperator if gpu else HymvOperator
        A = cls(comm, lmesh, op)
        return A.apply_owned(xo)

    args = [
        (part.local(r), x[part.ranges[r, 0]: part.ranges[r, 1]])
        for r in range(2)
    ]
    cpu, _ = run_spmd(2, prog, rank_args=args, gpu=False)
    gpu, _ = run_spmd(2, prog, rank_args=args, gpu=True)
    np.testing.assert_allclose(
        np.concatenate(gpu), np.concatenate(cpu), atol=1e-13
    )


@pytest.mark.parametrize("scheme", ["gpu", "gpu_cpu_overlap", "gpu_gpu_overlap"])
def test_gpu_solve_unchanged_under_noncorrupting_faults(scheme):
    """The GPU pipeline rides the same fault-tolerant exchange: delays,
    reordering and drop+retry leave every scheme's solve identical."""
    from repro.faults import Delay, Drop, FaultPlan, Reorder

    spec = poisson_problem(4, 4)
    ref = run_solve(spec, "hymv_gpu", precond="jacobi", rtol=1e-10,
                    scheme=scheme, return_solution=True)
    plan = FaultPlan(
        rules=(Delay(1e-4, tag=101), Reorder(period=2), Drop(tag=101)),
        seed=3,
    )
    out = run_solve(spec, "hymv_gpu", precond="jacobi", rtol=1e-10,
                    scheme=scheme, return_solution=True, faults=plan)
    np.testing.assert_array_equal(out.solution, ref.solution)
    assert out.iterations == ref.iterations
