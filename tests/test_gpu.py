"""GPU simulation: stream scheduler semantics and the GPU operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import StreamScheduler
from repro.harness import run_solve
from repro.mesh import ElementType
from repro.perfmodel.machine import GpuModel
from repro.problems import elastic_bar_problem
from repro.problems import poisson_problem


def test_stream_events_obey_engine_and_stream_order():
    s = StreamScheduler(n_streams=4)
    s.run_batch(h2d_bytes=1e6, kernel_flops=1e7, kernel_bytes=1e7, d2h_bytes=1e6)
    by_engine: dict[str, list] = {"h2d": [], "kernel": [], "d2h": []}
    by_stream: dict[int, list] = {}
    for e in s.events:
        by_engine[e.kind].append(e)
        by_stream.setdefault(e.stream, []).append(e)
    # engines execute serially
    for evs in by_engine.values():
        evs.sort(key=lambda e: e.start)
        for a, b in zip(evs, evs[1:]):
            assert b.start >= a.end - 1e-15
    # within a stream: h2d -> kernel -> d2h per chunk, in order
    for evs in by_stream.values():
        evs.sort(key=lambda e: e.start)
        kinds = [e.kind for e in evs]
        assert kinds == ["h2d", "kernel", "d2h"] * (len(evs) // 3)


@given(st.integers(min_value=1, max_value=16))
def test_more_streams_never_slower(n):
    one = StreamScheduler(n_streams=1)
    one.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=16)
    many = StreamScheduler(n_streams=n)
    many.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=16)
    assert many.makespan <= one.makespan + 1e-12


def test_overlap_efficiency_bounds():
    s = StreamScheduler(n_streams=8)
    s.run_batch(1e7, 1e8, 1e8, 1e7)
    eff = s.overlap_efficiency()
    assert 1.0 <= eff <= 3.0  # three engines max


def test_single_stream_serializes():
    s = StreamScheduler(n_streams=1)
    s.run_batch(1e6, 1e7, 1e7, 1e6, n_chunks=4)
    total = sum(e.duration for e in s.events)
    np.testing.assert_allclose(s.makespan, total, rtol=1e-12)


def test_eight_streams_best_for_paper_workload():
    """§V-D: sweeping stream counts, more streams monotonically improve
    until the pipeline saturates (the paper picked 8)."""
    times = {}
    for ns in (1, 2, 4, 8):
        s = StreamScheduler(n_streams=ns)
        times[ns] = s.run_batch(
            h2d_bytes=5e8, kernel_flops=7e9, kernel_bytes=3.6e9, d2h_bytes=5e8,
            n_chunks=ns,
        )
    assert times[8] <= times[4] <= times[2] <= times[1]
    assert times[8] < 0.75 * times[1]


def test_invalid_stream_count():
    with pytest.raises(ValueError):
        StreamScheduler(n_streams=0)


def test_timeline_render_contains_lanes():
    s = StreamScheduler(n_streams=2)
    s.run_batch(1e6, 1e7, 1e7, 1e6)
    txt = s.render_ascii(40)
    assert "s0:h2d" in txt and "s1:d2h" in txt and "makespan" in txt


@pytest.mark.parametrize("scheme", ["gpu", "gpu_cpu_overlap", "gpu_gpu_overlap"])
def test_gpu_schemes_solve_identically(scheme):
    spec = elastic_bar_problem(3, 3, ElementType.HEX20)
    out = run_solve(spec, "hymv_gpu", precond="jacobi", rtol=1e-10,
                    scheme=scheme)
    ref = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10)
    assert out.iterations == ref.iterations
    np.testing.assert_allclose(out.err_inf, ref.err_inf, rtol=1e-6)


def test_gpu_setup_includes_h2d_cost():
    from repro.harness import run_bench

    spec = poisson_problem(8, 2)
    cpu = run_bench(spec, "hymv", n_spmv=2)
    gpu = run_bench(spec, "hymv_gpu", n_spmv=2)
    assert "setup.ke_h2d" in gpu.breakdown
    assert gpu.breakdown["setup.ke_h2d"] > 0


def test_gpu_rejects_unknown_scheme():
    spec = poisson_problem(4, 1)
    with pytest.raises(ValueError):
        run_solve(spec, "hymv_gpu", precond="none", scheme="warp-drive")


def test_faster_gpu_model_gives_faster_vtime():
    from repro.harness import run_bench

    # single rank: no communication, so the SPMV virtual time is purely
    # the deterministic device model
    spec = poisson_problem(8, 1)
    slow = run_bench(spec, "hymv_gpu", n_spmv=5, gpu=GpuModel(mem_gbps=50.0))
    fast = run_bench(spec, "hymv_gpu", n_spmv=5, gpu=GpuModel(mem_gbps=800.0))
    assert fast.spmv_time < slow.spmv_time
