"""Performance model: counters, cost shapes, scaling series, roofline.

These tests pin down the paper's qualitative claims as executable
assertions on the model tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.operators import ElasticityOperator, PoissonOperator
from repro.mesh import ElementType
from repro.perfmodel import (
    CaseGeometry,
    method_setup_time,
    method_spmv_time,
    spmv_counters,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.perfmodel.costs import (
    assembled_gpu_setup_time,
    assembled_gpu_spmv_time,
    gpu_setup_time,
    gpu_spmv_time,
)
from repro.perfmodel.machine import CoreRates, FronteraMachine
from repro.perfmodel.roofline import PAPER_ROOFLINE, render_ascii, roofline_points

PAPER_CORES = [56, 112, 224, 448, 896, 1792, 3584, 7168, 14336, 28672]
ELAST = ElasticityOperator()
POISSON = PoissonOperator()


def _geo(etype=ElementType.HEX8, op=POISSON, dofs=11.3e3, p=512, structured=True):
    return CaseGeometry.from_granularity(etype, op, dofs, p, structured)


def test_counters_matrix_free_does_most_flops():
    from repro.perfmodel.costs import _NODES_PER_ELEM

    for etype in ElementType:
        op = ELAST
        n_elem = 1000.0
        n_nodes = n_elem * _NODES_PER_ELEM[etype]
        c = {
            m: spmv_counters(m, etype, op, n_elem, n_nodes)
            for m in ("hymv", "assembled", "matfree")
        }
        assert c["matfree"].flops > c["hymv"].flops > c["assembled"].flops


def test_counters_table1_flop_magnitudes():
    """Table I: 10 SPMV at 5.6M dofs hex20 elasticity = 32.3 GFLOP (HYMV),
    19.2 (assembled), 2264 (matrix-free) — match within ~25%."""
    n_nodes = 5.6e6 / 3
    n_elem = n_nodes / 4.0
    c_h = spmv_counters("hymv", ElementType.HEX20, ELAST, n_elem, n_nodes)
    c_a = spmv_counters("assembled", ElementType.HEX20, ELAST, n_elem, n_nodes)
    c_m = spmv_counters("matfree", ElementType.HEX20, ELAST, n_elem, n_nodes)
    assert abs(10 * c_h.flops / 32.3e9 - 1) < 0.25
    assert abs(10 * c_a.flops / 19.2e9 - 1) < 0.25
    assert abs(10 * c_m.flops / 2264e9 - 1) < 0.60  # their matfree counts more


def test_setup_hymv_flat_in_p_weak_scaling():
    """Paper: 'the setup time of HYMV does not depend on p provided the
    granularity is kept constant'."""
    s = weak_scaling_series(["hymv"], PAPER_CORES, 11.3e3, ElementType.HEX8, POISSON)
    ts = [pt.setup_time for pt in s["hymv"]]
    assert max(ts) / min(ts) < 1.05


def test_setup_ratio_bands():
    """Headline setup speedups: ~10x (Poisson structured), ~5x (elasticity
    structured), ~11x average (unstructured)."""
    s = weak_scaling_series(
        ["hymv", "assembled"], [28672], 11.3e3, ElementType.HEX8, POISSON
    )
    r = s["assembled"][0].setup_time / s["hymv"][0].setup_time
    assert 4.0 < r < 14.0
    s = weak_scaling_series(
        ["hymv", "assembled"], [28672], 33.5e3, ElementType.HEX8, ELAST
    )
    r = s["assembled"][0].setup_time / s["hymv"][0].setup_time
    assert 3.0 < r < 8.0
    s = strong_scaling_series(
        ["hymv", "assembled"], [56 * n for n in (1, 2, 4, 8, 16, 32)],
        8.5e6, ElementType.TET10, POISSON, structured=False,
    )
    ratios = [
        a.setup_time / h.setup_time
        for a, h in zip(s["assembled"], s["hymv"])
    ]
    assert 7.0 < np.mean(ratios) < 16.0  # paper: 11x average


def test_matfree_spmv_dominates():
    for etype, op, dofs in [
        (ElementType.HEX8, POISSON, 11.3e3),
        (ElementType.HEX8, ELAST, 33.5e3),
        (ElementType.HEX20, ELAST, 33.5e3),
    ]:
        s = weak_scaling_series(
            ["hymv", "assembled", "matfree"], [896], dofs, etype, op
        )
        t = {m: s[m][0].spmv_time for m in s}
        assert t["matfree"] > 3.0 * max(t["hymv"], t["assembled"])


def test_unstructured_spmv_advantage():
    """Fig. 7: HYMV SPMV ≈ 3.6x faster than assembled on unstructured."""
    s = strong_scaling_series(
        ["hymv", "assembled"], [56 * n for n in (1, 2, 4, 8, 16, 32)],
        8.5e6, ElementType.TET10, POISSON, structured=False,
    )
    ratios = [
        a.spmv_time / h.spmv_time for a, h in zip(s["assembled"], s["hymv"])
    ]
    assert 2.5 < np.mean(ratios) < 5.5


def test_hybrid_beats_pure_mpi_and_petsc_for_quadratic():
    """Fig. 6a: hybrid HYMV < pure-MPI HYMV < PETSc for hex20."""
    mpi = weak_scaling_series(
        ["hymv", "assembled"], [28672], 33.5e3, ElementType.HEX20, ELAST
    )
    hyb = weak_scaling_series(
        ["hymv"], [28672], 33.5e3, ElementType.HEX20, ELAST, threads=28
    )
    t_h = mpi["hymv"][0].spmv_time
    t_a = mpi["assembled"][0].spmv_time
    t_y = hyb["hymv"][0].spmv_time
    assert t_y < t_h < t_a
    assert 1.2 < t_a / t_y < 2.2  # paper: 1.7x


def test_strong_scaling_times_decrease():
    s = strong_scaling_series(
        ["hymv", "assembled", "matfree"], [896, 1792, 3584, 7168, 14336],
        42e6, ElementType.HEX8, POISSON,
    )
    for m in s:
        ts = [pt.spmv_time for pt in s[m]]
        assert all(b < a for a, b in zip(ts, ts[1:]))


def test_overlap_helps_or_is_neutral():
    geo = _geo(dofs=5e3, p=1024)
    t_ov = method_spmv_time("hymv", geo, POISSON, overlap=True)
    t_no = method_spmv_time("hymv", geo, POISSON, overlap=False)
    assert t_ov <= t_no


def test_gpu_speedup_band():
    """Fig. 8a: GPU SPMV ≈ 7.4x the 2x14 CPU config at 25.1M dofs."""
    gm = FronteraMachine(rates=CoreRates(hybrid_emv_bonus=1.0))
    geo = CaseGeometry.from_granularity(ElementType.HEX20, ELAST, 25.1e6 / 2, 2)
    t_cpu = method_spmv_time("hymv", geo, ELAST, machine=gm, threads=14, n_spmv=10)
    t_gpu = gpu_spmv_time(geo, ELAST, machine=gm, threads=14, n_spmv=10)
    assert 5.0 < t_cpu / t_gpu < 10.0


def test_gpu_setup_slightly_above_cpu():
    geo = CaseGeometry.from_granularity(ElementType.HEX20, ELAST, 6.4e6, 2)
    su_cpu = method_setup_time("hymv", geo, ELAST, threads=14)["total"]
    su_gpu = gpu_setup_time(geo, ELAST, threads=14)["total"]
    assert su_cpu < su_gpu < 1.5 * su_cpu


def test_gpu_stream_sweep_8_best():
    geo = CaseGeometry.from_granularity(ElementType.HEX20, ELAST, 12.7e6, 2)
    ts = {ns: gpu_spmv_time(geo, ELAST, n_streams=ns) for ns in (1, 2, 4, 8)}
    assert ts[8] < ts[4] < ts[2] < ts[1]


def test_gpu_overlap_schemes_ordering_at_scale():
    """§V-D: GPU/CPU(O) degrades with more nodes (larger dependent
    fraction); GPU and GPU/GPU(O) comparable at small scale."""
    geo = CaseGeometry.from_granularity(
        ElementType.HEX20, ELAST, 6.3e6, 64, structured=True
    )
    t_gpu = gpu_spmv_time(geo, ELAST, scheme="gpu")
    t_gg = gpu_spmv_time(geo, ELAST, scheme="gpu_gpu_overlap")
    assert t_gg <= t_gpu * 1.05


def test_hymv_gpu_vs_petsc_gpu():
    """Fig. 9: HYMV-GPU faster than PETSc-GPU in both setup and SPMV."""
    geo = CaseGeometry.from_granularity(
        ElementType.HEX27, ELAST, 488e3, 16, structured=False
    )
    t_h = gpu_spmv_time(geo, ELAST, threads=4, scheme="gpu_gpu_overlap")
    t_p = assembled_gpu_spmv_time(geo, ELAST)
    assert 1.1 < t_p / t_h < 2.5  # paper: 1.5x
    su_h = gpu_setup_time(geo, ELAST, threads=4)["total"]
    su_p = assembled_gpu_setup_time(geo, ELAST)
    assert su_p / su_h > 2.0  # paper: 3.0x


def test_roofline_matches_paper_fig10():
    pts = {p.method: p for p in roofline_points(
        ElementType.HEX20, ELAST, 1000.0, 4000.0
    )}
    for m, (ai, gf) in PAPER_ROOFLINE.items():
        assert abs(pts[m].arithmetic_intensity / ai - 1) < 0.1, m
        assert abs(pts[m].gflops / gf - 1) < 0.05, m
    # orderings the paper highlights
    assert pts["assembled"].arithmetic_intensity > pts["hymv"].arithmetic_intensity
    assert pts["matfree"].gflops > pts["hymv"].gflops > pts["assembled"].gflops


def test_roofline_ascii_renders():
    pts = roofline_points(ElementType.HEX20, ELAST, 1000.0, 4000.0)
    txt = render_ascii(pts)
    assert "H=hymv" in txt and "M=matfree" in txt


def test_geometry_sanity():
    geo = _geo()
    assert geo.n_elements > 0 and geo.ghost_nodes < geo.n_nodes
    g1 = CaseGeometry.from_granularity(ElementType.HEX8, POISSON, 1e4, 1)
    assert g1.ghost_nodes == 0 and g1.boundary_elements == 0
    un = CaseGeometry.from_granularity(
        ElementType.TET10, POISSON, 1e5, 64, structured=False
    )
    st_ = CaseGeometry.from_granularity(
        ElementType.TET10, POISSON, 1e5, 64, structured=True
    )
    assert un.ghost_nodes > st_.ghost_nodes


def test_unknown_method_raises():
    geo = _geo()
    with pytest.raises(ValueError):
        method_setup_time("petsc", geo, POISSON)
    with pytest.raises(ValueError):
        method_spmv_time("petsc", geo, POISSON)
    with pytest.raises(ValueError):
        spmv_counters("petsc", ElementType.HEX8, POISSON, 1.0, 1.0)
    with pytest.raises(ValueError):
        gpu_spmv_time(geo, POISSON, scheme="nope")
