"""The central correctness property: HYMV SPMV == matrix-free SPMV ==
assembled SPMV == GPU SPMV == serial dense reference, on any mesh,
partitioner and operator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import AssembledOperator, MatrixFreeOperator, SerialReference
from repro.core import HymvOperator
from repro.fem import ElasticityOperator, PoissonOperator
from repro.gpu import AssembledGpuOperator, HymvGpuOperator
from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh, jittered_hex_mesh
from repro.partition import build_partition
from repro.simmpi import run_spmd

FACTORIES = {
    "hymv": HymvOperator,
    "matfree": MatrixFreeOperator,
    "assembled": AssembledOperator,
    "hymv_gpu": HymvGpuOperator,
    "assembled_gpu": AssembledGpuOperator,
}


def _reference_product(spec_mesh, op, part, x_new):
    """Serial SPMV mapped into the renumbered dof space."""
    ref = SerialReference(spec_mesh, op)
    ndpn = op.ndpn
    n = spec_mesh.n_nodes
    x_old = np.empty_like(x_new)
    for c in range(ndpn):
        x_old[part.old_of_new * ndpn + c] = x_new[np.arange(n) * ndpn + c]
    y_old = ref.spmv(x_old)
    y_new = np.empty_like(y_old)
    for c in range(ndpn):
        y_new[np.arange(n) * ndpn + c] = y_old[part.old_of_new * ndpn + c]
    return y_new


def _distributed_product(mesh, op, part, x_new, kind, **opts):
    p = part.n_parts
    ndpn = op.ndpn

    def prog(comm, lmesh, x):
        A = FACTORIES[kind](comm, lmesh, op, **opts)
        return A.apply_owned(x)

    args = [
        (
            part.local(r),
            x_new[part.ranges[r, 0] * ndpn: part.ranges[r, 1] * ndpn],
        )
        for r in range(p)
    ]
    res, _ = run_spmd(p, prog, rank_args=args)
    return np.concatenate(res)


CASES = [
    ("hex8-poisson-slab", lambda: box_hex_mesh(4, 4, 6), PoissonOperator(), "slab", 4),
    ("hex20-elastic-rcb", lambda: box_hex_mesh(3, 3, 4, ElementType.HEX20),
     ElasticityOperator(), "rcb", 3),
    ("hex27-elastic-graph",
     lambda: jittered_hex_mesh(3, 3, 3, ElementType.HEX27, jitter=0.15),
     ElasticityOperator(), "graph", 4),
    ("tet4-poisson-graph", lambda: box_tet_mesh(3, 3, 3, jitter=0.25),
     PoissonOperator(), "graph", 5),
    ("tet10-poisson-graph",
     lambda: box_tet_mesh(3, 3, 3, ElementType.TET10, jitter=0.25),
     PoissonOperator(), "graph", 4),
]


@pytest.mark.parametrize("name,mesh_fn,op,method,p", CASES)
@pytest.mark.parametrize("kind", list(FACTORIES))
def test_distributed_spmv_matches_serial(name, mesh_fn, op, method, p, kind):
    mesh = mesh_fn()
    part = build_partition(mesh, p, method=method)
    rng = np.random.default_rng(17)
    x = rng.standard_normal(mesh.n_nodes * op.ndpn)
    y_ref = _reference_product(mesh, op, part, x)
    y = _distributed_product(mesh, op, part, x, kind)
    scale = np.abs(y_ref).max()
    np.testing.assert_allclose(y, y_ref, atol=1e-12 * max(scale, 1.0))


@pytest.mark.parametrize("overlap", [True, False])
def test_overlap_flag_changes_nothing_numerically(overlap):
    mesh = box_tet_mesh(3, 3, 3, jitter=0.2)
    op = PoissonOperator()
    part = build_partition(mesh, 4, method="graph")
    rng = np.random.default_rng(3)
    x = rng.standard_normal(mesh.n_nodes)

    def prog(comm, lmesh, xo):
        A = HymvOperator(comm, lmesh, op)
        u, v = A.new_array(), A.new_array()
        u.set_owned(xo)
        A.spmv(u, v, overlap=overlap)
        return v.owned_flat.copy()

    args = [
        (part.local(r), x[part.ranges[r, 0]: part.ranges[r, 1]])
        for r in range(4)
    ]
    res, _ = run_spmd(4, prog, rank_args=args)
    y_ref = _reference_product(mesh, op, part, x)
    np.testing.assert_allclose(np.concatenate(res), y_ref, atol=1e-12)


@pytest.mark.parametrize("kernel", ["einsum", "columns"])
def test_emv_kernels_agree(kernel):
    mesh = box_hex_mesh(3, 3, 3, ElementType.HEX20)
    op = ElasticityOperator()
    part = build_partition(mesh, 2, method="slab")
    rng = np.random.default_rng(5)
    x = rng.standard_normal(mesh.n_nodes * 3)
    y = _distributed_product(mesh, op, part, x, "hymv", kernel=kernel)
    y_ref = _reference_product(mesh, op, part, x)
    np.testing.assert_allclose(y, y_ref, atol=1e-10)


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10))
@settings(max_examples=8)
def test_spmv_property_random_partitions(p, seed):
    """Any partitioning (even unbalanced random ones) gives the same SPMV."""
    from repro.partition.interface import partition_from_elem_part

    mesh = box_hex_mesh(3, 3, 3)
    op = PoissonOperator()
    rng = np.random.default_rng(seed)
    elem_part = rng.integers(0, p, size=mesh.n_elements)
    elem_part[:p] = np.arange(p)  # every rank gets at least one element
    part = partition_from_elem_part(mesh, p, elem_part)
    x = rng.standard_normal(mesh.n_nodes)
    y_ref = _reference_product(mesh, op, part, x)
    y = _distributed_product(mesh, op, part, x, "hymv")
    np.testing.assert_allclose(y, y_ref, atol=1e-11)


def test_spmv_linearity():
    mesh = box_tet_mesh(2, 2, 2, ElementType.TET10, jitter=0.1)
    op = PoissonOperator()
    part = build_partition(mesh, 3, method="rcb")
    rng = np.random.default_rng(9)
    x1 = rng.standard_normal(mesh.n_nodes)
    x2 = rng.standard_normal(mesh.n_nodes)
    y1 = _distributed_product(mesh, op, part, x1, "hymv")
    y2 = _distributed_product(mesh, op, part, x2, "hymv")
    y12 = _distributed_product(mesh, op, part, 2.0 * x1 - 3.0 * x2, "hymv")
    np.testing.assert_allclose(y12, 2.0 * y1 - 3.0 * y2, atol=1e-11)


def test_single_rank_needs_no_communication():
    mesh = box_hex_mesh(3, 3, 3)
    op = PoissonOperator()
    part = build_partition(mesh, 1, method="slab")
    x = np.random.default_rng(0).standard_normal(mesh.n_nodes)
    y = _distributed_product(mesh, op, part, x, "hymv")
    np.testing.assert_allclose(y, _reference_product(mesh, op, part, x), atol=1e-12)


@pytest.mark.parametrize("kind", ["hymv", "matfree", "hymv_gpu"])
@pytest.mark.parametrize("kernel", ["einsum", "columns"])
@pytest.mark.parametrize("p", [1, 4])
def test_workspace_path_bitwise_identical_to_legacy(kind, kernel, p):
    """The zero-allocation hot path (workspaces, segment scatter, packed
    halo buffers, column-major matrix layout) must not change a single
    bit of any SPMV product relative to the legacy allocating path."""
    mesh = jittered_hex_mesh(3, 3, 4, ElementType.HEX8, jitter=0.1)
    op = ElasticityOperator()
    part = build_partition(mesh, p, method="graph" if p > 1 else "slab")
    rng = np.random.default_rng(23)
    x = rng.standard_normal(mesh.n_nodes * 3)

    def prog(comm, lmesh, xo):
        ys = []
        for workspace in (False, True):
            A = FACTORIES[kind](
                comm, lmesh, op, kernel=kernel, workspace=workspace
            )
            u, v = A.new_array(), A.new_array()
            u.set_owned(xo)
            for _ in range(3):  # steady state: buffers fully reused
                A.spmv(u, v)
            ys.append(v.owned_flat.copy())
        return np.array_equal(ys[0], ys[1])

    args = [
        (part.local(r), x[part.ranges[r, 0] * 3: part.ranges[r, 1] * 3])
        for r in range(p)
    ]
    res, _ = run_spmd(p, prog, rank_args=args)
    assert all(res)


def test_repeated_spmv_is_idempotent_on_inputs():
    """Applying the operator twice to the same DA input gives identical
    results (ghost scratch does not leak between products)."""
    mesh = box_hex_mesh(3, 3, 4)
    op = PoissonOperator()
    part = build_partition(mesh, 3, method="slab")
    x = np.random.default_rng(1).standard_normal(mesh.n_nodes)

    def prog(comm, lmesh, xo):
        A = HymvOperator(comm, lmesh, op)
        # default contract: each call returns a fresh caller-owned copy,
        # so holding two products simultaneously is safe...
        y1 = A.apply_owned(xo)
        y2 = A.apply_owned(xo)
        assert y1 is not y2 and y1.base is None
        # ...while copy=False returns a view into the operator's work
        # buffer, overwritten by the next application (zero-copy opt-in)
        v1 = A.apply_owned(xo, copy=False)
        assert v1.base is not None
        assert np.array_equal(v1, y1)
        return np.abs(y1 - y2).max()

    args = [
        (part.local(r), x[part.ranges[r, 0]: part.ranges[r, 1]])
        for r in range(3)
    ]
    res, _ = run_spmd(3, prog, rank_args=args)
    assert max(res) == 0.0
