"""Property-based tests of the simulated MPI runtime: random traffic
patterns against sequential references."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import NetworkModel, run_spmd


@given(
    p=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=10)
def test_random_point_to_point_delivery(p, seed):
    """Random (dense) message pattern: every posted message is received
    exactly once with the right payload."""
    rng = np.random.default_rng(seed)
    # schedule[s][d] = list of payload seeds s sends to d
    schedule = [
        [list(rng.integers(0, 1000, size=rng.integers(0, 3)))
         for _ in range(p)]
        for _ in range(p)
    ]

    def prog(comm):
        me = comm.rank
        for d in range(p):
            for k, payload in enumerate(schedule[me][d]):
                comm.isend(np.array([payload, me, k]), d, tag=k)
        got = {}
        for s in range(p):
            for k, payload in enumerate(schedule[s][me]):
                data = comm.recv(s, tag=k)
                got[(s, k)] = data.tolist()
        return got

    res, _ = run_spmd(p, prog)
    for d in range(p):
        for s in range(p):
            for k, payload in enumerate(schedule[s][d]):
                assert res[d][(s, k)] == [payload, s, k]


@given(
    p=st.integers(min_value=1, max_value=6),
    vals=st.lists(
        st.floats(min_value=-100, max_value=100), min_size=6, max_size=6
    ),
)
@settings(max_examples=10)
def test_allreduce_matches_sequential(p, vals):
    def prog(comm):
        return comm.allreduce(vals[comm.rank])

    res, _ = run_spmd(p, prog)
    expected = sum(vals[:p])
    for r in res:
        np.testing.assert_allclose(r, expected, atol=1e-9)


@given(st.integers(min_value=2, max_value=6))
@settings(max_examples=6)
def test_barrier_synchronizes_clocks(p):
    def prog(comm):
        comm.advance(0.01 * (comm.rank + 1), "work")
        comm.barrier()
        return comm.vtime

    res, _ = run_spmd(p, prog)
    assert max(res) - min(res) < 1e-12
    assert min(res) >= 0.01 * p  # everyone waited for the slowest


def test_vtime_deterministic_across_runs_with_modeled_compute():
    """With compute_scale=0 and modeled advances, virtual times are
    bitwise reproducible run-to-run (regression guard for the
    deterministic mode used by the overlap ablation)."""
    from repro.core import HymvOperator
    from repro.problems import poisson_problem

    spec = poisson_problem(6, 3)

    def prog(comm, lmesh):
        A = HymvOperator(comm, lmesh, spec.operator, modeled_rate_gflops=0.1)
        u, v = A.new_array(), A.new_array()
        u.set_owned(np.ones(A.n_dofs_owned))
        for _ in range(3):
            A.spmv(u, v)
        return comm.vtime

    times = []
    for _ in range(3):
        res, _ = run_spmd(
            3, prog,
            rank_args=[(spec.partition.local(r),) for r in range(3)],
            compute_scale=0.0,
        )
        times.append(tuple(res))
    assert times[0] == times[1] == times[2]


def test_network_hierarchy_affects_vtime():
    flat = NetworkModel(cores_per_node=1)  # everything inter-node
    packed = NetworkModel(cores_per_node=64)  # everything intra-node

    def prog(comm):
        if comm.rank == 0:
            comm.isend(np.zeros(100_000), 1)
            comm.barrier()
        else:
            comm.recv(0)
            comm.barrier()
        return comm.vtime

    _, s_flat = run_spmd(2, prog, network=flat)
    _, s_packed = run_spmd(2, prog, network=packed)
    # intra-node transport (higher latency but the defaults differ):
    # modeled times must simply differ according to the topology
    assert s_flat.max_vtime != s_packed.max_vtime


def test_collective_order_requirement_documented():
    """Mismatched collective sequences across ranks produce garbage or
    deadlock (here: abort via exception in one rank unblocks the rest)."""
    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("divergent control flow")
        comm.allreduce(1.0)

    with pytest.raises(RuntimeError, match="divergent"):
        run_spmd(3, prog)
