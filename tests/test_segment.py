"""SegmentScatter: the precomputed zero-allocation accumulation must be
bitwise identical to the ``np.add.at`` reference and to the legacy
bincount path, on any (duplicate-heavy) index structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment import SegmentScatter


def _random_batch(n_dofs, n_elems, nd, dup_factor, seed):
    """An (E, nd) index set hitting only a fraction of the dof range, so
    every dof that is touched is touched many times (the dependent-sweep
    shape that stresses the grouping order)."""
    rng = np.random.default_rng(seed)
    hi = max(1, int(np.ceil(n_dofs / dup_factor)))
    idx = rng.integers(0, hi, size=(n_elems, nd))
    vals = rng.standard_normal((n_elems, nd))
    return idx, vals


@given(
    n_dofs=st.integers(min_value=1, max_value=200),
    n_elems=st.integers(min_value=1, max_value=40),
    nd=st.integers(min_value=1, max_value=12),
    dup_factor=st.sampled_from([1, 4, 16]),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40)
def test_segment_bitwise_matches_add_at_and_bincount(
    n_dofs, n_elems, nd, dup_factor, seed
):
    idx, vals = _random_batch(n_dofs, n_elems, nd, dup_factor, seed)
    seg = SegmentScatter(idx)

    # zero destination: all three formulations must agree bit for bit
    ref_at = np.zeros(n_dofs)
    np.add.at(ref_at, idx.reshape(-1), vals.reshape(-1))
    ref_bc = np.bincount(
        idx.reshape(-1), weights=vals.reshape(-1), minlength=n_dofs
    )
    got = seg.add_into(np.zeros(n_dofs), vals)
    np.testing.assert_array_equal(got, ref_at)
    np.testing.assert_array_equal(got, ref_bc)

    # nonzero destination (the dependent sweep): identical to the legacy
    # ``out += bincount`` path — group sums added with a single rounding
    rng = np.random.default_rng(seed + 1)
    base = rng.standard_normal(n_dofs)
    expect = base + ref_bc
    np.testing.assert_array_equal(seg.add_into(base.copy(), vals), expect)


@given(
    n_dofs=st.integers(min_value=1, max_value=100),
    n_elems=st.integers(min_value=1, max_value=30),
    nd=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25)
def test_fallback_bitwise_matches_csr_path(n_dofs, n_elems, nd, seed):
    idx, vals = _random_batch(n_dofs, n_elems, nd, 4, seed)
    fast = SegmentScatter(idx)
    slow = SegmentScatter(idx, force_fallback=True)
    base = np.random.default_rng(seed).standard_normal(n_dofs)
    np.testing.assert_array_equal(
        fast.add_into(base.copy(), vals), slow.add_into(base.copy(), vals)
    )


@pytest.mark.parametrize("force_fallback", [False, True])
def test_reuse_across_calls(force_fallback):
    """One structure, many value sets — the whole point of precomputing."""
    rng = np.random.default_rng(7)
    idx = rng.integers(0, 15, size=(20, 8))
    seg = SegmentScatter(idx, force_fallback=force_fallback)
    for _ in range(4):
        vals = rng.standard_normal((20, 8))
        ref = np.zeros(60)
        np.add.at(ref, idx.reshape(-1), vals.reshape(-1))
        np.testing.assert_array_equal(seg.add_into(np.zeros(60), vals), ref)


def test_touched_is_sorted_unique_and_untouched_entries_untouched():
    idx = np.array([[5, 2, 5], [2, 9, 5]])
    seg = SegmentScatter(idx)
    np.testing.assert_array_equal(seg.touched, [2, 5, 9])
    assert seg.n_touched == 3
    # np.add.at semantics: untouched entries are never read or written —
    # a negative zero outside the touched set survives (the legacy
    # bincount path would rewrite it to +0.0)
    out = np.full(12, -0.0)
    seg.add_into(out, np.ones((2, 3), dtype=float))
    assert np.signbit(out[0]) and np.signbit(out[11])
    np.testing.assert_array_equal(out[[2, 5, 9]], [2.0, 3.0, 1.0])


def test_empty_index_set():
    seg = SegmentScatter(np.empty((0, 8), dtype=np.int64))
    out = np.full(5, 3.0)
    assert seg.add_into(out, np.empty((0, 8))) is out
    np.testing.assert_array_equal(out, np.full(5, 3.0))
    assert seg.n_touched == 0


def test_value_size_mismatch_raises():
    seg = SegmentScatter(np.array([[0, 1], [1, 2]]))
    with pytest.raises(ValueError, match="value size mismatch"):
        seg.add_into(np.zeros(3), np.zeros(5))


def test_negative_index_raises_at_construction():
    # mode="clip" in the hot path must never mask a corrupt map: bad
    # indices are rejected where they are frozen, not silently clipped
    with pytest.raises(IndexError, match="negative dof index"):
        SegmentScatter(np.array([[0, 1], [-3, 2]]))


def test_out_of_range_destination_raises():
    seg = SegmentScatter(np.array([[0, 5], [5, 2]]))
    with pytest.raises(IndexError, match="destination too small"):
        seg.add_into(np.zeros(5), np.ones(4))
    # exactly large enough is fine
    seg.add_into(np.zeros(6), np.ones(4))


def test_add_into_is_allocation_free_after_construction():
    import tracemalloc

    rng = np.random.default_rng(3)
    idx = rng.integers(0, 400, size=(300, 8))
    vals = rng.standard_normal((300, 8))
    seg = SegmentScatter(idx)
    out = np.zeros(1200)
    seg.add_into(out, vals)  # warm any lazy interpreter state
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(5):
            seg.add_into(out, vals)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    # no numpy temp anywhere near the batch (19 KB) or dof (9.6 KB) size
    assert peak - base < 4096
