"""Bench-document schema and the perf-gate compare tool."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs import BENCH_SCHEMA, SchemaError, validate_bench_doc
from repro.obs.bench import SmokeCase, run_smoke_suite
from repro.obs.compare import compare_docs, main as compare_main
from repro.obs.schema import new_bench_doc, result_key


def _tiny_case():
    from repro.problems import poisson_problem

    return SmokeCase(
        name="poisson-tiny",
        make_spec=lambda: poisson_problem(4, n_parts=2),
        methods=("hymv",),
        n_spmv=2,
    )


@pytest.fixture(scope="module")
def tiny_doc():
    return run_smoke_suite(
        repeats=2, modeled=True, cases=(_tiny_case(),), verbose=False
    )


# ----------------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------------

def test_new_doc_validates_and_round_trips():
    doc = new_bench_doc(suite="smoke", repeats=3, config={"modeled": True})
    assert doc["schema"] == BENCH_SCHEMA
    round_tripped = json.loads(json.dumps(doc))
    assert validate_bench_doc(round_tripped) == round_tripped


def test_validate_rejects_malformed_docs():
    with pytest.raises(SchemaError):
        validate_bench_doc([])
    with pytest.raises(SchemaError):
        validate_bench_doc({"schema": "repro.bench/999"})
    doc = new_bench_doc(suite="smoke", repeats=1)
    doc["results"].append({"case": "x"})  # missing required result keys
    with pytest.raises(SchemaError, match="missing key"):
        validate_bench_doc(doc)
    doc["results"][0] = {
        "case": "x", "method": "hymv", "n_parts": 2, "n_dofs": 100,
        "phases": {"spmv.total": {"median": 1.0}},  # missing min/max/repeats
        "counters": {},
    }
    with pytest.raises(SchemaError, match="spmv.total"):
        validate_bench_doc(doc)


def test_smoke_suite_produces_valid_deterministic_doc(tiny_doc):
    assert validate_bench_doc(tiny_doc) is tiny_doc
    (res,) = tiny_doc["results"]
    assert result_key(res) == "poisson-tiny/hymv"
    # modeled mode: every repeat produces identical virtual times
    for stats in res["phases"].values():
        assert stats["min"] == stats["max"] == stats["median"]
        assert stats["repeats"] == 2
    assert res["phases"]["spmv.total"]["median"] > 0
    assert res["counters"]["spmv.elements"] > 0
    # the whole document survives a JSON round trip
    assert validate_bench_doc(json.loads(json.dumps(tiny_doc)))


# ----------------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------------

def test_compare_doc_with_itself_passes(tiny_doc):
    ok, findings = compare_docs(tiny_doc, tiny_doc)
    assert ok
    assert not findings


def test_compare_flags_synthetic_regression(tiny_doc):
    worse = copy.deepcopy(tiny_doc)
    worse["results"][0]["phases"]["spmv.total"]["median"] *= 2.0
    ok, findings = compare_docs(tiny_doc, worse, budget=0.25)
    assert not ok
    fails = [f for f in findings if f.severity == "fail"]
    assert any("spmv.total" in f.where for f in fails)
    # the same diff inside a generous budget passes
    ok, _ = compare_docs(tiny_doc, worse, budget=1.5)
    assert ok


def test_compare_flags_counter_increase(tiny_doc):
    worse = copy.deepcopy(tiny_doc)
    worse["results"][0]["counters"]["spmv.elements"] *= 1.10
    ok, findings = compare_docs(tiny_doc, worse, counter_budget=0.05)
    assert not ok
    assert any(
        f.severity == "fail" and "spmv.elements" in f.where for f in findings
    )


def test_compare_flags_missing_result(tiny_doc):
    empty = copy.deepcopy(tiny_doc)
    empty["results"] = []
    ok, findings = compare_docs(tiny_doc, empty)
    assert not ok
    assert findings[0].severity == "fail"
    # extra candidate results are fine; missing baseline rows are not checked
    ok, _ = compare_docs(empty, tiny_doc)
    assert ok


def test_compare_fails_on_missing_gated_phase(tiny_doc):
    """A gated phase that vanishes from the candidate must FAIL loudly
    (historically it was a warn, so deleting the instrumented hot path —
    e.g. renaming ``spmv.sell.diag`` — read as a pass)."""
    gutted = copy.deepcopy(tiny_doc)
    # simulate the sellcs hazard: the gated phase row loses its phase
    gutted["results"][0]["phases"] = {
        "spmv.sell.diag": {"median": 1.0, "min": 1.0, "max": 1.0,
                           "repeats": 2},
    }
    ok, findings = compare_docs(tiny_doc, gutted)
    assert not ok
    fails = [f for f in findings if f.severity == "fail"]
    assert any(
        "spmv.total" in f.where and "gated phase missing" in f.message
        for f in fails
    )
    # the message says what to do about it, not just that it happened
    assert any("regenerate the baseline" in f.message for f in fails)


def test_compare_fails_on_missing_gated_counter(tiny_doc):
    gutted = copy.deepcopy(tiny_doc)
    del gutted["results"][0]["counters"]["spmv.elements"]
    ok, findings = compare_docs(tiny_doc, gutted)
    assert not ok
    assert any(
        f.severity == "fail"
        and "spmv.elements" in f.where
        and "gated counter missing" in f.message
        for f in findings
    )


def test_compare_tolerates_subfloor_phase_disappearing(tiny_doc):
    """Phases at or under the absolute floor were never gated, so their
    disappearance stays a warning, not a failure."""
    from repro.obs.compare import ABS_FLOOR_S

    base = copy.deepcopy(tiny_doc)
    base["results"][0]["phases"]["spmv.negligible"] = {
        "median": ABS_FLOOR_S / 2, "min": 0.0, "max": ABS_FLOOR_S,
        "repeats": 2,
    }
    ok, findings = compare_docs(base, tiny_doc)
    assert ok
    assert any(
        f.severity == "warn" and "spmv.negligible" in f.where
        for f in findings
    )


def test_markdown_summary_carries_sellcs_occupancy(tiny_doc):
    """Candidate rows carrying the sellcs gauges get a layout digest in
    the CI step summary."""
    from repro.obs.compare import markdown_summary

    cand = copy.deepcopy(tiny_doc)
    cand["results"][0]["counters"]["sellcs.padded_nnz"] = 7284.0
    cand["results"][0]["counters"]["sellcs.occupancy"] = 0.9417
    md = markdown_summary(tiny_doc, cand, [], True, 0.25)
    assert "SELL-C-sigma layout" in md
    assert "| poisson-tiny/hymv | 7284 | 0.942 |" in md
    # and rows without the gauges render no digest at all
    md = markdown_summary(tiny_doc, tiny_doc, [], True, 0.25)
    assert "SELL-C-sigma layout" not in md


def test_compare_cli_exit_codes(tiny_doc, tmp_path):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(tiny_doc))
    worse_doc = copy.deepcopy(tiny_doc)
    worse_doc["results"][0]["phases"]["spmv.total"]["median"] *= 3.0
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps(worse_doc))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")

    assert compare_main([str(base), str(base)]) == 0
    assert compare_main([str(base), str(worse)]) == 1
    assert compare_main([str(base), str(bad)]) == 2
    assert compare_main([str(base), str(tmp_path / "absent.json")]) == 2


def test_markdown_summary_written_to_step_summary(tiny_doc, tmp_path,
                                                  monkeypatch):
    """Under GitHub Actions the compare CLI appends a markdown digest to
    $GITHUB_STEP_SUMMARY; the table carries every gated phase and the
    verdict heading reflects pass/fail."""
    from repro.obs.compare import markdown_summary

    base = tmp_path / "base.json"
    base.write_text(json.dumps(tiny_doc))
    summary = tmp_path / "step_summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert compare_main([str(base), str(base)]) == 0
    text = summary.read_text()
    assert "**PASS**" in text
    assert "| result | phase |" in text
    for res in tiny_doc["results"]:
        assert result_key(res) in text

    worse_doc = copy.deepcopy(tiny_doc)
    worse_doc["results"][0]["phases"]["spmv.total"]["median"] *= 3.0
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps(worse_doc))
    summary.write_text("")  # fresh file for the failing run
    assert compare_main([str(base), str(worse)]) == 1
    text = summary.read_text()
    assert "**FAIL**" in text
    assert "#### Findings" in text

    # without the env var the writer is a no-op and the CLI still works
    monkeypatch.delenv("GITHUB_STEP_SUMMARY")
    assert compare_main([str(base), str(base)]) == 0

    # the pure function renders a table even for an empty finding list
    md = markdown_summary(tiny_doc, tiny_doc, [], True, 0.25)
    assert md.startswith("### Perf gate")
