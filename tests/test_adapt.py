"""Local (Rivara) refinement and element-matrix reuse across meshes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HymvOperator
from repro.fem import PoissonOperator
from repro.mesh import box_tet_mesh
from repro.mesh.adapt import refine_local
from repro.mesh.element import TET_FACES
from repro.partition import build_partition
from repro.simmpi import run_spmd


def _conforming(mesh) -> bool:
    keys = np.vstack(
        [np.sort(mesh.conn[:, list(f)], axis=1) for f in TET_FACES]
    )
    view = np.ascontiguousarray(keys).view([("", keys.dtype)] * 3).reshape(-1)
    _, counts = np.unique(view, return_counts=True)
    return set(counts.tolist()) <= {1, 2}


def _volumes(mesh):
    c = mesh.coords[mesh.conn]
    return np.linalg.det(c[:, 1:4] - c[:, 0:1]) / 6.0


def test_refine_local_basic():
    mesh = box_tet_mesh(2, 2, 2, jitter=0.15, seed=1)
    ref = refine_local(mesh, [0, 5])
    assert ref.mesh.n_elements > mesh.n_elements
    assert _conforming(ref.mesh)
    v = _volumes(ref.mesh)
    assert (v > 0).all()
    np.testing.assert_allclose(v.sum(), _volumes(mesh).sum(), rtol=1e-12)


def test_refine_local_ancestry_and_unchanged():
    mesh = box_tet_mesh(2, 2, 2, jitter=0.0)
    marked = [3]
    ref = refine_local(mesh, marked)
    assert ref.ancestor.shape == (ref.mesh.n_elements,)
    # unchanged elements are bit-identical to their ancestors
    for ei in np.flatnonzero(ref.unchanged):
        anc = ref.ancestor[ei]
        np.testing.assert_array_equal(
            ref.mesh.coords[ref.mesh.conn[ei]], mesh.coords[mesh.conn[anc]]
        )
    # the marked element is gone (touched)
    assert not ref.unchanged[3]
    assert ref.n_new_elements >= 2


def test_refine_local_empty_marks_is_identity():
    mesh = box_tet_mesh(2, 2, 2, jitter=0.1)
    ref = refine_local(mesh, np.array([], dtype=np.int64))
    assert ref.mesh.n_elements == mesh.n_elements
    assert ref.unchanged.all()


def test_refine_local_validation():
    mesh = box_tet_mesh(1, 1, 1)
    with pytest.raises(ValueError):
        refine_local(mesh, [99])
    from repro.mesh import box_hex_mesh

    with pytest.raises(ValueError):
        refine_local(box_hex_mesh(1, 1, 1), [0])


def test_repeated_refinement_keeps_quality_bounded():
    """Rivara bisection famously keeps shape quality bounded; check the
    min dihedral-ish quality does not collapse over repeated passes."""
    mesh = box_tet_mesh(2, 2, 2, jitter=0.1)

    def quality(m):
        c = m.coords[m.conn]
        vol = np.abs(np.linalg.det(c[:, 1:4] - c[:, 0:1]) / 6.0)
        edges = [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)]
        h = np.max(
            [np.linalg.norm(c[:, a] - c[:, b], axis=1) for a, b in edges],
            axis=0,
        )
        return (vol / h**3).min()

    q0 = quality(mesh)
    rng = np.random.default_rng(0)
    for _ in range(3):
        marked = rng.choice(mesh.n_elements, size=4, replace=False)
        mesh = refine_local(mesh, marked).mesh
        assert _conforming(mesh)
        assert (_volumes(mesh) > 0).all()
    assert quality(mesh) > q0 / 20.0  # bounded degradation


def test_ke_cache_reuse_across_refinement():
    """Adaptive workflow: after local refinement, only new elements pay
    the elemental computation; results match a cold rebuild exactly."""
    op = PoissonOperator()
    mesh = box_tet_mesh(2, 2, 2, jitter=0.1)
    ref = refine_local(mesh, [0, 7])
    fine = ref.mesh

    part_old = build_partition(mesh, 1, method="slab")
    part_new = build_partition(fine, 1, method="slab")
    rng = np.random.default_rng(2)
    x = rng.standard_normal(fine.n_nodes)

    def prog(comm):
        A_old = HymvOperator(comm, part_old.local(0), op)
        cache_old = A_old.export_ke_cache()
        # translate the cache to the refined mesh via ancestry, keeping
        # only untouched elements
        cache = {
            ei: cache_old[int(ref.ancestor[ei])]
            for ei in np.flatnonzero(ref.unchanged)
        }
        A_warm = HymvOperator(comm, part_new.local(0), op, ke_cache=cache)
        A_cold = HymvOperator(comm, part_new.local(0), op)
        y_warm = A_warm.apply_owned(x)
        y_cold = A_cold.apply_owned(x)
        return A_warm.cache_hits, np.abs(y_warm - y_cold).max()

    res, _ = run_spmd(1, prog)
    hits, err = res[0]
    assert hits == int(ref.unchanged.sum())
    assert hits > 0
    assert err == 0.0  # bitwise identical matrices


def test_ke_cache_fem_correctness_after_refinement():
    """Solve on a locally-refined mesh with cached matrices; error vs the
    exact solution stays consistent."""
    import scipy.sparse.linalg  # noqa: F401 (ensure available)

    from repro.fem.analytic import poisson_exact, poisson_forcing
    from repro.baselines.serial import SerialReference
    from repro.fem.loads import body_force_rhs_batch

    mesh = box_tet_mesh(3, 3, 3, jitter=0.1)
    # refine around the domain centre where the forcing peaks
    cent = mesh.element_centroids()
    marked = np.flatnonzero(np.linalg.norm(cent - 0.25, axis=1) < 0.3)
    fine = refine_local(mesh, marked).mesh
    ref = SerialReference(fine, PoissonOperator())
    fe = body_force_rhs_batch(
        fine.coords[fine.conn], fine.etype,
        lambda x: poisson_forcing(x)[..., None], 1,
    )
    f = ref.rhs_from_elemental(fe[:, :, None])
    u = ref.solve_dirichlet(f, fine.boundary_nodes(), np.zeros(ref.n_dofs))
    err = np.abs(u - poisson_exact(fine.coords)).max()
    assert err < 5e-3
