"""Differential delta-vs-rebuild suite: a delta-updated operator must be
**bitwise identical** — not merely close — to one freshly built from the
post-update mesh, for every operator kind, every update type, and every
serving path (single-RHS, multi-RHS oracle, batched CG solve)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapt import CrackFront, MeshDelta, apply_delta_to_spec
from repro.serve.cache import ProblemKey, SolverContext

METHODS = ("hymv", "assembled", "matfree", "partial", "hymv_gpu")
KINDS = ("scale", "coords", "refine")


def _key(method):
    return ProblemKey(
        problem="poisson", nel=4, n_parts=2, etype="tet4", seed=3,
        method=method,
    )


def _delta(ctx, kind):
    cf = CrackFront()
    if kind == "scale":
        return cf.scale_delta(ctx.spec.mesh, 0, 8)
    if kind == "coords":
        # front deep enough into the cube that interior nodes sit behind it
        return cf.move_delta(ctx.spec, 3, 8, amplitude=2e-3)
    if kind == "refine":
        return cf.refine_delta(ctx.spec.mesh, 0, 8)
    raise AssertionError(kind)


def _assert_bitwise(ctx, fresh, seed=7):
    assert fresh.n_dofs == ctx.n_dofs
    rng = np.random.default_rng(seed)
    for k in (1, 3):  # single-RHS and multi-RHS paths
        X = rng.standard_normal((ctx.n_dofs, k))
        Yd, _ = ctx.apply_multi(X, mode="oracle")
        Yf, _ = fresh.apply_multi(X, mode="oracle")
        assert np.array_equal(Yd, Yf)
    F = rng.standard_normal((ctx.n_dofs, 2))
    Sd, _ = ctx.solve_multi(F, rtol=1e-8, mode="oracle")
    Sf, _ = fresh.solve_multi(F, rtol=1e-8, mode="oracle")
    assert Sd["iterations"] == Sf["iterations"]  # same CG trajectory
    assert np.array_equal(Sd["x"], Sf["x"])


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("method", METHODS)
def test_delta_updated_operator_is_bitwise_fresh(method, kind):
    """The differential matrix: operator kind x update type."""
    ctx = SolverContext(_key(method))
    delta = _delta(ctx, kind)
    info = ctx.apply_delta(delta)
    assert info["touched"] > 0
    if kind == "refine":
        assert info["path"] == "full_rebuild"  # structural: dofs change
    _assert_bitwise(ctx, SolverContext(ctx.key))


def test_delta_stream_stays_bitwise():
    """A realistic stream — patch, move, refine, patch-on-refined — stays
    bitwise against a fresh build replaying the whole key history."""
    ctx = SolverContext(_key("hymv"))
    cf = CrackFront()
    paths = []
    for d in (
        cf.scale_delta(ctx.spec.mesh, 0, 8),
        cf.move_delta(ctx.spec, 1, 8, amplitude=2e-3),
        cf.refine_delta(ctx.spec.mesh, 2, 8),
        cf.scale_delta(ctx.spec.mesh, 3, 8),
    ):
        paths.append(ctx.apply_delta(d)["path"])
    assert paths[0] == "patch" and paths[2] == "full_rebuild"
    assert len(ctx.key.deltas) == 4
    _assert_bitwise(ctx, SolverContext(ctx.key))


def test_rebuild_threshold_forces_full_rebuild():
    """A delta touching more than the threshold fraction takes the
    full-rebuild path — and still lands bitwise on the fresh build."""
    ctx = SolverContext(_key("hymv"))
    delta = CrackFront(half_width=0.5).scale_delta(ctx.spec.mesh, 0, 2)
    info = ctx.apply_delta(delta, threshold=0.10)
    assert info["fraction"] > 0.10
    assert info["path"] == "full_rebuild"
    assert info["ke_cache_hits"] > 0  # untouched matrices were reused
    _assert_bitwise(ctx, SolverContext(ctx.key))


def test_update_elements_out_of_range_raises():
    """Regression: out-of-range local element ids must raise IndexError
    (fancy-indexing through _inv_order used to wrap/ignore them), and a
    failed update must leave the operator untouched."""
    ctx = SolverContext(_key("hymv"))
    A = ctx.ranks[0]["A"]
    before = A.ke.tobytes()
    for bad in ([A.n_local_elements], [-1], [0, 10 ** 6]):
        with pytest.raises(IndexError, match="out of range"):
            A.update_elements(np.asarray(bad), stiffness_scale=2.0)
    assert A.ke.tobytes() == before


def test_mesh_delta_validation():
    with pytest.raises(ValueError, match="positive"):
        MeshDelta(scale_elements=[1], scale_values=[0.0])
    with pytest.raises(ValueError, match="length mismatch"):
        MeshDelta(scale_elements=[1, 2], scale_values=[0.5])
    with pytest.raises(ValueError, match="pure"):
        MeshDelta(scale_elements=[1], scale_values=[0.5],
                  refine_elements=[2])
    with pytest.raises(ValueError, match="structural"):
        MeshDelta(refine_elements=[1]).compose(MeshDelta())
    # last occurrence wins on duplicate ids; order is canonicalized
    d = MeshDelta(scale_elements=[4, 2, 4], scale_values=[1.0, 2.0, 3.0])
    assert d.scale_elements.tolist() == [2, 4]
    assert d.scale_values.tolist() == [2.0, 3.0]
    same = MeshDelta(scale_elements=[2, 4], scale_values=[2.0, 3.0])
    assert d == same and d.fingerprint() == same.fingerprint()


def test_apply_delta_to_spec_bounds():
    spec = _key("hymv").build_spec()
    with pytest.raises(IndexError):
        apply_delta_to_spec(
            spec,
            MeshDelta(scale_elements=[spec.mesh.n_elements],
                      scale_values=[0.5]),
        )
    with pytest.raises(IndexError):
        apply_delta_to_spec(
            spec,
            MeshDelta(move_nodes=[spec.mesh.n_nodes],
                      move_coords=[[0.0, 0.0, 0.0]]),
        )


def test_key_fingerprint_tracks_delta_history():
    base = _key("hymv")
    d = MeshDelta(scale_elements=[1], scale_values=[0.5])
    k1 = base.with_delta(d)
    assert k1.fingerprint() != base.fingerprint()
    assert k1.fingerprint() == base.with_delta(d).fingerprint()
    # a different delta gives a different identity
    d2 = MeshDelta(scale_elements=[1], scale_values=[0.25])
    assert base.with_delta(d2).fingerprint() != k1.fingerprint()
