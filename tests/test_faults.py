"""Fault injection: rule semantics, determinism, recovery, chaos suite."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults import (
    Corrupt,
    Delay,
    Drop,
    FaultPlan,
    MessageLostError,
    Reorder,
    Straggler,
    corrupt_array,
    payload_checksum,
)
from repro.faults.chaos import run_chaos
from repro.problems import ElementType, poisson_problem
from repro.simmpi import run_spmd
from repro.solvers.cg import ResilienceConfig


# ----------------------------------------------------------------------------
# plan validation
# ----------------------------------------------------------------------------

def test_plan_rejects_invalid_rules():
    with pytest.raises(ValueError):
        FaultPlan(rules=(Delay(-1.0),))
    with pytest.raises(ValueError):
        FaultPlan(rules=(Reorder(period=0),))
    with pytest.raises(ValueError):
        FaultPlan(rules=(Drop(times=0),))
    with pytest.raises(ValueError):
        FaultPlan(rules=(Straggler(0, 0.5),))  # speedups are not faults
    with pytest.raises(ValueError):
        FaultPlan(rules=(Corrupt(mode="gamma-ray"),))
    with pytest.raises(ValueError):
        FaultPlan(rules=(Drop(skip=-1),))
    with pytest.raises(TypeError):
        FaultPlan(rules=("drop",))
    with pytest.raises(ValueError):
        FaultPlan(retry_timeout=0.0)
    with pytest.raises(ValueError):
        FaultPlan(max_retries=0)


def test_bind_validates_rank_ranges():
    with pytest.raises(ValueError):
        FaultPlan(rules=(Straggler(4, 2.0),)).bind(4)
    with pytest.raises(ValueError):
        FaultPlan(rules=(Drop(src=9),)).bind(4)
    fi = FaultPlan(rules=(Straggler(1, 3.0),)).bind(4)
    assert fi.compute_factor(1) == 3.0
    assert fi.compute_factor(0) == 1.0


def test_plan_describe_is_json_able():
    plan = FaultPlan(
        rules=(Delay(1e-3, src=0, dst=1), Straggler(2, 4.0)),
        seed=7,
        checksums=True,
    )
    doc = json.loads(json.dumps(plan.describe()))
    assert doc["seed"] == 7 and doc["checksums"] is True
    assert [r["rule"] for r in doc["rules"]] == ["Delay", "Straggler"]


# ----------------------------------------------------------------------------
# payload helpers
# ----------------------------------------------------------------------------

def test_corrupt_array_nan_and_bitflip():
    rng = np.random.default_rng(0)
    a = rng.standard_normal(32)
    b = a.copy()
    assert corrupt_array(b, "nan", seed=5)
    assert np.isnan(b).sum() == 1 and np.isfinite(b).sum() == 31

    c = a.copy()
    assert corrupt_array(c, "bitflip", seed=5)
    assert (c != a).sum() == 1  # exactly one word changed
    assert payload_checksum(c) != payload_checksum(a)

    ints = np.arange(4)  # non-float payloads are left alone
    assert not corrupt_array(ints.copy(), "nan", seed=0)


def test_corruption_is_seed_deterministic():
    base = np.linspace(0.0, 1.0, 64)
    a, b = base.copy(), base.copy()
    corrupt_array(a, "bitflip", seed=123)
    corrupt_array(b, "bitflip", seed=123)
    np.testing.assert_array_equal(a, b)
    c = base.copy()
    corrupt_array(c, "bitflip", seed=124)
    assert not np.array_equal(a, c)


# ----------------------------------------------------------------------------
# injection semantics on the simulated communicator
# ----------------------------------------------------------------------------

def _pingpong(comm):
    """Rank 0 sends one array to rank 1; both return their counters
    (send-side rules count on rank 0, recovery counts on rank 1)."""
    got = None
    if comm.rank == 0:
        comm.isend(np.arange(8, dtype=np.float64), 1, tag=5)
    else:
        got = comm.recv(0, tag=5)
    comm.barrier()
    return got, comm.vtime, dict(comm.obs.counters)


def test_delay_postpones_arrival():
    plan = FaultPlan(rules=(Delay(0.25, src=0, dst=1, tag=5),))
    res, _ = run_spmd(2, _pingpong, faults=plan)
    got, vtime, _ = res[1]
    sender_counters = res[0][2]
    np.testing.assert_array_equal(got, np.arange(8.0))
    assert vtime >= 0.25
    assert sender_counters["faults.delayed"] == 1
    assert sender_counters["faults.delay_s"] == pytest.approx(0.25)


def test_drop_recovers_payload_with_retry_cost():
    plan = FaultPlan(rules=(Drop(src=0, dst=1, tag=5),), retry_timeout=0.1)
    res, _ = run_spmd(2, _pingpong, faults=plan)
    got, vtime, counters = res[1]
    np.testing.assert_array_equal(got, np.arange(8.0))  # exact recovery
    assert res[0][2]["faults.dropped"] == 1
    assert counters["faults.retries"] == 1
    assert vtime >= 0.1  # the receiver paid at least the loss timeout

    # only the first message on the edge is dropped
    nofault, _ = run_spmd(2, _pingpong)
    assert nofault[1][2].get("faults.retries", 0) == 0


def test_drop_beyond_max_retries_is_fatal():
    plan = FaultPlan(rules=(Drop(src=0, dst=1, tag=5, times=3),), max_retries=3)
    with pytest.raises(MessageLostError):
        run_spmd(2, _pingpong, faults=plan)


def test_straggler_scales_modeled_compute():
    def prog(comm):
        comm.advance(1.0, "work")
        return comm.vtime, comm.obs.counter("faults.straggler_s")

    plan = FaultPlan(rules=(Straggler(1, 4.0),))
    res, _ = run_spmd(2, prog, faults=plan)
    assert res[0] == (1.0, 0.0)
    t1, extra = res[1]
    assert t1 == pytest.approx(4.0)
    assert extra == pytest.approx(3.0)


def test_checksum_flags_corruption():
    plan = FaultPlan(
        rules=(Corrupt("bitflip", src=0, dst=1, tag=5),), checksums=True
    )
    res, _ = run_spmd(2, _pingpong, faults=plan)
    got, _, counters = res[1]
    assert counters["faults.checksum_fail"] == 1
    assert not np.array_equal(got, np.arange(8.0))

    # checksums alone (no corruption) never fire
    res, _ = run_spmd(2, _pingpong, faults=FaultPlan(checksums=True))
    assert res[1][2].get("faults.checksum_fail", 0) == 0


def test_rules_fire_deterministically_under_fixed_seed():
    """The same plan on the same program produces identical fault counters
    and payload outcomes on every run, despite thread interleaving."""

    def prog(comm):
        for i in range(6):
            nxt = (comm.rank + 1) % comm.size
            comm.isend(np.full(16, float(i)), nxt, tag=2)
        prv = (comm.rank - 1) % comm.size
        out = [float(comm.recv(prv, tag=2)[0]) for _ in range(6)]
        comm.barrier()
        return out, {
            k: v
            for k, v in comm.obs.counters.items()
            # straggler_s integrates measured thread time -> not bitwise
            # reproducible; every other fault counter must be
            if k.startswith("faults.") and k != "faults.straggler_s"
        }

    plan = FaultPlan(
        rules=(
            Delay(1e-4, tag=2, jitter=5e-5),
            Reorder(period=2, tag=2),
            Drop(src=0, dst=1, tag=2),
            Corrupt("bitflip", src=1, dst=2, tag=2, skip=1),
        ),
        seed=42,
        checksums=True,
    )
    runs = [run_spmd(4, prog, faults=plan)[0] for _ in range(3)]
    for other in runs[1:]:
        assert other == runs[0]
    # and the rules actually fired
    counters = runs[0][1][1]
    assert counters["faults.delayed"] > 0
    assert counters["faults.reordered"] > 0
    assert runs[0][2][1]["faults.checksum_fail"] == 1


# ----------------------------------------------------------------------------
# resilient CG: breakdown detection + restart
# ----------------------------------------------------------------------------

def _spec8():
    return poisson_problem(5, 8, etype=ElementType.TET4)


def test_cg_restart_recovers_corrupted_solve():
    from repro.harness import run_solve

    spec = _spec8()
    ref = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10,
                    return_solution=True)
    plan = FaultPlan(
        rules=(Corrupt("nan", tag=101, times=1, skip=1),), checksums=True
    )
    out = run_solve(
        spec, "hymv", precond="jacobi", rtol=1e-10, return_solution=True,
        faults=plan, resilience=ResilienceConfig(),
    )
    assert out.converged
    assert out.restarts >= 1
    counters = out.obs["counters"]
    assert counters["faults.corrupted"] > 0
    assert (
        counters.get("faults.checksum_fail", 0)
        + counters.get("spmv.ghost_nonfinite", 0)
    ) > 0
    scale = np.abs(ref.solution).max()
    np.testing.assert_allclose(out.solution, ref.solution,
                               atol=1e-6 * scale)


def test_cg_without_resilience_fails_on_nan_corruption():
    from repro.harness import run_solve

    spec = _spec8()
    plan = FaultPlan(rules=(Corrupt("nan", tag=101, times=1, skip=1),))
    out = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10, maxiter=60,
                    faults=plan)
    assert not out.converged  # NaN poisons the Krylov space for good


def test_cg_restart_budget_is_bounded():
    from repro.harness import run_solve

    spec = _spec8()
    # corrupt every scatter message forever: restarts cannot help
    plan = FaultPlan(rules=(Corrupt("nan", tag=101, times=10**6),),
                     checksums=True)
    with pytest.raises(RuntimeError, match="max_restarts"):
        run_solve(spec, "hymv", precond="jacobi", rtol=1e-10,
                  faults=plan, resilience=ResilienceConfig(max_restarts=2))


# ----------------------------------------------------------------------------
# the chaos suite (the issue's acceptance scenario matrix)
# ----------------------------------------------------------------------------

def test_chaos_suite_all_scenarios_pass(tmp_path):
    doc = run_chaos(nel=5, n_ranks=8)
    by_name = {s["scenario"]: s for s in doc["scenarios"]}
    for s in doc["scenarios"]:
        assert s["ok"], f"{s['scenario']}: {s['failures']}"

    # acceptance: drop + 4x straggler completes and matches fault-free
    combo = by_name["drop_plus_straggler"]
    assert combo["rel_err"] <= 1e-10
    assert combo["counters"]["faults.retries"] > 0
    assert combo["counters"]["faults.straggler_s"] > 0

    # acceptance: corruption detected (checksum counter) and recovered
    for name in ("corrupt_nan", "corrupt_bitflip"):
        s = by_name[name]
        assert s["counters"]["faults.checksum_fail"] > 0
        assert s["restarts"] >= 1

    # the report is machine-readable and schema-valid after a round-trip
    from repro.obs import validate_chaos_doc

    p = tmp_path / "CHAOS_report.json"
    p.write_text(json.dumps(doc))
    validate_chaos_doc(json.loads(p.read_text()))


def test_chaos_cli_smoke(tmp_path):
    from repro.faults.chaos import main

    out = tmp_path / "report.json"
    assert main(["--smoke", "--nel", "4", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.chaos/1"
    assert len(doc["scenarios"]) >= 5
