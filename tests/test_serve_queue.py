"""Property tests for the serve admission queue and micro-batcher.

The invariants the serving layer's correctness story rests on:

* **conservation** — every admitted request leaves the system exactly
  once (dispatched, cancelled, or deadline-expired); none lost, none
  duplicated, and rejected requests never reappear;
* **FIFO fairness within a compatibility group** — requests sharing
  (key, kind, rtol) are dispatched in admission order, no matter how
  other groups interleave;
* **bounds** — the queue never exceeds its capacity and a batch never
  exceeds ``max_batch``, and every batch is internally compatible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.queue import RequestQueue, ServeRequest

# one scripted interaction: (op, key_id, kind_id, extra)
_OP = st.tuples(
    st.sampled_from(["submit", "cancel", "tick", "batch"]),
    st.integers(0, 3),  # key id
    st.integers(0, 1),  # kind selector
    st.integers(0, 6),  # cancel-target selector / deadline offset (0 = none)
)


def _group(req: ServeRequest):
    return (req.key, req.kind, req.rtol)


def _run_script(ops, capacity, max_batch):
    """Drive queue+batcher through a script; returns the bookkeeping."""
    q = RequestQueue(capacity=capacity)
    b = MicroBatcher(BatchPolicy(max_batch=max_batch))
    now = 0.0
    rid = 0
    admitted: dict[int, ServeRequest] = {}
    outcome: dict[int, str] = {}
    batches: list[list[ServeRequest]] = []

    def drain_expired():
        for r in q.expire(now):
            assert outcome.setdefault(r.rid, "expired") == "expired"

    for op, key_id, kind_id, extra in ops:
        if op == "submit":
            req = ServeRequest(
                rid=rid,
                key=f"key{key_id}",
                kind="solve" if kind_id else "spmv",
                arrival=now,
                deadline=(now + extra) if extra else None,
            )
            rid += 1
            was_full = len(q) >= capacity
            ok = q.submit(req)
            assert ok != was_full  # shed iff full
            if ok:
                admitted[req.rid] = req
            else:
                outcome[req.rid] = "rejected"
        elif op == "cancel":
            live = sorted(set(admitted) - set(outcome))
            if live:
                target = live[extra % len(live)]
                got = q.cancel(target)
                assert got is not None and got.rid == target
                outcome[target] = "cancelled"
            # cancelling something already gone must be a no-op
            if outcome:
                done = sorted(outcome)[extra % len(outcome)]
                assert q.cancel(done) is None
        elif op == "tick":
            now += 1.0 + extra
            drain_expired()
        elif op == "batch":
            drain_expired()
            batch = b.next_batch(q)
            assert len(batch) <= max_batch
            if batch:
                head = batch[0]
                assert all(_group(r) == _group(head) for r in batch)
                for r in batch:
                    assert outcome.setdefault(r.rid, "dispatched") == (
                        "dispatched"
                    )
                batches.append(batch)
        assert len(q) <= capacity

    # drain: everything still queued must come out via batches
    while q:
        batch = b.next_batch(q)
        assert batch and len(batch) <= max_batch
        for r in batch:
            assert outcome.setdefault(r.rid, "dispatched") == "dispatched"
        batches.append(batch)
    return admitted, outcome, batches


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(_OP, min_size=1, max_size=80),
    capacity=st.integers(1, 12),
    max_batch=st.integers(1, 6),
)
def test_conservation_no_loss_no_duplication(ops, capacity, max_batch):
    admitted, outcome, batches = _run_script(ops, capacity, max_batch)
    # every admitted request has exactly one terminal outcome
    assert set(admitted) == {
        r for r, o in outcome.items() if o != "rejected"
    }
    # no request appears in two batches (outcome.setdefault guards dupes,
    # double-check across the batch list)
    seen = [r.rid for batch in batches for r in batch]
    assert len(seen) == len(set(seen))


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(_OP, min_size=1, max_size=80),
    capacity=st.integers(1, 12),
    max_batch=st.integers(1, 6),
)
def test_fifo_fairness_within_group(ops, capacity, max_batch):
    admitted, outcome, batches = _run_script(ops, capacity, max_batch)
    dispatched: dict[tuple, list[int]] = {}
    for batch in batches:
        for r in batch:
            dispatched.setdefault(_group(r), []).append(r.rid)
    for group, rids in dispatched.items():
        expected = [
            rid for rid, req in sorted(admitted.items())
            if _group(req) == group and outcome.get(rid) == "dispatched"
        ]
        assert rids == expected


def test_duplicate_rid_rejected():
    q = RequestQueue(capacity=4)
    q.submit(ServeRequest(rid=1, key="k"))
    with pytest.raises(ValueError, match="duplicate"):
        q.submit(ServeRequest(rid=1, key="k"))


def test_bad_parameters():
    with pytest.raises(ValueError):
        RequestQueue(capacity=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_batch=0)
    with pytest.raises(ValueError):
        ServeRequest(rid=0, key="k", kind="what")


def test_solve_tolerances_do_not_mix():
    q = RequestQueue(capacity=8)
    q.submit(ServeRequest(rid=0, key="k", kind="solve", rtol=1e-6))
    q.submit(ServeRequest(rid=1, key="k", kind="solve", rtol=1e-3))
    q.submit(ServeRequest(rid=2, key="k", kind="solve", rtol=1e-6))
    b = MicroBatcher(BatchPolicy(max_batch=8))
    first = b.next_batch(q)
    assert [r.rid for r in first] == [0, 2]
    assert [r.rid for r in b.next_batch(q)] == [1]


def test_spmv_and_solve_do_not_mix():
    q = RequestQueue(capacity=8)
    q.submit(ServeRequest(rid=0, key="k", kind="spmv"))
    q.submit(ServeRequest(rid=1, key="k", kind="solve"))
    q.submit(ServeRequest(rid=2, key="k", kind="spmv"))
    b = MicroBatcher(BatchPolicy(max_batch=8))
    assert [r.rid for r in b.next_batch(q)] == [0, 2]
    assert [r.rid for r in b.next_batch(q)] == [1]
