"""FEM substrate: element matrices, loads, analytic solutions, BCs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial import SerialReference, assemble_global_csr
from repro.fem import (
    DirichletBC,
    ElasticityOperator,
    IsotropicElasticity,
    PoissonOperator,
)
from repro.fem.analytic import (
    bar_body_force,
    bar_exact_displacement,
    bar_top_traction,
    poisson_exact,
    poisson_forcing,
)
from repro.fem.elemmat import mass_ke_batch
from repro.fem.loads import body_force_rhs_batch, face_area_batch, traction_rhs_batch
from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh, jittered_hex_mesh
from repro.mesh.element import corner_faces

ALL_MESHES = [
    ("hex8", lambda: box_hex_mesh(3, 3, 3)),
    ("hex20", lambda: jittered_hex_mesh(2, 2, 2, ElementType.HEX20, jitter=0.15)),
    ("hex27", lambda: jittered_hex_mesh(2, 2, 2, ElementType.HEX27, jitter=0.15)),
    ("tet4", lambda: box_tet_mesh(2, 2, 2, jitter=0.2)),
    ("tet10", lambda: box_tet_mesh(2, 2, 2, ElementType.TET10, jitter=0.2)),
]


@pytest.mark.parametrize("name,factory", ALL_MESHES)
def test_poisson_ke_symmetric_psd_with_nullspace(name, factory):
    mesh = factory()
    ke = PoissonOperator().element_matrices(mesh.coords[mesh.conn], mesh.etype)
    np.testing.assert_allclose(ke, np.swapaxes(ke, 1, 2), atol=1e-12)
    # constant field in the nullspace
    np.testing.assert_allclose(ke.sum(axis=2), 0.0, atol=1e-11)
    # PSD: eigenvalues >= -eps
    w = np.linalg.eigvalsh(ke)
    assert w.min() > -1e-10


@pytest.mark.parametrize("name,factory", ALL_MESHES)
def test_elasticity_ke_rigid_body_modes(name, factory):
    mesh = factory()
    mat = IsotropicElasticity(E=7.0, nu=0.25)
    ke = ElasticityOperator(material=mat).element_matrices(
        mesh.coords[mesh.conn], mesh.etype
    )
    np.testing.assert_allclose(ke, np.swapaxes(ke, 1, 2), atol=1e-10)
    coords = mesh.coords[mesh.conn]  # (E, n, 3)
    E_, n, _ = coords.shape
    # translations
    for c in range(3):
        v = np.zeros((E_, n, 3))
        v[:, :, c] = 1.0
        r = np.einsum("eij,ej->ei", ke, v.reshape(E_, -1))
        np.testing.assert_allclose(r, 0.0, atol=1e-9)
    # infinitesimal rotations: u = w x (x - x0)
    for axis in range(3):
        w = np.zeros(3)
        w[axis] = 1.0
        v = np.cross(w[None, None, :], coords - coords.mean(axis=1, keepdims=True))
        r = np.einsum("eij,ej->ei", ke, v.reshape(E_, -1))
        np.testing.assert_allclose(r, 0.0, atol=1e-8)


def test_elasticity_reduces_to_known_lame_identities():
    mat = IsotropicElasticity(E=200.0, nu=0.3)
    lam, mu = mat.lam, mat.mu
    np.testing.assert_allclose(
        mat.E, mu * (3 * lam + 2 * mu) / (lam + mu), rtol=1e-12
    )
    np.testing.assert_allclose(mat.nu, lam / (2 * (lam + mu)), rtol=1e-12)


@pytest.mark.parametrize("name,factory", ALL_MESHES)
def test_mass_matrix_total_volume(name, factory):
    mesh = factory()
    m = mass_ke_batch(mesh.coords[mesh.conn], mesh.etype)
    np.testing.assert_allclose(m.sum(), 1.0, rtol=1e-10)  # unit cube


def test_mass_matrix_vector_variant():
    mesh = box_hex_mesh(2, 2, 2)
    m3 = mass_ke_batch(mesh.coords[mesh.conn], mesh.etype, ndpn=3)
    assert m3.shape == (8, 24, 24)
    np.testing.assert_allclose(m3.sum(), 3.0, rtol=1e-10)


def test_body_force_total_equals_volume_integral():
    mesh = box_hex_mesh(3, 3, 3)
    fe = body_force_rhs_batch(
        mesh.coords[mesh.conn], mesh.etype, np.array([2.5]), ndpn=1
    )
    np.testing.assert_allclose(fe.sum(), 2.5, rtol=1e-12)  # 2.5 * volume


def test_body_force_callable_matches_constant():
    mesh = box_tet_mesh(2, 2, 2, jitter=0.1)
    const = body_force_rhs_batch(
        mesh.coords[mesh.conn], mesh.etype, np.array([1.0, 2.0, 3.0]), ndpn=3
    )
    fn = body_force_rhs_batch(
        mesh.coords[mesh.conn],
        mesh.etype,
        lambda x: np.broadcast_to([1.0, 2.0, 3.0], x.shape[:-1] + (3,)),
        ndpn=3,
    )
    np.testing.assert_allclose(const, fn, atol=1e-13)


@pytest.mark.parametrize("name,factory", ALL_MESHES)
def test_boundary_face_areas_sum_to_surface(name, factory):
    mesh = factory()
    bf = mesh.boundary_faces()
    areas = face_area_batch(
        mesh.coords[mesh.conn[bf[:, 0]]], mesh.etype, bf[:, 1]
    )
    np.testing.assert_allclose(areas.sum(), 6.0, rtol=1e-9)  # unit cube


def test_traction_total_force():
    mesh = box_hex_mesh(3, 3, 2, ElementType.HEX20)
    bf = mesh.boundary_faces()
    cf = corner_faces(mesh.etype)
    top = [
        (e, f)
        for e, f in bf
        if np.allclose(mesh.coords[mesh.conn[e, list(cf[f])]][:, 2], 1.0)
    ]
    top = np.asarray(top)
    t = np.array([0.0, 0.0, 5.0])
    fe = traction_rhs_batch(
        mesh.coords[mesh.conn[top[:, 0]]], mesh.etype, top[:, 1], t, ndpn=3
    )
    np.testing.assert_allclose(fe.sum(axis=(0, 1)), [0, 0, 5.0], atol=1e-12)


def test_poisson_manufactured_convergence():
    errs = []
    for nel in (4, 8):
        mesh = box_hex_mesh(nel, nel, nel)
        ref = SerialReference(mesh, PoissonOperator())
        fe = body_force_rhs_batch(
            mesh.coords[mesh.conn],
            mesh.etype,
            lambda x: poisson_forcing(x)[..., None],
            1,
        )
        f = ref.rhs_from_elemental(fe[:, :, None])
        bn = mesh.boundary_nodes()
        u = ref.solve_dirichlet(f, bn, np.zeros(ref.n_dofs))
        errs.append(np.abs(u - poisson_exact(mesh.coords)).max())
    assert errs[1] < errs[0] / 2.5  # ~O(h^2)


def test_elastic_bar_exact_for_quadratic_elements():
    mat = IsotropicElasticity(E=10.0, nu=0.3)
    Lz = 2.0
    mesh = box_hex_mesh(
        2, 2, 3, ElementType.HEX20, lengths=(1, 1, Lz), origin=(-0.5, -0.5, 0)
    )
    ref = SerialReference(mesh, ElasticityOperator(material=mat))
    fe = body_force_rhs_batch(
        mesh.coords[mesh.conn], mesh.etype, bar_body_force(mat), 3
    )
    f = ref.rhs_from_elemental(fe)
    bf = mesh.boundary_faces()
    cf = corner_faces(mesh.etype)
    top = np.asarray(
        [
            (e, fc)
            for e, fc in bf
            if np.allclose(mesh.coords[mesh.conn[e, list(cf[fc])]][:, 2], Lz)
        ]
    )
    tr = traction_rhs_batch(
        mesh.coords[mesh.conn[top[:, 0]]],
        mesh.etype,
        top[:, 1],
        bar_top_traction(mat, Lz),
        3,
    )
    from repro.util.arrays import scatter_add

    dofmap = mesh.conn[:, :, None] * 3 + np.arange(3)
    scatter_add(f, dofmap[top[:, 0]], tr)
    top_nodes = np.flatnonzero(np.abs(mesh.coords[:, 2] - Lz) < 1e-12)
    cons = (top_nodes[:, None] * 3 + np.arange(3)).reshape(-1)
    u0 = np.zeros(ref.n_dofs)
    u0.reshape(-1, 3)[top_nodes] = bar_exact_displacement(
        mesh.coords[top_nodes], mat, Lz
    )
    u = ref.solve_dirichlet(f, cons, u0)
    err = np.abs(u - bar_exact_displacement(mesh.coords, mat, Lz).reshape(-1))
    assert err.max() < 1e-8  # the paper's verification threshold (§V-B)


def test_dirichlet_bc_masks_and_values():
    bc = DirichletBC(np.array([3, 7, 9]), 2.0, ndpn=2, components=(1,))
    dofs = bc.constrained_dofs()
    np.testing.assert_array_equal(dofs, [7, 15, 19])
    mask = bc.mask_slice(5, 10)  # nodes 5..9 -> dofs 10..19 local
    expected = np.zeros(10, dtype=bool)
    expected[[5, 9]] = True  # nodes 7, 9 component 1
    np.testing.assert_array_equal(mask, expected)
    vals = bc.values_for(np.array([6, 7]), np.zeros((2, 3)))
    np.testing.assert_allclose(vals, [[0, 0], [0, 2.0]])


def test_dirichlet_bc_callable_values():
    bc = DirichletBC(
        np.array([1, 2]), lambda x: x[:, :2] * 10.0, ndpn=2
    )
    coords = np.array([[0.1, 0.2, 0.0], [0.3, 0.4, 0.0], [0.5, 0.6, 0.0]])
    vals = bc.values_for(np.array([0, 1, 2]), coords)
    np.testing.assert_allclose(vals[0], 0.0)
    np.testing.assert_allclose(vals[1], [3.0, 4.0])
    np.testing.assert_allclose(vals[2], [5.0, 6.0])


def test_assemble_global_csr_matches_quadratic_energy():
    mesh = box_tet_mesh(2, 2, 2, ElementType.TET10, jitter=0.1)
    A = assemble_global_csr(mesh, PoissonOperator())
    u = mesh.coords[:, 0] ** 2 + mesh.coords[:, 1] * mesh.coords[:, 2]
    # energy = int |grad u|^2 = int (4x^2 + z^2 + y^2) over unit cube
    energy = 4.0 / 3.0 + 1.0 / 3.0 + 1.0 / 3.0
    np.testing.assert_allclose(u @ (A @ u), energy, rtol=1e-10)


def test_operator_flop_estimates_positive_and_monotone():
    p1 = PoissonOperator()
    e1 = ElasticityOperator()
    for et in ElementType:
        assert p1.ke_flops(et) > 0
        assert e1.ke_flops(et) > p1.ke_flops(et)
        assert e1.emv_flops(et) == 2 * (3 * et.n_nodes) ** 2
