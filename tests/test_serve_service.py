"""Service-level tests: operator cache behaviour, dispatch correctness,
fault-policy state machine, and the end-to-end load harness contract
(schema-valid report, zero wrong answers — fault plan or not)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.scatter import SCATTER_TAG
from repro.faults.plan import Corrupt, Delay, FaultPlan
from repro.obs.instrumentation import Instrumentation
from repro.obs.schema import new_serve_doc, validate_serve_doc
from repro.serve.cache import OperatorCache, ProblemKey, SolverContext
from repro.serve.loadgen import run_workload, suite_workloads
from repro.serve.queue import ServeRequest
from repro.serve.service import Completion, SolverService

KEY_A = ProblemKey(problem="poisson", nel=3, n_parts=2, etype="hex8")
KEY_B = ProblemKey(problem="poisson", nel=4, n_parts=2, etype="hex8")
KEY_C = ProblemKey(problem="poisson", nel=3, n_parts=2, etype="tet4", seed=3)


# ----------------------------------------------------------------------------
# ProblemKey / OperatorCache
# ----------------------------------------------------------------------------

def test_fingerprint_stable_and_distinct():
    assert KEY_A.fingerprint() == dataclasses.replace(KEY_A).fingerprint()
    fps = {k.fingerprint() for k in (KEY_A, KEY_B, KEY_C)}
    assert len(fps) == 3


def test_cache_hit_miss_eviction_lru():
    cache = OperatorCache(capacity=2, obs=Instrumentation(rank=-1))
    ctx_a, dt_a = cache.get(KEY_A)
    assert dt_a > 0  # a miss pays modeled setup time
    ctx_a2, dt_a2 = cache.get(KEY_A)
    assert ctx_a2 is ctx_a and dt_a2 == 0.0  # hit: setup amortized
    cache.get(KEY_B)
    cache.get(KEY_A)  # refresh A, so B is now LRU
    cache.get(KEY_C)  # evicts B
    assert KEY_B not in cache and KEY_A in cache and KEY_C in cache
    stats = cache.stats()
    assert stats == {
        "hits": 2, "misses": 3, "evictions": 1,
        "hit_rate": 2 / 5, "size": 2, "capacity": 2,
    }


def test_cache_invalidate_forces_rebuild():
    cache = OperatorCache(capacity=2)
    ctx, _ = cache.get(KEY_A)
    assert cache.invalidate(KEY_A)
    assert not cache.invalidate(KEY_A)  # already gone
    ctx2, dt = cache.get(KEY_A)
    assert ctx2 is not ctx and dt > 0


def test_context_batch_matches_singles_bitwise():
    ctx = SolverContext(KEY_A)
    rng = np.random.default_rng(0)
    X = rng.standard_normal((ctx.n_dofs, 3))
    Y, _ = ctx.apply_multi(X)
    for j in range(3):
        yj, _ = ctx.apply_multi(np.ascontiguousarray(X[:, j:j + 1]))
        assert np.array_equal(Y[:, j], yj[:, 0])


def test_context_solve_satisfies_residual():
    ctx = SolverContext(KEY_A)
    F = np.random.default_rng(1).standard_normal((ctx.n_dofs, 2))
    out, dt = ctx.solve_multi(F, rtol=1e-8)
    assert all(out["converged"]) and dt > 0
    rel = ctx.residuals(F, out["x"])
    assert np.all(rel <= 1e-7)


# ----------------------------------------------------------------------------
# SolverService dispatch
# ----------------------------------------------------------------------------

def _request(rid, key=KEY_A, kind="spmv", **kw):
    return ServeRequest(rid=rid, key=key, kind=kind, seed=100 + rid, **kw)


def test_dispatch_spmv_batch_correct_answers():
    cache = OperatorCache(capacity=2)
    service = SolverService(cache, max_batch=4)
    for rid in range(3):
        assert service.submit(_request(rid))
    out = service.dispatch(now=0.0)
    assert out.batch_size == 3 and out.duration > 0
    ref, _ = cache.get(KEY_A)
    for c in out.completions:
        assert c.status == "ok"
        x = SolverService.input_vector(ref, c.request.seed)
        y, _ = ref.apply_multi(x[:, None])
        assert np.array_equal(c.value, y[:, 0])
    assert service.batch_histogram == {3: 1}


def test_dispatch_sheds_expired_and_queue_overflow():
    service = SolverService(OperatorCache(capacity=1), queue_capacity=2)
    assert service.submit(_request(0, deadline=1.0))
    assert service.submit(_request(1, deadline=5.0))
    assert not service.submit(_request(2))  # queue full -> shed
    out = service.dispatch(now=2.0)  # rid 0 expired by now
    assert [r.rid for r in out.expired] == [0]
    assert [c.request.rid for c in out.completions] == [1]
    obs = service.obs
    assert obs.counter("serve.rejected") == 1
    assert obs.counter("serve.shed_deadline") == 1
    assert obs.counter("serve.completed") == 1


def test_cancel_only_while_queued():
    service = SolverService(OperatorCache(capacity=1))
    service.submit(_request(0))
    assert service.cancel(0)
    assert not service.cancel(0)
    assert service.pending == 0
    assert service.dispatch(now=0.0).batch_size == 0


# ----------------------------------------------------------------------------
# fault policy (deterministic, via a scripted context/cache)
# ----------------------------------------------------------------------------

class _ScriptedCtx:
    """Stand-in context whose fault signal follows a script."""

    def __init__(self, signals):
        self.n_dofs = 8
        self.faulted = True
        self._signals = list(signals)  # signal delta per apply_multi call
        self._sig = 0.0
        self.calls = 0

    def fault_signal(self):
        return self._sig

    def apply_multi(self, X, mode="auto"):
        self.calls += 1
        self._sig += self._signals.pop(0) if self._signals else 0.0
        return X * 2.0, 1e-3


class _ScriptedCache:
    def __init__(self, ctx):
        self.ctx = ctx
        self.obs = Instrumentation(rank=-1)
        self.invalidations = 0

    def get(self, key):
        return self.ctx, 0.0

    def invalidate(self, key):
        self.invalidations += 1
        return True


def test_corrupt_batch_retried_then_clean():
    ctx = _ScriptedCtx(signals=[1.0, 0.0])  # first attempt corrupt
    service = SolverService(_ScriptedCache(ctx), retry_limit=2)
    service.submit(_request(0))
    out = service.dispatch(now=0.0)
    assert ctx.calls == 2
    assert [c.status for c in out.completions] == ["ok"]
    assert service.obs.counter("serve.retries") == 1
    assert service.obs.counter("serve.corrupt_batches") == 1
    assert service.obs.counter("serve.completed") == 1


def test_persistent_corruption_fails_cleanly():
    ctx = _ScriptedCtx(signals=[1.0, 1.0, 1.0, 1.0])
    service = SolverService(_ScriptedCache(ctx), retry_limit=2)
    service.submit(_request(0))
    out = service.dispatch(now=0.0)
    assert [c.status for c in out.completions] == ["failed"]
    assert all(c.value is None for c in out.completions)
    assert service.obs.counter("serve.failed") == 1


class _ExplodingCtx(_ScriptedCtx):
    def __init__(self, failures):
        super().__init__(signals=[])
        self.failures = failures

    def apply_multi(self, X, mode="auto"):
        if self.failures:
            self.failures -= 1
            raise RuntimeError("simulated rank abort")
        return super().apply_multi(X)


def test_poisoned_context_rebuilt_then_recovers():
    ctx = _ExplodingCtx(failures=1)
    cache = _ScriptedCache(ctx)
    service = SolverService(cache, retry_limit=2)
    service.submit(_request(0))
    out = service.dispatch(now=0.0)
    assert [c.status for c in out.completions] == ["ok"]
    assert cache.invalidations == 1
    assert service.obs.counter("serve.rebuilds") == 1


# ----------------------------------------------------------------------------
# end-to-end: real fault plan, never a wrong answer
# ----------------------------------------------------------------------------

def test_faulted_service_never_wrong():
    plan = FaultPlan(
        rules=(
            Delay(1e-4, tag=SCATTER_TAG, jitter=5e-5),
            Corrupt("nan", src=0, dst=1, tag=SCATTER_TAG, skip=1, times=3),
        ),
        seed=5,
        checksums=True,
    )
    cache = OperatorCache(capacity=1, faults=plan)
    service = SolverService(cache, max_batch=4, retry_limit=3)
    ref = OperatorCache(capacity=1)
    n_ok = 0
    for rid in range(8):
        service.submit(_request(rid, kind="spmv" if rid % 2 else "solve"))
        out = service.dispatch(now=float(rid))
        rctx, _ = ref.get(KEY_A)
        for c in out.completions:
            if c.status != "ok":
                continue
            n_ok += 1
            x = SolverService.input_vector(rctx, c.request.seed)
            if c.request.kind == "spmv":
                y, _ = rctx.apply_multi(x[:, None])
                scale = float(np.linalg.norm(y[:, 0])) or 1.0
                assert float(
                    np.linalg.norm(c.value - y[:, 0])
                ) <= 1e-9 * scale
            else:
                rel = float(rctx.residuals(x[:, None], c.value[:, None])[0])
                assert np.isfinite(rel) and rel <= 1e-4
    assert n_ok > 0
    # solves under an active plan must have taken the degraded path
    assert service.obs.counter("serve.degraded") > 0


def test_run_workload_report_is_schema_valid_and_exact():
    clean, _gemm, faulted = suite_workloads(seed=99, smoke=True)
    small = dataclasses.replace(clean, n_requests=12)
    sc = run_workload(small, seed=99)
    doc = new_serve_doc(config={"seed": 99})
    doc["scenarios"].append(sc)
    validate_serve_doc(doc)
    r = sc["requests"]
    assert r["submitted"] == 12
    assert r["wrong_answers"] == 0
    assert (
        r["completed"] + r["rejected"] + r["shed_deadline"]
        + r["cancelled"] + r["failed"] == r["submitted"]
    )
    assert sum(sc["batch_histogram"].values()) > 0
    # determinism: same seed, same report (modeled time, seeded arrivals)
    assert run_workload(small, seed=99) == sc


def test_faulted_workload_zero_wrong_answers():
    _, _gemm, faulted = suite_workloads(seed=7, smoke=True)
    small = dataclasses.replace(faulted, n_requests=10, n_clients=3)
    sc = run_workload(small, seed=7)
    assert sc["requests"]["wrong_answers"] == 0
    assert sc["counters"].get("faults.checksum_fail", 0) >= 0
    assert sc["requests"]["completed"] > 0


@pytest.mark.parametrize("bad", ["triangle", ""])
def test_problem_key_rejects_unknown_problem(bad):
    with pytest.raises((ValueError, KeyError)):
        ProblemKey(problem=bad).build_spec()


def test_completion_dataclass_defaults():
    c = Completion(_request(0), "failed")
    assert c.value is None and c.info == {}
