"""Multi-RHS contract: batching k right-hand sides through any operator
or through CG is **bitwise identical per column** to k independent
single-RHS runs.

This is the property the serving layer's micro-batcher stands on: a
request's answer must not depend on which batch it happened to ride in.
The implementation guarantees it by keeping every floating-point
operation in per-column loops through the exact single-RHS code paths —
only the communication layer batches (packed ndpn·k-wide halos, k-vector
allreduces), and elementwise/same-order reductions preserve bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AssembledOperator, MatrixFreeOperator
from repro.baselines.partial import PartialAssemblyOperator
from repro.core import HymvOperator
from repro.fem import ElasticityOperator, PoissonOperator
from repro.gpu import HymvGpuOperator
from repro.mesh import ElementType, jittered_hex_mesh
from repro.partition import build_partition
from repro.problems import poisson_problem
from repro.simmpi import run_spmd
from repro.solvers.cg import cg, cg_multi
from repro.solvers.constrained import dirichlet_system
from repro.solvers.preconditioners import JacobiPreconditioner
from repro.util.arrays import INDEX_DTYPE

FACTORIES = {
    "hymv": HymvOperator,
    "matfree": MatrixFreeOperator,
    "partial": PartialAssemblyOperator,
    "assembled": AssembledOperator,
    "hymv_gpu": HymvGpuOperator,
}

N_PARTS = 4


def _mesh_op():
    mesh = jittered_hex_mesh(3, 3, 3, ElementType.HEX8, jitter=0.25, seed=11)
    op = ElasticityOperator()
    return mesh, op


def _multi_vs_single(kind: str, k: int, workspace: bool, mode: str | None = None):
    mesh, op = _mesh_op()
    part = build_partition(mesh, N_PARTS, method="graph")
    n = mesh.n_nodes * op.ndpn
    X = np.random.default_rng(7 * k + 1).standard_normal((n, k))

    def prog(comm, lmesh, Xr):
        opts = {} if kind == "assembled" else {"workspace": workspace}
        A = FACTORIES[kind](comm, lmesh, op, **opts)
        singles = np.column_stack(
            [A.apply_owned(np.ascontiguousarray(Xr[:, j])) for j in range(k)]
        )
        if mode is None:
            multi = A.apply_owned_multi(Xr)
        else:
            multi = A.apply_owned_multi(Xr, mode=mode)
        return bool(np.array_equal(singles, multi)), multi

    ndpn = op.ndpn
    rank_args = []
    for r in range(N_PARTS):
        lm = part.local(r)
        rank_args.append((lm, X[lm.n_begin * ndpn: lm.n_end * ndpn]))
    results, _ = run_spmd(N_PARTS, prog, rank_args=rank_args)
    return results


@pytest.mark.parametrize("kind", sorted(FACTORIES))
@pytest.mark.parametrize("k", [1, 2, 5])
def test_apply_multi_bitwise_per_column(kind, k):
    results = _multi_vs_single(kind, k, workspace=True)
    assert all(ok for ok, _ in results)


@pytest.mark.parametrize(
    "kind", [k for k in sorted(FACTORIES) if k != "assembled"]
)
def test_apply_multi_bitwise_without_workspace(kind):
    results = _multi_vs_single(kind, 3, workspace=False)
    assert all(ok for ok, _ in results)


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_mode_oracle_pins_bitwise_above_default_k_min(kind):
    # k=8 resolves to GEMM under the default mode="auto"
    # (DEFAULT_K_MIN=8); an explicit mode="oracle" must pin the
    # per-column bitwise contract regardless of batch width
    from repro.core.kernels import DEFAULT_K_MIN

    results = _multi_vs_single(kind, DEFAULT_K_MIN, workspace=True,
                               mode="oracle")
    assert all(ok for ok, _ in results)


def test_workspace_choice_does_not_change_bits():
    with_ws = np.vstack([m for _, m in _multi_vs_single("hymv", 2, True)])
    without = np.vstack([m for _, m in _multi_vs_single("hymv", 2, False)])
    assert np.array_equal(with_ws, without)


def test_multivector_shape_validation():
    mesh = jittered_hex_mesh(2, 2, 2, ElementType.HEX8, jitter=0.0, seed=0)
    op = PoissonOperator()

    def prog(comm, lmesh):
        A = HymvOperator(comm, lmesh, op)
        n_owned = (lmesh.n_end - lmesh.n_begin) * op.ndpn
        try:
            A.apply_owned_multi(np.zeros(n_owned))  # 1-D: must raise
        except ValueError:
            return True
        return False

    part = build_partition(mesh, 2, method="slab")
    results, _ = run_spmd(
        2, prog, rank_args=[(part.local(r),) for r in range(2)]
    )
    assert all(results)


# ----------------------------------------------------------------------------
# cg_multi vs the production single-RHS fused CG
# ----------------------------------------------------------------------------

def _cg_program(comm, lmesh, Fr, spec, k, rtol):
    ndpn = spec.operator.ndpn
    ranges = np.asarray(
        comm.allgather((lmesh.n_begin, lmesh.n_end)), dtype=INDEX_DTYPE
    )
    A = HymvOperator(comm, lmesh, spec.operator, ranges=ranges)

    from repro.core.rhs import local_node_coords

    owned_ids = np.arange(lmesh.n_begin, lmesh.n_end, dtype=INDEX_DTYPE)
    coords = local_node_coords(A.maps, lmesh)[A.maps.owned_slice]
    mask = np.zeros(owned_ids.size * ndpn, dtype=bool)
    u0 = np.zeros(owned_ids.size * ndpn)
    for bc in spec.bcs:
        m = bc.mask_slice(lmesh.n_begin, lmesh.n_end)
        vals = bc.values_for(owned_ids, coords).reshape(-1)
        u0[m] = vals[m]
        mask |= m
    d = A.diagonal_owned()
    d[mask] = 1.0
    M = JacobiPreconditioner(d)

    # production path: k independent fused single-RHS solves
    singles = []
    for j in range(k):
        apply_hat, b_hat = dirichlet_system(
            A.apply_owned, np.ascontiguousarray(Fr[:, j]), u0, mask
        )
        singles.append(
            cg(comm, apply_hat, b_hat, apply_M=M, rtol=rtol, fused=True)
        )

    # batched path
    Au0 = A.apply_owned(u0)
    B_hat = Fr - Au0[:, None]
    B_hat[mask, :] = u0[mask, None]

    def hat_multi(X):
        Xp = X.copy()
        Xp[mask, :] = 0.0
        Y = A.apply_owned_multi(Xp)
        Y[mask, :] = X[mask, :]
        return Y

    multi = cg_multi(comm, hat_multi, B_hat, apply_M=M, rtol=rtol)

    return {
        "x_equal": [
            bool(np.array_equal(singles[j].x, multi[j].x)) for j in range(k)
        ],
        "iters": [(singles[j].iterations, multi[j].iterations)
                  for j in range(k)],
        "norms_equal": [
            singles[j].residual_norms == multi[j].residual_norms
            for j in range(k)
        ],
        "converged": [multi[j].converged for j in range(k)],
    }


def test_cg_multi_bitwise_matches_fused_cg():
    k, rtol = 3, 1e-8
    spec = poisson_problem(5, n_parts=N_PARTS)
    F = np.random.default_rng(42).standard_normal((spec.n_dofs, k))
    ndpn = spec.operator.ndpn
    rank_args = []
    for r in range(N_PARTS):
        lm = spec.partition.local(r)
        rank_args.append(
            (lm, F[lm.n_begin * ndpn: lm.n_end * ndpn], spec, k, rtol)
        )
    results, _ = run_spmd(N_PARTS, _cg_program, rank_args=rank_args)
    for res in results:
        assert all(res["converged"])
        assert all(res["x_equal"])
        assert all(a == b for a, b in res["iters"])
        assert all(res["norms_equal"])


def test_cg_multi_k1_matches_fused_cg():
    spec = poisson_problem(4, n_parts=2)
    F = np.random.default_rng(3).standard_normal((spec.n_dofs, 1))
    ndpn = spec.operator.ndpn
    rank_args = []
    for r in range(2):
        lm = spec.partition.local(r)
        rank_args.append(
            (lm, F[lm.n_begin * ndpn: lm.n_end * ndpn], spec, 1, 1e-6)
        )
    results, _ = run_spmd(2, _cg_program, rank_args=rank_args)
    for res in results:
        assert res["x_equal"] == [True]
        assert res["iters"][0][0] == res["iters"][0][1]


def test_elasticity_mesh_has_multiple_ranks_of_work():
    # guard: the parametrized mesh really distributes across all ranks
    mesh, _ = _mesh_op()
    part = build_partition(mesh, N_PARTS, method="graph")
    sizes = [part.local(r).elements.size for r in range(N_PARTS)]
    assert all(s > 0 for s in sizes)


@pytest.mark.parametrize("etype", [ElementType.HEX8])
def test_elasticity_multivector_elementtype(etype):
    # ndpn=3 stresses the packed (ndpn*k)-wide halo path
    results = _multi_vs_single("hymv", 2, workspace=True)
    assert all(ok for ok, _ in results)
