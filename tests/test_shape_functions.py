"""Shape-function bases: Kronecker, partition of unity, completeness,
gradient consistency."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mesh.element import ElementType
from repro.mesh.quadrature import quadrature_for
from repro.mesh.shape_functions import reference_nodes, shape_functions_for

ALL_TYPES = list(ElementType)
QUADRATIC_TYPES = [t for t in ALL_TYPES if t.is_quadratic]


def _interior_points(etype: ElementType, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if etype.is_hex:
        return rng.uniform(-1.0, 1.0, size=(n, 3))
    bary = rng.dirichlet([1.0] * 4, size=n)
    return bary[:, 1:]


@pytest.mark.parametrize("etype", ALL_TYPES)
def test_kronecker_property(etype):
    sf = shape_functions_for(etype)
    N = sf.eval(reference_nodes(etype))
    np.testing.assert_allclose(N, np.eye(etype.n_nodes), atol=1e-12)


@pytest.mark.parametrize("etype", ALL_TYPES)
def test_partition_of_unity(etype):
    sf = shape_functions_for(etype)
    pts = _interior_points(etype, 40)
    np.testing.assert_allclose(sf.eval(pts).sum(axis=1), 1.0, atol=1e-12)


@pytest.mark.parametrize("etype", ALL_TYPES)
def test_gradient_partition_of_unity(etype):
    sf = shape_functions_for(etype)
    pts = _interior_points(etype, 40)
    np.testing.assert_allclose(sf.grad(pts).sum(axis=1), 0.0, atol=1e-12)


@pytest.mark.parametrize("etype", ALL_TYPES)
def test_linear_completeness(etype):
    """Sum N_i(x) f(node_i) == f(x) for affine f."""
    sf = shape_functions_for(etype)
    nodes = reference_nodes(etype)
    pts = _interior_points(etype, 25)
    f = lambda x: 1.0 + 2 * x[..., 0] - 3 * x[..., 1] + 0.5 * x[..., 2]
    np.testing.assert_allclose(sf.eval(pts) @ f(nodes), f(pts), atol=1e-12)


@pytest.mark.parametrize("etype", QUADRATIC_TYPES)
def test_quadratic_completeness(etype):
    sf = shape_functions_for(etype)
    nodes = reference_nodes(etype)
    pts = _interior_points(etype, 25)

    def f(x):
        return (
            x[..., 0] ** 2
            - 2 * x[..., 1] ** 2
            + x[..., 2] ** 2
            + x[..., 0] * x[..., 1]
            - x[..., 1] * x[..., 2]
            + 3 * x[..., 0]
        )

    np.testing.assert_allclose(sf.eval(pts) @ f(nodes), f(pts), atol=1e-11)


@pytest.mark.parametrize("etype", ALL_TYPES)
def test_gradients_match_finite_differences(etype):
    sf = shape_functions_for(etype)
    pts = _interior_points(etype, 8) * 0.8  # stay away from boundaries
    g = sf.grad(pts)
    eps = 1e-6
    for d in range(3):
        pp, pm = pts.copy(), pts.copy()
        pp[:, d] += eps
        pm[:, d] -= eps
        fd = (sf.eval(pp) - sf.eval(pm)) / (2 * eps)
        np.testing.assert_allclose(fd, g[:, :, d], atol=1e-7)


@pytest.mark.parametrize("etype", ALL_TYPES)
def test_quadrature_weights_positive_and_sum_to_volume(etype):
    q = quadrature_for(etype)
    assert (q.weights > 0).all()
    expected = 8.0 if etype.is_hex else 1.0 / 6.0
    np.testing.assert_allclose(q.weights.sum(), expected, rtol=1e-12)


@pytest.mark.parametrize("etype", ALL_TYPES)
@pytest.mark.parametrize("exponents", [(1, 0, 0), (2, 1, 0), (0, 2, 2)])
def test_quadrature_integrates_polynomials_exactly(etype, exponents):
    q = quadrature_for(etype)
    i, j, k = exponents
    if i + j + k > q.degree:
        pytest.skip("beyond rule degree")
    val = (
        q.weights
        * q.points[:, 0] ** i
        * q.points[:, 1] ** j
        * q.points[:, 2] ** k
    ).sum()
    if etype.is_hex:
        def m(e):  # int_{-1}^{1} x^e dx
            return 0.0 if e % 2 else 2.0 / (e + 1)
        expected = m(i) * m(j) * m(k)
    else:
        # int over unit tet of x^i y^j z^k = i! j! k! / (i+j+k+3)!
        from math import factorial
        expected = (
            factorial(i) * factorial(j) * factorial(k)
            / factorial(i + j + k + 3)
        )
    np.testing.assert_allclose(val, expected, atol=1e-13)


@given(st.integers(min_value=1, max_value=5))
def test_hex_rule_degree_scaling(n):
    from repro.mesh.quadrature import hex_rule

    q = hex_rule(n)
    assert q.n_points == n**3
    assert q.degree == 2 * n - 1
    # highest exactly-integrated even power
    e = 2 * n - 2
    val = (q.weights * q.points[:, 0] ** e).sum()
    np.testing.assert_allclose(val, 2.0 / (e + 1) * 4.0, rtol=1e-12)


@given(st.integers(min_value=1, max_value=5))
def test_tet_rule_positive_points_inside(n):
    from repro.mesh.quadrature import tet_rule

    q = tet_rule(n)
    assert (q.points >= 0).all()
    assert (q.points.sum(axis=1) <= 1.0 + 1e-14).all()
    assert (q.weights > 0).all()
