"""Property-based tests of the sharded tier: consistent-hash stability
under membership changes, and failover that never loses or duplicates a
request.  Pure-Python stand-ins (no numpy solves) keep Hypothesis fast."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.shard import ShardFaultPlan, ShardKill
from repro.serve.batcher import BatchPolicy, DeadlineBatcher
from repro.serve.queue import RequestQueue, ServeRequest
from repro.serve.shard import HashRing, ShardCluster, ShardRouter

# ----------------------------------------------------------------------
# consistent-hash membership properties
# ----------------------------------------------------------------------

_nodes = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=2, max_size=6, unique=True,
)
_keys = st.lists(st.integers(min_value=0, max_value=10_000),
                 min_size=1, max_size=80, unique=True)


@given(nodes=_nodes, keys=_keys, vnodes=st.integers(2, 32),
       victim_idx=st.integers(0, 5))
@settings(max_examples=40)
def test_remove_remaps_only_the_victims_keys(nodes, keys, vnodes,
                                             victim_idx):
    """Removing one node moves exactly the keys it owned; every other
    key's placement is untouched (the ~K/N movement property)."""
    ring = HashRing(nodes, vnodes=vnodes)
    victim = nodes[victim_idx % len(nodes)]
    before = {k: ring.lookup(f"k{k}") for k in keys}
    ring.remove(victim)
    for k in keys:
        after = ring.lookup(f"k{k}")
        if before[k] == victim:
            assert after != victim
        else:
            assert after == before[k]


@given(nodes=_nodes, keys=_keys, vnodes=st.integers(2, 32),
       newcomer=st.text(alphabet="xyz", min_size=5, max_size=8))
@settings(max_examples=40)
def test_add_moves_keys_only_to_the_new_node(nodes, keys, vnodes, newcomer):
    """Adding a node only *steals* keys for itself — it never shuffles a
    key between two pre-existing nodes."""
    ring = HashRing(nodes, vnodes=vnodes)
    before = {k: ring.lookup(f"k{k}") for k in keys}
    ring.add(newcomer)
    for k in keys:
        after = ring.lookup(f"k{k}")
        assert after == before[k] or after == newcomer


@given(nodes=_nodes, keys=_keys, vnodes=st.integers(2, 16),
       n=st.integers(1, 4))
@settings(max_examples=25)
def test_preference_lists_are_distinct_prefix_consistent(nodes, keys,
                                                         vnodes, n):
    ring = HashRing(nodes, vnodes=vnodes)
    for k in keys:
        pref = ring.preference(f"k{k}", n)
        assert len(pref) == len(set(pref)) == min(n, len(nodes))
        for m in range(1, len(pref)):
            assert ring.preference(f"k{k}", m) == pref[:m]


# ----------------------------------------------------------------------
# failover conservation: never lost, never duplicated
# ----------------------------------------------------------------------


class _StubCache:
    """Just enough cache surface for ShardCluster wiring."""

    def __init__(self):
        self.on_invalidate = None

    def invalidate(self, key):
        return False

    def tenant_stats(self):
        return {}


class _StubService:
    """Queue-only service: requests park until the test drains them."""

    def __init__(self, capacity=64):
        self.queue = RequestQueue(capacity)
        self.batcher = DeadlineBatcher(BatchPolicy(8))
        self.cache = _StubCache()

    @property
    def pending(self):
        return len(self.queue)

    def submit(self, req):
        return self.queue.submit(req)


@given(
    n_shards=st.integers(2, 5),
    n_reqs=st.integers(1, 40),
    kill_idx=st.integers(0, 4),
    key_span=st.integers(1, 6),
)
@settings(max_examples=40)
def test_failover_never_loses_or_duplicates_requests(n_shards, n_reqs,
                                                     kill_idx, key_span):
    """Admit a batch of requests, kill one shard: every admitted request
    is afterwards queued on exactly one *live* shard, or accounted as
    failover-shed — never dropped silently, never cloned."""
    shards = [f"s{i}" for i in range(n_shards)]
    router = ShardRouter(shards, vnodes=8, hot_threshold=3, max_replicas=1)
    services = {s: _StubService(capacity=max(2, n_reqs)) for s in shards}
    victim = shards[kill_idx % n_shards]
    plan = ShardFaultPlan(kills=(ShardKill(victim, at=1.0),))
    cluster = ShardCluster(router, services, shard_faults=plan)

    admitted = set()
    for rid in range(n_reqs):
        req = ServeRequest(rid=rid, key=f"op-{rid % key_span}", seed=rid)
        if cluster.submit(req, now=0.0):
            admitted.add(rid)

    cluster.advance(2.0)  # the kill fires; queued work re-routes

    assert not cluster.shard_state(victim).alive
    survivors = [s for s in shards if s != victim]
    located: list[int] = []
    for s in survivors:
        located.extend(r.rid for r in services[s].queue.fifo())
    assert len(services[victim].queue) == 0  # dead shard fully drained
    assert len(located) == len(set(located))  # no duplicates anywhere
    shed = int(cluster.obs.counters.get("shard.failover_shed", 0))
    assert len(set(located)) + shed == len(admitted)  # nothing lost


@given(
    rids=st.lists(st.integers(0, 1000), min_size=1, max_size=20,
                  unique=True),
    deadlines=st.lists(
        st.one_of(st.none(), st.floats(0.0, 10.0, allow_nan=False)),
        min_size=1, max_size=20,
    ),
)
@settings(max_examples=40)
def test_deadline_batcher_conserves_queue(rids, deadlines):
    """DeadlineBatcher removes exactly the batch it returns; everything
    else stays queued in FIFO order."""
    q = RequestQueue(capacity=len(rids))
    before = []
    for i, rid in enumerate(rids):
        d = deadlines[i % len(deadlines)]
        req = ServeRequest(rid=rid, key=f"k{rid % 3}", seed=rid,
                           arrival=float(i), deadline=d)
        assert q.submit(req)
        before.append(rid)
    batch = DeadlineBatcher(BatchPolicy(4)).next_batch(q)
    taken = [r.rid for r in batch]
    left = [r.rid for r in q.fifo()]
    assert set(taken) | set(left) == set(before)
    assert set(taken) & set(left) == set()
    # the survivors keep their original relative order
    assert left == [rid for rid in before if rid not in set(taken)]
    # every batch member shares the seed's key (compatibility)
    assert len({r.key for r in batch}) == 1
