"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# keep hypothesis fast and deterministic on CI-like machines
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
