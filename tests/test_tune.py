"""repro.tune unit tests: search space semantics, calibration fitting,
tuned-config loading (all three artifact formats + legacy aliases), the
evaluation cache, winner selection, and the end-to-end harness doc."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.schema import (
    TUNE_CONFIG_SCHEMA,
    new_bench_doc,
    validate_tune_doc,
)
from repro.tune.calibration import (
    TunedConfig,
    calibrated_machine,
    fit_machine_constants,
    load_tuned_config,
)
from repro.tune.evaluate import GATED_METRICS, BaseEvaluator
from repro.tune.pareto import Objectives, dominates, pareto_front
from repro.tune.space import SearchSpace, choice_knob, default_space, int_knob

KERNELS = "benchmarks/baseline/BENCH_kernels.json"
SELLCS = "benchmarks/baseline/BENCH_sellcs.json"


# ----------------------------------------------------------------------
# search space
# ----------------------------------------------------------------------

class TestSpace:
    def test_default_config_covers_every_knob(self):
        space = default_space()
        cfg = space.default_config()
        assert set(cfg) == {k.name for k in space.knobs}
        # the ISSUE's knob inventory is all present
        for name in (
            "n_streams", "gpu_chunks", "max_batch", "cache_capacity",
            "queue_capacity", "fused_cg", "gemm_k_min",
            "sellcs_crossover_dofs", "sell_c", "sell_sigma_factor",
        ):
            assert name in cfg

    def test_normalize_pins_inactive_knobs(self):
        space = default_space()
        cfg = dict(
            space.default_config(),
            sellcs_crossover_dofs=0, sell_c=8, sell_sigma_factor=2,
        )
        norm = space.normalize(cfg)
        # crossover 0 -> sellcs never routes -> (C, sigma) dead, pinned
        assert norm["sell_c"] == 32
        assert norm["sell_sigma_factor"] == 8
        # and the fingerprint collapses with the plain default
        assert space.fingerprint(cfg) == space.fingerprint(
            space.default_config()
        )

    def test_active_sell_knobs_survive_normalize(self):
        space = default_space()
        cfg = dict(
            space.default_config(),
            sellcs_crossover_dofs=1000, sell_c=8, sell_sigma_factor=2,
        )
        norm = space.normalize(cfg)
        assert norm["sell_c"] == 8
        assert norm["sell_sigma_factor"] == 2

    def test_off_grid_value_rejected(self):
        space = default_space()
        with pytest.raises(ValueError, match="not on the grid"):
            space.normalize(dict(space.default_config(), n_streams=3))

    def test_duplicate_knob_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace(knobs=(
                choice_knob("a", (1, 2), 1), choice_knob("a", (3, 4), 3),
            ))

    def test_int_knob_log_grid(self):
        k = int_knob("x", 2, 64, default=8, log=True)
        assert k.values == (2, 4, 8, 16, 32, 64)

    def test_operators_stay_on_grid_and_are_seeded(self):
        space = default_space()
        rng1, rng2 = (np.random.default_rng(7) for _ in range(2))
        for _ in range(50):
            a, b = space.sample(rng1), space.sample(rng2)
            assert a == b  # same seed, same draw
            assert a == space.normalize(a)
        rng = np.random.default_rng(3)
        cfg = space.default_config()
        for _ in range(50):
            cfg = space.neighbor(cfg, rng)
            assert cfg == space.normalize(cfg)
            cfg = space.mutate(cfg, rng)
            assert cfg == space.normalize(cfg)


# ----------------------------------------------------------------------
# pareto
# ----------------------------------------------------------------------

class TestPareto:
    def test_dominates_is_strict(self):
        a = Objectives(10.0, 1.0, 100.0)
        assert not dominates(a, a)
        assert dominates(Objectives(11.0, 1.0, 100.0), a)
        assert dominates(a, Objectives(10.0, 2.0, 100.0))
        # trade-off: neither dominates
        b = Objectives(11.0, 2.0, 100.0)
        assert not dominates(a, b) and not dominates(b, a)

    def test_front_drops_dominated_and_dedups(self):
        class C:
            def __init__(self, fp, o):
                self.fingerprint, self.objectives = fp, o

        good = C("a", Objectives(10.0, 1.0, 100.0))
        bad = C("b", Objectives(9.0, 2.0, 200.0))
        dup = C("a", Objectives(10.0, 1.0, 100.0))
        front = pareto_front([bad, good, dup])
        assert [c.fingerprint for c in front] == ["a"]


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------

class TestCalibration:
    def test_fit_from_checked_in_baselines(self):
        cal = fit_machine_constants(KERNELS, SELLCS)
        # every fitted rate is admissible (positive, finite, sane)
        for key in ("emv_gflops", "csr_gflops", "sellcs_gflops"):
            assert 0.01 < cal[key] < 1000.0
        for key in ("emv_overhead_s", "csr_overhead_s", "sellcs_overhead_s"):
            assert cal[key] >= 0.0
        assert 0.5 < cal["sellcs_occupancy"] <= 1.0
        assert cal["gemm_k_min"] == 2
        assert cal["sellcs_crossover_dofs"] == 4913
        # the calibrated model must order assembled-vs-sellcs the way
        # the measurements do on every case (the ISSUE's agreement gate)
        assert cal["rank_agreement"] == 1.0
        assert cal["n_points"] >= 6

    def test_fit_missing_reports_returns_none(self, tmp_path):
        assert fit_machine_constants(None, None) is None
        assert fit_machine_constants(tmp_path / "nope.json", None) is None

    def test_calibrated_machine_substitutes_rates(self):
        cal = fit_machine_constants(KERNELS, SELLCS)
        m = calibrated_machine(cal)
        assert m.rates.emv_gflops == pytest.approx(cal["emv_gflops"])
        assert m.rates.csr_gflops == pytest.approx(cal["csr_gflops"])
        # untouched constants survive
        assert m.dram_gbps == calibrated_machine(None).dram_gbps

    def test_affine_fit_clamps_negative_slope(self):
        from repro.tune.calibration import _affine_fit

        # fewer flops but MORE time: lstsq slope is negative, the
        # through-origin fallback must kick in
        a, b = _affine_fit([(2e6, 0.0008), (3e6, 0.0004)])
        assert a == 0.0 and b > 0.0


class TestTunedConfigLoading:
    def test_native_config_doc(self, tmp_path):
        p = tmp_path / "tuned_config.json"
        p.write_text(json.dumps(
            {"schema": TUNE_CONFIG_SCHEMA, "config": {"gemm_k_min": 4}}
        ))
        tuned = load_tuned_config(p)
        assert tuned.get("gemm_k_min") == 4
        assert tuned.get("missing", 7) == 7

    def test_tune_report_doc_uses_winner(self, tmp_path):
        p = tmp_path / "TUNE_report.json"
        p.write_text(json.dumps({
            "schema": "repro.tune/1",
            "winner": {"config": {"max_batch": 16}},
        }))
        assert load_tuned_config(p).get("max_batch") == 16

    def test_legacy_bench_doc_maps_crossovers(self, tmp_path):
        doc = new_bench_doc(suite="kernels", repeats=1, config={
            "gemm_k_min_crossover": 2, "sellcs_crossover_dofs": 4913,
        })
        p = tmp_path / "BENCH_kernels.json"
        p.write_text(json.dumps(doc))
        tuned = load_tuned_config(p)
        assert tuned.get("gemm_k_min") == 2
        assert tuned.get("sellcs_crossover_dofs") == 4913

    def test_missing_and_garbage_files_yield_none(self, tmp_path):
        assert load_tuned_config(None) is None
        assert load_tuned_config(tmp_path / "absent.json") is None
        p = tmp_path / "garbage.json"
        p.write_text("not json {")
        assert load_tuned_config(p) is None
        p2 = tmp_path / "other.json"
        p2.write_text(json.dumps({"schema": "something/else"}))
        assert load_tuned_config(p2) is None

    def test_legacy_loaders_delegate(self, tmp_path):
        from repro.serve.loadgen import (
            load_calibrated_crossover,
            load_calibrated_k_min,
        )

        assert load_calibrated_k_min(KERNELS) == 2
        assert load_calibrated_crossover(SELLCS) == 4913
        # and they read the new artifact format too
        p = tmp_path / "tuned_config.json"
        p.write_text(json.dumps({
            "schema": TUNE_CONFIG_SCHEMA,
            "config": {"gemm_k_min": 16, "sellcs_crossover_dofs": 999},
        }))
        assert load_calibrated_k_min(p) == 16
        assert load_calibrated_crossover(p) == 999


# ----------------------------------------------------------------------
# evaluation cache + service round-trip
# ----------------------------------------------------------------------

class _StubEvaluator(BaseEvaluator):
    """Analytic metrics — fast, deterministic, exercise the cache."""

    def __init__(self, space):
        super().__init__(space)
        self.computed: list[dict] = []

    def _compute(self, config):
        self.computed.append(config)
        thr = 1e4 / config["max_batch"]
        mem = float(
            config["cache_capacity"] * 1000 + config["queue_capacity"] * 8
        )
        m = {
            "serve.throughput_rps": thr,
            "serve.p99_s": 1e-4 * config["max_batch"],
            "serve.time_per_req_s": 1.0 / thr,
            "solve.vtime_s": 1e-3 if config["fused_cg"] else 2e-3,
            "model.gpu_pipeline_s": 1e-2 / config["n_streams"],
            "mem.bytes": mem,
        }
        assert set(GATED_METRICS) <= set(m)
        return m


class TestEvaluationCache:
    def test_cache_hits_and_counts(self):
        space = default_space()
        ev = _StubEvaluator(space)
        r1 = ev.evaluate(space.default_config())
        r2 = ev.evaluate(space.default_config())
        assert not r1.cached and r2.cached
        assert ev.evaluations == 1 and ev.cache_hits == 1
        assert len(ev.computed) == 1
        # cached result is identical in everything but the flag
        assert r1.fingerprint == r2.fingerprint
        assert r1.objectives == r2.objectives
        assert r1.score == r2.score

    def test_inactive_knobs_share_one_evaluation(self):
        space = default_space()
        ev = _StubEvaluator(space)
        base = dict(space.default_config(), sellcs_crossover_dofs=0)
        ev.evaluate(dict(base, sell_c=8))
        r = ev.evaluate(dict(base, sell_c=64, sell_sigma_factor=16))
        assert r.cached and ev.evaluations == 1


class TestServiceRoundTrip:
    def test_solver_service_accepts_tuned_artifact(self):
        from repro.serve.cache import OperatorCache
        from repro.serve.service import SolverService

        tuned = TunedConfig({
            "max_batch": 4, "queue_capacity": 16, "gemm_k_min": 16,
            "sellcs_crossover_dofs": 1000,
        })
        svc = SolverService(OperatorCache(capacity=2), tuned=tuned)
        assert svc.k_min == 16
        assert svc.backend == "auto"
        assert svc.sellcs_crossover_dofs == 1000
        assert svc.queue.capacity == 16

    def test_explicit_args_beat_tuned(self):
        from repro.serve.cache import OperatorCache
        from repro.serve.service import SolverService

        tuned = TunedConfig({"gemm_k_min": 16, "sellcs_crossover_dofs": 1000})
        svc = SolverService(
            OperatorCache(capacity=2), k_min=2, backend="hymv",
            sellcs_crossover_dofs=50, tuned=tuned,
        )
        assert svc.k_min == 2
        assert svc.backend == "hymv"
        assert svc.sellcs_crossover_dofs == 50

    def test_zero_crossover_does_not_enable_routing(self):
        from repro.serve.cache import OperatorCache
        from repro.serve.service import SolverService

        tuned = TunedConfig({"sellcs_crossover_dofs": 0})
        svc = SolverService(OperatorCache(capacity=2), tuned=tuned)
        assert svc.backend is None


# ----------------------------------------------------------------------
# harness end-to-end (tiny budget)
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestHarness:
    def test_run_tune_emits_valid_doc_and_winner_gate(self):
        from repro.tune.harness import run_tune

        doc = run_tune(
            seed=99, budget=4, kernels_baseline=KERNELS,
            sellcs_baseline=SELLCS, verbose=False,
        )
        validate_tune_doc(doc)
        d, w = doc["default"]["metrics"], doc["winner"]["metrics"]
        for key in GATED_METRICS:
            assert w[key] <= d[key]
        assert doc["evaluations"] >= 1
        assert len(doc["trajectory"]) == 3 * 4
        assert doc["calibrated"]["rank_agreement"] == 1.0
