"""Property: non-corrupting faults never change SPMV numerics.

Delay, reorder, straggler and drop+retry perturb *when* messages arrive
and how long ranks compute — never *what* they carry.  On seeded random
partitions, every SPMV method under every such fault regime must match
the serial dense reference to machine precision, and repeated faulted
runs must be bitwise identical.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AssembledOperator,
    MatrixFreeOperator,
    SerialReference,
)
from repro.core import HymvOperator
from repro.core.scatter import SCATTER_TAG
from repro.faults import Delay, Drop, FaultPlan, Reorder, Straggler
from repro.fem import PoissonOperator
from repro.mesh import box_hex_mesh
from repro.partition.interface import partition_from_elem_part
from repro.simmpi import run_spmd

FACTORIES = {
    "hymv": HymvOperator,
    "matfree": MatrixFreeOperator,
    "assembled": AssembledOperator,
}


def _fault_plan(kind: str, n_ranks: int, seed: int) -> FaultPlan | None:
    if kind == "none":
        return None
    rules = {
        "delay": (Delay(1e-4, jitter=1e-4),),
        "reorder": (Reorder(period=2),),
        "straggler": (Straggler(0, 3.0),),
        "drop": (Drop(tag=SCATTER_TAG),),  # first scatter per edge lost once
        "mixed": (
            Delay(5e-5, tag=SCATTER_TAG),
            Reorder(period=3),
            Drop(tag=SCATTER_TAG),
            Straggler(n_ranks - 1, 2.0),
        ),
    }[kind]
    return FaultPlan(rules=rules, seed=seed)


def _faulted_product(mesh, op, part, x, kind, plan):
    p = part.n_parts

    def prog(comm, lmesh, xo):
        A = FACTORIES[kind](comm, lmesh, op)
        return A.apply_owned(xo)

    args = [
        (part.local(r), x[part.ranges[r, 0]: part.ranges[r, 1]])
        for r in range(p)
    ]
    res, _ = run_spmd(p, prog, rank_args=args, faults=plan)
    return np.concatenate(res)


def _reference_product(mesh, op, part, x_new):
    ref = SerialReference(mesh, op)
    n = mesh.n_nodes
    x_old = np.empty_like(x_new)
    x_old[part.old_of_new] = x_new[np.arange(n)]
    y_old = ref.spmv(x_old)
    return y_old[part.old_of_new]


@given(
    p=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10),
    fault=st.sampled_from(["none", "delay", "reorder", "straggler", "drop",
                           "mixed"]),
)
@settings(max_examples=12, deadline=None)
def test_noncorrupting_faults_preserve_spmv(p, seed, fault):
    mesh = box_hex_mesh(3, 3, 3)
    op = PoissonOperator()
    rng = np.random.default_rng(seed)
    elem_part = rng.integers(0, p, size=mesh.n_elements)
    elem_part[:p] = np.arange(p)  # every rank gets at least one element
    part = partition_from_elem_part(mesh, p, elem_part)
    x = rng.standard_normal(mesh.n_nodes)
    plan = _fault_plan(fault, p, seed)

    y_ref = _reference_product(mesh, op, part, x)
    scale = max(np.abs(y_ref).max(), 1.0)
    for kind in FACTORIES:
        y = _faulted_product(mesh, op, part, x, kind, plan)
        np.testing.assert_allclose(
            y, y_ref, atol=1e-12 * scale,
            err_msg=f"{kind} under fault={fault}",
        )


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=6, deadline=None)
def test_faulted_spmv_is_bitwise_reproducible(seed):
    """Two runs of the same faulted product agree bit for bit."""
    mesh = box_hex_mesh(3, 3, 4)
    op = PoissonOperator()
    rng = np.random.default_rng(seed)
    p = 4
    elem_part = rng.integers(0, p, size=mesh.n_elements)
    elem_part[:p] = np.arange(p)
    part = partition_from_elem_part(mesh, p, elem_part)
    x = rng.standard_normal(mesh.n_nodes)
    plan = _fault_plan("mixed", p, seed)
    y1 = _faulted_product(mesh, op, part, x, "hymv", plan)
    y2 = _faulted_product(mesh, op, part, x, "hymv", plan)
    np.testing.assert_array_equal(y1, y2)
