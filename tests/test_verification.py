"""Paper §V-B correctness verification, reproduced end-to-end through the
distributed solve driver (mesh → partition → HYMV/baselines → CG → error
vs analytic solution)."""

from __future__ import annotations

import pytest

from repro.harness import run_solve
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem, poisson_problem

METHODS = ["hymv", "assembled", "matfree"]


@pytest.mark.parametrize("method", METHODS)
def test_poisson_structured_converges_to_exact(method):
    spec = poisson_problem(8, 4)
    out = run_solve(spec, method, precond="jacobi", rtol=1e-10)
    assert out.converged
    # discretization error at h = 1/8 (the paper's coarsest is 23.4e-5 at
    # h = 1/10; ours at 1/8 is of the same order)
    assert out.err_inf < 2e-3


def test_poisson_error_decreases_under_refinement():
    errs = []
    for nel in (6, 12):
        spec = poisson_problem(nel, 4)
        out = run_solve(spec, "hymv", precond="jacobi", rtol=1e-11)
        errs.append(out.err_inf)
    assert errs[1] < errs[0] / 2.5


def test_poisson_unstructured_tet10():
    spec = poisson_problem(5, 4, ElementType.TET10)
    out = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10)
    assert out.converged
    assert out.err_inf < 2e-3


@pytest.mark.parametrize("method", METHODS)
def test_elastic_bar_quadratic_machine_precision(method):
    """Quadratic elements reproduce the quadratic Timoshenko solution to
    solver precision (paper: err < 1e-8)."""
    spec = elastic_bar_problem(3, 3, ElementType.HEX20)
    out = run_solve(spec, method, precond="bjacobi", rtol=1e-12, maxiter=3000)
    assert out.converged
    assert out.err_inf < 1e-8


def test_elastic_bar_hex27():
    spec = elastic_bar_problem(2, 2, ElementType.HEX27)
    out = run_solve(spec, "hymv", precond="bjacobi", rtol=1e-12, maxiter=3000)
    assert out.err_inf < 1e-8


def test_elastic_bar_tet10_unstructured():
    spec = elastic_bar_problem(3, 3, ElementType.TET10, jitter=0.15)
    out = run_solve(spec, "hymv", precond="bjacobi", rtol=1e-12, maxiter=4000)
    assert out.err_inf < 1e-7


def test_elastic_bar_linear_elements_discretization_error():
    """Linear hexes cannot represent the quadratic solution exactly; the
    error is O(h^2) and shrinks under refinement."""
    errs = []
    for nel in (3, 6):
        spec = elastic_bar_problem(nel, 3, ElementType.HEX8)
        out = run_solve(spec, "hymv", precond="bjacobi", rtol=1e-12, maxiter=6000)
        errs.append(out.err_inf)
    assert errs[1] < errs[0] / 2.0


def test_methods_agree_on_iteration_counts():
    """Same operator + same preconditioner ⇒ (nearly) identical CG paths
    regardless of SPMV method."""
    spec = elastic_bar_problem(3, 3, ElementType.HEX20)
    outs = [
        run_solve(spec, m, precond="jacobi", rtol=1e-8, maxiter=4000)
        for m in METHODS
    ]
    its = [o.iterations for o in outs]
    assert max(its) - min(its) <= 2  # FP roundoff may shift by an iteration


def test_top_face_pinning_variant():
    spec = elastic_bar_problem(3, 2, ElementType.HEX20, pin="top_face")
    out = run_solve(spec, "hymv", precond="jacobi", rtol=1e-11, maxiter=4000)
    assert out.err_inf < 1e-8


def test_preconditioning_reduces_iterations_and_total_time_shape():
    spec = elastic_bar_problem(4, 3, ElementType.HEX20)
    none = run_solve(spec, "hymv", precond="none", rtol=1e-8, maxiter=8000)
    jac = run_solve(spec, "hymv", precond="jacobi", rtol=1e-8, maxiter=8000)
    bj = run_solve(spec, "hymv", precond="bjacobi", rtol=1e-8, maxiter=8000)
    assert jac.iterations < none.iterations
    assert bj.iterations < jac.iterations  # Fig. 11b's J vs BJ ordering
