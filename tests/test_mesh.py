"""Mesh generation: structured boxes, tetrahedralization, promotion,
boundary extraction, dual graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh, jittered_hex_mesh
from repro.mesh.element import corner_faces, face_nodes
from repro.mesh.unstructured import promote_mesh

dims = st.integers(min_value=1, max_value=4)


@given(dims, dims, dims)
def test_hex8_box_counts(nx, ny, nz):
    m = box_hex_mesh(nx, ny, nz)
    assert m.n_elements == nx * ny * nz
    assert m.n_nodes == (nx + 1) * (ny + 1) * (nz + 1)


@given(dims, dims, dims)
def test_hex27_box_counts(nx, ny, nz):
    m = box_hex_mesh(nx, ny, nz, ElementType.HEX27)
    assert m.n_nodes == (2 * nx + 1) * (2 * ny + 1) * (2 * nz + 1)


@given(dims, dims, dims)
def test_hex20_box_counts(nx, ny, nz):
    m = box_hex_mesh(nx, ny, nz, ElementType.HEX20)
    corners = (nx + 1) * (ny + 1) * (nz + 1)
    edges = (
        nx * (ny + 1) * (nz + 1)
        + (nx + 1) * ny * (nz + 1)
        + (nx + 1) * (ny + 1) * nz
    )
    assert m.n_nodes == corners + edges


def test_box_respects_lengths_and_origin():
    m = box_hex_mesh(2, 3, 4, lengths=(2.0, 3.0, 4.0), origin=(-1.0, 0.5, 2.0))
    lo, hi = m.bounding_box()
    np.testing.assert_allclose(lo, [-1.0, 0.5, 2.0])
    np.testing.assert_allclose(hi, [1.0, 3.5, 6.0])


@pytest.mark.parametrize(
    "etype", [ElementType.HEX8, ElementType.HEX20, ElementType.HEX27]
)
def test_hex_jacobians_positive(etype):
    from repro.fem.elemmat import jacobians
    from repro.mesh.quadrature import quadrature_for
    from repro.mesh.shape_functions import shape_functions_for

    m = jittered_hex_mesh(3, 3, 3, etype, jitter=0.25, seed=3)
    sf = shape_functions_for(etype)
    q = quadrature_for(etype)
    _, detJ, _ = jacobians(sf.grad(q.points), m.coords[m.conn])
    assert (detJ > 0).all()


def test_tet_mesh_positive_volumes_and_conformity():
    m = box_tet_mesh(3, 3, 3, jitter=0.3, seed=7)
    c = m.coords[m.conn]
    vols = np.linalg.det(c[:, 1:4] - c[:, 0:1]) / 6.0
    assert (vols > 0).all()
    np.testing.assert_allclose(vols.sum(), 1.0, rtol=1e-12)
    # conformity: every interior triangle face shared by exactly 2 tets
    from repro.mesh.element import TET_FACES

    keys = np.vstack([np.sort(m.conn[:, list(f)], axis=1) for f in TET_FACES])
    view = np.ascontiguousarray(keys).view([("", keys.dtype)] * 3).reshape(-1)
    _, counts = np.unique(view, return_counts=True)
    assert set(counts.tolist()) <= {1, 2}
    assert (counts == 1).sum() == 2 * 6 * 9  # boundary triangles


def test_tet10_midpoints_on_edges():
    from repro.mesh.element import TET_EDGES

    m = box_tet_mesh(2, 2, 2, ElementType.TET10, jitter=0.2, seed=1)
    c = m.coords[m.conn]
    for k, (i, j) in enumerate(TET_EDGES):
        np.testing.assert_allclose(c[:, 4 + k], (c[:, i] + c[:, j]) / 2.0)


def test_promotion_shares_midside_nodes():
    base = box_hex_mesh(2, 2, 2)
    m = promote_mesh(base, ElementType.HEX27)
    # unique global edge count of a 2x2x2 hex grid: 3 * n*(n+1)^2 with n=2
    n_edges = 3 * 2 * 9
    n_faces = 3 * 4 * 3  # 3 directions * (2*2 faces * 3 layers)
    assert m.n_nodes == base.n_nodes + n_edges + n_faces + base.n_elements


def test_promotion_rejects_bad_pairs():
    m = box_hex_mesh(2, 2, 2)
    with pytest.raises(ValueError):
        promote_mesh(m, ElementType.TET10)


@pytest.mark.parametrize("etype", list(ElementType))
def test_boundary_nodes_geometric(etype):
    if etype.is_hex:
        m = box_hex_mesh(3, 3, 3, etype)
    else:
        m = box_tet_mesh(3, 3, 3, etype, jitter=0.0)
    bn = m.boundary_nodes()
    on_box = np.any(
        (np.abs(m.coords) < 1e-12) | (np.abs(m.coords - 1.0) < 1e-12), axis=1
    )
    np.testing.assert_array_equal(np.sort(np.flatnonzero(on_box)), bn)


def test_dual_graph_structured_hex():
    m = box_hex_mesh(3, 3, 3)
    edges = m.dual_graph_edges()
    # interior faces of a 3x3x3 grid: 3 * 2 * 9 = 54
    assert edges.shape == (54, 2)
    assert (edges[:, 0] != edges[:, 1]).all()


def test_face_nodes_cover_higher_order():
    for etype in (ElementType.HEX20, ElementType.HEX27, ElementType.TET10):
        fn = face_nodes(etype)
        cf = corner_faces(etype)
        for f, face in enumerate(fn):
            assert set(cf[f]) <= set(face)
            if etype is ElementType.HEX27:
                assert len(face) == 9
            elif etype is ElementType.HEX20:
                assert len(face) == 8
            else:
                assert len(face) == 6


def test_mesh_validation_errors():
    from repro.mesh.mesh import Mesh

    coords = np.zeros((4, 3))
    with pytest.raises(ValueError):
        Mesh(coords, np.array([[0, 1, 2, 99]]), ElementType.TET4)
    with pytest.raises(ValueError):
        Mesh(np.zeros((4, 2)), np.array([[0, 1, 2, 3]]), ElementType.TET4)
    with pytest.raises(ValueError):
        Mesh(coords, np.array([[0, 1, 2]]), ElementType.TET4)


def test_node_elements_adjacency():
    m = box_hex_mesh(2, 2, 2)
    offsets, elems = m.node_elements()
    # center node of a 2x2x2 grid belongs to all 8 elements
    center = np.flatnonzero(
        np.all(np.abs(m.coords - 0.5) < 1e-12, axis=1)
    )[0]
    assert offsets[center + 1] - offsets[center] == 8
    assert set(elems[offsets[center]: offsets[center + 1]].tolist()) == set(
        range(8)
    )
