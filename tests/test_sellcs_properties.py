"""Property-based laws of the SELL-C-sigma layout and kernels: bitwise
identity to CSR for arbitrary (C, sigma) — including sigma=1 (no sort)
and sigma >= n (global sort) — permutation round-trip, multi-RHS
agreement, and the zero-allocation steady state."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.core.sellcs import SellWorkspace, build_sellcs, sell_spmm, sell_spmv


def _random_csr(n, nc, density, seed):
    """Random CSR with explicit zeros and negative-zero inputs kept —
    the padding argument must survive both."""
    rng = np.random.default_rng(seed)
    A = sparse.random(
        n, nc, density=density, format="csr", random_state=rng,
        data_rvs=lambda size: rng.standard_normal(size),
    )
    if A.nnz:
        # plant an explicit stored zero: padding must stay distinguishable
        A.data[rng.integers(A.nnz)] = 0.0
    return A


@st.composite
def layouts(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    nc = draw(st.integers(min_value=1, max_value=40))
    density = draw(st.sampled_from([0.05, 0.2, 0.6]))
    C = draw(st.integers(min_value=1, max_value=9))
    sigma = draw(
        st.one_of(
            st.just(1),  # no sorting window
            st.integers(min_value=1, max_value=64),
            st.just(10_000),  # sigma >= n: one global sort window
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, nc, density, C, sigma, seed


@given(layouts())
@settings(max_examples=60, deadline=None)
def test_sell_spmv_bitwise_equals_csr(params):
    n, nc, density, C, sigma, seed = params
    A = _random_csr(n, nc, density, seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(nc)
    if nc:
        x[rng.integers(nc)] = -0.0  # signed zero must not flip pad sums
    layout = build_sellcs(A, C=C, sigma=sigma)
    ws = SellWorkspace(layout, 1)
    y = sell_spmv(layout, x, ws)
    assert np.array_equal(
        y.view(np.uint64), (A @ x).view(np.uint64)
    ), "SELL product differs in bits from the CSR row-sum"


@given(layouts())
@settings(max_examples=60, deadline=None)
def test_layout_invariants_and_permutation_round_trip(params):
    n, nc, density, C, sigma, seed = params
    A = _random_csr(n, nc, density, seed)
    layout = build_sellcs(A, C=C, sigma=sigma)
    # the permutation is a bijection and inv really inverts it
    assert np.array_equal(np.sort(layout.perm), np.arange(n))
    assert np.array_equal(layout.inv[layout.perm], np.arange(n))
    # chunk widths are globally non-increasing (the prefix property the
    # slice kernels rely on) and the books balance
    assert np.all(np.diff(layout.widths) <= 0) if layout.widths.size else True
    assert layout.nnz == A.nnz
    assert layout.padded_nnz >= layout.nnz
    expect_occ = layout.nnz / layout.padded_nnz if layout.padded_nnz else 1.0
    assert layout.occupancy == pytest.approx(expect_occ)
    # a permuted round trip of any vector is the identity
    v = np.random.default_rng(seed + 2).standard_normal(n)
    assert np.array_equal(v[layout.perm][layout.inv], v)


@given(layouts(), st.integers(min_value=2, max_value=9))
@settings(max_examples=40, deadline=None)
def test_sell_spmm_matches_columnwise_spmv(params, k):
    """The group-major chunk-matmul agrees with k independent slice-major
    products within the dot-order bound (they sum identical terms in a
    different association).  k=1 is out of contract: the operator routes
    single columns through the bitwise slice kernel instead."""
    n, nc, density, C, sigma, seed = params
    A = _random_csr(n, nc, density, seed)
    X = np.random.default_rng(seed + 3).standard_normal((nc, k))
    layout = build_sellcs(A, C=C, sigma=sigma)
    ws1 = SellWorkspace(layout, 1)
    wsk = SellWorkspace(layout, k)
    Y = sell_spmm(layout, X, wsk)
    scale = np.abs(A) @ np.abs(X) if A.nnz else np.zeros((n, k))
    for j in range(k):
        yj = sell_spmv(layout, np.ascontiguousarray(X[:, j]), ws1)
        err = np.abs(Y[:, j] - yj)
        assert np.all(err <= 1e-13 * np.maximum(scale[:, j], 1e-300) + 1e-300)


def test_sigma_one_and_global_sigma_are_both_exact():
    """The documented edge windows: sigma=1 keeps natural row order;
    sigma >= n sorts globally (maximal occupancy)."""
    A = _random_csr(33, 33, 0.3, seed=5)
    x = np.random.default_rng(6).standard_normal(33)
    ref = A @ x
    occ = {}
    for sigma in (1, 10_000):
        layout = build_sellcs(A, C=8, sigma=sigma)
        y = sell_spmv(layout, x, SellWorkspace(layout, 1))
        assert np.array_equal(y, ref)
        occ[sigma] = layout.occupancy
    assert occ[10_000] >= occ[1]  # sorting can only tighten the chunks


def test_steady_state_allocates_nothing():
    """After one warm call, repeated single- and multi-RHS kernels touch
    only workspace buffers (interpreter-level churn excluded by the same
    floor the bench gates on)."""
    from repro.obs.kernelbench import ALLOC_FLOOR_BYTES

    A = _random_csr(400, 400, 0.1, seed=9)
    layout = build_sellcs(A, C=32, sigma=256)
    x = np.random.default_rng(1).standard_normal(400)
    X = np.random.default_rng(2).standard_normal((400, 8))
    ws1 = SellWorkspace(layout, 1)
    ws8 = SellWorkspace(layout, 8)
    y = np.empty(400)
    Y = np.empty((400, 8))

    def steady():
        sell_spmv(layout, x, ws1, out=y)
        sell_spmm(layout, X, ws8, out=Y)

    steady()
    tracemalloc.start()
    try:
        steady()
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(10):
            steady()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert peak - base < ALLOC_FLOOR_BYTES
