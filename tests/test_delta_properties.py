"""Property-based delta laws: composition, idempotence, no-op emptiness,
and structural immutability of the scatter machinery under value-only
updates.  Operator state is compared by **bytes**, not tolerance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import MeshDelta
from repro.core import HymvOperator
from repro.fem import PoissonOperator
from repro.mesh import ElementType
from repro.mesh.unstructured import box_tet_mesh
from repro.partition import build_partition
from repro.simmpi import run_spmd

N_ELEMS = 48  # box_tet_mesh(2,2,2) element count — delta id range


def _fresh_op():
    """A single-rank HYMV operator on a small jittered tet mesh (enough
    elements for interesting deltas, cheap enough for Hypothesis)."""
    mesh = box_tet_mesh(2, 2, 2, ElementType.TET4, jitter=0.2, seed=5)
    assert mesh.n_elements == N_ELEMS
    part = build_partition(mesh, 1, method="graph")
    lmesh = part.local(0)

    def prog(comm, lm):
        return HymvOperator(comm, lm, PoissonOperator())

    (A,), _ = run_spmd(1, prog, rank_args=[(lmesh,)])
    return A, lmesh


def _apply(A, delta, lmesh):
    """Apply a (global == local on 1 rank) scale delta to the operator."""
    if delta.scale_elements.size:
        A.update_elements(
            delta.scale_elements, stiffness_scale=delta.scale_values
        )


@st.composite
def scale_deltas(draw, max_size=8):
    n = draw(st.integers(min_value=1, max_value=max_size))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=N_ELEMS - 1),
            min_size=n, max_size=n,
        )
    )
    vals = draw(
        st.lists(
            st.floats(min_value=0.125, max_value=8.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    return MeshDelta(scale_elements=ids, scale_values=vals)


@given(d1=scale_deltas(), d2=scale_deltas())
@settings(max_examples=20, deadline=None)
def test_sequential_deltas_equal_composed_delta(d1, d2):
    """Applying d1 then d2 leaves the operator byte-identical to applying
    the single composed delta (absolute scales, last wins)."""
    A_seq, lm = _fresh_op()
    _apply(A_seq, d1, lm)
    _apply(A_seq, d2, lm)
    A_one, lm2 = _fresh_op()
    _apply(A_one, d1.compose(d2), lm2)
    assert A_seq.ke.tobytes() == A_one.ke.tobytes()


@given(d=scale_deltas())
@settings(max_examples=15, deadline=None)
def test_reapplying_same_delta_is_idempotent(d):
    """Scales are absolute: applying the same delta twice is a no-op the
    second time, byte for byte."""
    A, lm = _fresh_op()
    _apply(A, d, lm)
    once = A.ke.tobytes()
    _apply(A, d, lm)
    assert A.ke.tobytes() == once


def test_empty_delta_is_identity():
    d = MeshDelta()
    assert d.is_empty and not d.is_structural
    A, lm = _fresh_op()
    before = A.ke.tobytes()
    A.update_elements(np.empty(0, dtype=np.int64), stiffness_scale=None)
    assert A.ke.tobytes() == before
    # composing with the empty delta changes nothing
    d1 = MeshDelta(scale_elements=[3, 7], scale_values=[0.5, 2.0])
    assert d1.compose(d) == d1 and d.compose(d1) == d1


@given(d=scale_deltas())
@settings(max_examples=15, deadline=None)
def test_value_update_never_touches_scatter_structure(d):
    """A value-only update recomputes matrices; the SegmentScatter index
    structure (and its scratch identity) must stay byte-identical —
    structure rebuilds are what the delta path exists to avoid."""
    A, lm = _fresh_op()
    segs = [s for s in (A._seg_indep, A._seg_dep, A._seg_all)
            if s is not None]
    assert segs
    before = [
        (s.indptr.tobytes(), s.indices.tobytes(), s.touched.tobytes(),
         s._data.tobytes())
        for s in segs
    ]
    _apply(A, d, lm)
    after = [
        (s.indptr.tobytes(), s.indices.tobytes(), s.touched.tobytes(),
         s._data.tobytes())
        for s in segs
    ]
    assert before == after


def test_composition_matches_dict_semantics():
    """compose() is exactly last-wins dict overlay on the id space."""
    d1 = MeshDelta(scale_elements=[1, 5, 9], scale_values=[0.5, 1.5, 2.0])
    d2 = MeshDelta(scale_elements=[5, 2], scale_values=[4.0, 0.25])
    ref = {1: 0.5, 5: 1.5, 9: 2.0}
    ref.update({5: 4.0, 2: 0.25})
    merged = d1.compose(d2)
    assert dict(zip(merged.scale_elements.tolist(),
                    merged.scale_values.tolist())) == ref
