"""Partial-assembly (geometric-storage) operator extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import PartialAssemblyOperator, SerialReference
from repro.fem import ElasticityOperator, PoissonOperator
from repro.harness import run_bench, run_solve
from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh
from repro.partition import build_partition
from repro.problems import elastic_bar_problem, poisson_problem
from repro.simmpi import run_spmd

CASES = [
    (lambda: box_tet_mesh(3, 3, 3, ElementType.TET10, jitter=0.2),
     PoissonOperator(), 3),
    (lambda: box_hex_mesh(3, 3, 3, ElementType.HEX20),
     ElasticityOperator(), 2),
    (lambda: box_tet_mesh(2, 2, 2, jitter=0.25), ElasticityOperator(), 2),
    (lambda: box_hex_mesh(3, 3, 3, ElementType.HEX27),
     PoissonOperator(), 2),
]


@pytest.mark.parametrize("mesh_fn,op,p", CASES)
def test_partial_matches_serial(mesh_fn, op, p):
    mesh = mesh_fn()
    part = build_partition(mesh, p, method="graph")
    ref = SerialReference(mesh, op)
    nd = op.ndpn
    rng = np.random.default_rng(0)
    x = rng.standard_normal(mesh.n_nodes * nd)
    x_old = np.empty_like(x)
    for c in range(nd):
        x_old[part.old_of_new * nd + c] = x[np.arange(mesh.n_nodes) * nd + c]
    y_old = ref.spmv(x_old)
    y_new = np.empty_like(y_old)
    for c in range(nd):
        y_new[np.arange(mesh.n_nodes) * nd + c] = y_old[part.old_of_new * nd + c]

    def prog(comm, lmesh, xo):
        A = PartialAssemblyOperator(comm, lmesh, op)
        return A.apply_owned(xo)

    args = [
        (part.local(r), x[part.ranges[r, 0] * nd: part.ranges[r, 1] * nd])
        for r in range(p)
    ]
    res, _ = run_spmd(p, prog, rank_args=args)
    err = np.abs(np.concatenate(res) - y_new).max()
    assert err < 1e-10 * max(1.0, np.abs(y_new).max())


def test_partial_solve_matches_hymv():
    spec = elastic_bar_problem(3, 3, ElementType.HEX20)
    ref = run_solve(spec, "hymv", precond="jacobi", rtol=1e-10)
    out = run_solve(spec, "partial", precond="jacobi", rtol=1e-10)
    assert abs(out.iterations - ref.iterations) <= 1
    # both at solver precision (machine-level absolute agreement)
    assert out.err_inf < 1e-10 and ref.err_inf < 1e-10


def test_partial_stores_less_than_hymv_for_quadratic_vector():
    spec = elastic_bar_problem(4, 2, ElementType.HEX20)
    hymv = run_bench(spec, "hymv", n_spmv=1)
    partial = run_bench(spec, "partial", n_spmv=1)
    assert partial.stored_bytes < hymv.stored_bytes / 5.0


def test_partial_rejects_unknown_operator():
    from dataclasses import dataclass

    from repro.fem.operators import Operator

    @dataclass(frozen=True)
    class Weird(Operator):
        ndpn: int = 1

    spec = poisson_problem(4, 1)
    lmesh = spec.partition.local(0)

    def prog(comm):
        with pytest.raises(TypeError):
            PartialAssemblyOperator(comm, lmesh, Weird())
        return True

    res, _ = run_spmd(1, prog)
    assert res[0]


def test_partial_preconditioners_work():
    spec = elastic_bar_problem(3, 2, ElementType.HEX20)
    out = run_solve(spec, "partial", precond="bjacobi", rtol=1e-11,
                    maxiter=4000)
    assert out.converged and out.err_inf < 1e-8
