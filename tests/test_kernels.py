"""EMV kernels and scatter/gather primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    EMV_KERNELS,
    EmvWorkspace,
    accumulate_element_vectors,
    emv_columns,
    emv_einsum,
    gather_element_vectors,
)


@given(
    e=st.integers(min_value=1, max_value=20),
    nd=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=15)
def test_kernels_agree_any_shape(e, nd, seed):
    rng = np.random.default_rng(seed)
    ke = rng.standard_normal((e, nd, nd))
    ue = rng.standard_normal((e, nd))
    ref = np.stack([ke[i] @ ue[i] for i in range(e)])
    np.testing.assert_allclose(emv_einsum(ke, ue), ref, atol=1e-11)
    np.testing.assert_allclose(emv_columns(ke, ue), ref, atol=1e-11)


def test_kernel_registry():
    assert set(EMV_KERNELS) == {"einsum", "columns"}


def test_gather_accumulate_roundtrip(rng):
    flat = rng.standard_normal(40)
    idx = rng.integers(0, 40, size=(6, 5))
    ue = gather_element_vectors(flat, idx)
    np.testing.assert_array_equal(ue, flat[idx])
    out = np.zeros(40)
    accumulate_element_vectors(out, idx, ue)
    # accumulating the gathered values equals multiplicity-weighted flat
    counts = np.bincount(idx.reshape(-1), minlength=40)
    np.testing.assert_allclose(out, flat * counts, atol=1e-12)


def test_gather_with_subset(rng):
    flat = rng.standard_normal(30)
    idx = rng.integers(0, 30, size=(8, 4))
    sel = np.array([1, 3, 5])
    np.testing.assert_array_equal(
        gather_element_vectors(flat, idx, sel), flat[idx[sel]]
    )


@given(
    e=st.integers(min_value=1, max_value=20),
    nd=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=15)
def test_out_forms_bitwise_match_allocating_forms(e, nd, seed):
    """The zero-allocation ``out=`` paths must not change a single bit
    relative to the legacy allocating paths (the SPMV equivalence suite
    relies on this at operator level; here it is pinned per kernel)."""
    rng = np.random.default_rng(seed)
    ke = rng.standard_normal((e, nd, nd))
    ue = rng.standard_normal((e, nd))
    ws = EmvWorkspace(e, nd)

    y = emv_einsum(ke, ue)
    assert emv_einsum(ke, ue, out=ws.ve) is ws.ve
    np.testing.assert_array_equal(ws.ve, y)

    y = emv_columns(ke, ue)
    out = np.empty((e, nd))
    np.testing.assert_array_equal(emv_columns(ke, ue, out=out), y)
    # with the per-column scratch (the true hot-path form)
    ws.ve.fill(np.nan)
    emv_columns(ke, ue, out=ws.ve, tmp=ws.tmp)
    np.testing.assert_array_equal(ws.ve, y)
    # with the precomputed column-major matrix layout
    kcol = np.ascontiguousarray(ke.transpose(2, 0, 1))
    ws.ve.fill(np.nan)
    emv_columns(ke, ue, out=ws.ve, tmp=ws.tmp, columns=kcol)
    np.testing.assert_array_equal(ws.ve, y)


def test_workspace_views_alias_storage():
    ws = EmvWorkspace(10, 6)
    ue, ve = ws.views(4)
    assert ue.shape == (4, 6) and ve.shape == (4, 6)
    assert ue.base is ws.ue and ve.base is ws.ve
    assert not ue.flags.owndata  # views, not copies
    # tmp is lazy: only the columns kernel should ever materialise it
    assert ws._tmp is None
    assert ws.tmp.shape == (10, 6)
    assert ws._tmp is not None


def test_gather_out_bitwise_matches_fancy_indexing(rng):
    flat = rng.standard_normal(50)
    idx = rng.integers(0, 50, size=(7, 6))
    out = np.empty((7, 6))
    assert gather_element_vectors(flat, idx, out=out) is out
    np.testing.assert_array_equal(out, flat[idx])


def test_as_scipy_operator_interop():
    import scipy.sparse.linalg as spla

    from repro.core import HymvOperator
    from repro.core.hymv import as_scipy_operator
    from repro.problems import poisson_problem
    from repro.simmpi import run_spmd

    spec = poisson_problem(5, 1)

    def prog(comm):
        A = HymvOperator(comm, spec.partition.local(0), spec.operator)
        L = as_scipy_operator(A)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(A.n_dofs_owned)
        np.testing.assert_allclose(L @ x, A.apply_owned(x), atol=1e-14)
        # scipy CG on a shifted (SPD) version of the operator
        shifted = spla.LinearOperator(
            L.shape, matvec=lambda v: L @ v + v
        )
        b = rng.standard_normal(A.n_dofs_owned)
        sol, info = spla.cg(shifted, b, rtol=1e-10, maxiter=2000)
        assert info == 0
        np.testing.assert_allclose(
            shifted @ sol, b, atol=1e-7 * np.abs(b).max()
        )
        return True

    res, _ = run_spmd(1, prog)
    assert res[0]
