"""EMV kernels and scatter/gather primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    EMV_KERNELS,
    accumulate_element_vectors,
    emv_columns,
    emv_einsum,
    gather_element_vectors,
)


@given(
    e=st.integers(min_value=1, max_value=20),
    nd=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=15)
def test_kernels_agree_any_shape(e, nd, seed):
    rng = np.random.default_rng(seed)
    ke = rng.standard_normal((e, nd, nd))
    ue = rng.standard_normal((e, nd))
    ref = np.stack([ke[i] @ ue[i] for i in range(e)])
    np.testing.assert_allclose(emv_einsum(ke, ue), ref, atol=1e-11)
    np.testing.assert_allclose(emv_columns(ke, ue), ref, atol=1e-11)


def test_kernel_registry():
    assert set(EMV_KERNELS) == {"einsum", "columns"}


def test_gather_accumulate_roundtrip(rng):
    flat = rng.standard_normal(40)
    idx = rng.integers(0, 40, size=(6, 5))
    ue = gather_element_vectors(flat, idx)
    np.testing.assert_array_equal(ue, flat[idx])
    out = np.zeros(40)
    accumulate_element_vectors(out, idx, ue)
    # accumulating the gathered values equals multiplicity-weighted flat
    counts = np.bincount(idx.reshape(-1), minlength=40)
    np.testing.assert_allclose(out, flat * counts, atol=1e-12)


def test_gather_with_subset(rng):
    flat = rng.standard_normal(30)
    idx = rng.integers(0, 30, size=(8, 4))
    sel = np.array([1, 3, 5])
    np.testing.assert_array_equal(
        gather_element_vectors(flat, idx, sel), flat[idx[sel]]
    )


def test_as_scipy_operator_interop():
    import scipy.sparse.linalg as spla

    from repro.core import HymvOperator
    from repro.core.hymv import as_scipy_operator
    from repro.problems import poisson_problem
    from repro.simmpi import run_spmd

    spec = poisson_problem(5, 1)

    def prog(comm):
        A = HymvOperator(comm, spec.partition.local(0), spec.operator)
        L = as_scipy_operator(A)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(A.n_dofs_owned)
        np.testing.assert_allclose(L @ x, A.apply_owned(x), atol=1e-14)
        # scipy CG on a shifted (SPD) version of the operator
        shifted = spla.LinearOperator(
            L.shape, matvec=lambda v: L @ v + v
        )
        b = rng.standard_normal(A.n_dofs_owned)
        sol, info = spla.cg(shifted, b, rtol=1e-10, maxiter=2000)
        assert info == 0
        np.testing.assert_allclose(
            shifted @ sol, b, atol=1e-7 * np.abs(b).max()
        )
        return True

    res, _ = run_spmd(1, prog)
    assert res[0]
