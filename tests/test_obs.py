"""The observability core: phase timers, counters, events, rank merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    Instrumentation,
    get_instrumentation,
    merge_snapshots,
    percentile,
    percentile_summary,
    reset_instrumentation,
)
from repro.simmpi import run_spmd


# ----------------------------------------------------------------------------
# phase timers
# ----------------------------------------------------------------------------

def test_phase_nesting_builds_dotted_paths():
    obs = Instrumentation()
    with obs.phase("spmv"):
        with obs.phase("emv"):
            with obs.phase("independent"):
                pass
        with obs.phase("scatter"):
            pass
    assert sorted(obs.phases) == [
        "spmv", "spmv.emv", "spmv.emv.independent", "spmv.scatter",
    ]
    assert obs.current_path == ""


def test_phase_stack_unwinds_on_exception():
    obs = Instrumentation()
    with pytest.raises(RuntimeError):
        with obs.phase("outer"):
            with obs.phase("inner"):
                raise RuntimeError("boom")
    # both phases were still recorded and the stack is clean
    assert set(obs.phases) == {"outer", "outer.inner"}
    assert obs.current_path == ""


def test_phase_records_virtual_time_from_clock():
    t = {"now": 0.0}
    obs = Instrumentation(clock=lambda: t["now"])
    with obs.phase("modeled"):
        t["now"] += 2.5
    assert obs.phases["modeled"].vtime == pytest.approx(2.5)
    assert obs.phases["modeled"].count == 1


def test_record_accumulates_samples():
    obs = Instrumentation()
    obs.record("spmv.total", vtime=1.0, wall=0.5)
    obs.record("spmv.total", vtime=2.0, wall=0.25)
    s = obs.phases["spmv.total"]
    assert s.vtime == pytest.approx(3.0)
    assert s.wall == pytest.approx(0.75)
    assert s.count == 2
    assert obs.mean("spmv.total") == pytest.approx(1.5)


def test_legacy_timing_record_api():
    obs = Instrumentation()
    obs.add("setup", 1.0)
    obs.add("setup", 0.5)
    assert obs.total("setup") == pytest.approx(1.5)
    assert obs.total("missing") == 0.0
    assert obs.as_dict() == {"setup": pytest.approx(1.5)}

    other = Instrumentation()
    other.add("setup", 1.0)
    other.incr("elements", 7)
    obs.merge(other)
    assert obs.total("setup") == pytest.approx(2.5)
    assert obs.counter("elements") == 7


# ----------------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------------

def test_counters_accumulate_and_reject_negative():
    obs = Instrumentation()
    obs.incr("bytes", 100)
    obs.incr("bytes", 28)
    obs.incr("msgs")
    assert obs.counter("bytes") == 128
    assert obs.counter("msgs") == 1
    assert obs.counter("absent") == 0
    with pytest.raises(ValueError):
        obs.incr("bytes", -1)


# ----------------------------------------------------------------------------
# trace events
# ----------------------------------------------------------------------------

def test_events_dropped_unless_tracing():
    off = Instrumentation(trace=False)
    off.event("spmv.emv", 0.0, 1.0)
    assert off.events == []

    on = Instrumentation(trace=True)
    on.event("spmv.emv", 0.0, 1.0, kind="compute", n=4)
    on.event("empty", 1.0, 1.0)  # zero-length intervals are dropped
    assert len(on.events) == 1
    ev = on.events[0]
    assert (ev.label, ev.kind, ev.duration) == ("spmv.emv", "compute", 1.0)
    assert ev.meta == {"n": 4}
    assert ev.as_dict()["meta"] == {"n": 4}


# ----------------------------------------------------------------------------
# snapshots and cross-rank merging
# ----------------------------------------------------------------------------

def test_snapshot_round_trips_through_json():
    import json

    obs = Instrumentation(rank=3, trace=True)
    obs.record("spmv.total", vtime=1.0, wall=0.1)
    obs.incr("spmv.flops", 1e6)
    obs.event("spmv.emv", 0.0, 0.5)
    snap = json.loads(json.dumps(obs.snapshot(events=True)))
    assert snap["rank"] == 3
    assert snap["phases"]["spmv.total"]["vtime"] == pytest.approx(1.0)
    assert snap["counters"]["spmv.flops"] == pytest.approx(1e6)
    assert snap["events"][0]["label"] == "spmv.emv"


def test_merge_snapshots_max_times_sum_counters():
    a = Instrumentation(rank=0)
    a.record("spmv.total", vtime=1.0, wall=0.5)
    a.incr("bytes", 10)
    b = Instrumentation(rank=1)
    b.record("spmv.total", vtime=3.0, wall=0.25)
    b.record("spmv.wait", vtime=0.5)
    b.incr("bytes", 32)

    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["ranks"] == 2
    assert merged["phases"]["spmv.total"]["vtime"] == pytest.approx(3.0)
    assert merged["phases"]["spmv.wait"]["vtime"] == pytest.approx(0.5)
    assert merged["counters"]["bytes"] == 42

    summed = merge_snapshots([a.snapshot(), b.snapshot()], time_reduce="sum")
    assert summed["phases"]["spmv.total"]["vtime"] == pytest.approx(4.0)

    with pytest.raises(ValueError):
        merge_snapshots([], time_reduce="mean")


def test_merge_across_simulated_ranks():
    """Per-rank comm instrumentation merges the way the driver does."""

    def prog(comm):
        payload = np.full(1000, float(comm.rank))
        nxt = (comm.rank + 1) % comm.size
        prv = (comm.rank - 1) % comm.size
        req = comm.irecv(prv, tag=1)
        comm.isend(payload, nxt, tag=1)
        comm.wait(req)
        comm.advance(1e-3 * (comm.rank + 1), label="spmv.emv.modeled")
        return comm.obs.snapshot()

    snaps, _ = run_spmd(4, prog)
    merged = merge_snapshots(snaps)
    assert merged["ranks"] == 4
    # times reduce by max: the slowest rank's modeled sweep wins
    assert merged["phases"]["spmv.emv.modeled"]["vtime"] == pytest.approx(4e-3)
    # counters sum: every rank sent and received one 8 kB message
    assert merged["counters"]["comm.msgs_sent"] == 4
    assert merged["counters"]["comm.msgs_recv"] == 4
    assert merged["counters"]["comm.bytes_sent"] == 4 * 8000
    assert merged["counters"]["comm.bytes_recv"] == 4 * 8000


def test_communicator_wait_time_is_instrumented():
    def prog(comm):
        if comm.rank == 1:
            comm.advance(5e-3, label="busy")  # delay the send
            comm.isend(np.ones(4), 0)
            return 0.0
        got = comm.recv(1)
        assert got.sum() == 4.0
        return comm.obs.total("comm.wait")

    res, _ = run_spmd(2, prog)
    assert res[0] > 1e-3  # rank 0 demonstrably blocked on rank 1


# ----------------------------------------------------------------------------
# process-wide registry
# ----------------------------------------------------------------------------

def test_process_registry_is_stable_until_reset():
    first = get_instrumentation()
    assert get_instrumentation() is first
    fresh = reset_instrumentation()
    assert fresh is not first
    assert get_instrumentation() is fresh


# ----------------------------------------------------------------------------
# percentile helpers (shared by the bench suites and the serve report)
# ----------------------------------------------------------------------------

def test_percentile_matches_numpy_linear_interpolation():
    rng = np.random.default_rng(3)
    for n in (1, 2, 3, 10, 101):
        xs = rng.standard_normal(n).tolist()
        for q in (0, 1, 25, 50, 75, 95, 99, 100):
            assert percentile(xs, q) == pytest.approx(
                float(np.percentile(xs, q)), rel=0, abs=1e-12
            )


def test_percentile_is_order_invariant_and_median():
    xs = [5.0, 1.0, 3.0]
    assert percentile(xs, 50) == 3.0
    assert percentile(sorted(xs), 50) == percentile(xs, 50)
    assert percentile([2.0], 99) == 2.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 100.5)


def test_percentile_summary_shape():
    xs = list(range(1, 101))
    summ = percentile_summary(xs)
    assert set(summ) == {"p50", "p95", "p99", "mean", "min", "max", "n"}
    assert summ["n"] == 100
    assert summ["min"] == 1 and summ["max"] == 100
    assert summ["mean"] == pytest.approx(50.5)
    assert summ["p50"] == pytest.approx(float(np.percentile(xs, 50)))
    assert summ["p95"] == pytest.approx(float(np.percentile(xs, 95)))
    with pytest.raises(ValueError):
        percentile_summary([])


def test_percentile_summary_custom_quantiles():
    summ = percentile_summary([1.0, 2.0, 3.0], qs=(10, 99.9))
    assert "p10" in summ and "p99_9" in summ
