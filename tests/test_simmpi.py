"""Simulated MPI runtime: semantics, determinism, virtual time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import NetworkModel, Simulator, run_spmd


def test_point_to_point_roundtrip():
    def prog(comm):
        nxt, prv = (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
        comm.isend(np.arange(5) + comm.rank, nxt, tag=3)
        got = comm.recv(prv, tag=3)
        np.testing.assert_array_equal(got, np.arange(5) + prv)
        return True

    res, _ = run_spmd(6, prog)
    assert all(res)


def test_message_payload_is_copied():
    def prog(comm):
        if comm.rank == 0:
            buf = np.ones(4)
            comm.isend(buf, 1)
            buf[:] = -1.0  # mutate after send: receiver must see ones
            comm.barrier()
            return None
        got = comm.recv(0)
        comm.barrier()
        return got

    res, _ = run_spmd(2, prog)
    np.testing.assert_array_equal(res[1], np.ones(4))


def test_fifo_ordering_same_source_tag():
    def prog(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.isend(np.array([i]), 1, tag=9)
            return None
        return [int(comm.recv(0, tag=9)[0]) for _ in range(5)]

    res, _ = run_spmd(2, prog)
    assert res[1] == [0, 1, 2, 3, 4]


def test_collectives_values_and_determinism():
    def prog(comm):
        s = comm.allreduce(comm.rank + 1.5)
        mx = comm.allreduce(float(comm.rank), op="max")
        mn = comm.allreduce(float(comm.rank), op="min")
        g = comm.allgather(comm.rank * 2)
        b = comm.bcast("hello" if comm.rank == 2 else None, root=2)
        return s, mx, mn, g, b

    for _ in range(3):  # determinism across repeated runs
        res, _ = run_spmd(5, prog)
        for s, mx, mn, g, b in res:
            assert s == sum(r + 1.5 for r in range(5))
            assert mx == 4.0 and mn == 0.0
            assert g == [0, 2, 4, 6, 8]
            assert b == "hello"


def test_allreduce_array():
    def prog(comm):
        return comm.allreduce(np.full(3, float(comm.rank)))

    res, _ = run_spmd(4, prog)
    np.testing.assert_allclose(res[0], np.full(3, 6.0))


def test_alltoall_personalized():
    def prog(comm):
        out = comm.alltoall(
            [np.array([comm.rank * 100 + d]) for d in range(comm.size)]
        )
        return [int(v[0]) for v in out]

    res, _ = run_spmd(4, prog)
    for r, row in enumerate(res):
        assert row == [s * 100 + r for s in range(4)]


def test_exception_propagates_and_aborts_peers():
    def prog(comm):
        if comm.rank == 1:
            raise KeyError("rank1 failure")
        comm.recv(1)  # would deadlock without the abort path

    with pytest.raises(KeyError):
        run_spmd(3, prog)


def test_unreceived_messages_flagged():
    def prog(comm):
        if comm.rank == 0:
            comm.isend(np.zeros(1), 1)
        comm.barrier()

    with pytest.raises(RuntimeError, match="unreceived"):
        run_spmd(2, prog)


def test_virtual_time_monotone_and_message_causality():
    def prog(comm):
        marks = [comm.vtime]
        if comm.rank == 0:
            comm.advance(0.5, "work")
            comm.isend(np.zeros(1), 1)
            marks.append(comm.vtime)
        else:
            got = comm.recv(0)
            marks.append(comm.vtime)
        comm.barrier()
        marks.append(comm.vtime)
        return marks

    res, sim = run_spmd(2, prog)
    for marks in res:
        assert all(b >= a for a, b in zip(marks, marks[1:]))
    # receiver cannot complete before the send was posted (t=0.5)
    assert res[1][1] >= 0.5
    # barrier synchronizes clocks
    assert abs(res[0][-1] - res[1][-1]) < 1e-12


def test_overlap_reduces_total_time():
    def prog(comm, do_overlap):
        if comm.rank == 0:
            comm.isend(np.zeros(1_000_000), 1)
            comm.barrier()
        else:
            req = comm.irecv(0)
            if do_overlap:
                comm.advance(0.01, "compute")
                comm.wait(req)
            else:
                comm.wait(req)
                comm.advance(0.01, "compute")
            comm.barrier()

    _, s1 = run_spmd(2, prog, do_overlap=True)
    _, s2 = run_spmd(2, prog, do_overlap=False)
    assert s1.max_vtime < s2.max_vtime


def test_compute_context_measures_and_labels():
    def prog(comm):
        with comm.compute("kernel"):
            np.ones(200_000) @ np.ones(200_000)
        return comm.timing.total("kernel")

    res, _ = run_spmd(2, prog)
    assert all(t > 0 for t in res)


def test_compute_scale_applied():
    def prog(comm):
        with comm.compute("k"):
            np.ones(100_000) @ np.ones(100_000)
        return comm.vtime

    _, s1 = run_spmd(1, prog, compute_scale=1.0)
    _, s2 = run_spmd(1, prog, compute_scale=0.0)
    assert s2.max_vtime == 0.0
    assert s1.max_vtime > 0.0


def test_network_model_topology():
    net = NetworkModel(cores_per_node=4)
    assert net.same_node(0, 3) and not net.same_node(3, 4)
    intra = net.msg_time(0, 1, 8000)
    inter = net.msg_time(0, 5, 8000)
    assert inter > intra
    assert net.allreduce_time(1, 8) == 0.0
    assert net.allreduce_time(16, 8) == 4 * net.allreduce_time(2, 8)


def test_invalid_ranks_rejected():
    def prog(comm):
        with pytest.raises(ValueError):
            comm.isend(np.zeros(1), comm.size)
        with pytest.raises(ValueError):
            comm.irecv(-1)
        comm.barrier()

    run_spmd(2, prog)


def test_simulator_rank_bounds():
    with pytest.raises(ValueError):
        Simulator(0)
    with pytest.raises(ValueError):
        Simulator(100000)


def test_advance_rejects_negative():
    def prog(comm):
        with pytest.raises(ValueError):
            comm.advance(-1.0)

    run_spmd(1, prog)


def test_wait_is_idempotent():
    """A second wait on a completed request returns the cached payload
    without advancing the clock or double-counting traffic."""

    def prog(comm):
        if comm.rank == 0:
            sreq = comm.isend(np.arange(3, dtype=np.float64), 1, tag=4)
            comm.wait(sreq)
            comm.wait(sreq)  # double-wait on a send: no-op
            comm.barrier()
            return None
        req = comm.irecv(0, tag=4)
        first = comm.wait(req)
        t = comm.vtime
        msgs = comm.obs.counter("comm.msgs_recv")
        again = comm.wait(req)
        assert again is first  # cached payload, not a re-receive
        assert comm.vtime == t
        assert comm.obs.counter("comm.msgs_recv") == msgs
        comm.barrier()
        return first

    res, _ = run_spmd(2, prog)
    np.testing.assert_array_equal(res[1], np.arange(3.0))


def test_waitall_order_preserved_under_reorder_fault():
    """Sequence-numbered matching restores MPI's non-overtaking guarantee:
    even when a fault plan permutes physical delivery, waitall returns
    payloads in posted-request order."""
    from repro.faults import FaultPlan, Reorder

    def prog(comm):
        if comm.rank == 0:
            for i in range(3):
                comm.isend(np.array([float(i)]), 1, tag=7)
            comm.barrier()
            return comm.obs.counter("faults.reordered")
        reqs = [comm.irecv(0, tag=7) for _ in range(3)]
        vals = [float(v[0]) for v in comm.waitall(reqs)]
        comm.barrier()
        return vals

    plan = FaultPlan(rules=(Reorder(period=2, src=0, dst=1, tag=7),))
    res, _ = run_spmd(2, prog, faults=plan)
    assert res[0] == 1  # the second message physically overtook the first
    assert res[1] == [0.0, 1.0, 2.0]
