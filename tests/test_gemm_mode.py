"""GEMM execution mode: BLAS3 batched EMV vs the per-column oracle.

The oracle path is the verification reference — bitwise identical per
column to k single-RHS runs (tests/test_multirhs.py).  The GEMM path
reorders the elemental accumulation into one batched ``(nd, nd) @
(nd, k)`` matmul per element, so it matches the oracle to *rounding*,
not bitwise.  These tests pin down both sides of that contract:

* the drift is bounded by the **derived** rtol
  (:func:`repro.core.kernels.gemm_equivalence_rtol`) relative to the
  magnitude scale ``|K| |u|`` — a rigorous bound on every intermediate
  of either accumulation order, not a hand-tuned tolerance;
* ``mode="oracle"`` stays bitwise at any batch width;
* ``resolve_mode`` / ``SegmentScatter.add_into_multi`` / the serve
  layer's mode plumbing behave as specified.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    DEFAULT_K_MIN,
    EMV_MODES,
    EmvWorkspace,
    emv_columns,
    emv_einsum,
    gemm_equivalence_rtol,
    resolve_mode,
)
from repro.core.segment import SegmentScatter

# ----------------------------------------------------------------------------
# resolve_mode
# ----------------------------------------------------------------------------


def test_resolve_mode_auto_threshold():
    assert resolve_mode("auto", DEFAULT_K_MIN - 1) == "oracle"
    assert resolve_mode("auto", DEFAULT_K_MIN) == "gemm"
    assert resolve_mode("auto", 64) == "gemm"


def test_resolve_mode_explicit_passthrough():
    # explicit modes ignore k entirely
    assert resolve_mode("oracle", 1000) == "oracle"
    assert resolve_mode("gemm", 1) == "gemm"


def test_resolve_mode_k_min_override():
    assert resolve_mode("auto", 2, k_min=2) == "gemm"
    assert resolve_mode("auto", 2, k_min=3) == "oracle"
    # None -> DEFAULT_K_MIN
    assert resolve_mode("auto", DEFAULT_K_MIN, k_min=None) == "gemm"


@pytest.mark.parametrize("bad", ["blas3", "", "Oracle", None])
def test_resolve_mode_rejects_unknown(bad):
    with pytest.raises(ValueError):
        resolve_mode(bad, 4)


def test_emv_modes_tuple():
    assert EMV_MODES == ("oracle", "gemm", "auto")


# ----------------------------------------------------------------------------
# kernel-level equivalence (hypothesis property, both dtypes)
# ----------------------------------------------------------------------------

_KS = (1, 2, 3, 8, 32)


def _kernel_case(seed: int, nd: int, k: int, dtype):
    rng = np.random.default_rng(seed)
    E = 17
    ke = rng.standard_normal((E, nd, nd)).astype(dtype)
    ue = rng.standard_normal((E, nd, k)).astype(dtype)
    return ke, ue


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    nd=st.sampled_from([4, 8, 24]),
    k=st.sampled_from(_KS),
    dtype=st.sampled_from([np.float64, np.float32]),
)
def test_emv_gemm_within_derived_bound(seed, nd, k, dtype):
    ke, ue = _kernel_case(seed, nd, k, dtype)
    y_oracle = emv_einsum(ke, ue, mode="oracle")
    y_gemm = emv_einsum(ke, ue, mode="gemm")
    # magnitude scale: the oracle product of |K| and |u| bounds every
    # partial sum of either accumulation order entrywise
    y_abs = emv_einsum(np.abs(ke), np.abs(ue), mode="oracle")
    rtol = gemm_equivalence_rtol(nd, k=k, dtype=dtype)
    bound = rtol * np.maximum(y_abs, np.finfo(dtype).tiny)
    assert np.all(np.abs(y_gemm - y_oracle) <= bound)


@pytest.mark.parametrize("k", _KS)
def test_emv_columns_gemm_matches_einsum_gemm(k):
    ke, ue = _kernel_case(99, 8, k, np.float64)
    # in the 3-D gemm regime both kernel formulations degenerate to the
    # same batched matmul — bitwise identical
    assert np.array_equal(
        emv_columns(ke, ue, mode="gemm"), emv_einsum(ke, ue, mode="gemm")
    )


def test_emv_oracle_is_bitwise_per_column():
    ke, ue = _kernel_case(7, 8, 5, np.float64)
    y = emv_einsum(ke, ue, mode="oracle")
    for j in range(5):
        assert np.array_equal(y[:, :, j], emv_einsum(ke, ue[:, :, j]))


def test_emv_workspace_multi_views_cached():
    ws = EmvWorkspace(n_elements=10, nd=8)
    ue, ve = ws.multi_views(6, 4)
    assert ue.shape == (6, 8, 4) and ve.shape == (6, 8, 4)
    ue2, ve2 = ws.multi_views(4, 4)
    # same per-k backing buffers, sliced shorter
    assert ue2.base is ue.base and ve2.base is ve.base


# ----------------------------------------------------------------------------
# SegmentScatter.add_into_multi
# ----------------------------------------------------------------------------


@pytest.mark.parametrize("force_fallback", [False, True])
@pytest.mark.parametrize("k", [1, 3, 8])
def test_add_into_multi_bitwise_per_column(force_fallback, k):
    rng = np.random.default_rng(5)
    idx = rng.integers(0, 40, size=(30, 6))
    vals = rng.standard_normal((30, 6, k))
    seg = SegmentScatter(idx, force_fallback=force_fallback)
    out_multi = rng.standard_normal((40, k))
    out_cols = out_multi.copy()
    seg.add_into_multi(out_multi, vals)
    seg1 = SegmentScatter(idx, force_fallback=force_fallback)
    for j in range(k):
        col = np.ascontiguousarray(out_cols[:, j])
        seg1.add_into(col, np.ascontiguousarray(vals[:, :, j]))
        out_cols[:, j] = col
    assert np.array_equal(out_multi, out_cols)


def test_add_into_multi_csr_and_fallback_identical():
    rng = np.random.default_rng(6)
    idx = rng.integers(0, 25, size=(20, 4))
    vals = rng.standard_normal((20, 4, 5))
    out_a = np.zeros((25, 5))
    out_b = np.zeros((25, 5))
    SegmentScatter(idx).add_into_multi(out_a, vals)
    SegmentScatter(idx, force_fallback=True).add_into_multi(out_b, vals)
    assert np.array_equal(out_a, out_b)


def test_add_into_multi_shape_validation():
    seg = SegmentScatter(np.arange(12).reshape(4, 3))
    vals = np.zeros((4, 3, 2))
    with pytest.raises(ValueError):
        seg.add_into_multi(np.zeros(12), vals)  # 1-D destination
    with pytest.raises(ValueError):
        seg.add_into_multi(np.zeros((12, 3)), vals)  # k mismatch
    with pytest.raises(IndexError):
        seg.add_into_multi(np.zeros((11, 2)), vals)  # destination too small


def test_add_into_multi_empty_structure():
    seg = SegmentScatter(np.empty((0, 3), dtype=np.int64))
    out = np.ones((5, 2))
    seg.add_into_multi(out, np.empty((0, 3, 2)))
    assert np.array_equal(out, np.ones((5, 2)))


# ----------------------------------------------------------------------------
# operator-level equivalence, all five kinds
# ----------------------------------------------------------------------------

N_PARTS = 4
K_OP = 8  # >= DEFAULT_K_MIN: "auto" resolves to gemm


def _operator_modes(kind: str, k: int):
    """Owned products of the oracle/gemm/auto modes plus the |K||u|
    magnitude scale, each rank's block stacked in rank order."""
    from repro.baselines import AssembledOperator, MatrixFreeOperator
    from repro.baselines.partial import PartialAssemblyOperator
    from repro.core import HymvOperator
    from repro.fem import ElasticityOperator
    from repro.gpu import HymvGpuOperator
    from repro.mesh import ElementType, jittered_hex_mesh
    from repro.partition import build_partition
    from repro.simmpi import run_spmd

    factories = {
        "hymv": HymvOperator,
        "matfree": MatrixFreeOperator,
        "partial": PartialAssemblyOperator,
        "assembled": AssembledOperator,
        "hymv_gpu": HymvGpuOperator,
    }
    mesh = jittered_hex_mesh(3, 3, 3, ElementType.HEX8, jitter=0.25, seed=11)
    op = ElasticityOperator()
    part = build_partition(mesh, N_PARTS, method="graph")
    n = mesh.n_nodes * op.ndpn
    X = np.random.default_rng(31).standard_normal((n, k))

    def prog(comm, lmesh, Xr):
        A = factories[kind](comm, lmesh, op)
        return {
            m: A.apply_owned_multi(Xr, mode=m)
            for m in ("oracle", "gemm", "auto")
        }

    rank_args = []
    for r in range(N_PARTS):
        lm = part.local(r)
        rank_args.append((lm, X[lm.n_begin * op.ndpn: lm.n_end * op.ndpn]))
    results, _ = run_spmd(N_PARTS, prog, rank_args=rank_args)
    out = {m: np.vstack([res[m] for res in results])
           for m in ("oracle", "gemm", "auto")}
    return out, op.element_dofs(mesh.etype)


@pytest.mark.parametrize(
    "kind", ["hymv", "matfree", "partial", "assembled", "hymv_gpu"]
)
def test_operator_gemm_within_derived_bound(kind):
    out, ndpe = _operator_modes(kind, K_OP)
    # norm-scale form of the derived bound: columnwise drift relative to
    # the oracle column magnitude (the entrywise |K||u| scale is >= this)
    rtol = gemm_equivalence_rtol(ndpe, k=K_OP)
    scale = np.max(np.abs(out["oracle"]), axis=0)
    err = np.max(np.abs(out["gemm"] - out["oracle"]), axis=0)
    assert np.all(err <= rtol * scale)
    # auto at k >= DEFAULT_K_MIN IS the gemm path, bit for bit
    assert np.array_equal(out["auto"], out["gemm"])


# ----------------------------------------------------------------------------
# cg_multi under gemm
# ----------------------------------------------------------------------------


def test_cg_multi_gemm_converges_to_oracle_solution():
    from repro.core import HymvOperator
    from repro.problems import poisson_problem
    from repro.simmpi import run_spmd
    from repro.solvers.cg import cg_multi

    k, rtol = 8, 1e-9
    spec = poisson_problem(5, n_parts=2)
    F = np.random.default_rng(13).standard_normal((spec.n_dofs, k))

    def prog(comm, lmesh, Fr):
        A = HymvOperator(comm, lmesh, spec.operator)

        # the pure-Neumann Poisson matrix is singular (constant
        # nullspace); shift to the SPD K + I so lock-step CG converges
        def apply_shifted(X, mode="auto"):
            return A.apply_owned_multi(X, mode=mode) + X

        sols = {}
        for m in ("oracle", "gemm"):
            res = cg_multi(comm, apply_shifted, Fr, rtol=rtol, mode=m)
            assert all(r.converged for r in res)
            sols[m] = np.column_stack([r.x for r in res])
        return sols

    rank_args = []
    for r in range(2):
        lm = spec.partition.local(r)
        rank_args.append((lm, F[lm.n_begin: lm.n_end]))
    results, _ = run_spmd(2, prog, rank_args=rank_args)
    X_o = np.vstack([res["oracle"] for res in results])
    X_g = np.vstack([res["gemm"] for res in results])
    # both converged to rtol of the same system: iterates agree to the
    # solver tolerance (the elemental reordering only shifts last ulps
    # per matvec, amplified at most by the usual CG error constant)
    scale = np.max(np.abs(X_o), axis=0)
    assert np.all(np.max(np.abs(X_g - X_o), axis=0) <= 100 * rtol * scale)


# ----------------------------------------------------------------------------
# serve layer: mode plumbing, histogram, schema
# ----------------------------------------------------------------------------


def test_solver_service_rejects_unknown_mode():
    from repro.obs.instrumentation import Instrumentation
    from repro.serve.service import SolverService

    class _Cache:
        obs = Instrumentation(rank=-1)

    with pytest.raises(ValueError):
        SolverService(_Cache(), mode="blas3")


def test_run_workload_records_modes():
    from repro.serve.loadgen import run_workload, suite_workloads

    _clean, gemm, _faulted = suite_workloads(seed=5, smoke=True)
    sc = run_workload(gemm, seed=5)
    assert sc["requests"]["wrong_answers"] == 0
    assert "gemm" in sc["modes"] and sc["modes"]["gemm"] > 0
    assert sum(sc["modes"].values()) == sum(sc["batch_histogram"].values())


def test_forced_oracle_workload_never_runs_gemm():
    import dataclasses

    from repro.serve.loadgen import run_workload, suite_workloads

    _clean, gemm, _faulted = suite_workloads(seed=5, smoke=True)
    forced = dataclasses.replace(gemm, name="open-forced-oracle",
                                 mode="oracle")
    sc = run_workload(forced, seed=5)
    assert set(sc["modes"]) <= {"oracle", "degraded"}


def test_serve_schema_v2_requires_modes():
    from repro.obs.schema import (
        SERVE_SCHEMA_V1,
        SchemaError,
        new_serve_doc,
        validate_serve_doc,
    )

    sc = {
        "scenario": "s", "workload": {}, "requests": {
            "submitted": 0, "completed": 0, "rejected": 0,
            "shed_deadline": 0, "cancelled": 0, "failed": 0,
            "wrong_answers": 0,
        },
        "latency_s": {}, "throughput_rps": 0.0, "makespan_s": 0.0,
        "batch_histogram": {}, "cache": {
            "hits": 0, "misses": 0, "evictions": 0, "hit_rate": 0.0,
        },
        "counters": {},
    }
    doc = new_serve_doc()
    doc["scenarios"] = [dict(sc)]
    with pytest.raises(SchemaError):
        validate_serve_doc(doc)  # v2 without "modes"
    doc["scenarios"][0]["modes"] = {"oracle": 0}
    validate_serve_doc(doc)
    # a legacy v1 doc — no "modes" — is still accepted on read
    legacy = new_serve_doc()
    legacy["schema"] = SERVE_SCHEMA_V1
    legacy["scenarios"] = [dict(sc)]
    validate_serve_doc(legacy)


def test_load_calibrated_k_min_roundtrip(tmp_path):
    import json

    from repro.serve.loadgen import load_calibrated_k_min

    p = tmp_path / "BENCH_kernels.json"
    p.write_text(json.dumps({"config": {"gemm_k_min_crossover": 2}}))
    assert load_calibrated_k_min(p) == 2
    assert load_calibrated_k_min(tmp_path / "missing.json") is None
    p.write_text(json.dumps({"config": {}}))
    assert load_calibrated_k_min(p) is None
