"""Utility layer: arrays, tables, timers, VTK output, traces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh
from repro.util.arrays import (
    as_f64,
    as_index,
    inverse_permutation,
    rows_unique,
    scatter_add,
)
from repro.util.tables import ResultTable, render_many
from repro.util.timer import Timer, TimingRecord
from repro.util.vtk import write_vtk


def test_scatter_add_matches_np_add_at(rng):
    out1 = np.zeros(20)
    out2 = np.zeros(20)
    idx = rng.integers(0, 20, size=(7, 5))
    vals = rng.standard_normal((7, 5))
    scatter_add(out1, idx, vals)
    np.add.at(out2, idx.reshape(-1), vals.reshape(-1))
    np.testing.assert_allclose(out1, out2, atol=1e-14)


def test_scatter_add_size_mismatch():
    with pytest.raises(ValueError):
        scatter_add(np.zeros(5), np.array([0, 1]), np.array([1.0]))


def test_scatter_add_rejects_negative_indices():
    # both branches must reject a corrupt map (bincount does natively)
    with pytest.raises(ValueError):
        scatter_add(np.zeros(200), np.array([3, -1]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        scatter_add(np.zeros(4), np.array([0, -1]), np.array([1.0, 2.0]))


@given(
    n_dofs=st.integers(min_value=16, max_value=400),
    n_vals=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50)
def test_scatter_add_small_batch_bitwise_matches_bincount_grouping(
    n_dofs, n_vals, seed
):
    """The small-batch branch must produce the exact bits of the legacy
    ``out += np.bincount(...)`` path on a *nonzero* destination — the
    dependent sweep accumulates onto the independent sweep's partial
    result, so a sequential add.at fold (different rounding) would
    silently change legacy results on large meshes."""
    rng = np.random.default_rng(seed)
    # duplicate-heavy indices confined to a small range: every touched
    # dof is hit repeatedly while n_vals stays below n_dofs // 8
    idx = rng.integers(0, max(1, n_dofs // 16), size=n_vals)
    vals = rng.standard_normal(n_vals)
    base = rng.standard_normal(n_dofs)

    out = base.copy()
    scatter_add(out, idx, vals)
    expect = base + np.bincount(idx, weights=vals, minlength=n_dofs)

    touched = np.unique(idx)
    np.testing.assert_array_equal(out[touched], expect[touched])
    # untouched entries are left alone (bincount's +0.0 on them differs
    # only on -0.0, which standard_normal never produces)
    mask = np.ones(n_dofs, dtype=bool)
    mask[touched] = False
    np.testing.assert_array_equal(out[mask], base[mask])

    if n_vals < n_dofs // 8:  # the regime this test is about
        assert touched.size <= n_vals


@given(st.permutations(list(range(9))))
def test_inverse_permutation_property(perm):
    p = np.array(perm)
    inv = inverse_permutation(p)
    np.testing.assert_array_equal(p[inv], np.arange(9))
    np.testing.assert_array_equal(inv[p], np.arange(9))


def test_rows_unique():
    assert rows_unique(np.array([[1, 2], [2, 1], [3, 4]]))
    assert not rows_unique(np.array([[1, 2], [1, 2]]))
    with pytest.raises(ValueError):
        rows_unique(np.array([1, 2, 3]))


def test_as_helpers_dtypes():
    assert as_f64([1, 2]).dtype == np.float64
    assert as_index([1.0, 2.0]).dtype == np.int64
    a = np.zeros(3)
    assert as_f64(a) is a or as_f64(a).base is a  # no needless copy


def test_result_table_render_and_columns():
    t = ResultTable("demo", ["a", "b"])
    t.add_row(1, 0.5)
    t.add_row(20000, 1e-8)
    t.add_note("a note")
    txt = t.render()
    assert "demo" in txt and "a note" in txt
    assert t.column("a") == [1, 20000]
    with pytest.raises(ValueError):
        t.add_row(1)
    assert "demo" in render_many([t, t])


def test_timing_record_merge_and_mean():
    a = TimingRecord()
    a.add("x", 1.0)
    a.add("x", 3.0)
    b = TimingRecord()
    b.add("x", 2.0)
    b.add("y", 5.0)
    a.merge(b)
    assert a.total("x") == 6.0
    assert a.mean("x") == 2.0
    assert a.total("y") == 5.0
    assert a.total("missing") == 0.0


def test_timer_context():
    with Timer() as t:
        sum(range(1000))
    assert t.elapsed >= 0.0


@pytest.mark.parametrize(
    "mesh_fn",
    [
        lambda: box_hex_mesh(2, 2, 2),
        lambda: box_hex_mesh(1, 1, 1, ElementType.HEX20),
        lambda: box_hex_mesh(1, 1, 1, ElementType.HEX27),
        lambda: box_tet_mesh(1, 1, 1),
        lambda: box_tet_mesh(1, 1, 1, ElementType.TET10, jitter=0.0),
    ],
)
def test_vtk_writer_roundtrip_structure(tmp_path, mesh_fn):
    mesh = mesh_fn()
    u = np.linspace(0, 1, mesh.n_nodes)
    vec = np.tile([1.0, 2.0, 3.0], (mesh.n_nodes, 1))
    cell = np.arange(mesh.n_elements, dtype=float)
    path = write_vtk(
        tmp_path / "out.vtk", mesh,
        point_data={"u": u, "disp": vec}, cell_data={"part": cell},
    )
    text = path.read_text()
    assert f"POINTS {mesh.n_nodes} double" in text
    assert f"CELLS {mesh.n_elements}" in text
    assert "SCALARS u double 1" in text
    assert "VECTORS disp double" in text
    assert "CELL_DATA" in text
    # every node index appears within range
    lines = text.splitlines()
    start = lines.index(f"CELLS {mesh.n_elements} "
                        f"{mesh.n_elements * (mesh.etype.n_nodes + 1)}") + 1
    for line in lines[start: start + mesh.n_elements]:
        vals = [int(v) for v in line.split()]
        assert vals[0] == mesh.etype.n_nodes
        assert all(0 <= v < mesh.n_nodes for v in vals[1:])


def test_vtk_writer_validates_fields(tmp_path):
    mesh = box_hex_mesh(1, 1, 1)
    with pytest.raises(ValueError):
        write_vtk(tmp_path / "x.vtk", mesh, point_data={"u": np.zeros(3)})
    with pytest.raises(ValueError):
        write_vtk(
            tmp_path / "x.vtk", mesh,
            point_data={"u": np.zeros((mesh.n_nodes, 2))},
        )


def test_trace_and_gantt():
    from repro.simmpi import run_spmd
    from repro.simmpi.trace import render_gantt

    def prog(comm):
        comm.advance(0.5, "spmv.emv.independent")
        if comm.rank == 0:
            comm.isend(np.zeros(10), 1)
        else:
            comm.recv(0)
        comm.advance(0.2, "setup.emat_compute")
        return len(comm.trace)

    res, sim = run_spmd(2, prog, trace=True)
    assert all(n >= 2 for n in res)
    txt = render_gantt(sim.comms, width=40)
    assert "rank   0" in txt and "rank   1" in txt
    assert "E" in txt and "S" in txt
    # without tracing: empty
    res2, sim2 = run_spmd(2, prog, trace=False)
    assert render_gantt(sim2.comms).startswith("(no traced intervals")
