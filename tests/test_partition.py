"""Partitioners and the renumbered partition interface."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh
from repro.partition import build_partition, partition_metrics
from repro.partition.interface import partition_from_elem_part

METHODS = ["slab", "rcb", "graph"]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("p", [1, 2, 3, 5])
def test_partition_invariants(method, p):
    mesh = box_hex_mesh(4, 4, 6)
    part = build_partition(mesh, p, method=method)
    # every element assigned exactly once, within range
    assert part.elem_part.shape == (mesh.n_elements,)
    assert part.elem_part.min() >= 0 and part.elem_part.max() < p
    # renumbering is a permutation
    assert np.array_equal(np.sort(part.old_of_new), np.arange(mesh.n_nodes))
    assert np.array_equal(part.new_of_old[part.old_of_new], np.arange(mesh.n_nodes))
    # ranges contiguous, disjoint, covering
    assert part.ranges[0, 0] == 0
    assert part.ranges[-1, 1] == mesh.n_nodes
    assert (part.ranges[1:, 0] == part.ranges[:-1, 1]).all()
    # node ownership consistent with ranges
    for r in range(p):
        b, e = part.ranges[r]
        assert (part.node_owner[part.old_of_new[b:e]] == r).all()


@pytest.mark.parametrize("method", METHODS)
def test_local_meshes_cover_mesh(method):
    mesh = box_tet_mesh(3, 3, 3, ElementType.TET10, jitter=0.2)
    p = 4
    part = build_partition(mesh, p, method=method)
    all_elems = np.concatenate([part.local(r).elements for r in range(p)])
    assert np.array_equal(np.sort(all_elems), np.arange(mesh.n_elements))
    all_nodes = np.unique(
        np.concatenate([part.local(r).e2g.reshape(-1) for r in range(p)])
    )
    assert np.array_equal(all_nodes, np.arange(mesh.n_nodes))
    for r in range(p):
        lm = part.local(r)
        # coords consistent with global mesh under renumbering
        np.testing.assert_array_equal(
            lm.coords, mesh.coords[mesh.conn[lm.elements]]
        )
        # every owned node appears in some local element
        owned = np.arange(lm.n_begin, lm.n_end)
        assert np.isin(owned, lm.e2g).all()


def test_min_rank_ownership():
    mesh = box_hex_mesh(4, 4, 4)
    part = build_partition(mesh, 4, method="slab")
    # a node's owner is the minimum part over its adjacent elements
    for node in range(0, mesh.n_nodes, 7):
        elems = np.flatnonzero((mesh.conn == node).any(axis=1))
        assert part.node_owner[node] == part.elem_part[elems].min()


def test_slab_balance_exact_when_divisible():
    mesh = box_hex_mesh(4, 4, 8)
    part = build_partition(mesh, 4, method="slab")
    sizes = np.bincount(part.elem_part)
    assert (sizes == mesh.n_elements // 4).all()


@given(st.integers(min_value=1, max_value=8))
def test_rcb_any_part_count(p):
    mesh = box_hex_mesh(4, 4, 4)
    part = build_partition(mesh, p, method="rcb")
    sizes = np.bincount(part.elem_part, minlength=p)
    assert sizes.min() >= 1
    assert sizes.max() - sizes.min() <= max(2, mesh.n_elements // p // 2)


def test_graph_partition_balance_and_cut():
    mesh = box_tet_mesh(4, 4, 4, jitter=0.2)
    part = build_partition(mesh, 6, method="graph")
    met = partition_metrics(part)
    assert met.element_imbalance < 1.15
    assert 0 < met.edge_cut_fraction < 0.5


def test_graph_partition_more_parts_than_elements_raises():
    mesh = box_hex_mesh(1, 1, 2)
    with pytest.raises(ValueError):
        build_partition(mesh, 5, method="graph")


def test_unknown_method_raises():
    with pytest.raises(ValueError):
        build_partition(box_hex_mesh(2, 2, 2), 2, method="metis")


def test_partition_from_bad_elem_part():
    mesh = box_hex_mesh(2, 2, 2)
    with pytest.raises(ValueError):
        partition_from_elem_part(mesh, 2, np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError):
        partition_from_elem_part(
            mesh, 2, np.full(mesh.n_elements, 7, dtype=np.int64)
        )


def test_owner_of_new_handles_empty_ranks():
    mesh = box_hex_mesh(2, 2, 2)
    # all elements to rank 1 of 3 => ranks 0 and 2 own nothing
    part = partition_from_elem_part(
        mesh, 3, np.ones(mesh.n_elements, dtype=np.int64)
    )
    ids = np.arange(mesh.n_nodes)
    assert (part.owner_of_new(ids) == 1).all()
    assert part.ranges[0, 0] == part.ranges[0, 1]  # empty
    assert part.ranges[2, 0] == part.ranges[2, 1]


def test_owned_coords_match():
    mesh = box_tet_mesh(3, 3, 3, jitter=0.1)
    part = build_partition(mesh, 3, method="rcb")
    for r in range(3):
        b, e = part.ranges[r]
        np.testing.assert_array_equal(
            part.owned_coords(r), mesh.coords[part.old_of_new[b:e]]
        )


def test_metrics_ghost_counts():
    mesh = box_hex_mesh(4, 4, 4)
    part = build_partition(mesh, 4, method="slab")
    met = partition_metrics(part)
    # rank 0 owns everything it touches under min-rank ownership
    assert met.ghost_nodes[0] == 0
    assert (met.ghost_nodes[1:] > 0).all()
