"""SELL-C-sigma backend: bitwise identity to the assembled-CSR operator
across problems, ranks, batch widths and reassembly, plus the serve-tier
backend routing built on it."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines import AssembledOperator, SellCSOperator
from repro.obs.instrumentation import Instrumentation
from repro.problems import graph_laplacian_problem, poisson_problem
from repro.serve.cache import OperatorCache, ProblemKey
from repro.serve.queue import ServeRequest
from repro.serve.service import SolverService
from repro.simmpi import run_spmd


CASES = [
    ("poisson", lambda p: poisson_problem(5, n_parts=p), 3),
    ("graphlap", lambda p: graph_laplacian_problem(6, n_parts=p, seed=2), 4),
]


@pytest.mark.parametrize("name,make,p", CASES)
def test_sellcs_bitwise_identical_to_assembled(name, make, p):
    """Single- and oracle multi-RHS products equal bit for bit on every
    rank, FEM and graph-Laplacian sparsity alike."""
    spec = make(p)
    rng = np.random.default_rng(11)
    x = rng.standard_normal(spec.n_dofs)

    def prog(comm, lmesh, xo):
        A = AssembledOperator(comm, lmesh, spec.operator)
        S = SellCSOperator(comm, lmesh, spec.operator)
        rng = np.random.default_rng(7 + comm.rank)
        X = rng.standard_normal((A.n_dofs_owned, 4))
        return (
            A.apply_owned(xo), S.apply_owned(xo),
            A.apply_owned_multi(X, mode="oracle"),
            S.apply_owned_multi(X, mode="oracle"),
        )

    nd = spec.operator.ndpn
    args = [
        (
            spec.partition.local(r),
            x[spec.partition.ranges[r, 0] * nd:
              spec.partition.ranges[r, 1] * nd],
        )
        for r in range(p)
    ]
    res, _ = run_spmd(p, prog, rank_args=args)
    for ya, ys, Ya, Ys in res:
        assert np.array_equal(ya, ys)
        assert np.array_equal(Ya, Ys)


def test_sellcs_gemm_within_derived_bound():
    """The chunk-matmul GEMM path agrees with the oracle within the
    shared accumulation-order bound."""
    spec = graph_laplacian_problem(6, n_parts=2, seed=2)

    def prog(comm, lmesh):
        S = SellCSOperator(comm, lmesh, spec.operator)
        rng = np.random.default_rng(7 + comm.rank)
        X = rng.standard_normal((S.n_dofs_owned, 16))
        Yo = S.apply_owned_multi(X, mode="oracle")
        Yg = S.apply_owned_multi(X, mode="gemm")
        return np.max(np.abs(Yo - Yg)), np.max(np.abs(Yo))

    args = [(spec.partition.local(r),) for r in range(2)]
    res, _ = run_spmd(2, prog, rank_args=args)
    for err, scale in res:
        assert err <= 1e-11 * max(scale, 1.0)


def test_sellcs_cg_solution_matches_assembled():
    """CG through the SELL backend walks the identical iterate sequence:
    same iteration count, bitwise-equal solution."""
    from repro.harness.driver import run_solve

    spec = poisson_problem(5, n_parts=3)
    out_s = run_solve(spec, "sellcs", rtol=1e-8, return_solution=True)
    out_a = run_solve(spec, "assembled", rtol=1e-8, return_solution=True)
    assert out_s.converged and out_a.converged
    assert out_s.iterations == out_a.iterations
    assert np.array_equal(out_s.solution, out_a.solution)


def test_sellcs_survives_update_elements():
    """Value-only reassembly rebuilds the SELL blocks; products stay
    bitwise-identical to the reassembled CSR, and the padding gauges
    track the *current* layout instead of accumulating."""
    spec = graph_laplacian_problem(5, n_parts=1, seed=4)
    lmesh = spec.partition.local(0)

    def prog(comm, lm):
        A = AssembledOperator(comm, lm, spec.operator)
        S = SellCSOperator(comm, lm, spec.operator)
        pad0 = S.padded_nnz
        ids = np.arange(0, lm.n_local_elements, 3)
        scale = np.full(ids.size, 2.5)
        A.update_elements(ids, stiffness_scale=scale)
        S.update_elements(ids, stiffness_scale=scale)
        rng = np.random.default_rng(9)
        x = rng.standard_normal(A.n_dofs_owned)
        counters = dict(comm.obs.snapshot()["counters"])
        return (
            A.apply_owned(x), S.apply_owned(x), pad0, S.padded_nnz,
            counters["sellcs.padded_nnz"],
        )

    (res,), _ = run_spmd(1, prog, rank_args=[(lmesh,)])
    ya, ys, pad0, pad1, gauge = res
    assert np.array_equal(ya, ys)
    assert pad1 == pad0  # value-only update: layout unchanged
    assert gauge == pad1  # the counter is a gauge, not a running sum


def test_sellcs_serve_context_bitwise_vs_assembled():
    """Through the serve cache, a sellcs context returns the same bits
    as an assembled context for the same problem key."""
    cache = OperatorCache(capacity=4, obs=Instrumentation(rank=-1))
    k_sell = ProblemKey(problem="graphlap", nel=4, n_parts=2,
                        etype="tet4", method="sellcs", seed=2)
    k_asm = dataclasses.replace(k_sell, method="assembled")
    ctx_s, _ = cache.get(k_sell)
    ctx_a, _ = cache.get(k_asm)
    assert ctx_s.n_dofs == ctx_a.n_dofs
    X = np.random.default_rng(0).standard_normal((ctx_s.n_dofs, 2))
    Ys, _ = ctx_s.apply_multi(X, mode="oracle")
    Ya, _ = ctx_a.apply_multi(X, mode="oracle")
    assert np.array_equal(Ys, Ya)


# ----------------------------------------------------------------------------
# backend routing policy
# ----------------------------------------------------------------------------

def _mini_service(**kw):
    obs = Instrumentation(rank=-1)
    cache = OperatorCache(capacity=4, obs=obs)
    return SolverService(cache, obs=obs, **kw), obs


def test_backend_none_preserves_key():
    svc, _ = _mini_service()
    key = ProblemKey(problem="poisson", nel=3, n_parts=2, etype="hex8")
    assert svc._route_key(key) is key
    assert svc.backend_histogram == {}


def test_backend_rejects_unknown_policy():
    with pytest.raises(ValueError, match="backend"):
        _mini_service(backend="cuda")


def test_backend_auto_routes_by_crossover():
    svc, obs = _mini_service(backend="auto", sellcs_crossover_dofs=400)
    small = ProblemKey(problem="poisson", nel=3, n_parts=2, etype="hex8",
                       method="hymv")
    big = ProblemKey(problem="poisson", nel=12, n_parts=2, etype="hex8",
                     method="hymv")
    assert svc._route_key(small).method == "sellcs"
    assert svc._route_key(big).method == "hymv"
    assert svc.backend_histogram == {"sellcs": 1, "hymv": 1}
    counters = dict(obs.snapshot()["counters"])
    assert counters["serve.backend.sellcs"] == 1
    assert counters["serve.backend.rerouted"] == 1  # only the rewrite


def test_backend_auto_without_calibration_stays_hymv():
    svc, _ = _mini_service(backend="auto")
    key = ProblemKey(problem="poisson", nel=3, n_parts=2, etype="hex8",
                     method="hymv")
    assert svc._route_key(key).method == "hymv"


def test_backend_forced_sellcs_serves_requests():
    """End to end: a forced-sellcs service completes spmv requests with
    the same values a backend-less service returns for an explicit
    sellcs key."""
    key_hymv = ProblemKey(problem="graphlap", nel=4, n_parts=2,
                          etype="tet4", method="hymv", seed=2)
    key_sell = dataclasses.replace(key_hymv, method="sellcs")

    svc, _ = _mini_service(backend="sellcs")
    reqs = [ServeRequest(rid=i, key=key_hymv, kind="spmv", seed=100 + i,
                         arrival=0.0, deadline=1e9) for i in range(3)]
    for r in reqs:
        assert svc.submit(r)
    out = svc.dispatch(now=0.0)
    assert len(out.completions) == 3
    assert all(c.status == "ok" for c in out.completions)
    assert svc.backend_histogram == {"sellcs": 1}

    ref_svc, _ = _mini_service()
    for i, c in enumerate(out.completions):
        rr = ServeRequest(rid=10 + i, key=key_sell, kind="spmv",
                          seed=100 + i, arrival=0.0, deadline=1e9)
        assert ref_svc.submit(rr)
    ref = ref_svc.dispatch(now=0.0)
    for c, cr in zip(out.completions, ref.completions):
        assert np.array_equal(c.value, cr.value)


def test_crossover_loader_round_trip(tmp_path):
    import json

    from repro.serve.loadgen import load_calibrated_crossover

    doc = {"config": {"sellcs_crossover_dofs": 4913}}
    path = tmp_path / "BENCH_sellcs.json"
    path.write_text(json.dumps(doc))
    assert load_calibrated_crossover(path) == 4913
    assert load_calibrated_crossover(tmp_path / "absent.json") is None
    path.write_text("{not json")
    assert load_calibrated_crossover(path) is None
