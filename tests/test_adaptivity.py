"""The adaptive-matrix property (paper §I/§III, XFEM/AMR use-case):
updating a few element matrices without any global reassembly."""

from __future__ import annotations

import numpy as np

from repro.core import HymvOperator
from repro.fem import ElasticityOperator, PoissonOperator
from repro.mesh import ElementType, box_hex_mesh
from repro.partition import build_partition
from repro.simmpi import run_spmd


def _spmv_all(part, op, x, update=None):
    p = part.n_parts

    def prog(comm, lmesh, xo):
        A = HymvOperator(comm, lmesh, op)
        if update is not None:
            local_ids, scale = update(lmesh)
            A.update_elements(local_ids, stiffness_scale=scale)
        y = A.apply_owned(xo)
        return y, A.comm.timing.as_dict()

    ndpn = op.ndpn
    args = [
        (part.local(r), x[part.ranges[r, 0] * ndpn: part.ranges[r, 1] * ndpn])
        for r in range(p)
    ]
    res, _ = run_spmd(p, prog, rank_args=args)
    return np.concatenate([r[0] for r in res]), [r[1] for r in res]


def test_update_matches_full_recomputation():
    """Scaling a subset of element matrices via update_elements equals a
    full serial assembly with those elements scaled."""
    mesh = box_hex_mesh(4, 4, 4)
    op = PoissonOperator()
    part = build_partition(mesh, 3, method="slab")
    rng = np.random.default_rng(0)
    x = rng.standard_normal(mesh.n_nodes)

    # globally: scale elements 5, 17, 40 ("cracked") by 0.25
    cracked = np.array([5, 17, 40])
    scale = 0.25

    def update(lmesh):
        pos = np.flatnonzero(np.isin(lmesh.elements, cracked))
        return pos, scale

    y, _ = _spmv_all(part, op, x, update=update)

    # serial reference with scaled elements
    import scipy.sparse as sp

    ke = op.element_matrices(mesh.coords[mesh.conn], mesh.etype)
    ke[cracked] *= scale
    n = mesh.etype.n_nodes
    rows = np.repeat(mesh.conn, n, axis=1).reshape(-1)
    cols = np.tile(mesh.conn, (1, n)).reshape(-1)
    A = sp.coo_matrix((ke.reshape(-1), (rows, cols)),
                      shape=(mesh.n_nodes,) * 2).tocsr()
    x_old = np.empty_like(x)
    x_old[part.old_of_new] = x
    y_ref = (A @ x_old)[part.old_of_new]
    np.testing.assert_allclose(y, y_ref, atol=1e-12)


def test_update_with_new_coordinates():
    """Moving an element's nodes and updating only that element matches a
    fresh operator on the moved mesh."""
    mesh = box_hex_mesh(3, 3, 3)
    op = PoissonOperator()
    part = build_partition(mesh, 1, method="slab")
    lmesh = part.local(0)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(mesh.n_nodes)

    moved = lmesh.coords.copy()
    moved[4] = moved[4] * 1.0
    moved[4, :, :] += 0.02  # translate element 4 (still valid geometry)

    def prog(comm):
        A = HymvOperator(comm, lmesh, op)
        A.update_elements(np.array([4]), coords=moved[4][None])
        return A.apply_owned(x)

    res, _ = run_spmd(1, prog)

    def prog_fresh(comm):
        from dataclasses import replace

        lm2 = replace(lmesh, coords=moved)
        A = HymvOperator(comm, lm2, op)
        return A.apply_owned(x)

    res2, _ = run_spmd(1, prog_fresh)
    np.testing.assert_allclose(res[0], res2[0], atol=1e-12)


def test_update_cost_proportional_to_subset():
    """The paper's adaptivity claim: updating k elements costs ~k/E of the
    full element-matrix computation (vs full reassembly for the
    matrix-assembled approach)."""
    mesh = box_hex_mesh(8, 8, 8, ElementType.HEX20)
    op = ElasticityOperator()
    part = build_partition(mesh, 1, method="slab")
    lmesh = part.local(0)

    def prog(comm):
        A = HymvOperator(comm, lmesh, op)
        t_setup = comm.timing.total("setup.emat_compute")
        A.update_elements(np.arange(8))  # 8 of 512 elements
        t_update = comm.timing.total("update.emat_compute")
        return t_setup, t_update

    res, _ = run_spmd(1, prog)
    t_setup, t_update = res[0]
    # 8/512 of the work; allow generous overhead for small-batch effects
    assert t_update < t_setup / 8.0


def test_update_empty_subset_is_noop():
    mesh = box_hex_mesh(2, 2, 2)
    part = build_partition(mesh, 1, method="slab")

    def prog(comm):
        A = HymvOperator(comm, part.local(0), PoissonOperator())
        ke_before = A.ke.copy()
        A.update_elements(np.array([], dtype=np.int64))
        return np.array_equal(A.ke, ke_before)

    res, _ = run_spmd(1, prog)
    assert res[0]


def test_update_preserves_symmetry():
    mesh = box_hex_mesh(3, 3, 3)
    part = build_partition(mesh, 1, method="slab")

    def prog(comm):
        A = HymvOperator(comm, part.local(0), PoissonOperator())
        A.update_elements(np.array([0, 1]), stiffness_scale=10.0)
        return np.abs(A.ke - np.swapaxes(A.ke, 1, 2)).max()

    res, _ = run_spmd(1, prog)
    assert res[0] < 1e-12
