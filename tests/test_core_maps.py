"""Algorithm 1 (E2L map), ghost classification, scatter/gather maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.maps import build_node_maps
from repro.core.scatter import build_comm_maps, gather, scatter
from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh
from repro.partition import build_partition
from repro.simmpi import run_spmd


def test_paper_figure1_example():
    """The worked example of the paper's Fig. 1 (partition P2).

    P2 owns nodes 11..14, its element 0 has E2G = [0, 3, 12, 11]; the
    paper gives E2L = [0, 1, 4, 3], Gpre = {0, 3, 6}, Gpost = {}.
    """
    e2g = np.array([[0, 3, 12, 11], [3, 6, 13, 12], [12, 13, 14, 11]])
    # paper range is inclusive [11, 14]; ours is half-open [11, 15)
    maps = build_node_maps(e2g, 11, 15)
    np.testing.assert_array_equal(maps.ghost_pre, [0, 3, 6])
    assert maps.ghost_post.size == 0
    assert maps.n_owned == 4 and maps.n_total == 7
    np.testing.assert_array_equal(maps.e2l[0], [0, 1, 4, 3])
    np.testing.assert_array_equal(maps.e2l[1], [1, 2, 5, 4])


def test_e2l_matches_bruteforce():
    mesh = box_tet_mesh(3, 3, 3, ElementType.TET10, jitter=0.15)
    part = build_partition(mesh, 4, method="graph")
    for r in range(4):
        lm = part.local(r)
        maps = build_node_maps(lm.e2g, lm.n_begin, lm.n_end)
        l2g = maps.local_to_global()
        # E2L followed by local_to_global recovers E2G exactly
        np.testing.assert_array_equal(l2g[maps.e2l], lm.e2g)
        # layout: pre < begin <= owned < end <= post
        assert (maps.ghost_pre < lm.n_begin).all()
        assert (maps.ghost_post >= lm.n_end).all()
        assert np.array_equal(maps.ghost_pre, np.sort(maps.ghost_pre))
        assert np.array_equal(maps.ghost_post, np.sort(maps.ghost_post))


def test_independent_dependent_split():
    mesh = box_hex_mesh(4, 4, 4)
    part = build_partition(mesh, 4, method="slab")
    for r in range(4):
        lm = part.local(r)
        maps = build_node_maps(lm.e2g, lm.n_begin, lm.n_end)
        both = np.sort(np.concatenate([maps.independent, maps.dependent]))
        np.testing.assert_array_equal(both, np.arange(lm.n_local_elements))
        owned = (lm.e2g >= lm.n_begin) & (lm.e2g < lm.n_end)
        for e in maps.independent:
            assert owned[e].all()
        for e in maps.dependent:
            assert not owned[e].all()


def test_global_to_local_roundtrip_and_errors():
    e2g = np.array([[2, 5, 9, 7]])
    maps = build_node_maps(e2g, 5, 8)
    l2g = maps.local_to_global()
    ids = np.array([2, 5, 6, 7, 9])
    np.testing.assert_array_equal(l2g[maps.global_to_local(ids)], ids)
    with pytest.raises(KeyError):
        maps.global_to_local(np.array([3]))  # not a ghost here
    with pytest.raises(KeyError):
        maps.global_to_local(np.array([100]))


@given(st.integers(min_value=2, max_value=6))
def test_scatter_delivers_owner_values(p):
    mesh = box_hex_mesh(3, 3, max(p, 3))
    part = build_partition(mesh, p, method="slab")

    def prog(comm, lmesh):
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        cmaps = build_comm_maps(comm, maps)
        data = np.zeros((maps.n_total, 1))
        # owned entries get their global id
        data[maps.owned_slice, 0] = np.arange(lmesh.n_begin, lmesh.n_end)
        scatter(comm, data, cmaps)
        l2g = maps.local_to_global()
        np.testing.assert_array_equal(data[:, 0], l2g)
        return True

    res, _ = run_spmd(p, prog, rank_args=[(part.local(r),) for r in range(p)])
    assert all(res)


def test_gather_accumulates_each_contribution_once():
    p = 3
    mesh = box_hex_mesh(3, 3, 4)
    part = build_partition(mesh, p, method="slab")

    def prog(comm, lmesh):
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        cmaps = build_comm_maps(comm, maps)
        data = np.ones((maps.n_total, 1))
        gather(comm, data, cmaps)
        return maps, data

    res, _ = run_spmd(p, prog, rank_args=[(part.local(r),) for r in range(p)])
    # each owned node accumulates 1 (its own) + 1 per rank ghosting it
    ghost_count = np.zeros(mesh.n_nodes)
    for maps, _ in res:
        for g in np.concatenate([maps.ghost_pre, maps.ghost_post]):
            ghost_count[g] += 1
    for r, (maps, data) in enumerate(res):
        owned = data[maps.owned_slice, 0]
        b, e = part.ranges[r]
        np.testing.assert_allclose(owned, 1.0 + ghost_count[b:e])


def test_scatter_then_gather_is_multiplicity_weighting():
    """scatter then gather multiplies owner values by (1 + #ghost copies)."""
    p = 4
    mesh = box_hex_mesh(3, 3, 4)
    part = build_partition(mesh, p, method="slab")
    rng = np.random.default_rng(0)
    vals = rng.standard_normal(mesh.n_nodes)

    def prog(comm, lmesh):
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        cmaps = build_comm_maps(comm, maps)
        data = np.zeros((maps.n_total, 1))
        data[maps.owned_slice, 0] = vals[lmesh.n_begin: lmesh.n_end]
        scatter(comm, data, cmaps)
        gather(comm, data, cmaps)
        return maps, data[maps.owned_slice, 0]

    res, _ = run_spmd(p, prog, rank_args=[(part.local(r),) for r in range(p)])
    ghost_count = np.zeros(mesh.n_nodes)
    for maps, _ in res:
        for g in np.concatenate([maps.ghost_pre, maps.ghost_post]):
            ghost_count[g] += 1
    for r, (maps, owned) in enumerate(res):
        b, e = part.ranges[r]
        np.testing.assert_allclose(owned, vals[b:e] * (1.0 + ghost_count[b:e]))


def test_comm_maps_symmetry():
    """Rank a sends to b exactly what b expects to receive from a."""
    p = 4
    mesh = box_tet_mesh(3, 3, 3, jitter=0.2)
    part = build_partition(mesh, p, method="graph")

    def prog(comm, lmesh):
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        cmaps = build_comm_maps(comm, maps)
        l2g = maps.local_to_global()
        sends = {
            r: l2g[s].tolist() for r, s in zip(cmaps.send_ranks, cmaps.send_slots)
        }
        recvs = {
            r: l2g[s].tolist() for r, s in zip(cmaps.recv_ranks, cmaps.recv_slots)
        }
        return sends, recvs

    res, _ = run_spmd(p, prog, rank_args=[(part.local(r),) for r in range(p)])
    for a in range(p):
        for b, ids in res[a][0].items():
            assert res[b][1][a] == ids  # same global ids, same order
