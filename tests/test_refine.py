"""Uniform refinement: counts, conformity, geometry and convergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.elemmat import jacobians
from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh
from repro.mesh.quadrature import quadrature_for
from repro.mesh.refine import refine_uniform
from repro.mesh.shape_functions import shape_functions_for
from repro.mesh.unstructured import jittered_hex_mesh


def _volume(mesh):
    sf = shape_functions_for(mesh.etype)
    q = quadrature_for(mesh.etype)
    _, detJ, _ = jacobians(sf.grad(q.points), mesh.coords[mesh.conn])
    return float((q.weights[None, :] * detJ).sum())


@pytest.mark.parametrize(
    "factory",
    [
        lambda: box_hex_mesh(2, 2, 2),
        lambda: jittered_hex_mesh(2, 2, 2, ElementType.HEX20, jitter=0.15),
        lambda: jittered_hex_mesh(2, 2, 2, ElementType.HEX27, jitter=0.15),
        lambda: box_tet_mesh(2, 2, 2, jitter=0.2),
        lambda: box_tet_mesh(2, 2, 2, ElementType.TET10, jitter=0.2),
    ],
)
def test_refine_8x_elements_volume_conserved(factory):
    mesh = factory()
    fine = refine_uniform(mesh)
    assert fine.etype == mesh.etype
    assert fine.n_elements == 8 * mesh.n_elements
    np.testing.assert_allclose(_volume(fine), _volume(mesh), rtol=1e-10)


def test_refine_hex8_structured_counts():
    fine = refine_uniform(box_hex_mesh(2, 2, 2))
    assert fine.n_nodes == 5**3  # matches a 4^3 structured grid
    assert np.array_equal(
        np.unique(fine.conn), np.arange(fine.n_nodes)
    )


def test_refine_tet_conforming_positive():
    fine = refine_uniform(box_tet_mesh(2, 2, 2, jitter=0.25, seed=3))
    c = fine.coords[fine.conn]
    vols = np.linalg.det(c[:, 1:4] - c[:, 0:1]) / 6.0
    assert (vols > 0).all()
    from repro.mesh.element import TET_FACES

    keys = np.vstack(
        [np.sort(fine.conn[:, list(f)], axis=1) for f in TET_FACES]
    )
    view = np.ascontiguousarray(keys).view([("", keys.dtype)] * 3).reshape(-1)
    _, counts = np.unique(view, return_counts=True)
    assert set(counts.tolist()) <= {1, 2}


def test_refine_levels():
    fine = refine_uniform(box_hex_mesh(1, 1, 1), levels=3)
    assert fine.n_elements == 512
    assert refine_uniform(box_hex_mesh(2, 2, 2), levels=0).n_elements == 8
    with pytest.raises(ValueError):
        refine_uniform(box_hex_mesh(1, 1, 1), levels=-1)


def test_refine_reduces_fem_error():
    """End-to-end: refining an unstructured tet mesh reduces the Poisson
    error at the expected rate."""

    from repro.baselines.serial import SerialReference
    from repro.fem import PoissonOperator
    from repro.fem.analytic import poisson_exact, poisson_forcing
    from repro.fem.loads import body_force_rhs_batch

    mesh = box_tet_mesh(3, 3, 3, jitter=0.2)
    errs = []
    for level in range(2):
        m = refine_uniform(mesh, level)
        ref = SerialReference(m, PoissonOperator())
        fe = body_force_rhs_batch(
            m.coords[m.conn], m.etype,
            lambda x: poisson_forcing(x)[..., None], 1,
        )
        f = ref.rhs_from_elemental(fe[:, :, None])
        u = ref.solve_dirichlet(f, m.boundary_nodes(), np.zeros(ref.n_dofs))
        errs.append(np.abs(u - poisson_exact(m.coords)).max())
    assert errs[1] < errs[0] / 2.0


def test_refined_quadratic_preserves_midpoints():
    fine = refine_uniform(
        box_tet_mesh(2, 2, 2, ElementType.TET10, jitter=0.15)
    )
    from repro.mesh.element import TET_EDGES

    c = fine.coords[fine.conn]
    for k, (i, j) in enumerate(TET_EDGES):
        np.testing.assert_allclose(c[:, 4 + k], (c[:, i] + c[:, j]) / 2.0)
