"""Problem specs, RHS assembly, distributed arrays and the drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.da import DistributedArray
from repro.core.maps import build_node_maps
from repro.core.rhs import assemble_rhs, local_node_coords
from repro.core.scatter import build_comm_maps
from repro.fem.operators import ElasticityOperator, PoissonOperator
from repro.harness import run_bench, run_solve
from repro.harness.meshes import box_dims_for_dofs
from repro.harness.registry import EXPERIMENTS, run_experiment
from repro.mesh import ElementType
from repro.problems import elastic_bar_problem, poisson_problem
from repro.simmpi import run_spmd


# ----------------------------------------------------------------------------
# problem specs
# ----------------------------------------------------------------------------

def test_poisson_problem_spec():
    spec = poisson_problem(5, 3)
    assert spec.n_parts == 3
    assert spec.n_dofs == 6**3
    assert len(spec.bcs) == 1
    assert spec.analytic is not None
    # boundary nodes constrained
    bn = spec.partition.boundary_nodes_new()
    assert np.array_equal(spec.bcs[0].nodes, bn)


def test_elastic_bar_spec_tractions_partitioned():
    spec = elastic_bar_problem(3, 3, ElementType.HEX20)
    # top face: one traction group; rank-local subsets cover it exactly
    elems, faces, t = spec.tractions[0]
    total = sum(len(spec.rank_tractions(r)[0][0]) for r in range(3))
    assert total == len(elems)
    assert t[2] > 0  # upward traction
    # minimal pinning: 6 constrained dofs
    ndofs = sum(bc.constrained_dofs().size for bc in spec.bcs)
    assert ndofs == 6


def test_elastic_bar_pin_validation():
    with pytest.raises(ValueError):
        elastic_bar_problem(2, 1, pin="nothing")


def test_analytic_owned_shapes():
    spec = elastic_bar_problem(2, 2, ElementType.HEX8)
    for r in range(2):
        exact = spec.analytic_owned(r)
        b, e = spec.partition.ranges[r]
        assert exact.shape == ((e - b) * 3,)


# ----------------------------------------------------------------------------
# RHS assembly / local coords / DA
# ----------------------------------------------------------------------------

def test_local_node_coords_cover_all_slots():
    spec = poisson_problem(4, 3)
    part = spec.partition
    for r in range(3):
        lm = part.local(r)
        maps = build_node_maps(lm.e2g, lm.n_begin, lm.n_end)
        coords = local_node_coords(maps, lm)
        l2g = maps.local_to_global()
        np.testing.assert_allclose(
            coords, part.coords_by_new_id()[l2g], atol=0
        )


def test_assemble_rhs_matches_serial():
    spec = elastic_bar_problem(3, 3, ElementType.HEX20)
    part, op = spec.partition, spec.operator

    def prog(comm, lmesh, tractions):
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        cmaps = build_comm_maps(comm, maps)
        return assemble_rhs(
            comm, lmesh, maps, cmaps, 3,
            body_force=spec.body_force, tractions=tractions,
        )

    res, _ = run_spmd(
        3, prog,
        rank_args=[(part.local(r), spec.rank_tractions(r)) for r in range(3)],
    )
    f = np.concatenate(res)
    # total force balance: body force total + traction total = 0 in z
    mat = op.material
    vol = 1.0 * 1.0 * 2.0
    fz = f.reshape(-1, 3)[:, 2].sum()
    np.testing.assert_allclose(
        fz, -mat.rho * mat.g * vol + mat.rho * mat.g * 2.0 * 1.0, atol=1e-10
    )


def test_distributed_array_views_and_reductions():
    spec = poisson_problem(4, 2)
    part = spec.partition

    def prog(comm, lmesh):
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        da = DistributedArray(maps, ndpn=2)
        da.set_owned(np.full((maps.n_owned, 2), float(comm.rank + 1)))
        # views share memory
        da.owned_flat[0] = 42.0
        assert da.data[maps.n_pre, 0] == 42.0
        db = da.copy()
        db.zero()
        assert da.owned_flat[0] == 42.0 and db.owned_flat.sum() == 0.0
        da.zero_ghosts()
        assert np.all(da.data[: maps.n_pre] == 0.0)
        n2 = da.norm2(comm)
        ninf = da.norm_inf(comm)
        return n2, ninf

    res, _ = run_spmd(2, prog, rank_args=[(part.local(r),) for r in range(2)])
    n2, ninf = res[0]
    assert res[1] == (n2, ninf)  # collective agreement
    assert ninf == 42.0 and n2 > 0


# ----------------------------------------------------------------------------
# drivers / registry
# ----------------------------------------------------------------------------

def test_run_bench_unknown_method():
    spec = poisson_problem(3, 1)
    with pytest.raises(ValueError, match="unknown method"):
        run_bench(spec, "petsc")


def test_run_solve_unknown_precond():
    spec = poisson_problem(3, 1)
    with pytest.raises(ValueError, match="unknown preconditioner"):
        run_solve(spec, "hymv", precond="amg")


def test_run_solve_returns_solution_when_asked():
    spec = poisson_problem(4, 2)
    out = run_solve(spec, "hymv", rtol=1e-8, return_solution=True)
    assert out.solution.shape == (spec.n_dofs,)
    out2 = run_solve(spec, "hymv", rtol=1e-8)
    assert out2.solution is None


def test_registry_complete_and_errors():
    expected = {
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "table1", "memory", "verification",
    }
    assert set(EXPERIMENTS) == expected
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_box_dims_for_dofs_accuracy():
    for etype, op in [
        (ElementType.HEX8, PoissonOperator()),
        (ElementType.HEX20, ElasticityOperator()),
        (ElementType.TET10, PoissonOperator()),
    ]:
        dims = box_dims_for_dofs(etype, op, 5000.0)
        spec_fn = poisson_problem if op.ndpn == 1 else elastic_bar_problem
        spec = spec_fn(dims, 1, etype)
        assert 0.3 * 5000 < spec.n_dofs < 3.0 * 5000


def test_bench_flop_accounting_scales_with_nspmv():
    spec = poisson_problem(5, 2)
    b1 = run_bench(spec, "hymv", n_spmv=1)
    b4 = run_bench(spec, "hymv", n_spmv=4)
    np.testing.assert_allclose(b4.flops_spmv, 4 * b1.flops_spmv)


def test_harness_main_cli(tmp_path, capsys):
    from repro.harness.__main__ import main

    rc = main(["fig3", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "fig3.txt").exists()
    out = capsys.readouterr().out
    assert "Fig 3" in out


def test_partition_to_mesh_order_roundtrip():
    spec = elastic_bar_problem(2, 2, ElementType.HEX8)
    part = spec.partition
    rng = np.random.default_rng(3)
    vals_new = rng.standard_normal(spec.n_dofs)
    back = part.to_mesh_order(vals_new, ndpn=3)
    # node i of the mesh carries the values of renumbered node new_of_old[i]
    for i in (0, 5, part.mesh.n_nodes - 1):
        np.testing.assert_array_equal(
            back[i], vals_new.reshape(-1, 3)[part.new_of_old[i]]
        )
    scalar = part.to_mesh_order(np.arange(part.mesh.n_nodes, dtype=float))
    assert scalar.shape == (part.mesh.n_nodes,)
