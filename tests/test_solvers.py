"""CG, preconditioners, Dirichlet projection."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.simmpi import run_spmd
from repro.solvers import (
    BlockJacobiPreconditioner,
    JacobiPreconditioner,
    cg,
    dirichlet_system,
)


def _spd_matrix(n, seed=0, cond=50.0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    w = np.linspace(1.0, cond, n)
    return (Q * w) @ Q.T


def test_cg_serial_matches_direct():
    A = _spd_matrix(40)
    b = np.random.default_rng(1).standard_normal(40)

    def prog(comm):
        return cg(comm, lambda x: A @ x, b, rtol=1e-12, maxiter=500)

    res, _ = run_spmd(1, prog)
    r = res[0]
    assert r.converged
    np.testing.assert_allclose(r.x, np.linalg.solve(A, b), atol=1e-8)
    # residual history is monotone-ish and ends below tolerance
    assert r.residual_norms[-1] <= 1e-12 * r.residual_norms[0]


def test_cg_zero_rhs_returns_zero():
    def prog(comm):
        return cg(comm, lambda x: 2.0 * x, np.zeros(7))

    res, _ = run_spmd(1, prog)
    assert res[0].iterations == 0 and res[0].converged
    np.testing.assert_array_equal(res[0].x, np.zeros(7))


def test_cg_distributed_block_diagonal():
    """A block-diagonal SPD system distributed over ranks: CG converges to
    the per-rank direct solutions."""
    p = 3
    blocks = [_spd_matrix(12, seed=s) for s in range(p)]
    rhs = [np.random.default_rng(10 + s).standard_normal(12) for s in range(p)]

    def prog(comm):
        A = blocks[comm.rank]
        b = rhs[comm.rank]
        res = cg(comm, lambda x: A @ x, b, rtol=1e-12, maxiter=400)
        return np.abs(res.x - np.linalg.solve(A, b)).max(), res.iterations

    res, _ = run_spmd(p, prog)
    errs, iters = zip(*res)
    assert max(errs) < 1e-7
    assert len(set(iters)) == 1  # collective iteration count


def test_cg_detects_non_spd():
    A = -np.eye(5)

    def prog(comm):
        with pytest.raises(RuntimeError, match="breakdown"):
            cg(comm, lambda x: A @ x, np.ones(5))
        return True

    res, _ = run_spmd(1, prog)
    assert res[0]


def test_cg_maxiter_not_converged():
    A = _spd_matrix(60, cond=1e6)
    b = np.ones(60)

    def prog(comm):
        return cg(comm, lambda x: A @ x, b, rtol=1e-14, maxiter=3)

    res, _ = run_spmd(1, prog)
    assert not res[0].converged
    assert res[0].iterations == 3


@pytest.mark.parametrize("precond", [None, "jacobi"])
def test_cg_fused_matches_classic(precond):
    """The fused-reduction loop performs the same arithmetic as the
    classic loop (its single pair-allreduce is elementwise, in the same
    rank order), so solutions and residual histories agree to 1e-12 —
    the iterates are in fact bitwise identical."""
    rng = np.random.default_rng(21)
    d = rng.uniform(1.0, 100.0, 50)
    A = np.diag(d) + 0.5 * _spd_matrix(50, seed=22, cond=5.0)
    b = rng.standard_normal(50)
    M = JacobiPreconditioner(np.diag(A).copy()) if precond else None

    def prog(comm):
        kw = dict(apply_M=M, rtol=1e-11, maxiter=500)
        classic = cg(comm, lambda x: A @ x, b, fused=False, **kw)
        fused = cg(comm, lambda x: A @ x, b, fused=True, **kw)
        return classic, fused

    res, _ = run_spmd(1, prog)
    classic, fused = res[0]
    assert classic.converged and fused.converged
    assert fused.iterations == classic.iterations
    scale = np.abs(classic.x).max()
    np.testing.assert_allclose(fused.x, classic.x, atol=1e-12 * max(scale, 1.0))
    np.testing.assert_allclose(
        fused.residual_norms, classic.residual_norms, rtol=1e-12
    )


def test_cg_fused_distributed_matches_classic():
    p = 3
    blocks = [_spd_matrix(12, seed=s) for s in range(p)]
    rhs = [np.random.default_rng(30 + s).standard_normal(12) for s in range(p)]

    def prog(comm):
        A = blocks[comm.rank]
        b = rhs[comm.rank]
        classic = cg(comm, lambda x: A @ x, b, fused=False, rtol=1e-12, maxiter=400)
        fused = cg(comm, lambda x: A @ x, b, fused=True, rtol=1e-12, maxiter=400)
        return (
            fused.iterations == classic.iterations,
            np.abs(fused.x - classic.x).max(),
        )

    res, _ = run_spmd(p, prog)
    same_iters, errs = zip(*res)
    assert all(same_iters)
    assert max(errs) < 1e-12


def test_cg_fused_cuts_per_iteration_reductions():
    """The pair-allreduce replaces the separate ``r·r`` / ``r·z``
    reductions: classic spends 3 per advancing iteration (pAp, norm,
    rz), fused spends 2 (pAp, pair)."""
    A = _spd_matrix(40)
    b = np.random.default_rng(2).standard_normal(40)

    def prog(comm):
        def n_reduce():
            phases = comm.obs.snapshot()["phases"]
            return phases.get("solve.reduce", {}).get("count", 0)

        out = {}
        for fused in (False, True):
            before = n_reduce()
            res = cg(comm, lambda x: A @ x, b, fused=fused, rtol=1e-10,
                     maxiter=500)
            out[fused] = (res.iterations, n_reduce() - before)
        return out

    res, _ = run_spmd(1, prog)
    it_classic, red_classic = res[0][False]
    it_fused, red_fused = res[0][True]
    assert it_fused == it_classic
    # classic: 2 setup + 2/iter + 1 beta-dot on all but the last iter;
    # fused: 2 setup + 2/iter.  The saving is exactly it-1 reductions.
    assert red_classic == 3 * it_classic - 1 + 2
    assert red_fused == 2 * it_fused + 2


def test_cg_fused_breakdown_detected():
    def prog(comm):
        with pytest.raises(RuntimeError, match="breakdown"):
            cg(comm, lambda x: -x, np.ones(5), fused=True)
        return True

    res, _ = run_spmd(1, prog)
    assert res[0]


def test_jacobi_reduces_iterations():
    rng = np.random.default_rng(4)
    d = rng.uniform(1.0, 1000.0, 80)
    A = np.diag(d) + 0.5 * _spd_matrix(80, seed=5, cond=2.0)
    b = rng.standard_normal(80)

    def prog(comm):
        plain = cg(comm, lambda x: A @ x, b, rtol=1e-10, maxiter=2000)
        M = JacobiPreconditioner(np.diag(A).copy())
        prec = cg(comm, lambda x: A @ x, b, apply_M=M, rtol=1e-10, maxiter=2000)
        return plain.iterations, prec.iterations

    res, _ = run_spmd(1, prog)
    plain_it, prec_it = res[0]
    assert prec_it < plain_it


def test_jacobi_rejects_nonpositive_diagonal():
    with pytest.raises(ValueError):
        JacobiPreconditioner(np.array([1.0, 0.0]))


def test_block_jacobi_exact_for_block_system():
    B = _spd_matrix(20, seed=7)
    M = BlockJacobiPreconditioner(sp.csr_matrix(B))
    r = np.random.default_rng(8).standard_normal(20)
    np.testing.assert_allclose(M(r), np.linalg.solve(B, r), atol=1e-9)


def test_block_jacobi_requires_square():
    with pytest.raises(ValueError):
        BlockJacobiPreconditioner(sp.csr_matrix(np.ones((2, 3))))


def test_dirichlet_system_solution_matches_elimination():
    n = 30
    A = _spd_matrix(n, seed=11)
    f = np.random.default_rng(12).standard_normal(n)
    mask = np.zeros(n, dtype=bool)
    mask[[0, 5, 17]] = True
    u0 = np.zeros(n)
    u0[mask] = [1.0, -2.0, 0.5]

    apply_hat, b_hat = dirichlet_system(lambda x: A @ x, f, u0, mask)

    def prog(comm):
        return cg(comm, apply_hat, b_hat, rtol=1e-13, maxiter=500).x

    res, _ = run_spmd(1, prog)
    x = res[0]
    # compare against direct elimination
    free = ~mask
    x_ref = u0.copy()
    x_ref[free] = np.linalg.solve(
        A[np.ix_(free, free)], (f - A @ u0)[free]
    ) + u0[free]
    np.testing.assert_allclose(x, x_ref, atol=1e-8)
    np.testing.assert_allclose(x[mask], u0[mask], atol=1e-12)


def test_dirichlet_system_operator_is_spd():
    n = 15
    A = _spd_matrix(n, seed=2)
    mask = np.zeros(n, dtype=bool)
    mask[:4] = True
    apply_hat, _ = dirichlet_system(
        lambda x: A @ x, np.zeros(n), np.zeros(n), mask
    )
    H = np.column_stack([apply_hat(e) for e in np.eye(n)])
    np.testing.assert_allclose(H, H.T, atol=1e-12)
    assert np.linalg.eigvalsh(H).min() > 0


def test_dirichlet_system_shape_mismatch():
    with pytest.raises(ValueError):
        dirichlet_system(lambda x: x, np.zeros(3), np.zeros(4), np.zeros(3, bool))
