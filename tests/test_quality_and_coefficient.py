"""Mesh quality metrics and the variable-coefficient Poisson operator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import PartialAssemblyOperator, SerialReference
from repro.core import HymvOperator
from repro.fem import PoissonOperator
from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh, jittered_hex_mesh
from repro.mesh.quality import mesh_quality, scaled_jacobians
from repro.partition import build_partition
from repro.simmpi import run_spmd


# ----------------------------------------------------------------------------
# quality
# ----------------------------------------------------------------------------

def test_quality_perfect_on_uniform_grids():
    q = mesh_quality(box_hex_mesh(3, 3, 3))
    assert q.ok
    np.testing.assert_allclose(q.min_scaled_jacobian, 1.0, rtol=1e-12)
    np.testing.assert_allclose(q.max_aspect_ratio, 1.0, rtol=1e-12)


def test_quality_degrades_with_jitter_but_stays_valid():
    q0 = mesh_quality(jittered_hex_mesh(3, 3, 3, ElementType.HEX8, jitter=0.1))
    q1 = mesh_quality(jittered_hex_mesh(3, 3, 3, ElementType.HEX8, jitter=0.4))
    assert q0.ok and q1.ok
    assert q1.min_scaled_jacobian < q0.min_scaled_jacobian
    assert q1.max_aspect_ratio > q0.max_aspect_ratio


def test_quality_detects_inverted_element():
    mesh = box_tet_mesh(1, 1, 1)
    conn = mesh.conn.copy()
    conn[0] = conn[0][[0, 2, 1, 3]]  # invert one tet
    from repro.mesh.mesh import Mesh

    bad = Mesh(mesh.coords, conn, mesh.etype)
    q = mesh_quality(bad)
    assert q.n_inverted == 1
    assert not q.ok
    assert scaled_jacobians(bad)[0] < 0


def test_quality_anisotropic_aspect():
    mesh = box_hex_mesh(2, 2, 2, lengths=(1.0, 1.0, 5.0))
    q = mesh_quality(mesh)
    np.testing.assert_allclose(q.max_aspect_ratio, 5.0, rtol=1e-12)


# ----------------------------------------------------------------------------
# variable-coefficient Poisson
# ----------------------------------------------------------------------------

def _kappa(x):
    return 1.0 + 4.0 * (x[..., 0] > 0.5)  # material interface at x = 0.5


def test_constant_coefficient_scales_laplacian():
    mesh = box_tet_mesh(2, 2, 2, jitter=0.15)
    base = PoissonOperator().element_matrices(mesh.coords[mesh.conn], mesh.etype)
    op = PoissonOperator(
        coefficient=lambda x: np.full(x.shape[:-1], 2.5)
    )
    scaled = op.element_matrices(mesh.coords[mesh.conn], mesh.etype)
    np.testing.assert_allclose(scaled, 2.5 * base, atol=1e-12)


def test_coefficient_operator_symmetric_psd():
    mesh = box_hex_mesh(3, 3, 3)
    op = PoissonOperator(coefficient=_kappa)
    ke = op.element_matrices(mesh.coords[mesh.conn], mesh.etype)
    np.testing.assert_allclose(ke, np.swapaxes(ke, 1, 2), atol=1e-12)
    assert np.linalg.eigvalsh(ke).min() > -1e-10
    np.testing.assert_allclose(ke.sum(axis=2), 0.0, atol=1e-10)


@pytest.mark.parametrize("factory", [HymvOperator, PartialAssemblyOperator])
def test_distributed_coefficient_spmv_matches_serial(factory):
    mesh = box_tet_mesh(3, 3, 3, ElementType.TET10, jitter=0.15)
    op = PoissonOperator(coefficient=_kappa)
    part = build_partition(mesh, 3, method="graph")
    ref = SerialReference(mesh, op)
    rng = np.random.default_rng(4)
    x = rng.standard_normal(mesh.n_nodes)
    x_old = np.empty_like(x)
    x_old[part.old_of_new] = x
    y_ref = ref.spmv(x_old)[part.old_of_new]

    def prog(comm, lmesh, xo):
        A = factory(comm, lmesh, op)
        return A.apply_owned(xo)

    args = [
        (part.local(r), x[part.ranges[r, 0]: part.ranges[r, 1]])
        for r in range(3)
    ]
    res, _ = run_spmd(3, prog, rank_args=args)
    np.testing.assert_allclose(np.concatenate(res), y_ref, atol=1e-11)


def test_interface_problem_flux_continuity():
    """1-D-like interface sanity: with kappa = (1 | 5) split at x = 0.5
    and u fixed to 0/1 on the x faces, the discrete solution is piecewise
    linear with the analytic interface value."""

    mesh = box_hex_mesh(8, 2, 2)
    op = PoissonOperator(coefficient=_kappa)
    ref = SerialReference(mesh, op)
    x = mesh.coords[:, 0]
    left = np.flatnonzero(np.abs(x) < 1e-12)
    right = np.flatnonzero(np.abs(x - 1.0) < 1e-12)
    cons = np.concatenate([left, right])
    u0 = np.zeros(mesh.n_nodes)
    u0[right] = 1.0
    u = ref.solve_dirichlet(np.zeros(mesh.n_nodes), cons, u0)
    # exact: u = x * 2k2/(k1+k2)... flux continuity k1 u1' = k2 u2'
    # with k1=1 on [0,.5], k2=5 on [.5,1]: u(0.5) = (1/k1)/((1/k1)+(1/k2))
    u_mid_exact = (1.0 / 1.0) / (1.0 / 1.0 + 1.0 / 5.0)
    mid = np.flatnonzero(np.abs(x - 0.5) < 1e-12)
    np.testing.assert_allclose(u[mid], u_mid_exact, atol=1e-10)
