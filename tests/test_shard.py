"""Sharded solver tier: ring/router, SLO balancer, failover, harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.shard import ShardFaultPlan, ShardKill
from repro.obs.instrumentation import Instrumentation
from repro.obs.schema import validate_bench_doc, validate_shard_doc
from repro.serve import (
    BatchPolicy,
    DeadlineBatcher,
    OperatorCache,
    ProblemKey,
    RequestQueue,
    ServeRequest,
    ShardCluster,
    ShardRouter,
    SolverService,
)
from repro.serve.shard import HashRing
from repro.serve.shardload import (
    ShardWorkload,
    build_cluster,
    run_shard_suite,
    run_shard_workload,
    shard_suite_workloads,
    zipf_weights,
)
from repro.simmpi.cluster import VirtualCluster

KEY_A = ProblemKey(problem="poisson", nel=3, n_parts=2, etype="hex8", seed=0)
KEY_B = ProblemKey(problem="poisson", nel=4, n_parts=2, etype="tet4", seed=1)


def _keys(n):
    return [f"key-{i}" for i in range(n)]


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------


def test_ring_lookup_deterministic_and_valid():
    ring = HashRing(["s0", "s1", "s2"], vnodes=32)
    again = HashRing(["s2", "s0", "s1"], vnodes=32)  # order-independent
    for k in _keys(100):
        assert ring.lookup(k) == again.lookup(k)
        assert ring.lookup(k) in ("s0", "s1", "s2")


def test_ring_preference_distinct_and_prefix_stable():
    ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=16)
    for k in _keys(50):
        pref = ring.preference(k, 3)
        assert len(pref) == len(set(pref)) == 3
        assert pref[0] == ring.lookup(k)
        # asking for fewer replicas yields a prefix of the same order
        assert ring.preference(k, 2) == pref[:2]


def test_ring_preference_clamps_to_membership():
    ring = HashRing(["s0", "s1"], vnodes=8)
    assert sorted(ring.preference("k", 10)) == ["s0", "s1"]


def test_ring_remove_remaps_only_victims_keys():
    ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
    keys = _keys(300)
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("s2")
    moved = 0
    for k in keys:
        after = ring.lookup(k)
        if before[k] == "s2":
            assert after != "s2"
            moved += 1
        else:
            assert after == before[k]  # survivors' keys never move
    assert 0 < moved < len(keys)  # roughly K/N, never everything


def test_ring_add_moves_keys_only_to_new_node():
    ring = HashRing(["s0", "s1", "s2"], vnodes=64)
    keys = _keys(300)
    before = {k: ring.lookup(k) for k in keys}
    ring.add("s3")
    for k in keys:
        after = ring.lookup(k)
        assert after == before[k] or after == "s3"


def test_ring_membership_errors():
    ring = HashRing(["s0"], vnodes=4)
    with pytest.raises(ValueError):
        ring.add("s0")
    with pytest.raises(KeyError):
        ring.remove("nope")
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    empty = HashRing()
    with pytest.raises(LookupError):
        empty.lookup("k")


# ----------------------------------------------------------------------
# router: hotness-triggered replication
# ----------------------------------------------------------------------


def test_router_replicates_hot_keys_only():
    r = ShardRouter(["s0", "s1", "s2", "s3"], hot_threshold=3, max_replicas=2)
    assert len(r.targets(KEY_A)) == 1  # cold: primary only
    assert r.record(KEY_A) is False
    assert r.record(KEY_A) is False
    assert r.record(KEY_A) is True  # crosses threshold exactly once
    assert r.record(KEY_A) is False
    assert r.is_hot(KEY_A)
    hot = r.targets(KEY_A)
    assert len(hot) == 3 and len(set(hot)) == 3
    assert hot[0] == r.primary(KEY_A)
    # an unrelated key is untouched by KEY_A's heat
    assert len(r.targets(KEY_B)) == 1


def test_router_replication_report():
    r = ShardRouter(["s0", "s1", "s2"], hot_threshold=2, max_replicas=1)
    for _ in range(3):
        r.record(KEY_A)  # hot -> 2 targets
    r.record(KEY_B)  # cold -> 1 target
    rep = r.replication_report()
    assert rep["keys_seen"] == 2
    assert rep["replicated_keys"] == 1
    assert rep["replication_factor"] == pytest.approx(1.5)


def test_router_validation():
    with pytest.raises(ValueError):
        ShardRouter(["s0"], hot_threshold=0)
    with pytest.raises(ValueError):
        ShardRouter(["s0"], max_replicas=-1)


# ----------------------------------------------------------------------
# deadline-ordered batching
# ----------------------------------------------------------------------


def _req(rid, key=KEY_A, deadline=None, kind="spmv", tenant=None):
    return ServeRequest(
        rid=rid, key=key, kind=kind, seed=rid, arrival=float(rid) * 1e-6,
        deadline=deadline, tenant=tenant,
    )


def test_deadline_batcher_most_urgent_seeds_batch():
    q = RequestQueue(capacity=8)
    for r in (_req(0, deadline=None), _req(1, deadline=9.0),
              _req(2, deadline=1.0), _req(3, key=KEY_B, deadline=0.5)):
        assert q.submit(r)
    batch = DeadlineBatcher(BatchPolicy(max_batch=4)).next_batch(q)
    # rid 3 is the most urgent; only its key-group joins
    assert [r.rid for r in batch] == [3]
    # remaining requests kept FIFO order
    assert [r.rid for r in q.fifo()] == [0, 1, 2]


def test_deadline_batcher_degenerates_to_fifo_without_deadlines():
    q = RequestQueue(capacity=8)
    for rid in range(4):
        assert q.submit(_req(rid))
    batch = DeadlineBatcher(BatchPolicy(max_batch=8)).next_batch(q)
    assert [r.rid for r in batch] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# operator-cache tenant accounting
# ----------------------------------------------------------------------


def test_cache_tenant_hit_rates():
    cache = OperatorCache(capacity=2, obs=Instrumentation(rank=0))
    cache.get(KEY_A, tenants=["t0", "t1"])  # both miss (cold build)
    cache.get(KEY_A, tenants=["t0"])  # t0 hits the warm context
    stats = cache.tenant_stats()
    assert stats["t0"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}
    assert stats["t1"] == {"hits": 0, "misses": 1, "hit_rate": 0.0}
    assert cache.obs.counters["serve.cache.tenant.t0.hits"] == 1
    assert cache.obs.counters["serve.cache.tenant.t1.misses"] == 1


# ----------------------------------------------------------------------
# cluster: quota, spill/shed, coherence, failover
# ----------------------------------------------------------------------


def _mini_cluster(n_shards=2, *, tenant_quota=None, queue_capacity=8,
                  hot_threshold=2, max_replicas=1, shard_faults=None):
    w = ShardWorkload(
        name="mini",
        keys=(KEY_A, KEY_B),
        n_shards=n_shards,
        queue_capacity=queue_capacity,
        tenant_quota=tenant_quota,
        hot_threshold=hot_threshold,
        max_replicas=max_replicas,
        shard_faults=shard_faults,
    )
    return build_cluster(w)


def test_tenant_quota_sheds_over_limit():
    cluster, _, obs = _mini_cluster(tenant_quota=2)
    assert cluster.submit(_req(0, tenant="t0"), now=0.0)
    assert cluster.submit(_req(1, tenant="t0"), now=0.0)
    assert not cluster.submit(_req(2, tenant="t0"), now=0.0)  # over quota
    assert cluster.submit(_req(3, tenant="t1"), now=0.0)  # others unaffected
    assert obs.counters["shard.shed_tenant"] == 1
    # completing the work releases the quota
    disp = cluster.step(0.0)
    assert sum(d.outcome.batch_size for d in disp) > 0
    assert cluster.submit(_req(4, tenant="t0"), now=0.0)


def test_quota_released_on_deadline_expiry():
    cluster, _, obs = _mini_cluster(tenant_quota=1)
    assert cluster.submit(_req(0, tenant="t0", deadline=1e-9), now=0.0)
    assert not cluster.submit(_req(1, tenant="t0"), now=0.0)
    cluster.step(1.0)  # rid 0 expires -> quota slot frees
    assert cluster.submit(_req(2, tenant="t0"), now=1.0)
    assert obs.counters["shard.shed_tenant"] == 1


def test_full_queues_shed_and_count():
    cluster, _, obs = _mini_cluster(n_shards=1, queue_capacity=1)
    assert cluster.submit(_req(0), now=0.0)
    assert not cluster.submit(_req(1), now=0.0)  # single queue full
    assert obs.counters["shard.shed_full"] == 1
    assert obs.counters["shard.submitted"] == 2


def test_hot_key_spills_to_replica():
    cluster, _, obs = _mini_cluster(
        n_shards=2, queue_capacity=1, hot_threshold=1, max_replicas=1
    )
    # KEY_A is hot from its first request: both shards are eligible, so
    # the second submission lands on the other (off-primary) shard.
    assert cluster.submit(_req(0), now=0.0)
    assert cluster.submit(_req(1), now=0.0)
    assert obs.counters.get("shard.spills", 0) >= 1
    assert cluster.pending == 2


def test_coherent_invalidation_fans_out():
    cluster, _, obs = _mini_cluster(n_shards=2, hot_threshold=1,
                                    max_replicas=1)
    for _ in range(2):
        cluster.router.record(KEY_A)  # hot -> replicated on both shards
    shards = cluster.router.targets(KEY_A)
    assert len(shards) == 2
    caches = [cluster.shard_state(s).service.cache for s in shards]
    for c in caches:
        c.get(KEY_A)  # warm both replicas
        assert KEY_A in c
    caches[0].invalidate(KEY_A)
    # the drop propagated to the peer replica exactly once
    assert KEY_A not in caches[0]
    assert KEY_A not in caches[1]
    assert obs.counters["shard.coherent_invalidations"] == 1


def test_kill_fails_queued_work_over():
    plan = ShardFaultPlan(kills=(ShardKill("s0", at=0.5),))
    cluster, _, obs = _mini_cluster(n_shards=2, shard_faults=plan,
                                    hot_threshold=100)
    # string keys route fine (never dispatched here); pick some whose
    # primary is the victim and some owned by the survivor
    pool = [f"op-{i}" for i in range(64)]
    on_s0 = [k for k in pool if cluster.router.primary(k) == "s0"][:3]
    on_s1 = [k for k in pool if cluster.router.primary(k) == "s1"][:3]
    assert on_s0 and on_s1  # 64 keys always straddle both shards
    placed = 0
    for rid, key in enumerate(on_s0 + on_s1):
        assert cluster.submit(_req(rid, key=key), now=0.0)
        placed += 1
    queued_on_s0 = cluster.shard_state("s0").service.pending
    assert queued_on_s0 == len(on_s0)
    cluster.advance(1.0)  # kill fires
    assert not cluster.shard_state("s0").alive
    assert obs.counters["shard.kills"] == 1
    assert obs.counters["shard.failovers"] == queued_on_s0
    # every failed-over request is now queued on the survivor (roomy queue)
    assert cluster.shard_state("s1").service.pending == placed
    # the dead shard no longer owns any key
    assert cluster.router.shards == ("s1",)


def test_revive_restores_membership():
    plan = ShardFaultPlan(kills=(ShardKill("s0", at=0.5, revive_at=2.0),))
    cluster, _, obs = _mini_cluster(n_shards=2, shard_faults=plan)
    cluster.advance(1.0)
    assert cluster.router.shards == ("s1",)
    cluster.advance(3.0)
    assert cluster.shard_state("s0").alive
    assert cluster.router.shards == ("s0", "s1")
    assert obs.counters["shard.revives"] == 1


def test_shard_fault_plan_validation():
    with pytest.raises(ValueError):
        ShardKill("s0", at=-1.0)
    with pytest.raises(ValueError):
        ShardKill("s0", at=1.0, revive_at=0.5)
    with pytest.raises(ValueError):
        ShardFaultPlan(kills=(ShardKill("s0", at=0.1),
                              ShardKill("s0", at=0.2)))


def test_cluster_rejects_mismatched_services():
    router = ShardRouter(["s0", "s1"])
    cache = OperatorCache(capacity=2, obs=Instrumentation(rank=0))
    svc = SolverService(cache)
    with pytest.raises(ValueError):
        ShardCluster(router, {"s0": svc})


# ----------------------------------------------------------------------
# virtual cluster accounting
# ----------------------------------------------------------------------


def test_virtual_cluster_tracks_busy_time():
    vc = VirtualCluster()
    cache = OperatorCache(capacity=2, obs=Instrumentation(rank=0),
                          cluster=vc, cluster_name="s0")
    ctx, _ = cache.get(KEY_A)
    x = np.ones(ctx.n_dofs)
    ctx.apply_multi(x[:, None])
    assert "s0" in vc.names
    assert vc.busy_vtime("s0") > 0.0
    assert vc.total_busy_vtime() >= vc.busy_vtime("s0")
    assert vc.counters("s0")  # summed comm counters exist


# ----------------------------------------------------------------------
# harness: zipf weights, scenario runs, schema, determinism
# ----------------------------------------------------------------------


def test_zipf_weights_shape():
    w = zipf_weights(5, 1.2)
    assert w.shape == (5,)
    assert w.sum() == pytest.approx(1.0)
    assert all(a > b for a, b in zip(w, w[1:]))  # strictly rank-decreasing
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)


def _tiny_workload(**over):
    base = dict(
        name="tiny",
        keys=(KEY_A, KEY_B),
        n_shards=2,
        n_tenants=3,
        n_requests=24,
        rate_rps=200000.0,
        solve_frac=0.25,
        max_batch=4,
        queue_capacity=24,
        cache_capacity=2,
        hot_threshold=3,
        max_replicas=1,
    )
    base.update(over)
    return ShardWorkload(**base)


def test_tiny_workload_scenario_is_valid_and_conserves_requests():
    sc = run_shard_workload(_tiny_workload(), seed=7)
    req = sc["requests"]
    assert req["wrong_answers"] == 0
    assert req["submitted"] == 24
    assert req["submitted"] == (
        req["completed"] + req["rejected"] + req["shed_tenant"]
        + req["shed_deadline"] + req["failed"]
    )
    assert set(sc["shards"]) == {"s0", "s1"}
    assert sc["utilization"]["peak_to_mean"] >= 1.0
    assert sc["makespan_s"] > 0
    assert sum(sc["batch_histogram"].values()) > 0


def test_tiny_workload_deterministic():
    a = run_shard_workload(_tiny_workload(), seed=11)
    b = run_shard_workload(_tiny_workload(), seed=11)
    assert a == b
    c = run_shard_workload(_tiny_workload(), seed=12)
    assert c["latency_s"] != a["latency_s"]  # the seed actually matters


@pytest.fixture(scope="module")
def suite():
    """One smoke-suite run (the CI scenario set) shared by the e2e
    assertions below — the slow part happens once per module."""
    return run_shard_suite(seed=1234, smoke=True, verbose=False)


def test_kill_scenario_bitwise_and_failover(suite):
    """The acceptance scenario: a mid-run shard kill fails queued work
    over and every delivered answer stays bitwise-equal to the fault-free
    single-node reference (verified inside run_shard_workload)."""
    w = [w for w in shard_suite_workloads(seed=1234, smoke=True)
         if w.name == "shard-kill"][0]
    assert w.verify == "bitwise" and w.mode == "oracle"
    shard_doc, _ = suite
    sc = [s for s in shard_doc["scenarios"]
          if s["scenario"] == "shard-kill"][0]
    req = sc["requests"]
    assert req["wrong_answers"] == 0
    assert req["failovers"] > 0  # the kill hit live queued work
    assert req["completed"] == req["submitted"]  # nothing lost to the kill
    assert sc["shards"]["s1"]["alive"] is False
    assert sc["counters"]["shard.kills"] == 1


def test_suite_docs_validate(suite):
    shard_doc, bench_doc = suite
    validate_shard_doc(shard_doc)
    validate_bench_doc(bench_doc)
    names = [s["scenario"] for s in shard_doc["scenarios"]]
    assert names == ["zipf-hot", "tenant-storm", "shard-kill"]
    for sc in shard_doc["scenarios"]:
        assert sc["n_shards"] >= 4
        assert sc["requests"]["wrong_answers"] == 0
        assert sc["tenants"]  # per-tenant rows present
    # the bench projection carries the gated phases and counters
    cases = {c["case"] for c in bench_doc["results"]}
    assert cases == {"shard-zipf-hot", "shard-tenant-storm",
                     "shard-shard-kill"}
    for case in bench_doc["results"]:
        phases = set(case["phases"])
        assert "shard.latency.all" in phases
        assert "shard.latency.all.p99" in phases
        assert "shard.wrong_answers" in case["counters"]
        assert "shard.util_peak_to_mean_pct" in case["counters"]


def test_tenant_storm_clips_heavy_tenant(suite):
    shard_doc, _ = suite
    sc = [s for s in shard_doc["scenarios"]
          if s["scenario"] == "tenant-storm"][0]
    assert sc["requests"]["shed_tenant"] > 0  # admission control engaged
    # the heavy tenant is the one clipped; light tenants complete fully
    tenants = sc["tenants"]
    heavy = max(tenants, key=lambda t: tenants[t]["submitted"])
    assert tenants[heavy]["completed"] < tenants[heavy]["submitted"]
    assert any(
        t != heavy and tenants[t]["completed"] == tenants[t]["submitted"]
        for t in tenants
    )
    assert any("hit_rate" in row for row in tenants.values())


# ----------------------------------------------------------------------
# incremental (delta) updates on the serve/shard path
# ----------------------------------------------------------------------


def _small_delta():
    from repro.adapt import MeshDelta

    return MeshDelta(scale_elements=[0, 1], scale_values=[0.5, 0.5])


def test_cache_update_rekeys_in_place_preserving_lru():
    """OperatorCache.update re-fingerprints the live context instead of
    invalidate+rebuild: same object, new key, LRU position and tenant
    accounting untouched (an update is not a use)."""
    cache = OperatorCache(capacity=2, obs=Instrumentation(rank=0))
    ctx_a, _ = cache.get(KEY_A, tenants=["t0"])
    cache.get(KEY_B)  # B most recent; A is the LRU victim
    new_key, info = cache.update(KEY_A, _small_delta())
    assert info is not None and info["path"] == "patch"
    assert cache.peek(new_key) is ctx_a  # re-keyed, not rebuilt
    assert ctx_a.delta_version == 1
    assert KEY_A not in cache and cache.peek(KEY_A) is None
    assert cache.tenant_stats()["t0"] == {
        "hits": 0, "misses": 1, "hit_rate": 0.0,
    }
    assert cache.obs.counters["serve.cache.delta_updates"] == 1
    assert cache.obs.counters["serve.cache.delta_patches"] == 1
    # LRU position preserved: one more distinct key evicts the updated
    # context, not B
    key_c = ProblemKey(problem="poisson", nel=4, n_parts=2, etype="hex8",
                       seed=2)
    cache.get(key_c)
    assert new_key not in cache and KEY_B in cache and key_c in cache


def test_cache_update_miss_rekeys_without_building():
    cache = OperatorCache(capacity=2, obs=Instrumentation(rank=0))
    dropped = []
    cache.on_invalidate = dropped.append
    new_key, info = cache.update(KEY_A, _small_delta())
    assert info is None and len(cache) == 0  # nothing was built
    assert new_key.deltas and new_key.fingerprint() != KEY_A.fingerprint()
    assert cache.obs.counters["serve.cache.delta_misses"] == 1
    assert dropped == [KEY_A]  # replicas still told the old key is stale


def test_delta_update_invalidates_replicas_then_routes_fresh():
    """Delta-then-route: an update on one replica drops the stale peer
    via the coherence hook, the updated context serves the new key
    bitwise-identically to a fresh build, and a routed request for the
    new key completes — zero wrong answers."""
    from repro.serve.cache import SolverContext

    cluster, _, obs = _mini_cluster(n_shards=2, hot_threshold=1,
                                    max_replicas=1)
    for _ in range(2):
        cluster.router.record(KEY_A)  # hot -> replicated on both shards
    shards = cluster.router.targets(KEY_A)
    assert len(shards) == 2
    caches = [cluster.shard_state(s).service.cache for s in shards]
    for c in caches:
        c.get(KEY_A)  # warm both replicas

    new_key, info = caches[0].update(KEY_A, _small_delta())
    assert info is not None
    # the origin kept its (updated) context; the stale peer was dropped
    assert caches[0].peek(new_key) is not None
    assert KEY_A not in caches[0] and KEY_A not in caches[1]
    assert obs.counters["shard.coherent_invalidations"] == 1

    # the updated replica is bitwise the fresh post-update operator
    ctx = caches[0].peek(new_key)
    fresh = SolverContext(new_key)
    rng = np.random.default_rng(11)
    X = rng.standard_normal((ctx.n_dofs, 2))
    assert np.array_equal(
        ctx.apply_multi(X, mode="oracle")[0],
        fresh.apply_multi(X, mode="oracle")[0],
    )

    # routed serving continues on the new key with no failures
    assert cluster.submit(_req(0, key=new_key), now=0.0)
    disp = cluster.step(0.0)
    done = [c for d in disp for c in d.outcome.completions]
    assert [c.status for c in done] == ["ok"]
