"""Edge cases: empty ranks, tiny meshes, degenerate configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AssembledOperator, MatrixFreeOperator
from repro.core import HymvOperator
from repro.fem import PoissonOperator
from repro.mesh import box_hex_mesh
from repro.partition.interface import partition_from_elem_part
from repro.simmpi import run_spmd

OP = PoissonOperator()


def _partition_with_empty_rank(p=3):
    """Rank 1 gets no elements at all."""
    mesh = box_hex_mesh(2, 2, 4)
    elem_part = np.zeros(mesh.n_elements, dtype=np.int64)
    elem_part[mesh.n_elements // 2:] = 2
    return mesh, partition_from_elem_part(mesh, p, elem_part)


@pytest.mark.parametrize(
    "factory", [HymvOperator, MatrixFreeOperator, AssembledOperator]
)
def test_empty_rank_spmv(factory):
    mesh, part = _partition_with_empty_rank()
    assert part.local(1).n_local_elements == 0
    assert part.local(1).n_owned == 0
    rng = np.random.default_rng(0)
    x = rng.standard_normal(mesh.n_nodes)

    def prog(comm, lmesh, xo):
        A = factory(comm, lmesh, OP)
        return A.apply_owned(xo)

    args = [
        (part.local(r), x[part.ranges[r, 0]: part.ranges[r, 1]])
        for r in range(3)
    ]
    res, _ = run_spmd(3, prog, rank_args=args)
    y = np.concatenate(res)
    from repro.baselines import SerialReference

    ref = SerialReference(mesh, OP)
    x_old = np.empty_like(x)
    x_old[part.old_of_new] = x
    y_ref = ref.spmv(x_old)[part.old_of_new]
    np.testing.assert_allclose(y, y_ref, atol=1e-12)


def test_empty_rank_solve():
    from repro.fem.analytic import poisson_exact, poisson_forcing
    from repro.fem.dirichlet import DirichletBC
    from repro.harness import run_solve
    from repro.problems import ProblemSpec

    mesh = box_hex_mesh(4, 4, 4)
    elem_part = np.zeros(mesh.n_elements, dtype=np.int64)
    elem_part[mesh.n_elements // 2:] = 2  # rank 1 empty
    part = partition_from_elem_part(mesh, 3, elem_part)
    spec = ProblemSpec(
        name="poisson-empty-rank",
        mesh=mesh,
        partition=part,
        operator=OP,
        body_force=lambda x: poisson_forcing(x)[..., None],
        bcs=[DirichletBC(part.boundary_nodes_new(), 0.0, ndpn=1)],
        analytic=poisson_exact,
    )
    out = run_solve(spec, "hymv", precond="jacobi", rtol=1e-9)
    assert out.converged
    assert out.err_inf < 5e-3


def test_single_element_mesh_end_to_end():
    mesh = box_hex_mesh(1, 1, 1)
    part = partition_from_elem_part(mesh, 1, np.zeros(1, dtype=np.int64))

    def prog(comm):
        A = HymvOperator(comm, part.local(0), OP)
        x = np.ones(A.n_dofs_owned)
        y = A.apply_owned(x)
        return np.abs(y).max()

    res, _ = run_spmd(1, prog)
    assert res[0] < 1e-12  # constant in the Laplacian nullspace


def test_two_ranks_one_element_each():
    mesh = box_hex_mesh(1, 1, 2)
    part = partition_from_elem_part(
        mesh, 2, np.array([0, 1], dtype=np.int64)
    )
    rng = np.random.default_rng(1)
    x = rng.standard_normal(mesh.n_nodes)

    def prog(comm, lmesh, xo):
        A = HymvOperator(comm, lmesh, OP)
        # rank 1's elements are all dependent (the shared face)
        if comm.rank == 1:
            assert A.n_dependent == 1 and A.n_independent == 0
        return A.apply_owned(xo)

    args = [
        (part.local(r), x[part.ranges[r, 0]: part.ranges[r, 1]])
        for r in range(2)
    ]
    res, _ = run_spmd(2, prog, rank_args=args)
    from repro.baselines import SerialReference

    ref = SerialReference(mesh, OP)
    x_old = np.empty_like(x)
    x_old[part.old_of_new] = x
    y_ref = ref.spmv(x_old)[part.old_of_new]
    np.testing.assert_allclose(np.concatenate(res), y_ref, atol=1e-12)


def test_update_elements_out_of_range_is_safe():
    mesh = box_hex_mesh(2, 2, 2)
    part = partition_from_elem_part(
        mesh, 1, np.zeros(mesh.n_elements, dtype=np.int64)
    )

    def prog(comm):
        A = HymvOperator(comm, part.local(0), OP)
        with pytest.raises(IndexError):
            A.update_elements(np.array([99]))
        return True

    res, _ = run_spmd(1, prog)
    assert res[0]


def test_diagonal_positive_for_spd_operator():
    mesh = box_hex_mesh(3, 3, 3)
    part = partition_from_elem_part(
        mesh, 2,
        (np.arange(mesh.n_elements) * 2 // mesh.n_elements).astype(np.int64),
    )

    def prog(comm, lmesh):
        A = HymvOperator(comm, lmesh, OP)
        return A.diagonal_owned()

    res, _ = run_spmd(2, prog, rank_args=[(part.local(r),) for r in range(2)])
    d = np.concatenate(res)
    assert (d > 0).all()
    # cross-check against the serial diagonal
    from repro.baselines import SerialReference

    ref = SerialReference(mesh, OP)
    np.testing.assert_allclose(
        d, ref.A.diagonal()[part.old_of_new], atol=1e-12
    )
