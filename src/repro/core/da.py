"""Distributed array (DA): the partitioned vector of Fig. 2.

Data is stored per node as ``(n_total_nodes, ndpn)`` in the
``[pre-ghost | owned | post-ghost]`` layout, so ghost exchange operates on
contiguous node rows, and the solver sees the owned block as a flat dof
vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.maps import NodeMaps
from repro.core.scatter import CommMaps, gather, scatter
from repro.simmpi.communicator import Communicator

__all__ = ["DistributedArray"]


class DistributedArray:
    """A nodal vector distributed across ranks.

    Attributes
    ----------
    data:
        ``(n_total, ndpn)`` local storage (ghosts + owned).
    maps:
        The rank's :class:`~repro.core.maps.NodeMaps`.
    """

    __slots__ = ("data", "maps", "ndpn")

    def __init__(self, maps: NodeMaps, ndpn: int = 1, data: np.ndarray | None = None):
        self.maps = maps
        self.ndpn = ndpn
        if data is None:
            data = np.zeros((maps.n_total, ndpn))
        else:
            data = np.asarray(data, dtype=np.float64).reshape(maps.n_total, ndpn)
        self.data = data

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def owned(self) -> np.ndarray:
        """``(n_owned, ndpn)`` view of the owned block."""
        return self.data[self.maps.owned_slice]

    @property
    def owned_flat(self) -> np.ndarray:
        """Flat dof view of the owned block (shares memory)."""
        return self.owned.reshape(-1)

    def copy(self) -> "DistributedArray":
        return DistributedArray(self.maps, self.ndpn, self.data.copy())

    def zero(self) -> "DistributedArray":
        self.data[:] = 0.0
        return self

    def zero_ghosts(self) -> "DistributedArray":
        self.data[: self.maps.n_pre] = 0.0
        self.data[self.maps.n_pre + self.maps.n_owned :] = 0.0
        return self

    def set_owned(self, values: np.ndarray) -> "DistributedArray":
        self.owned[:] = np.asarray(values, dtype=np.float64).reshape(
            self.maps.n_owned, self.ndpn
        )
        return self

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------

    def update_ghosts(self, comm: Communicator, cmaps: CommMaps) -> None:
        """Blocking owner→ghost scatter (fills ghost copies)."""
        scatter(comm, self.data, cmaps)

    def accumulate_ghosts(self, comm: Communicator, cmaps: CommMaps) -> None:
        """Blocking ghost→owner gather (adds ghost partial sums into
        owners, leaving ghost entries stale)."""
        gather(comm, self.data, cmaps)

    # ------------------------------------------------------------------
    # distributed reductions (owned dofs only)
    # ------------------------------------------------------------------

    def dot(self, other: "DistributedArray", comm: Communicator) -> float:
        local = float(self.owned_flat @ other.owned_flat)
        return float(comm.allreduce(local))

    def norm2(self, comm: Communicator) -> float:
        return float(np.sqrt(self.dot(self, comm)))

    def norm_inf(self, comm: Communicator) -> float:
        local = float(np.abs(self.owned_flat).max()) if self.owned_flat.size else 0.0
        return float(comm.allreduce(local, op="max"))
