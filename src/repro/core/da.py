"""Distributed array (DA): the partitioned vector of Fig. 2.

Data is stored per node as ``(n_total_nodes, ndpn)`` in the
``[pre-ghost | owned | post-ghost]`` layout, so ghost exchange operates on
contiguous node rows, and the solver sees the owned block as a flat dof
vector.

:class:`DistributedMultiVector` is the ``k``-column generalization used by
the multi-RHS SPMV/solve paths (``repro.serve`` micro-batching): the same
node layout with a trailing column axis, exposing the two views the
batched hot path needs — node rows of width ``ndpn * k`` for a *single*
packed halo exchange covering all columns, and a flat ``(n_dofs, k)``
dof matrix whose strided columns feed the per-column element sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.core.maps import NodeMaps
from repro.core.scatter import CommMaps, gather, scatter
from repro.simmpi.communicator import Communicator

__all__ = ["DistributedArray", "DistributedMultiVector"]


class DistributedArray:
    """A nodal vector distributed across ranks.

    Attributes
    ----------
    data:
        ``(n_total, ndpn)`` local storage (ghosts + owned).
    maps:
        The rank's :class:`~repro.core.maps.NodeMaps`.
    """

    __slots__ = ("data", "maps", "ndpn")

    def __init__(self, maps: NodeMaps, ndpn: int = 1, data: np.ndarray | None = None):
        self.maps = maps
        self.ndpn = ndpn
        if data is None:
            data = np.zeros((maps.n_total, ndpn))
        else:
            data = np.asarray(data, dtype=np.float64).reshape(maps.n_total, ndpn)
        self.data = data

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def owned(self) -> np.ndarray:
        """``(n_owned, ndpn)`` view of the owned block."""
        return self.data[self.maps.owned_slice]

    @property
    def owned_flat(self) -> np.ndarray:
        """Flat dof view of the owned block (shares memory)."""
        return self.owned.reshape(-1)

    def copy(self) -> "DistributedArray":
        return DistributedArray(self.maps, self.ndpn, self.data.copy())

    def zero(self) -> "DistributedArray":
        self.data[:] = 0.0
        return self

    def zero_ghosts(self) -> "DistributedArray":
        self.data[: self.maps.n_pre] = 0.0
        self.data[self.maps.n_pre + self.maps.n_owned :] = 0.0
        return self

    def set_owned(self, values: np.ndarray) -> "DistributedArray":
        self.owned[:] = np.asarray(values, dtype=np.float64).reshape(
            self.maps.n_owned, self.ndpn
        )
        return self

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------

    def update_ghosts(self, comm: Communicator, cmaps: CommMaps) -> None:
        """Blocking owner→ghost scatter (fills ghost copies)."""
        scatter(comm, self.data, cmaps)

    def accumulate_ghosts(self, comm: Communicator, cmaps: CommMaps) -> None:
        """Blocking ghost→owner gather (adds ghost partial sums into
        owners, leaving ghost entries stale)."""
        gather(comm, self.data, cmaps)

    # ------------------------------------------------------------------
    # distributed reductions (owned dofs only)
    # ------------------------------------------------------------------

    def dot(self, other: "DistributedArray", comm: Communicator) -> float:
        local = float(self.owned_flat @ other.owned_flat)
        return float(comm.allreduce(local))

    def norm2(self, comm: Communicator) -> float:
        return float(np.sqrt(self.dot(self, comm)))

    def norm_inf(self, comm: Communicator) -> float:
        local = float(np.abs(self.owned_flat).max()) if self.owned_flat.size else 0.0
        return float(comm.allreduce(local, op="max"))


class DistributedMultiVector:
    """``k`` nodal vectors distributed across ranks, stored as one block.

    Storage is ``(n_total, ndpn, k)`` C-contiguous, i.e. each node row
    packs all ``ndpn * k`` scalars of that node contiguously.  That makes
    a multi-RHS ghost exchange a *single* halo exchange of node rows of
    width ``ndpn * k`` (column values interleaved per dof), amortizing
    per-message latency across all ``k`` right-hand sides, while
    ``dof_view[:, j]`` recovers column ``j`` as a strided flat dof vector
    with exactly the values a :class:`DistributedArray` would hold.
    """

    __slots__ = ("data", "maps", "ndpn", "k")

    def __init__(
        self,
        maps: NodeMaps,
        ndpn: int = 1,
        k: int = 1,
        data: np.ndarray | None = None,
    ):
        if k < 1:
            raise ValueError(f"need at least one column, got k={k}")
        self.maps = maps
        self.ndpn = int(ndpn)
        self.k = int(k)
        if data is None:
            data = np.zeros((maps.n_total, ndpn, k))
        else:
            data = np.ascontiguousarray(data, dtype=np.float64).reshape(
                maps.n_total, ndpn, k
            )
        self.data = data

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def node_view(self) -> np.ndarray:
        """``(n_total, ndpn * k)`` view: packed node rows for one halo
        exchange covering all columns (shares memory)."""
        return self.data.reshape(self.maps.n_total, self.ndpn * self.k)

    @property
    def dof_view(self) -> np.ndarray:
        """``(n_total * ndpn, k)`` view: flat local dofs by column; column
        ``j`` is a strided 1-D view bit-compatible with the flat data of a
        single :class:`DistributedArray` (shares memory)."""
        return self.data.reshape(self.maps.n_total * self.ndpn, self.k)

    @property
    def owned(self) -> np.ndarray:
        """``(n_owned, ndpn, k)`` view of the owned block."""
        return self.data[self.maps.owned_slice]

    @property
    def owned_matrix(self) -> np.ndarray:
        """``(n_owned * ndpn, k)`` view of the owned dofs by column."""
        return self.owned.reshape(self.maps.n_owned * self.ndpn, self.k)

    def zero(self) -> "DistributedMultiVector":
        self.data[:] = 0.0
        return self

    def set_owned(self, values: np.ndarray) -> "DistributedMultiVector":
        self.owned_matrix[:] = np.asarray(values, dtype=np.float64).reshape(
            self.maps.n_owned * self.ndpn, self.k
        )
        return self
