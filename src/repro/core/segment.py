"""Precomputed segment-sum scatter: zero-allocation EMV accumulation.

Accumulating element vectors into the local dof vector is the irregular
half of the SPMV hot path (Alg. 2 line 6).  The legacy
:func:`repro.util.arrays.scatter_add` re-derives the reduction structure
on every call — ``np.bincount`` walks the whole index set *and* allocates
an ``n_dofs``-sized scratch per sweep.  A :class:`SegmentScatter` instead
sorts the sweep's dof indices **once** at operator setup and stores:

* the stable permutation that groups equal dofs together (so each dof's
  contributions stay in original occurrence order),
* the segment boundaries of the sorted index array (CSR ``indptr``),
* the list of *touched* dofs (one per segment).

Every subsequent accumulation is then a fixed-structure segmented sum at
``O(batch)`` cost that writes only touched dofs and performs **zero heap
allocations** — all scratch is owned by the object.

Bitwise contract
----------------
The result is bit-for-bit identical to the legacy bincount path (and to
the ``np.add.at`` reference on a zero-initialised destination): each
segment is reduced sequentially in occurrence order starting from 0.0,
and the per-dof totals are added to the destination with a single
rounding — exactly the grouping ``out += np.bincount(...)`` produces.
``np.add.reduceat`` is deliberately *not* used: its inner reduction
order differs from sequential summation in the last ulp.

The fast path drives SciPy's CSR matvec kernel (a tight C loop summing
each row sequentially; the stored unit coefficients contribute each
value exactly, since ``1.0 * x`` is exact in IEEE-754).  When the
private ``_sparsetools`` module is unavailable the pure-NumPy fallback
reduces the sorted values with ``np.add.at`` over segment ids — same
bits, slower.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import INDEX_DTYPE

__all__ = ["SegmentScatter"]

try:  # SciPy >= 1.8 (private but stable; used by scipy.sparse itself)
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - exercised via force_fallback
    try:
        from scipy.sparse.sparsetools import csr_matvec as _csr_matvec
        from scipy.sparse.sparsetools import csr_matvecs as _csr_matvecs
    except ImportError:
        _csr_matvec = None
        _csr_matvecs = None


class SegmentScatter:
    """Reusable ``out[idx] += vals`` with precomputed reduction structure.

    Parameters
    ----------
    idx:
        Integer dof indices (any shape; flattened in C order).  The
        duplicate structure of this array is frozen at construction.
    force_fallback:
        Testing hook: use the pure-NumPy reduction even when the SciPy
        CSR kernel is available.

    Attributes
    ----------
    touched:
        Sorted unique dof indices this scatter writes (``int64``).
    """

    __slots__ = (
        "m",
        "touched",
        "indptr",
        "indices",
        "_data",
        "_seg",
        "_acc",
        "_segids",
        "_sorted",
        "_use_csr",
        "_multi",
    )

    def __init__(self, idx: np.ndarray, force_fallback: bool = False):
        flat = np.ascontiguousarray(idx, dtype=INDEX_DTYPE).reshape(-1)
        self.m = int(flat.size)
        self._use_csr = (_csr_matvec is not None) and not force_fallback
        # per-k (seg, acc, sorted) scratch for add_into_multi, cached on
        # first use so steady-state multi-RHS sweeps allocate nothing
        self._multi: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        if self.m == 0:
            self.touched = np.empty(0, dtype=INDEX_DTYPE)
            self.indptr = np.zeros(1, dtype=np.int32)
            self.indices = np.empty(0, dtype=np.int32)
            self._data = np.empty(0)
            self._seg = np.empty(0)
            self._acc = np.empty(0)
            self._segids = np.empty(0, dtype=INDEX_DTYPE)
            self._sorted = np.empty(0)
            return
        # stable sort keeps each dof's duplicates in occurrence order
        perm = np.argsort(flat, kind="stable")
        sorted_dofs = flat[perm]
        if sorted_dofs[0] < 0:
            raise IndexError(
                f"SegmentScatter: negative dof index {int(sorted_dofs[0])} "
                "in the scatter map"
            )
        starts = np.flatnonzero(np.diff(sorted_dofs)) + 1
        self.touched = sorted_dofs[np.concatenate([[0], starts])]
        k = self.touched.size
        # CSR structure of the (k x m) unit incidence: row t sums the
        # occurrences of touched[t]; int32 indices keep the C kernel on
        # its narrow fast path (m < 2^31 always holds for local batches)
        self.indptr = np.concatenate([[0], starts, [self.m]]).astype(np.int32)
        self.indices = perm.astype(np.int32)
        self._data = np.ones(self.m)
        self._seg = np.empty(k)
        self._acc = np.empty(k)
        if self._use_csr:
            self._segids = np.empty(0, dtype=INDEX_DTYPE)
            self._sorted = np.empty(0)
        else:
            # fallback structure: segment id of each sorted position
            lengths = np.diff(self.indptr).astype(INDEX_DTYPE)
            self._segids = np.repeat(
                np.arange(k, dtype=INDEX_DTYPE), lengths
            )
            self._sorted = np.empty(self.m)

    @property
    def n_touched(self) -> int:
        return int(self.touched.size)

    def add_into(self, out: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Accumulate ``vals`` (flattened) into ``out`` at the frozen
        index structure; returns ``out``.

        Allocation-free after construction.  Untouched entries of ``out``
        are not read or written (matching ``np.add.at``; the legacy
        bincount path also adds ``+0.0`` to untouched entries, which is
        only observable on ``-0.0``).
        """
        if self.m == 0:
            return out
        flat_vals = vals.reshape(-1)
        if flat_vals.size != self.m:
            raise ValueError(
                f"value size mismatch: got {flat_vals.size}, expected {self.m}"
            )
        # one comparison guards every clipped access below: ``touched``
        # is sorted and non-negative (checked at construction), so an
        # in-range maximum makes mode="clip" unable to mask a bad index
        if self.touched[-1] >= out.shape[0]:
            raise IndexError(
                f"SegmentScatter: destination too small (max touched dof "
                f"{int(self.touched[-1])}, out has {out.shape[0]} entries)"
            )
        self._seg.fill(0.0)
        if self._use_csr:
            _csr_matvec(
                self.n_touched,
                self.m,
                self.indptr,
                self.indices,
                self._data,
                flat_vals,
                self._seg,
            )
        else:
            np.take(flat_vals, self.indices, out=self._sorted, mode="clip")
            np.add.at(self._seg, self._segids, self._sorted)
        # single-rounding add per touched dof (bincount's grouping), via
        # gather / add / scatter on preallocated scratch; mode="clip"
        # skips the bounds check that would otherwise buffer the gather
        np.take(out, self.touched, out=self._acc, mode="clip")
        np.add(self._acc, self._seg, out=self._acc)
        out[self.touched] = self._acc
        return out

    def add_into_multi(self, out: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Accumulate a k-column value batch into a ``(n_dofs, k)``
        destination at the frozen index structure; returns ``out``.

        ``vals`` may have any shape whose C-order flattening of all but
        the trailing axis yields ``(m, k)`` rows aligned with the 1-D
        flatten (e.g. ``(E, nd, k)`` element products).  All k columns go
        through ONE CSR matvecs call — no per-column Python loop — and
        each column's arithmetic is the same occurrence-order segmented
        sum as :meth:`add_into` on that column alone (the C kernel sums
        each row's terms sequentially per column), so the result is
        bitwise identical per column to the 1-D path.

        Allocation-free once the per-``k`` scratch exists (first call
        for a given ``k`` allocates it).
        """
        k = int(vals.shape[-1])
        if out.ndim != 2 or out.shape[1] != k:
            raise ValueError(
                f"destination/value column mismatch: out has shape "
                f"{out.shape}, vals end in k={k}"
            )
        if self.m == 0:
            return out
        flat_vals = vals.reshape(self.m, k)
        if not flat_vals.flags.c_contiguous:
            flat_vals = np.ascontiguousarray(flat_vals)
        if self.touched[-1] >= out.shape[0]:
            raise IndexError(
                f"SegmentScatter: destination too small (max touched dof "
                f"{int(self.touched[-1])}, out has {out.shape[0]} entries)"
            )
        seg, acc, srt = self._multi_scratch(k)
        seg.fill(0.0)
        if self._use_csr:
            _csr_matvecs(
                self.n_touched,
                self.m,
                k,
                self.indptr,
                self.indices,
                self._data,
                flat_vals,
                seg,
            )
        else:
            np.take(flat_vals, self.indices, axis=0, out=srt, mode="clip")
            np.add.at(seg, self._segids, srt)
        np.take(out, self.touched, axis=0, out=acc, mode="clip")
        np.add(acc, seg, out=acc)
        out[self.touched] = acc
        return out

    def _multi_scratch(self, k: int):
        if k not in self._multi:
            kt = self.n_touched
            self._multi[k] = (
                np.empty((kt, k)),
                np.empty((kt, k)),
                np.empty((self.m if not self._use_csr else 0, k)),
            )
        return self._multi[k]
