"""HYMV core — the paper's primary contribution.

* :mod:`repro.core.maps` — Algorithm 1: E2L map construction and
  pre-/post-ghost classification from the E2G map and owned-node range.
* :mod:`repro.core.scatter` — LNSM / GNGM construction (one alltoall at
  setup) and the nonblocking ghost scatter / gather exchanges.
* :mod:`repro.core.da` — the distributed array with
  ``[pre-ghost | owned | post-ghost]`` layout (Fig. 2).
* :mod:`repro.core.hymv` — HYMV setup (compute + store element matrices),
  Algorithm 2 SPMV with communication/computation overlap, adaptive
  element updates (the XFEM use-case), diagonal and owned-block extraction
  for preconditioners.
* :mod:`repro.core.kernels` — batched dense EMV kernels (einsum and the
  paper's eq. 4 column-major sum-of-columns variant).
* :mod:`repro.core.flops` — flop/byte counters feeding Table I and Fig. 10.
"""

from repro.core.da import DistributedArray, DistributedMultiVector
from repro.core.hymv import HymvOperator
from repro.core.maps import NodeMaps, build_node_maps
from repro.core.scatter import (
    CommMaps,
    build_comm_maps,
    gather_begin,
    gather_end,
    scatter_begin,
    scatter_end,
)

__all__ = [
    "NodeMaps",
    "build_node_maps",
    "CommMaps",
    "build_comm_maps",
    "scatter_begin",
    "scatter_end",
    "gather_begin",
    "gather_end",
    "DistributedArray",
    "DistributedMultiVector",
    "HymvOperator",
]
