"""Communication maps (LNSM / GNGM) and ghost exchange operations.

* **LNSM** (local node scatter map): for each neighbouring rank, which of
  my *owned* local slots must be sent so the neighbour can fill its ghost
  copies before an SPMV.
* **GNGM** (ghost node gather map): the inverse pattern — after the
  elemental products, my ghost slots hold partial sums belonging to their
  owners and are shipped back to be accumulated.

Both maps are built once at setup time from a single ``alltoall`` of ghost
id lists (paper §IV-D) and then drive nonblocking ``isend``/``irecv``
pairs whose completion the SPMV overlaps with independent-element compute.

The builder takes an arbitrary ghost id list, so the matrix-assembled
baseline reuses it for its (larger) matrix halo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.maps import NodeMaps
from repro.simmpi.communicator import Communicator, Request
from repro.util.arrays import INDEX_DTYPE, as_index

__all__ = [
    "SCATTER_TAG",
    "GATHER_TAG",
    "CommMaps",
    "HaloExchange",
    "build_comm_maps",
    "scatter_begin",
    "scatter_end",
    "gather_begin",
    "gather_end",
    "scatter",
    "gather",
]

#: message tags of the two halo-exchange directions (public so fault
#: plans can target the ghost scatter / gather selectively)
SCATTER_TAG = 101
GATHER_TAG = 102
_SCATTER_TAG = SCATTER_TAG
_GATHER_TAG = GATHER_TAG


@dataclass
class CommMaps:
    """Per-rank communication schedule.

    ``send_ranks[k]`` needs my owned slots ``send_slots[k]`` (LNSM);
    ``recv_ranks[k]`` owns my ghost slots ``recv_slots[k]`` (GNGM).
    Slot arrays index into the local ``[pre | owned | post]`` layout.
    """

    send_ranks: list[int] = field(default_factory=list)
    send_slots: list[np.ndarray] = field(default_factory=list)
    recv_ranks: list[int] = field(default_factory=list)
    recv_slots: list[np.ndarray] = field(default_factory=list)

    @property
    def n_neighbors(self) -> int:
        return len(set(self.send_ranks) | set(self.recv_ranks))

    def send_volume(self, ndpn: int = 1, itemsize: int = 8) -> int:
        """Bytes sent per scatter (== bytes received per gather)."""
        return sum(s.size for s in self.send_slots) * ndpn * itemsize


def build_comm_maps(
    comm: Communicator,
    maps: NodeMaps,
    ghost_ids: np.ndarray | None = None,
    ranges: np.ndarray | None = None,
) -> CommMaps:
    """Construct LNSM/GNGM with one alltoall of ghost id lists.

    Parameters
    ----------
    comm:
        The rank's communicator (all ranks must call this collectively).
    maps:
        Node maps of this rank (provides the default ghost list and the
        global→local slot translation).
    ghost_ids:
        Override the ghost id list (the assembled baseline passes its
        matrix halo here).  Defaults to the union of pre- and post-ghosts.
    ranges:
        ``(p, 2)`` owned ranges of all ranks; gathered if not given.
    """
    if ghost_ids is None:
        ghost_ids = np.concatenate([maps.ghost_pre, maps.ghost_post])
    ghost_ids = np.unique(as_index(ghost_ids))

    if ranges is None:
        ranges = np.asarray(
            comm.allgather((maps.n_begin, maps.n_end)), dtype=INDEX_DTYPE
        )
    ends = ranges[:, 1]
    owners = np.searchsorted(ends, ghost_ids, side="right")

    # ship each owner the (sorted) list of its nodes I need
    wanted: list[np.ndarray | None] = [None] * comm.size
    for r in np.unique(owners):
        wanted[int(r)] = ghost_ids[owners == r]
    requests = comm.alltoall(wanted)

    out = CommMaps()
    for r, ids in enumerate(requests):
        if r == comm.rank or ids is None or ids.size == 0:
            continue
        out.send_ranks.append(r)
        out.send_slots.append(maps.global_to_local(ids))
    for r in np.unique(owners):
        ids = ghost_ids[owners == r]
        out.recv_ranks.append(int(r))
        out.recv_slots.append(maps.global_to_local(ids))
    return out


class HaloExchange:
    """Packed-buffer halo exchange, built once and reused across SPMVs.

    The module-level ``scatter_*``/``gather_*`` functions fancy-index a
    fresh per-neighbor copy out of ``data`` for every message; a
    ``HaloExchange`` instead concatenates each direction's slot arrays at
    setup and packs all outgoing values with a single ``np.take(...,
    out=)`` into a preallocated contiguous buffer, then sends per-neighbor
    slices of it.  The gather accumulation likewise runs through a
    preallocated gather/add/scatter scratch instead of an allocating
    fancy ``+=``.  Message partners, ordering, payload bytes and the
    accumulation arithmetic are unchanged, so results are bitwise
    identical to the legacy functions.

    One instance per (operator, ndpn); not thread-safe, and at most one
    exchange per direction may be in flight at a time (the pack buffers
    are reused — fine under simmpi, whose ``isend`` copies payloads).
    """

    __slots__ = (
        "cmaps",
        "ndpn",
        "send_all",
        "send_offsets",
        "recv_all",
        "recv_offsets",
        "_max_slot",
        "_sbuf",
        "_gbuf",
        "_acc",
    )

    def __init__(self, cmaps: CommMaps, ndpn: int):
        self.cmaps = cmaps
        self.ndpn = int(ndpn)

        def _concat(slot_lists: list[np.ndarray]):
            sizes = [s.size for s in slot_lists]
            offsets = np.zeros(len(sizes) + 1, dtype=INDEX_DTYPE)
            np.cumsum(sizes, out=offsets[1:])
            if slot_lists:
                flat = np.concatenate(slot_lists).astype(INDEX_DTYPE)
            else:
                flat = np.empty(0, dtype=INDEX_DTYPE)
            return flat, offsets

        self.send_all, self.send_offsets = _concat(cmaps.send_slots)
        self.recv_all, self.recv_offsets = _concat(cmaps.recv_slots)
        # the packs below use mode="clip"; validate the frozen slot maps
        # once here and the data length once per exchange, so a corrupt
        # map raises instead of silently clipping to wrong slots
        for name, flat in (("send", self.send_all), ("recv", self.recv_all)):
            if flat.size and int(flat.min()) < 0:
                raise IndexError(f"HaloExchange: negative {name} slot")
        self._max_slot = max(
            int(self.send_all.max()) if self.send_all.size else -1,
            int(self.recv_all.max()) if self.recv_all.size else -1,
        )
        self._sbuf = np.empty((self.send_all.size, self.ndpn))
        self._gbuf = np.empty((self.recv_all.size, self.ndpn))
        self._acc = np.empty((self.send_all.size, self.ndpn))

    # -- scatter: owner values -> ghost copies -----------------------------

    def scatter_begin(self, comm: Communicator, data: np.ndarray) -> list[Request]:
        """Pack all owned send values and post the ghost-fill exchange."""
        if self._max_slot >= data.shape[0]:
            raise IndexError(
                f"HaloExchange: data has {data.shape[0]} slots, "
                f"map references slot {self._max_slot}"
            )
        if self.send_all.size:
            np.take(data, self.send_all, axis=0, out=self._sbuf, mode="clip")
        off = self.send_offsets
        for k, rank in enumerate(self.cmaps.send_ranks):
            comm.isend(self._sbuf[off[k]:off[k + 1]], rank, tag=_SCATTER_TAG)
        return [comm.irecv(rank, tag=_SCATTER_TAG) for rank in self.cmaps.recv_ranks]

    def scatter_end(
        self, comm: Communicator, data: np.ndarray, reqs: list[Request]
    ) -> None:
        for slots, req in zip(self.cmaps.recv_slots, reqs):
            data[slots] = comm.wait(req)

    def scatter(self, comm: Communicator, data: np.ndarray) -> None:
        self.scatter_end(comm, data, self.scatter_begin(comm, data))

    # -- gather: ghost partial sums -> owner accumulation ------------------

    def gather_begin(self, comm: Communicator, data: np.ndarray) -> list[Request]:
        """Pack all ghost partial sums and post the reverse exchange."""
        if self._max_slot >= data.shape[0]:
            raise IndexError(
                f"HaloExchange: data has {data.shape[0]} slots, "
                f"map references slot {self._max_slot}"
            )
        if self.recv_all.size:
            np.take(data, self.recv_all, axis=0, out=self._gbuf, mode="clip")
        off = self.recv_offsets
        for k, rank in enumerate(self.cmaps.recv_ranks):
            comm.isend(self._gbuf[off[k]:off[k + 1]], rank, tag=_GATHER_TAG)
        return [comm.irecv(rank, tag=_GATHER_TAG) for rank in self.cmaps.send_ranks]

    def gather_end(
        self, comm: Communicator, data: np.ndarray, reqs: list[Request]
    ) -> None:
        off = self.send_offsets
        for k, (slots, req) in enumerate(zip(self.cmaps.send_slots, reqs)):
            recv = comm.wait(req)
            acc = self._acc[off[k]:off[k + 1]]
            np.take(data, slots, axis=0, out=acc, mode="clip")
            np.add(acc, recv, out=acc)
            data[slots] = acc

    def gather(self, comm: Communicator, data: np.ndarray) -> None:
        self.gather_end(comm, data, self.gather_begin(comm, data))


# ----------------------------------------------------------------------------
# scatter: owner values -> ghost copies (read halo before SPMV)
# ----------------------------------------------------------------------------

def scatter_begin(
    comm: Communicator, data: np.ndarray, cmaps: CommMaps
) -> list[Request]:
    """Post the ghost-fill exchange for ``data`` (``(n_total, ndpn)``)."""
    for rank, slots in zip(cmaps.send_ranks, cmaps.send_slots):
        comm.isend(data[slots], rank, tag=_SCATTER_TAG)
    return [comm.irecv(rank, tag=_SCATTER_TAG) for rank in cmaps.recv_ranks]


def scatter_end(
    comm: Communicator, data: np.ndarray, cmaps: CommMaps, reqs: list[Request]
) -> None:
    """Complete the ghost fill: copy received owner values into ghosts."""
    for slots, req in zip(cmaps.recv_slots, reqs):
        data[slots] = comm.wait(req)


def scatter(comm: Communicator, data: np.ndarray, cmaps: CommMaps) -> None:
    scatter_end(comm, data, cmaps, scatter_begin(comm, data, cmaps))


# ----------------------------------------------------------------------------
# gather: ghost partial sums -> owner accumulation (after SPMV)
# ----------------------------------------------------------------------------

def gather_begin(
    comm: Communicator, data: np.ndarray, cmaps: CommMaps
) -> list[Request]:
    """Post the reverse exchange shipping ghost contributions to owners."""
    for rank, slots in zip(cmaps.recv_ranks, cmaps.recv_slots):
        comm.isend(data[slots], rank, tag=_GATHER_TAG)
    return [comm.irecv(rank, tag=_GATHER_TAG) for rank in cmaps.send_ranks]


def gather_end(
    comm: Communicator, data: np.ndarray, cmaps: CommMaps, reqs: list[Request]
) -> None:
    """Accumulate the received contributions into my owned slots."""
    for slots, req in zip(cmaps.send_slots, reqs):
        data[slots] += comm.wait(req)


def gather(comm: Communicator, data: np.ndarray, cmaps: CommMaps) -> None:
    gather_end(comm, data, cmaps, gather_begin(comm, data, cmaps))
