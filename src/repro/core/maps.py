"""Algorithm 1: E2L map construction and ghost classification.

Given the partition-agnostic inputs the paper requires (§IV-A) — the E2G
map and the owned range ``[N_begin, N_end)`` — this derives:

* the sorted pre-ghost (ids below the range) and post-ghost (ids above)
  node lists,
* the E2L map into the ``[pre | owned | post]`` local layout (Fig. 2),
* the independent / dependent element split used for overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.arrays import INDEX_DTYPE, as_index

__all__ = ["NodeMaps", "build_node_maps"]


@dataclass
class NodeMaps:
    """Local node numbering of one partition.

    Local slot layout: ``[0, n_pre)`` pre-ghosts, ``[n_pre,
    n_pre + n_owned)`` owned nodes (in global order), then post-ghosts.
    """

    n_begin: int
    n_end: int
    ghost_pre: np.ndarray  # sorted global ids < n_begin
    ghost_post: np.ndarray  # sorted global ids >= n_end
    e2l: np.ndarray  # (E, n) local slots
    independent: np.ndarray  # local element indices, all-owned nodes
    dependent: np.ndarray  # local element indices touching ghosts

    @property
    def n_owned(self) -> int:
        return self.n_end - self.n_begin

    @property
    def n_pre(self) -> int:
        return int(self.ghost_pre.size)

    @property
    def n_post(self) -> int:
        return int(self.ghost_post.size)

    @property
    def n_total(self) -> int:
        return self.n_pre + self.n_owned + self.n_post

    @property
    def owned_slice(self) -> slice:
        return slice(self.n_pre, self.n_pre + self.n_owned)

    def local_to_global(self) -> np.ndarray:
        """Global id of every local slot."""
        return np.concatenate(
            [
                self.ghost_pre,
                np.arange(self.n_begin, self.n_end, dtype=INDEX_DTYPE),
                self.ghost_post,
            ]
        )

    def global_to_local(self, gids: np.ndarray) -> np.ndarray:
        """Local slots of global ids (must be owned or ghost here)."""
        gids = as_index(gids)
        out = np.empty(gids.shape, dtype=INDEX_DTYPE)
        pre = gids < self.n_begin
        post = gids >= self.n_end
        owned = ~(pre | post)
        out[owned] = self.n_pre + gids[owned] - self.n_begin
        if pre.any():
            idx = np.searchsorted(self.ghost_pre, gids[pre])
            if (idx >= self.n_pre).any() or (
                self.ghost_pre[idx] != gids[pre]
            ).any():
                raise KeyError("global id is not a pre-ghost of this rank")
            out[pre] = idx
        if post.any():
            idx = np.searchsorted(self.ghost_post, gids[post])
            if (idx >= self.n_post).any() or (
                self.ghost_post[idx] != gids[post]
            ).any():
                raise KeyError("global id is not a post-ghost of this rank")
            out[post] = self.n_pre + self.n_owned + idx
        return out


def build_node_maps(e2g: np.ndarray, n_begin: int, n_end: int) -> NodeMaps:
    """Algorithm 1 (vectorized): construct the E2L map.

    Parameters
    ----------
    e2g:
        ``(E_local, n_nodes_per_elem)`` global node ids.
    n_begin, n_end:
        Half-open owned global node range of this rank.
    """
    e2g = as_index(e2g)
    flat = e2g.reshape(-1)
    pre_mask = flat < n_begin
    post_mask = flat >= n_end
    ghost_pre = np.unique(flat[pre_mask])
    ghost_post = np.unique(flat[post_mask])

    n_pre = ghost_pre.size
    n_owned = n_end - n_begin

    e2l_flat = np.empty_like(flat)
    owned_mask = ~(pre_mask | post_mask)
    e2l_flat[owned_mask] = n_pre + flat[owned_mask] - n_begin
    e2l_flat[pre_mask] = np.searchsorted(ghost_pre, flat[pre_mask])
    e2l_flat[post_mask] = (
        n_pre + n_owned + np.searchsorted(ghost_post, flat[post_mask])
    )
    e2l = e2l_flat.reshape(e2g.shape)

    ghost_any = (pre_mask | post_mask).reshape(e2g.shape).any(axis=1)
    dependent = np.flatnonzero(ghost_any).astype(INDEX_DTYPE)
    independent = np.flatnonzero(~ghost_any).astype(INDEX_DTYPE)

    return NodeMaps(
        n_begin=int(n_begin),
        n_end=int(n_end),
        ghost_pre=ghost_pre,
        ghost_post=ghost_post,
        e2l=e2l,
        independent=independent,
        dependent=dependent,
    )
