"""Batched dense elemental matrix-vector (EMV) kernels.

The whole point of HYMV: the SPMV inner loop is *dense local linear
algebra* over contiguous element batches instead of irregular CSR
indexing.  Two kernels are provided:

* ``einsum`` — batched dense matvec, the default.
* ``columns`` — the paper's eq. (4): the element matrix is traversed
  column-major and the product formed as a sum of scaled columns (the
  layout the paper vectorizes with AVX512/OpenMP-SIMD).  Kept as an
  ablation to compare kernel formulations.

Both kernels accept ``out=`` (and ``columns`` a preallocated ``tmp=``
and an optional column-major matrix batch ``columns=``) so the operator
hot path can run allocation-free against an :class:`EmvWorkspace`.

Multi-RHS execution modes
-------------------------
A multivector batch ``ue`` of shape ``(E, nd, k)`` can be processed two
ways, selected by ``mode``:

* ``"oracle"`` — per-column single-RHS kernel calls: column ``j`` of the
  result is **bitwise identical** to the single-RHS product of column
  ``j``.  This is the verification reference the serve micro-batcher's
  answer-independence contract stands on.
* ``"gemm"`` — the BLAS3 fast path: the whole ``(E, nd, k)`` block is
  computed with ONE batched ``np.matmul`` (a dense GEMM per element over
  the ``(nd, k)`` column block — the distributed matrix-multivector
  formulation of Panigrahi et al., arXiv:2208.07129).  BLAS may
  accumulate each dot in a different order than the gemv path, so the
  result agrees with the oracle only to a derived rounding bound
  (:func:`gemm_equivalence_rtol`), never bitwise.
* ``"auto"`` — ``gemm`` when ``k >= k_min`` (default
  :data:`DEFAULT_K_MIN`; calibrate with the kernels microbench), else
  ``oracle``.  Resolved by :func:`resolve_mode`.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import scatter_add

__all__ = [
    "emv_einsum",
    "emv_columns",
    "EMV_KERNELS",
    "EMV_MODES",
    "DEFAULT_K_MIN",
    "EmvWorkspace",
    "gather_element_vectors",
    "accumulate_element_vectors",
    "gemm_equivalence_rtol",
    "resolve_mode",
]

#: recognized multi-RHS execution modes
EMV_MODES = ("oracle", "gemm", "auto")

#: conservative default crossover for ``mode="auto"``: GEMM is selected
#: for k >= DEFAULT_K_MIN columns.  The kernels microbench
#: (``python -m repro.harness bench --suite kernels``) measures the real
#: crossover on the current machine and writes it into
#: ``BENCH_kernels.json`` as ``config.gemm_k_min_crossover`` so serving
#: deployments can load a calibrated threshold instead of this constant.
DEFAULT_K_MIN = 8


def resolve_mode(mode: str, k: int, k_min: int | None = None) -> str:
    """Resolve an execution mode to ``"oracle"`` or ``"gemm"``.

    ``"auto"`` picks ``"gemm"`` when ``k >= k_min`` (``k_min`` defaults
    to :data:`DEFAULT_K_MIN`); explicit modes pass through unchanged.
    """
    if mode not in EMV_MODES:
        raise ValueError(
            f"unknown EMV mode {mode!r} (expected one of {EMV_MODES})"
        )
    if mode != "auto":
        return mode
    threshold = DEFAULT_K_MIN if k_min is None else int(k_min)
    return "gemm" if k >= threshold else "oracle"


def gemm_equivalence_rtol(
    nd: int, k: int = 1, n_accum: int | None = None, dtype=np.float64
) -> float:
    """Derived (not hand-tuned) bound on the GEMM-vs-oracle difference.

    Each output dof is an accumulation of at most ``n_accum`` elemental
    contributions, each a dot product of length ``nd``.  Sequential
    summation of ``L`` terms carries a forward error of at most
    ``gamma_L * sum|terms|`` with ``gamma_L ~= L * eps``; the GEMM and
    gemv paths are two such orderings, so their difference is bounded by
    ``2 * gamma_L`` relative to the *magnitude* sum ``|K| |u|`` (the
    product with all operands replaced by their absolute values).  The
    ``k`` term adds headroom for taking the max over the ``k``
    independent columns.  ``n_accum`` defaults to ``nd`` (the dense
    element-batch case).
    """
    eps = float(np.finfo(dtype).eps)
    length = int(nd) + int(n_accum if n_accum is not None else nd)
    return 2.0 * (length + int(k)) * eps


def emv_einsum(
    ke: np.ndarray,
    ue: np.ndarray,
    out: np.ndarray | None = None,
    mode: str = "oracle",
) -> np.ndarray:
    """``ve[e] = Ke[e] @ ue[e]`` over the whole batch at once (batched
    BLAS gemv via ``matmul``).

    With ``out=`` the product is written into the given ``(E, nd)``
    buffer (viewed as ``(E, nd, 1)``) with no heap allocation; the
    result bits are identical either way.

    A multivector batch ``ue`` of shape ``(E, nd, k)`` is accepted and
    produces the ``(E, nd, k)`` products.  Under ``mode="oracle"`` (the
    default) each column is computed by the exact single-RHS kernel call
    on a contiguous copy, so ``emv_einsum(ke, ue)[:, :, j]`` is bitwise
    identical to ``emv_einsum(ke, ue[:, :, j])``.  Under ``mode="gemm"``
    the whole block is ONE batched ``np.matmul`` — a dense
    ``(nd, nd) @ (nd, k)`` GEMM per element — which reuses each loaded
    ``Ke`` row across all k columns (BLAS3 arithmetic intensity) but
    agrees with the oracle only to :func:`gemm_equivalence_rtol`.
    ``mode`` is ignored for 2-D ``ue`` (single RHS has one ordering).
    """
    if ue.ndim == 3:
        if resolve_mode(mode, ue.shape[2]) == "gemm":
            return np.matmul(ke, ue, out=out)
        return _emv_multi(emv_einsum, ke, ue, out)
    if out is None:
        return np.matmul(ke, ue[:, :, None])[:, :, 0]
    np.matmul(ke, ue[:, :, None], out=out[:, :, None])
    return out


def emv_columns(
    ke: np.ndarray,
    ue: np.ndarray,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
    columns: np.ndarray | None = None,
    mode: str = "oracle",
) -> np.ndarray:
    """Column-major sum-of-scaled-columns EMV (paper eq. 4).

    ``ve = sum_j Ke[:, j] * ue[j]`` — each term is a contiguous column
    streamed through a fused multiply-add, which is how the paper's SIMD
    kernel is written.

    Parameters
    ----------
    out, tmp:
        Optional preallocated ``(E, nd)`` buffers; with both given the
        kernel allocates nothing.
    columns:
        Optional column-major copy of the matrix batch with shape
        ``(nd, E, nd)`` where ``columns[j] == ke[:, :, j]`` contiguous.
        The strided column reads of ``ke`` are this kernel's bandwidth
        bottleneck (a full cache line is fetched per double); streaming
        the precomputed contiguous columns instead is the paper's SIMD
        layout.  The multiply operands and the add order are unchanged,
        so the result is bitwise identical with or without it.
    mode:
        Multi-RHS execution mode (see module docstring).  ``"gemm"``
        computes the 3-D batch with one batched ``np.matmul`` — the
        column formulation degenerates to a GEMM when the right operand
        is a block, so there is no separate column-major BLAS3 variant.
    """
    if ue.ndim == 3:
        if resolve_mode(mode, ue.shape[2]) == "gemm":
            return np.matmul(ke, ue, out=out)

        # per-column single-RHS calls (see emv_einsum): bitwise identity
        # per column is the contract the serve micro-batcher relies on
        def _single(ke_, ue_, out_=None):
            return emv_columns(ke_, ue_, out=out_, tmp=tmp, columns=columns)

        return _emv_multi(_single, ke, ue, out)
    nd = ke.shape[2]
    col = (lambda j: columns[j]) if columns is not None else (lambda j: ke[:, :, j])
    if out is None:
        ve = col(0) * ue[:, 0, None]
        for j in range(1, nd):
            ve += col(j) * ue[:, j, None]
        return ve
    # einsum instead of a broadcast multiply: a length-1 (0-stride)
    # operand sends the ufunc machinery through its 64 KiB buffered
    # iterator, which would be the hot path's only heap allocation.
    # The per-element arithmetic is the same single multiply — bitwise
    # identical to the broadcast form.
    np.einsum("en,e->en", col(0), ue[:, 0], out=out)
    if tmp is None:
        for j in range(1, nd):
            out += col(j) * ue[:, j, None]
        return out
    for j in range(1, nd):
        np.einsum("en,e->en", col(j), ue[:, j], out=tmp)
        out += tmp
    return out


def _emv_multi(single, ke, ue, out):
    """Apply a single-RHS EMV kernel column by column over an
    ``(E, nd, k)`` multivector batch.

    Each column is copied contiguous before the kernel call so the
    arithmetic runs on exactly the operands the single-RHS path sees
    (bitwise contract); the strided write-back is a pure copy.
    """
    if out is None:
        out = np.empty_like(ue)
    for j in range(ue.shape[2]):
        out[:, :, j] = single(ke, np.ascontiguousarray(ue[:, :, j]))
    return out


EMV_KERNELS = {"einsum": emv_einsum, "columns": emv_columns}


class EmvWorkspace:
    """Preallocated scratch for the EMV sweep hot path (Alg. 2).

    One workspace per operator, sized for the *largest* sweep (all local
    elements); each sweep takes a leading-slice view, so the independent
    and dependent sweeps share the same memory.  Holds:

    * ``ue`` — gathered element input vectors, ``(n_elements, nd)``;
    * ``ve`` — elemental products, same shape;
    * ``tmp`` — per-column FMA scratch for the ``columns`` kernel.

    The GEMM multi-RHS path widens the scratch to ``(n_elements, nd, k)``
    pairs, cached per ``k`` on first use (:meth:`multi_views`) so a
    steady-state sweep over a repeating batch width allocates nothing.
    """

    __slots__ = ("n_elements", "nd", "ue", "ve", "_tmp", "_multi")

    def __init__(self, n_elements: int, nd: int):
        self.n_elements = int(n_elements)
        self.nd = int(nd)
        self.ue = np.empty((self.n_elements, self.nd))
        self.ve = np.empty((self.n_elements, self.nd))
        self._tmp: np.ndarray | None = None  # columns kernel only
        self._multi: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def tmp(self) -> np.ndarray:
        """Per-column FMA scratch, allocated on first use (the einsum
        kernel never touches it — keep its cache footprint at zero)."""
        if self._tmp is None:
            self._tmp = np.empty((self.n_elements, self.nd))
        return self._tmp

    def views(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Leading-slice views ``(ue, ve)`` for a sweep of ``n``
        elements."""
        return self.ue[:n], self.ve[:n]

    def multi_views(self, n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Leading-slice views ``(ue, ve)`` of ``(n, nd, k)`` multivector
        scratch for a GEMM sweep of ``n`` elements over ``k`` columns.

        The full-size ``(n_elements, nd, k)`` buffers are allocated on
        the first call for a given ``k`` and reused afterwards.
        """
        if k not in self._multi:
            self._multi[k] = (
                np.empty((self.n_elements, self.nd, k)),
                np.empty((self.n_elements, self.nd, k)),
            )
        ue, ve = self._multi[k]
        return ue[:n], ve[:n]

    def clear_multi(self) -> None:
        """Drop the per-``k`` multivector scratch (after an in-place
        operator update, so no stale view outlives the element batch it
        was sized against)."""
        self._multi.clear()


def gather_element_vectors(
    flat_data: np.ndarray,
    e2l_dofs: np.ndarray,
    elems: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Extract element vectors ``ue`` (Alg. 2 line 4) from a flat local
    dof vector via the dof-level E2L map.

    With ``out=`` the gather lands in the given buffer allocation-free
    (``mode="clip"`` skips the bounds check that would otherwise route
    through a temporary; the maps are validated at construction).

    A 2-D ``flat_data`` of shape ``(n_dofs, k)`` gathers whole dof rows,
    returning ``(E, nd, k)`` element multivectors; row gathers copy bits,
    so column ``j`` of the result equals the 1-D gather of column ``j``.
    """
    idx = e2l_dofs if elems is None else e2l_dofs[elems]
    if flat_data.ndim == 2:
        if out is None:
            return flat_data[idx]
        np.take(flat_data, idx, axis=0, out=out, mode="clip")
        return out
    if out is None:
        return flat_data[idx]
    np.take(flat_data, idx, out=out, mode="clip")
    return out


def accumulate_element_vectors(
    flat_data: np.ndarray,
    e2l_dofs: np.ndarray,
    ve: np.ndarray,
    elems: np.ndarray | None = None,
) -> None:
    """Accumulate element vectors ``ve`` (Alg. 2 line 6) into a flat
    local dof vector.

    A ``(n_dofs, k)`` destination with ``(E, nd, k)`` products is
    accumulated column by column through the same ``scatter_add``, so
    each column's additions happen in the single-RHS order (bitwise
    contract of the multi-RHS path).
    """
    idx = e2l_dofs if elems is None else e2l_dofs[elems]
    if flat_data.ndim == 2:
        for j in range(flat_data.shape[1]):
            scatter_add(flat_data[:, j], idx, np.ascontiguousarray(ve[:, :, j]))
        return
    scatter_add(flat_data, idx, ve)
