"""Batched dense elemental matrix-vector (EMV) kernels.

The whole point of HYMV: the SPMV inner loop is *dense local linear
algebra* over contiguous element batches instead of irregular CSR
indexing.  Two kernels are provided:

* ``einsum`` — batched dense matvec, the default.
* ``columns`` — the paper's eq. (4): the element matrix is traversed
  column-major and the product formed as a sum of scaled columns (the
  layout the paper vectorizes with AVX512/OpenMP-SIMD).  Kept as an
  ablation to compare kernel formulations.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import scatter_add

__all__ = [
    "emv_einsum",
    "emv_columns",
    "EMV_KERNELS",
    "gather_element_vectors",
    "accumulate_element_vectors",
]


def emv_einsum(ke: np.ndarray, ue: np.ndarray) -> np.ndarray:
    """``ve[e] = Ke[e] @ ue[e]`` over the whole batch at once (batched
    BLAS gemv via ``matmul``)."""
    return np.matmul(ke, ue[:, :, None])[:, :, 0]


def emv_columns(ke: np.ndarray, ue: np.ndarray) -> np.ndarray:
    """Column-major sum-of-scaled-columns EMV (paper eq. 4).

    ``ve = sum_j Ke[:, j] * ue[j]`` — each term is a contiguous column
    streamed through a fused multiply-add, which is how the paper's SIMD
    kernel is written.
    """
    nd = ke.shape[2]
    ve = ke[:, :, 0] * ue[:, 0, None]
    for j in range(1, nd):
        ve += ke[:, :, j] * ue[:, j, None]
    return ve


EMV_KERNELS = {"einsum": emv_einsum, "columns": emv_columns}


def gather_element_vectors(
    flat_data: np.ndarray, e2l_dofs: np.ndarray, elems: np.ndarray | None = None
) -> np.ndarray:
    """Extract element vectors ``ue`` (Alg. 2 line 4) from a flat local
    dof vector via the dof-level E2L map."""
    idx = e2l_dofs if elems is None else e2l_dofs[elems]
    return flat_data[idx]


def accumulate_element_vectors(
    flat_data: np.ndarray,
    e2l_dofs: np.ndarray,
    ve: np.ndarray,
    elems: np.ndarray | None = None,
) -> None:
    """Accumulate element vectors ``ve`` (Alg. 2 line 6) into a flat
    local dof vector."""
    idx = e2l_dofs if elems is None else e2l_dofs[elems]
    scatter_add(flat_data, idx, ve)
