"""Batched dense elemental matrix-vector (EMV) kernels.

The whole point of HYMV: the SPMV inner loop is *dense local linear
algebra* over contiguous element batches instead of irregular CSR
indexing.  Two kernels are provided:

* ``einsum`` — batched dense matvec, the default.
* ``columns`` — the paper's eq. (4): the element matrix is traversed
  column-major and the product formed as a sum of scaled columns (the
  layout the paper vectorizes with AVX512/OpenMP-SIMD).  Kept as an
  ablation to compare kernel formulations.

Both kernels accept ``out=`` (and ``columns`` a preallocated ``tmp=``
and an optional column-major matrix batch ``columns=``) so the operator
hot path can run allocation-free against an :class:`EmvWorkspace`.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import scatter_add

__all__ = [
    "emv_einsum",
    "emv_columns",
    "EMV_KERNELS",
    "EmvWorkspace",
    "gather_element_vectors",
    "accumulate_element_vectors",
]


def emv_einsum(
    ke: np.ndarray, ue: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """``ve[e] = Ke[e] @ ue[e]`` over the whole batch at once (batched
    BLAS gemv via ``matmul``).

    With ``out=`` the product is written into the given ``(E, nd)``
    buffer (viewed as ``(E, nd, 1)``) with no heap allocation; the
    result bits are identical either way.

    A multivector batch ``ue`` of shape ``(E, nd, k)`` is accepted and
    produces the ``(E, nd, k)`` products.  Each column is computed by the
    exact single-RHS kernel call on a contiguous copy — NOT by one batched
    ``(nd, k)`` gemm, whose BLAS accumulation order could differ from the
    gemv path — so ``emv_einsum(ke, ue)[:, :, j]`` is bitwise identical
    to ``emv_einsum(ke, ue[:, :, j])``.  The multi-RHS win is upstream:
    one gather/halo exchange for all ``k`` columns and one streaming pass
    over the element-matrix batch per sweep.
    """
    if ue.ndim == 3:
        return _emv_multi(emv_einsum, ke, ue, out)
    if out is None:
        return np.matmul(ke, ue[:, :, None])[:, :, 0]
    np.matmul(ke, ue[:, :, None], out=out[:, :, None])
    return out


def emv_columns(
    ke: np.ndarray,
    ue: np.ndarray,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
    columns: np.ndarray | None = None,
) -> np.ndarray:
    """Column-major sum-of-scaled-columns EMV (paper eq. 4).

    ``ve = sum_j Ke[:, j] * ue[j]`` — each term is a contiguous column
    streamed through a fused multiply-add, which is how the paper's SIMD
    kernel is written.

    Parameters
    ----------
    out, tmp:
        Optional preallocated ``(E, nd)`` buffers; with both given the
        kernel allocates nothing.
    columns:
        Optional column-major copy of the matrix batch with shape
        ``(nd, E, nd)`` where ``columns[j] == ke[:, :, j]`` contiguous.
        The strided column reads of ``ke`` are this kernel's bandwidth
        bottleneck (a full cache line is fetched per double); streaming
        the precomputed contiguous columns instead is the paper's SIMD
        layout.  The multiply operands and the add order are unchanged,
        so the result is bitwise identical with or without it.
    """
    if ue.ndim == 3:
        # per-column single-RHS calls (see emv_einsum): bitwise identity
        # per column is the contract the serve micro-batcher relies on
        def _single(ke_, ue_, out_=None):
            return emv_columns(ke_, ue_, out=out_, tmp=tmp, columns=columns)

        return _emv_multi(_single, ke, ue, out)
    nd = ke.shape[2]
    col = (lambda j: columns[j]) if columns is not None else (lambda j: ke[:, :, j])
    if out is None:
        ve = col(0) * ue[:, 0, None]
        for j in range(1, nd):
            ve += col(j) * ue[:, j, None]
        return ve
    # einsum instead of a broadcast multiply: a length-1 (0-stride)
    # operand sends the ufunc machinery through its 64 KiB buffered
    # iterator, which would be the hot path's only heap allocation.
    # The per-element arithmetic is the same single multiply — bitwise
    # identical to the broadcast form.
    np.einsum("en,e->en", col(0), ue[:, 0], out=out)
    if tmp is None:
        for j in range(1, nd):
            out += col(j) * ue[:, j, None]
        return out
    for j in range(1, nd):
        np.einsum("en,e->en", col(j), ue[:, j], out=tmp)
        out += tmp
    return out


def _emv_multi(single, ke, ue, out):
    """Apply a single-RHS EMV kernel column by column over an
    ``(E, nd, k)`` multivector batch.

    Each column is copied contiguous before the kernel call so the
    arithmetic runs on exactly the operands the single-RHS path sees
    (bitwise contract); the strided write-back is a pure copy.
    """
    if out is None:
        out = np.empty_like(ue)
    for j in range(ue.shape[2]):
        out[:, :, j] = single(ke, np.ascontiguousarray(ue[:, :, j]))
    return out


EMV_KERNELS = {"einsum": emv_einsum, "columns": emv_columns}


class EmvWorkspace:
    """Preallocated scratch for the EMV sweep hot path (Alg. 2).

    One workspace per operator, sized for the *largest* sweep (all local
    elements); each sweep takes a leading-slice view, so the independent
    and dependent sweeps share the same memory.  Holds:

    * ``ue`` — gathered element input vectors, ``(n_elements, nd)``;
    * ``ve`` — elemental products, same shape;
    * ``tmp`` — per-column FMA scratch for the ``columns`` kernel.
    """

    __slots__ = ("n_elements", "nd", "ue", "ve", "_tmp")

    def __init__(self, n_elements: int, nd: int):
        self.n_elements = int(n_elements)
        self.nd = int(nd)
        self.ue = np.empty((self.n_elements, self.nd))
        self.ve = np.empty((self.n_elements, self.nd))
        self._tmp: np.ndarray | None = None  # columns kernel only

    @property
    def tmp(self) -> np.ndarray:
        """Per-column FMA scratch, allocated on first use (the einsum
        kernel never touches it — keep its cache footprint at zero)."""
        if self._tmp is None:
            self._tmp = np.empty((self.n_elements, self.nd))
        return self._tmp

    def views(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Leading-slice views ``(ue, ve)`` for a sweep of ``n``
        elements."""
        return self.ue[:n], self.ve[:n]


def gather_element_vectors(
    flat_data: np.ndarray,
    e2l_dofs: np.ndarray,
    elems: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Extract element vectors ``ue`` (Alg. 2 line 4) from a flat local
    dof vector via the dof-level E2L map.

    With ``out=`` the gather lands in the given buffer allocation-free
    (``mode="clip"`` skips the bounds check that would otherwise route
    through a temporary; the maps are validated at construction).

    A 2-D ``flat_data`` of shape ``(n_dofs, k)`` gathers whole dof rows,
    returning ``(E, nd, k)`` element multivectors; row gathers copy bits,
    so column ``j`` of the result equals the 1-D gather of column ``j``.
    """
    idx = e2l_dofs if elems is None else e2l_dofs[elems]
    if flat_data.ndim == 2:
        if out is None:
            return flat_data[idx]
        np.take(flat_data, idx, axis=0, out=out, mode="clip")
        return out
    if out is None:
        return flat_data[idx]
    np.take(flat_data, idx, out=out, mode="clip")
    return out


def accumulate_element_vectors(
    flat_data: np.ndarray,
    e2l_dofs: np.ndarray,
    ve: np.ndarray,
    elems: np.ndarray | None = None,
) -> None:
    """Accumulate element vectors ``ve`` (Alg. 2 line 6) into a flat
    local dof vector.

    A ``(n_dofs, k)`` destination with ``(E, nd, k)`` products is
    accumulated column by column through the same ``scatter_add``, so
    each column's additions happen in the single-RHS order (bitwise
    contract of the multi-RHS path).
    """
    idx = e2l_dofs if elems is None else e2l_dofs[elems]
    if flat_data.ndim == 2:
        for j in range(flat_data.shape[1]):
            scatter_add(flat_data[:, j], idx, np.ascontiguousarray(ve[:, :, j]))
        return
    scatter_add(flat_data, idx, ve)
