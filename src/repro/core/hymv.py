"""The HYMV operator: setup, Algorithm 2 SPMV, adaptive updates.

``HymvOperator`` is the paper's contribution: element matrices are
computed **once** at setup and stored per rank; every SPMV is a sweep of
batched dense EMVs with ghost exchange overlapped over the independent
elements.  ``EbeOperatorBase`` factors the element-by-element machinery so
the matrix-free baseline (Alg. 4) shares maps, layout and kernels and
differs *only* in recomputing the element matrices per product — exactly
the comparison the paper makes.

Storage layout: local elements are permuted so the independent set is a
contiguous prefix and the dependent set a contiguous suffix.  The two
Algorithm-2 sweeps then operate on *views* of the stored element-matrix
batch — no per-SPMV copies.
"""

from __future__ import annotations

import numpy as np

from repro.core.da import DistributedArray, DistributedMultiVector
from repro.core.kernels import (
    EMV_KERNELS,
    EmvWorkspace,
    accumulate_element_vectors,
    emv_columns,
    gather_element_vectors,
    resolve_mode,
)
from repro.core.maps import NodeMaps, build_node_maps
from repro.core.scatter import (
    CommMaps,
    HaloExchange,
    build_comm_maps,
    gather_begin,
    gather_end,
    scatter,
    scatter_begin,
    scatter_end,
)
from repro.core.segment import SegmentScatter
from repro.fem.operators import Operator
from repro.partition.interface import LocalMesh
from repro.simmpi.communicator import Communicator
from repro.util.arrays import INDEX_DTYPE, as_index, inverse_permutation, scatter_add

__all__ = ["EbeOperatorBase", "HymvOperator"]


class EbeOperatorBase:
    """Element-by-element machinery shared by HYMV and matrix-free."""

    def __init__(
        self,
        comm: Communicator,
        lmesh: LocalMesh,
        operator: Operator,
        ranges: np.ndarray | None = None,
        kernel: str = "einsum",
        modeled_rate_gflops: float | None = None,
        workspace: bool = True,
        elem_scale: np.ndarray | None = None,
    ):
        self.comm = comm
        self.lmesh = lmesh
        self.operator = operator
        self.ndpn = operator.ndpn
        self.etype = lmesh.etype
        if kernel not in EMV_KERNELS:
            raise ValueError(f"unknown EMV kernel {kernel!r}")
        self.kernel_name = kernel
        self.kernel = EMV_KERNELS[kernel]
        # optional deterministic compute model: each EMV sweep advances
        # virtual time by flops/rate instead of relying on measured wall
        # time (combine with Simulator(compute_scale=0) for fully
        # reproducible virtual-time studies, e.g. the overlap ablation)
        self.modeled_rate_gflops = modeled_rate_gflops

        with comm.compute("setup.maps"):
            self.maps: NodeMaps = build_node_maps(
                lmesh.e2g, lmesh.n_begin, lmesh.n_end
            )
            # permute elements: [independent | dependent] for view-based sweeps
            self._order = np.concatenate(
                [self.maps.independent, self.maps.dependent]
            ).astype(INDEX_DTYPE)
            self._inv_order = inverse_permutation(self._order)
            self._n_indep = int(self.maps.independent.size)
            self.e2l_dofs = self._dof_map(self.maps.e2l[self._order])
            # one-time bounds check: the hot path gathers/scatters with
            # mode="clip", which would turn an out-of-range map entry
            # into silently wrong numerics instead of an IndexError
            if self.e2l_dofs.size:
                lo = int(self.e2l_dofs.min())
                hi = int(self.e2l_dofs.max())
                n_total_dofs = self.maps.n_total * self.ndpn
                if lo < 0 or hi >= n_total_dofs:
                    raise IndexError(
                        f"E2L dof map out of range: [{lo}, {hi}] vs "
                        f"{n_total_dofs} local dofs"
                    )
            self._e2g_perm = lmesh.e2g[self._order]
            self._coords_perm = lmesh.coords[self._order]
            # optional per-element stiffness scale (local mesh order),
            # stored in permuted order like coords.  Absolute semantics:
            # the effective element matrix is always
            # ``scale * Ke(coords)`` — multiplying by 1.0 is an IEEE-754
            # no-op, so a fresh build with a partially-1.0 scale array is
            # bitwise identical to an unscaled build on the 1.0 rows.
            self._scale_perm: np.ndarray | None = None
            if elem_scale is not None:
                scale = np.asarray(elem_scale, dtype=np.float64)
                if scale.shape != (lmesh.n_local_elements,):
                    raise ValueError(
                        f"elem_scale shape {scale.shape} != "
                        f"({lmesh.n_local_elements},) local elements"
                    )
                self._scale_perm = np.ascontiguousarray(scale[self._order])

        t0 = comm.vtime
        if ranges is None:
            ranges = np.asarray(
                comm.allgather((lmesh.n_begin, lmesh.n_end)),
                dtype=INDEX_DTYPE,
            )
        self._ranges = ranges
        self.cmaps: CommMaps = build_comm_maps(comm, self.maps, ranges=ranges)
        comm.timing.add("setup.comm_maps", comm.vtime - t0)

        self._sl_indep = slice(0, self._n_indep)
        self._sl_dep = slice(self._n_indep, lmesh.n_local_elements)
        self._sl_all = slice(None)
        self.n_dofs_owned = self.maps.n_owned * self.ndpn
        self.spmv_count = 0
        # under fault injection, sanity-check received ghost values so
        # corruption surfaces as a counter the resilient solver can act on
        self._check_ghosts = bool(getattr(comm, "faults_active", False))
        self._recv_all = (
            np.concatenate(self.cmaps.recv_slots).astype(INDEX_DTYPE)
            if self.cmaps.recv_slots
            else np.empty(0, dtype=INDEX_DTYPE)
        )

        # zero-allocation hot path: preallocated EMV workspace, packed
        # halo buffers and precomputed segment-sum scatters per sweep.
        # ``workspace=False`` keeps the legacy allocating path as the
        # bitwise reference for equivalence tests and ablations.
        self.workspace_enabled = bool(workspace)
        self._ws: EmvWorkspace | None = None
        self.halo: HaloExchange | None = None
        self._seg_indep: SegmentScatter | None = None
        self._seg_dep: SegmentScatter | None = None
        self._seg_all: SegmentScatter | None = None
        if workspace:
            with comm.compute("setup.workspace"):
                self._ws = EmvWorkspace(
                    lmesh.n_local_elements, self.e2l_dofs.shape[1]
                )
                self.halo = HaloExchange(self.cmaps, self.ndpn)
                self._seg_indep = SegmentScatter(self.e2l_dofs[self._sl_indep])
                self._seg_dep = SegmentScatter(self.e2l_dofs[self._sl_dep])
        # multi-RHS machinery, built lazily per column count k: one packed
        # halo exchange of node-row width ndpn*k serves all k columns, and
        # work multivectors back apply_owned_multi (mirrors _work_u/_work_v)
        self._halo_multi: dict[int, HaloExchange] = {}
        self._work_multi: dict[int, tuple] = {}
        # mode="auto" crossover for the BLAS3 multi-RHS path; None means
        # repro.core.kernels.DEFAULT_K_MIN (set a calibrated value from
        # BENCH_kernels.json's config.gemm_k_min_crossover to override)
        self.gemm_k_min: int | None = None

    # -- construction helpers -------------------------------------------

    def _dof_map(self, e2l: np.ndarray) -> np.ndarray:
        """Node-level E2L → dof-level (E, n*ndpn) map (node-major dofs)."""
        E, n = e2l.shape
        dofs = e2l[:, :, None] * self.ndpn + np.arange(
            self.ndpn, dtype=INDEX_DTYPE
        )
        return dofs.reshape(E, n * self.ndpn)

    def new_array(self) -> DistributedArray:
        return DistributedArray(self.maps, self.ndpn)

    # -- elemental sweep -------------------------------------------------

    def _element_matrices(self, sl: slice) -> np.ndarray:
        """Element matrices of a permuted-order slice (storage vs.
        recompute is the HYMV/matrix-free distinction)."""
        raise NotImplementedError

    def _segment_for(self, sl: slice) -> SegmentScatter | None:
        """Precomputed segment scatter of a sweep slice (``None`` when
        the slice has no frozen structure, e.g. GPU chunk schedules)."""
        if sl is self._sl_indep:
            return self._seg_indep
        if sl is self._sl_dep:
            return self._seg_dep
        if sl is self._sl_all:
            if self._seg_all is None and self.workspace_enabled:
                self._seg_all = SegmentScatter(self.e2l_dofs)
            return self._seg_all
        return None

    def _columns_batch(self, sl: slice) -> np.ndarray | None:
        """Optional precomputed column-major matrix batch for the
        ``columns`` kernel (operators with stored matrices override)."""
        return None

    def _emv_sweep(self, uf: np.ndarray, vf: np.ndarray, sl: slice) -> None:
        """One elemental sweep over flat local dof vectors.

        ``uf``/``vf`` are 1-D views of length ``n_total * ndpn`` and may
        be strided (multi-RHS columns); the gathered/accumulated values
        are identical either way, so the multivector path inherits the
        single-RHS bits column by column.
        """
        idx = self.e2l_dofs[sl]
        if idx.shape[0] == 0:
            return
        ke = self._element_matrices(sl)
        if self._ws is not None:
            ue, ve = self._ws.views(idx.shape[0])
            gather_element_vectors(uf, idx, out=ue)
            if self.kernel is emv_columns:
                emv_columns(
                    ke, ue, out=ve, tmp=self._ws.tmp[: idx.shape[0]],
                    columns=self._columns_batch(sl),
                )
            else:
                self.kernel(ke, ue, out=ve)
            seg = self._segment_for(sl)
            if seg is not None:
                seg.add_into(vf, ve)
            else:
                accumulate_element_vectors(vf, idx, ve)
        else:
            ue = gather_element_vectors(uf, idx)
            ve = self.kernel(ke, ue)
            accumulate_element_vectors(vf, idx, ve)
        flops = idx.shape[0] * self.operator.emv_flops(self.etype)
        self.comm.obs.incr("spmv.elements", idx.shape[0])
        self.comm.obs.incr("spmv.flops", flops)
        if self.modeled_rate_gflops:
            self.comm.advance(
                flops / (self.modeled_rate_gflops * 1e9), "spmv.emv.modeled"
            )

    def _emv_sweep_multi(
        self, UF: np.ndarray, VF: np.ndarray, sl: slice
    ) -> None:
        """One BLAS3 elemental sweep over ``(n_total*ndpn, k)`` dof
        multivectors (``mode="gemm"``).

        The gathered ``(E, nd, k)`` block is multiplied by the element-
        matrix batch in ONE batched ``np.matmul`` — a dense
        ``(nd, nd) @ (nd, k)`` GEMM per element — and scattered with the
        k-column segment sum.  Element matrices are produced once for all
        k columns (for the matrix-free operator this also amortizes the
        recompute k-fold).  Counters and the modeled compute time advance
        by the same k-scaled totals as k oracle sweeps, so virtual-time
        studies stay mode-independent.
        """
        idx = self.e2l_dofs[sl]
        if idx.shape[0] == 0:
            return
        k = UF.shape[1]
        ke = self._element_matrices(sl)
        if self._ws is not None:
            ue, ve = self._ws.multi_views(idx.shape[0], k)
            gather_element_vectors(UF, idx, out=ue)
            self.kernel(ke, ue, out=ve, mode="gemm")
            seg = self._segment_for(sl)
            if seg is not None:
                seg.add_into_multi(VF, ve)
            else:
                accumulate_element_vectors(VF, idx, ve)
        else:
            ue = gather_element_vectors(UF, idx)
            ve = self.kernel(ke, ue, mode="gemm")
            accumulate_element_vectors(VF, idx, ve)
        flops = idx.shape[0] * self.operator.emv_flops(self.etype) * k
        self.comm.obs.incr("spmv.elements", idx.shape[0] * k)
        self.comm.obs.incr("spmv.flops", flops)
        if self.modeled_rate_gflops:
            self.comm.advance(
                flops / (self.modeled_rate_gflops * 1e9), "spmv.emv.modeled"
            )

    def _verify_ghosts(self, u: DistributedArray | DistributedMultiVector) -> None:
        """Flag non-finite received ghost values (fault-injection runs
        only): raises the ``spmv.ghost_nonfinite`` counter that the
        resilient CG treats as a local corruption signal.

        One vectorized ``isfinite`` pass over the concatenated recv-slot
        array precomputed at setup (no per-neighbor Python loop)."""
        if self._recv_all.size == 0:
            return
        vals = u.data[self._recv_all]
        bad = int(vals.size - np.count_nonzero(np.isfinite(vals)))
        if bad:
            self.comm.obs.incr("spmv.ghost_nonfinite", bad)

    # -- Algorithm 2 ------------------------------------------------------

    def spmv(
        self,
        u: DistributedArray,
        v: DistributedArray,
        overlap: bool = True,
    ) -> DistributedArray:
        """Distributed SPMV ``v = K u`` (owned block of ``v`` is exact on
        return; ghost entries of ``v`` are scratch).

        ``overlap=True`` is Algorithm 2: the ghost scatter of ``u`` is in
        flight while independent elements compute; ``overlap=False`` is
        the blocking variant used in the ablation study.
        """
        comm = self.comm
        halo = self.halo
        t0 = comm.vtime
        v.data[:] = 0.0
        uf = u.data.reshape(-1)
        vf = v.data.reshape(-1)
        if overlap:
            if halo is not None:
                reqs = halo.scatter_begin(comm, u.data)
            else:
                reqs = scatter_begin(comm, u.data, self.cmaps)
            with comm.compute("spmv.emv.independent"):
                self._emv_sweep(uf, vf, self._sl_indep)
            tw = comm.vtime
            if halo is not None:
                halo.scatter_end(comm, u.data, reqs)
            else:
                scatter_end(comm, u.data, self.cmaps, reqs)
            comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
            if self._check_ghosts:
                self._verify_ghosts(u)
            with comm.compute("spmv.emv.dependent"):
                self._emv_sweep(uf, vf, self._sl_dep)
        else:
            tw = comm.vtime
            if halo is not None:
                halo.scatter(comm, u.data)
            else:
                scatter(comm, u.data, self.cmaps)
            comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
            if self._check_ghosts:
                self._verify_ghosts(u)
            with comm.compute("spmv.emv.all"):
                self._emv_sweep(uf, vf, self._sl_all)
        tg = comm.vtime
        if halo is not None:
            halo.gather_end(comm, v.data, halo.gather_begin(comm, v.data))
        else:
            greqs = gather_begin(comm, v.data, self.cmaps)
            gather_end(comm, v.data, self.cmaps, greqs)
        comm.timing.add("spmv.gather", comm.vtime - tg)
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += 1
        return v

    def apply(self, u: DistributedArray, v: DistributedArray) -> DistributedArray:
        """Solver-facing alias of :meth:`spmv` (MatShell interface)."""
        return self.spmv(u, v)

    def apply_owned(self, x: np.ndarray, copy: bool = True) -> np.ndarray:
        """MatShell-style application on owned dof vectors (what the CG
        solver calls); halo handling is internal.  The distributed
        product lands in work arrays preallocated on first use.

        **Aliasing contract:** by default the result is returned as a
        fresh copy the caller owns — two products held simultaneously
        stay distinct, and mutating one (e.g. masking Dirichlet rows)
        never touches operator state.  ``copy=False`` instead returns a
        *view* into the operator-owned work buffer, overwritten by the
        next ``apply_owned``/``spmv`` call: zero-copy for hot loops that
        consume the result immediately and must not mutate it."""
        if not hasattr(self, "_work_u"):
            self._work_u = self.new_array()
            self._work_v = self.new_array()
        self._work_u.set_owned(x)
        self.spmv(self._work_u, self._work_v)
        owned = self._work_v.owned_flat
        return np.array(owned, copy=True) if copy else owned

    # -- multi-RHS (matrix-multivector) path ------------------------------

    def new_multivector(self, k: int) -> DistributedMultiVector:
        return DistributedMultiVector(self.maps, self.ndpn, k)

    def _halo_for(self, k: int) -> HaloExchange | None:
        """Packed halo exchange for node rows of width ``ndpn * k``
        (built once per distinct column count, like ``halo`` for k=1)."""
        if k == 1:
            return self.halo
        if not self.workspace_enabled:
            return None
        h = self._halo_multi.get(k)
        if h is None:
            h = self._halo_multi[k] = HaloExchange(self.cmaps, self.ndpn * k)
        return h

    def spmv_multi(
        self,
        u: DistributedMultiVector,
        v: DistributedMultiVector,
        overlap: bool = True,
        mode: str = "auto",
    ) -> DistributedMultiVector:
        """Batched multi-RHS SPMV ``V = K U`` (Algorithm 2 over ``k``
        right-hand sides at once).

        Under ``mode="oracle"`` column ``j`` of the result is **bitwise
        identical** to ``spmv`` applied to column ``j`` alone: each
        column runs through the exact single-RHS elemental sweep (same
        workspace, same kernels, same accumulation order).  The batching
        win is in the communication layer — ONE ghost exchange of packed
        ``ndpn * k`` node rows replaces ``k`` exchanges, amortizing
        per-message latency across the batch (the multivector analogue
        of the paper's batched-EMV rationale; per-scalar ghost copies and
        accumulations are independent, so packing cannot change bits).

        Under ``mode="gemm"`` the elemental stage additionally runs as
        batched BLAS3 GEMMs over the whole ``(E, nd, k)`` block
        (:meth:`_emv_sweep_multi`): each stored/recomputed element matrix
        is streamed through memory once for all k columns instead of k
        times.  Results match the oracle to rounding
        (:func:`repro.core.kernels.gemm_equivalence_rtol`), not bitwise.
        ``mode="auto"`` (the default) picks GEMM when
        ``k >= self.gemm_k_min`` (``None`` → ``DEFAULT_K_MIN``).
        """
        comm = self.comm
        k = u.k
        gemm = resolve_mode(mode, k, self.gemm_k_min) == "gemm"
        halo = self._halo_for(k)
        t0 = comm.vtime
        v.data[:] = 0.0
        un, vn = u.node_view, v.node_view
        uf, vf = u.dof_view, v.dof_view

        def sweep(sl: slice) -> None:
            if gemm:
                self._emv_sweep_multi(uf, vf, sl)
            else:
                for j in range(k):
                    self._emv_sweep(uf[:, j], vf[:, j], sl)

        if overlap:
            if halo is not None:
                reqs = halo.scatter_begin(comm, un)
            else:
                reqs = scatter_begin(comm, un, self.cmaps)
            with comm.compute("spmv.emv.independent"):
                sweep(self._sl_indep)
            tw = comm.vtime
            if halo is not None:
                halo.scatter_end(comm, un, reqs)
            else:
                scatter_end(comm, un, self.cmaps, reqs)
            comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
            if self._check_ghosts:
                self._verify_ghosts(u)
            with comm.compute("spmv.emv.dependent"):
                sweep(self._sl_dep)
        else:
            tw = comm.vtime
            if halo is not None:
                halo.scatter(comm, un)
            else:
                scatter(comm, un, self.cmaps)
            comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
            if self._check_ghosts:
                self._verify_ghosts(u)
            with comm.compute("spmv.emv.all"):
                sweep(self._sl_all)
        tg = comm.vtime
        if halo is not None:
            halo.gather_end(comm, vn, halo.gather_begin(comm, vn))
        else:
            greqs = gather_begin(comm, vn, self.cmaps)
            gather_end(comm, vn, self.cmaps, greqs)
        comm.timing.add("spmv.gather", comm.vtime - tg)
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += k
        return v

    def apply_owned_multi(
        self, X: np.ndarray, copy: bool = True, mode: str = "auto"
    ) -> np.ndarray:
        """Multi-RHS :meth:`apply_owned`: applies the operator to the
        ``(n_owned_dofs, k)`` columns of ``X`` in one batched product.

        Under the resolved ``"oracle"`` mode column ``j`` of the result
        is bitwise identical to ``apply_owned(X[:, j])``; the resolved
        ``"gemm"`` mode (``auto`` picks it for ``k >= gemm_k_min``) runs
        the BLAS3 elemental stage and matches to rounding (see
        :meth:`spmv_multi`).  Work multivectors are cached per distinct
        ``k``; the aliasing contract matches ``apply_owned``
        (``copy=False`` returns a view overwritten by the next call with
        the same ``k``).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected (n, k) multivector, got shape {X.shape}")
        k = X.shape[1]
        pair = self._work_multi.get(k)
        if pair is None:
            pair = self._work_multi[k] = (
                self.new_multivector(k),
                self.new_multivector(k),
            )
        U, V = pair
        U.set_owned(X)
        self.spmv_multi(U, V, mode=mode)
        owned = V.owned_matrix
        return np.array(owned, copy=True) if copy else owned

    # -- preconditioner support (shared: HYMV loads stored matrices,
    #    matrix-free recomputes once) --------------------------------------

    def diagonal(self) -> DistributedArray:
        """Exact assembled diagonal of K on owned dofs (collective)."""
        d = self.new_array()
        ke = self._element_matrices(self._sl_all)
        nd = self.e2l_dofs.shape[1]
        diag_e = ke[:, np.arange(nd), np.arange(nd)]
        scatter_add(d.data.reshape(-1), self.e2l_dofs, diag_e)
        d.accumulate_ghosts(self.comm, self.cmaps)
        return d

    def diagonal_owned(self) -> np.ndarray:
        return self.diagonal().owned_flat.copy()

    def owned_block_csr(self):
        """The (owned x owned) diagonal block, assembled collectively.

        This is the block-preconditioner assembly the paper mentions
        ("for block Jacobi preconditioner, HYMV needs to assemble the
        diagonal block matrix"): each rank contributes the (i, j) entries
        of its element matrices for which ``owner(i) == owner(j)``, and
        ships off-rank contributions to that owner.  The result matches
        the assembled baseline's diagonal block exactly.
        """
        import scipy.sparse as sp

        comm = self.comm
        ndpn = self.ndpn
        ke = self._element_matrices(self._sl_all)
        with comm.compute("precond.block_local"):
            nd = self.e2l_dofs.shape[1]
            gdofs = (
                self._e2g_perm[:, :, None] * ndpn
                + np.arange(ndpn, dtype=INDEX_DTYPE)
            ).reshape(self._e2g_perm.shape[0], nd)
            rows = np.repeat(gdofs, nd, axis=1).reshape(-1)
            cols = np.tile(gdofs, (1, nd)).reshape(-1)
            vals = ke.reshape(-1)
            ends = self._ranges[:, 1]
            row_owner = np.searchsorted(ends, rows // ndpn, side="right")
            col_owner = np.searchsorted(ends, cols // ndpn, side="right")
            keep = row_owner == col_owner
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
            row_owner = row_owner[keep]
            mine = row_owner == comm.rank
            per_dest: list = [None] * comm.size
            for r in np.unique(row_owner):
                if r == comm.rank:
                    continue
                sel = row_owner == r
                per_dest[int(r)] = (rows[sel], cols[sel], vals[sel])
        t0 = comm.vtime
        received = comm.alltoall(per_dest)
        comm.timing.add("precond.block_comm", comm.vtime - t0)
        with comm.compute("precond.block_assemble"):
            parts = [(rows[mine], cols[mine], vals[mine])] + [
                t for t in received if t is not None
            ]
            r = np.concatenate([t[0] for t in parts]) - self.maps.n_begin * ndpn
            c = np.concatenate([t[1] for t in parts]) - self.maps.n_begin * ndpn
            v = np.concatenate([t[2] for t in parts])
            n = self.n_dofs_owned
            block = sp.coo_matrix((v, (r, c)), shape=(n, n)).tocsr()
        return block

    # -- adaptivity (the XFEM / AMR use-case, paper §I & §III) ------------

    def update_elements(
        self,
        local_elems: np.ndarray,
        coords: np.ndarray | None = None,
        stiffness_scale: float | np.ndarray | None = None,
    ) -> None:
        """Update a subset of local elements in place.

        This is the "adaptive-matrix" property: enrichment/refinement of
        a few elements costs only their recomputation — no global
        assembly.  ``local_elems`` are indices into the local mesh's
        element list; ``coords`` optionally replaces the subset's node
        coordinates; ``stiffness_scale`` sets the subset's *absolute*
        per-element stiffness scale (a simple model of XFEM-style
        stiffness modification of cracked elements) — re-applying the
        same scale is idempotent, and the scale persists across later
        coordinate updates of the same element.

        Both updates are persisted (permuted coords / scale arrays), so
        the post-update operator state is indistinguishable from a fresh
        build on the updated inputs; subclasses refresh their stored
        products via :meth:`_refresh_elements`.  Raises ``IndexError``
        on any out-of-range (or negative) index rather than letting
        fancy indexing wrap or clip it into silently-wrong numerics —
        same hardening as the e2l map check at setup.
        """
        local_elems = as_index(local_elems)
        if local_elems.size == 0:
            return
        lo = int(local_elems.min())
        hi = int(local_elems.max())
        if lo < 0 or hi >= self.n_local_elements:
            raise IndexError(
                f"update_elements: local element ids out of range "
                f"[{lo}, {hi}] vs {self.n_local_elements} local elements"
            )
        pos = self._inv_order[local_elems]
        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            want = (pos.size, self.etype.n_nodes, 3)
            if coords.shape != want:
                raise ValueError(
                    f"coords shape {coords.shape} != {want} for "
                    f"{pos.size} updated elements"
                )
            self._coords_perm[pos] = coords
        if stiffness_scale is not None:
            scale = np.broadcast_to(
                np.asarray(stiffness_scale, dtype=np.float64), (pos.size,)
            )
            if self._scale_perm is None:
                self._scale_perm = np.ones(self.lmesh.n_local_elements)
            self._scale_perm[pos] = scale
        self._refresh_elements(pos)
        self._invalidate_multi_caches()
        self.comm.obs.incr("update.elements", pos.size)

    def _refresh_elements(self, pos: np.ndarray) -> None:
        """Refresh stored per-element products for permuted positions
        ``pos`` after a coords/scale change.  The base class stores
        nothing derived (matrix-free recomputes per product), so the
        default is a no-op."""

    def _invalidate_multi_caches(self) -> None:
        """Drop per-``k`` GEMM workspace views and work multivectors
        after an in-place update, so no cached scratch view outlives the
        element state it was sized against (halo exchanges depend only
        on the comm maps, which an in-place update never changes)."""
        if self._ws is not None:
            self._ws.clear_multi()
        for seg in (self._seg_indep, self._seg_dep, self._seg_all):
            if seg is not None:
                seg._multi.clear()
        self._work_multi.clear()

    # -- cost accounting --------------------------------------------------

    @property
    def n_local_elements(self) -> int:
        return self.lmesh.n_local_elements

    @property
    def n_independent(self) -> int:
        return self._n_indep

    @property
    def n_dependent(self) -> int:
        return self.lmesh.n_local_elements - self._n_indep

    def flops_per_spmv(self) -> float:
        """Local flops of one SPMV sweep (EMV only, paper's counting)."""
        return self.n_local_elements * self.operator.emv_flops(self.etype)


class HymvOperator(EbeOperatorBase):
    """The adaptive-matrix operator (paper's HYMV).

    Setup computes and *stores* all local element matrices (timed as
    ``setup.emat_compute`` + ``setup.local_copy`` — the two bars of
    Figs. 5/7); each SPMV then loads them instead of recomputing.
    """

    def __init__(
        self,
        comm: Communicator,
        lmesh: LocalMesh,
        operator: Operator,
        ranges: np.ndarray | None = None,
        kernel: str = "einsum",
        modeled_rate_gflops: float | None = None,
        ke_cache: dict | None = None,
        workspace: bool = True,
        elem_scale: np.ndarray | None = None,
    ):
        """``ke_cache`` optionally maps *global element ids* to previously
        computed element matrices (e.g. carried across an adaptive
        refinement via :class:`repro.mesh.adapt.LocalRefinement`
        ancestry); cache hits skip the elemental computation — the
        adaptive-matrix property across mesh changes.  Cached entries
        already embed their stiffness scale, so ``elem_scale`` is applied
        only to freshly computed rows."""
        super().__init__(
            comm, lmesh, operator, ranges=ranges, kernel=kernel,
            modeled_rate_gflops=modeled_rate_gflops, workspace=workspace,
            elem_scale=elem_scale,
        )
        gids = lmesh.elements[self._order]
        if ke_cache:
            hit = np.array([int(g) in ke_cache for g in gids], dtype=bool)
        else:
            hit = np.zeros(gids.size, dtype=bool)
        nd = operator.element_dofs(lmesh.etype)
        ke = np.empty((gids.size, nd, nd))
        with comm.compute("setup.emat_compute"):
            if not hit.all():
                kx = operator.element_matrices(
                    self._coords_perm[~hit], lmesh.etype
                )
                if self._scale_perm is not None:
                    kx = kx * self._scale_perm[~hit][:, None, None]
                ke[~hit] = kx
        with comm.compute("setup.local_copy"):
            if hit.any():
                ke[hit] = np.stack(
                    [ke_cache[int(g)] for g in gids[hit]], axis=0
                )
            self.ke = np.ascontiguousarray(ke)
        self.cache_hits = int(hit.sum())
        # column-major matrix layout for the ``columns`` kernel: the
        # strided ``ke[:, :, j]`` reads fetch a full cache line per
        # double; ``_kcol[j]`` streams the same column contiguously
        # (paper eq. 4's SIMD layout).  Same operands, same add order —
        # bitwise identical products.
        self._kcol: np.ndarray | None = None
        if self.workspace_enabled and self.kernel_name == "columns":
            with comm.compute("setup.column_layout"):
                self._kcol = np.ascontiguousarray(self.ke.transpose(2, 0, 1))

    def export_ke_cache(self) -> dict:
        """Element matrices keyed by global element id (for reuse across
        adaptive refinements)."""
        gids = self.lmesh.elements[self._order]
        return {int(g): self.ke[i] for i, g in enumerate(gids)}

    def _element_matrices(self, sl: slice) -> np.ndarray:
        return self.ke[sl]  # a view — slices never copy

    def _columns_batch(self, sl: slice) -> np.ndarray | None:
        return None if self._kcol is None else self._kcol[:, sl]

    # -- adaptivity (the XFEM / AMR use-case, paper §I & §III) ------------

    def _refresh_elements(self, pos: np.ndarray) -> None:
        """Recompute and store the element matrices at permuted positions
        ``pos`` from the (already updated) persisted coords and scale —
        the cost of an adaptive update is exactly these ``pos.size``
        elemental computations, nothing global."""
        with self.comm.compute("update.emat_compute"):
            ke = self.operator.element_matrices(
                self._coords_perm[pos], self.etype
            )
            if self._scale_perm is not None:
                ke = ke * self._scale_perm[pos][:, None, None]
        with self.comm.compute("update.local_copy"):
            self.ke[pos] = ke
            if self._kcol is not None:
                self._kcol[:, pos] = ke.transpose(2, 0, 1)
        self.comm.obs.incr("update.ke_recomputed", pos.size)
        self.comm.obs.incr(
            "update.ke_flops",
            pos.size * self.operator.ke_flops(self.etype),
        )

    def stored_bytes(self) -> int:
        """Memory footprint of the stored element matrices."""
        return self.ke.nbytes


def as_scipy_operator(op) -> "object":
    """Wrap any ``apply_owned`` operator as a
    ``scipy.sparse.linalg.LinearOperator`` over its owned dofs.

    Lets scipy's iterative solvers (CG, MINRES, LOBPCG, ...) drive the
    distributed operator directly on a single rank, or a rank-local block
    in tests — handy for interop and for cross-checking our own CG.

    scipy solvers keep matvec results across calls; ``apply_owned``'s
    default already returns a caller-owned copy, which is exactly the
    contract they need.
    """
    from scipy.sparse.linalg import LinearOperator

    n = op.n_dofs_owned

    def matvec(x: np.ndarray) -> np.ndarray:
        return op.apply_owned(x)

    return LinearOperator((n, n), matvec=matvec, rmatvec=matvec)
