"""Distributed right-hand-side assembly on the DA layout.

Elemental load vectors (body force, traction) are accumulated through the
same E2L map / ghost gather the SPMV uses, yielding the owned RHS block on
every rank.
"""

from __future__ import annotations

import numpy as np

from repro.core.da import DistributedArray
from repro.core.maps import NodeMaps
from repro.core.scatter import CommMaps
from repro.fem.loads import ForceFn, body_force_rhs_batch, traction_rhs_batch
from repro.partition.interface import LocalMesh
from repro.simmpi.communicator import Communicator
from repro.util.arrays import scatter_add

__all__ = ["local_node_coords", "assemble_rhs"]


def local_node_coords(maps: NodeMaps, lmesh: LocalMesh) -> np.ndarray:
    """``(n_total, 3)`` coordinates of every local slot (owned + ghosts),
    recovered from element coordinates (each local node, owned or ghost,
    belongs to at least one local element)."""
    coords = np.zeros((maps.n_total, 3))
    coords[maps.e2l.reshape(-1)] = lmesh.coords.reshape(-1, 3)
    return coords


def assemble_rhs(
    comm: Communicator,
    lmesh: LocalMesh,
    maps: NodeMaps,
    cmaps: CommMaps,
    ndpn: int,
    body_force: ForceFn | np.ndarray | None = None,
    tractions: (
        list[tuple[np.ndarray, np.ndarray, ForceFn | np.ndarray]] | None
    ) = None,
) -> np.ndarray:
    """Assemble the owned RHS block (flat dofs) of this rank (collective).

    Parameters
    ----------
    body_force:
        Constant vector or callable on physical points.
    tractions:
        List of ``(local_element_ids, face_ids, traction)`` — boundary
        faces of local elements carrying the given traction.
    """
    f = DistributedArray(maps, ndpn)
    flat = f.data.reshape(-1)
    n_elems, n_nodes = maps.e2l.shape
    e2l_dofs = (
        maps.e2l[:, :, None] * ndpn + np.arange(ndpn)
    ).reshape(n_elems, n_nodes * ndpn)

    if body_force is not None and n_elems:
        fe = body_force_rhs_batch(lmesh.coords, lmesh.etype, body_force, ndpn)
        scatter_add(flat, e2l_dofs, fe.reshape(n_elems, n_nodes * ndpn))

    for elems, faces, traction in tractions or ():
        if len(elems) == 0:
            continue
        fe = traction_rhs_batch(
            lmesh.coords[elems], lmesh.etype, faces, traction, ndpn
        )
        scatter_add(flat, e2l_dofs[elems], fe.reshape(fe.shape[0], -1))

    f.accumulate_ghosts(comm, cmaps)
    return f.owned_flat.copy()
