"""SELL-C-sigma sliced-ELL storage and vectorized slice kernels.

SELL-C-sigma (Kreutzer et al., arXiv:1112.5588) is the unified
SIMD/GPU-friendly sparse format: rows are sorted by descending length
inside windows of ``sigma`` rows, grouped into chunks of ``C`` rows, and
each chunk is padded to its own width — so the padding overhead of plain
ELLPACK is confined to one chunk while the sort perturbation is confined
to one window.

This implementation adds one repo-specific twist: after the windowed
sort, whole chunks are reordered by descending chunk width.  That gives
the *prefix property* — the rows active in lane ``j`` (rows whose chunk
width exceeds ``j``) are exactly a leading prefix of the permuted row
order — which lets the single-RHS kernel run one contiguous
gather/multiply/accumulate per lane with no per-chunk bookkeeping.

Two redundant layouts are stored (reported honestly by
:meth:`SellCS.stored_bytes`):

* **slice-major** (``slices``): per lane ``j``, the column indices and
  values of entry ``j`` of every active row, contiguous.  Drives the
  bitwise single-RHS kernel :func:`sell_spmv` — per row, lane order is
  stored-entry order, so the accumulation sequence is identical to the
  CSR reference row sum and the result is bitwise-equal.
* **group-major** (``groups``): runs of equal-width chunks, each with a
  dense ``(rows, width)`` value block.  Drives the multi-RHS
  chunk-batched-matmul kernel :func:`sell_spmm` (BLAS3 semantics:
  equal to the oracle to rounding, not bitwise).

Padding uses a *sentinel column*: padded lanes store column ``n_cols``
and value ``0.0``, and the workspace keeps an ``n_cols + 1``-long padded
input whose last slot is pinned to ``+0.0``.  A padded term is therefore
exactly ``0.0 * 0.0 == +0.0`` — never ``-0.0`` and never NaN, even when
fault injection leaves non-finite values in ghost slots — and adding
``+0.0`` to a partial sum that started from ``+0.0`` cannot change its
bits (a partial sum seeded with ``+0.0`` is never ``-0.0``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.util.arrays import INDEX_DTYPE

__all__ = [
    "DEFAULT_C",
    "DEFAULT_SIGMA_FACTOR",
    "SellCS",
    "SellSlice",
    "SellGroup",
    "SellWorkspace",
    "build_sellcs",
    "configure_sell_defaults",
    "resolve_sell_params",
    "sell_defaults",
    "sell_spmv",
    "sell_spmm",
]

#: Hand-picked (C, sigma) defaults: chunk height 32 (one GPU warp / a
#: full AVX-512 lane tier) with an 8C sorting window — the layout the
#: sellcs bench measured at 0.94-0.97 occupancy across the harness
#: problems.  Kreutzer et al. show these are machine-dependent; the
#: autotuner (``repro.tune``) overrides them per machine profile via
#: :func:`configure_sell_defaults`.
DEFAULT_C = 32
DEFAULT_SIGMA_FACTOR = 8

# process-wide tuned overrides: (C, sigma) — None means hand-picked
_SELL_DEFAULTS: list = [None, None]


def configure_sell_defaults(
    C: int | None = None, sigma: int | None = None
) -> tuple[int, int]:
    """Install process-wide SELL-C-sigma layout defaults.

    Called by the tuned-config loaders so every
    :class:`~repro.baselines.sellcs.SellCSOperator` built afterwards
    (serve cache misses, bench cases) picks up the tuned ``(C, sigma)``
    without threading parameters through every factory.  Passing
    ``None`` for both resets to the hand-picked defaults.  Returns the
    now-effective ``(C, sigma)`` pair.
    """
    if C is not None and C < 1:
        raise ValueError(f"chunk height C must be >= 1, got {C}")
    if sigma is not None and sigma < 1:
        raise ValueError(f"sorting window sigma must be >= 1, got {sigma}")
    _SELL_DEFAULTS[0] = int(C) if C is not None else None
    _SELL_DEFAULTS[1] = int(sigma) if sigma is not None else None
    return sell_defaults()


def sell_defaults() -> tuple[int, int]:
    """The currently effective default ``(C, sigma)`` layout parameters."""
    C = _SELL_DEFAULTS[0] if _SELL_DEFAULTS[0] is not None else DEFAULT_C
    sigma = (
        _SELL_DEFAULTS[1]
        if _SELL_DEFAULTS[1] is not None
        else DEFAULT_SIGMA_FACTOR * C
    )
    return C, sigma


def resolve_sell_params(
    C: int | None, sigma: int | None
) -> tuple[int, int]:
    """Resolve explicit ``(C, sigma)`` arguments against the configured
    defaults: an explicit value always wins; ``sigma=None`` with an
    explicit ``C`` keeps the historical ``8 * C`` window."""
    if C is None:
        dC, dsigma = sell_defaults()
        return dC, int(sigma) if sigma is not None else dsigma
    return int(C), int(sigma) if sigma is not None else DEFAULT_SIGMA_FACTOR * int(C)


@dataclass(frozen=True)
class SellSlice:
    """Lane ``j`` of the slice-major layout.

    ``m`` active rows (a prefix of the permuted row order); ``cols`` and
    ``vals`` hold entry ``j`` of each, with sentinel column ``n_cols``
    and value ``0.0`` in padded positions.
    """

    m: int
    cols: np.ndarray
    vals: np.ndarray


@dataclass(frozen=True)
class SellGroup:
    """A run of equal-width chunks: permuted rows ``[r0, r1)`` all padded
    to width ``w``.  ``cols_flat`` is the row-major ``(r1 - r0) * w``
    flattened column block (sentinel-padded); ``vals`` is the dense
    ``(r1 - r0, w)`` value block (zero-padded)."""

    r0: int
    r1: int
    w: int
    cols_flat: np.ndarray
    vals: np.ndarray


@dataclass(frozen=True)
class SellCS:
    """An immutable SELL-C-sigma layout built from one CSR matrix."""

    n_rows: int
    n_cols: int
    C: int
    sigma: int
    nnz: int
    padded_nnz: int
    occupancy: float
    perm: np.ndarray  # (n_rows,) permuted position -> original row
    inv: np.ndarray  # (n_rows,) original row -> permuted position
    widths: np.ndarray  # (n_chunks,) chunk widths, non-increasing
    chunk_sizes: np.ndarray  # (n_chunks,) chunk heights (<= C)
    slices: tuple  # of SellSlice, lane-major
    groups: tuple  # of SellGroup, equal-width runs (w > 0 only)
    active_rows: int  # permuted rows covered by the w > 0 groups

    def stored_bytes(self) -> int:
        """Bytes held by both redundant layouts plus metadata — the
        honest memory cost of the format (padding included twice, once
        per layout)."""
        total = (
            self.perm.nbytes
            + self.inv.nbytes
            + self.widths.nbytes
            + self.chunk_sizes.nbytes
        )
        for s in self.slices:
            total += s.cols.nbytes + s.vals.nbytes
        for g in self.groups:
            total += g.cols_flat.nbytes + g.vals.nbytes
        return total


class SellWorkspace:
    """Per-``(layout, k)`` preallocated buffers for zero-allocation
    steady-state kernels (the ``EmvWorkspace`` convention).

    ``k == 1`` carries the single-RHS buffers; ``k > 1`` the multi-RHS
    ones.  The padded input slot ``[n_cols]`` is pinned to ``+0.0`` at
    construction and never written afterwards.
    """

    def __init__(self, layout: SellCS, k: int = 1):
        if k < 1:
            raise ValueError(f"need at least one column, got k={k}")
        self.layout = layout
        self.k = int(k)
        n, nc = layout.n_rows, layout.n_cols
        m0 = layout.slices[0].m if layout.slices else 0
        if k == 1:
            self.xpad = np.zeros(nc + 1)
            self.g = np.empty(m0)
            self.t = np.empty(m0)
            self.yp = np.empty(n)
            self.y = np.empty(n)
        else:
            self.Xpad = np.zeros((nc + 1, k))
            gmax = 0
            for g in layout.groups:
                gmax = max(gmax, (g.r1 - g.r0) * g.w)
            self.Gbuf = np.empty(gmax * k)
            self.Yp = np.empty((n, k))
            self.Y = np.empty((n, k))


def build_sellcs(A: sp.spmatrix, C: int, sigma: int) -> SellCS:
    """Convert a CSR matrix to a :class:`SellCS` layout.

    The stored entry order of ``A`` is preserved per row (no column
    re-sort), which is what makes :func:`sell_spmv` bitwise-equal to
    ``A @ x``: lane ``j`` of a row is its ``j``-th *stored* entry, so
    the per-row accumulation order is identical to scipy's row sum.
    """
    if C < 1:
        raise ValueError(f"chunk height C must be >= 1, got {C}")
    if sigma < 1:
        raise ValueError(f"sorting window sigma must be >= 1, got {sigma}")
    A = A.tocsr()
    n_rows, n_cols = A.shape
    indptr = A.indptr
    indices = A.indices
    data = A.data
    lens = np.diff(indptr).astype(INDEX_DTYPE)

    # sigma-window stable sort by descending row length: reordering is
    # confined to each window, so sigma=1 is the unsorted identity and
    # sigma >= n_rows is the fully sorted layout
    perm = np.arange(n_rows, dtype=INDEX_DTYPE)
    for s0 in range(0, n_rows, sigma):
        s1 = min(s0 + sigma, n_rows)
        win = perm[s0:s1]
        perm[s0:s1] = win[np.argsort(-lens[win], kind="stable")]

    # chunk the sorted order, then reorder whole chunks by descending
    # width (stable) for the prefix property; the ragged last chunk (if
    # n_rows % C != 0) travels with its width like any other
    chunk_rows = [perm[c0 : c0 + C] for c0 in range(0, n_rows, C)]
    cw = np.array(
        [int(lens[r].max()) if r.size else 0 for r in chunk_rows],
        dtype=INDEX_DTYPE,
    )
    order = np.argsort(-cw, kind="stable")
    chunk_rows = [chunk_rows[int(i)] for i in order]
    widths = cw[order]
    chunk_sizes = np.array([r.size for r in chunk_rows], dtype=INDEX_DTYPE)
    if chunk_rows:
        perm = np.concatenate(chunk_rows)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(n_rows, dtype=INDEX_DTYPE)

    plens = lens[perm] if n_rows else lens
    # chunk width seen by each permuted row (rows are padded to it)
    row_w = (
        np.repeat(widths, chunk_sizes)
        if len(chunk_sizes)
        else np.empty(0, dtype=INDEX_DTYPE)
    )

    wmax = int(widths[0]) if len(widths) else 0
    slices = []
    padded_nnz = 0
    for j in range(wmax):
        # prefix property: rows active in lane j are permuted rows [0, m)
        m = int(np.count_nonzero(row_w > j))
        rows_j = perm[:m]
        has = plens[:m] > j
        cols = np.full(m, n_cols, dtype=INDEX_DTYPE)
        vals = np.zeros(m)
        src = indptr[rows_j[has]] + j
        cols[has] = indices[src]
        vals[has] = data[src]
        slices.append(SellSlice(m=m, cols=cols, vals=vals))
        padded_nnz += m

    groups = []
    r0 = 0
    i = 0
    n_chunks = len(widths)
    active_rows = 0
    while i < n_chunks:
        w = int(widths[i])
        r1 = r0
        while i < n_chunks and int(widths[i]) == w:
            r1 += int(chunk_sizes[i])
            i += 1
        if w > 0:
            rows_g = perm[r0:r1]
            lane = np.arange(w, dtype=INDEX_DTYPE)
            idx = indptr[rows_g][:, None] + lane[None, :]
            valid = lane[None, :] < lens[rows_g][:, None]
            safe = np.where(valid, idx, 0)
            cols2d = np.where(valid, indices[safe], n_cols)
            vals2d = np.where(valid, data[safe], 0.0)
            groups.append(
                SellGroup(
                    r0=r0,
                    r1=r1,
                    w=w,
                    cols_flat=np.ascontiguousarray(
                        cols2d.reshape(-1), dtype=INDEX_DTYPE
                    ),
                    vals=np.ascontiguousarray(vals2d),
                )
            )
            active_rows = r1
        r0 = r1

    nnz = int(A.nnz)
    return SellCS(
        n_rows=n_rows,
        n_cols=n_cols,
        C=int(C),
        sigma=int(sigma),
        nnz=nnz,
        padded_nnz=int(padded_nnz),
        occupancy=(nnz / padded_nnz) if padded_nnz else 1.0,
        perm=perm,
        inv=inv,
        widths=widths,
        chunk_sizes=chunk_sizes,
        slices=tuple(slices),
        groups=tuple(groups),
        active_rows=int(active_rows),
    )


def sell_spmv(
    layout: SellCS,
    x: np.ndarray,
    ws: SellWorkspace,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``y = A @ x`` through the slice-major layout — bitwise-equal to
    the CSR reference product, in original row order.

    Allocation-free given a ``k == 1`` workspace; the result lands in
    ``out`` (or the workspace ``y`` buffer, overwritten per call).
    """
    xpad = ws.xpad
    xpad[: layout.n_cols] = x
    yp = ws.yp
    yp[:] = 0.0
    for s in layout.slices:
        m = s.m
        g = ws.g[:m]
        t = ws.t[:m]
        np.take(xpad, s.cols, out=g, mode="clip")
        np.multiply(s.vals, g, out=t)
        np.add(yp[:m], t, out=yp[:m])
    y = ws.y if out is None else out
    np.take(yp, layout.inv, out=y, mode="clip")
    return y


def sell_spmm(
    layout: SellCS,
    X: np.ndarray,
    ws: SellWorkspace,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``Y = A @ X`` through the group-major layout: one dense
    ``(rows, 1, w) @ (rows, w, k)`` batched matmul per equal-width chunk
    run.  BLAS3 semantics — equal to the per-column oracle to rounding
    (each row contracts its ``w`` lanes in one fused reduction), not
    bitwise.  Allocation-free given a matching ``k > 1`` workspace.
    """
    k = ws.k
    Xpad = ws.Xpad
    Xpad[: layout.n_cols] = X
    Yp = ws.Yp
    # rows past the last w > 0 group live in zero-width chunks: empty
    # rows, whose product is identically zero
    Yp[layout.active_rows :] = 0.0
    for grp in layout.groups:
        mg = grp.r1 - grp.r0
        G = ws.Gbuf[: mg * grp.w * k].reshape(mg * grp.w, k)
        np.take(Xpad, grp.cols_flat, axis=0, out=G, mode="clip")
        np.matmul(
            grp.vals[:, None, :],
            G.reshape(mg, grp.w, k),
            out=Yp[grp.r0 : grp.r1].reshape(mg, 1, k),
        )
    Y = ws.Y if out is None else out
    np.take(Yp, layout.inv, axis=0, out=Y, mode="clip")
    return Y
