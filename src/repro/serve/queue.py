"""Bounded FIFO admission queue with deadlines and cancellation.

Pure Python (no numpy) so the queue/batcher pair stays cheap to
property-test under Hypothesis.  Invariants the tests pin down:

* global FIFO order is preserved — requests are only ever removed, never
  reordered;
* a request leaves the queue exactly once (completed, cancelled, shed, or
  rejected at admission) — never lost, never duplicated;
* the queue never holds more than ``capacity`` requests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["ServeRequest", "RequestQueue"]

_KINDS = ("spmv", "solve")


@dataclass(frozen=True)
class ServeRequest:
    """One unit of client work.

    The request does not carry its right-hand side as data: the vector is
    regenerated deterministically from ``seed`` on the serving side (and
    by the verifier), which keeps requests cheap and replayable.
    """

    rid: int
    key: Any  # operator identity (hashable; a ProblemKey in practice)
    kind: str = "spmv"  # "spmv" | "solve"
    seed: int = 0
    arrival: float = 0.0  # virtual-time arrival stamp
    deadline: float | None = None  # absolute virtual time; None = no deadline
    rtol: float = 1e-6  # solve requests only
    tenant: str | None = None  # multi-tenant accounting/admission label
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}")

    def expired(self, now: float) -> bool:
        return self.deadline is not None and self.deadline < now


class RequestQueue:
    """Bounded FIFO queue keyed by request id."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._q: OrderedDict[int, ServeRequest] = OrderedDict()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def __contains__(self, rid: int) -> bool:
        return rid in self._q

    def submit(self, req: ServeRequest) -> bool:
        """Admit ``req``; returns False (shed) when the queue is full."""
        if req.rid in self._q:
            raise ValueError(f"duplicate request id {req.rid}")
        if len(self._q) >= self.capacity:
            return False
        self._q[req.rid] = req
        return True

    def cancel(self, rid: int) -> ServeRequest | None:
        """Remove a queued request; returns it, or None if not queued."""
        return self._q.pop(rid, None)

    def expire(self, now: float) -> list[ServeRequest]:
        """Remove and return every request whose deadline has passed."""
        dead = [r for r in self._q.values() if r.expired(now)]
        for r in dead:
            del self._q[r.rid]
        return dead

    def fifo(self) -> Iterator[ServeRequest]:
        """Queued requests, oldest first (admission order)."""
        return iter(list(self._q.values()))

    def head(self) -> ServeRequest | None:
        return next(iter(self._q.values()), None)

    def take(self, rids: Iterator[int]) -> list[ServeRequest]:
        """Remove the given ids (which must all be queued); FIFO order is
        preserved for the requests left behind."""
        return [self._q.pop(rid) for rid in rids]
