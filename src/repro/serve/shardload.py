"""Zipf multi-tenant load harness: ``python -m repro.harness shard``.

Drives a :class:`~repro.serve.shard.ShardCluster` with a seeded open-loop
workload whose *key* and *tenant* popularity both follow (finite) Zipf
distributions — the classic shape of multi-tenant traffic, where a few
hot operators and a few heavy tenants dominate.  Everything runs in
virtual time, so "millions of users" compress into a deterministic
discrete-event simulation: latencies, utilization and failover counts are
pure functions of the seed and the code path, comparable across machines.

Every delivered answer is re-checked after the run against a fresh,
fault-free **single-node** reference cache — the same solver stack with
no sharding, no replication, no failover.  Scenarios that run the bitwise
per-column oracle mode check spmv *and* solve results with
``np.array_equal`` (sharding must be invisible down to the last bit, even
across a shard kill); auto-mode scenarios use the same tolerance contract
as the serve harness (GEMM batches answer at rounding-level agreement).
Any miss counts as a ``wrong_answer`` — gated to exactly zero in CI.

Alongside ``SHARD_report.json`` (schema ``repro.shard/1``) the harness
writes a ``BENCH_shard.json`` projection for the ``repro.obs.compare``
gate: p50 and p99 latency as gated phases, plus robust request counters
and the per-shard utilization peak-to-mean skew.
"""

from __future__ import annotations

import argparse
import heapq
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.faults.shard import ShardFaultPlan, ShardKill
from repro.obs.instrumentation import Instrumentation, percentile_summary
from repro.obs.schema import (
    new_bench_doc,
    new_shard_doc,
    validate_bench_doc,
    validate_shard_doc,
)
from repro.serve.batcher import BatchPolicy, DeadlineBatcher
from repro.serve.cache import OperatorCache, ProblemKey
from repro.serve.loadgen import SPMV_REL_TOL, load_calibrated_k_min
from repro.serve.queue import ServeRequest
from repro.serve.service import SolverService
from repro.serve.shard import ShardCluster, ShardRouter
from repro.simmpi.cluster import VirtualCluster

__all__ = [
    "ShardWorkload",
    "build_cluster",
    "run_shard_workload",
    "run_shard_suite",
    "shard_suite_workloads",
    "main",
]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized finite Zipf pmf over ranks ``1..n`` with exponent ``s``."""
    if n < 1:
        raise ValueError(f"zipf_weights: n must be >= 1, got {n}")
    w = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** s
    return w / w.sum()


@dataclass(frozen=True)
class ShardWorkload:
    """One seeded sharded-serving scenario."""

    name: str
    keys: tuple[ProblemKey, ...]
    n_shards: int = 4
    n_tenants: int = 8
    zipf_s: float = 1.1  # key-popularity skew exponent
    tenant_zipf_s: float = 1.0  # tenant-traffic skew exponent
    n_requests: int = 96
    rate_rps: float = 20000.0  # open-loop mean arrival rate (virtual req/s)
    solve_frac: float = 0.25
    rtol: float = 1e-6
    deadline_s: float | None = None
    max_batch: int = 8
    queue_capacity: int = 16
    cache_capacity: int = 3
    tenant_quota: int | None = None  # per-tenant outstanding-work cap
    hot_threshold: int = 12
    max_replicas: int = 1
    vnodes: int = 64
    mode: str = "auto"
    k_min: int | None = None
    shard_faults: ShardFaultPlan | None = None
    verify: str = "tolerance"  # "tolerance" | "bitwise"

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "n_shards": self.n_shards,
            "n_tenants": self.n_tenants,
            "zipf_s": self.zipf_s,
            "tenant_zipf_s": self.tenant_zipf_s,
            "n_requests": self.n_requests,
            "rate_rps": self.rate_rps,
            "solve_frac": self.solve_frac,
            "rtol": self.rtol,
            "deadline_s": self.deadline_s,
            "max_batch": self.max_batch,
            "queue_capacity": self.queue_capacity,
            "cache_capacity": self.cache_capacity,
            "tenant_quota": self.tenant_quota,
            "hot_threshold": self.hot_threshold,
            "max_replicas": self.max_replicas,
            "vnodes": self.vnodes,
            "mode": self.mode,
            "k_min": self.k_min,
            "verify": self.verify,
            "keys": [k.fingerprint() for k in self.keys],
            "shard_faults": (
                self.shard_faults.describe() if self.shard_faults else None
            ),
        }


def build_cluster(
    w: ShardWorkload, k_min: int | None = None
) -> tuple[ShardCluster, VirtualCluster, Instrumentation]:
    """Materialize the cluster a workload describes: one
    :class:`SolverService` (own cache, own instrumentation, deadline
    batcher) per shard, wired through a :class:`ShardRouter` and
    registered on a :class:`VirtualCluster` for per-shard busy-time
    accounting."""
    obs = Instrumentation(rank=-1)
    vcluster = VirtualCluster()
    shard_ids = [f"s{i}" for i in range(w.n_shards)]
    router = ShardRouter(
        shard_ids,
        vnodes=w.vnodes,
        hot_threshold=w.hot_threshold,
        max_replicas=w.max_replicas,
    )
    services = {}
    for sid in shard_ids:
        cache = OperatorCache(
            capacity=w.cache_capacity,
            obs=Instrumentation(rank=-1),
            cluster=vcluster,
            cluster_name=sid,
        )
        services[sid] = SolverService(
            cache,
            queue_capacity=w.queue_capacity,
            mode=w.mode,
            k_min=w.k_min if w.k_min is not None else k_min,
            batcher=DeadlineBatcher(BatchPolicy(w.max_batch)),
        )
    cluster = ShardCluster(
        router,
        services,
        obs=obs,
        tenant_quota=w.tenant_quota,
        shard_faults=w.shard_faults,
    )
    return cluster, vcluster, obs


def run_shard_workload(
    w: ShardWorkload, seed: int = 1234, k_min: int | None = None
) -> dict[str, Any]:
    """Simulate one scenario; returns a schema-conforming scenario dict."""
    cluster, vcluster, obs = build_cluster(w, k_min=k_min)
    rng = np.random.default_rng(seed)
    key_p = zipf_weights(len(w.keys), w.zipf_s)
    tenant_p = zipf_weights(w.n_tenants, w.tenant_zipf_s)

    # pre-drawn Poisson arrival process with Zipf key/tenant marks
    arrivals: list[tuple[float, ServeRequest]] = []
    t = 0.0
    for rid in range(w.n_requests):
        t += float(rng.exponential(1.0 / w.rate_rps))
        key = w.keys[int(rng.choice(len(w.keys), p=key_p))]
        tenant = f"t{int(rng.choice(w.n_tenants, p=tenant_p))}"
        kind = "solve" if rng.random() < w.solve_frac else "spmv"
        arrivals.append((
            t,
            ServeRequest(
                rid=rid,
                key=key,
                kind=kind,
                seed=int(seed * 100003 + rid),
                arrival=t,
                deadline=(
                    t + w.deadline_s if w.deadline_s is not None else None
                ),
                rtol=w.rtol,
                tenant=tenant,
            ),
        ))
    heapq.heapify(arrivals)

    completions: list = []
    latency: dict[str, list[float]] = {"all": [], "spmv": [], "solve": []}
    tenant_counts: dict[str, dict[str, int]] = {}
    now = 0.0
    makespan = 0.0

    def tcount(tenant: str, field: str) -> None:
        rec = tenant_counts.setdefault(
            tenant, {"submitted": 0, "completed": 0}
        )
        rec[field] += 1

    while arrivals or cluster.pending:
        while arrivals and arrivals[0][0] <= now:
            _, req = heapq.heappop(arrivals)
            tcount(req.tenant, "submitted")
            cluster.submit(req, now)
        for disp in cluster.step(now):
            for c in disp.outcome.completions:
                if c.status == "ok":
                    lat = disp.end - c.request.arrival
                    latency["all"].append(lat)
                    latency[c.request.kind].append(lat)
                    tcount(c.request.tenant, "completed")
                    completions.append(c)
            makespan = max(makespan, disp.end)
        candidates = []
        if arrivals:
            candidates.append(arrivals[0][0])
        wake = cluster.next_wakeup(now)
        if wake > now and wake != float("inf"):
            candidates.append(wake)
        future = [c for c in candidates if c > now]
        if not future:
            if cluster.pending:
                continue  # an idle shard can still drain work at `now`
            break
        now = min(future)
    cluster.advance(makespan)  # late-scheduled fault events still apply

    wrong = _verify(w, completions)
    obs.incr("shard.wrong_answers", wrong)  # materialize even when 0

    counters = cluster.request_counters()
    counters["shard.wrong_answers"] = int(wrong)
    req_counts = {
        "submitted": counters.get("shard.submitted", 0),
        "completed": counters.get("serve.completed", 0),
        "rejected": (
            counters.get("shard.shed_full", 0)
            + counters.get("shard.failover_shed", 0)
        ),
        "shed_tenant": counters.get("shard.shed_tenant", 0),
        "shed_deadline": counters.get("serve.shed_deadline", 0),
        "spilled": counters.get("shard.spills", 0),
        "failed": counters.get("serve.failed", 0),
        "failovers": counters.get("shard.failovers", 0),
        "wrong_answers": int(wrong),
    }

    util = cluster.utilization(makespan)
    shards = {}
    for sid in cluster.shard_ids():
        sh = cluster.shard_state(sid)
        shards[sid] = {
            "utilization": util[sid],
            "busy_s": sh.busy_s,
            "sim_busy_s": vcluster.busy_vtime(sid),
            "dispatches": sh.dispatches,
            "alive": sh.alive,
            "cache": sh.service.cache.stats(),
        }
    batches, modes = cluster.merged_histograms()
    tenants = {
        t: {
            **tenant_counts.get(t, {"submitted": 0, "completed": 0}),
            **{
                k: v
                for k, v in cluster.tenant_cache_stats().get(t, {}).items()
                if k == "hit_rate"
            },
        }
        for t in sorted(tenant_counts)
    }
    ctx0 = w.keys[0].build_spec()
    return {
        "scenario": w.name,
        "workload": w.describe(),
        "n_shards": w.n_shards,
        "n_parts": ctx0.n_parts,
        "n_dofs": ctx0.n_dofs,
        "requests": req_counts,
        "latency_s": {
            k: percentile_summary(v) for k, v in latency.items() if v
        },
        "throughput_rps": (
            req_counts["completed"] / makespan if makespan > 0 else 0.0
        ),
        "makespan_s": makespan,
        "shards": shards,
        "utilization": cluster.utilization_summary(makespan),
        "replication": cluster.router.replication_report(),
        "tenants": tenants,
        "batch_histogram": {str(k): v for k, v in sorted(batches.items())},
        "modes": dict(sorted(modes.items())),
        "counters": counters,
    }


def _verify(w: ShardWorkload, completions: list) -> int:
    """Re-check every delivered answer on a fault-free single-node
    reference cache; returns the wrong-answer count."""
    ref = OperatorCache(
        capacity=max(len(w.keys), 1), obs=Instrumentation(rank=-1)
    )
    wrong = 0
    for c in completions:
        ctx, _ = ref.get(c.request.key)
        x = SolverService.input_vector(ctx, c.request.seed)
        if c.request.kind == "spmv":
            y_ref, _ = ctx.apply_multi(x[:, None])
            y_ref = y_ref[:, 0]
            if w.verify == "bitwise":
                if not np.array_equal(c.value, y_ref):
                    wrong += 1
                continue
            scale = float(np.linalg.norm(y_ref)) or 1.0
            err = float(np.linalg.norm(c.value - y_ref))
            if not np.isfinite(err) or err > SPMV_REL_TOL * scale:
                wrong += 1
        elif w.verify == "bitwise":
            # oracle-mode solves are bitwise per column regardless of the
            # batch they rode in, so the sharded answer must equal the
            # single-node solve exactly — kill or no kill
            out, _ = ctx.solve_multi(x[:, None], rtol=c.request.rtol)
            if not np.array_equal(c.value, out["x"][:, 0]):
                wrong += 1
        else:
            rel = float(ctx.residuals(x[:, None], c.value[:, None])[0])
            if not np.isfinite(rel) or rel > max(10 * c.request.rtol, 1e-8):
                wrong += 1
    return wrong


# ----------------------------------------------------------------------------
# the standard suite
# ----------------------------------------------------------------------------

def _catalog(n: int) -> tuple[ProblemKey, ...]:
    """``n`` small distinct operators (2-rank contexts keep builds cheap)."""
    keys = []
    for i in range(n):
        if i % 2:
            keys.append(ProblemKey(
                problem="poisson", nel=3 + (i % 3), n_parts=2, etype="tet4",
                seed=i,
            ))
        else:
            keys.append(ProblemKey(
                problem="poisson", nel=3 + (i // 2) % 2, n_parts=2,
                etype="hex8", seed=i,
            ))
    return tuple(keys)


def shard_suite_workloads(
    seed: int, smoke: bool = True
) -> tuple[ShardWorkload, ...]:
    """The three standard sharded scenarios.

    * ``zipf-hot`` — skewed key popularity over a 4-shard ring: the hot
      head keys cross the replication threshold, spill balances them
      across replicas, and per-shard utilization stays within the gated
      peak-to-mean skew bound;
    * ``tenant-storm`` — heavily skewed tenant traffic against a
      per-tenant quota: the storm tenant is clipped by admission control
      (fair queueing), light tenants keep completing, per-tenant hit
      rates come from the new cache tenant labels;
    * ``shard-kill`` — a shard dies mid-run under the bitwise oracle
      mode: queued work fails over, its keys rebuild (or hit a warm
      replica) on the survivors, and every delivered answer — spmv *and*
      solve — is ``np.array_equal`` to the fault-free single-node
      reference.
    """
    scale = 1 if smoke else 3
    zipf = ShardWorkload(
        name="zipf-hot",
        keys=_catalog(8),
        n_shards=4,
        n_tenants=8,
        zipf_s=1.4,
        tenant_zipf_s=1.0,
        n_requests=96 * scale,
        rate_rps=30000.0,
        solve_frac=0.25,
        max_batch=8,
        queue_capacity=12,
        cache_capacity=3,
        hot_threshold=10,
        max_replicas=2,
    )
    storm = ShardWorkload(
        name="tenant-storm",
        keys=_catalog(6),
        n_shards=4,
        n_tenants=6,
        zipf_s=1.1,
        tenant_zipf_s=1.6,
        n_requests=72 * scale,
        rate_rps=150000.0,
        solve_frac=0.2,
        deadline_s=0.02,
        max_batch=6,
        queue_capacity=10,
        cache_capacity=3,
        tenant_quota=3,
        hot_threshold=12,
        max_replicas=1,
    )
    kill = ShardWorkload(
        name="shard-kill",
        keys=_catalog(4),
        n_shards=4,
        n_tenants=4,
        zipf_s=1.2,
        tenant_zipf_s=1.0,
        n_requests=64 * scale,
        rate_rps=400000.0,
        solve_frac=0.3,
        max_batch=6,
        queue_capacity=32 * scale,  # backlog grows with the request count
        cache_capacity=4,
        hot_threshold=4,  # replicate early so the kill has warm failover
        max_replicas=2,
        mode="oracle",
        verify="bitwise",
        # arrivals outpace service (2.5 us inter-arrival vs tens-of-us
        # dispatches) so every shard holds a backlog; the kill lands mid
        # arrival window and s1's queued work must fail over.
        shard_faults=ShardFaultPlan(kills=(ShardKill("s1", at=1.0e-4),)),
    )
    return (zipf, storm, kill)


def run_shard_suite(
    seed: int = 1234,
    smoke: bool = True,
    verbose: bool = True,
    k_min: int | None = None,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run the standard scenarios; returns ``(shard_doc, bench_doc)``."""
    doc = new_shard_doc(config={"seed": seed, "smoke": smoke, "k_min": k_min})
    for w in shard_suite_workloads(seed, smoke=smoke):
        if verbose:
            print(f"[shard] scenario {w.name} ...", flush=True)
        sc = run_shard_workload(w, seed=seed, k_min=k_min)
        doc["scenarios"].append(sc)
        if verbose:
            lat = sc["latency_s"].get("all", {})
            print(
                f"[shard]   {sc['requests']['completed']}/"
                f"{sc['requests']['submitted']} ok over "
                f"{sc['n_shards']} shards, "
                f"p50 {lat.get('p50', 0) * 1e3:.3f} ms, "
                f"p99 {lat.get('p99', 0) * 1e3:.3f} ms, "
                f"skew {sc['utilization']['peak_to_mean']:.2f}, "
                f"repl x{sc['replication']['replication_factor']:.2f}, "
                f"failovers {sc['requests']['failovers']}, "
                f"wrong {sc['requests']['wrong_answers']}"
            )
    return validate_shard_doc(doc), validate_bench_doc(_bench_doc(doc))


#: request counters exported to the bench doc — the deterministic ones
#: (per-split queueing counters shift when one latency moves by one CG
#: iteration across numpy versions; these stay put or are gated hard)
_BENCH_COUNTERS = ("submitted", "completed", "failed", "wrong_answers",
                   "failovers")


def _bench_doc(shard_doc: dict[str, Any]) -> dict[str, Any]:
    """Project the shard report onto the standard bench schema so the
    existing ``repro.obs.compare`` gate applies unchanged.  The p99 tail
    is exported as its own phase (``…latency.all.p99``) whose *median* is
    the p99 value, which puts the tail directly under the phase budget;
    the utilization skew rides as an integer-percent counter."""
    bench = new_bench_doc(
        suite="shard", repeats=1, config=dict(shard_doc["config"])
    )
    for sc in shard_doc["scenarios"]:
        phases = {}
        for kind, summ in sc["latency_s"].items():
            phases[f"shard.latency.{kind}"] = {
                "median": summ["p50"],
                "min": summ["min"],
                "max": summ["max"],
                "repeats": summ["n"],
                "p95": summ["p95"],
                "p99": summ["p99"],
            }
            phases[f"shard.latency.{kind}.p99"] = {
                "median": summ["p99"],
                "min": summ["p99"],
                "max": summ["p99"],
                "repeats": summ["n"],
            }
        phases["shard.makespan"] = {
            "median": sc["makespan_s"],
            "min": sc["makespan_s"],
            "max": sc["makespan_s"],
            "repeats": 1,
        }
        counters = {
            f"shard.{name}": sc["requests"][name] for name in _BENCH_COUNTERS
        }
        counters["shard.util_peak_to_mean_pct"] = int(
            round(100 * sc["utilization"]["peak_to_mean"])
        )
        bench["results"].append({
            "case": f"shard-{sc['scenario']}",
            "method": "shard",
            "n_parts": sc["n_parts"],
            "n_dofs": sc["n_dofs"],
            "phases": phases,
            "counters": counters,
        })
    return bench


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness shard",
        description="Zipf multi-tenant load harness for the sharded "
        "solver tier; emits SHARD_report.json (+ BENCH_shard.json for "
        "the compare gate)",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized scenarios (fewer requests; same structure)",
    )
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("SHARD_report.json"),
        help="shard report path (default: ./SHARD_report.json)",
    )
    ap.add_argument(
        "--bench-out",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_shard.json"),
        help="bench-schema projection path (default: ./BENCH_shard.json)",
    )
    ap.add_argument(
        "--max-skew",
        type=float,
        default=None,
        metavar="PEAK_TO_MEAN",
        help="fail when any scenario's per-shard utilization peak-to-mean "
        "ratio exceeds this bound (1.0 = perfectly balanced)",
    )
    ap.add_argument(
        "--k-min",
        type=int,
        default=None,
        help="auto-mode GEMM crossover (default: kernels DEFAULT_K_MIN)",
    )
    ap.add_argument(
        "--k-min-from",
        type=pathlib.Path,
        default=None,
        metavar="BENCH_KERNELS_JSON",
        help="load the calibrated crossover from a kernels-bench "
        "document's config.gemm_k_min_crossover (--k-min wins if both "
        "are given; missing file/key falls back to the default)",
    )
    ap.add_argument(
        "--tuned-from",
        type=pathlib.Path,
        default=None,
        metavar="TUNED_CONFIG_JSON",
        help="load an autotuner artifact (tuned_config.json, "
        "TUNE_report.json or a legacy bench doc) and apply its GEMM "
        "crossover + SELL (C, sigma) defaults (--k-min/--k-min-from win)",
    )
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    from repro.tune.calibration import load_tuned_config

    tuned = load_tuned_config(args.tuned_from)
    if tuned is not None:
        if tuned.get("sell_c") is not None:
            from repro.core.sellcs import configure_sell_defaults

            c = int(tuned.get("sell_c"))
            sigma = int(tuned.get("sell_sigma_factor", 8)) * c
            configure_sell_defaults(c, sigma)
            if not args.quiet:
                print(f"[shard] tuned SELL defaults C={c} sigma={sigma}")

    k_min = args.k_min
    if k_min is None and args.k_min_from is not None:
        k_min = load_calibrated_k_min(args.k_min_from)
        if not args.quiet and k_min is not None:
            print(f"[shard] calibrated k_min={k_min} from {args.k_min_from}")
    if k_min is None and tuned is not None and tuned.get("gemm_k_min") is not None:
        k_min = int(tuned.get("gemm_k_min"))
        if not args.quiet:
            print(f"[shard] tuned k_min={k_min} from {args.tuned_from}")

    doc, bench = run_shard_suite(
        seed=args.seed, smoke=args.smoke, verbose=not args.quiet, k_min=k_min
    )
    for path, payload in ((args.out, doc), (args.bench_out, bench)):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if not args.quiet:
        print(f"\n[shard] wrote {args.out} and {args.bench_out}")

    status = 0
    wrong = sum(sc["requests"]["wrong_answers"] for sc in doc["scenarios"])
    if wrong:
        print(f"[shard] FAIL: {wrong} wrong answer(s)", file=sys.stderr)
        status = 1
    if args.max_skew is not None:
        for sc in doc["scenarios"]:
            skew = sc["utilization"]["peak_to_mean"]
            if skew > args.max_skew:
                print(
                    f"[shard] FAIL: {sc['scenario']} utilization "
                    f"peak-to-mean {skew:.2f} > bound {args.max_skew:.2f}",
                    file=sys.stderr,
                )
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
