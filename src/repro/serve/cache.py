"""Operator cache: warm solver contexts keyed by a problem fingerprint.

A :class:`SolverContext` is the expensive thing the service amortizes: a
persistent :class:`~repro.simmpi.engine.Simulator` whose ranks hold a
fully set-up operator (element matrices computed and stored — the paper's
one-time setup cost), the Dirichlet machinery (mask, prescribed values,
precomputed ``A u0``) and a Jacobi preconditioner.  Requests then execute
as multi-RHS products/solves against the warm context; only a cache miss
pays setup again.

:class:`OperatorCache` is a bounded LRU over contexts, with hit/miss/
eviction counters reported through :mod:`repro.obs`.

Contexts run in modeled virtual time (``compute_scale=0`` plus a fixed
modeled EMV rate), so every latency the serve harness reports is a
deterministic function of the code path and the network model — identical
on a laptop and a CI runner, which is what makes the checked-in serve
baseline comparable across machines.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs.instrumentation import Instrumentation
from repro.simmpi.engine import Simulator
from repro.simmpi.network import NetworkModel
from repro.solvers.cg import ResilienceConfig, cg, cg_multi
from repro.solvers.preconditioners import JacobiPreconditioner
from repro.util.arrays import INDEX_DTYPE

__all__ = ["ProblemKey", "SolverContext", "OperatorCache", "DEFAULT_RATE_GFLOPS"]

#: deterministic modeled EMV rate (GFLOP/s) — matches the smoke bench's
#: convention of a deliberately slow rate so modeled durations sit well
#: above the compare gate's noise floor
DEFAULT_RATE_GFLOPS = 1.0

_MODELED_METHODS = ("hymv", "matfree", "partial")
_KERNEL_METHODS = ("hymv", "matfree", "partial", "hymv_gpu")


@dataclass(frozen=True)
class ProblemKey:
    """Canonical identity of one servable operator.

    Two requests share a cached context iff their keys are equal; the
    :meth:`fingerprint` is the stable cache/string form of that identity.
    """

    problem: str = "poisson"  # "poisson" | "elastic" | "graphlap"
    nel: int = 4
    n_parts: int = 4
    etype: str = "tet4"
    seed: int = 0  # mesh jitter seed (tet meshes)
    method: str = "hymv"
    kernel: str = "einsum"
    #: applied :class:`~repro.adapt.delta.MeshDelta` history, in order —
    #: a delta-updated operator and one built fresh from the same key are
    #: the same servable identity (and bitwise the same operator)
    deltas: tuple = ()

    def fingerprint(self) -> str:
        """Stable short hash of the canonical field tuple."""
        canon = (
            f"problem={self.problem};nel={self.nel};n_parts={self.n_parts};"
            f"etype={self.etype};seed={self.seed};method={self.method};"
            f"kernel={self.kernel}"
        )
        if self.deltas:
            canon += ";deltas=" + ",".join(
                d.fingerprint() for d in self.deltas
            )
        return hashlib.sha1(canon.encode()).hexdigest()[:12]

    def n_dofs_estimate(self) -> int:
        """Cheap closed-form dof-count estimate for backend routing (no
        mesh build).  Exact for the structured box meshes all three
        problem kinds use: ``(nel + 1)`` grid nodes per axis (the bar is
        ``2 nel`` elements tall), times dofs per node."""
        n = self.nel + 1
        if self.problem == "elastic":
            return n * n * (2 * self.nel + 1) * 3
        return n * n * n

    def with_delta(self, delta) -> "ProblemKey":
        """The key of this operator after one more applied delta."""
        from dataclasses import replace

        return replace(self, deltas=self.deltas + (delta,))

    def build_spec(self):
        """Materialize the :class:`~repro.problems.ProblemSpec`, replaying
        the delta history so a fresh build lands on the post-update mesh."""
        from repro.mesh.element import ElementType
        from repro.problems import (
            elastic_bar_problem,
            graph_laplacian_problem,
            poisson_problem,
        )

        etype = ElementType[self.etype.upper()]
        if self.problem == "poisson":
            spec = poisson_problem(
                self.nel, n_parts=self.n_parts, etype=etype, seed=self.seed
            )
        elif self.problem == "elastic":
            spec = elastic_bar_problem(
                (self.nel, self.nel, 2 * self.nel),
                n_parts=self.n_parts,
                etype=etype,
            )
        elif self.problem == "graphlap":
            spec = graph_laplacian_problem(
                self.nel, n_parts=self.n_parts, etype=etype, seed=self.seed
            )
        else:
            raise ValueError(f"unknown problem {self.problem!r}")
        if self.deltas:
            from repro.adapt.apply import apply_delta_to_spec

            for d in self.deltas:
                spec, _ = apply_delta_to_spec(spec, d)
        return spec


def _dirichlet_state(comm, A, maps, lmesh, spec) -> dict:
    """Dirichlet machinery derived from the (current) operator: mask,
    prescribed values, precomputed ``A u0`` and Jacobi preconditioner.
    Shared by first setup and in-place delta updates so both paths hold
    bitwise-identical state for the same operator."""
    from repro.core.rhs import local_node_coords

    ndpn = spec.operator.ndpn
    owned_ids = np.arange(lmesh.n_begin, lmesh.n_end, dtype=INDEX_DTYPE)
    coords = local_node_coords(maps, lmesh)[maps.owned_slice]
    mask = np.zeros(owned_ids.size * ndpn, dtype=bool)
    u0 = np.zeros(owned_ids.size * ndpn)
    for bc in spec.bcs:
        m = bc.mask_slice(lmesh.n_begin, lmesh.n_end)
        vals = bc.values_for(owned_ids, coords).reshape(-1)
        u0[m] = vals[m]
        mask |= m

    Au0 = A.apply_owned(u0)
    d = A.diagonal_owned()
    d[mask] = 1.0
    return {
        "mask": mask,
        "u0": u0,
        "Au0": Au0,
        "M": JacobiPreconditioner(d),
        "n_owned": owned_ids.size * ndpn,
    }


def _setup_program(comm, lmesh, spec, method, kernel, modeled_rate,
                   ke_cache=None):
    """Per-rank setup: operator + Dirichlet machinery + preconditioner."""
    from repro.core.maps import build_node_maps
    from repro.core.scatter import build_comm_maps
    from repro.harness.driver import OPERATOR_FACTORIES

    ranges = np.asarray(
        comm.allgather((lmesh.n_begin, lmesh.n_end)), dtype=INDEX_DTYPE
    )
    options = {}
    if method in _KERNEL_METHODS:
        options["kernel"] = kernel
    if method in _MODELED_METHODS and modeled_rate is not None:
        options["modeled_rate_gflops"] = modeled_rate
    if spec.elem_scale is not None:
        options["elem_scale"] = spec.elem_scale[lmesh.elements]
    if ke_cache is not None and method in ("hymv", "hymv_gpu"):
        options["ke_cache"] = ke_cache
    A = OPERATOR_FACTORIES[method](
        comm, lmesh, spec.operator, ranges=ranges, **options
    )

    if hasattr(A, "e2l_dofs"):
        maps = A.maps
    else:
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        build_comm_maps(comm, maps, ranges=ranges)

    st = {"A": A, "lmesh": lmesh, "maps": maps}
    st.update(_dirichlet_state(comm, A, maps, lmesh, spec))
    return st


def _update_program(comm, st, od, n_model, spec, ke_flops, rate):
    """Per-rank in-place delta patch: update the touched element batch,
    advance the modeled recompute time, refresh Dirichlet machinery."""
    A = st["A"]
    A.update_elements(
        od.local_elems, coords=od.coords, stiffness_scale=od.scale
    )
    if rate and n_model:
        comm.advance(n_model * ke_flops / (rate * 1e9), "update.modeled")
    st.update(_dirichlet_state(comm, A, st["maps"], st["lmesh"], spec))


def _rebuild_advance_program(comm, st, n_model, ke_flops, rate):
    """Modeled element-recompute cost of a full rebuild (setup compute is
    measured at ``compute_scale=0`` inside the setup program, so the
    element-matrix work is modeled explicitly, net of ke-cache hits)."""
    if rate and n_model > 0:
        comm.advance(n_model * ke_flops / (rate * 1e9), "update.modeled")


def _hat_multi(st, X, mode="auto"):
    """Dirichlet-projected multi-RHS operator; under the resolved oracle
    mode column-bitwise identical to
    :func:`repro.solvers.constrained.dirichlet_system`'s ``apply_hat``."""
    Xp = X.copy()
    Xp[st["mask"], :] = 0.0
    Y = st["A"].apply_owned_multi(Xp, mode=mode)
    Y[st["mask"], :] = X[st["mask"], :]
    return Y


def _hat_single(st, f):
    """Single-column Dirichlet system matching :func:`_hat_multi` bitwise."""
    mask, u0, A = st["mask"], st["u0"], st["A"]
    b_hat = np.ascontiguousarray(f) - st["Au0"]
    b_hat[mask] = u0[mask]

    def apply_hat(x):
        xp = x.copy()
        xp[mask] = 0.0
        y = A.apply_owned(xp)
        y[mask] = x[mask]
        return y

    return apply_hat, b_hat


def _apply_program(comm, st, Xr, mode="auto"):
    return st["A"].apply_owned_multi(Xr, mode=mode)


def _solve_program(comm, st, Fr, rtol, maxiter, degraded, mode="auto"):
    k = Fr.shape[1]
    if degraded:
        # fault-aware degradation: per-column resilient CG (breakdown
        # detection + restart) instead of the lock-step fused batch
        xs, iters, conv, restarts = [], [], [], []
        for j in range(k):
            apply_hat, b_hat = _hat_single(st, Fr[:, j])
            r = cg(
                comm, apply_hat, b_hat, apply_M=st["M"], rtol=rtol,
                maxiter=maxiter, resilience=ResilienceConfig(),
            )
            xs.append(r.x)
            iters.append(r.iterations)
            conv.append(r.converged)
            restarts.append(r.restarts)
        X = np.column_stack(xs)
        return {"x": X, "iterations": iters, "converged": conv,
                "restarts": restarts}

    B_hat = Fr - st["Au0"][:, None]
    B_hat[st["mask"], :] = st["u0"][st["mask"], None]
    res = cg_multi(
        comm, lambda X, mode=mode: _hat_multi(st, X, mode=mode), B_hat,
        apply_M=st["M"], rtol=rtol, maxiter=maxiter, mode=mode,
    )
    X = np.column_stack([r.x for r in res])
    return {
        "x": X,
        "iterations": [r.iterations for r in res],
        "converged": [r.converged for r in res],
        "restarts": [0] * k,
    }


def _residual_program(comm, st, Fr, Xr):
    """Per-column local residual/rhs square sums of the Dirichlet system."""
    B_hat = Fr - st["Au0"][:, None]
    B_hat[st["mask"], :] = st["u0"][st["mask"], None]
    R = _hat_multi(st, Xr) - B_hat
    return (
        np.einsum("ij,ij->j", R, R),
        np.einsum("ij,ij->j", B_hat, B_hat),
    )


class SolverContext:
    """One warm servable operator on a persistent simulated machine."""

    def __init__(
        self,
        key: ProblemKey,
        faults: FaultPlan | None = None,
        network: NetworkModel | None = None,
        modeled_rate_gflops: float | None = DEFAULT_RATE_GFLOPS,
        setup_attempts: int = 3,
    ):
        self.key = key
        self.spec = key.build_spec()
        self.n_parts = self.spec.n_parts
        self.n_dofs = self.spec.n_dofs
        self.faulted = faults is not None
        self.modeled_rate = modeled_rate_gflops
        #: number of deltas applied to this live context (in-place or by
        #: rebuild-on-the-same-simulator); the key's ``deltas`` history may
        #: be longer if the context was built fresh from a delta'd key
        self.delta_version = 0
        self.sim = Simulator(
            self.n_parts, network=network, compute_scale=0.0, faults=faults
        )
        part = self.spec.partition
        rank_args = [(part.local(r),) for r in range(self.n_parts)]
        # a fault plan may corrupt setup traffic; detected corruption
        # (checksum/ghost counters) triggers a clean re-setup on the same
        # simulator, so its per-rule budgets keep draining and the stored
        # context is never built from a corrupted exchange
        sig = 0.0
        for attempt in range(setup_attempts):
            self.ranks = self.sim.run(
                _setup_program,
                rank_args=rank_args,
                spec=self.spec,
                method=key.method,
                kernel=key.kernel,
                modeled_rate=modeled_rate_gflops,
            )
            now = self.fault_signal()
            if now == sig:
                break
            sig = now
        else:
            raise RuntimeError(
                f"operator setup stayed corrupted after {setup_attempts} "
                f"attempts (key {key.fingerprint()})"
            )
        counts = [st["n_owned"] for st in self.ranks]
        self._bounds = np.concatenate(([0], np.cumsum(counts)))
        self.build_vtime = self.sim.max_vtime

    # ------------------------------------------------------------------

    def fault_signal(self) -> float:
        """Total detected-corruption signal across ranks (monotonic)."""
        return sum(
            c.obs.counter("faults.checksum_fail")
            + c.obs.counter("spmv.ghost_nonfinite")
            for c in self.sim.comms
        )

    def counters(self) -> dict[str, float]:
        """Summed per-rank simulator counters (faults.*, spmv.*, ...)."""
        out: dict[str, float] = {}
        for c in self.sim.comms:
            for name, val in c.obs.counters.items():
                out[name] = out.get(name, 0) + val
        return out

    def _split(self, X: np.ndarray) -> list[np.ndarray]:
        if X.ndim != 2 or X.shape[0] != self.n_dofs:
            raise ValueError(
                f"expected ({self.n_dofs}, k) multivector, got {X.shape}"
            )
        b = self._bounds
        return [
            np.ascontiguousarray(X[b[r]: b[r + 1]], dtype=np.float64)
            for r in range(self.n_parts)
        ]

    def _run(self, program, parts, extra=(), **kw):
        t0 = self.sim.max_vtime
        res = self.sim.run(
            program,
            rank_args=[
                (self.ranks[r], parts[r], *[e[r] for e in extra])
                for r in range(self.n_parts)
            ],
            **kw,
        )
        return res, self.sim.max_vtime - t0

    # ------------------------------------------------------------------

    def apply_multi(
        self, X: np.ndarray, mode: str = "auto"
    ) -> tuple[np.ndarray, float]:
        """One batched SPMV of the raw operator; returns ``(Y, vtime)``.

        ``mode`` selects the multi-RHS execution mode (see
        :mod:`repro.core.kernels`); the default ``"auto"`` keeps small
        batches on the bitwise per-column oracle.
        """
        res, dt = self._run(_apply_program, self._split(X), mode=mode)
        return np.vstack(res), dt

    def solve_multi(
        self,
        F: np.ndarray,
        rtol: float,
        maxiter: int = 2000,
        degraded: bool = False,
        mode: str = "auto",
    ) -> tuple[dict, float]:
        """Batched Dirichlet-constrained CG solve; returns ``(out, vtime)``.

        ``out["x"]`` stacks the per-column solutions; ``degraded=True``
        switches to sequential single-RHS resilient CG (the fault-aware
        path — slower, never wrong; ``mode`` is then irrelevant).
        """
        res, dt = self._run(
            _solve_program, self._split(F),
            rtol=rtol, maxiter=maxiter, degraded=degraded, mode=mode,
        )
        return {
            "x": np.vstack([r["x"] for r in res]),
            "iterations": res[0]["iterations"],
            "converged": res[0]["converged"],
            "restarts": res[0]["restarts"],
        }, dt

    def residuals(self, F: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Per-column relative residuals of the constrained system (used
        by the load harness's answer verification on a fault-free
        context)."""
        res, _ = self._run(
            _residual_program, self._split(F), extra=(self._split(X),),
        )
        r2 = np.sum([r[0] for r in res], axis=0)
        b2 = np.sum([r[1] for r in res], axis=0)
        return np.sqrt(r2 / np.where(b2 > 0, b2, 1.0))

    # -- incremental updates -------------------------------------------

    def apply_delta(self, delta, threshold: float = 0.10) -> dict:
        """Apply one :class:`~repro.adapt.delta.MeshDelta` to the warm
        context; returns an info dict (``path``, ``touched``,
        ``fraction``, ``vtime``, ...).

        Small non-structural deltas take the **patch** path: only the
        touched elements' matrices are recomputed in place
        (``update_elements``) and the touched scatter/workspace caches
        invalidated — the paper's adaptive-matrix claim as a serving
        operation.  Structural deltas, or deltas touching more than
        ``threshold`` of the elements, fall back to a **full_rebuild** on
        the same simulator, reusing unchanged element matrices as a
        ``ke_cache`` where the method supports it.  Either way the
        resulting operator is bitwise identical to one freshly built from
        ``key.with_delta(delta)``.
        """
        from repro.adapt.apply import apply_delta_to_spec, localize_delta

        if self.faulted:
            raise RuntimeError(
                "apply_delta on a fault-injected context is not supported "
                "(corrupted update traffic cannot be re-verified in place)"
            )
        new_key = self.key.with_delta(delta)
        t0 = self.sim.max_vtime
        if delta.is_empty:
            info = {"path": "patch", "touched": 0, "fraction": 0.0}
        elif delta.is_structural:
            spec_new, ref = apply_delta_to_spec(self.spec, delta)
            info = self._rebuild(spec_new, ref=ref)
            info["touched"] = int(delta.refine_elements.size)
            info["fraction"] = (
                delta.refine_elements.size / self.spec.mesh.n_elements
            )
        else:
            spec, _ = apply_delta_to_spec(self.spec, delta)
            touched, ods = localize_delta(spec, delta)
            fraction = touched.size / spec.mesh.n_elements
            if fraction > threshold:
                info = self._rebuild(spec, exclude=touched)
            else:
                part = spec.partition
                n_model = [
                    self._model_count(ods[r].n_touched,
                                      part.local(r).elements.size)
                    for r in range(self.n_parts)
                ]
                kf = spec.operator.ke_flops(spec.mesh.etype)
                self.sim.run(
                    _update_program,
                    rank_args=[
                        (self.ranks[r], ods[r], n_model[r])
                        for r in range(self.n_parts)
                    ],
                    spec=spec,
                    ke_flops=kf,
                    rate=self.modeled_rate,
                )
                info = {"path": "patch"}
            info["touched"] = int(touched.size)
            info["fraction"] = float(fraction)
        info["vtime"] = self.sim.max_vtime - t0
        self.key = new_key
        self.delta_version += 1
        return info

    def _model_count(self, touched_local: int, n_local: int) -> int:
        """Elements whose matrices an in-place patch recomputes on one
        rank: the touched batch for element-wise methods, everything for
        the assembled baselines (reassembly is all-or-nothing — the
        SELL-C-sigma operator reassembles and reconverts the same way),
        nothing for matrix-free (state is coords/scale only)."""
        method = self.key.method
        if method == "matfree":
            return 0
        if method.startswith("assembled") or method == "sellcs":
            return n_local
        return touched_local

    def _rebuild(self, spec_new, ref=None, exclude=None) -> dict:
        """Full re-setup on the same simulator, carrying unchanged
        element matrices over as a ``ke_cache`` (hymv methods)."""
        method = self.key.method
        ke_cache = None
        if method in ("hymv", "hymv_gpu"):
            merged: dict = {}
            for st in self.ranks:
                merged.update(st["A"].export_ke_cache())
            if ref is not None:
                # refinement: an unchanged child is its ancestor, matrix
                # and all (scale history included — it was carried over by
                # elem_scale[ancestor])
                ke_cache = {
                    int(e): merged[int(ref.ancestor[e])]
                    for e in np.flatnonzero(ref.unchanged)
                    if int(ref.ancestor[e]) in merged
                }
            else:
                drop = {int(g) for g in np.asarray(exclude).ravel()}
                ke_cache = {
                    g: v for g, v in merged.items() if g not in drop
                }
        self.spec = spec_new
        self.n_dofs = spec_new.n_dofs
        part = spec_new.partition
        self.ranks = self.sim.run(
            _setup_program,
            rank_args=[(part.local(r),) for r in range(self.n_parts)],
            spec=spec_new,
            method=method,
            kernel=self.key.kernel,
            modeled_rate=self.modeled_rate,
            ke_cache=ke_cache,
        )
        counts = [st["n_owned"] for st in self.ranks]
        self._bounds = np.concatenate(([0], np.cumsum(counts)))
        hits = [
            int(getattr(st["A"], "cache_hits", 0) or 0) for st in self.ranks
        ]
        kf = spec_new.operator.ke_flops(spec_new.mesh.etype)
        self.sim.run(
            _rebuild_advance_program,
            rank_args=[
                (
                    self.ranks[r],
                    self._model_count(
                        part.local(r).elements.size - hits[r],
                        part.local(r).elements.size,
                    ),
                )
                for r in range(self.n_parts)
            ],
            ke_flops=kf,
            rate=self.modeled_rate,
        )
        return {"path": "full_rebuild", "ke_cache_hits": int(sum(hits))}


class OperatorCache:
    """Bounded LRU cache of :class:`SolverContext` entries.

    ``cluster``/``cluster_name`` register every built context's simulator
    with a :class:`~repro.simmpi.cluster.VirtualCluster`, so multi-service
    simulations (the sharded tier) can account busy virtual time per
    logical node across the whole cache history.  ``on_invalidate`` is an
    optional hook fired after an explicit :meth:`invalidate` (not on LRU
    eviction — an evicted context was still *valid*); the shard tier uses
    it for cache-coherent invalidation of replicas.
    """

    def __init__(
        self,
        capacity: int = 4,
        obs: Instrumentation | None = None,
        faults: FaultPlan | None = None,
        network: NetworkModel | None = None,
        modeled_rate_gflops: float | None = DEFAULT_RATE_GFLOPS,
        cluster=None,
        cluster_name: str = "",
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.obs = obs if obs is not None else Instrumentation(rank=-1)
        self.faults = faults
        self.network = network
        self.modeled_rate_gflops = modeled_rate_gflops
        self.cluster = cluster
        self.cluster_name = cluster_name
        #: post-invalidation hook ``(key) -> None`` (see class docstring)
        self.on_invalidate = None
        self._entries: OrderedDict[str, SolverContext] = OrderedDict()
        #: simulator counters of evicted/invalidated contexts, so scenario
        #: reports see the whole history, not just live entries
        self._retired: dict[str, float] = {}
        #: per-tenant hit/miss accounting: tenant label -> [hits, misses].
        #: Unlike the per-context simulator counters (which are retired on
        #: eviction), hit/miss stats always lived only on ``self.obs`` with
        #: no tenant dimension; this map adds the labels the multi-tenant
        #: Zipf harness needs for per-tenant hit rates.
        self._tenants: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ProblemKey) -> bool:
        return key.fingerprint() in self._entries

    def get(
        self, key: ProblemKey, tenants: Sequence[str] | None = None
    ) -> tuple[SolverContext, float]:
        """Warm context for ``key``; returns ``(ctx, build_vtime)`` where
        ``build_vtime`` is 0 on a hit (setup already amortized).

        ``tenants`` optionally attributes this lookup to tenant labels
        (one per batched request); each listed tenant's hit/miss counters
        move by one, feeding :meth:`tenant_stats`.
        """
        fp = key.fingerprint()
        ctx = self._entries.get(fp)
        if ctx is not None:
            self._entries.move_to_end(fp)
            self.obs.incr("serve.cache.hits")
            self._account_tenants(tenants, hit=True)
            return ctx, 0.0
        self.obs.incr("serve.cache.misses")
        self._account_tenants(tenants, hit=False)
        ctx = SolverContext(
            key,
            faults=self.faults,
            network=self.network,
            modeled_rate_gflops=self.modeled_rate_gflops,
        )
        if self.cluster is not None:
            self.cluster.register(self.cluster_name, ctx.sim)
        self._entries[fp] = ctx
        while len(self._entries) > self.capacity:
            _, old = self._entries.popitem(last=False)
            self._retire(old)
            self.obs.incr("serve.cache.evictions")
        return ctx, ctx.build_vtime

    def _account_tenants(
        self, tenants: Sequence[str] | None, hit: bool
    ) -> None:
        for t in tenants or ():
            stats = self._tenants.setdefault(t, [0, 0])
            stats[0 if hit else 1] += 1
            self.obs.incr(
                f"serve.cache.tenant.{t}.{'hits' if hit else 'misses'}"
            )

    def peek(self, key: ProblemKey) -> SolverContext | None:
        """Cached context for ``key`` without touching LRU order or
        hit/miss counters (introspection only)."""
        return self._entries.get(key.fingerprint())

    def update(self, key: ProblemKey, delta, threshold: float = 0.10):
        """Apply ``delta`` to the cached context for ``key``, re-keying it
        **in place** to ``key.with_delta(delta)``; returns
        ``(new_key, info)``.

        On a hit the context keeps its LRU position (an update is not a
        use — it must not keep an otherwise-cold entry warm) and its
        tenant accounting, and only its key changes: re-fingerprint, not
        invalidate-and-rebuild.  On a miss nothing is built — the next
        ``get(new_key)`` pays a fresh setup, which lands on the same
        post-update operator because the key replays its delta history.

        Either way :attr:`on_invalidate` fires for the **old** key:
        replicas of the pre-update operator are stale no matter whether
        this shard had it cached.
        """
        fp = key.fingerprint()
        new_key = key.with_delta(delta)
        ctx = self._entries.get(fp)
        info = None
        if ctx is None:
            self.obs.incr("serve.cache.delta_misses")
        else:
            info = ctx.apply_delta(delta, threshold=threshold)
            # rename in place, preserving LRU order
            self._entries = OrderedDict(
                (new_key.fingerprint() if k == fp else k, v)
                for k, v in self._entries.items()
            )
            self.obs.incr("serve.cache.delta_updates")
            self.obs.incr(
                "serve.cache.delta_patches"
                if info["path"] == "patch"
                else "serve.cache.delta_rebuilds"
            )
        if self.on_invalidate is not None:
            self.on_invalidate(key)
        return new_key, info

    def invalidate(self, key: ProblemKey) -> bool:
        """Drop a (possibly poisoned) context; next ``get`` rebuilds.

        Fires :attr:`on_invalidate` (when set) after the local drop, so a
        coherence layer can propagate the invalidation to replicas — the
        hook fires even when the key was not locally cached, because a
        poison signal on one replica says nothing about the others.
        """
        ctx = self._entries.pop(key.fingerprint(), None)
        if ctx is not None:
            self._retire(ctx)
        if self.on_invalidate is not None:
            self.on_invalidate(key)
        return ctx is not None

    def _retire(self, ctx: SolverContext) -> None:
        for name, val in ctx.counters().items():
            self._retired[name] = self._retired.get(name, 0) + val

    def tenant_stats(self) -> dict[str, dict[str, float]]:
        """Per-tenant hit/miss counters accumulated by :meth:`get`."""
        return {
            t: {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            }
            for t, (hits, misses) in sorted(self._tenants.items())
        }

    def stats(self) -> dict[str, float]:
        hits = self.obs.counter("serve.cache.hits")
        misses = self.obs.counter("serve.cache.misses")
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self.obs.counter("serve.cache.evictions"),
            "hit_rate": hits / total if total else 0.0,
            "size": len(self._entries),
            "capacity": self.capacity,
        }

    def counters(self) -> dict[str, float]:
        """Simulator counters summed over live and retired contexts."""
        out = dict(self._retired)
        for ctx in self._entries.values():
            for name, val in ctx.counters().items():
                out[name] = out.get(name, 0) + val
        return out
