"""Micro-batcher: group compatible requests into one multi-RHS product.

The head of the FIFO queue defines the batch group; every younger request
that is *compatible* — same operator key, same kind, and (for solves) the
same tolerance — joins, up to ``max_batch`` columns.  Incompatible
requests keep their queue positions, so FIFO order *within* each operator
key is never violated (the fairness property the Hypothesis suite pins
down), while the batch itself executes as a single ``(n, k)`` multivector
sweep through the cached operator.

This is the serving-side payoff of the paper's batched-EMV design: the
element matrices are read from memory once per sweep regardless of ``k``,
so batching k requests costs far less than k products.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.queue import RequestQueue, ServeRequest

__all__ = ["BatchPolicy", "MicroBatcher", "DeadlineBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Grouping rules for the micro-batcher."""

    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")

    def compatible(self, a: ServeRequest, b: ServeRequest) -> bool:
        """Can ``a`` and ``b`` share one multi-RHS execution?"""
        if a.key != b.key or a.kind != b.kind:
            return False
        # solve batches iterate in lock step to one tolerance; mixing
        # tolerances would change per-column stopping (not bitwise-safe)
        return a.kind != "solve" or a.rtol == b.rtol


class MicroBatcher:
    """Forms the next batch from the head of a :class:`RequestQueue`."""

    def __init__(self, policy: BatchPolicy | None = None):
        self.policy = policy or BatchPolicy()

    def next_batch(self, queue: RequestQueue) -> list[ServeRequest]:
        """Pop and return the next batch (empty when the queue is empty).

        Scans in FIFO order: the oldest request seeds the batch and every
        compatible younger request joins until ``max_batch``.  Requests
        that do not match stay queued, in order.
        """
        head = queue.head()
        if head is None:
            return []
        picked = [head]
        for req in queue.fifo():
            if len(picked) >= self.policy.max_batch:
                break
            if req.rid != head.rid and self.policy.compatible(head, req):
                picked.append(req)
        return queue.take(r.rid for r in picked)


class DeadlineBatcher(MicroBatcher):
    """Deadline-ordered variant: the most urgent request seeds the batch.

    The SLO-aware shard tier dispatches by earliest deadline first
    (requests without a deadline rank after all deadlined ones, in FIFO
    order), then fills the batch with compatible requests in FIFO order —
    so urgency decides *which group* runs next, while FIFO fairness
    within the group is unchanged.  With no deadlines in the queue this
    degenerates exactly to :class:`MicroBatcher`.
    """

    def next_batch(self, queue: RequestQueue) -> list[ServeRequest]:
        reqs = list(queue.fifo())
        if not reqs:
            return []
        head = min(
            reqs,
            key=lambda r: (
                r.deadline if r.deadline is not None else float("inf"),
                r.arrival,
                r.rid,
            ),
        )
        picked = [head]
        for req in reqs:
            if len(picked) >= self.policy.max_batch:
                break
            if req.rid != head.rid and self.policy.compatible(head, req):
                picked.append(req)
        return queue.take(r.rid for r in picked)
