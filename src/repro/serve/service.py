"""The solver service: admission, batching, execution, fault handling.

:class:`SolverService` is the single-server dispatch loop the load
harness drives in virtual time: admit (or shed) requests into the bounded
queue, expire deadlines, form a micro-batch of compatible requests, and
execute it as one multi-RHS operation against the cached operator.

Fault policy — the service may be slow or reject work, but it never
returns a wrong answer:

* a batch whose execution raised the detected-corruption signal
  (``faults.checksum_fail`` / ``spmv.ghost_nonfinite``) is discarded and
  retried; persisting corruption fails the requests cleanly;
* an exception escaping the simulated run (a poisoned simulator) drops
  the cached context entirely — the next attempt rebuilds it;
* solve batches under an active fault plan degrade from the lock-step
  fused multi-RHS CG to sequential single-RHS *resilient* CG (breakdown
  detection + restart), trading throughput for safety.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import EMV_MODES, resolve_mode
from repro.obs.instrumentation import Instrumentation
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.cache import OperatorCache
from repro.serve.queue import RequestQueue, ServeRequest

__all__ = ["Completion", "DispatchOutcome", "SolverService"]


class _CorruptBatch(Exception):
    """Execution finished but the corruption signal moved: retry."""


@dataclass
class Completion:
    """Terminal record of one request."""

    request: ServeRequest
    status: str  # "ok" | "failed"
    value: np.ndarray | None = None  # owned result column (global order)
    info: dict = field(default_factory=dict)


@dataclass
class DispatchOutcome:
    """Result of one :meth:`SolverService.dispatch` call."""

    completions: list[Completion]
    duration: float  # virtual seconds consumed by this dispatch
    expired: list[ServeRequest]
    batch_size: int


class SolverService:
    """Batched solver frontend over an :class:`OperatorCache`."""

    def __init__(
        self,
        cache: OperatorCache,
        max_batch: int = 8,
        queue_capacity: int = 64,
        retry_limit: int = 2,
        maxiter: int = 2000,
        obs: Instrumentation | None = None,
        mode: str = "auto",
        k_min: int | None = None,
        batcher: MicroBatcher | None = None,
        backend: str | None = None,
        sellcs_crossover_dofs: int | None = None,
        tuned=None,
    ):
        """``mode`` is the multi-RHS execution mode every batch runs
        under (``"auto"`` resolves per batch: GEMM when the batch width
        reaches ``k_min``, the bitwise per-column oracle below it);
        ``k_min=None`` uses :data:`repro.core.kernels.DEFAULT_K_MIN` —
        pass the calibrated ``config.gemm_k_min_crossover`` from a
        kernels-bench document to use the measured crossover instead.
        ``batcher`` swaps the batch-forming policy (the shard tier passes
        a :class:`~repro.serve.batcher.DeadlineBatcher`); when given, it
        carries its own policy and ``max_batch`` is ignored.

        ``backend`` is the per-problem-shape operator policy: ``None``
        serves every request under the method its key asks for (the
        historical behavior); ``"hymv"`` / ``"sellcs"`` force that
        operator kind for every batch; ``"auto"`` picks per shape from
        the calibrated crossover — SELL-C-sigma for problems with at
        most ``sellcs_crossover_dofs`` dofs (where the sellcs bench
        measured it winning the batched apply), HYMV above it.  Pass the
        sellcs-bench report's ``config.sellcs_crossover_dofs`` via
        :func:`repro.serve.loadgen.load_calibrated_crossover` (the
        ``--k-min-from`` convention); with no calibration, ``"auto"``
        keeps every shape on HYMV.  Routed batches are counted in
        ``backend_histogram`` and the ``serve.backend.*`` counters.

        ``tuned`` is an autotuner artifact — anything with a
        ``get(name, default)`` (a ``repro.tune.calibration.TunedConfig``
        loaded from ``tuned_config.json``, or a plain dict-like).  Its
        values fill every knob the caller left at the built-in default:
        ``max_batch``, ``queue_capacity``, ``gemm_k_min`` (→ ``k_min``)
        and ``sellcs_crossover_dofs`` (a positive value also switches an
        unset ``backend`` to ``"auto"`` so the routing takes effect).
        Explicitly passed knobs win over the artifact.
        """
        if tuned is not None:
            if max_batch == 8 and tuned.get("max_batch") is not None:
                max_batch = int(tuned.get("max_batch"))
            if queue_capacity == 64 and tuned.get("queue_capacity") is not None:
                queue_capacity = int(tuned.get("queue_capacity"))
            if k_min is None and tuned.get("gemm_k_min") is not None:
                k_min = int(tuned.get("gemm_k_min"))
            if sellcs_crossover_dofs is None:
                crossover = tuned.get("sellcs_crossover_dofs")
                if crossover:
                    sellcs_crossover_dofs = int(crossover)
                    if backend is None:
                        backend = "auto"
        if mode not in EMV_MODES:
            raise ValueError(
                f"unknown execution mode {mode!r} (expected one of {EMV_MODES})"
            )
        if backend not in (None, "auto", "hymv", "sellcs"):
            raise ValueError(
                f"unknown backend policy {backend!r} "
                "(expected None, 'auto', 'hymv' or 'sellcs')"
            )
        self.cache = cache
        self.obs = obs if obs is not None else cache.obs
        self.queue = RequestQueue(queue_capacity)
        self.batcher = (
            batcher if batcher is not None else MicroBatcher(BatchPolicy(max_batch))
        )
        self.retry_limit = retry_limit
        self.maxiter = maxiter
        self.mode = mode
        self.k_min = k_min
        self.backend = backend
        self.sellcs_crossover_dofs = sellcs_crossover_dofs
        # backend the routing policy actually dispatched to -> batch count
        self.backend_histogram: dict[str, int] = {}
        self.batch_histogram: dict[int, int] = {}
        # what each dispatched batch actually ran under: "oracle" /
        # "gemm" / "degraded" (fault-degraded solves bypass the batched
        # path entirely) -> batch count
        self.mode_histogram: dict[str, int] = {}

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def submit(self, req: ServeRequest) -> bool:
        """Admit a request; returns False when shed (queue full)."""
        self.obs.incr("serve.submitted")
        if not self.queue.submit(req):
            self.obs.incr("serve.rejected")
            return False
        return True

    def cancel(self, rid: int) -> bool:
        """Cancel a still-queued request (in-flight work is not torn down)."""
        if self.queue.cancel(rid) is None:
            return False
        self.obs.incr("serve.cancelled")
        return True

    @property
    def pending(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def dispatch(self, now: float) -> DispatchOutcome:
        """Shed expired requests, then execute the next micro-batch."""
        expired = self.queue.expire(now)
        if expired:
            self.obs.incr("serve.shed_deadline", len(expired))
        batch = self.batcher.next_batch(self.queue)
        if not batch:
            return DispatchOutcome([], 0.0, expired, 0)
        k = len(batch)
        self.batch_histogram[k] = self.batch_histogram.get(k, 0) + 1
        self.obs.incr("serve.batches")
        self.obs.incr("serve.batched_requests", k)
        completions, duration = self._execute(batch)
        for c in completions:
            self.obs.incr(f"serve.{'completed' if c.status == 'ok' else 'failed'}")
        return DispatchOutcome(completions, duration, expired, k)

    def _route_key(self, key):
        """Apply the backend policy: rewrite the key's operator kind (the
        rest of the identity — problem, shape, deltas — is untouched, so
        the cached context is still the right operator)."""
        if self.backend is None:
            return key
        if self.backend == "auto":
            method = (
                "sellcs"
                if (
                    self.sellcs_crossover_dofs is not None
                    and key.n_dofs_estimate() <= self.sellcs_crossover_dofs
                )
                else "hymv"
            )
        else:
            method = self.backend
        self.backend_histogram[method] = (
            self.backend_histogram.get(method, 0) + 1
        )
        self.obs.incr(f"serve.backend.{method}")
        if method == key.method:
            return key
        from dataclasses import replace

        self.obs.incr("serve.backend.rerouted")
        return replace(key, method=method)

    def _execute(self, batch: list[ServeRequest]) -> tuple[list[Completion], float]:
        key, kind = self._route_key(batch[0].key), batch[0].kind
        duration = 0.0
        attempts = 0
        # attribute the (single) cache lookup to every batched request's
        # tenant; tenant-less batches keep the plain call so lightweight
        # cache stand-ins (tests) need not grow the keyword
        tenants = [r.tenant for r in batch if r.tenant is not None]
        while True:
            try:
                if tenants:
                    ctx, build_dt = self.cache.get(key, tenants=tenants)
                else:
                    ctx, build_dt = self.cache.get(key)
                duration += build_dt
                sig0 = ctx.fault_signal()
                completions, dt = self._run_batch(ctx, batch, kind)
                duration += dt
                if ctx.fault_signal() > sig0:
                    # value-affecting fault detected during the batch:
                    # the results cannot be trusted — discard them
                    raise _CorruptBatch()
                return completions, duration
            except _CorruptBatch:
                self.obs.incr("serve.corrupt_batches")
            except RuntimeError as exc:
                # the aborted run poisons the simulator; rebuild the
                # context from scratch on the next attempt
                self.cache.invalidate(key)
                self.obs.incr("serve.rebuilds")
                if attempts >= self.retry_limit:
                    return self._fail(batch, f"execution failed: {exc}"), duration
            attempts += 1
            if attempts > self.retry_limit:
                return self._fail(batch, "corruption persisted"), duration
            self.obs.incr("serve.retries")

    def _run_batch(self, ctx, batch, kind):
        X = np.column_stack(
            [self.input_vector(ctx, r.seed) for r in batch]
        )
        mode = resolve_mode(self.mode, len(batch), self.k_min)
        if kind == "spmv":
            self._record_mode(mode)
            Y, dt = ctx.apply_multi(X, mode=mode)
            return [
                Completion(r, "ok", np.ascontiguousarray(Y[:, j]))
                for j, r in enumerate(batch)
            ], dt
        degraded = ctx.faulted
        if degraded:
            self.obs.incr("serve.degraded", len(batch))
        self._record_mode("degraded" if degraded else mode)
        out, dt = ctx.solve_multi(
            X, rtol=batch[0].rtol, maxiter=self.maxiter, degraded=degraded,
            mode=mode,
        )
        comps = []
        for j, r in enumerate(batch):
            conv = bool(out["converged"][j])
            comps.append(Completion(
                r,
                "ok" if conv else "failed",
                np.ascontiguousarray(out["x"][:, j]) if conv else None,
                {
                    "iterations": int(out["iterations"][j]),
                    "restarts": int(out["restarts"][j]),
                    "degraded": degraded,
                },
            ))
        return comps, dt

    def _record_mode(self, mode: str) -> None:
        self.mode_histogram[mode] = self.mode_histogram.get(mode, 0) + 1
        self.obs.incr(f"serve.mode.{mode}")

    @staticmethod
    def input_vector(ctx, seed: int) -> np.ndarray:
        """The request's deterministic input/RHS vector (replayable by
        the verifier from the seed alone)."""
        return np.random.default_rng(seed).standard_normal(ctx.n_dofs)

    @staticmethod
    def _fail(batch, reason):
        return [Completion(r, "failed", None, {"reason": reason}) for r in batch]
