"""Closed-loop load harness: ``python -m repro.harness serve``.

Drives a :class:`~repro.serve.service.SolverService` with a seeded
open-loop (Poisson arrivals) or closed-loop (fixed client population with
think time) workload, entirely in *virtual* time: request latencies are
modeled simulator seconds, so the emitted ``SERVE_report.json`` is a
deterministic function of the seed and the code path — comparable across
machines, like the smoke bench.

Every completed answer is re-checked after the run against a fresh,
fault-free reference cache (SPMV results must match the reference to
~machine precision; solves must satisfy the constrained-system residual
tolerance), and any miss counts as a ``wrong_answer`` — the number the CI
gate requires to be exactly zero, fault plan or not.

Alongside the serve report, the harness writes a ``BENCH_serve.json`` in
the standard bench schema so the existing ``repro.obs.compare`` gate can
diff latency percentiles and request counters against a checked-in
baseline.
"""

from __future__ import annotations

import argparse
import heapq
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.scatter import SCATTER_TAG
from repro.faults.plan import Corrupt, Delay, Drop, FaultPlan, Straggler
from repro.obs.instrumentation import Instrumentation, percentile_summary
from repro.obs.schema import (
    new_bench_doc,
    new_serve_doc,
    validate_bench_doc,
    validate_serve_doc,
)
from repro.serve.cache import OperatorCache, ProblemKey
from repro.serve.queue import ServeRequest
from repro.serve.service import SolverService

__all__ = [
    "Workload",
    "run_workload",
    "run_serve_suite",
    "load_calibrated_k_min",
    "main",
]

#: SPMV answers must match the fault-free reference this tightly (the
#: batched path is bitwise-identical per column, so anything above noise
#: means corruption leaked through)
SPMV_REL_TOL = 1e-9


@dataclass(frozen=True)
class Workload:
    """One seeded serving scenario."""

    name: str
    keys: tuple[ProblemKey, ...]
    arrival: str = "open"  # "open" | "closed"
    n_requests: int = 40
    rate_rps: float = 1000.0  # open-loop mean arrival rate (virtual req/s)
    n_clients: int = 4  # closed-loop client population
    think_s: float = 0.002  # closed-loop think time
    solve_frac: float = 0.3
    rtol: float = 1e-6
    deadline_s: float | None = None  # relative per-request deadline
    cancel_frac: float = 0.0  # open loop: fraction cancelled post-submit
    max_batch: int = 8
    queue_capacity: int = 32
    cache_capacity: int = 2
    faults: FaultPlan | None = None
    mode: str = "auto"  # multi-RHS execution mode per batch
    k_min: int | None = None  # "auto" crossover (None -> DEFAULT_K_MIN)
    backend: str | None = None  # operator routing policy (None/auto/hymv/sellcs)
    sellcs_crossover_dofs: int | None = None  # "auto" backend crossover
    verify: bool = True  # post-run answer re-check (off for tuner probes)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "arrival": self.arrival,
            "n_requests": self.n_requests,
            "rate_rps": self.rate_rps,
            "n_clients": self.n_clients,
            "think_s": self.think_s,
            "solve_frac": self.solve_frac,
            "rtol": self.rtol,
            "deadline_s": self.deadline_s,
            "cancel_frac": self.cancel_frac,
            "max_batch": self.max_batch,
            "queue_capacity": self.queue_capacity,
            "cache_capacity": self.cache_capacity,
            "mode": self.mode,
            "k_min": self.k_min,
            "backend": self.backend,
            "sellcs_crossover_dofs": self.sellcs_crossover_dofs,
            "verify": self.verify,
            "keys": [k.fingerprint() for k in self.keys],
            "faults": self.faults.describe() if self.faults else None,
        }


def run_workload(
    w: Workload, seed: int = 1234, k_min: int | None = None, tuned=None
) -> dict[str, Any]:
    """Simulate one scenario; returns a schema-conforming scenario dict.

    ``k_min`` overrides the workload's ``auto`` crossover (e.g. a
    calibrated value loaded from a kernels-bench document via
    :func:`load_calibrated_k_min`); the workload's own ``k_min`` wins
    when set, keeping checked-in scenario baselines deterministic.
    ``tuned`` (a ``get``-able autotuner artifact) fills the service
    knobs the workload left at defaults — same precedence as
    :class:`~repro.serve.service.SolverService`.
    """
    obs = Instrumentation(rank=-1)
    cache = OperatorCache(capacity=w.cache_capacity, obs=obs, faults=w.faults)
    service = SolverService(
        cache, max_batch=w.max_batch, queue_capacity=w.queue_capacity,
        mode=w.mode, k_min=w.k_min if w.k_min is not None else k_min,
        backend=w.backend, sellcs_crossover_dofs=w.sellcs_crossover_dofs,
        tuned=tuned,
    )
    rng = np.random.default_rng(seed)

    # discrete events: (time, tiebreak, kind, payload)
    events: list[tuple[float, int, str, Any]] = []
    order = 0

    def push(t: float, kind: str, payload: Any) -> None:
        nonlocal order
        heapq.heappush(events, (t, order, kind, payload))
        order += 1

    issued = 0

    def make_request(t: float, client: int | None = None) -> ServeRequest:
        nonlocal issued
        rid = issued
        issued += 1
        key = w.keys[int(rng.integers(len(w.keys)))]
        kind = "solve" if rng.random() < w.solve_frac else "spmv"
        return ServeRequest(
            rid=rid,
            key=key,
            kind=kind,
            seed=int(seed * 100003 + rid),
            arrival=t,
            deadline=(t + w.deadline_s) if w.deadline_s is not None else None,
            rtol=w.rtol,
            meta={} if client is None else {"client": client},
        )

    if w.arrival == "open":
        # pre-drawn Poisson arrival process (+ optional cancellations)
        t = 0.0
        for _ in range(w.n_requests):
            t += float(rng.exponential(1.0 / w.rate_rps))
            push(t, "submit", None)
    elif w.arrival == "closed":
        for c in range(w.n_clients):
            push(float(rng.exponential(w.think_s)), "client", c)
    else:
        raise ValueError(f"unknown arrival process {w.arrival!r}")

    completions: list = []
    latency: dict[str, list[float]] = {"all": [], "spmv": [], "solve": []}
    now = 0.0
    makespan = 0.0

    def deliver(ev: tuple) -> None:
        t, _, kind, payload = ev
        if kind == "submit":
            req = make_request(t)
            if service.submit(req) and w.cancel_frac and (
                rng.random() < w.cancel_frac
            ):
                push(t + float(rng.exponential(0.2 / w.rate_rps)),
                     "cancel", req.rid)
        elif kind == "cancel":
            service.cancel(payload)
        elif kind == "client":
            if issued >= w.n_requests:
                return
            req = make_request(t, client=payload)
            if not service.submit(req):  # shed: client backs off and retries
                push(t + w.think_s, "client", payload)

    while events or service.pending:
        while events and events[0][0] <= now:
            deliver(heapq.heappop(events))
        if not service.pending:
            if not events:
                break
            now = events[0][0]
            continue
        out = service.dispatch(now)
        t_end = now + out.duration
        for r in out.expired:
            if "client" in r.meta:
                push(t_end + w.think_s, "client", r.meta["client"])
        for c in out.completions:
            if c.status == "ok":
                lat = t_end - c.request.arrival
                latency["all"].append(lat)
                latency[c.request.kind].append(lat)
                completions.append(c)
            if "client" in c.request.meta:
                push(t_end + w.think_s, "client", c.request.meta["client"])
        now = t_end
        makespan = max(makespan, now)

    if w.verify:
        wrong, ref = _verify(w, completions)
        ctx0, _ = ref.get(w.keys[0])
        n_parts, n_dofs = ctx0.n_parts, ctx0.n_dofs
    else:
        # tuner probes skip the (expensive) re-check: answer correctness
        # is the serve suite's job, the probe only measures scheduling
        wrong = 0
        ctx0 = cache.peek(w.keys[0])
        n_parts = ctx0.n_parts if ctx0 else w.keys[0].n_parts
        n_dofs = ctx0.n_dofs if ctx0 else w.keys[0].n_dofs_estimate()
    obs.incr("serve.wrong_answers", wrong)  # materialize even when 0

    req_counts = {
        "submitted": int(obs.counter("serve.submitted")),
        "completed": int(obs.counter("serve.completed")),
        "rejected": int(obs.counter("serve.rejected")),
        "shed_deadline": int(obs.counter("serve.shed_deadline")),
        "cancelled": int(obs.counter("serve.cancelled")),
        "failed": int(obs.counter("serve.failed")),
        "wrong_answers": int(wrong),
    }
    counters = dict(sorted(obs.counters.items()))
    for name, val in sorted(cache.counters().items()):
        counters[name] = counters.get(name, 0) + val
    return {
        "scenario": w.name,
        "workload": w.describe(),
        "n_parts": n_parts,
        "n_dofs": n_dofs,
        "requests": req_counts,
        "latency_s": {
            k: percentile_summary(v) for k, v in latency.items() if v
        },
        "throughput_rps": (
            req_counts["completed"] / makespan if makespan > 0 else 0.0
        ),
        "makespan_s": makespan,
        "batch_histogram": {
            str(k): v for k, v in sorted(service.batch_histogram.items())
        },
        "modes": {
            m: v for m, v in sorted(service.mode_histogram.items())
        },
        "cache": cache.stats(),
        "counters": counters,
    }


def _verify(w: Workload, completions: list) -> tuple[int, OperatorCache]:
    """Re-check every delivered answer on a fault-free reference cache."""
    ref = OperatorCache(
        capacity=max(len(w.keys), 1), obs=Instrumentation(rank=-1)
    )
    wrong = 0
    for c in completions:
        ctx, _ = ref.get(c.request.key)
        x = SolverService.input_vector(ctx, c.request.seed)
        if c.request.kind == "spmv":
            y_ref, _ = ctx.apply_multi(x[:, None])
            y_ref = y_ref[:, 0]
            scale = float(np.linalg.norm(y_ref)) or 1.0
            err = float(np.linalg.norm(c.value - y_ref))
            if not np.isfinite(err) or err > SPMV_REL_TOL * scale:
                wrong += 1
        else:
            rel = float(ctx.residuals(x[:, None], c.value[:, None])[0])
            if not np.isfinite(rel) or rel > max(10 * c.request.rtol, 1e-8):
                wrong += 1
    return wrong, ref


# ----------------------------------------------------------------------------
# the standard suite
# ----------------------------------------------------------------------------

def suite_workloads(seed: int, smoke: bool = True) -> tuple[Workload, ...]:
    """The three standard scenarios: a clean open-loop burst (batching +
    cache churn + cancellations), a wide-batch open-loop burst
    (``max_batch=16`` so ``auto`` crosses into the BLAS3 GEMM mode —
    and its answers still verify against the oracle reference), and a
    fault-injected closed loop (degradation, retries, deadline shedding —
    and still zero wrong answers)."""
    scale = 1 if smoke else 3
    keys = (
        ProblemKey(problem="poisson", nel=4, n_parts=4, etype="tet4", seed=1),
        ProblemKey(problem="poisson", nel=5, n_parts=4, etype="tet4", seed=2),
    )
    # a third key over-subscribes the capacity-2 cache (LRU churn)
    keys_churn = keys + (
        ProblemKey(problem="poisson", nel=4, n_parts=4, etype="hex8"),
    )
    clean = Workload(
        name="open-clean",
        keys=keys_churn,
        arrival="open",
        n_requests=40 * scale,
        rate_rps=20000.0,
        solve_frac=0.3,
        cancel_frac=0.08,
        max_batch=6,
        cache_capacity=2,
    )
    # wide batches: one hot key, arrivals far faster than service, so the
    # queue backs up and the batcher forms (close to) max_batch-wide
    # batches — k >= DEFAULT_K_MIN lands on the GEMM path, which the
    # post-run verification still checks against the fault-free oracle
    # reference (SPMV_REL_TOL has ~6 decades of headroom over the
    # gemm-vs-oracle rounding difference)
    gemm = Workload(
        name="open-gemm",
        keys=keys[:1],
        arrival="open",
        n_requests=48 * scale,
        rate_rps=100000.0,
        solve_frac=0.25,
        max_batch=16,
        queue_capacity=64,
        cache_capacity=2,
    )
    plan = FaultPlan(
        rules=(
            Delay(2e-4, tag=SCATTER_TAG, jitter=1e-4),
            Drop(src=0, dst=1, tag=SCATTER_TAG, times=1),
            Corrupt("nan", src=1, dst=2, tag=SCATTER_TAG, skip=3, times=2),
            Straggler(2, 2.0),
        ),
        seed=seed + 7,
        checksums=True,
    )
    faulted = Workload(
        name="closed-faulted",
        keys=keys,
        arrival="closed",
        n_requests=24 * scale,
        n_clients=6,
        think_s=0.002,
        solve_frac=0.3,
        deadline_s=0.01,
        max_batch=4,
        cache_capacity=2,
        faults=plan,
    )
    return (clean, gemm, faulted)


def load_calibrated_k_min(path: pathlib.Path) -> int | None:
    """Deprecated alias: read the GEMM crossover from any tuned artifact.

    Thin wrapper over the unified
    :func:`repro.tune.calibration.load_tuned_config` — kept so existing
    ``--k-min-from`` call sites keep working.  Accepts the historical
    ``BENCH_kernels.json`` (``config.gemm_k_min_crossover``) as well as
    the autotuner's ``tuned_config.json``/``TUNE_report.json``.  Returns
    ``None`` (→ ``DEFAULT_K_MIN``) when the file or key is absent.
    """
    from repro.tune.calibration import load_tuned_config

    tuned = load_tuned_config(path)
    val = tuned.get("gemm_k_min") if tuned is not None else None
    return int(val) if val is not None else None


def load_calibrated_crossover(path: pathlib.Path) -> int | None:
    """Deprecated alias: read the HYMV-vs-SELL shape crossover from any
    tuned artifact.

    Thin wrapper over the unified
    :func:`repro.tune.calibration.load_tuned_config` — kept for existing
    call sites (``SolverService(backend="auto")`` wiring).  Accepts the
    historical ``BENCH_sellcs.json`` (``config.sellcs_crossover_dofs``)
    as well as the autotuner artifacts.  Returns ``None`` — meaning no
    shape routes to sellcs — when the file or key is absent.
    """
    from repro.tune.calibration import load_tuned_config

    tuned = load_tuned_config(path)
    val = tuned.get("sellcs_crossover_dofs") if tuned is not None else None
    return int(val) if val is not None else None


def run_serve_suite(
    seed: int = 1234,
    smoke: bool = True,
    verbose: bool = True,
    k_min: int | None = None,
    tuned=None,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run the standard scenarios; returns ``(serve_doc, bench_doc)``."""
    doc = new_serve_doc(config={"seed": seed, "smoke": smoke, "k_min": k_min})
    for w in suite_workloads(seed, smoke=smoke):
        if verbose:
            print(f"[serve] scenario {w.name} ...", flush=True)
        sc = run_workload(w, seed=seed, k_min=k_min, tuned=tuned)
        doc["scenarios"].append(sc)
        if verbose:
            lat = sc["latency_s"].get("all", {})
            modes = ", ".join(
                f"{m}:{v}" for m, v in sorted(sc["modes"].items())
            ) or "-"
            print(
                f"[serve]   {sc['requests']['completed']}/"
                f"{sc['requests']['submitted']} ok, "
                f"p50 {lat.get('p50', 0) * 1e3:.3f} ms, "
                f"p99 {lat.get('p99', 0) * 1e3:.3f} ms, "
                f"hit rate {sc['cache']['hit_rate']:.2f}, "
                f"modes [{modes}], "
                f"wrong {sc['requests']['wrong_answers']}"
            )
    return validate_serve_doc(doc), validate_bench_doc(_bench_doc(doc))


#: request counters exported to the bench doc — only ones that are robust
#: to cross-version numeric drift (per-split queueing counters can shift
#: when a latency moves by one CG iteration)
_BENCH_COUNTERS = ("submitted", "completed", "failed", "wrong_answers")


def _bench_doc(serve_doc: dict[str, Any]) -> dict[str, Any]:
    """Project the serve report onto the standard bench schema so the
    existing ``repro.obs.compare`` gate applies unchanged."""
    bench = new_bench_doc(
        suite="serve", repeats=1, config=dict(serve_doc["config"])
    )
    for sc in serve_doc["scenarios"]:
        phases = {}
        for kind, summ in sc["latency_s"].items():
            phases[f"serve.latency.{kind}"] = {
                "median": summ["p50"],
                "min": summ["min"],
                "max": summ["max"],
                "repeats": summ["n"],
                "p95": summ["p95"],
                "p99": summ["p99"],
            }
        phases["serve.makespan"] = {
            "median": sc["makespan_s"],
            "min": sc["makespan_s"],
            "max": sc["makespan_s"],
            "repeats": 1,
        }
        counters = {
            f"serve.{name}": sc["requests"][name] for name in _BENCH_COUNTERS
        }
        bench["results"].append({
            "case": f"serve-{sc['scenario']}",
            "method": "serve",
            "n_parts": sc["n_parts"],
            "n_dofs": sc["n_dofs"],
            "phases": phases,
            "counters": counters,
        })
    return bench


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness serve",
        description="Closed-loop load harness for the batched solver "
        "service; emits SERVE_report.json (+ BENCH_serve.json for the "
        "compare gate)",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized scenarios (fewer requests; same structure)",
    )
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("SERVE_report.json"),
        help="serve report path (default: ./SERVE_report.json)",
    )
    ap.add_argument(
        "--bench-out",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_serve.json"),
        help="bench-schema projection path (default: ./BENCH_serve.json)",
    )
    ap.add_argument(
        "--k-min",
        type=int,
        default=None,
        help="auto-mode GEMM crossover (default: kernels DEFAULT_K_MIN)",
    )
    ap.add_argument(
        "--k-min-from",
        type=pathlib.Path,
        default=None,
        metavar="BENCH_KERNELS_JSON",
        help="load the calibrated crossover from a kernels-bench "
        "document's config.gemm_k_min_crossover (--k-min wins if both "
        "are given; missing file/key falls back to the default)",
    )
    ap.add_argument(
        "--tuned-from",
        type=pathlib.Path,
        default=None,
        metavar="TUNED_CONFIG_JSON",
        help="load an autotuner artifact (tuned_config.json, "
        "TUNE_report.json or a legacy bench doc) and apply its service "
        "knobs + SELL (C, sigma) defaults (--k-min/--k-min-from win for "
        "the GEMM crossover)",
    )
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    from repro.tune.calibration import load_tuned_config

    tuned = load_tuned_config(args.tuned_from)
    if tuned is not None:
        if tuned.get("sell_c") is not None:
            from repro.core.sellcs import configure_sell_defaults

            c = int(tuned.get("sell_c"))
            sigma = int(tuned.get("sell_sigma_factor", 8)) * c
            configure_sell_defaults(c, sigma)
            if not args.quiet:
                print(f"[serve] tuned SELL defaults C={c} sigma={sigma}")
        if not args.quiet:
            print(f"[serve] tuned config from {args.tuned_from}")

    k_min = args.k_min
    if k_min is None and args.k_min_from is not None:
        k_min = load_calibrated_k_min(args.k_min_from)
        if not args.quiet and k_min is not None:
            print(f"[serve] calibrated k_min={k_min} from {args.k_min_from}")

    doc, bench = run_serve_suite(
        seed=args.seed, smoke=args.smoke, verbose=not args.quiet, k_min=k_min,
        tuned=tuned,
    )
    for path, payload in ((args.out, doc), (args.bench_out, bench)):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    wrong = sum(sc["requests"]["wrong_answers"] for sc in doc["scenarios"])
    if not args.quiet:
        print(f"\n[serve] wrote {args.out} and {args.bench_out}")
    if wrong:
        print(f"[serve] FAIL: {wrong} wrong answer(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
