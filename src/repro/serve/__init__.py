"""Batched solver service: operator cache, multi-RHS micro-batching,
deadlines, and a closed-loop load harness.

The serving layer turns the repository's distributed SPMV/CG stack into a
long-lived *solver service*, the deployment shape the paper's batched-EMV
design is built for: the element matrices are computed once, cached, and
amortized across many incoming products (§III — "setup cost is paid once
and amortized over the solver iterations"; here, over *requests* too).

* :mod:`repro.serve.cache` — :class:`OperatorCache`: LRU cache of warm
  solver contexts keyed by a canonical problem-spec fingerprint.
* :mod:`repro.serve.queue` — bounded FIFO admission queue with per-request
  deadlines and cancellation.
* :mod:`repro.serve.batcher` — micro-batcher grouping compatible requests
  per operator into one multi-RHS product (bitwise identical per column
  to independent single-RHS execution).
* :mod:`repro.serve.service` — :class:`SolverService`: dispatch loop with
  load shedding and fault-aware degradation (never wrong answers).
* :mod:`repro.serve.loadgen` — seeded open-/closed-loop load generator
  behind ``python -m repro.harness serve``; writes the schema-versioned
  ``SERVE_report.json``.
* :mod:`repro.serve.shard` — the multi-node tier: consistent-hash
  :class:`ShardRouter` with hot-key replication and coherent
  invalidation, and the SLO-aware :class:`ShardCluster` balancer
  (deadline-ordered dispatch, per-tenant admission, shed-or-spill,
  shard-kill failover).
* :mod:`repro.serve.shardload` — Zipf multi-tenant load harness behind
  ``python -m repro.harness shard``; writes the schema-versioned
  ``SHARD_report.json``.
"""

from repro.serve.batcher import BatchPolicy, DeadlineBatcher, MicroBatcher
from repro.serve.cache import OperatorCache, ProblemKey, SolverContext
from repro.serve.queue import RequestQueue, ServeRequest
from repro.serve.service import Completion, DispatchOutcome, SolverService
from repro.serve.shard import HashRing, ShardCluster, ShardRouter

__all__ = [
    "BatchPolicy",
    "Completion",
    "DeadlineBatcher",
    "DispatchOutcome",
    "HashRing",
    "MicroBatcher",
    "OperatorCache",
    "ProblemKey",
    "RequestQueue",
    "ServeRequest",
    "ShardCluster",
    "ShardRouter",
    "SolverContext",
]
