"""The sharded solver tier: consistent-hash routing, replication, SLO
balancing.

This is the paper's setup-amortization argument taken to fleet scale.  A
single :class:`~repro.serve.service.SolverService` amortizes operator
setup across requests on *one* node; :class:`ShardCluster` fronts N such
services and amortizes it across a fleet:

* **routing** — :class:`ShardRouter` consistent-hashes every
  :class:`~repro.serve.cache.ProblemKey` fingerprint onto a virtual-node
  ring (:class:`HashRing`), so each operator has one *primary* shard and
  shard membership changes move only ~K/N keys (the property the
  Hypothesis suite pins down);
* **replication** — keys whose request count crosses a hotness threshold
  are served by ``1 + max_replicas`` consecutive distinct ring nodes;
  replicas warm lazily (first routed request pays the build) and are kept
  coherent by an invalidation hook: when any replica's context is
  poisoned and dropped, the cluster invalidates the key on every other
  replica too, so no shard keeps serving from a suspect epoch;
* **SLO-aware balancing** — cluster admission enforces a per-tenant
  outstanding-work quota (fair-share admission control), each shard
  dispatches by earliest deadline first
  (:class:`~repro.serve.batcher.DeadlineBatcher`), and a request whose
  least-loaded eligible shard has a full queue *spills* to the next
  replica — or is shed when every eligible queue is full;
* **failover** — a :class:`~repro.faults.shard.ShardKill` removes a
  shard at a fixed virtual time: its ring segment is taken over, queued
  requests are re-routed to survivors (counted as failovers), and its
  cached operators rebuild on reroute.  The single-node never-wrong-
  answers policy is untouched — a failover changes *where* a request
  runs, never *what* it computes.

Shards execute one batch at a time on their own virtual timeline
(``free_at``); the load harness (:mod:`repro.serve.shardload`) advances
the cluster event by event, so every latency is deterministic modeled
time, comparable across machines like the rest of the serve stack.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

from repro.faults.shard import ShardFaultPlan
from repro.obs.instrumentation import Instrumentation
from repro.serve.queue import ServeRequest
from repro.serve.service import DispatchOutcome, SolverService

__all__ = ["HashRing", "ShardRouter", "ShardCluster", "ShardDispatch"]


def _hash_point(s: str) -> int:
    """Stable 64-bit ring coordinate of a string (SHA-1 prefix)."""
    return int.from_bytes(hashlib.sha1(s.encode()).digest()[:8], "big")


def _key_str(key) -> str:
    """Canonical string identity of an operator key."""
    fp = getattr(key, "fingerprint", None)
    return fp() if callable(fp) else str(key)


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node owns ``vnodes`` points on a 64-bit ring; a key maps to the
    first point at or after its own hash (wrapping).  Removing a node
    deletes only that node's points, so exactly the keys it owned move —
    everyone else's mapping is untouched.
    """

    def __init__(self, nodes=(), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (hash, node)
        for n in nodes:
            self.add(n)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for v in range(self.vnodes):
            bisect.insort(self._points, (_hash_point(f"{node}#{v}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]

    def lookup(self, key_str: str) -> str:
        """The node owning ``key_str`` (its primary)."""
        return self.preference(key_str, 1)[0]

    def preference(self, key_str: str, n: int) -> list[str]:
        """The first ``n`` *distinct* nodes at/after the key's ring point
        — the canonical replica placement order."""
        if not self._points:
            raise LookupError("empty hash ring")
        n = min(n, len(self._nodes))
        h = _hash_point(key_str)
        i = bisect.bisect_left(self._points, (h, ""))
        out: list[str] = []
        for step in range(len(self._points)):
            node = self._points[(i + step) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) == n:
                    break
        return out


class ShardRouter:
    """Key → shard-set routing with hotness-triggered replication.

    The router is a pure function of the shard membership and the
    sequence of :meth:`record` calls — no wall clock, no randomness — so
    two routers fed the same history agree on every decision (the
    determinism property the tests pin down).
    """

    def __init__(
        self,
        shards,
        vnodes: int = 64,
        hot_threshold: int = 16,
        max_replicas: int = 1,
    ):
        if hot_threshold < 1:
            raise ValueError(f"hot_threshold must be >= 1, got {hot_threshold}")
        if max_replicas < 0:
            raise ValueError(f"max_replicas must be >= 0, got {max_replicas}")
        self.ring = HashRing(shards, vnodes=vnodes)
        self.hot_threshold = hot_threshold
        self.max_replicas = max_replicas
        self._heat: dict[str, int] = {}  # fingerprint -> request count

    @property
    def shards(self) -> tuple[str, ...]:
        return self.ring.nodes

    def record(self, key) -> bool:
        """Account one request against ``key``'s hotness; returns True
        exactly when the key crosses the replication threshold."""
        fp = _key_str(key)
        self._heat[fp] = self._heat.get(fp, 0) + 1
        return self._heat[fp] == self.hot_threshold

    def is_hot(self, key) -> bool:
        return self._heat.get(_key_str(key), 0) >= self.hot_threshold

    def primary(self, key) -> str:
        return self.ring.lookup(_key_str(key))

    def targets(self, key) -> tuple[str, ...]:
        """Primary-first preference list of shards serving ``key``: just
        the primary for cold keys, the whole replica set for hot ones.
        Recomputed from the live ring, so membership changes (failover)
        are reflected immediately."""
        n = 1 + (self.max_replicas if self.is_hot(key) else 0)
        return tuple(self.ring.preference(_key_str(key), n))

    def remove_shard(self, shard: str) -> None:
        self.ring.remove(shard)

    def add_shard(self, shard: str) -> None:
        self.ring.add(shard)

    def replication_report(self) -> dict[str, float]:
        """Summary of the replication state over every key ever routed."""
        seen = len(self._heat)
        hot = sum(1 for c in self._heat.values() if c >= self.hot_threshold)
        factor = (
            sum(len(self.targets(_Raw(fp))) for fp in self._heat) / seen
            if seen
            else 0.0
        )
        return {
            "keys_seen": seen,
            "replicated_keys": hot,
            "replication_factor": factor,
        }


class _Raw:
    """Wrap an already-computed fingerprint for router lookups."""

    def __init__(self, fp: str):
        self._fp = fp

    def fingerprint(self) -> str:
        return self._fp


@dataclass
class _Shard:
    """Balancer-side state of one shard service."""

    service: SolverService
    alive: bool = True
    free_at: float = 0.0  # virtual time this shard's last batch ends
    busy_s: float = 0.0  # accumulated dispatch durations
    dispatches: int = 0


@dataclass
class ShardDispatch:
    """One shard's dispatch in a :meth:`ShardCluster.step` round."""

    shard: str
    outcome: DispatchOutcome
    end: float  # virtual completion time of the batch


class ShardCluster:
    """N shard services behind a router and an SLO-aware balancer."""

    def __init__(
        self,
        router: ShardRouter,
        services: dict[str, SolverService],
        obs: Instrumentation | None = None,
        tenant_quota: int | None = None,
        shard_faults: ShardFaultPlan | None = None,
    ):
        if set(services) != set(router.shards):
            raise ValueError(
                f"router shards {sorted(router.shards)} != "
                f"services {sorted(services)}"
            )
        self.router = router
        self.obs = obs if obs is not None else Instrumentation(rank=-1)
        self.tenant_quota = tenant_quota
        self._shards = {sid: _Shard(svc) for sid, svc in services.items()}
        self._faults = shard_faults.bind() if shard_faults is not None else None
        self._outstanding: dict[str, int] = {}  # tenant -> queued+admitted
        self._in_coherence = False
        for sid, sh in self._shards.items():
            sh.service.cache.on_invalidate = self._make_coherence_hook(sid)

    # ------------------------------------------------------------------
    # cache coherence
    # ------------------------------------------------------------------

    def _make_coherence_hook(self, origin: str):
        def hook(key) -> None:
            if self._in_coherence:
                return  # propagation in progress: don't re-fan-out
            self._in_coherence = True
            try:
                for sid in self.router.targets(key):
                    if sid == origin or sid not in self._shards:
                        continue
                    if self._shards[sid].service.cache.invalidate(key):
                        self.obs.incr("shard.coherent_invalidations")
            finally:
                self._in_coherence = False

        return hook

    # ------------------------------------------------------------------
    # admission (route + spill + tenant quota)
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests queued across alive shards."""
        return sum(
            sh.service.pending for sh in self._shards.values() if sh.alive
        )

    def shard_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def shard_state(self, sid: str) -> _Shard:
        return self._shards[sid]

    def submit(self, req: ServeRequest, now: float) -> bool:
        """Admit one request; returns False when shed (quota or overload).

        Admission order: per-tenant quota first (fair-share admission
        control), then hotness accounting, then placement on the
        least-loaded eligible shard with queue room (primary-or-replica;
        landing off-primary counts as a spill).
        """
        self.advance(now)
        self.obs.incr("shard.submitted")
        tenant = req.tenant or "-"
        if (
            self.tenant_quota is not None
            and self._outstanding.get(tenant, 0) >= self.tenant_quota
        ):
            self.obs.incr("shard.shed_tenant")
            return False
        self.router.record(req.key)
        if self._place(req):
            self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
            return True
        self.obs.incr("shard.shed_full")
        return False

    def _place(self, req: ServeRequest) -> bool:
        """Put ``req`` on the least-loaded eligible live shard; returns
        False when every eligible queue is full."""
        targets = [
            sid
            for sid in self.router.targets(req.key)
            if sid in self._shards and self._shards[sid].alive
        ]
        if not targets:
            return False
        primary = targets[0]
        order = sorted(
            targets,
            key=lambda s: (
                self._shards[s].service.pending,
                self._shards[s].free_at,
                s,
            ),
        )
        for sid in order:
            if self._shards[sid].service.submit(req):
                if sid != primary:
                    self.obs.incr("shard.spills")
                return True
        return False

    def _release(self, req: ServeRequest) -> None:
        tenant = req.tenant or "-"
        left = self._outstanding.get(tenant, 0) - 1
        self._outstanding[tenant] = max(left, 0)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def step(self, now: float) -> list[ShardDispatch]:
        """One balancer round: every idle live shard with queued work
        dispatches its next deadline-ordered batch.  Dispatch is atomic
        on a shard's timeline — the shard is busy until ``end`` and a
        kill landing mid-batch takes effect at the next round."""
        self.advance(now)
        out: list[ShardDispatch] = []
        for sid in sorted(self._shards):
            sh = self._shards[sid]
            if not sh.alive or sh.free_at > now or sh.service.pending == 0:
                continue
            outcome = sh.service.dispatch(now)
            for r in outcome.expired:
                self._release(r)
            for c in outcome.completions:
                self._release(c.request)
            end = now
            if outcome.batch_size:
                end = now + outcome.duration
                sh.free_at = end
                sh.busy_s += outcome.duration
                sh.dispatches += 1
            out.append(ShardDispatch(sid, outcome, end))
        return out

    def next_wakeup(self, now: float) -> float:
        """Earliest future virtual time at which the cluster can make
        progress (a busy shard frees up, or a fault event fires);
        ``inf`` when nothing is due."""
        times = [
            sh.free_at
            for sh in self._shards.values()
            if sh.alive and sh.service.pending > 0 and sh.free_at > now
        ]
        if self._faults is not None:
            times.append(self._faults.next_event())
        return min(times) if times else float("inf")

    # ------------------------------------------------------------------
    # shard failures
    # ------------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Apply every shard-fault event due at or before ``now``."""
        if self._faults is None:
            return
        for kill in self._faults.due_kills(now):
            self._kill(kill.shard)
        for sid in self._faults.due_revives(now):
            self._revive(sid, now)

    def _kill(self, sid: str) -> None:
        sh = self._shards.get(sid)
        if sh is None or not sh.alive:
            return
        sh.alive = False
        self.obs.incr("shard.kills")
        self.router.remove_shard(sid)
        # fail queued work over to the survivors: re-route each request
        # through the (now smaller) ring; its operator rebuilds on the
        # new owner if no warm replica exists.  The killed shard's cached
        # contexts die with it.
        drained = sh.service.queue.take(
            r.rid for r in list(sh.service.queue.fifo())
        )
        for req in drained:
            self.obs.incr("shard.failovers")
            if not self._place(req):
                self._release(req)
                self.obs.incr("shard.failover_shed")

    def _revive(self, sid: str, now: float) -> None:
        sh = self._shards.get(sid)
        if sh is None or sh.alive:
            return
        sh.alive = True
        sh.free_at = max(sh.free_at, now)
        self.router.add_shard(sid)
        self.obs.incr("shard.revives")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def utilization(self, makespan: float) -> dict[str, float]:
        """Per-shard utilization: busy virtual seconds / makespan."""
        if makespan <= 0:
            return {sid: 0.0 for sid in self._shards}
        return {
            sid: sh.busy_s / makespan for sid, sh in sorted(self._shards.items())
        }

    def utilization_summary(self, makespan: float) -> dict[str, float]:
        """Mean/min/max utilization and the peak-to-mean skew the CI
        gate bounds (1.0 = perfectly balanced)."""
        util = list(self.utilization(makespan).values())
        mean = sum(util) / len(util) if util else 0.0
        return {
            "mean": mean,
            "min": min(util, default=0.0),
            "max": max(util, default=0.0),
            "peak_to_mean": (max(util) / mean) if mean > 0 else 0.0,
        }

    def merged_histograms(self) -> tuple[dict[int, int], dict[str, int]]:
        """Cluster-wide batch-size and execution-mode histograms."""
        batches: dict[int, int] = {}
        modes: dict[str, int] = {}
        for sh in self._shards.values():
            for k, v in sh.service.batch_histogram.items():
                batches[k] = batches.get(k, 0) + v
            for m, v in sh.service.mode_histogram.items():
                modes[m] = modes.get(m, 0) + v
        return batches, modes

    def request_counters(self) -> dict[str, int]:
        """Summed per-shard service counters (serve.*) + cluster counters
        (shard.*)."""
        out: dict[str, float] = {}
        for sh in self._shards.values():
            for name, val in sh.service.obs.counters.items():
                out[name] = out.get(name, 0) + val
        for name, val in self.obs.counters.items():
            out[name] = out.get(name, 0) + val
        return {k: int(v) for k, v in sorted(out.items())}

    def tenant_cache_stats(self) -> dict[str, dict[str, float]]:
        """Per-tenant hit/miss stats aggregated across every shard cache."""
        agg: dict[str, list[float]] = {}
        for sh in self._shards.values():
            for t, st in sh.service.cache.tenant_stats().items():
                cur = agg.setdefault(t, [0, 0])
                cur[0] += st["hits"]
                cur[1] += st["misses"]
        return {
            t: {
                "hits": h,
                "misses": m,
                "hit_rate": h / (h + m) if h + m else 0.0,
            }
            for t, (h, m) in sorted(agg.items())
        }
