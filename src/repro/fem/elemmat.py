"""Batched element-matrix kernels.

Everything here is fully vectorized over element batches (``einsum`` over
``(E, q, n, d)`` arrays): this is the "dense local linear algebra" at the
heart of HYMV, and also the per-iteration cost of the matrix-free baseline.

Index conventions: ``e`` element, ``q`` quadrature point, ``n/m`` local
node, ``d/k/i/j`` spatial direction.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.element import ElementType
from repro.mesh.quadrature import QuadratureRule, quadrature_for
from repro.mesh.shape_functions import shape_functions_for
from repro.util.arrays import as_f64

__all__ = [
    "jacobians",
    "physical_gradients",
    "poisson_ke_batch",
    "elasticity_ke_batch",
    "mass_ke_batch",
]


def jacobians(
    dN: np.ndarray, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Geometric Jacobians of a batch of elements.

    Parameters
    ----------
    dN:
        ``(q, n, 3)`` reference shape-function gradients.
    coords:
        ``(E, n, 3)`` element node coordinates.

    Returns
    -------
    ``(J, detJ, invJ)`` with shapes ``(E, q, 3, 3)``, ``(E, q)``,
    ``(E, q, 3, 3)``.  ``J[d, k] = d x_k / d xi_d``.
    """
    J = np.einsum("qnd,enk->eqdk", dN, coords, optimize=True)
    detJ = np.linalg.det(J)
    if (detJ <= 0).any():
        bad = int((detJ <= 0).sum())
        raise ValueError(
            f"{bad} quadrature points with non-positive Jacobian "
            "(inverted or degenerate elements)"
        )
    invJ = np.linalg.inv(J)
    return J, detJ, invJ


def physical_gradients(dN: np.ndarray, invJ: np.ndarray) -> np.ndarray:
    """Physical shape-function gradients ``(E, q, n, 3)``.

    With ``J[d, k] = d x_k / d xi_d`` we have ``d xi_d / d x_k =
    (J^-1)[k, d]``, hence ``dN_phys[n, k] = dN_ref[n, d] * (J^-1)[k, d]``.
    """
    return np.einsum("qnd,eqkd->eqnk", dN, invJ, optimize=True)


def _setup(etype: ElementType, quad: QuadratureRule | None):
    sf = shape_functions_for(etype)
    if quad is None:
        quad = quadrature_for(etype)
    dN = sf.grad(quad.points)
    return sf, quad, dN


def poisson_ke_batch(
    coords: np.ndarray,
    etype: ElementType,
    quad: QuadratureRule | None = None,
    coefficient=None,
) -> np.ndarray:
    """Poisson stiffness matrices ``(E, n, n)`` for ``-div(kappa grad u)``.

    ``Ke[n, m] = sum_q w_q detJ_q kappa(x_q) grad(N_n) . grad(N_m)``;
    ``coefficient`` is a callable on physical points (default: 1, the
    Laplace operator).
    """
    coords = as_f64(coords)
    sf, quad, dN = _setup(etype, quad)
    _, detJ, invJ = jacobians(dN, coords)
    g = physical_gradients(dN, invJ)
    wd = quad.weights[None, :] * detJ
    if coefficient is not None:
        N = sf.eval(quad.points)
        xq = np.einsum("qn,enk->eqk", N, coords, optimize=True)
        kappa = np.asarray(coefficient(xq), dtype=np.float64)
        wd = wd * kappa.reshape(wd.shape)
    return np.einsum("eqnk,eqmk,eq->enm", g, g, wd, optimize=True)


def elasticity_ke_batch(
    coords: np.ndarray,
    etype: ElementType,
    lam: float,
    mu: float,
    quad: QuadratureRule | None = None,
) -> np.ndarray:
    """Isotropic linear-elasticity stiffness matrices ``(E, 3n, 3n)``.

    DOF ordering is node-major: dof ``3 n + i`` is component ``i`` of node
    ``n``.  The kernel is the standard index form

    ``Ke[(n,i),(m,j)] = ∫ lam g_n,i g_m,j + mu g_n,j g_m,i
    + mu delta_ij (g_n . g_m)``.
    """
    coords = as_f64(coords)
    sf, quad, dN = _setup(etype, quad)
    _, detJ, invJ = jacobians(dN, coords)
    g = physical_gradients(dN, invJ)
    wd = quad.weights[None, :] * detJ
    E, _, n, _ = g.shape

    term_lam = lam * np.einsum("eqni,eqmj,eq->enimj", g, g, wd, optimize=True)
    term_mu = mu * np.einsum("eqnj,eqmi,eq->enimj", g, g, wd, optimize=True)
    ke = term_lam + term_mu
    # add mu * delta_ij (g_n . g_m) on the i == j diagonal
    gdot = mu * np.einsum("eqnk,eqmk,eq->enm", g, g, wd, optimize=True)
    for i in range(3):
        ke[:, :, i, :, i] += gdot
    return ke.reshape(E, 3 * n, 3 * n)


def mass_ke_batch(
    coords: np.ndarray,
    etype: ElementType,
    quad: QuadratureRule | None = None,
    ndpn: int = 1,
) -> np.ndarray:
    """Consistent mass matrices ``(E, ndpn*n, ndpn*n)`` (unit density)."""
    coords = as_f64(coords)
    sf, quad, dN = _setup(etype, quad)
    N = sf.eval(quad.points)
    _, detJ, _ = jacobians(dN, coords)
    wd = quad.weights[None, :] * detJ
    m = np.einsum("qn,qm,eq->enm", N, N, wd, optimize=True)
    if ndpn == 1:
        return m
    E, n, _ = m.shape
    out = np.zeros((E, n, ndpn, n, ndpn))
    for i in range(ndpn):
        out[:, :, i, :, i] = m
    return out.reshape(E, ndpn * n, ndpn * n)
