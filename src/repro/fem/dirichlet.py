"""Dirichlet boundary conditions via constrained-dof projection.

All three SPMV methods (HYMV, matrix-assembled, matrix-free) expose the
*same* unconstrained operator ``K``; Dirichlet conditions are imposed
uniformly at the solver level through the standard projection trick: with
``P`` the projector zeroing constrained dofs and ``u0`` the prescribed
values (zero on free dofs),

    solve  P K P w = P (f - K u0),   u = u0 + w.

This keeps the operator implementations directly comparable (the paper
does the same by routing every method through PETSc's MatShell CG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.arrays import INDEX_DTYPE, as_index

__all__ = ["DirichletBC"]

ValueFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class DirichletBC:
    """A set of constrained nodes with prescribed values.

    Parameters
    ----------
    nodes:
        Sorted global node ids (renumbered ids when used with a
        :class:`repro.partition.Partition`).
    value:
        Constant scalar / ``(ndpn,)`` vector, or a callable mapping node
        coordinates ``(m, 3)`` to values ``(m, ndpn)``.
    ndpn:
        Degrees of freedom per node.
    components:
        Which dof components are constrained (default: all).
    """

    nodes: np.ndarray
    value: float | np.ndarray | ValueFn = 0.0
    ndpn: int = 1
    components: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        self.nodes = np.unique(as_index(self.nodes))
        if self.components is None:
            self.components = tuple(range(self.ndpn))

    def constrained_dofs(self) -> np.ndarray:
        """Sorted constrained global dof ids (dof = node * ndpn + comp)."""
        comps = np.asarray(self.components, dtype=INDEX_DTYPE)
        return np.sort(
            (self.nodes[:, None] * self.ndpn + comps[None, :]).reshape(-1)
        )

    def mask_slice(self, begin: int, end: int) -> np.ndarray:
        """Boolean mask over dofs ``[begin*ndpn, end*ndpn)`` marking
        constrained entries (half-open *node* range)."""
        n = (end - begin) * self.ndpn
        mask = np.zeros(n, dtype=bool)
        dofs = self.constrained_dofs()
        lo = np.searchsorted(dofs, begin * self.ndpn)
        hi = np.searchsorted(dofs, end * self.ndpn)
        mask[dofs[lo:hi] - begin * self.ndpn] = True
        return mask

    def values_for(self, node_ids: np.ndarray, coords: np.ndarray) -> np.ndarray:
        """Prescribed dof values ``(m, ndpn)`` for the subset of
        ``node_ids`` (with coordinates ``coords``) that are constrained;
        unconstrained nodes/components get 0."""
        node_ids = as_index(node_ids)
        out = np.zeros((node_ids.size, self.ndpn))
        pos = np.searchsorted(self.nodes, node_ids)
        pos = np.clip(pos, 0, self.nodes.size - 1)
        hit = self.nodes[pos] == node_ids
        if not hit.any():
            return out
        if callable(self.value):
            vals = np.asarray(self.value(coords[hit]), dtype=np.float64)
            vals = vals.reshape(int(hit.sum()), self.ndpn)
        else:
            vals = np.broadcast_to(
                np.asarray(self.value, dtype=np.float64).reshape(-1),
                (int(hit.sum()), self.ndpn),
            )
        sel = np.zeros((int(hit.sum()), self.ndpn), dtype=bool)
        sel[:, list(self.components)] = True
        out[hit] = np.where(sel, vals, 0.0)
        return out
