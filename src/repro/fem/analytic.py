"""Analytic solutions used for correctness verification (paper §V-B)."""

from __future__ import annotations

import numpy as np

from repro.fem.material import IsotropicElasticity

__all__ = [
    "poisson_exact",
    "poisson_forcing",
    "bar_exact_displacement",
    "bar_body_force",
    "bar_top_traction",
]

_TWO_PI = 2.0 * np.pi


def poisson_exact(x: np.ndarray) -> np.ndarray:
    """Exact solution of ``∇²u + sin(2πx) sin(2πy) sin(2πz) = 0`` on the
    unit cube with homogeneous Dirichlet boundary:
    ``u = sin(2πx) sin(2πy) sin(2πz) / (12 π²)``."""
    x = np.asarray(x, dtype=np.float64)
    s = (
        np.sin(_TWO_PI * x[..., 0])
        * np.sin(_TWO_PI * x[..., 1])
        * np.sin(_TWO_PI * x[..., 2])
    )
    return s / (12.0 * np.pi**2)


def poisson_forcing(x: np.ndarray) -> np.ndarray:
    """Body force ``b(x) = sin(2πx) sin(2πy) sin(2πz)`` (so that the weak
    form reads ``∫ ∇u·∇v = ∫ b v``)."""
    x = np.asarray(x, dtype=np.float64)
    return (
        np.sin(_TWO_PI * x[..., 0])
        * np.sin(_TWO_PI * x[..., 1])
        * np.sin(_TWO_PI * x[..., 2])
    )


def bar_exact_displacement(
    x: np.ndarray, mat: IsotropicElasticity, Lz: float
) -> np.ndarray:
    """Timoshenko & Goodier: prismatic bar hanging under its own weight.

    Origin at the bottom-face centre, bar of height ``Lz`` hung from the
    top face (z = Lz)::

        ux = -(nu rho g / E) x z
        uy = -(nu rho g / E) y z
        uz = (rho g / 2E) (z² - Lz²) + (nu rho g / 2E)(x² + y²)

    The associated stress field is uniaxial, ``σ_zz = rho g z``, so the
    lateral and bottom faces are traction-free, the top face carries the
    uniform traction ``t_z = rho g Lz`` and the body force is
    ``(0, 0, -rho g)``.
    """
    x = np.asarray(x, dtype=np.float64)
    c = mat.rho * mat.g / mat.E
    out = np.empty(x.shape, dtype=np.float64)
    out[..., 0] = -mat.nu * c * x[..., 0] * x[..., 2]
    out[..., 1] = -mat.nu * c * x[..., 1] * x[..., 2]
    out[..., 2] = 0.5 * c * (x[..., 2] ** 2 - Lz**2) + 0.5 * mat.nu * c * (
        x[..., 0] ** 2 + x[..., 1] ** 2
    )
    return out


def bar_body_force(mat: IsotropicElasticity) -> np.ndarray:
    """Gravity body force of the hanging bar."""
    return np.array([0.0, 0.0, -mat.rho * mat.g])


def bar_top_traction(mat: IsotropicElasticity, Lz: float) -> np.ndarray:
    """Uniform traction on the top face holding the bar up."""
    return np.array([0.0, 0.0, mat.rho * mat.g * Lz])
