"""FEM substrate: operators, element matrices, loads, BCs, exact solutions.

HYMV treats the element matrices as user input ("adaptive-matrix": the
library stores whatever ``Ke`` the application provides).  This package is
the application side: it computes batched element matrices for the two
operators the paper evaluates — the Poisson (Laplace) operator and linear
elasticity — plus right-hand sides, Dirichlet-condition helpers and the
manufactured/analytic solutions used for correctness verification (§V-B).
"""

from repro.fem.analytic import (
    bar_body_force,
    bar_exact_displacement,
    poisson_exact,
    poisson_forcing,
)
from repro.fem.dirichlet import DirichletBC
from repro.fem.loads import body_force_rhs_batch, traction_rhs_batch
from repro.fem.material import IsotropicElasticity
from repro.fem.operators import (
    ElasticityOperator,
    Operator,
    PoissonOperator,
)

__all__ = [
    "IsotropicElasticity",
    "Operator",
    "PoissonOperator",
    "ElasticityOperator",
    "poisson_exact",
    "poisson_forcing",
    "bar_exact_displacement",
    "bar_body_force",
    "body_force_rhs_batch",
    "traction_rhs_batch",
    "DirichletBC",
]
