"""PDE operators: the application-side providers of element matrices.

An :class:`Operator` is what HYMV's setup phase calls to obtain element
matrices, what the matrix-free baseline calls *every* SPMV, and what the
matrix-assembled baseline calls once before global assembly.  It also
carries flop estimates used by the throughput analysis (Table I, Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fem.elemmat import elasticity_ke_batch, poisson_ke_batch
from repro.fem.material import IsotropicElasticity
from repro.mesh.element import ElementType
from repro.mesh.quadrature import QuadratureRule, quadrature_for


@dataclass(frozen=True)
class Operator:
    """Base operator interface.

    Subclasses implement :meth:`element_matrices`; ``ndpn`` is the number
    of degrees of freedom per mesh node.
    """

    ndpn: int = 1

    def element_matrices(
        self, coords: np.ndarray, etype: ElementType
    ) -> np.ndarray:
        """Batched element matrices ``(E, ndpn*n, ndpn*n)``."""
        raise NotImplementedError

    def element_dofs(self, etype: ElementType) -> int:
        return self.ndpn * etype.n_nodes

    # ---- cost accounting (used by perfmodel / Table I) -----------------

    def ke_flops(self, etype: ElementType) -> float:
        """Estimated flops of an efficient element-matrix computation.

        Hexes pay the full quadrature loop (jacobians, inversions,
        physical gradients, stiffness contraction per point).  Straight-
        sided tets are affine — one Jacobian per element and the
        quadrature sum collapses into a volume factor — which is how
        optimized FEM codes (and the paper's) compute them.
        """
        n = etype.n_nodes
        if etype.is_tet:
            # straight-sided tets are affine: TET4 needs one point, TET10
            # a degree-2 rule over its linear gradients
            q = 1 if n == 4 else 4
        else:
            q = quadrature_for(etype).n_points
        jac = 2.0 * q * n * 9  # J = dN^T X
        inv = q * 60.0  # 3x3 det + inverse
        grad = 2.0 * q * n * 9  # dN_phys
        if self.ndpn == 1:
            stiff = 2.0 * q * n * n * 3
        else:
            stiff = 3.0 * (2.0 * q * n * n * 9) + 2.0 * q * n * n * 3
        return jac + inv + grad + stiff

    def emv_flops(self, etype: ElementType) -> float:
        """Flops of one dense elemental matrix-vector product."""
        nd = self.element_dofs(etype)
        return 2.0 * nd * nd


@dataclass(frozen=True)
class PoissonOperator(Operator):
    """Diffusion operator ``-div(kappa grad u)``.

    ``coefficient`` is an optional callable on physical points giving the
    (scalar) diffusivity ``kappa(x)``; None means the Laplace operator of
    the paper's verification problem.
    """

    ndpn: int = 1
    quad: QuadratureRule | None = None
    coefficient: object = None

    def element_matrices(self, coords, etype):
        return poisson_ke_batch(coords, etype, self.quad, self.coefficient)


@dataclass(frozen=True)
class GraphLaplacianOperator(Operator):
    """Weighted graph Laplacian over per-element node cliques — the
    non-FEM sparsity generator for the SELL-C-sigma backend.

    Each element contributes the Laplacian of a weighted clique on its
    nodes: ``K_e = diag(W_e 1) - W_e + shift * I``.  Edge weights are a
    deterministic hash of the *physical* edge-midpoint coordinates (plus
    ``seed``), so every element containing a geometric edge assigns it
    the same weight and the assembled matrix is independent of the
    partitioning and of element order.  A ``drop`` fraction of edges get
    weight zero (hash below threshold), giving irregular per-row value
    distributions; combined with an unstructured tet mesh's irregular
    node valence this produces the skewed row-length histograms that a
    sliced-ELL format has to handle.  The ``shift`` keeps the assembled
    operator SPD (the pure Laplacian is only semi-definite).
    """

    ndpn: int = 1
    seed: int = 0
    drop: float = 0.35
    shift: float = 0.05

    def element_matrices(self, coords, etype):
        # symmetric edge-midpoint hash -> uniform(0, 1) per node pair
        mid = 0.5 * (coords[:, :, None, :] + coords[:, None, :, :])
        phase = (
            mid[..., 0] * 12.9898
            + mid[..., 1] * 78.233
            + mid[..., 2] * 37.719
            + self.seed * 0.618033988749895
        )
        u = np.sin(phase) * 43758.5453123
        u -= np.floor(u)
        w = np.where(u < self.drop, 0.0, u)
        n = coords.shape[1]
        eye = np.eye(n)
        w = w * (1.0 - eye)  # no self-edges
        ke = np.zeros_like(w)
        d = w.sum(axis=2)
        idx = np.arange(n)
        ke[:, idx, idx] = d + self.shift
        ke -= w
        return ke

    def ke_flops(self, etype: ElementType) -> float:
        """Hash + row-sum cost: ~30 flops per clique pair."""
        n = etype.n_nodes
        return 30.0 * n * n


@dataclass(frozen=True)
class ElasticityOperator(Operator):
    """Isotropic linear elasticity (3 dofs per node)."""

    ndpn: int = 3
    material: IsotropicElasticity = field(default_factory=IsotropicElasticity)
    quad: QuadratureRule | None = None

    def element_matrices(self, coords, etype):
        return elasticity_ke_batch(
            coords, etype, self.material.lam, self.material.mu, self.quad
        )
