"""Material models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IsotropicElasticity:
    """Linear isotropic elasticity.

    Parameters match the paper's hanging-bar verification problem
    (Timoshenko & Goodier): Young's modulus ``E``, Poisson's ratio ``nu``,
    density ``rho``, gravitational acceleration ``g``.
    """

    E: float = 1.0
    nu: float = 0.3
    rho: float = 1.0
    g: float = 1.0

    @property
    def lam(self) -> float:
        """First Lamé parameter."""
        return self.E * self.nu / ((1.0 + self.nu) * (1.0 - 2.0 * self.nu))

    @property
    def mu(self) -> float:
        """Shear modulus (second Lamé parameter)."""
        return self.E / (2.0 * (1.0 + self.nu))
