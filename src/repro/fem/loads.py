"""Right-hand-side assembly primitives: body forces and surface tractions.

Both return *elemental* load vectors ``(E, n_nodes, ndpn)``; accumulation
into distributed vectors happens through the same E2L scatter machinery the
SPMV uses.
"""

from __future__ import annotations

import functools
from typing import Callable

import numpy as np
from scipy.special import roots_jacobi, roots_legendre

from repro.fem.elemmat import jacobians
from repro.mesh.element import ElementType, corner_faces
from repro.mesh.quadrature import QuadratureRule, quadrature_for
from repro.mesh.shape_functions import reference_nodes, shape_functions_for
from repro.util.arrays import as_f64

__all__ = ["body_force_rhs_batch", "traction_rhs_batch", "face_area_batch"]

ForceFn = Callable[[np.ndarray], np.ndarray]


def body_force_rhs_batch(
    coords: np.ndarray,
    etype: ElementType,
    force: ForceFn | np.ndarray,
    ndpn: int = 1,
    quad: QuadratureRule | None = None,
) -> np.ndarray:
    """Elemental body-force load vectors ``f_e[n, k] = ∫ N_n b_k dV``.

    ``force`` is either a constant ``(ndpn,)`` vector or a callable mapping
    physical points ``(..., 3)`` to force values ``(..., ndpn)``.
    """
    coords = as_f64(coords)
    sf = shape_functions_for(etype)
    if quad is None:
        quad = quadrature_for(etype)
    N = sf.eval(quad.points)  # (q, n)
    dN = sf.grad(quad.points)
    _, detJ, _ = jacobians(dN, coords)
    wd = quad.weights[None, :] * detJ  # (E, q)
    if callable(force):
        xq = np.einsum("qn,enk->eqk", N, coords, optimize=True)
        b = np.asarray(force(xq), dtype=np.float64)  # (E, q, ndpn)
        b = b.reshape(xq.shape[0], xq.shape[1], ndpn)
        return np.einsum("qn,eqk,eq->enk", N, b, wd, optimize=True)
    b = np.asarray(force, dtype=np.float64).reshape(ndpn)
    return np.einsum("qn,eq,k->enk", N, wd, b, optimize=True)


# ----------------------------------------------------------------------------
# face quadrature (for tractions)
# ----------------------------------------------------------------------------

@functools.lru_cache(maxsize=None)
def _quad_face_rule(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Tensor Gauss rule on the reference square [-1, 1]^2."""
    x, w = roots_legendre(n)
    S, T = np.meshgrid(x, x, indexing="ij")
    WS, WT = np.meshgrid(w, w, indexing="ij")
    return np.stack([S.ravel(), T.ravel()], axis=1), (WS * WT).ravel()


@functools.lru_cache(maxsize=None)
def _tri_face_rule(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Collapsed Gauss rule on the unit triangle {a, b >= 0, a + b <= 1}."""
    xa, wa = roots_legendre(n)
    xb, wb = roots_jacobi(n, 1.0, 0.0)
    ta, tb = 0.5 * (xa + 1.0), 0.5 * (xb + 1.0)
    wa01, wb01 = wa / 2.0, wb / 4.0  # (1 - b) absorbed into Jacobi weight
    A, B = np.meshgrid(ta, tb, indexing="ij")
    WA, WB = np.meshgrid(wa01, wb01, indexing="ij")
    a = (A * (1.0 - B)).ravel()
    b = B.ravel()
    return np.stack([a, b], axis=1), (WA * WB).ravel()


@functools.lru_cache(maxsize=None)
def _face_quadrature(etype: ElementType, face: int, n: int):
    """Reference-volume points, weights and in-face tangent derivatives
    for face ``face`` of element type ``etype``.

    Returns ``(xi (q, 3), w (q,), dxi_ds (q, 3), dxi_dt (q, 3))``.
    """
    corners = corner_faces(etype)[face]
    ref = reference_nodes(etype)[list(corners)]
    if etype.is_hex:
        st, w = _quad_face_rule(n)
        s, t = st[:, 0], st[:, 1]
        q0 = 0.25 * (1 - s) * (1 - t)
        q1 = 0.25 * (1 + s) * (1 - t)
        q2 = 0.25 * (1 + s) * (1 + t)
        q3 = 0.25 * (1 - s) * (1 + t)
        xi = np.einsum("q,k->qk", q0, ref[0]) + np.einsum("q,k->qk", q1, ref[1])
        xi += np.einsum("q,k->qk", q2, ref[2]) + np.einsum("q,k->qk", q3, ref[3])
        dq_ds = np.stack([-(1 - t), (1 - t), (1 + t), -(1 + t)], axis=1) * 0.25
        dq_dt = np.stack([-(1 - s), -(1 + s), (1 + s), (1 - s)], axis=1) * 0.25
        dxi_ds = dq_ds @ ref
        dxi_dt = dq_dt @ ref
    else:
        ab, w = _tri_face_rule(n)
        a, b = ab[:, 0], ab[:, 1]
        xi = (
            ref[0][None, :]
            + a[:, None] * (ref[1] - ref[0])[None, :]
            + b[:, None] * (ref[2] - ref[0])[None, :]
        )
        dxi_ds = np.broadcast_to(ref[1] - ref[0], (len(w), 3)).copy()
        dxi_dt = np.broadcast_to(ref[2] - ref[0], (len(w), 3)).copy()
    return xi, w, dxi_ds, dxi_dt


def _face_geometry(
    coords: np.ndarray, etype: ElementType, face: int, n: int
):
    """Shape values, quadrature weights * surface Jacobian, and physical
    points on one face of a batch of elements."""
    sf = shape_functions_for(etype)
    xi, w, dxi_ds, dxi_dt = _face_quadrature(etype, face, n)
    N = sf.eval(xi)  # (q, n)
    dN = sf.grad(xi)  # (q, n, 3)
    # physical tangents: T_s[e,q,k] = sum_n (dN[q,n,:] . dxi_ds[q,:]) x[e,n,k]
    dn_ds = np.einsum("qnd,qd->qn", dN, dxi_ds, optimize=True)
    dn_dt = np.einsum("qnd,qd->qn", dN, dxi_dt, optimize=True)
    Ts = np.einsum("qn,enk->eqk", dn_ds, coords, optimize=True)
    Tt = np.einsum("qn,enk->eqk", dn_dt, coords, optimize=True)
    dA = np.linalg.norm(np.cross(Ts, Tt), axis=-1)  # (E, q)
    xq = np.einsum("qn,enk->eqk", N, coords, optimize=True)
    return N, w[None, :] * dA, xq


def traction_rhs_batch(
    coords: np.ndarray,
    etype: ElementType,
    faces: np.ndarray,
    traction: ForceFn | np.ndarray,
    ndpn: int = 1,
    n_quad: int = 3,
) -> np.ndarray:
    """Elemental traction load vectors ``f_e[n, k] = ∫_face N_n t_k dA``.

    Parameters
    ----------
    coords:
        ``(F, n_nodes, 3)`` coordinates of the elements owning the faces.
    faces:
        ``(F,)`` local face index of each entry.
    traction:
        Constant ``(ndpn,)`` vector or callable on physical points.
    """
    coords = as_f64(coords)
    faces = np.asarray(faces)
    out = np.zeros((coords.shape[0], etype.n_nodes, ndpn))
    for face in np.unique(faces):
        sel = faces == face
        N, wda, xq = _face_geometry(coords[sel], etype, int(face), n_quad)
        if callable(traction):
            t = np.asarray(traction(xq), dtype=np.float64)
            t = t.reshape(xq.shape[0], xq.shape[1], ndpn)
            out[sel] = np.einsum("qn,eqk,eq->enk", N, t, wda, optimize=True)
        else:
            t = np.asarray(traction, dtype=np.float64).reshape(ndpn)
            out[sel] = np.einsum("qn,eq,k->enk", N, wda, t, optimize=True)
    return out


def face_area_batch(
    coords: np.ndarray, etype: ElementType, faces: np.ndarray, n_quad: int = 3
) -> np.ndarray:
    """Areas of the given (element, face) pairs (testing/diagnostics)."""
    coords = as_f64(coords)
    faces = np.asarray(faces)
    out = np.zeros(coords.shape[0])
    for face in np.unique(faces):
        sel = faces == face
        _, wda, _ = _face_geometry(coords[sel], etype, int(face), n_quad)
        out[sel] = wda.sum(axis=1)
    return out
