"""SELL-C-sigma operator — the tuned unified-sparse-format baseline.

:class:`SellCSOperator` assembles exactly like
:class:`~repro.baselines.assembled.AssembledOperator` (real parallel
assembly, PETSc-style diag/pre/post CSR split, packed-halo exchange) and
then converts each CSR block to the SELL-C-sigma layout of
:mod:`repro.core.sellcs`.  Each block gets its *own* row permutation —
permute-in happens once per (re)assembly, permute-out happens inside the
slice kernels on every ``apply_owned`` — so results stay in original row
order and are **bitwise-identical** to the assembled-CSR reference:

* the slice-major single-RHS kernel accumulates each row's stored
  entries in the same order as scipy's CSR row sum, and the three block
  products are combined in the same ``diag += pre += post`` order as the
  base class;
* the multi-RHS ``"oracle"`` mode applies the single-RHS path per
  column (bitwise per column, one halo round per column);
* the multi-RHS ``"gemm"`` mode is the BLAS3 analogue — one packed
  ``ndpn*k``-wide ghost exchange and a chunk-batched matmul per block —
  equal to the oracle to rounding, not bitwise (same contract as every
  other operator's gemm mode).

Steady state is allocation-free: all kernel buffers live in per-``k``
:class:`~repro.core.sellcs.SellWorkspace` bundles cached on the
operator and invalidated on reassembly.  Padding overhead is surfaced
through the ``sellcs.padded_nnz`` / ``sellcs.occupancy`` counters
(maintained as *current values* across reassemblies, not running sums).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.assembled import AssembledOperator
from repro.core.da import DistributedArray, DistributedMultiVector
from repro.core.kernels import resolve_mode
from repro.core.scatter import scatter_begin, scatter_end
from repro.core.sellcs import (
    SellCS,
    SellWorkspace,
    build_sellcs,
    resolve_sell_params,
    sell_spmm,
    sell_spmv,
)
from repro.fem.operators import Operator
from repro.partition.interface import LocalMesh
from repro.simmpi.communicator import Communicator

__all__ = ["SellCSOperator"]


class _WsBundle:
    """Workspaces + scratch for one column count ``k``."""

    __slots__ = ("diag", "pre", "post", "xcol", "Yout")

    def __init__(
        self,
        S_diag: SellCS,
        S_pre: SellCS | None,
        S_post: SellCS | None,
        k: int,
    ):
        self.diag = SellWorkspace(S_diag, k)
        self.pre = SellWorkspace(S_pre, k) if S_pre is not None else None
        self.post = SellWorkspace(S_post, k) if S_post is not None else None
        if k > 1:
            # per-column scratch for the oracle loop and its output block
            self.xcol = np.empty(S_diag.n_cols)
            self.Yout = np.empty((S_diag.n_rows, k))
        else:
            self.xcol = None
            self.Yout = None


class SellCSOperator(AssembledOperator):
    """Distributed SELL-C-sigma operator (sixth operator kind)."""

    def __init__(
        self,
        comm: Communicator,
        lmesh: LocalMesh,
        operator: Operator,
        ranges: np.ndarray | None = None,
        elem_scale: np.ndarray | None = None,
        C: int | None = None,
        sigma: int | None = None,
        gemm_k_min: int | None = None,
    ):
        # _assemble (called from the base constructor) reads these.
        # ``C=None`` resolves through the process-wide configured
        # defaults (repro.core.sellcs.configure_sell_defaults — the
        # autotuner's hook); an explicit C keeps sigma=8C unless sigma
        # is also given, preserving the historical hard-coded behavior.
        self.C, self.sigma = resolve_sell_params(C, sigma)
        super().__init__(comm, lmesh, operator, ranges=ranges, elem_scale=elem_scale)
        self.gemm_k_min = gemm_k_min

    # ------------------------------------------------------------------
    # assembly: CSR first (inherited), then the SELL conversion
    # ------------------------------------------------------------------

    def _assemble(self, prefix: str) -> None:
        super()._assemble(prefix)
        comm = self.comm
        with comm.compute(f"{prefix}.sellcs_convert"):
            self.S_diag = build_sellcs(self.A_diag, self.C, self.sigma)
            self.S_pre = (
                build_sellcs(self.A_pre, self.C, self.sigma)
                if self.A_pre.shape[1]
                else None
            )
            self.S_post = (
                build_sellcs(self.A_post, self.C, self.sigma)
                if self.A_post.shape[1]
                else None
            )
            self._sell_ws: dict[int, _WsBundle] = {}
        blocks = [s for s in (self.S_diag, self.S_pre, self.S_post) if s is not None]
        padded = sum(s.padded_nnz for s in blocks)
        stored = sum(s.nnz for s in blocks)
        occ = (stored / padded) if padded else 1.0
        # counters carry the *current* layout's values: on reassembly,
        # add only the delta so readers see a gauge, not a running sum
        obs = comm.obs
        obs.incr("sellcs.padded_nnz", padded - getattr(self, "_padded_prev", 0))
        obs.incr("sellcs.occupancy", occ - getattr(self, "_occ_prev", 0.0))
        self._padded_prev = padded
        self._occ_prev = occ
        self.padded_nnz = padded
        self.occupancy = occ

    def _bundle(self, k: int) -> _WsBundle:
        b = self._sell_ws.get(k)
        if b is None:
            b = self._sell_ws[k] = _WsBundle(
                self.S_diag, self.S_pre, self.S_post, k
            )
        return b

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    def apply_owned(self, x: np.ndarray, copy: bool = True) -> np.ndarray:
        """``y = A x`` on owned dofs through the SELL slice kernels,
        bitwise-identical to :meth:`AssembledOperator.apply_owned`.

        ``copy=False`` returns a workspace-owned buffer (overwritten by
        the next call) and is allocation-free in steady state."""
        comm = self.comm
        t0 = comm.vtime
        if not hasattr(self, "_work_u"):
            self._work_u = self.new_array()
        u = self._work_u
        u.set_owned(x)
        reqs = scatter_begin(comm, u.data, self.cmaps)
        ws = self._bundle(1)
        with comm.compute("spmv.sell.diag"):
            y = sell_spmv(self.S_diag, u.owned_flat, ws.diag)
        tw = comm.vtime
        scatter_end(comm, u.data, self.cmaps, reqs)
        comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
        with comm.compute("spmv.sell.halo"):
            npre = self.maps.n_pre * self.ndpn
            flat = u.data.reshape(-1)
            if self.S_pre is not None:
                y2 = sell_spmv(self.S_pre, flat[:npre], ws.pre)
                np.add(y, y2, out=y)
            if self.S_post is not None:
                off = npre + self.n_dofs_owned
                y3 = sell_spmv(self.S_post, flat[off:], ws.post)
                np.add(y, y3, out=y)
        comm.obs.incr("spmv.flops", 2.0 * self.nnz)
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += 1
        return y.copy() if copy else y

    def apply_owned_multi(
        self, X: np.ndarray, copy: bool = True, mode: str = "auto"
    ) -> np.ndarray:
        """Multi-RHS application with the standard mode contract.

        ``"oracle"``: one single-RHS SELL application per column —
        bitwise-per-column against the assembled-CSR oracle, one halo
        round per column.  ``"gemm"``: ONE packed ``ndpn*k``-wide ghost
        exchange, then the chunk-batched matmul kernel per block —
        matches the oracle to rounding.  ``copy=False`` returns a
        workspace-owned block (overwritten by the next same-``k`` call).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected (n, k) multivector, got shape {X.shape}")
        k = X.shape[1]
        if k == 1:
            # a 1-wide "gemm" batch (k_min == 1) is the single-RHS kernel
            # with extra steps — the workspaces only carry multi buffers
            # for k > 1, so always take the single-RHS path here
            y = self.apply_owned(np.ascontiguousarray(X[:, 0]), copy=copy)
            return y.reshape(-1, 1)
        if resolve_mode(mode, k, self.gemm_k_min) != "gemm":
            ws = self._bundle(k)
            Y = ws.Yout
            for j in range(k):
                np.copyto(ws.xcol, X[:, j])
                Y[:, j] = self.apply_owned(ws.xcol, copy=False)
            return Y.copy() if copy else Y
        comm = self.comm
        t0 = comm.vtime
        U = self._work_multi.get(k)
        if U is None:
            U = self._work_multi[k] = DistributedMultiVector(
                self.maps, self.ndpn, k
            )
        U.set_owned(X)
        D = U.dof_view  # (n_total_dofs, k)
        npre = self.maps.n_pre * self.ndpn
        off = npre + self.n_dofs_owned
        reqs = scatter_begin(comm, U.node_view, self.cmaps)
        ws = self._bundle(k)
        with comm.compute("spmv.sell.diag"):
            Y = sell_spmm(self.S_diag, D[npre:off], ws.diag)
        tw = comm.vtime
        scatter_end(comm, U.node_view, self.cmaps, reqs)
        comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
        with comm.compute("spmv.sell.halo"):
            if self.S_pre is not None:
                Y2 = sell_spmm(self.S_pre, D[:npre], ws.pre)
                np.add(Y, Y2, out=Y)
            if self.S_post is not None:
                Y3 = sell_spmm(self.S_post, D[off:], ws.post)
                np.add(Y, Y3, out=Y)
        comm.obs.incr("spmv.flops", 2.0 * self.nnz * k)
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += k
        return Y.copy() if copy else Y

    # ------------------------------------------------------------------
    # DistributedArray-level API parity with the EMV operators
    # ------------------------------------------------------------------

    def new_multivector(self, k: int) -> DistributedMultiVector:
        return DistributedMultiVector(self.maps, self.ndpn, k)

    def spmv(
        self, u: DistributedArray, v: DistributedArray, overlap: bool = True
    ) -> DistributedArray:
        y = self.apply_owned(u.owned_flat, copy=False)
        v.set_owned(y)
        return v

    def spmv_multi(
        self,
        u: DistributedMultiVector,
        v: DistributedMultiVector,
        overlap: bool = True,
        mode: str = "auto",
    ) -> DistributedMultiVector:
        Y = self.apply_owned_multi(u.owned_matrix, copy=False, mode=mode)
        v.set_owned(Y)
        return v

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def flops_per_spmv(self) -> float:
        """2 flops per stored *slot* including padding — the SELL kernels
        really do multiply every pad slot by the pinned zero."""
        return 2.0 * self.padded_nnz

    def stored_bytes(self) -> int:
        """CSR blocks (kept for preconditioning and reassembly) plus the
        dual slice-/group-major SELL storage — the honest total."""
        total = super().stored_bytes()
        for s in (self.S_diag, self.S_pre, self.S_post):
            if s is not None:
                total += s.stored_bytes()
        return total
