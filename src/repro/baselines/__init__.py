"""Baselines the paper compares HYMV against.

* :mod:`repro.baselines.matfree` — Algorithm 4: element-by-element SPMV
  with element matrices *recomputed every product* (the matrix-free
  approach; no setup cost, much more compute per SPMV).
* :mod:`repro.baselines.assembled` — the matrix-assembled approach (the
  PETSc ``MatMult`` substitute): parallel global CSR assembly, including
  the off-rank row-contribution exchange that dominates setup at scale,
  then row-distributed CSR SPMV with a diag/off-diag split overlapping the
  halo exchange (PETSc's own scheme).
* :mod:`repro.baselines.sellcs` — the SELL-C-sigma backend: the
  assembled CSR blocks converted to sorted sliced-ELL with vectorized
  slice kernels, bitwise-identical to the assembled SPMV under the row
  permutation.
* :mod:`repro.baselines.serial` — serial global assembly, the reference
  every distributed method is checked against bit-for-bit (up to FP
  roundoff).
"""

from repro.baselines.assembled import AssembledOperator
from repro.baselines.matfree import MatrixFreeOperator
from repro.baselines.partial import PartialAssemblyOperator
from repro.baselines.sellcs import SellCSOperator
from repro.baselines.serial import SerialReference

__all__ = [
    "AssembledOperator",
    "MatrixFreeOperator",
    "PartialAssemblyOperator",
    "SellCSOperator",
    "SerialReference",
]
