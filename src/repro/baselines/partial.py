"""Partial-assembly (geometric-storage) operator — an extension variant.

The paper positions HYMV between matrix-assembled and matrix-free; the
related-work section points at matrix-free accelerations (stencil
scaling, MFEM/libCEED-style partial assembly).  This operator implements
that fourth point in the design space:

* at setup it stores only the *geometric factors* per quadrature point —
  for the Poisson operator the symmetric 3x3 matrix
  ``G_q = w_q detJ_q J_q^{-T} J_q^{-1}`` (6 floats), for elasticity the
  full ``invJ``/``w detJ`` pair — instead of the dense ``Ke``;
* each SPMV contracts reference-gradient tables against the stored
  factors, recovering exactly the same product as HYMV with a fraction of
  the memory (``O(q)`` vs ``O(nd²)`` per element) at the price of more
  flops per product.

It shares all maps/exchange machinery with HYMV through
:class:`~repro.core.hymv.EbeOperatorBase`, so it slots into every driver
as method name ``"partial"``.
"""

from __future__ import annotations

import numpy as np

from repro.core.hymv import EbeOperatorBase
from repro.fem.elemmat import jacobians
from repro.fem.operators import ElasticityOperator, PoissonOperator
from repro.mesh.quadrature import quadrature_for
from repro.mesh.shape_functions import shape_functions_for

__all__ = ["PartialAssemblyOperator"]


class PartialAssemblyOperator(EbeOperatorBase):
    """Matrix-free with precomputed geometric factors (libCEED-style)."""

    def __init__(self, comm, lmesh, operator, ranges=None, kernel="einsum",
                 modeled_rate_gflops=None, workspace=True, elem_scale=None):
        super().__init__(
            comm, lmesh, operator, ranges=ranges, kernel=kernel,
            modeled_rate_gflops=modeled_rate_gflops, workspace=workspace,
            elem_scale=elem_scale,
        )
        if not isinstance(operator, (PoissonOperator, ElasticityOperator)):
            raise TypeError(
                "partial assembly supports the Poisson and elasticity "
                f"operators, got {type(operator).__name__}"
            )
        quad = operator.quad or quadrature_for(self.etype)
        sf = shape_functions_for(self.etype)
        self._dN = sf.grad(quad.points)  # (q, n, 3)
        self._qw = quad.weights
        self._N = (
            sf.eval(quad.points)
            if isinstance(operator, PoissonOperator)
            and operator.coefficient is not None
            else None
        )
        with comm.compute("setup.geom_factors"):
            fa, fb = self._geom_factors(
                self._coords_perm,
                None if self._scale_perm is None else self._scale_perm,
            )
            if isinstance(operator, PoissonOperator):
                self._G = fa
            else:
                self._invJ = fa
                self._wd = fb

    def _geom_factors(self, coords, scale):
        """Geometric factors of an element-coordinate batch (row-wise
        bitwise batch-independent, so a subset refresh produces exactly
        the rows a full fresh build would)."""
        _, detJ, invJ = jacobians(self._dN, coords)
        wd = self._qw[None, :] * detJ  # (E, q)
        if self._N is not None:
            xq = np.einsum("qn,enk->eqk", self._N, coords, optimize=True)
            kappa = np.asarray(
                self.operator.coefficient(xq), dtype=np.float64
            )
            wd = wd * kappa.reshape(wd.shape)
        if scale is not None:
            # the stiffness scale folds into the quadrature weights (the
            # operator is linear in wd); 1.0 rows are bitwise untouched
            wd = wd * scale[:, None]
        if isinstance(self.operator, PoissonOperator):
            # G[e,q] = wd * invJ^T invJ in *reference* indices
            # (symmetric; stored dense 3x3 for kernel simplicity —
            # still ~nd²/(9 q) smaller than Ke)
            G = np.einsum(
                "eqdk,eqdl,eq->eqkl", invJ, invJ, wd, optimize=True
            )
            return G, None
        return invJ, wd

    def _refresh_elements(self, pos) -> None:
        """Recompute the stored geometric factors of the updated rows
        only — the partial-assembly analogue of HYMV's subset ``Ke``
        recomputation."""
        with self.comm.compute("update.geom_factors"):
            scale = (
                None if self._scale_perm is None else self._scale_perm[pos]
            )
            fa, fb = self._geom_factors(self._coords_perm[pos], scale)
            if isinstance(self.operator, PoissonOperator):
                self._G[pos] = fa
            else:
                self._invJ[pos] = fa
                self._wd[pos] = fb
        self.comm.obs.incr("update.ke_recomputed", pos.size)

    # ------------------------------------------------------------------

    def _emv_sweep(self, uf, vf, sl) -> None:
        idx = self.e2l_dofs[sl]
        if idx.shape[0] == 0:
            return
        if self._ws is not None:
            from repro.core.kernels import gather_element_vectors

            ue = gather_element_vectors(uf, idx, out=self._ws.ue[: idx.shape[0]])
        else:
            ue = uf[idx]  # (E, nd)
        if isinstance(self.operator, PoissonOperator):
            ve = self._apply_poisson(sl, ue)
        else:
            ve = self._apply_elasticity(sl, ue)
        seg = self._segment_for(sl) if self._ws is not None else None
        if seg is not None:
            seg.add_into(vf, ve)
        else:
            from repro.util.arrays import scatter_add

            scatter_add(vf, idx, ve)
        if self.modeled_rate_gflops:
            flops = self.flops_per_spmv() / max(self.n_local_elements, 1)
            self.comm.advance(
                idx.shape[0] * flops / (self.modeled_rate_gflops * 1e9),
                "spmv.emv.modeled",
            )

    def _emv_sweep_multi(self, UF, VF, sl) -> None:
        """GEMM-mode sweep: the quadrature contractions carry the column
        axis ``k`` through every einsum, so the stored geometric factors
        are streamed once for all k columns (the partial-assembly
        analogue of the BLAS3 elemental GEMM)."""
        idx = self.e2l_dofs[sl]
        if idx.shape[0] == 0:
            return
        k = UF.shape[1]
        if self._ws is not None:
            from repro.core.kernels import gather_element_vectors

            ue, _ = self._ws.multi_views(idx.shape[0], k)
            gather_element_vectors(UF, idx, out=ue)
        else:
            ue = UF[idx]  # (E, nd, k)
        if isinstance(self.operator, PoissonOperator):
            ve = self._apply_poisson_multi(sl, ue)
        else:
            ve = self._apply_elasticity_multi(sl, ue)
        seg = self._segment_for(sl) if self._ws is not None else None
        if seg is not None:
            seg.add_into_multi(VF, ve)
        else:
            from repro.core.kernels import accumulate_element_vectors

            accumulate_element_vectors(VF, idx, ve)
        if self.modeled_rate_gflops:
            flops = self.flops_per_spmv() / max(self.n_local_elements, 1)
            self.comm.advance(
                idx.shape[0] * k * flops / (self.modeled_rate_gflops * 1e9),
                "spmv.emv.modeled",
            )

    def _apply_poisson(self, sl, ue):
        # grad in reference space: g[e,q,d] = dN[q,n,d] u[e,n]
        g = np.einsum("qnd,en->eqd", self._dN, ue, optimize=True)
        # contract with geometric factors: f[e,q,k] = G[e,q,k,l] g[e,q,l]
        f = np.einsum("eqkl,eql->eqk", self._G[sl], g, optimize=True)
        # back to nodes: v[e,n] = dN[q,n,k] f[e,q,k]
        return np.einsum("qnk,eqk->en", self._dN, f, optimize=True)

    def _apply_elasticity(self, sl, ue):
        op: ElasticityOperator = self.operator
        lam, mu = op.material.lam, op.material.mu
        invJ = self._invJ[sl]
        wd = self._wd[sl]
        E, nd = ue.shape
        n = self.etype.n_nodes
        uen = ue.reshape(E, n, 3)
        # physical gradient of the displacement field:
        # H[e,q,i,k] = d u_i / d x_k
        gref = np.einsum("qnd,eni->eqid", self._dN, uen, optimize=True)
        H = np.einsum("eqid,eqkd->eqik", gref, invJ, optimize=True)
        # stress(ish) tensor: sigma = lam tr(eps) I + 2 mu eps
        tr = np.einsum("eqii->eq", H)
        sym = 0.5 * (H + np.swapaxes(H, 2, 3))
        sigma = 2.0 * mu * sym
        i3 = np.arange(3)
        sigma[:, :, i3, i3] += lam * tr[:, :, None]
        sigma *= wd[:, :, None, None]
        # v[e,n,i] = dN_phys[e,q,n,k] sigma[e,q,i,k]
        dN_phys = np.einsum("qnd,eqkd->eqnk", self._dN, invJ, optimize=True)
        ve = np.einsum("eqnk,eqik->eni", dN_phys, sigma, optimize=True)
        return ve.reshape(E, nd)

    def _apply_poisson_multi(self, sl, ue):
        # the single-RHS contractions with a trailing column axis c=k
        g = np.einsum("qnd,enc->eqdc", self._dN, ue, optimize=True)
        f = np.einsum("eqkl,eqlc->eqkc", self._G[sl], g, optimize=True)
        return np.einsum("qnk,eqkc->enc", self._dN, f, optimize=True)

    def _apply_elasticity_multi(self, sl, ue):
        op: ElasticityOperator = self.operator
        lam, mu = op.material.lam, op.material.mu
        invJ = self._invJ[sl]
        wd = self._wd[sl]
        E, nd, k = ue.shape
        n = self.etype.n_nodes
        uen = ue.reshape(E, n, 3, k)
        gref = np.einsum("qnd,enic->eqidc", self._dN, uen, optimize=True)
        H = np.einsum("eqidc,eqkd->eqikc", gref, invJ, optimize=True)
        tr = np.einsum("eqiic->eqc", H)
        sym = 0.5 * (H + np.swapaxes(H, 2, 3))
        sigma = 2.0 * mu * sym
        i3 = np.arange(3)
        sigma[:, :, i3, i3, :] += lam * tr[:, :, None, :]
        sigma *= wd[:, :, None, None, None]
        dN_phys = np.einsum("qnd,eqkd->eqnk", self._dN, invJ, optimize=True)
        ve = np.einsum("eqnk,eqikc->enic", dN_phys, sigma, optimize=True)
        return ve.reshape(E, nd, k)

    # ------------------------------------------------------------------
    # preconditioner support: build Ke on demand (setup-time only)
    # ------------------------------------------------------------------

    def _element_matrices(self, sl: slice) -> np.ndarray:
        ke = self.operator.element_matrices(
            self._coords_perm[sl], self.etype
        )
        if self._scale_perm is not None:
            ke *= self._scale_perm[sl][:, None, None]
        return ke

    # ------------------------------------------------------------------

    def flops_per_spmv(self) -> float:
        q = (self.operator.quad or quadrature_for(self.etype)).n_points
        n = self.etype.n_nodes
        if isinstance(self.operator, PoissonOperator):
            per_elem = 2.0 * q * n * 3 * 2 + q * 15.0
        else:
            per_elem = 2.0 * q * n * 9 * 2 + q * 80.0
        return self.n_local_elements * per_elem

    def stored_bytes(self) -> int:
        if isinstance(self.operator, PoissonOperator):
            return self._G.nbytes
        return self._invJ.nbytes + self._wd.nbytes
