"""Matrix-assembled baseline — the PETSc ``MatMult`` substitute.

Setup performs *real parallel assembly*: each rank computes its element
matrices, keeps the triplets whose rows it owns, and ships off-rank row
contributions to their owners (the communication that makes assembled
setup expensive at scale — paper Figs. 4, 5, 7).  The assembled matrix is
row-distributed CSR, split PETSc-style into a diagonal block (owned
columns) and off-diagonal blocks (halo columns) so the halo exchange
overlaps the diagonal-block product.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.da import DistributedArray, DistributedMultiVector
from repro.core.kernels import resolve_mode
from repro.core.maps import NodeMaps
from repro.core.scatter import (
    build_comm_maps,
    scatter_begin,
    scatter_end,
)
from repro.fem.operators import Operator
from repro.partition.interface import LocalMesh
from repro.simmpi.communicator import Communicator
from repro.util.arrays import INDEX_DTYPE, as_index

__all__ = ["AssembledOperator"]


class AssembledOperator:
    """Distributed CSR operator with PETSc-like assembly and SPMV."""

    def __init__(
        self,
        comm: Communicator,
        lmesh: LocalMesh,
        operator: Operator,
        ranges: np.ndarray | None = None,
        elem_scale: np.ndarray | None = None,
    ):
        self.comm = comm
        self.lmesh = lmesh
        self.operator = operator
        self.ndpn = operator.ndpn
        self.etype = lmesh.etype

        if ranges is None:
            ranges = np.asarray(
                comm.allgather((lmesh.n_begin, lmesh.n_end)), dtype=INDEX_DTYPE
            )
        self._ranges = ranges
        # element inputs the assembly is a pure function of; coords start
        # as a reference to the local mesh and go copy-on-write on the
        # first coordinate update
        self._coords = lmesh.coords
        self._elem_scale: np.ndarray | None = None
        if elem_scale is not None:
            scale = np.asarray(elem_scale, dtype=np.float64)
            if scale.shape != (lmesh.n_local_elements,):
                raise ValueError(
                    f"elem_scale shape {scale.shape} != "
                    f"({lmesh.n_local_elements},) local elements"
                )
            self._elem_scale = np.ascontiguousarray(scale)
        self.spmv_count = 0
        # mode="auto" crossover (None -> kernels.DEFAULT_K_MIN); the
        # gemm path's work multivectors are cached per column count
        self.gemm_k_min: int | None = None
        self._assemble("setup")

    def _assemble(self, prefix: str) -> None:
        """Full parallel assembly from the current coords/scale state
        (collective).  ``prefix`` labels the timing phases: ``setup.*``
        at construction, ``update.*`` when re-run by
        :meth:`update_elements` — the assembled baseline's answer to an
        adaptive update *is* a full reassembly, which is exactly the
        cost structure the adaptive operators avoid."""
        comm, lmesh, ndpn = self.comm, self.lmesh, self.ndpn
        ends = self._ranges[:, 1]

        with comm.compute(f"{prefix}.emat_compute"):
            ke = self.operator.element_matrices(self._coords, lmesh.etype)
            if self._elem_scale is not None:
                ke = ke * self._elem_scale[:, None, None]

        with comm.compute(f"{prefix}.assembly_local"):
            n = self.etype.n_nodes
            nd = n * ndpn
            gdofs = (
                lmesh.e2g[:, :, None] * ndpn
                + np.arange(ndpn, dtype=INDEX_DTYPE)
            ).reshape(lmesh.n_local_elements, nd)
            rows = np.repeat(gdofs, nd, axis=1).reshape(-1)
            cols = np.tile(gdofs, (1, nd)).reshape(-1)
            vals = ke.reshape(-1)
            row_nodes = rows // ndpn
            owners = np.searchsorted(ends, row_nodes, side="right")
            mine = owners == comm.rank
            per_dest: list = [None] * comm.size
            for r in np.unique(owners):
                if r == comm.rank:
                    continue
                sel = owners == r
                per_dest[int(r)] = (rows[sel], cols[sel], vals[sel])

        # the expensive part: off-rank row contributions to their owners
        t0 = comm.vtime
        received = comm.alltoall(per_dest)
        comm.timing.add(f"{prefix}.comm", comm.vtime - t0)

        with comm.compute(f"{prefix}.assembly_local"):
            rparts = [(rows[mine], cols[mine], vals[mine])] + [
                t for t in received if t is not None
            ]
            rows = np.concatenate([t[0] for t in rparts])
            cols = np.concatenate([t[1] for t in rparts])
            vals = np.concatenate([t[2] for t in rparts])

            # matrix halo: column nodes outside the owned range
            col_nodes = cols // ndpn
            outside = (col_nodes < lmesh.n_begin) | (col_nodes >= lmesh.n_end)
            halo_nodes = np.unique(col_nodes[outside])
            self.maps = NodeMaps(
                n_begin=lmesh.n_begin,
                n_end=lmesh.n_end,
                ghost_pre=halo_nodes[halo_nodes < lmesh.n_begin],
                ghost_post=halo_nodes[halo_nodes >= lmesh.n_end],
                e2l=np.empty((0, 1), dtype=INDEX_DTYPE),
                independent=np.empty(0, dtype=INDEX_DTYPE),
                dependent=np.empty(0, dtype=INDEX_DTYPE),
            )
            lrows = rows - lmesh.n_begin * ndpn
            lcols = self.maps.global_to_local(col_nodes) * ndpn + cols % ndpn
            n_owned_dofs = (lmesh.n_end - lmesh.n_begin) * ndpn
            n_total_dofs = self.maps.n_total * ndpn
            A_ext = sp.coo_matrix(
                (vals, (lrows, lcols)), shape=(n_owned_dofs, n_total_dofs)
            ).tocsr()
            lo = self.maps.n_pre * ndpn
            hi = lo + n_owned_dofs
            self.A_diag = A_ext[:, lo:hi].tocsr()
            self.A_pre = A_ext[:, :lo].tocsr()
            self.A_post = A_ext[:, hi:].tocsr()
            self.nnz = A_ext.nnz

        t0 = comm.vtime
        self.cmaps = build_comm_maps(comm, self.maps, ranges=self._ranges)
        comm.timing.add(f"{prefix}.comm_maps", comm.vtime - t0)

        self.n_dofs_owned = n_owned_dofs
        self._work_multi: dict[int, DistributedMultiVector] = {}
        # the node maps may change across a reassembly (halo columns
        # follow the values' sparsity), so cached work vectors must not
        # survive it
        if hasattr(self, "_work_u"):
            del self._work_u

    # ------------------------------------------------------------------

    def update_elements(
        self,
        local_elems: np.ndarray,
        coords: np.ndarray | None = None,
        stiffness_scale: float | np.ndarray | None = None,
    ) -> None:
        """Patch element inputs, then reassemble the whole distributed
        CSR (timed as ``update.*``).  Collective: every rank must call,
        even with an empty subset — there is no local-only update for an
        assembled matrix, which is the baseline cost the harness measures
        the adaptive operators against.  Signature and absolute-scale
        semantics match
        :meth:`repro.core.hymv.EbeOperatorBase.update_elements`."""
        local_elems = as_index(local_elems)
        if local_elems.size:
            lo = int(local_elems.min())
            hi = int(local_elems.max())
            n_local = self.lmesh.n_local_elements
            if lo < 0 or hi >= n_local:
                raise IndexError(
                    f"update_elements: local element ids out of range "
                    f"[{lo}, {hi}] vs {n_local} local elements"
                )
            if coords is not None:
                coords = np.asarray(coords, dtype=np.float64)
                want = (local_elems.size, self.etype.n_nodes, 3)
                if coords.shape != want:
                    raise ValueError(
                        f"coords shape {coords.shape} != {want} for "
                        f"{local_elems.size} updated elements"
                    )
                if self._coords is self.lmesh.coords:
                    self._coords = self.lmesh.coords.copy()
                self._coords[local_elems] = coords
            if stiffness_scale is not None:
                scale = np.broadcast_to(
                    np.asarray(stiffness_scale, dtype=np.float64),
                    (local_elems.size,),
                )
                if self._elem_scale is None:
                    self._elem_scale = np.ones(self.lmesh.n_local_elements)
                self._elem_scale[local_elems] = scale
            self.comm.obs.incr("update.elements", local_elems.size)
        self._assemble("update")

    # ------------------------------------------------------------------

    def new_array(self) -> DistributedArray:
        return DistributedArray(self.maps, self.ndpn)

    def apply_owned(self, x: np.ndarray, copy: bool = True) -> np.ndarray:
        """``y = A x`` on owned dofs; halo exchange overlapped with the
        diagonal-block product (PETSc's MatMult structure).

        The CSR product allocates a fresh result either way, so the
        ``copy`` flag (kept for signature parity with
        :meth:`repro.core.hymv.EbeOperatorBase.apply_owned`) is a
        no-op: the returned array is always caller-owned."""
        comm = self.comm
        t0 = comm.vtime
        if not hasattr(self, "_work_u"):
            self._work_u = self.new_array()
        u = self._work_u
        u.set_owned(x)
        reqs = scatter_begin(comm, u.data, self.cmaps)
        with comm.compute("spmv.csr.diag"):
            y = self.A_diag @ u.owned_flat
        tw = comm.vtime
        scatter_end(comm, u.data, self.cmaps, reqs)
        comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
        with comm.compute("spmv.csr.halo"):
            npre = self.maps.n_pre * self.ndpn
            if self.A_pre.shape[1]:
                y += self.A_pre @ u.data.reshape(-1)[:npre]
            if self.A_post.shape[1]:
                off = npre + self.n_dofs_owned
                y += self.A_post @ u.data.reshape(-1)[off:]
        comm.obs.incr("spmv.flops", 2.0 * self.nnz)
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += 1
        return y

    def apply_owned_multi(
        self, X: np.ndarray, copy: bool = True, mode: str = "auto"
    ) -> np.ndarray:
        """Multi-RHS application.

        The resolved ``"oracle"`` mode runs one :meth:`apply_owned` per
        column — each column pays its own message round, and the result
        is trivially bitwise-per-column (signature parity with
        :meth:`repro.core.hymv.EbeOperatorBase.apply_owned_multi`).

        The resolved ``"gemm"`` mode exchanges ghosts for all k columns
        in ONE packed ``ndpn*k``-wide scatter and computes each CSR block
        with a single SpMM over the ``(·, k)`` dof matrix — the BLAS3
        analogue for the assembled baseline (scipy's CSR·dense kernel
        streams the matrix once for all columns).  SpMM accumulates
        across the three blocks in the same block order as the 1-D path
        and each CSR row in index order, so it matches the oracle to
        rounding; it is not bitwise (the halo blocks' partial sums add
        to the diag product in a different grouping).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected (n, k) multivector, got shape {X.shape}")
        k = X.shape[1]
        if resolve_mode(mode, k, self.gemm_k_min) != "gemm":
            Y = np.empty_like(X)
            for j in range(k):
                Y[:, j] = self.apply_owned(
                    np.ascontiguousarray(X[:, j]), copy=False
                )
            return Y
        comm = self.comm
        t0 = comm.vtime
        U = self._work_multi.get(k)
        if U is None:
            U = self._work_multi[k] = DistributedMultiVector(
                self.maps, self.ndpn, k
            )
        U.set_owned(X)
        D = U.dof_view  # (n_total_dofs, k)
        npre = self.maps.n_pre * self.ndpn
        off = npre + self.n_dofs_owned
        reqs = scatter_begin(comm, U.node_view, self.cmaps)
        with comm.compute("spmv.csr.diag"):
            Y = self.A_diag @ D[npre:off]
        tw = comm.vtime
        scatter_end(comm, U.node_view, self.cmaps, reqs)
        comm.timing.add("spmv.scatter.wait", comm.vtime - tw)
        with comm.compute("spmv.csr.halo"):
            if self.A_pre.shape[1]:
                Y += self.A_pre @ D[:npre]
            if self.A_post.shape[1]:
                Y += self.A_post @ D[off:]
        comm.obs.incr("spmv.flops", 2.0 * self.nnz * k)
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += k
        return Y

    # ------------------------------------------------------------------
    # preconditioner support / accounting
    # ------------------------------------------------------------------

    def diagonal_owned(self) -> np.ndarray:
        return self.A_diag.diagonal().copy()

    def owned_block_csr(self) -> sp.csr_matrix:
        """The exact (owned x owned) diagonal block, remote contributions
        included (this is what PETSc's block Jacobi uses)."""
        return self.A_diag

    def flops_per_spmv(self) -> float:
        """2 flops per stored nonzero."""
        return 2.0 * self.nnz

    def stored_bytes(self) -> int:
        """CSR storage (values + column indices + row pointers)."""
        total = 0
        for A in (self.A_diag, self.A_pre, self.A_post):
            total += A.data.nbytes + A.indices.nbytes + A.indptr.nbytes
        return total
