"""Serial reference: global CSR assembly on the unpartitioned mesh.

Used by the test suite as ground truth for every distributed SPMV and
solve, and by the examples for small-problem verification.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.operators import Operator
from repro.mesh.mesh import Mesh
from repro.util.arrays import INDEX_DTYPE, scatter_add

__all__ = ["SerialReference", "assemble_global_csr"]


def assemble_global_csr(mesh: Mesh, operator: Operator) -> sp.csr_matrix:
    """Assemble the global sparse matrix of ``operator`` on ``mesh``."""
    ke = operator.element_matrices(mesh.coords[mesh.conn], mesh.etype)
    ndpn = operator.ndpn
    n = mesh.etype.n_nodes
    dofmap = (
        mesh.conn[:, :, None] * ndpn + np.arange(ndpn, dtype=INDEX_DTYPE)
    ).reshape(mesh.n_elements, n * ndpn)
    nd = n * ndpn
    rows = np.repeat(dofmap, nd, axis=1).reshape(-1)
    cols = np.tile(dofmap, (1, nd)).reshape(-1)
    shape = (mesh.n_nodes * ndpn,) * 2
    return sp.coo_matrix((ke.reshape(-1), (rows, cols)), shape=shape).tocsr()


class SerialReference:
    """Global matrix + helpers for verifying distributed results."""

    def __init__(self, mesh: Mesh, operator: Operator):
        self.mesh = mesh
        self.operator = operator
        self.ndpn = operator.ndpn
        self.A = assemble_global_csr(mesh, operator)

    @property
    def n_dofs(self) -> int:
        return self.A.shape[0]

    def spmv(self, u: np.ndarray) -> np.ndarray:
        return self.A @ u

    def rhs_from_elemental(self, fe: np.ndarray) -> np.ndarray:
        """Accumulate elemental load vectors ``(E, n, ndpn)`` globally."""
        f = np.zeros(self.n_dofs)
        dofmap = (
            self.mesh.conn[:, :, None] * self.ndpn
            + np.arange(self.ndpn, dtype=INDEX_DTYPE)
        )
        scatter_add(f, dofmap, fe)
        return f

    def solve_dirichlet(
        self, f: np.ndarray, constrained: np.ndarray, u0: np.ndarray
    ) -> np.ndarray:
        """Direct solve with Dirichlet values ``u0`` on ``constrained``."""
        import scipy.sparse.linalg as spla

        free = np.setdiff1d(
            np.arange(self.n_dofs, dtype=INDEX_DTYPE), constrained
        )
        u = u0.copy()
        rhs = f - self.A @ u0
        u[free] = u0[free] + spla.spsolve(
            self.A[np.ix_(free, free)].tocsc(), rhs[free]
        )
        return u
