"""Matrix-free SPMV (paper Algorithm 4).

Identical element-by-element structure, maps and kernels as HYMV — the
*only* difference is that the element matrices are recomputed from nodal
coordinates and operator definition inside every SPMV instead of being
loaded from memory.  That difference is the whole story of Figs. 4 and 5:
no setup cost, but each product pays the full elemental-assembly flops.
"""

from __future__ import annotations

import numpy as np

from repro.core.hymv import EbeOperatorBase

__all__ = ["MatrixFreeOperator"]


class MatrixFreeOperator(EbeOperatorBase):
    """Algorithm 4: recompute ``Ke`` in every elemental sweep."""

    def _element_matrices(self, sl: slice) -> np.ndarray:
        ke = self.operator.element_matrices(self._coords_perm[sl], self.etype)
        if self._scale_perm is not None:
            # recompute-then-scale per product: an adaptive update only
            # touches the persisted coords/scale arrays (the base-class
            # no-op refresh), and the next sweep picks them up here
            ke *= self._scale_perm[sl][:, None, None]
        self.comm.obs.incr("spmv.ke_recomputed", ke.shape[0])
        self.comm.obs.incr(
            "spmv.ke_flops", ke.shape[0] * self.operator.ke_flops(self.etype)
        )
        return ke

    def flops_per_spmv(self) -> float:
        """EMV flops plus the per-product element-matrix recomputation."""
        e = self.n_local_elements
        return e * (
            self.operator.emv_flops(self.etype)
            + self.operator.ke_flops(self.etype)
        )
