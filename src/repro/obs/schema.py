"""Bench-document schema: versioning, machine fingerprint, validation.

``BENCH_smoke.json`` is the machine-readable artifact the CI perf gate
exchanges between runs, so its shape is versioned and validated on both
the write path (:mod:`repro.obs.bench`) and the read path
(:mod:`repro.obs.compare`).  The schema is deliberately flat: a list of
``(case, method)`` results, each with per-phase statistics over repeats
and summed counters.
"""

from __future__ import annotations

import os
import platform
import socket
import time
from typing import Any

__all__ = [
    "ADAPT_SCHEMA",
    "BENCH_SCHEMA",
    "CHAOS_SCHEMA",
    "SERVE_SCHEMA",
    "SERVE_SCHEMA_V1",
    "SHARD_SCHEMA",
    "TUNE_CONFIG_SCHEMA",
    "TUNE_SCHEMA",
    "SchemaError",
    "machine_fingerprint",
    "new_adapt_doc",
    "new_bench_doc",
    "new_chaos_doc",
    "new_serve_doc",
    "new_shard_doc",
    "new_tune_doc",
    "validate_adapt_doc",
    "validate_bench_doc",
    "validate_chaos_doc",
    "validate_serve_doc",
    "validate_shard_doc",
    "validate_tune_doc",
]

#: Schema identifier; bump the trailing integer on breaking changes.
BENCH_SCHEMA = "repro.bench/1"

#: Chaos-report schema (``CHAOS_report.json`` written by
#: ``python -m repro.harness chaos``).
CHAOS_SCHEMA = "repro.chaos/1"

#: Serve-report schema (``SERVE_report.json`` written by
#: ``python -m repro.harness serve``).  v2 adds the per-scenario
#: ``modes`` histogram (execution mode each dispatched batch ran under:
#: oracle / gemm / degraded).  v1 documents — identical minus that key —
#: are still accepted on the read path for compatibility with reports
#: produced before the BLAS3 fast path landed.
SERVE_SCHEMA = "repro.serve/2"
SERVE_SCHEMA_V1 = "repro.serve/1"

#: Shard-report schema (``SHARD_report.json`` written by
#: ``python -m repro.harness shard``): the sharded-tier counterpart of
#: the serve report, adding per-shard utilization, replication state,
#: per-tenant stats and failover counts.
SHARD_SCHEMA = "repro.shard/1"

#: Tune-report schema (``TUNE_report.json`` written by
#: ``python -m repro.harness tune``): the autotuner's full record —
#: declarative search space, seeded search trajectory, Pareto set over
#: (throughput, p99, memory), calibrated machine constants, and the
#: winning config for the machine profile.  Bit-reproducible given the
#: seed and the calibration inputs (modulo ``created_unix``/``machine``).
TUNE_SCHEMA = "repro.tune/1"

#: Tuned-config artifact schema (``tuned_config.json``): the small
#: loadable distillation of a tune run — one flat knob→value config plus
#: the calibrated constants — consumed by ``SolverService`` and the
#: benches through :func:`repro.tune.calibration.load_tuned_config`.
TUNE_CONFIG_SCHEMA = "repro.tune-config/1"

#: Adapt-report schema (``ADAPT_report.json`` written by
#: ``python -m repro.harness adapt``): incremental-update scenarios —
#: per-scenario delta accounting (patches vs rebuilds), differential
#: verification tallies (delta-updated vs freshly built, bitwise) and the
#: modeled cost comparison delta / full rebuild / CSR reassembly.
ADAPT_SCHEMA = "repro.adapt/1"

_PHASE_STAT_KEYS = ("median", "min", "max", "repeats")
_RESULT_REQUIRED = ("case", "method", "n_parts", "n_dofs", "phases", "counters")


class SchemaError(ValueError):
    """A bench document does not conform to :data:`BENCH_SCHEMA`."""


def machine_fingerprint() -> dict[str, Any]:
    """Identify the machine a bench document was produced on."""
    import numpy
    import scipy

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def new_bench_doc(
    suite: str,
    repeats: int,
    config: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """An empty, schema-conforming bench document."""
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "repeats": int(repeats),
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "results": [],
    }


def validate_bench_doc(doc: Any) -> dict[str, Any]:
    """Validate a parsed bench document; returns it on success.

    Raises :class:`SchemaError` with a pin-pointed message otherwise.
    """
    if not isinstance(doc, dict):
        raise SchemaError(f"bench doc must be an object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise SchemaError(
            f"unsupported schema {schema!r} (expected {BENCH_SCHEMA!r})"
        )
    for key in ("suite", "repeats", "machine", "results"):
        if key not in doc:
            raise SchemaError(f"bench doc missing key {key!r}")
    if not isinstance(doc["results"], list):
        raise SchemaError("'results' must be a list")
    for i, res in enumerate(doc["results"]):
        where = f"results[{i}]"
        if not isinstance(res, dict):
            raise SchemaError(f"{where} must be an object")
        for key in _RESULT_REQUIRED:
            if key not in res:
                raise SchemaError(f"{where} missing key {key!r}")
        if not isinstance(res["phases"], dict):
            raise SchemaError(f"{where}.phases must be an object")
        for label, stats in res["phases"].items():
            if not isinstance(stats, dict):
                raise SchemaError(f"{where}.phases[{label!r}] must be an object")
            for key in _PHASE_STAT_KEYS:
                if key not in stats:
                    raise SchemaError(
                        f"{where}.phases[{label!r}] missing key {key!r}"
                    )
        if not isinstance(res["counters"], dict):
            raise SchemaError(f"{where}.counters must be an object")
    return doc


def result_key(res: dict[str, Any]) -> str:
    """Stable identity of one result row: ``case/method``."""
    return f"{res['case']}/{res['method']}"


# ----------------------------------------------------------------------------
# chaos report
# ----------------------------------------------------------------------------

_SCENARIO_REQUIRED = (
    "scenario", "ok", "failures", "plan", "counters", "iterations",
    "restarts", "rel_err",
)


def new_chaos_doc(config: dict[str, Any] | None = None) -> dict[str, Any]:
    """An empty, schema-conforming chaos report."""
    return {
        "schema": CHAOS_SCHEMA,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "scenarios": [],
    }


def validate_chaos_doc(doc: Any) -> dict[str, Any]:
    """Validate a parsed chaos report; returns it on success."""
    if not isinstance(doc, dict):
        raise SchemaError(f"chaos doc must be an object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema != CHAOS_SCHEMA:
        raise SchemaError(
            f"unsupported schema {schema!r} (expected {CHAOS_SCHEMA!r})"
        )
    for key in ("machine", "config", "scenarios"):
        if key not in doc:
            raise SchemaError(f"chaos doc missing key {key!r}")
    if not isinstance(doc["scenarios"], list):
        raise SchemaError("'scenarios' must be a list")
    for i, sc in enumerate(doc["scenarios"]):
        where = f"scenarios[{i}]"
        if not isinstance(sc, dict):
            raise SchemaError(f"{where} must be an object")
        for key in _SCENARIO_REQUIRED:
            if key not in sc:
                raise SchemaError(f"{where} missing key {key!r}")
        if not isinstance(sc["counters"], dict):
            raise SchemaError(f"{where}.counters must be an object")
        if not isinstance(sc["failures"], list):
            raise SchemaError(f"{where}.failures must be a list")
    return doc


# ----------------------------------------------------------------------------
# serve report
# ----------------------------------------------------------------------------

_SERVE_SCENARIO_REQUIRED = (
    "scenario", "workload", "requests", "latency_s", "throughput_rps",
    "makespan_s", "batch_histogram", "cache", "counters",
)
_SERVE_REQUEST_KEYS = (
    "submitted", "completed", "rejected", "shed_deadline", "cancelled",
    "failed", "wrong_answers",
)
_SERVE_LATENCY_KEYS = ("p50", "p95", "p99", "mean", "min", "max", "n")


def new_serve_doc(config: dict[str, Any] | None = None) -> dict[str, Any]:
    """An empty, schema-conforming serve report."""
    return {
        "schema": SERVE_SCHEMA,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "scenarios": [],
    }


def validate_serve_doc(doc: Any) -> dict[str, Any]:
    """Validate a parsed serve report; returns it on success."""
    if not isinstance(doc, dict):
        raise SchemaError(f"serve doc must be an object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema not in (SERVE_SCHEMA, SERVE_SCHEMA_V1):
        raise SchemaError(
            f"unsupported schema {schema!r} (expected {SERVE_SCHEMA!r} "
            f"or the legacy {SERVE_SCHEMA_V1!r})"
        )
    required = _SERVE_SCENARIO_REQUIRED
    if schema == SERVE_SCHEMA:  # v2: execution-mode histogram is mandatory
        required = required + ("modes",)
    for key in ("machine", "config", "scenarios"):
        if key not in doc:
            raise SchemaError(f"serve doc missing key {key!r}")
    if not isinstance(doc["scenarios"], list):
        raise SchemaError("'scenarios' must be a list")
    for i, sc in enumerate(doc["scenarios"]):
        where = f"scenarios[{i}]"
        if not isinstance(sc, dict):
            raise SchemaError(f"{where} must be an object")
        for key in required:
            if key not in sc:
                raise SchemaError(f"{where} missing key {key!r}")
        if schema == SERVE_SCHEMA and not isinstance(sc["modes"], dict):
            raise SchemaError(f"{where}.modes must be an object")
        for key in _SERVE_REQUEST_KEYS:
            if key not in sc["requests"]:
                raise SchemaError(f"{where}.requests missing key {key!r}")
        if not isinstance(sc["latency_s"], dict):
            raise SchemaError(f"{where}.latency_s must be an object")
        if sc["requests"]["completed"] and "all" not in sc["latency_s"]:
            raise SchemaError(f"{where}.latency_s missing the 'all' summary")
        for kind, summ in sc["latency_s"].items():
            for key in _SERVE_LATENCY_KEYS:
                if key not in summ:
                    raise SchemaError(
                        f"{where}.latency_s[{kind!r}] missing key {key!r}"
                    )
        if not isinstance(sc["batch_histogram"], dict):
            raise SchemaError(f"{where}.batch_histogram must be an object")
        for key in ("hits", "misses", "evictions", "hit_rate"):
            if key not in sc["cache"]:
                raise SchemaError(f"{where}.cache missing key {key!r}")
        if not isinstance(sc["counters"], dict):
            raise SchemaError(f"{where}.counters must be an object")
    return doc


# ----------------------------------------------------------------------------
# shard report
# ----------------------------------------------------------------------------

_SHARD_SCENARIO_REQUIRED = (
    "scenario", "workload", "n_shards", "requests", "latency_s",
    "throughput_rps", "makespan_s", "shards", "utilization", "replication",
    "tenants", "batch_histogram", "modes", "counters",
)
_SHARD_REQUEST_KEYS = (
    "submitted", "completed", "rejected", "shed_tenant", "shed_deadline",
    "spilled", "failed", "failovers", "wrong_answers",
)
_SHARD_UTIL_KEYS = ("mean", "min", "max", "peak_to_mean")
_SHARD_REPL_KEYS = ("keys_seen", "replicated_keys", "replication_factor")
_SHARD_PER_SHARD_KEYS = ("utilization", "busy_s", "dispatches", "alive", "cache")


def new_shard_doc(config: dict[str, Any] | None = None) -> dict[str, Any]:
    """An empty, schema-conforming shard report."""
    return {
        "schema": SHARD_SCHEMA,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "scenarios": [],
    }


def validate_shard_doc(doc: Any) -> dict[str, Any]:
    """Validate a parsed shard report; returns it on success."""
    if not isinstance(doc, dict):
        raise SchemaError(f"shard doc must be an object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema != SHARD_SCHEMA:
        raise SchemaError(
            f"unsupported schema {schema!r} (expected {SHARD_SCHEMA!r})"
        )
    for key in ("machine", "config", "scenarios"):
        if key not in doc:
            raise SchemaError(f"shard doc missing key {key!r}")
    if not isinstance(doc["scenarios"], list):
        raise SchemaError("'scenarios' must be a list")
    for i, sc in enumerate(doc["scenarios"]):
        where = f"scenarios[{i}]"
        if not isinstance(sc, dict):
            raise SchemaError(f"{where} must be an object")
        for key in _SHARD_SCENARIO_REQUIRED:
            if key not in sc:
                raise SchemaError(f"{where} missing key {key!r}")
        for key in _SHARD_REQUEST_KEYS:
            if key not in sc["requests"]:
                raise SchemaError(f"{where}.requests missing key {key!r}")
        if not isinstance(sc["latency_s"], dict):
            raise SchemaError(f"{where}.latency_s must be an object")
        if sc["requests"]["completed"] and "all" not in sc["latency_s"]:
            raise SchemaError(f"{where}.latency_s missing the 'all' summary")
        for kind, summ in sc["latency_s"].items():
            for key in _SERVE_LATENCY_KEYS:
                if key not in summ:
                    raise SchemaError(
                        f"{where}.latency_s[{kind!r}] missing key {key!r}"
                    )
        if not isinstance(sc["shards"], dict) or not sc["shards"]:
            raise SchemaError(f"{where}.shards must be a non-empty object")
        for sid, ssum in sc["shards"].items():
            for key in _SHARD_PER_SHARD_KEYS:
                if key not in ssum:
                    raise SchemaError(
                        f"{where}.shards[{sid!r}] missing key {key!r}"
                    )
            for key in ("hits", "misses", "evictions", "hit_rate"):
                if key not in ssum["cache"]:
                    raise SchemaError(
                        f"{where}.shards[{sid!r}].cache missing key {key!r}"
                    )
        for key in _SHARD_UTIL_KEYS:
            if key not in sc["utilization"]:
                raise SchemaError(f"{where}.utilization missing key {key!r}")
        for key in _SHARD_REPL_KEYS:
            if key not in sc["replication"]:
                raise SchemaError(f"{where}.replication missing key {key!r}")
        for label in ("tenants", "batch_histogram", "modes", "counters"):
            if not isinstance(sc[label], dict):
                raise SchemaError(f"{where}.{label} must be an object")
    return doc


# ----------------------------------------------------------------------------
# adapt report
# ----------------------------------------------------------------------------

_ADAPT_SCENARIO_REQUIRED = (
    "scenario", "method", "n_parts", "n_dofs", "steps", "deltas", "verify",
    "costs", "cache", "steps_detail", "counters",
)
_ADAPT_DELTA_KEYS = (
    "applied", "patches", "rebuilds", "touched_total", "max_fraction",
)
_ADAPT_VERIFY_KEYS = ("checks", "bitwise", "wrong_answers")
_ADAPT_COST_KEYS = (
    "delta_s", "rebuild_s", "reassembly_s", "speedup_vs_rebuild",
)


def new_adapt_doc(config: dict[str, Any] | None = None) -> dict[str, Any]:
    """An empty, schema-conforming adapt report."""
    return {
        "schema": ADAPT_SCHEMA,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "scenarios": [],
    }


def validate_adapt_doc(doc: Any) -> dict[str, Any]:
    """Validate a parsed adapt report; returns it on success."""
    if not isinstance(doc, dict):
        raise SchemaError(f"adapt doc must be an object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema != ADAPT_SCHEMA:
        raise SchemaError(
            f"unsupported schema {schema!r} (expected {ADAPT_SCHEMA!r})"
        )
    for key in ("machine", "config", "scenarios"):
        if key not in doc:
            raise SchemaError(f"adapt doc missing key {key!r}")
    if not isinstance(doc["scenarios"], list):
        raise SchemaError("'scenarios' must be a list")
    for i, sc in enumerate(doc["scenarios"]):
        where = f"scenarios[{i}]"
        if not isinstance(sc, dict):
            raise SchemaError(f"{where} must be an object")
        for key in _ADAPT_SCENARIO_REQUIRED:
            if key not in sc:
                raise SchemaError(f"{where} missing key {key!r}")
        for key in _ADAPT_DELTA_KEYS:
            if key not in sc["deltas"]:
                raise SchemaError(f"{where}.deltas missing key {key!r}")
        for key in _ADAPT_VERIFY_KEYS:
            if key not in sc["verify"]:
                raise SchemaError(f"{where}.verify missing key {key!r}")
        for key in _ADAPT_COST_KEYS:
            if key not in sc["costs"]:
                raise SchemaError(f"{where}.costs missing key {key!r}")
        for key in ("hits", "misses", "evictions", "hit_rate"):
            if key not in sc["cache"]:
                raise SchemaError(f"{where}.cache missing key {key!r}")
        if not isinstance(sc["steps_detail"], list):
            raise SchemaError(f"{where}.steps_detail must be a list")
        if not isinstance(sc["counters"], dict):
            raise SchemaError(f"{where}.counters must be an object")
    return doc


# ----------------------------------------------------------------------------
# tune report
# ----------------------------------------------------------------------------

_TUNE_REQUIRED = (
    "config", "space", "calibrated", "trajectory", "evaluations",
    "cache_hits", "pareto", "default", "winner", "machine_profile",
)
_TUNE_TRIAL_KEYS = (
    "step", "strategy", "fingerprint", "config", "objectives", "score",
    "cached",
)
_TUNE_OBJECTIVE_KEYS = ("throughput_rps", "p99_s", "mem_bytes")
_TUNE_WINNER_KEYS = ("fingerprint", "config", "objectives", "metrics", "score")


def new_tune_doc(config: dict[str, Any] | None = None) -> dict[str, Any]:
    """An empty, schema-conforming tune report."""
    return {
        "schema": TUNE_SCHEMA,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "space": [],
        "calibrated": None,
        "trajectory": [],
        "evaluations": 0,
        "cache_hits": 0,
        "pareto": [],
        "default": None,
        "winner": None,
        "machine_profile": "",
    }


def validate_tune_doc(doc: Any) -> dict[str, Any]:
    """Validate a parsed tune report; returns it on success."""
    if not isinstance(doc, dict):
        raise SchemaError(f"tune doc must be an object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema != TUNE_SCHEMA:
        raise SchemaError(
            f"unsupported schema {schema!r} (expected {TUNE_SCHEMA!r})"
        )
    for key in ("machine",) + _TUNE_REQUIRED:
        if key not in doc:
            raise SchemaError(f"tune doc missing key {key!r}")
    if not isinstance(doc["space"], list) or not doc["space"]:
        raise SchemaError("'space' must be a non-empty list of knob specs")
    for i, knob in enumerate(doc["space"]):
        for key in ("name", "values", "default"):
            if key not in knob:
                raise SchemaError(f"space[{i}] missing key {key!r}")
    if not isinstance(doc["trajectory"], list) or not doc["trajectory"]:
        raise SchemaError("'trajectory' must be a non-empty list of trials")
    for i, tr in enumerate(doc["trajectory"]):
        where = f"trajectory[{i}]"
        for key in _TUNE_TRIAL_KEYS:
            if key not in tr:
                raise SchemaError(f"{where} missing key {key!r}")
        for key in _TUNE_OBJECTIVE_KEYS:
            if key not in tr["objectives"]:
                raise SchemaError(f"{where}.objectives missing key {key!r}")
    if not isinstance(doc["pareto"], list) or not doc["pareto"]:
        raise SchemaError("'pareto' must be a non-empty list")
    for i, pt in enumerate(doc["pareto"]):
        where = f"pareto[{i}]"
        for key in ("fingerprint", "config", "objectives"):
            if key not in pt:
                raise SchemaError(f"{where} missing key {key!r}")
        for key in _TUNE_OBJECTIVE_KEYS:
            if key not in pt["objectives"]:
                raise SchemaError(f"{where}.objectives missing key {key!r}")
    for label in ("default", "winner"):
        entry = doc[label]
        if not isinstance(entry, dict):
            raise SchemaError(f"'{label}' must be an object")
        for key in _TUNE_WINNER_KEYS:
            if key not in entry:
                raise SchemaError(f"'{label}' missing key {key!r}")
    if doc["calibrated"] is not None and not isinstance(doc["calibrated"], dict):
        raise SchemaError("'calibrated' must be an object or null")
    return doc
