"""Unified observability: phase timers, counters, traces, bench gating.

* :mod:`repro.obs.instrumentation` — the per-rank/process registry.
* :mod:`repro.obs.schema` — the versioned ``BENCH_*.json`` document shape.
* :mod:`repro.obs.bench` — the CI smoke-bench suite (``python -m
  repro.harness bench``).
* :mod:`repro.obs.compare` — the perf gate (``python -m repro.obs.compare
  baseline.json candidate.json``).
"""

from repro.obs.instrumentation import (
    Instrumentation,
    PhaseStats,
    TraceEvent,
    get_instrumentation,
    merge_snapshots,
    percentile,
    percentile_summary,
    reset_instrumentation,
)
from repro.obs.schema import (
    BENCH_SCHEMA,
    CHAOS_SCHEMA,
    SERVE_SCHEMA,
    SchemaError,
    machine_fingerprint,
    validate_bench_doc,
    validate_chaos_doc,
    validate_serve_doc,
)

__all__ = [
    "Instrumentation",
    "PhaseStats",
    "TraceEvent",
    "get_instrumentation",
    "merge_snapshots",
    "percentile",
    "percentile_summary",
    "reset_instrumentation",
    "BENCH_SCHEMA",
    "CHAOS_SCHEMA",
    "SERVE_SCHEMA",
    "SchemaError",
    "machine_fingerprint",
    "validate_bench_doc",
    "validate_chaos_doc",
    "validate_serve_doc",
]
