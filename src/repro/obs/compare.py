"""The perf gate: diff two bench documents against tolerance budgets.

``python -m repro.obs.compare baseline.json candidate.json`` compares
every shared ``(case, method)`` result phase-by-phase and exits nonzero
when the candidate exceeds the baseline by more than the relative budget
(plus a small absolute floor that keeps sub-microsecond phases from
flaking).  Counter *increases* beyond their own budget also fail — more
bytes on the wire or more elements swept for the same problem is a
regression even if the modeled clock hides it.

Two absolute gates exist for *measured* suites, where raw wall-clock
medians are machine-dependent and must never be compared across hosts:

* ``--require-zero NAME@SUBSTR`` — counter ``NAME`` must be exactly 0 in
  every candidate result whose key contains ``SUBSTR`` (e.g. the
  ``spmv.bytes_alloc`` tracemalloc counter on workspace rows);
* ``--min-speedup VALUE@SUBSTR`` — every matching candidate result must
  carry ``speedup_vs_reference >= VALUE``.  The ratio is taken between
  two runs on the *same* machine inside one bench invocation, so it is
  portable even though the medians it is built from are not.

Both flags are repeatable, match on the candidate only, and fail when no
result matches (a gate that silently matches nothing is misconfigured).

Exit codes: ``0`` pass, ``1`` regression, ``2`` bad input/schema.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from dataclasses import dataclass
from typing import Any

from repro.obs.schema import SchemaError, result_key, validate_bench_doc

__all__ = ["Finding", "compare_docs", "markdown_summary", "main"]

#: phases below this baseline magnitude (seconds) are never gated —
#: relative noise on a ~0s phase is meaningless
ABS_FLOOR_S = 5e-6


@dataclass(frozen=True)
class Finding:
    """One comparison outcome (regression, improvement, or note)."""

    severity: str  # "fail" | "warn" | "info"
    where: str  # "case/method phase-or-counter"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.where}: {self.message}"


def _compare_phases(
    key: str,
    base: dict[str, Any],
    cand: dict[str, Any],
    budget: float,
    findings: list[Finding],
) -> None:
    for label, bstats in base.get("phases", {}).items():
        cstats = cand.get("phases", {}).get(label)
        b = bstats["median"]
        if cstats is None:
            # a gated phase that vanishes is a hard failure, not a warn:
            # "the hot path stopped being measured" must never read as
            # "the hot path got faster".  Sub-floor phases were never
            # gated, so their disappearance is only noteworthy.
            if b > ABS_FLOOR_S:
                findings.append(
                    Finding(
                        "fail",
                        f"{key} {label}",
                        f"gated phase missing in candidate (baseline "
                        f"{b * 1e3:.4f} ms) — the instrumented code path "
                        f"was removed or renamed; regenerate the baseline "
                        f"if intentional",
                    )
                )
            else:
                findings.append(
                    Finding(
                        "warn",
                        f"{key} {label}",
                        "sub-floor phase missing in candidate",
                    )
                )
            continue
        c = cstats["median"]
        if b <= ABS_FLOOR_S:
            continue
        rel = (c - b) / b
        if c > b * (1.0 + budget) + ABS_FLOOR_S:
            findings.append(
                Finding(
                    "fail",
                    f"{key} {label}",
                    f"{b * 1e3:.4f} ms -> {c * 1e3:.4f} ms "
                    f"(+{rel * 100:.1f}% > budget +{budget * 100:.0f}%)",
                )
            )
        elif rel < -budget:
            findings.append(
                Finding(
                    "info",
                    f"{key} {label}",
                    f"improved {b * 1e3:.4f} ms -> {c * 1e3:.4f} ms "
                    f"({rel * 100:.1f}%)",
                )
            )


def _compare_counters(
    key: str,
    base: dict[str, Any],
    cand: dict[str, Any],
    counter_budget: float,
    findings: list[Finding],
) -> None:
    for name, b in base.get("counters", {}).items():
        c = cand.get("counters", {}).get(name)
        if c is None:
            # same reasoning as gated phases: a nonzero baseline counter
            # that disappears means the work stopped being counted, which
            # must not pass silently
            if b > 0:
                findings.append(
                    Finding(
                        "fail",
                        f"{key} {name}",
                        f"gated counter missing in candidate (baseline "
                        f"{b:.6g}) — regenerate the baseline if intentional",
                    )
                )
            else:
                findings.append(
                    Finding(
                        "warn", f"{key} {name}",
                        "zero-baseline counter missing in candidate",
                    )
                )
            continue
        if b <= 0:
            continue
        rel = (c - b) / b
        if rel > counter_budget:
            findings.append(
                Finding(
                    "fail",
                    f"{key} {name}",
                    f"{b:.6g} -> {c:.6g} "
                    f"(+{rel * 100:.2f}% > budget +{counter_budget * 100:.0f}%)",
                )
            )
        elif rel < -counter_budget:
            findings.append(
                Finding("info", f"{key} {name}", f"decreased {b:.6g} -> {c:.6g}")
            )


def _check_zero_counters(
    cand_doc: dict[str, Any],
    require_zero: list[tuple[str, str]],
    findings: list[Finding],
) -> None:
    """Absolute gate: counter must be exactly 0 in matching results."""
    for name, substr in require_zero:
        matched = False
        for res in cand_doc["results"]:
            key = result_key(res)
            if substr not in key:
                continue
            matched = True
            value = res["counters"].get(name)
            if value is None:
                findings.append(
                    Finding("fail", f"{key} {name}", "required counter missing")
                )
            elif value != 0:
                findings.append(
                    Finding(
                        "fail",
                        f"{key} {name}",
                        f"must be 0, got {value:.6g}",
                    )
                )
        if not matched:
            findings.append(
                Finding(
                    "fail",
                    f"--require-zero {name}@{substr}",
                    "no candidate result matches the key substring",
                )
            )


def _check_min_speedups(
    cand_doc: dict[str, Any],
    min_speedup: list[tuple[float, str]],
    findings: list[Finding],
) -> None:
    """Absolute gate: ``speedup_vs_reference`` floor on matching results."""
    for floor, substr in min_speedup:
        matched = False
        for res in cand_doc["results"]:
            key = result_key(res)
            if substr not in key:
                continue
            matched = True
            ratio = res.get("speedup_vs_reference")
            if ratio is None:
                findings.append(
                    Finding(
                        "fail",
                        f"{key} speedup_vs_reference",
                        "result carries no speedup ratio",
                    )
                )
            elif ratio < floor:
                findings.append(
                    Finding(
                        "fail",
                        f"{key} speedup_vs_reference",
                        f"{ratio:.2f}x < required {floor:.2f}x",
                    )
                )
            else:
                findings.append(
                    Finding(
                        "info",
                        f"{key} speedup_vs_reference",
                        f"{ratio:.2f}x >= required {floor:.2f}x",
                    )
                )
        if not matched:
            findings.append(
                Finding(
                    "fail",
                    f"--min-speedup {floor}@{substr}",
                    "no candidate result matches the key substring",
                )
            )


def compare_docs(
    base_doc: dict[str, Any],
    cand_doc: dict[str, Any],
    budget: float = 0.25,
    counter_budget: float = 0.01,
    require_zero: list[tuple[str, str]] | None = None,
    min_speedup: list[tuple[float, str]] | None = None,
) -> tuple[bool, list[Finding]]:
    """Compare candidate against baseline; returns ``(ok, findings)``.

    ``budget`` is the allowed relative increase of any phase median;
    ``counter_budget`` the allowed relative increase of any counter.
    ``require_zero`` and ``min_speedup`` are the absolute candidate-side
    gates described in the module docstring.
    """
    validate_bench_doc(base_doc)
    validate_bench_doc(cand_doc)
    findings: list[Finding] = []
    cand_by_key = {result_key(r): r for r in cand_doc["results"]}
    for base in base_doc["results"]:
        key = result_key(base)
        cand = cand_by_key.get(key)
        if cand is None:
            findings.append(
                Finding("fail", key, "result missing in candidate")
            )
            continue
        if cand["n_dofs"] != base["n_dofs"] or cand["n_parts"] != base["n_parts"]:
            findings.append(
                Finding(
                    "warn",
                    key,
                    f"problem shape changed "
                    f"({base['n_dofs']} dofs/{base['n_parts']} parts -> "
                    f"{cand['n_dofs']}/{cand['n_parts']}); skipping",
                )
            )
            continue
        _compare_phases(key, base, cand, budget, findings)
        _compare_counters(key, base, cand, counter_budget, findings)
    if require_zero:
        _check_zero_counters(cand_doc, require_zero, findings)
    if min_speedup:
        _check_min_speedups(cand_doc, min_speedup, findings)
    ok = not any(f.severity == "fail" for f in findings)
    return ok, findings


def markdown_summary(
    base_doc: dict[str, Any],
    cand_doc: dict[str, Any],
    findings: list[Finding],
    ok: bool,
    budget: float,
) -> str:
    """GitHub-flavored markdown digest of one comparison: a phase table
    (baseline vs candidate medians) plus every non-info finding.  Written
    to ``$GITHUB_STEP_SUMMARY`` by :func:`main` so each bench job renders
    its gate verdict on the run's summary page."""
    verdict = "PASS" if ok else "FAIL"
    suite = cand_doc.get("suite", "?")
    lines = [
        f"### Perf gate `{suite}`: **{verdict}** "
        f"(budget +{budget * 100:.0f}%)",
        "",
        "| result | phase | baseline | candidate | delta |",
        "|---|---|---:|---:|---:|",
    ]
    cand_by_key = {result_key(r): r for r in cand_doc["results"]}
    for base in base_doc["results"]:
        key = result_key(base)
        cand = cand_by_key.get(key)
        for label, bstats in base.get("phases", {}).items():
            b = bstats["median"]
            cstats = cand.get("phases", {}).get(label) if cand else None
            if cstats is None:
                lines.append(f"| {key} | {label} | {b * 1e3:.4f} ms "
                             f"| *missing* | — |")
                continue
            c = cstats["median"]
            delta = f"{(c - b) / b * 100:+.1f}%" if b > 0 else "—"
            lines.append(
                f"| {key} | {label} | {b * 1e3:.4f} ms "
                f"| {c * 1e3:.4f} ms | {delta} |"
            )
    # SELL-C-sigma layout digest: padding cost of every candidate row that
    # carries the sellcs gauges, so the format overhead is visible on the
    # run summary next to the timings it buys
    sell_rows = [
        (result_key(r), r["counters"])
        for r in cand_doc["results"]
        if "sellcs.padded_nnz" in r.get("counters", {})
    ]
    if sell_rows:
        lines += [
            "",
            "#### SELL-C-sigma layout",
            "",
            "| result | padded_nnz | occupancy |",
            "|---|---:|---:|",
        ]
        lines += [
            f"| {key} | {counters['sellcs.padded_nnz']:.0f} "
            f"| {counters.get('sellcs.occupancy', float('nan')):.3f} |"
            for key, counters in sell_rows
        ]
    flagged = [f for f in findings if f.severity != "info"]
    if flagged:
        lines += ["", "#### Findings", ""]
        lines += [f"- **{f.severity}** `{f.where}` — {f.message}"
                  for f in flagged]
    n_info = sum(1 for f in findings if f.severity == "info")
    if n_info:
        lines += ["", f"_{n_info} informational finding(s) in the job log._"]
    return "\n".join(lines) + "\n"


def _write_step_summary(text: str) -> None:
    """Append to the GitHub Actions step summary when running under CI;
    a no-op (by design) everywhere else."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(text)
    except OSError as exc:  # never fail the gate over a summary file
        print(f"[compare] step summary not written: {exc}", file=sys.stderr)


def _split_gate(spec: str) -> tuple[str, str]:
    """Split a ``NAME@SUBSTR`` / ``VALUE@SUBSTR`` gate spec."""
    left, sep, right = spec.partition("@")
    if not sep or not left or not right:
        raise SchemaError(f"bad gate spec {spec!r} (expected NAME@SUBSTR)")
    return left, right


def _load(path: pathlib.Path) -> dict[str, Any]:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SchemaError(f"no such bench file: {path}") from None
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.compare",
        description="Diff two bench JSONs against perf budgets",
    )
    ap.add_argument("baseline", type=pathlib.Path)
    ap.add_argument("candidate", type=pathlib.Path)
    ap.add_argument(
        "--budget",
        type=float,
        default=0.25,
        help="allowed relative phase-median increase (default 0.25)",
    )
    ap.add_argument(
        "--counter-budget",
        type=float,
        default=0.01,
        help="allowed relative counter increase (default 0.01)",
    )
    ap.add_argument(
        "--require-zero",
        action="append",
        default=[],
        metavar="NAME@SUBSTR",
        help="counter NAME must be 0 in every candidate result whose key "
        "contains SUBSTR (repeatable; fails if nothing matches)",
    )
    ap.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="VALUE@SUBSTR",
        help="speedup_vs_reference must be >= VALUE in every candidate "
        "result whose key contains SUBSTR (repeatable; fails if nothing "
        "matches)",
    )
    args = ap.parse_args(argv)

    try:
        require_zero = [_split_gate(s) for s in args.require_zero]
        min_speedup = []
        for s in args.min_speedup:
            value, sub = _split_gate(s)
            try:
                min_speedup.append((float(value), sub))
            except ValueError:
                raise SchemaError(
                    f"bad --min-speedup value {value!r} in {s!r}"
                ) from None
        base = validate_bench_doc(_load(args.baseline))
        cand = validate_bench_doc(_load(args.candidate))
        ok, findings = compare_docs(
            base,
            cand,
            budget=args.budget,
            counter_budget=args.counter_budget,
            require_zero=require_zero,
            min_speedup=min_speedup,
        )
    except SchemaError as exc:
        print(f"[compare] error: {exc}", file=sys.stderr)
        return 2
    for f in findings:
        stream = sys.stderr if f.severity == "fail" else sys.stdout
        print(str(f), file=stream)
    _write_step_summary(
        markdown_summary(base, cand, findings, ok, args.budget)
    )
    n_fail = sum(1 for f in findings if f.severity == "fail")
    if ok:
        print(
            f"[compare] OK — {len(base['results'])} results within "
            f"+{args.budget * 100:.0f}% budgets"
        )
        return 0
    print(f"[compare] FAIL — {n_fail} regression(s)", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
