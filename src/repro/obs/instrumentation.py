"""The unified observability core: phases, counters, trace events.

One :class:`Instrumentation` instance per rank (owned by its
:class:`~repro.simmpi.communicator.Communicator`) plus an optional
process-wide instance for harness-level phases.  It subsumes the old
``repro.util.timer.TimingRecord`` API (``add``/``total``/``mean``/
``merge``/``as_dict``), so every call site that used the ad-hoc plumbing
keeps working, and adds the three things the paper's analysis needs:

* **hierarchical phase timers** — dotted paths (``spmv.emv.independent``)
  accumulating both *wall* seconds and *virtual* (modeled) seconds, with
  nesting via :meth:`Instrumentation.phase`;
* **monotonic counters** — elements swept, bytes exchanged, flops;
* **structured trace events** — ``(label, t0, t1, kind, meta)`` intervals
  on the virtual timeline, consumed by
  :func:`repro.simmpi.trace.render_gantt` and the GPU stream export.

Snapshots (:meth:`Instrumentation.snapshot`) are plain JSON-able dicts;
:func:`merge_snapshots` reduces them across ranks the way every figure in
the paper does (max over ranks for times, sum for counters).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "PhaseStats",
    "TraceEvent",
    "Instrumentation",
    "merge_snapshots",
    "percentile",
    "percentile_summary",
    "get_instrumentation",
    "reset_instrumentation",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (linear interpolation
    between closest ranks — numpy's default method, implemented in pure
    Python so the observability core keeps its zero-dependency rule).

    ``percentile(xs, 50)`` is the median; tail percentiles (p95/p99) are
    the latency numbers the serve harness reports.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    xs = sorted(float(s) for s in samples)
    if not xs:
        raise ValueError("percentile of an empty sample set")
    pos = (len(xs) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return xs[lo]
    return xs[lo] + (xs[hi] - xs[lo]) * (pos - lo)


def percentile_summary(
    samples: Sequence[float], qs: Sequence[float] = (50, 95, 99)
) -> dict[str, float]:
    """Latency-style summary of a sample set: one ``p<q>`` entry per
    requested percentile plus ``mean``/``min``/``max``/``n``."""
    xs = [float(s) for s in samples]
    if not xs:
        raise ValueError("percentile_summary of an empty sample set")
    out: dict[str, float] = {}
    for q in qs:
        key = f"p{q:g}".replace(".", "_")
        out[key] = percentile(xs, q)
    out["mean"] = sum(xs) / len(xs)
    out["min"] = min(xs)
    out["max"] = max(xs)
    out["n"] = len(xs)
    return out


@dataclass
class PhaseStats:
    """Accumulated statistics of one dotted phase path."""

    vtime: float = 0.0  # virtual (modeled) seconds
    wall: float = 0.0  # measured wall seconds
    count: int = 0

    def add(self, vtime: float = 0.0, wall: float = 0.0, count: int = 1) -> None:
        self.vtime += float(vtime)
        self.wall += float(wall)
        self.count += int(count)

    def as_dict(self) -> dict[str, float]:
        return {"vtime": self.vtime, "wall": self.wall, "count": self.count}


@dataclass(frozen=True)
class TraceEvent:
    """One interval on a rank's virtual timeline."""

    label: str
    t0: float
    t1: float
    kind: str = "compute"  # "compute" | "wait" | "modeled" | "gpu" | "fault"
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict[str, Any]:
        d = {"label": self.label, "t0": self.t0, "t1": self.t1, "kind": self.kind}
        if self.meta:
            d["meta"] = dict(self.meta)
        return d


class Instrumentation:
    """Process- or rank-wide registry of phases, counters and events.

    Parameters
    ----------
    rank:
        Owning rank (``-1`` for the process-wide registry).
    clock:
        Optional virtual-time source; when set, :meth:`phase` records the
        virtual-time delta of the enclosed block in addition to wall time.
    trace:
        When true, :meth:`event` appends to :attr:`events`; otherwise
        events are dropped (matching the old ``Simulator(trace=...)``
        behaviour, which keeps the hot path allocation-free).
    """

    def __init__(
        self,
        rank: int = -1,
        clock: Callable[[], float] | None = None,
        trace: bool = False,
    ):
        self.rank = rank
        self.clock = clock
        self.trace_enabled = trace
        self.phases: dict[str, PhaseStats] = {}
        self.counters: dict[str, float] = {}
        self.events: list[TraceEvent] = []
        self._stack: list[str] = []

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def record(
        self, label: str, vtime: float = 0.0, wall: float = 0.0, count: int = 1
    ) -> None:
        """Accumulate one phase sample under a dotted ``label``."""
        stats = self.phases.get(label)
        if stats is None:
            stats = self.phases[label] = PhaseStats()
        stats.add(vtime=vtime, wall=wall, count=count)

    @contextmanager
    def phase(self, name: str) -> Iterator["Instrumentation"]:
        """Hierarchical phase context: nested names join into dotted paths.

        >>> obs = Instrumentation()
        >>> with obs.phase("spmv"):
        ...     with obs.phase("emv"):
        ...         pass
        >>> sorted(obs.phases)
        ['spmv', 'spmv.emv']
        """
        self._stack.append(name)
        path = ".".join(self._stack)
        w0 = time.perf_counter()
        v0 = self.clock() if self.clock is not None else 0.0
        try:
            yield self
        finally:
            wall = time.perf_counter() - w0
            vtime = (self.clock() - v0) if self.clock is not None else 0.0
            self._stack.pop()
            self.record(path, vtime=vtime, wall=wall)

    @property
    def current_path(self) -> str:
        return ".".join(self._stack)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: float = 1) -> None:
        """Increment a monotonic counter (negative increments are bugs)."""
        if amount < 0:
            raise ValueError(f"counter {name!r}: negative increment {amount}")
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    # trace events
    # ------------------------------------------------------------------

    def event(
        self,
        label: str,
        t0: float,
        t1: float,
        kind: str = "compute",
        **meta: Any,
    ) -> None:
        """Append an interval to the event stream (no-op unless tracing)."""
        if self.trace_enabled and t1 > t0:
            self.events.append(TraceEvent(label, t0, t1, kind, meta))

    # ------------------------------------------------------------------
    # TimingRecord-compatible surface (the old ad-hoc API)
    # ------------------------------------------------------------------

    def add(self, label: str, seconds: float) -> None:
        """Accumulate virtual seconds under ``label`` (legacy API)."""
        self.record(label, vtime=seconds)

    def total(self, label: str) -> float:
        s = self.phases.get(label)
        return s.vtime if s is not None else 0.0

    def wall(self, label: str) -> float:
        s = self.phases.get(label)
        return s.wall if s is not None else 0.0

    def mean(self, label: str) -> float:
        s = self.phases.get(label)
        return s.vtime / s.count if s is not None and s.count else 0.0

    def merge(self, other: "Instrumentation") -> None:
        """Accumulate another instrumentation into this one (sum-reduce;
        the legacy ``TimingRecord.merge`` semantics)."""
        for label, stats in other.phases.items():
            self.record(
                label, vtime=stats.vtime, wall=stats.wall, count=stats.count
            )
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.events.extend(other.events)

    def as_dict(self) -> dict[str, float]:
        """Virtual-time totals keyed by label (legacy breakdown dict)."""
        return {label: s.vtime for label, s in self.phases.items()}

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    @property
    def totals(self) -> dict[str, float]:
        return self.as_dict()

    def snapshot(self, events: bool = False) -> dict[str, Any]:
        """JSON-able view of this rank's phases and counters."""
        doc: dict[str, Any] = {
            "rank": self.rank,
            "phases": {k: s.as_dict() for k, s in self.phases.items()},
            "counters": dict(self.counters),
        }
        if events:
            doc["events"] = [e.as_dict() for e in self.events]
        return doc

    def reset(self) -> None:
        self.phases.clear()
        self.counters.clear()
        self.events.clear()
        self._stack.clear()


def merge_snapshots(
    snapshots: Sequence[dict[str, Any]],
    time_reduce: str = "max",
) -> dict[str, Any]:
    """Reduce per-rank snapshots into one aggregate view.

    Phase times reduce by ``time_reduce`` (``"max"`` — the critical-path
    convention every figure uses — or ``"sum"``); counters always sum;
    counts take the max (per-rank call counts should agree on SPMD code).
    """
    if time_reduce not in ("max", "sum"):
        raise ValueError(f"unknown time_reduce {time_reduce!r}")
    phases: dict[str, dict[str, float]] = {}
    counters: dict[str, float] = {}
    for snap in snapshots:
        for label, s in snap.get("phases", {}).items():
            agg = phases.setdefault(
                label, {"vtime": 0.0, "wall": 0.0, "count": 0}
            )
            for key in ("vtime", "wall"):
                if time_reduce == "max":
                    agg[key] = max(agg[key], s[key])
                else:
                    agg[key] += s[key]
            agg["count"] = max(agg["count"], s["count"])
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
    return {
        "ranks": len(snapshots),
        "time_reduce": time_reduce,
        "phases": phases,
        "counters": counters,
    }


# ----------------------------------------------------------------------------
# process-wide registry
# ----------------------------------------------------------------------------

_PROCESS: Instrumentation | None = None


def get_instrumentation() -> Instrumentation:
    """The process-wide registry (created on first use)."""
    global _PROCESS
    if _PROCESS is None:
        _PROCESS = Instrumentation(rank=-1)
    return _PROCESS


def reset_instrumentation() -> Instrumentation:
    """Replace the process-wide registry with a fresh one."""
    global _PROCESS
    _PROCESS = Instrumentation(rank=-1)
    return _PROCESS
