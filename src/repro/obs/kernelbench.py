"""The kernels microbench suite: ``python -m repro.harness bench --suite kernels``.

Measures the *real* single-rank SPMV hot path — no simulator threads, no
virtual clock — on medium meshes, comparing the legacy allocating path
(``workspace=False``, exactly the pre-workspace code) against the
zero-allocation workspace path, for both EMV kernels.  Three properties
are machine-checked per (case, kernel):

* **speed** — wall-clock per SPMV, medians over repeats; workspace rows
  carry ``speedup_vs_reference``, a same-machine *best-of-repeats*
  (min/min) ratio — portable across hosts unlike the raw wall medians,
  and robust to noisy-neighbor contention on shared CI runners, which
  only ever inflates samples;
* **bitwise identity** — the workspace product must equal the reference
  product bit for bit, asserted in-process before any timing is trusted;
* **zero allocation** — ``tracemalloc`` bounds the peak heap growth over
  post-warmup SPMVs; the ``spmv.bytes_alloc`` counter is the floored
  value (see ``ALLOC_FLOOR_BYTES``) that CI gates to zero.

Wall-clock medians are machine-dependent; the CI gate therefore only
checks the ratio and the allocation counter, never absolute times.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.obs.instrumentation import Instrumentation, percentile
from repro.obs.schema import new_bench_doc, validate_bench_doc

__all__ = [
    "KernelCase",
    "KERNEL_CASES",
    "MULTIRHS_KS",
    "run_kernels_suite",
    "SELLCS_CASES",
    "SELLCS_CHUNKS",
    "SELLCS_KS",
    "run_sellcs_suite",
]

#: peak-heap growth (bytes) attributable to interpreter-level object
#: churn (boxed floats and dict entries from the instrumentation layer),
#: measured well under this on every case.  Any numpy buffer allocated in
#: the hot path — the smallest candidate is the n_dofs-sized bincount
#: scratch, ~74 KB on the medium Poisson mesh — lands far above it.
ALLOC_FLOOR_BYTES = 16384

#: EMV kernels exercised per case
KERNELS = ("einsum", "columns")

#: batch widths exercised by the multi-RHS (BLAS3) suite
MULTIRHS_KS = (1, 2, 8, 32)


class _NullComm:
    """Single-rank stand-in for :class:`repro.simmpi.Communicator`.

    Lets the operator stack run in-process without simulator threads, so
    ``time.perf_counter`` around ``spmv()`` measures the genuine hot
    path.  Collectives degenerate to identities; point-to-point must
    never happen on one rank and raises.
    """

    rank = 0
    size = 1
    vtime = 0.0

    def __init__(self) -> None:
        self.obs = Instrumentation(rank=0, clock=lambda: 0.0, trace=False)
        self.timing = self.obs

    @contextmanager
    def compute(self, label: str = "compute"):
        w0 = time.perf_counter()
        try:
            yield self
        finally:
            self.obs.record(label, vtime=0.0, wall=time.perf_counter() - w0)

    def advance(self, seconds: float, label: str = "modeled") -> None:
        self.obs.record(label, vtime=seconds)

    def allreduce(self, value, op="sum"):
        return value

    def allgather(self, value):
        return [value]

    def alltoall(self, per_dest):
        if len(per_dest) != 1:
            raise ValueError("single-rank alltoall needs exactly one entry")
        return list(per_dest)

    def isend(self, *a, **k):
        raise RuntimeError("no point-to-point on a single rank")

    irecv = isend
    wait = isend


@dataclass(frozen=True)
class KernelCase:
    """One problem of the kernels microbench."""

    name: str
    make_spec: Callable[[], Any]
    n_spmv: int = 10
    options: dict = field(default_factory=dict)


def _poisson_medium():
    from repro.problems import poisson_problem

    # nx=20 -> 8000 HEX8 elements, 9261 dofs: big enough that the sweep
    # dominates Python overhead, small enough for a CI job
    return poisson_problem(20, n_parts=1)


def _elastic_medium():
    from repro.mesh.element import ElementType
    from repro.problems import elastic_bar_problem

    # 8x8x16 -> 1024 HEX8 elements, 24 dofs/element (ndpn=3)
    return elastic_bar_problem((8, 8, 16), n_parts=1, etype=ElementType.HEX8)


KERNEL_CASES: tuple[KernelCase, ...] = (
    KernelCase(name="poisson-hex8-medium", make_spec=_poisson_medium),
    KernelCase(name="elastic-bar-hex8-medium", make_spec=_elastic_medium),
)


def _build_operator(spec, kernel: str, workspace: bool):
    from repro.core.hymv import HymvOperator

    comm = _NullComm()
    lmesh = spec.partition.local(0)
    return HymvOperator(
        comm, lmesh, spec.operator, kernel=kernel, workspace=workspace
    )


def _time_spmv(A, u, v, n_spmv: int, repeats: int) -> list[float]:
    """Per-SPMV wall seconds, one sample per repeat."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n_spmv):
            A.spmv(u, v)
        samples.append((time.perf_counter() - t0) / n_spmv)
    return samples


def _measure_alloc(A, u, v, n_spmv: int) -> int:
    """Peak heap growth (bytes) over ``n_spmv`` post-warmup SPMVs."""
    tracemalloc.start()
    try:
        A.spmv(u, v)  # warm tracemalloc's own structures on this path
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(n_spmv):
            A.spmv(u, v)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return max(0, int(peak - base))


def _phase_stats(samples: list[float]) -> dict[str, float]:
    return {
        "median": percentile(samples, 50),
        "min": min(samples),
        "max": max(samples),
        "repeats": len(samples),
    }


def _run_case_kernel(
    case: KernelCase, kernel: str, repeats: int, verbose: bool
) -> list[dict[str, Any]]:
    spec = case.make_spec()
    A_ref = _build_operator(spec, kernel, workspace=False)
    A_ws = _build_operator(spec, kernel, workspace=True)

    rng = np.random.default_rng(1234)
    x = rng.standard_normal(A_ref.n_dofs_owned)
    arrays = {}
    for tag, A in (("reference", A_ref), ("workspace", A_ws)):
        u, v = A.new_array(), A.new_array()
        u.set_owned(x)
        arrays[tag] = (u, v)

    # --- bitwise identity gate (before any timing is trusted) ----------
    y = {}
    for tag, A in (("reference", A_ref), ("workspace", A_ws)):
        u, v = arrays[tag]
        A.spmv(u, v)  # warmup 1
        A.spmv(u, v)  # warmup 2 (steady state)
        y[tag] = v.owned_flat.copy()
    if not np.array_equal(y["reference"], y["workspace"]):
        diff = int(np.sum(y["reference"] != y["workspace"]))
        raise RuntimeError(
            f"{case.name}/{kernel}: workspace SPMV is not bitwise identical "
            f"to the reference path ({diff} differing entries)"
        )

    rows = []
    medians = {}
    best = {}
    for tag, A in (("reference", A_ref), ("workspace", A_ws)):
        u, v = arrays[tag]
        samples = _time_spmv(A, u, v, case.n_spmv, repeats)
        raw_alloc = _measure_alloc(A, u, v, case.n_spmv)
        alloc = 0 if raw_alloc <= ALLOC_FLOOR_BYTES else raw_alloc
        counters = dict(A.comm.obs.snapshot()["counters"])
        counters["spmv.bytes_alloc"] = float(alloc)
        counters["spmv.bytes_alloc_raw"] = float(raw_alloc)
        medians[tag] = percentile(samples, 50)
        best[tag] = min(samples)
        rows.append(
            {
                "case": case.name,
                "method": f"hymv-{kernel}-{tag}",
                "n_parts": 1,
                "n_dofs": spec.n_dofs,
                "n_spmv": case.n_spmv,
                "phases": {"spmv.total": _phase_stats(samples)},
                "counters": counters,
                "bitwise_identical_to_reference": True,
            }
        )
    # best-of-repeats ratio, not median: noisy neighbors on shared CI
    # runners only ever *inflate* a sample, so the min of each side is
    # the least-contaminated estimate and their ratio is far more stable
    # than a median ratio under intermittent contention
    rows[-1]["speedup_vs_reference"] = best["reference"] / best["workspace"]
    if verbose:
        print(
            f"[bench]   {kernel:>7}: ref {best['reference'] * 1e3:.3f} ms, "
            f"workspace {best['workspace'] * 1e3:.3f} ms best-of-"
            f"{repeats} ({rows[-1]['speedup_vs_reference']:.2f}x, "
            f"alloc {rows[-1]['counters']['spmv.bytes_alloc_raw']:.0f} B raw)"
        )
    return rows


def _time_spmv_multi(A, U, V, mode: str, n_mult: int, repeats: int) -> list[float]:
    """Per-``spmv_multi`` wall seconds, one sample per repeat."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n_mult):
            A.spmv_multi(U, V, mode=mode)
        samples.append((time.perf_counter() - t0) / n_mult)
    return samples


def _measure_alloc_multi(A, U, V, mode: str, n_mult: int) -> int:
    """Peak heap growth (bytes) over post-warmup ``spmv_multi`` calls."""
    tracemalloc.start()
    try:
        A.spmv_multi(U, V, mode=mode)  # warm tracemalloc on this path
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(n_mult):
            A.spmv_multi(U, V, mode=mode)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return max(0, int(peak - base))


def _run_case_multirhs(
    case: KernelCase, repeats: int, verbose: bool
) -> tuple[list[dict[str, Any]], int | None]:
    """GEMM-vs-oracle multi-RHS rows for one case (einsum HYMV operator).

    Three machine-checked properties per batch width ``k``:

    * **equivalence** — the GEMM product must match the per-column oracle
      within :func:`repro.core.kernels.gemm_equivalence_rtol` of the
      magnitude scale ``|K| |u|`` (computed by running the oracle on an
      operator whose element matrices are replaced by their absolute
      values), asserted before any timing is trusted;
    * **speed** — ``*-gemm`` rows carry ``speedup_vs_reference``, the
      best-of-repeats ratio of the per-column oracle over the batched
      GEMM at the same ``k``;
    * **zero allocation** — both execution modes are ``tracemalloc``-
      bounded in steady state (``spmv.bytes_alloc`` floored to 0 below
      ``ALLOC_FLOOR_BYTES``), CI-gated like the single-RHS rows.

    Returns ``(rows, k_min_crossover)`` where the crossover is the
    smallest benchmarked ``k`` at which GEMM beats the oracle (``None``
    when it never does on this machine).
    """
    from repro.core.kernels import gemm_equivalence_rtol

    spec = case.make_spec()
    ops = {
        "oracle": _build_operator(spec, "einsum", workspace=True),
        "gemm": _build_operator(spec, "einsum", workspace=True),
    }
    # magnitude-scale operator: |K| |u| bounds every intermediate of both
    # accumulation orders, so the derived rtol is a rigorous bound
    A_abs = _build_operator(spec, "einsum", workspace=True)
    A_abs.ke[:] = np.abs(A_abs.ke)
    nd = A_abs.e2l_dofs.shape[1]

    rng = np.random.default_rng(1234)
    rows: list[dict[str, Any]] = []
    speedups: dict[int, float] = {}
    for k in MULTIRHS_KS:
        X = rng.standard_normal((ops["oracle"].n_dofs_owned, k))
        # --- equivalence gate (before any timing is trusted) -----------
        Y = {
            mode: A.apply_owned_multi(X, mode=mode) for mode, A in ops.items()
        }
        scale = A_abs.apply_owned_multi(np.abs(X), mode="oracle")
        rtol = gemm_equivalence_rtol(nd, k=k)
        err = np.abs(Y["gemm"] - Y["oracle"])
        bound = rtol * np.maximum(scale, np.finfo(np.float64).tiny)
        if not np.all(err <= bound):
            worst = float(np.max(err / bound))
            raise RuntimeError(
                f"{case.name}/multirhs k={k}: GEMM product exceeds the "
                f"derived oracle-equivalence bound (worst {worst:.3g}x "
                f"of rtol {rtol:.3g})"
            )
        n_mult = max(2, case.n_spmv // k)
        best = {}
        for mode, A in ops.items():
            U, V = A.new_multivector(k), A.new_multivector(k)
            U.set_owned(X)
            A.spmv_multi(U, V, mode=mode)  # warmup 1
            A.spmv_multi(U, V, mode=mode)  # warmup 2 (steady state)
            samples = _time_spmv_multi(A, U, V, mode, n_mult, repeats)
            raw_alloc = _measure_alloc_multi(A, U, V, mode, n_mult)
            alloc = 0 if raw_alloc <= ALLOC_FLOOR_BYTES else raw_alloc
            counters = dict(A.comm.obs.snapshot()["counters"])
            counters["spmv.bytes_alloc"] = float(alloc)
            counters["spmv.bytes_alloc_raw"] = float(raw_alloc)
            best[mode] = min(samples)
            rows.append(
                {
                    "case": case.name,
                    "method": f"hymv-einsum-multirhs-k{k}-{mode}",
                    "n_parts": 1,
                    "n_dofs": spec.n_dofs,
                    "n_spmv": n_mult,
                    "k": k,
                    "phases": {"spmv.total": _phase_stats(samples)},
                    "counters": counters,
                    "gemm_equivalence_rtol": rtol,
                }
            )
        # best-of-repeats ratio on the gemm row (see single-RHS rationale)
        speedups[k] = best["oracle"] / best["gemm"]
        rows[-1]["speedup_vs_reference"] = speedups[k]
        if verbose:
            print(
                f"[bench]   multirhs k={k:>2}: oracle "
                f"{best['oracle'] * 1e3:.3f} ms, gemm "
                f"{best['gemm'] * 1e3:.3f} ms best-of-{repeats} "
                f"({speedups[k]:.2f}x)"
            )
    crossed = [k for k in MULTIRHS_KS if speedups[k] > 1.0]
    return rows, (min(crossed) if crossed else None)


# ----------------------------------------------------------------------------
# SELL-C-sigma suite: ``python -m repro.harness bench --suite sellcs``
# ----------------------------------------------------------------------------

#: chunk heights swept by the single-RHS (C, sigma) grid
SELLCS_CHUNKS = (4, 8, 32)

#: batch widths exercised by the sellcs multi-RHS comparison
SELLCS_KS = (8, 32)


def _poisson_tiny():
    from repro.problems import poisson_problem

    # 343 dofs: small enough that per-column halo/bookkeeping overhead
    # dominates the assembled oracle — the shape class where the SELL
    # chunk-matmul wins outright
    return poisson_problem(6, n_parts=1)


def _graphlap_small():
    from repro.problems import graph_laplacian_problem

    # 729 dofs over 3072 jittered tets: irregular row lengths
    return graph_laplacian_problem(8, n_parts=1, seed=3)


def _graphlap_medium():
    from repro.problems import graph_laplacian_problem

    # 4913 dofs over 24576 jittered tets
    return graph_laplacian_problem(16, n_parts=1, seed=3)


#: the sellcs suite matrix; ``sweep=False`` cases run only the default
#: (C=32, sigma=8C) single-RHS row — the full 9-point (C, sigma) grid on
#: the two small cases already characterizes the layout parameters, and
#: each grid point costs a fresh assembly of the case
SELLCS_CASES: tuple[KernelCase, ...] = (
    KernelCase(name="poisson-hex8-tiny", make_spec=_poisson_tiny),
    KernelCase(name="graphlap-tet4-small", make_spec=_graphlap_small),
    KernelCase(
        name="graphlap-tet4-medium",
        make_spec=_graphlap_medium,
        options={"sweep": False},
    ),
    KernelCase(
        name="poisson-hex8-medium",
        make_spec=_poisson_medium,
        options={"sweep": False},
    ),
)


def _time_fn(fn: Callable[[], Any], n: int, repeats: int) -> list[float]:
    """Per-call wall seconds of ``fn``, one sample per repeat."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        samples.append((time.perf_counter() - t0) / n)
    return samples


def _measure_alloc_fn(fn: Callable[[], Any], n: int) -> int:
    """Peak heap growth (bytes) over ``n`` post-warmup calls of ``fn``."""
    tracemalloc.start()
    try:
        fn()  # warm tracemalloc's own structures on this path
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(n):
            fn()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return max(0, int(peak - base))


def _sellcs_counters(A, raw_alloc: int) -> dict[str, float]:
    counters = dict(A.comm.obs.snapshot()["counters"])
    counters["spmv.bytes_alloc"] = float(
        0 if raw_alloc <= ALLOC_FLOOR_BYTES else raw_alloc
    )
    counters["spmv.bytes_alloc_raw"] = float(raw_alloc)
    return counters


def _run_case_sellcs(
    case: KernelCase, repeats: int, verbose: bool
) -> tuple[list[dict[str, Any]], int | None]:
    """All sellcs rows for one case.

    Single-RHS: the assembled-CSR ``apply_owned`` is the reference row;
    each ``(C, sigma)`` grid point is bitwise-gated against it *before*
    timing (RuntimeError on any differing bit) and carries the
    ``sellcs.padded_nnz`` / ``sellcs.occupancy`` gauges plus the floored
    allocation counter CI gates to zero.  The speedup column is honest
    about numpy-vs-scipy reality: slice kernels pay ~3 memory passes
    against scipy's fused C loop, so these ratios sit below 1.

    Multi-RHS (k in SELLCS_KS): the reference is the assembled
    *per-column oracle* (k halo rounds + k CSR products — the serve
    tier's bitwise fallback path, same convention as the kernels suite's
    ``multirhs`` rows where the oracle is the gated reference).  Gated
    before timing: the sellcs oracle must be **bitwise** equal to the
    assembled oracle, and the sellcs chunk-matmul GEMM must match it
    within the derived equivalence bound.  Rows: assembled oracle,
    assembled SpMM gemm (where scipy wins — kept for honesty), sellcs
    gemm (`speedup_vs_reference` vs the oracle), and HYMV gemm — the
    backend-selection candidate.

    Returns ``(rows, win_dofs)`` where ``win_dofs`` is the case's dof
    count when the sellcs GEMM beat the HYMV GEMM at the widest ``k``
    (the per-shape backend crossover evidence), else ``None``.
    """
    from repro.baselines.assembled import AssembledOperator
    from repro.baselines.sellcs import SellCSOperator
    from repro.core.hymv import HymvOperator
    from repro.core.kernels import gemm_equivalence_rtol

    spec = case.make_spec()
    lmesh = spec.partition.local(0)
    A_asm = AssembledOperator(_NullComm(), lmesh, spec.operator)

    rng = np.random.default_rng(1234)
    x = rng.standard_normal(A_asm.n_dofs_owned)
    y_ref = A_asm.apply_owned(x)

    rows: list[dict[str, Any]] = []
    n_spmv = case.n_spmv

    def asm_single():
        A_asm.apply_owned(x, copy=False)

    asm_single()
    asm_single()  # steady state
    samples = _time_fn(asm_single, n_spmv, repeats)
    raw = _measure_alloc_fn(asm_single, n_spmv)
    rows.append(
        {
            "case": case.name,
            "method": "assembled-spmv",
            "n_parts": 1,
            "n_dofs": spec.n_dofs,
            "n_spmv": n_spmv,
            "phases": {"spmv.total": _phase_stats(samples)},
            "counters": _sellcs_counters(A_asm, raw),
        }
    )
    best_asm_single = min(samples)

    sweep = case.options.get("sweep", True)
    grid = (
        [(C, s) for C in SELLCS_CHUNKS for s in (1, C, 8 * C)]
        if sweep
        else [(32, 256)]
    )
    S_default = None
    for C, sigma in grid:
        S = SellCSOperator(_NullComm(), lmesh, spec.operator, C=C, sigma=sigma)
        if (C, sigma) == (32, 256):
            S_default = S
        # --- bitwise identity gate (before any timing is trusted) ------
        ys = S.apply_owned(x)
        if not np.array_equal(ys, y_ref):
            diff = int(np.sum(ys != y_ref))
            raise RuntimeError(
                f"{case.name}/sellcs C={C} sigma={sigma}: SELL SPMV is not "
                f"bitwise identical to the assembled-CSR reference "
                f"({diff} differing entries)"
            )

        def sell_single(S=S):
            S.apply_owned(x, copy=False)

        sell_single()
        sell_single()  # steady state
        samples = _time_fn(sell_single, n_spmv, repeats)
        raw = _measure_alloc_fn(sell_single, n_spmv)
        row = {
            "case": case.name,
            "method": f"sellcs-C{C}-s{sigma}-spmv",
            "n_parts": 1,
            "n_dofs": spec.n_dofs,
            "n_spmv": n_spmv,
            "phases": {"spmv.total": _phase_stats(samples)},
            "counters": _sellcs_counters(S, raw),
            "bitwise_identical_to_reference": True,
            "speedup_vs_reference": best_asm_single / min(samples),
        }
        rows.append(row)
        if verbose:
            print(
                f"[bench]   sellcs C={C:>2} s={sigma:>3}: "
                f"{min(samples) * 1e3:.3f} ms best-of-{repeats} "
                f"({row['speedup_vs_reference']:.2f}x vs assembled, "
                f"occ {S.occupancy:.3f})"
            )
    if S_default is None:
        S_default = SellCSOperator(_NullComm(), lmesh, spec.operator)

    # --- multi-RHS: sellcs GEMM vs the assembled per-column oracle -----
    H = HymvOperator(
        _NullComm(), lmesh, spec.operator, kernel="einsum", workspace=True
    )
    abs_diag = abs(A_asm.A_diag)
    wmax = max((int(w) for w in S_default.S_diag.widths[:1]), default=1)
    win_dofs: int | None = None
    for k in SELLCS_KS:
        X = rng.standard_normal((A_asm.n_dofs_owned, k))
        # --- gates (before any timing is trusted) ----------------------
        Yo_asm = A_asm.apply_owned_multi(X, mode="oracle")
        Yo_sell = S_default.apply_owned_multi(X, mode="oracle")
        if not np.array_equal(Yo_asm, Yo_sell):
            diff = int(np.sum(Yo_asm != Yo_sell))
            raise RuntimeError(
                f"{case.name}/sellcs multirhs k={k}: SELL oracle is not "
                f"bitwise identical to the assembled oracle "
                f"({diff} differing entries)"
            )
        Yg = S_default.apply_owned_multi(X, mode="gemm")
        # |A| |X| bounds every intermediate of both accumulation orders
        # (single rank: the diag block is the whole operator)
        scale = abs_diag @ np.abs(X)
        rtol = gemm_equivalence_rtol(wmax, k=k)
        err = np.abs(Yg - Yo_asm)
        bound = rtol * np.maximum(scale, np.finfo(np.float64).tiny)
        if not np.all(err <= bound):
            worst = float(np.max(err / bound))
            raise RuntimeError(
                f"{case.name}/sellcs multirhs k={k}: chunk-matmul GEMM "
                f"exceeds the derived oracle-equivalence bound "
                f"(worst {worst:.3g}x of rtol {rtol:.3g})"
            )
        n_mult = max(2, n_spmv // k)
        variants = [
            ("assembled-oracle", lambda: A_asm.apply_owned_multi(
                X, copy=False, mode="oracle"), A_asm),
            ("assembled-gemm", lambda: A_asm.apply_owned_multi(
                X, copy=False, mode="gemm"), A_asm),
            ("sellcs-gemm", lambda: S_default.apply_owned_multi(
                X, copy=False, mode="gemm"), S_default),
            ("hymv-gemm", lambda: H.apply_owned_multi(
                X, copy=False, mode="gemm"), H),
        ]
        best: dict[str, float] = {}
        for tag, fn, A in variants:
            fn()
            fn()  # steady state
            samples = _time_fn(fn, n_mult, repeats)
            raw = _measure_alloc_fn(fn, n_mult)
            best[tag] = min(samples)
            row = {
                "case": case.name,
                "method": f"{tag.split('-')[0]}-multirhs-k{k}-"
                f"{tag.split('-', 1)[1]}",
                "n_parts": 1,
                "n_dofs": spec.n_dofs,
                "n_spmv": n_mult,
                "k": k,
                "phases": {"spmv.total": _phase_stats(samples)},
                "counters": _sellcs_counters(A, raw),
            }
            if tag != "assembled-oracle":
                row["speedup_vs_reference"] = (
                    best["assembled-oracle"] / best[tag]
                )
                row["gemm_equivalence_rtol"] = rtol
            if tag.startswith("sellcs"):
                row["oracle_bitwise_identical"] = True
            rows.append(row)
        if verbose:
            print(
                f"[bench]   multirhs k={k:>2}: asm-oracle "
                f"{best['assembled-oracle'] * 1e3:.3f} ms, asm-gemm "
                f"{best['assembled-gemm'] * 1e3:.3f} ms, sellcs-gemm "
                f"{best['sellcs-gemm'] * 1e3:.3f} ms "
                f"({best['assembled-oracle'] / best['sellcs-gemm']:.2f}x "
                f"vs oracle), hymv-gemm {best['hymv-gemm'] * 1e3:.3f} ms"
            )
        if k == max(SELLCS_KS) and best["sellcs-gemm"] < best["hymv-gemm"]:
            win_dofs = spec.n_dofs
    return rows, win_dofs


def run_sellcs_suite(
    repeats: int = 5,
    cases: tuple[KernelCase, ...] = SELLCS_CASES,
    verbose: bool = True,
) -> dict[str, Any]:
    """Run the SELL-C-sigma suite; returns a validated bench document.

    Writes the per-shape backend crossover into
    ``config.sellcs_crossover_dofs``: the largest benchmarked problem
    size (dofs) at which the sellcs GEMM beat the HYMV GEMM at the
    widest batch — ``SolverService(backend="auto")`` routes shapes at or
    below it to SELL-C-sigma (see
    :func:`repro.serve.loadgen.load_calibrated_crossover`).  ``None``
    when HYMV won everywhere on this machine.
    """
    doc = new_bench_doc(
        suite="sellcs",
        repeats=repeats,
        config={
            "chunks": list(SELLCS_CHUNKS),
            "sigmas": "1,C,8C",
            "multirhs_ks": list(SELLCS_KS),
            "cases": [c.name for c in cases],
            "alloc_floor_bytes": ALLOC_FLOOR_BYTES,
            "measured": True,  # real wall clock — gate ratios, not medians
        },
    )
    wins: list[int] = []
    for case in cases:
        if verbose:
            print(f"[bench] {case.name} ...", flush=True)
        rows, win_dofs = _run_case_sellcs(case, repeats, verbose)
        doc["results"].extend(rows)
        if win_dofs is not None:
            wins.append(win_dofs)
    doc["config"]["sellcs_crossover_dofs"] = max(wins) if wins else None
    if verbose:
        print(
            "[bench] sellcs backend crossover: "
            + (
                f"<= {max(wins)} dofs"
                if wins
                else "none measured (hymv fastest at every shape)"
            )
        )
    return validate_bench_doc(doc)


def run_kernels_suite(
    repeats: int = 5,
    cases: tuple[KernelCase, ...] = KERNEL_CASES,
    verbose: bool = True,
) -> dict[str, Any]:
    """Run the kernels matrix; returns a validated bench document."""
    doc = new_bench_doc(
        suite="kernels",
        repeats=repeats,
        config={
            "kernels": list(KERNELS),
            "cases": [c.name for c in cases],
            "alloc_floor_bytes": ALLOC_FLOOR_BYTES,
            "measured": True,  # real wall clock — gate ratios, not medians
        },
    )
    for case in cases:
        if verbose:
            print(f"[bench] {case.name} ...", flush=True)
        for kernel in KERNELS:
            doc["results"].extend(
                _run_case_kernel(case, kernel, repeats, verbose)
            )
    # multi-RHS (BLAS3) suite on the first case: GEMM-vs-oracle rows plus
    # the calibrated crossover width the serve batcher can load instead of
    # the hard-coded DEFAULT_K_MIN (see repro.serve.loadgen.load_calibrated_k_min)
    if cases:
        if verbose:
            print(f"[bench] {cases[0].name} multirhs ...", flush=True)
        rows, k_min = _run_case_multirhs(cases[0], repeats, verbose)
        doc["results"].extend(rows)
        doc["config"]["multirhs_ks"] = list(MULTIRHS_KS)
        doc["config"]["gemm_k_min_crossover"] = k_min
        if verbose:
            print(
                "[bench] gemm k_min crossover: "
                + (f"k={k_min}" if k_min is not None else
                   "none measured (oracle fastest at every k)")
            )
    return validate_bench_doc(doc)
