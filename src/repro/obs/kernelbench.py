"""The kernels microbench suite: ``python -m repro.harness bench --suite kernels``.

Measures the *real* single-rank SPMV hot path — no simulator threads, no
virtual clock — on medium meshes, comparing the legacy allocating path
(``workspace=False``, exactly the pre-workspace code) against the
zero-allocation workspace path, for both EMV kernels.  Three properties
are machine-checked per (case, kernel):

* **speed** — wall-clock per SPMV, medians over repeats; workspace rows
  carry ``speedup_vs_reference``, a same-machine *best-of-repeats*
  (min/min) ratio — portable across hosts unlike the raw wall medians,
  and robust to noisy-neighbor contention on shared CI runners, which
  only ever inflates samples;
* **bitwise identity** — the workspace product must equal the reference
  product bit for bit, asserted in-process before any timing is trusted;
* **zero allocation** — ``tracemalloc`` bounds the peak heap growth over
  post-warmup SPMVs; the ``spmv.bytes_alloc`` counter is the floored
  value (see ``ALLOC_FLOOR_BYTES``) that CI gates to zero.

Wall-clock medians are machine-dependent; the CI gate therefore only
checks the ratio and the allocation counter, never absolute times.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.obs.instrumentation import Instrumentation, percentile
from repro.obs.schema import new_bench_doc, validate_bench_doc

__all__ = ["KernelCase", "KERNEL_CASES", "run_kernels_suite"]

#: peak-heap growth (bytes) attributable to interpreter-level object
#: churn (boxed floats and dict entries from the instrumentation layer),
#: measured well under this on every case.  Any numpy buffer allocated in
#: the hot path — the smallest candidate is the n_dofs-sized bincount
#: scratch, ~74 KB on the medium Poisson mesh — lands far above it.
ALLOC_FLOOR_BYTES = 16384

#: EMV kernels exercised per case
KERNELS = ("einsum", "columns")


class _NullComm:
    """Single-rank stand-in for :class:`repro.simmpi.Communicator`.

    Lets the operator stack run in-process without simulator threads, so
    ``time.perf_counter`` around ``spmv()`` measures the genuine hot
    path.  Collectives degenerate to identities; point-to-point must
    never happen on one rank and raises.
    """

    rank = 0
    size = 1
    vtime = 0.0

    def __init__(self) -> None:
        self.obs = Instrumentation(rank=0, clock=lambda: 0.0, trace=False)
        self.timing = self.obs

    @contextmanager
    def compute(self, label: str = "compute"):
        w0 = time.perf_counter()
        try:
            yield self
        finally:
            self.obs.record(label, vtime=0.0, wall=time.perf_counter() - w0)

    def advance(self, seconds: float, label: str = "modeled") -> None:
        self.obs.record(label, vtime=seconds)

    def allreduce(self, value, op="sum"):
        return value

    def allgather(self, value):
        return [value]

    def alltoall(self, per_dest):
        if len(per_dest) != 1:
            raise ValueError("single-rank alltoall needs exactly one entry")
        return list(per_dest)

    def isend(self, *a, **k):
        raise RuntimeError("no point-to-point on a single rank")

    irecv = isend
    wait = isend


@dataclass(frozen=True)
class KernelCase:
    """One problem of the kernels microbench."""

    name: str
    make_spec: Callable[[], Any]
    n_spmv: int = 10
    options: dict = field(default_factory=dict)


def _poisson_medium():
    from repro.problems import poisson_problem

    # nx=20 -> 8000 HEX8 elements, 9261 dofs: big enough that the sweep
    # dominates Python overhead, small enough for a CI job
    return poisson_problem(20, n_parts=1)


def _elastic_medium():
    from repro.mesh.element import ElementType
    from repro.problems import elastic_bar_problem

    # 8x8x16 -> 1024 HEX8 elements, 24 dofs/element (ndpn=3)
    return elastic_bar_problem((8, 8, 16), n_parts=1, etype=ElementType.HEX8)


KERNEL_CASES: tuple[KernelCase, ...] = (
    KernelCase(name="poisson-hex8-medium", make_spec=_poisson_medium),
    KernelCase(name="elastic-bar-hex8-medium", make_spec=_elastic_medium),
)


def _build_operator(spec, kernel: str, workspace: bool):
    from repro.core.hymv import HymvOperator

    comm = _NullComm()
    lmesh = spec.partition.local(0)
    return HymvOperator(
        comm, lmesh, spec.operator, kernel=kernel, workspace=workspace
    )


def _time_spmv(A, u, v, n_spmv: int, repeats: int) -> list[float]:
    """Per-SPMV wall seconds, one sample per repeat."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n_spmv):
            A.spmv(u, v)
        samples.append((time.perf_counter() - t0) / n_spmv)
    return samples


def _measure_alloc(A, u, v, n_spmv: int) -> int:
    """Peak heap growth (bytes) over ``n_spmv`` post-warmup SPMVs."""
    tracemalloc.start()
    try:
        A.spmv(u, v)  # warm tracemalloc's own structures on this path
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(n_spmv):
            A.spmv(u, v)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return max(0, int(peak - base))


def _phase_stats(samples: list[float]) -> dict[str, float]:
    return {
        "median": percentile(samples, 50),
        "min": min(samples),
        "max": max(samples),
        "repeats": len(samples),
    }


def _run_case_kernel(
    case: KernelCase, kernel: str, repeats: int, verbose: bool
) -> list[dict[str, Any]]:
    spec = case.make_spec()
    A_ref = _build_operator(spec, kernel, workspace=False)
    A_ws = _build_operator(spec, kernel, workspace=True)

    rng = np.random.default_rng(1234)
    x = rng.standard_normal(A_ref.n_dofs_owned)
    arrays = {}
    for tag, A in (("reference", A_ref), ("workspace", A_ws)):
        u, v = A.new_array(), A.new_array()
        u.set_owned(x)
        arrays[tag] = (u, v)

    # --- bitwise identity gate (before any timing is trusted) ----------
    y = {}
    for tag, A in (("reference", A_ref), ("workspace", A_ws)):
        u, v = arrays[tag]
        A.spmv(u, v)  # warmup 1
        A.spmv(u, v)  # warmup 2 (steady state)
        y[tag] = v.owned_flat.copy()
    if not np.array_equal(y["reference"], y["workspace"]):
        diff = int(np.sum(y["reference"] != y["workspace"]))
        raise RuntimeError(
            f"{case.name}/{kernel}: workspace SPMV is not bitwise identical "
            f"to the reference path ({diff} differing entries)"
        )

    rows = []
    medians = {}
    best = {}
    for tag, A in (("reference", A_ref), ("workspace", A_ws)):
        u, v = arrays[tag]
        samples = _time_spmv(A, u, v, case.n_spmv, repeats)
        raw_alloc = _measure_alloc(A, u, v, case.n_spmv)
        alloc = 0 if raw_alloc <= ALLOC_FLOOR_BYTES else raw_alloc
        counters = dict(A.comm.obs.snapshot()["counters"])
        counters["spmv.bytes_alloc"] = float(alloc)
        counters["spmv.bytes_alloc_raw"] = float(raw_alloc)
        medians[tag] = percentile(samples, 50)
        best[tag] = min(samples)
        rows.append(
            {
                "case": case.name,
                "method": f"hymv-{kernel}-{tag}",
                "n_parts": 1,
                "n_dofs": spec.n_dofs,
                "n_spmv": case.n_spmv,
                "phases": {"spmv.total": _phase_stats(samples)},
                "counters": counters,
                "bitwise_identical_to_reference": True,
            }
        )
    # best-of-repeats ratio, not median: noisy neighbors on shared CI
    # runners only ever *inflate* a sample, so the min of each side is
    # the least-contaminated estimate and their ratio is far more stable
    # than a median ratio under intermittent contention
    rows[-1]["speedup_vs_reference"] = best["reference"] / best["workspace"]
    if verbose:
        print(
            f"[bench]   {kernel:>7}: ref {best['reference'] * 1e3:.3f} ms, "
            f"workspace {best['workspace'] * 1e3:.3f} ms best-of-"
            f"{repeats} ({rows[-1]['speedup_vs_reference']:.2f}x, "
            f"alloc {rows[-1]['counters']['spmv.bytes_alloc_raw']:.0f} B raw)"
        )
    return rows


def run_kernels_suite(
    repeats: int = 5,
    cases: tuple[KernelCase, ...] = KERNEL_CASES,
    verbose: bool = True,
) -> dict[str, Any]:
    """Run the kernels matrix; returns a validated bench document."""
    doc = new_bench_doc(
        suite="kernels",
        repeats=repeats,
        config={
            "kernels": list(KERNELS),
            "cases": [c.name for c in cases],
            "alloc_floor_bytes": ALLOC_FLOOR_BYTES,
            "measured": True,  # real wall clock — gate ratios, not medians
        },
    )
    for case in cases:
        if verbose:
            print(f"[bench] {case.name} ...", flush=True)
        for kernel in KERNELS:
            doc["results"].extend(
                _run_case_kernel(case, kernel, repeats, verbose)
            )
    return validate_bench_doc(doc)
