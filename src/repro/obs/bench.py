"""The CI smoke-bench suite: ``python -m repro.harness bench``.

Runs a fixed, fast matrix of (problem, method) pairs — a small Poisson
cube and a small elasticity bar, each through HYMV and both baselines —
and writes a schema-versioned ``BENCH_smoke.json`` with per-phase medians
over repeats, summed counters and a machine fingerprint.

By default the suite runs in **modeled** mode (``compute_scale=0`` plus a
fixed modeled EMV rate), so every phase duration is a deterministic
function of the code path, the network model and the problem — identical
on a laptop and a CI runner.  That is what makes the checked-in baseline
under ``benchmarks/baseline/`` comparable across machines; wall-clock
seconds are still recorded per phase, but only as informational data.
``--measured`` switches to real measured compute for local profiling.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.instrumentation import percentile
from repro.obs.schema import new_bench_doc, validate_bench_doc

__all__ = ["SmokeCase", "SMOKE_CASES", "run_smoke_suite", "main"]

#: deterministic modeled EMV rate (GFLOP/s) used by element-sweep methods;
#: deliberately slow so smoke-scale phase durations sit well above the
#: compare gate's absolute noise floor
MODELED_RATE_GFLOPS = 1.0

#: methods that accept ``modeled_rate_gflops``
_MODELED_METHODS = ("hymv", "matfree", "partial")


@dataclass(frozen=True)
class SmokeCase:
    """One problem of the smoke suite."""

    name: str
    make_spec: Callable[[], Any]
    methods: tuple[str, ...] = ("hymv", "matfree", "assembled")
    n_spmv: int = 5
    options: dict = field(default_factory=dict)


def _poisson_small():
    from repro.problems import poisson_problem

    return poisson_problem(8, n_parts=4)


def _elastic_small():
    from repro.mesh.element import ElementType
    from repro.problems import elastic_bar_problem

    return elastic_bar_problem(
        (3, 3, 6), n_parts=4, etype=ElementType.HEX8
    )


SMOKE_CASES: tuple[SmokeCase, ...] = (
    SmokeCase(name="poisson-hex8-small", make_spec=_poisson_small),
    SmokeCase(name="elastic-bar-hex8-small", make_spec=_elastic_small),
)


def _phase_stats(samples: list[float]) -> dict[str, float]:
    # percentile(·, 50) is the shared first-class summary helper (also
    # used by the serve report); for the smoke suite's repeat counts it
    # agrees with statistics.median to the last ulp or better
    return {
        "median": percentile(samples, 50),
        "min": min(samples),
        "max": max(samples),
        "repeats": len(samples),
    }


def _run_case_method(
    case: SmokeCase, method: str, repeats: int, modeled: bool
) -> dict[str, Any]:
    """Repeat the bench protocol; aggregate per-phase stats over repeats."""
    from repro.harness.driver import run_bench

    spec = case.make_spec()
    options = dict(case.options)
    if modeled and method in _MODELED_METHODS:
        options["modeled_rate_gflops"] = MODELED_RATE_GFLOPS
    compute_scale = 0.0 if modeled else 1.0

    vtimes: dict[str, list[float]] = {}
    walls: dict[str, list[float]] = {}
    setup_s: list[float] = []
    spmv_s: list[float] = []
    counters: dict[str, float] = {}
    for _ in range(repeats):
        b = run_bench(
            spec,
            method,
            n_spmv=case.n_spmv,
            compute_scale=compute_scale,
            **options,
        )
        setup_s.append(b.setup_time)
        spmv_s.append(b.spmv_time)
        for label, stats in b.obs["phases"].items():
            vtimes.setdefault(label, []).append(stats["vtime"])
            walls.setdefault(label, []).append(stats["wall"])
        counters = dict(b.obs["counters"])  # deterministic per repeat

    phases = {}
    for label, samples in sorted(vtimes.items()):
        phases[label] = _phase_stats(samples)
        phases[label]["wall_median"] = percentile(walls[label], 50)
    return {
        "case": case.name,
        "method": method,
        "n_parts": spec.n_parts,
        "n_dofs": spec.n_dofs,
        "n_spmv": case.n_spmv,
        "modeled": modeled,
        "setup_s": _phase_stats(setup_s),
        "spmv_s": _phase_stats(spmv_s),
        "phases": phases,
        "counters": counters,
    }


def run_smoke_suite(
    repeats: int = 3,
    modeled: bool = True,
    cases: tuple[SmokeCase, ...] = SMOKE_CASES,
    verbose: bool = True,
) -> dict[str, Any]:
    """Run the full smoke matrix; returns a validated bench document."""
    doc = new_bench_doc(
        suite="smoke",
        repeats=repeats,
        config={
            "modeled": modeled,
            "modeled_rate_gflops": MODELED_RATE_GFLOPS if modeled else None,
            "cases": [c.name for c in cases],
        },
    )
    for case in cases:
        for method in case.methods:
            if verbose:
                print(f"[bench] {case.name} / {method} ...", flush=True)
            res = _run_case_method(case, method, repeats, modeled)
            doc["results"].append(res)
            if verbose:
                spmv = res["spmv_s"]["median"]
                total = res["phases"].get("spmv.total", {}).get("median", 0.0)
                print(
                    f"[bench]   {case.n_spmv} spmv: {spmv * 1e3:.3f} ms "
                    f"(spmv.total {total * 1e3:.3f} ms, "
                    f"{len(res['phases'])} phases)"
                )
    return validate_bench_doc(doc)


def _summary_table(doc: dict[str, Any]) -> str:
    """Human-readable digest of the headline phases."""
    headline = ("spmv.total", "spmv.emv.independent", "spmv.scatter.wait")
    rows = [
        f"{'case':<26} {'method':<10} {'spmv.total':>12} "
        f"{'emv.indep':>12} {'scat.wait':>12}"
    ]
    for res in doc["results"]:
        cells = []
        for label in headline:
            med = res["phases"].get(label, {}).get("median")
            cells.append(f"{med * 1e3:>10.3f}ms" if med is not None else f"{'—':>12}")
        rows.append(
            f"{res['case']:<26} {res['method']:<10} "
            + " ".join(cells)
        )
    return "\n".join(rows)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness bench",
        description="Run a bench suite and emit BENCH_<suite>.json",
    )
    ap.add_argument(
        "--suite",
        choices=["smoke", "kernels", "sellcs"],
        default="smoke",
        help="smoke: modeled multi-rank matrix (machine-independent); "
        "kernels: measured single-rank SPMV hot-path microbench; "
        "sellcs: measured SELL-C-sigma (C, sigma) sweep and backend "
        "crossover vs the assembled/HYMV paths",
    )
    ap.add_argument(
        "--repeats", type=int, default=None, help="repeats per (case, method)"
    )
    ap.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output JSON path (default: ./BENCH_<suite>.json)",
    )
    ap.add_argument(
        "--measured",
        action="store_true",
        help="smoke suite only: measure real compute instead of the "
        "deterministic model (machine-dependent output; not comparable "
        "across hosts)",
    )
    ap.add_argument(
        "--tuned-from",
        type=pathlib.Path,
        default=None,
        metavar="TUNED_CONFIG_JSON",
        help="load an autotuner artifact and install its SELL (C, sigma) "
        "defaults before running the suite (affects every default-layout "
        "SELL-C-sigma build)",
    )
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)
    if args.tuned_from is not None:
        from repro.tune.calibration import load_tuned_config

        tuned = load_tuned_config(args.tuned_from)
        if tuned is not None and tuned.get("sell_c") is not None:
            from repro.core.sellcs import configure_sell_defaults

            c = int(tuned.get("sell_c"))
            sigma = int(tuned.get("sell_sigma_factor", 8)) * c
            configure_sell_defaults(c, sigma)
            if not args.quiet:
                print(f"[bench] tuned SELL defaults C={c} sigma={sigma}")
    if args.repeats is None:
        args.repeats = 3 if args.suite == "smoke" else 5
    if args.repeats < 1:
        ap.error(f"--repeats must be >= 1 (got {args.repeats})")
    if args.out is None:
        args.out = pathlib.Path(f"BENCH_{args.suite}.json")

    if args.suite == "kernels":
        from repro.obs.kernelbench import run_kernels_suite

        doc = run_kernels_suite(repeats=args.repeats, verbose=not args.quiet)
    elif args.suite == "sellcs":
        from repro.obs.kernelbench import run_sellcs_suite

        doc = run_sellcs_suite(repeats=args.repeats, verbose=not args.quiet)
    else:
        doc = run_smoke_suite(
            repeats=args.repeats,
            modeled=not args.measured,
            verbose=not args.quiet,
        )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    if not args.quiet:
        if args.suite == "smoke":
            print()
            print(_summary_table(doc))
        print(f"\n[bench] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
