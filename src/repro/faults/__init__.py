"""Fault injection & chaos testing for the simulated-MPI SPMV stack.

* :mod:`repro.faults.plan` — composable, seeded :class:`FaultPlan` rules
  (delay, reorder, drop+retry, straggler, corruption) bound into a
  :class:`FaultInjector` by the simulator.
* :mod:`repro.faults.chaos` — the chaos harness
  (``python -m repro.harness chaos``): runs a fault matrix against a
  fault-free reference solve and writes a schema-versioned
  ``CHAOS_report.json``.
* :mod:`repro.faults.shard` — shard-level failures for the sharded
  serving tier (:mod:`repro.serve.shard`): :class:`ShardKill` events on
  a :class:`ShardFaultPlan` timeline (kill at a virtual time, optional
  revive) driving router-membership failover.

The injection points live in :mod:`repro.simmpi` (message faults, compute
stragglers, ghost checksums) and :mod:`repro.solvers.cg` (breakdown
detection + restart-from-last-good-iterate); everything is surfaced as
``faults.*`` / ``solve.*`` observability counters and trace events.
"""

from repro.faults.plan import (
    CORRUPT_MODES,
    Corrupt,
    Delay,
    Drop,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    MessageLostError,
    Reorder,
    SendEffects,
    Straggler,
    corrupt_array,
    payload_checksum,
)
from repro.faults.shard import ShardFaultPlan, ShardFaultState, ShardKill

__all__ = [
    "CORRUPT_MODES",
    "Corrupt",
    "Delay",
    "Drop",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "MessageLostError",
    "Reorder",
    "SendEffects",
    "ShardFaultPlan",
    "ShardFaultState",
    "ShardKill",
    "Straggler",
    "corrupt_array",
    "payload_checksum",
]
