"""Deterministic, seedable fault injection for the simulated-MPI stack.

At the scale the paper targets, the interesting failures are not crashes
but *degradations*: stragglers, delayed or reordered messages, a lost
ghost exchange, silently corrupted halo data.  A :class:`FaultPlan` is a
composable, immutable description of such a regime, built from rules:

* :class:`Delay` — extra latency on matching point-to-point messages;
* :class:`Reorder` — matching messages jump the mailbox queue (physical
  delivery order is permuted; sequence-numbered matching in the
  communicator keeps payload order, so this is a pure timing fault);
* :class:`Drop` — the first matching message per edge is lost ``times``
  times; the receiver recovers through a modeled timeout + bounded
  retransmit (raising :class:`MessageLostError` past ``max_retries``);
* :class:`Straggler` — one rank's compute (measured and modeled) runs
  slower by a factor;
* :class:`Corrupt` — matching payloads are corrupted in flight (NaN
  injection or a single bit flip), detectable by the plan's optional
  lightweight ghost checksums.

A plan is bound to a simulator run with :meth:`FaultPlan.bind`, which
returns a :class:`FaultInjector` holding the mutable per-edge state.  All
decisions key off per-``(rule, src, dst, tag)`` message counters and a
seeded hash, never off wall-clock or thread interleaving, so a fixed plan
fires identically on every run — the property the chaos suite asserts.

Determinism note: rule budgets (``skip``/``times``/``count``) are
accounted **per edge**, i.e. per ``(src, dst, tag)`` triple.  A wildcard
rule therefore fires on *every* matching edge independently, which keeps
firing deterministic even when rank threads interleave arbitrarily.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Union

import numpy as np

__all__ = [
    "CORRUPT_MODES",
    "Corrupt",
    "Delay",
    "Drop",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "MessageLostError",
    "Reorder",
    "SendEffects",
    "Straggler",
    "corrupt_array",
    "payload_checksum",
]

CORRUPT_MODES = ("nan", "bitflip")


class FaultError(RuntimeError):
    """Base class of unrecoverable injected-fault outcomes."""


class MessageLostError(FaultError):
    """A dropped message exhausted the bounded-retry recovery."""


# ----------------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class Delay:
    """Add ``seconds`` (+ seeded uniform ``jitter``) of latency to matching
    messages.  ``count`` bounds firings per edge; ``None`` is unlimited."""

    seconds: float
    src: int | None = None
    dst: int | None = None
    tag: int | None = None
    jitter: float = 0.0
    count: int | None = None
    skip: int = 0

    def _validate(self) -> None:
        if self.seconds < 0 or self.jitter < 0:
            raise ValueError("Delay: seconds and jitter must be >= 0")


@dataclass(frozen=True)
class Reorder:
    """Every ``period``-th matching message per edge is enqueued at the
    *front* of the receiver's mailbox queue (it overtakes in-flight
    siblings).  Sequence-numbered matching preserves payload order, so
    only delivery timing is perturbed."""

    period: int = 2
    src: int | None = None
    dst: int | None = None
    tag: int | None = None
    count: int | None = None
    skip: int = 0

    def _validate(self) -> None:
        if self.period < 1:
            raise ValueError("Reorder: period must be >= 1")


@dataclass(frozen=True)
class Drop:
    """Drop the first matching message per edge ``times`` times.  The
    receiver recovers each drop with a modeled timeout + retransmission;
    ``times >= max_retries`` makes the message unrecoverable
    (:class:`MessageLostError`)."""

    src: int | None = None
    dst: int | None = None
    tag: int | None = None
    times: int = 1
    skip: int = 0

    def _validate(self) -> None:
        if self.times < 1:
            raise ValueError("Drop: times must be >= 1")


@dataclass(frozen=True)
class Straggler:
    """Multiply one rank's compute durations (measured ``compute``
    sections and modeled ``advance`` calls) by ``factor >= 1``."""

    rank: int
    factor: float

    def _validate(self) -> None:
        if self.factor < 1.0:
            raise ValueError("Straggler: factor must be >= 1 (a slowdown)")


@dataclass(frozen=True)
class Corrupt:
    """Corrupt the first ``times`` matching ndarray payloads per edge,
    after ``skip`` unharmed ones.  ``mode``: ``"nan"`` poisons one entry
    with NaN; ``"bitflip"`` flips one seeded bit of one float64 word."""

    mode: str = "nan"
    src: int | None = None
    dst: int | None = None
    tag: int | None = None
    times: int = 1
    skip: int = 0

    def _validate(self) -> None:
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"Corrupt: unknown mode {self.mode!r} (known: {CORRUPT_MODES})"
            )
        if self.times < 1:
            raise ValueError("Corrupt: times must be >= 1")


FaultRule = Union[Delay, Reorder, Drop, Straggler, Corrupt]

_P2P_RULES = (Delay, Reorder, Drop, Corrupt)


def _matches(rule, src: int, dst: int, tag: int) -> bool:
    return (
        (rule.src is None or rule.src == src)
        and (rule.dst is None or rule.dst == dst)
        and (rule.tag is None or rule.tag == tag)
    )


# ----------------------------------------------------------------------------
# payload helpers
# ----------------------------------------------------------------------------

def payload_checksum(arr: np.ndarray) -> int:
    """Lightweight content checksum of an ndarray payload (CRC-32)."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


def corrupt_array(arr: np.ndarray, mode: str, seed: int) -> bool:
    """Corrupt one seeded entry of ``arr`` in place; returns whether the
    payload was actually mutated (non-float payloads are left alone)."""
    flat = arr.reshape(-1)
    if flat.size == 0:
        return False
    rng = np.random.default_rng(seed)
    i = int(rng.integers(flat.size))
    if mode == "nan":
        if flat.dtype.kind != "f":
            return False
        flat[i] = np.nan
        return True
    if mode == "bitflip":
        if flat.dtype != np.float64:
            return False
        view = flat.view(np.uint64)
        view[i] ^= np.uint64(1) << np.uint64(int(rng.integers(64)))
        return True
    raise ValueError(f"unknown corruption mode {mode!r}")


def _mix_seed(*parts: int) -> int:
    """Stable non-negative seed from integer parts (order-sensitive)."""
    h = 0x9E3779B97F4A7C15
    for p in parts:
        h = (h ^ (int(p) & 0xFFFFFFFFFFFFFFFF)) * 0x100000001B3 % (1 << 64)
    return h


# ----------------------------------------------------------------------------
# the plan and its bound injector
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPlan:
    """Immutable, reusable description of a fault regime.

    Parameters
    ----------
    rules:
        The composable fault rules (any mix of the five rule types).
    seed:
        Seeds every stochastic decision (jitter, corruption target), so a
        plan is a pure function of ``(rules, seed)``.
    checksums:
        Attach a CRC-32 to every ndarray point-to-point payload at send
        time (before in-flight corruption) and verify it on receive;
        mismatches raise the ``faults.checksum_fail`` counter and land on
        the trace — the lightweight ghost-exchange integrity check.
    retry_timeout:
        Modeled seconds a receiver waits before declaring a loss and
        requesting retransmission.
    max_retries:
        Bounded-retry budget; a message dropped ``max_retries`` times is
        unrecoverable and raises :class:`MessageLostError`.
    """

    rules: tuple[FaultRule, ...] = field(default_factory=tuple)
    seed: int = 0
    checksums: bool = False
    retry_timeout: float = 1e-4
    max_retries: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, (*_P2P_RULES, Straggler)):
                raise TypeError(f"not a fault rule: {rule!r}")
            if getattr(rule, "skip", 0) < 0:
                raise ValueError(f"{type(rule).__name__}: skip must be >= 0")
            rule._validate()
        if self.retry_timeout <= 0:
            raise ValueError("retry_timeout must be > 0")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")

    def bind(self, n_ranks: int) -> "FaultInjector":
        """Fresh mutable injector for one simulator run."""
        return FaultInjector(self, n_ranks)

    def describe(self) -> dict:
        """JSON-able summary (used by the chaos report)."""
        return {
            "seed": self.seed,
            "checksums": self.checksums,
            "retry_timeout": self.retry_timeout,
            "max_retries": self.max_retries,
            "rules": [
                {"rule": type(r).__name__, **r.__dict__} for r in self.rules
            ],
        }


@dataclass
class SendEffects:
    """Faults the injector applies to one outgoing message."""

    delay: float = 0.0
    drops: int = 0
    corrupt_mode: str | None = None
    corrupt_seed: int = 0
    reorder: bool = False

    @property
    def any(self) -> bool:
        return bool(
            self.delay or self.drops or self.corrupt_mode or self.reorder
        )


class FaultInjector:
    """Per-run mutable state of a :class:`FaultPlan`.

    One injector is owned by one :class:`repro.simmpi.engine.Simulator`;
    its per-edge counters are touched only by the sending rank's thread
    (each edge has a unique sender), so decisions are interleaving-proof.
    """

    def __init__(self, plan: FaultPlan, n_ranks: int):
        self.plan = plan
        self.n_ranks = n_ranks
        self.checksums = plan.checksums
        self.retry_timeout = plan.retry_timeout
        self.max_retries = plan.max_retries
        self._lock = threading.Lock()
        self._counts: dict[tuple[int, int, int, int], int] = {}
        self._factors = [1.0] * n_ranks
        for rule in plan.rules:
            if isinstance(rule, Straggler):
                if not (0 <= rule.rank < n_ranks):
                    raise ValueError(
                        f"Straggler rank {rule.rank} out of range "
                        f"[0, {n_ranks})"
                    )
                self._factors[rule.rank] *= rule.factor
            else:
                for end in (rule.src, rule.dst):
                    if end is not None and not (0 <= end < n_ranks):
                        raise ValueError(
                            f"{type(rule).__name__} rank {end} out of range "
                            f"[0, {n_ranks})"
                        )

    def compute_factor(self, rank: int) -> float:
        """Compute-slowdown factor of ``rank`` (1.0 = nominal)."""
        return self._factors[rank]

    def on_send(self, src: int, dst: int, tag: int) -> SendEffects:
        """Decide the faults affecting one outgoing message (sender-side,
        called exactly once per ``isend``)."""
        eff = SendEffects()
        for i, rule in enumerate(self.plan.rules):
            if isinstance(rule, Straggler) or not _matches(rule, src, dst, tag):
                continue
            key = (i, src, dst, tag)
            with self._lock:
                k = self._counts.get(key, 0)
                self._counts[key] = k + 1
            k -= rule.skip
            if k < 0:
                continue
            if isinstance(rule, Delay):
                if rule.count is None or k < rule.count:
                    extra = rule.seconds
                    if rule.jitter:
                        rng = np.random.default_rng(
                            _mix_seed(self.plan.seed, i, src, dst, tag, k)
                        )
                        extra += rule.jitter * float(rng.random())
                    eff.delay += extra
            elif isinstance(rule, Drop):
                if k == 0:
                    eff.drops += rule.times
            elif isinstance(rule, Reorder):
                fired = (k + 1) // rule.period
                if (k + 1) % rule.period == 0 and (
                    rule.count is None or fired <= rule.count
                ):
                    eff.reorder = True
            elif isinstance(rule, Corrupt):
                if k < rule.times:
                    eff.corrupt_mode = rule.mode
                    eff.corrupt_seed = _mix_seed(
                        self.plan.seed, i, src, dst, tag, k
                    )
        return eff
