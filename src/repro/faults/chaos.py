"""Chaos harness: a fault-scenario matrix over the distributed CG solve.

``python -m repro.harness chaos`` runs every scenario against a
fault-free reference solve of the same problem and writes a
schema-versioned ``CHAOS_report.json`` (``repro.chaos/1``).  Each
scenario pairs a :class:`repro.faults.plan.FaultPlan` with explicit
expectations:

* **non-corrupting** faults (delay, reorder, straggler, drop+retry) must
  leave the solution bit-for-bit unchanged — the simulator recovers the
  original payloads, and sequence-numbered matching makes delivery order
  irrelevant to numerics;
* **corrupting** faults (NaN / bit flip on a ghost payload) must be
  *detected* (``faults.checksum_fail`` / ``spmv.ghost_nonfinite``
  counters) and *recovered* by the resilient CG's restart, re-converging
  to the reference solution within the solve tolerance.

The problem is the jittered-tet Poisson verification case: its RHS is not
a discrete eigenvector (unlike the uniform hex grid), so CG runs tens of
iterations and faults land mid-solve.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

from repro.core.scatter import SCATTER_TAG
from repro.faults.plan import (
    Corrupt,
    Delay,
    Drop,
    FaultPlan,
    Reorder,
    Straggler,
)
from repro.obs.schema import new_chaos_doc, validate_chaos_doc

__all__ = ["run_chaos", "main"]

#: relative tolerance of the chaos CG solves
SOLVE_RTOL = 1e-10
#: non-corrupting faults must reproduce the reference to this accuracy
EXACT_TOL = 1e-12
#: corrupting faults must *recover* to this accuracy (restart re-converges
#: to SOLVE_RTOL, not to the bit-identical iterate sequence)
RECOVER_TOL = 1e-6


def _scatter_edges(spec) -> list[tuple[int, int]]:
    """Discover the live ghost-scatter edges ``(src, dst)`` of ``spec``
    (one cheap SPMD pass building only the node/communication maps)."""
    from repro.core.maps import build_node_maps
    from repro.core.scatter import build_comm_maps
    from repro.simmpi.engine import run_spmd

    def prog(comm, lmesh):
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        cmaps = build_comm_maps(comm, maps)
        return list(cmaps.send_ranks)

    p = spec.n_parts
    results, _ = run_spmd(
        p, prog, rank_args=[(spec.partition.local(r),) for r in range(p)]
    )
    return [(src, dst) for src, dsts in enumerate(results) for dst in dsts]


def _scenarios(n_ranks: int, edge: tuple[int, int], seed: int) -> list[dict]:
    """The scenario matrix.  ``edge`` is a live scatter edge of the
    problem (so single-edge drop/corrupt rules actually fire)."""
    src, dst = edge
    lag_rank = n_ranks // 2
    return [
        {
            "name": "delay",
            "plan": FaultPlan(
                rules=(Delay(2e-4, tag=SCATTER_TAG, jitter=1e-4),),
                seed=seed,
            ),
            "expect_counters": ["faults.delayed"],
            "tol": EXACT_TOL,
        },
        {
            "name": "reorder",
            "plan": FaultPlan(
                rules=(Reorder(period=2, tag=SCATTER_TAG),), seed=seed
            ),
            "expect_counters": ["faults.reordered"],
            "tol": EXACT_TOL,
        },
        {
            "name": "straggler",
            "plan": FaultPlan(rules=(Straggler(lag_rank, 4.0),), seed=seed),
            "expect_counters": ["faults.straggler_s"],
            "tol": EXACT_TOL,
        },
        {
            "name": "drop_retry",
            "plan": FaultPlan(
                rules=(Drop(src=src, dst=dst, tag=SCATTER_TAG),), seed=seed
            ),
            "expect_counters": ["faults.dropped", "faults.retries"],
            "tol": EXACT_TOL,
        },
        {
            # the issue's acceptance scenario: one lost ghost message plus
            # a 4x straggler rank, in one plan
            "name": "drop_plus_straggler",
            "plan": FaultPlan(
                rules=(
                    Drop(src=src, dst=dst, tag=SCATTER_TAG),
                    Straggler(lag_rank, 4.0),
                ),
                seed=seed,
            ),
            "expect_counters": ["faults.retries", "faults.straggler_s"],
            "tol": 1e-10,
        },
        {
            # skip=1: the first scatter per edge feeds the Dirichlet RHS
            # lift (unrecoverable by a solver restart); the corruption
            # lands on CG iteration 1 instead
            "name": "corrupt_nan",
            "plan": FaultPlan(
                rules=(
                    Corrupt("nan", src=src, dst=dst, tag=SCATTER_TAG, skip=1),
                ),
                seed=seed,
                checksums=True,
            ),
            "resilient": True,
            "expect_counters": ["faults.corrupted", "faults.checksum_fail"],
            "expect_restarts": 1,
            "tol": RECOVER_TOL,
        },
        {
            "name": "corrupt_bitflip",
            "plan": FaultPlan(
                rules=(
                    Corrupt(
                        "bitflip", src=src, dst=dst, tag=SCATTER_TAG, skip=1
                    ),
                ),
                seed=seed,
                checksums=True,
            ),
            "resilient": True,
            "expect_counters": ["faults.corrupted", "faults.checksum_fail"],
            "expect_restarts": 1,
            "tol": RECOVER_TOL,
        },
    ]


def run_chaos(
    nel: int = 6,
    n_ranks: int = 8,
    seed: int = 0,
    rtol: float = SOLVE_RTOL,
) -> dict:
    """Run the full scenario matrix; returns the chaos report document."""
    # lazy imports: repro.harness imports repro.faults.plan (via simmpi),
    # so the package-level wiring must not be circular
    from repro.harness.driver import run_solve
    from repro.problems import ElementType, poisson_problem
    from repro.solvers.cg import ResilienceConfig

    spec = poisson_problem(nel, n_ranks, etype=ElementType.TET4, seed=seed)
    edges = _scatter_edges(spec)
    if not edges:
        raise RuntimeError("problem has no ghost-scatter edges to fault")

    ref = run_solve(
        spec, "hymv", precond="jacobi", rtol=rtol, return_solution=True
    )
    x_ref = ref.solution
    scale = float(np.abs(x_ref).max()) or 1.0

    doc = new_chaos_doc(
        config={
            "nel": nel,
            "n_ranks": n_ranks,
            "seed": seed,
            "rtol": rtol,
            "edge": list(edges[0]),
            "reference_iterations": ref.iterations,
        }
    )
    for sc in _scenarios(n_ranks, edges[0], seed):
        failures: list[str] = []
        counters: dict = {}
        iterations = -1
        restarts = -1
        rel_err = float("nan")
        resilience = (
            ResilienceConfig() if sc.get("resilient") else None
        )
        try:
            out = run_solve(
                spec,
                "hymv",
                precond="jacobi",
                rtol=rtol,
                return_solution=True,
                faults=sc["plan"],
                resilience=resilience,
            )
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            failures.append(f"solve raised {type(exc).__name__}: {exc}")
        else:
            iterations = out.iterations
            restarts = out.restarts
            counters = {
                k: v
                for k, v in out.obs.get("counters", {}).items()
                if k.startswith(("faults.", "solve.", "spmv.ghost"))
            }
            rel_err = float(np.abs(out.solution - x_ref).max()) / scale
            if not out.converged:
                failures.append("solve did not converge")
            if rel_err > sc["tol"]:
                failures.append(
                    f"rel_err {rel_err:.3e} exceeds tol {sc['tol']:.0e}"
                )
            for name in sc.get("expect_counters", ()):
                if counters.get(name, 0) <= 0:
                    failures.append(f"expected counter {name!r} > 0")
            if restarts < sc.get("expect_restarts", 0):
                failures.append(
                    f"expected >= {sc['expect_restarts']} restarts, "
                    f"got {restarts}"
                )
        doc["scenarios"].append(
            {
                "scenario": sc["name"],
                "ok": not failures,
                "failures": failures,
                "plan": sc["plan"].describe(),
                "counters": counters,
                "iterations": iterations,
                "restarts": restarts,
                "rel_err": rel_err,
            }
        )
    return validate_chaos_doc(doc)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness chaos",
        description="Fault-injection scenario matrix over the CG solve",
    )
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized problem (smaller mesh)")
    ap.add_argument("--ranks", type=int, default=8)
    ap.add_argument("--nel", type=int, default=None,
                    help="elements per cube edge (default 6; 5 with --smoke)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path("CHAOS_report.json"))
    args = ap.parse_args(argv)

    nel = args.nel if args.nel is not None else (5 if args.smoke else 6)
    doc = run_chaos(nel=nel, n_ranks=args.ranks, seed=args.seed)
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    n_ok = sum(1 for s in doc["scenarios"] if s["ok"])
    for s in doc["scenarios"]:
        status = "ok  " if s["ok"] else "FAIL"
        print(
            f"[{status}] {s['scenario']:<20s} iters={s['iterations']:>4d} "
            f"restarts={s['restarts']:>2d} rel_err={s['rel_err']:.3e}"
        )
        for f in s["failures"]:
            print(f"         - {f}")
    print(f"{n_ok}/{len(doc['scenarios'])} scenarios ok -> {args.out}")
    return 0 if n_ok == len(doc["scenarios"]) else 1


if __name__ == "__main__":
    sys.exit(main())
