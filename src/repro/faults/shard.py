"""Control-plane fault plans for the sharded serving tier.

:mod:`repro.faults.plan` injects *data-plane* faults (message delays,
drops, corruption) inside one simulated machine.  The sharded service
adds a second failure domain above it: whole shards dying.  A
:class:`ShardKill` removes one shard from the cluster at a fixed virtual
time — its consistent-hash ring segment is taken over by the surviving
shards, queued requests fail over, and its cached operators are lost
(rebuilt on reroute).  An optional ``revive_at`` rejoins the shard later
with a cold cache.

Like every fault plan in this repo, a :class:`ShardFaultPlan` is an
immutable pure description; :meth:`ShardFaultPlan.bind` returns the
mutable per-run cursor the balancer polls.  All decisions key off virtual
time only, so a fixed plan fires identically on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ShardKill", "ShardFaultPlan", "ShardFaultState"]


@dataclass(frozen=True)
class ShardKill:
    """Remove ``shard`` from the cluster at virtual time ``at``; rejoin
    it (cold) at ``revive_at`` when given."""

    shard: str
    at: float
    revive_at: float | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"ShardKill: at must be >= 0, got {self.at}")
        if self.revive_at is not None and self.revive_at <= self.at:
            raise ValueError(
                f"ShardKill: revive_at {self.revive_at} must be > at {self.at}"
            )


@dataclass(frozen=True)
class ShardFaultPlan:
    """Immutable schedule of shard-level failures."""

    kills: tuple[ShardKill, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(self.kills))
        for k in self.kills:
            if not isinstance(k, ShardKill):
                raise TypeError(f"not a ShardKill: {k!r}")
        shards = [k.shard for k in self.kills]
        if len(shards) != len(set(shards)):
            raise ValueError("ShardFaultPlan: at most one kill per shard")

    def bind(self) -> "ShardFaultState":
        """Fresh mutable cursor for one cluster run."""
        return ShardFaultState(self)

    def describe(self) -> dict:
        """JSON-able summary (used by the shard report)."""
        return {
            "kills": [
                {"shard": k.shard, "at": k.at, "revive_at": k.revive_at}
                for k in self.kills
            ],
        }


class ShardFaultState:
    """Per-run cursor over a :class:`ShardFaultPlan`'s timeline."""

    def __init__(self, plan: ShardFaultPlan):
        self.plan = plan
        self._kills = sorted(plan.kills, key=lambda k: (k.at, k.shard))
        self._revives = sorted(
            ((k.revive_at, k.shard) for k in plan.kills if k.revive_at is not None),
        )

    def due_kills(self, now: float) -> list[ShardKill]:
        """Pop and return every kill scheduled at or before ``now``."""
        due = [k for k in self._kills if k.at <= now]
        self._kills = self._kills[len(due):]
        return due

    def due_revives(self, now: float) -> list[str]:
        """Pop and return every shard scheduled to rejoin by ``now``."""
        due = [(t, s) for t, s in self._revives if t <= now]
        self._revives = self._revives[len(due):]
        return [s for _, s in due]

    def next_event(self) -> float:
        """Virtual time of the next pending kill/revive (inf when done)."""
        times = [k.at for k in self._kills] + [t for t, _ in self._revives]
        return min(times) if times else math.inf
