"""Partitioned-mesh interface: exactly the inputs HYMV consumes.

Per the paper (§IV-A), HYMV is mesh-structure agnostic and requires, per
partition *i*:

* the number of local elements ``|w_i|``,
* the **E2G map** — local element index → global node indices,
* the owned-node range ``[N_begin, N_end)`` (contiguous global ids).

:func:`build_partition` derives all of this from a global mesh and an
element→part assignment: node ownership (a node is owned by the lowest part
that touches it), a global renumbering making each part's owned nodes
contiguous, and per-rank :class:`LocalMesh` views.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.element import ElementType
from repro.mesh.mesh import Mesh
from repro.partition.graph import graph_partition
from repro.partition.rcb import rcb_partition
from repro.partition.slab import slab_partition
from repro.util.arrays import INDEX_DTYPE, as_index, inverse_permutation

__all__ = ["LocalMesh", "Partition", "build_partition"]

_METHODS = {
    "slab": slab_partition,
    "rcb": rcb_partition,
    "graph": graph_partition,
}


@dataclass
class LocalMesh:
    """The per-rank mesh view handed to HYMV and the baselines.

    Attributes
    ----------
    rank:
        Owning partition index.
    etype:
        Element type.
    elements:
        ``(E_local,)`` global element ids (for adaptive updates).
    e2g:
        ``(E_local, n_nodes_per_elem)`` global node ids (renumbered).
    coords:
        ``(E_local, n_nodes_per_elem, 3)`` element node coordinates.
    n_begin, n_end:
        Half-open owned-node range in the renumbered global ids.
    """

    rank: int
    etype: ElementType
    elements: np.ndarray
    e2g: np.ndarray
    coords: np.ndarray
    n_begin: int
    n_end: int

    @property
    def n_local_elements(self) -> int:
        return self.e2g.shape[0]

    @property
    def n_owned(self) -> int:
        return self.n_end - self.n_begin


@dataclass
class Partition:
    """A partitioned mesh: global view + per-rank local meshes."""

    mesh: Mesh
    n_parts: int
    elem_part: np.ndarray  # (E,) part of each element
    node_owner: np.ndarray  # (N,) owning part of each node (old ids)
    new_of_old: np.ndarray  # old node id -> renumbered id
    old_of_new: np.ndarray  # renumbered id -> old node id
    ranges: np.ndarray  # (p, 2) half-open owned ranges, renumbered ids
    locals_: list[LocalMesh] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return self.mesh.n_nodes

    def local(self, rank: int) -> LocalMesh:
        return self.locals_[rank]

    def owned_global_ids(self, rank: int) -> np.ndarray:
        """Renumbered global ids of the nodes owned by ``rank``."""
        b, e = self.ranges[rank]
        return np.arange(b, e, dtype=INDEX_DTYPE)

    def owned_coords(self, rank: int) -> np.ndarray:
        """Coordinates of the nodes owned by ``rank`` (renumbered order)."""
        b, e = self.ranges[rank]
        return self.mesh.coords[self.old_of_new[b:e]]

    def coords_by_new_id(self) -> np.ndarray:
        """``(N, 3)`` coordinates indexed by renumbered node id."""
        return self.mesh.coords[self.old_of_new]

    def boundary_nodes_new(self) -> np.ndarray:
        """Domain-boundary nodes in renumbered ids (sorted)."""
        return np.sort(self.new_of_old[self.mesh.boundary_nodes()])

    def owner_of_new(self, new_ids: np.ndarray) -> np.ndarray:
        """Owning rank of renumbered node ids (via the range table)."""
        return (
            np.searchsorted(self.ranges[:, 1], as_index(new_ids), side="right")
        ).astype(INDEX_DTYPE)

    def to_mesh_order(self, values_new: np.ndarray, ndpn: int = 1) -> np.ndarray:
        """Convert a (gathered) dof vector from renumbered order back to
        the original mesh's node order — e.g. the concatenated owned
        blocks from ``run_solve(..., return_solution=True)``, ready for
        :func:`repro.util.vtk.write_vtk`."""
        values_new = np.asarray(values_new, dtype=np.float64).reshape(
            self.n_nodes, ndpn
        )
        out = np.empty_like(values_new)
        out[self.old_of_new] = values_new
        return out if ndpn > 1 else out[:, 0]


def build_partition(
    mesh: Mesh,
    n_parts: int,
    method: str = "graph",
    **kwargs,
) -> Partition:
    """Partition ``mesh`` into ``n_parts`` and build per-rank local meshes.

    ``method`` is one of ``"slab"``, ``"rcb"``, ``"graph"``.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown partition method {method!r}")
    elem_part = as_index(_METHODS[method](mesh, n_parts, **kwargs))
    return partition_from_elem_part(mesh, n_parts, elem_part)


def partition_from_elem_part(
    mesh: Mesh, n_parts: int, elem_part: np.ndarray
) -> Partition:
    """Build a :class:`Partition` from an explicit element→part array."""
    elem_part = as_index(elem_part)
    if elem_part.shape != (mesh.n_elements,):
        raise ValueError("elem_part must have one entry per element")
    if elem_part.size and (elem_part.min() < 0 or elem_part.max() >= n_parts):
        raise ValueError("elem_part entries out of range")

    # node ownership: lowest part among adjacent elements
    node_owner = np.full(mesh.n_nodes, n_parts, dtype=INDEX_DTYPE)
    flat_nodes = mesh.conn.reshape(-1)
    flat_parts = np.repeat(elem_part, mesh.etype.n_nodes)
    np.minimum.at(node_owner, flat_nodes, flat_parts)
    if (node_owner == n_parts).any():
        raise ValueError("mesh has nodes not referenced by any element")

    # contiguous renumbering: stable sort by owner keeps intra-part order
    order = np.argsort(node_owner, kind="stable")  # new id -> old id
    old_of_new = as_index(order)
    new_of_old = inverse_permutation(old_of_new)

    counts = np.bincount(node_owner, minlength=n_parts)
    ends = np.cumsum(counts)
    begins = ends - counts
    ranges = np.stack([begins, ends], axis=1).astype(INDEX_DTYPE)

    part = Partition(
        mesh=mesh,
        n_parts=n_parts,
        elem_part=elem_part,
        node_owner=node_owner,
        new_of_old=new_of_old,
        old_of_new=old_of_new,
        ranges=ranges,
    )

    e2g_all = new_of_old[mesh.conn]
    for rank in range(n_parts):
        elems = np.flatnonzero(elem_part == rank).astype(INDEX_DTYPE)
        part.locals_.append(
            LocalMesh(
                rank=rank,
                etype=mesh.etype,
                elements=elems,
                e2g=e2g_all[elems],
                coords=mesh.coords[mesh.conn[elems]],
                n_begin=int(ranges[rank, 0]),
                n_end=int(ranges[rank, 1]),
            )
        )
    return part
