"""Partition-quality metrics (balance, edge cut, ghost counts)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.interface import Partition

__all__ = ["PartitionMetrics", "partition_metrics"]


@dataclass(frozen=True)
class PartitionMetrics:
    """Summary quality numbers of a partition."""

    element_imbalance: float  # max part size / mean part size
    node_imbalance: float  # max owned nodes / mean owned nodes
    edge_cut: int  # dual-graph edges crossing parts
    edge_cut_fraction: float
    ghost_nodes: np.ndarray  # (p,) ghost-node count per rank
    shared_nodes: int  # nodes touched by more than one part


def partition_metrics(part: Partition) -> PartitionMetrics:
    mesh = part.mesh
    p = part.n_parts

    esizes = np.bincount(part.elem_part, minlength=p)
    nsizes = part.ranges[:, 1] - part.ranges[:, 0]

    edges = mesh.dual_graph_edges()
    if edges.size:
        cross = part.elem_part[edges[:, 0]] != part.elem_part[edges[:, 1]]
        cut = int(cross.sum())
        cut_frac = cut / edges.shape[0]
    else:
        cut, cut_frac = 0, 0.0

    ghosts = np.zeros(p, dtype=np.int64)
    shared_mask = np.zeros(mesh.n_nodes, dtype=bool)
    for rank in range(p):
        lm = part.local(rank)
        ids = np.unique(lm.e2g)
        ghost = ids[(ids < lm.n_begin) | (ids >= lm.n_end)]
        ghosts[rank] = ghost.size
        shared_mask[part.old_of_new[ghost]] = True

    return PartitionMetrics(
        element_imbalance=float(esizes.max() / max(esizes.mean(), 1e-300)),
        node_imbalance=float(nsizes.max() / max(nsizes.mean(), 1e-300)),
        edge_cut=cut,
        edge_cut_fraction=cut_frac,
        ghost_nodes=ghosts,
        shared_nodes=int(shared_mask.sum()),
    )
