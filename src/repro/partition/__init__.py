"""Mesh partitioning substrate (METIS substitute).

Turns a global :class:`repro.mesh.Mesh` into the per-rank inputs HYMV
requires (paper §IV-A): local element lists, the E2G map, and contiguous
owned-node ranges ``[N_begin, N_end)`` per rank.

Three partitioners are provided:

* :func:`repro.partition.slab.slab_partition` — z-slab decomposition (the
  paper's verification setup),
* :func:`repro.partition.rcb.rcb_partition` — recursive coordinate
  bisection,
* :func:`repro.partition.graph.graph_partition` — greedy graph growing with
  boundary refinement on the element dual graph (our METIS stand-in, used
  for the unstructured-mesh experiments).
"""

from repro.partition.interface import (
    LocalMesh,
    Partition,
    build_partition,
)
from repro.partition.metrics import partition_metrics

__all__ = ["LocalMesh", "Partition", "build_partition", "partition_metrics"]
