"""Recursive coordinate bisection of element centroids."""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.arrays import INDEX_DTYPE

__all__ = ["rcb_partition"]


def rcb_partition(mesh: Mesh, n_parts: int) -> np.ndarray:
    """Recursive coordinate bisection.

    At each level the current element set is split along its longest
    bounding-box axis at the weighted median, with child part counts
    proportional to the split (so any ``n_parts`` is supported, not just
    powers of two).
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    centroids = mesh.element_centroids()
    part = np.zeros(mesh.n_elements, dtype=INDEX_DTYPE)
    _rcb(centroids, np.arange(mesh.n_elements, dtype=INDEX_DTYPE), 0, n_parts, part)
    return part


def _rcb(
    centroids: np.ndarray,
    elems: np.ndarray,
    first_part: int,
    n_parts: int,
    out: np.ndarray,
) -> None:
    if n_parts == 1:
        out[elems] = first_part
        return
    pts = centroids[elems]
    extent = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(extent))
    left_parts = n_parts // 2
    # split at the position proportional to left_parts / n_parts
    k = int(round(elems.size * left_parts / n_parts))
    k = min(max(k, 1), elems.size - 1)
    order = np.argsort(pts[:, axis], kind="stable")
    _rcb(centroids, elems[order[:k]], first_part, left_parts, out)
    _rcb(centroids, elems[order[k:]], first_part + left_parts, n_parts - left_parts, out)
