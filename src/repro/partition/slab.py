"""Slab partitioning along a coordinate axis.

The paper's correctness runs partition the box "in z-direction into
partitions owning equal numbers of elements"; this reproduces exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.arrays import INDEX_DTYPE

__all__ = ["slab_partition"]


def slab_partition(mesh: Mesh, n_parts: int, axis: int = 2) -> np.ndarray:
    """Assign each element to one of ``n_parts`` slabs along ``axis``.

    Elements are ordered by centroid coordinate (stable, so structured
    meshes keep their natural order) and split into equally-sized chunks.

    Returns
    -------
    ``(n_elements,)`` part id per element.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    centroids = mesh.element_centroids()[:, axis]
    order = np.argsort(centroids, kind="stable")
    part = np.empty(mesh.n_elements, dtype=INDEX_DTYPE)
    # equal-count split (remainder spread over the first parts)
    bounds = np.linspace(0, mesh.n_elements, n_parts + 1).astype(INDEX_DTYPE)
    for p in range(n_parts):
        part[order[bounds[p] : bounds[p + 1]]] = p
    return part
