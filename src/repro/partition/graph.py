"""Graph partitioner on the element dual graph (METIS substitute).

Two phases, following the classic greedy-graph-growing / boundary-refinement
recipe METIS itself descends from:

1. **Growing** — parts are grown one at a time by breadth-first expansion
   from a peripheral seed until each holds ``E / n_parts`` elements.
2. **Refinement** — a few Kernighan–Lin-style passes move boundary elements
   to the neighbouring part with the largest edge-cut gain, subject to a
   balance tolerance.

This produces the balanced parts with irregular boundaries that make the
unstructured experiments (Figs. 7, 9, 11) meaningful.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.arrays import INDEX_DTYPE

__all__ = ["graph_partition", "dual_adjacency"]


def dual_adjacency(mesh: Mesh) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency (offsets, neighbors) of the element dual graph."""
    edges = mesh.dual_graph_edges()
    E = mesh.n_elements
    if edges.size == 0:
        return np.zeros(E + 1, dtype=INDEX_DTYPE), np.empty(0, dtype=INDEX_DTYPE)
    both = np.concatenate([edges, edges[:, ::-1]], axis=0)
    order = np.argsort(both[:, 0], kind="stable")
    src = both[order, 0]
    dst = both[order, 1]
    counts = np.bincount(src, minlength=E)
    offsets = np.zeros(E + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return offsets, dst


def _bfs_farthest(offsets, nbrs, start: int, unassigned: np.ndarray) -> int:
    """Last node reached by BFS from ``start`` within ``unassigned`` mask."""
    seen = np.zeros(unassigned.size, dtype=bool)
    seen[~unassigned] = True
    q = deque([start])
    seen[start] = True
    last = start
    while q:
        u = q.popleft()
        last = u
        for v in nbrs[offsets[u] : offsets[u + 1]]:
            if not seen[v]:
                seen[v] = True
                q.append(v)
    return last


def graph_partition(
    mesh: Mesh,
    n_parts: int,
    refine_passes: int = 4,
    balance_tol: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Partition elements into ``n_parts`` balanced parts, small edge cut."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    E = mesh.n_elements
    if n_parts == 1:
        return np.zeros(E, dtype=INDEX_DTYPE)
    if n_parts > E:
        raise ValueError(f"more parts ({n_parts}) than elements ({E})")
    offsets, nbrs = dual_adjacency(mesh)
    part = np.full(E, -1, dtype=INDEX_DTYPE)
    unassigned = np.ones(E, dtype=bool)
    rng = np.random.default_rng(seed)

    target = E / n_parts
    for p in range(n_parts - 1):
        size_p = int(round((p + 1) * target)) - int(round(p * target))
        # peripheral seed: farthest unassigned element from a random start
        candidates = np.flatnonzero(unassigned)
        start = int(candidates[rng.integers(candidates.size)])
        seed_elem = _bfs_farthest(offsets, nbrs, start, unassigned)
        grown = _grow(offsets, nbrs, seed_elem, size_p, unassigned, candidates)
        part[grown] = p
        unassigned[grown] = False
    part[unassigned] = n_parts - 1

    for _ in range(refine_passes):
        moved = _refine_pass(offsets, nbrs, part, n_parts, target, balance_tol)
        if moved == 0:
            break
    return part


def _grow(offsets, nbrs, seed_elem, size, unassigned, candidates) -> np.ndarray:
    taken = []
    in_q = np.zeros(unassigned.size, dtype=bool)
    q = deque([seed_elem])
    in_q[seed_elem] = True
    it = iter(candidates)
    while len(taken) < size:
        if q:
            u = q.popleft()
        else:
            # disconnected remainder: jump to any unassigned candidate
            u = None
            for c in it:
                if unassigned[c] and not in_q[c]:
                    u = int(c)
                    in_q[u] = True
                    break
            if u is None:
                break
        taken.append(u)
        for v in nbrs[offsets[u] : offsets[u + 1]]:
            if unassigned[v] and not in_q[v]:
                in_q[v] = True
                q.append(v)
    return np.asarray(taken, dtype=INDEX_DTYPE)


def _refine_pass(offsets, nbrs, part, n_parts, target, tol) -> int:
    """One boundary-refinement sweep; returns the number of moves."""
    E = part.size
    sizes = np.bincount(part, minlength=n_parts).astype(np.float64)
    lo = target * (1.0 - tol)
    hi = target * (1.0 + tol)
    moved = 0
    # boundary elements: any neighbor in a different part
    for u in range(E):
        pu = part[u]
        neigh = nbrs[offsets[u] : offsets[u + 1]]
        if neigh.size == 0:
            continue
        nparts = part[neigh]
        if (nparts == pu).all():
            continue
        # gain of moving u to part q: (#neighbors in q) - (#neighbors in pu)
        same = int((nparts == pu).sum())
        best_q, best_gain = -1, 0
        for q in np.unique(nparts):
            if q == pu:
                continue
            gain = int((nparts == q).sum()) - same
            if gain > best_gain and sizes[q] + 1 <= hi and sizes[pu] - 1 >= lo:
                best_q, best_gain = int(q), gain
        if best_q >= 0:
            part[u] = best_q
            sizes[pu] -= 1
            sizes[best_q] += 1
            moved += 1
    return moved
