"""Analytic performance model — the Frontera-scale tier.

The emulation tier (:mod:`repro.simmpi`) runs the real algorithms at small
rank counts.  This package extrapolates to the paper's scales (56–28,672
cores, multi-GPU nodes) with a calibrated cost model:

* :mod:`repro.perfmodel.machine` — Frontera Cascade Lake node and Quadro
  RTX 5000 GPU constants.  Per-core *effective* rates for each operation
  class are calibrated from the paper's own measurements (Table I flop
  rates, Fig. 10 roofline, Fig. 4/8 absolute times) — documented per
  constant.
* :mod:`repro.perfmodel.counters` — flop/byte counters per method.
* :mod:`repro.perfmodel.costs` — per-phase time estimates (setup, SPMV,
  communication) for HYMV, matrix-assembled, matrix-free, and the GPU
  variants.
* :mod:`repro.perfmodel.scaling` — weak/strong scaling series used by the
  figure harnesses.
* :mod:`repro.perfmodel.roofline` — Fig. 10 (AI, GFLOP/s) placement.
"""

from repro.perfmodel.counters import MethodCounters, spmv_counters
from repro.perfmodel.costs import (
    CaseGeometry,
    method_setup_time,
    method_spmv_time,
)
from repro.perfmodel.machine import FRONTERA, GPU_NODE, FronteraMachine, GpuModel
from repro.perfmodel.scaling import strong_scaling_series, weak_scaling_series

__all__ = [
    "FRONTERA",
    "GPU_NODE",
    "FronteraMachine",
    "GpuModel",
    "MethodCounters",
    "spmv_counters",
    "CaseGeometry",
    "method_setup_time",
    "method_spmv_time",
    "weak_scaling_series",
    "strong_scaling_series",
]
