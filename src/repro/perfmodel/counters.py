"""Flop and byte counters per SPMV method (feeds Table I and Fig. 10).

Counting conventions follow the paper: HYMV and matrix-free count the
elemental products (2 nd² per element, plus the per-product elemental
assembly for matrix-free); assembled counts 2 flops per stored nonzero.
Bytes are modeled main-memory traffic per SPMV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fem.operators import Operator
from repro.mesh.element import ElementType

__all__ = ["MethodCounters", "spmv_counters", "estimate_nnz"]

#: modeled SELL-C-sigma occupancy (real nonzeros / padded slots) at the
#: default layout (C=32, sigma=8C); the sellcs bench measures 0.94-0.97
#: across the harness problems, so the model books 5% padding overhead
SELLCS_MODEL_OCCUPANCY = 0.95


def estimate_nnz(etype: ElementType, ndpn: int, n_nodes: int) -> float:
    """Estimated nonzeros of the assembled matrix.

    Uses the interior-node valence of each element type (nodes sharing an
    element with a given node, including itself).
    """
    valence = {
        ElementType.HEX8: 27.0,
        # HEX20: Table I implies 19.2 GFLOP per SPMV at 5.6M dofs
        # => ~171 nnz/dof => node valence ≈ 57
        ElementType.HEX20: 57.0,
        # HEX27: averaged over corner/edge/face/centre node stencils
        ElementType.HEX27: 64.0,
        ElementType.TET4: 15.0,
        ElementType.TET10: 28.0,
    }[etype]
    return n_nodes * ndpn * valence * ndpn


@dataclass(frozen=True)
class MethodCounters:
    """Per-SPMV flops and modeled memory traffic (one rank)."""

    flops: float
    bytes_: float

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes_ if self.bytes_ else 0.0


def spmv_counters(
    method: str,
    etype: ElementType,
    operator: Operator,
    n_elements: float,
    n_nodes: float,
    sellcs_occupancy: float | None = None,
) -> MethodCounters:
    """Counters of one SPMV on one rank with ``n_elements`` local
    elements and ``n_nodes`` local nodes.

    ``sellcs_occupancy`` overrides :data:`SELLCS_MODEL_OCCUPANCY` for the
    ``sellcs`` branch — pass a measured gauge (the bench's
    ``sellcs.occupancy``) or the autotuner's calibrated value so model
    placements track the actual ``(C, sigma)`` layout.
    """
    ndpn = operator.ndpn
    nd = operator.element_dofs(etype)
    n_dofs = n_nodes * ndpn

    if method == "hymv":
        flops = n_elements * operator.emv_flops(etype)
        bytes_ = (
            n_elements * nd * nd * 8.0  # stream stored element matrices
            + n_elements * nd * 8.0 * 2  # element vectors ue, ve
            + n_elements * nd * 8.0  # E2L index loads
            + n_dofs * 8.0 * 2  # u read, v write
        )
    elif method == "matfree":
        flops = n_elements * (
            operator.emv_flops(etype) + operator.ke_flops(etype)
        )
        bytes_ = (
            n_elements * etype.n_nodes * 3 * 8.0  # nodal coordinates
            + n_elements * nd * 8.0 * 2  # ue, ve
            + n_elements * nd * 8.0  # E2L index loads
            + n_elements * nd * nd * 8.0  # Ke write/read in cache tier
            + n_dofs * 8.0 * 2
        )
    elif method == "assembled":
        nnz = estimate_nnz(etype, ndpn, n_nodes)
        flops = 2.0 * nnz
        bytes_ = (
            nnz * 8.0  # matrix values
            + nnz * 4.0  # column indices
            + nnz * 8.0  # x gather (irregular — counted per access)
            + n_dofs * 8.0 * 2  # y write, row pointers amortized
        )
    elif method == "sellcs":
        # same stored nonzeros as assembled, inflated by the modeled
        # padding; every padded slot is streamed *and* multiplied (pad
        # cols hit the pinned zero), so both flops and bytes scale by
        # 1/occupancy — the x gather runs through the contiguous
        # permuted vector, and the row permutation adds two index
        # streams plus the permuted-output pass
        occ = (
            sellcs_occupancy
            if sellcs_occupancy is not None
            else SELLCS_MODEL_OCCUPANCY
        )
        if not 0.0 < occ <= 1.0:
            raise ValueError(f"occupancy must be in (0, 1], got {occ}")
        padded = estimate_nnz(etype, ndpn, n_nodes) / occ
        flops = 2.0 * padded
        bytes_ = (
            padded * 8.0  # slice values
            + padded * 4.0  # slice column indices
            + padded * 8.0  # x gather through the padded vector
            + n_dofs * 4.0 * 2  # perm / inv index streams
            + n_dofs * 8.0 * 3  # y write + permute-out read/write
        )
    else:
        raise ValueError(f"unknown method {method!r}")
    return MethodCounters(flops=flops, bytes_=bytes_)


#: Ratio of Advisor-observed traffic (all cache levels, every load/store
#: the core executes) to our modeled DRAM traffic, calibrated once against
#: the paper's Fig. 10 AIs for 20-node hex elasticity.  HYMV re-touches
#: element vectors and the accumulation target several times (≈3×);
#: assembled's x-gather largely hits cache (<1×); the matrix-free
#: quadrature loops are extremely load/store dense relative to their DRAM
#: footprint.
ADVISOR_TRAFFIC_FACTOR = {
    "hymv": 3.0,
    "assembled": 0.62,
    "matfree": 264.0,
    # no Advisor measurement exists for SELL-C-sigma (the method is not
    # in the paper's Fig. 10); the slice kernels stream values/columns
    # once like CSR but re-touch the gathered operand and the partial
    # accumulator through the take/multiply/add passes, so book ~2x the
    # modeled DRAM traffic at all cache levels — uncalibrated, model-only
    "sellcs": 2.0,
}


def advisor_counters(
    method: str,
    etype: ElementType,
    operator: Operator,
    n_elements: float,
    n_nodes: float,
    sellcs_occupancy: float | None = None,
) -> MethodCounters:
    """Counters under the Intel-Advisor traffic convention (Fig. 10):
    same flops, bytes scaled by the calibrated all-level traffic factor."""
    c = spmv_counters(
        method, etype, operator, n_elements, n_nodes,
        sellcs_occupancy=sellcs_occupancy,
    )
    return MethodCounters(
        flops=c.flops, bytes_=c.bytes_ * ADVISOR_TRAFFIC_FACTOR[method]
    )
