"""Per-phase time estimates for each SPMV method on the modeled machine.

The estimates combine the calibrated core rates
(:mod:`repro.perfmodel.machine`) with a surface/volume geometry model of
one *process's* partition (for hybrid MPI+OpenMP runs the partition is
``threads`` times larger and the compute rates scale by
``threads * omp_efficiency``).  They are used to extrapolate the emulated
runs to the paper's core counts; the *shapes* (who wins, crossovers) are
the target, not absolute times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fem.operators import Operator
from repro.mesh.element import ElementType
from repro.perfmodel.counters import (
    SELLCS_MODEL_OCCUPANCY,
    estimate_nnz,
    spmv_counters,
)
from repro.perfmodel.machine import FRONTERA, GPU_NODE, FronteraMachine, GpuModel

__all__ = [
    "CaseGeometry",
    "method_setup_time",
    "method_spmv_time",
    "gpu_setup_time",
    "gpu_spmv_time",
    "assembled_gpu_setup_time",
    "assembled_gpu_spmv_time",
    "sellcs_gpu_spmv_time",
]

# asymptotic nodes per element for each type (structured grids)
_NODES_PER_ELEM = {
    ElementType.HEX8: 1.0,
    ElementType.HEX20: 4.0,
    ElementType.HEX27: 8.0,
    ElementType.TET4: 1.0 / 6.0,
    ElementType.TET10: 4.0 / 3.0,
}

# surface nodes per boundary element face (one ghost layer)
_SURF_NODES_PER_FACE = {
    ElementType.HEX8: 1.0,
    ElementType.HEX20: 3.0,
    ElementType.HEX27: 4.0,
    ElementType.TET4: 0.5,
    ElementType.TET10: 2.0,
}


@dataclass(frozen=True)
class CaseGeometry:
    """Geometry of one process's partition for the cost model."""

    etype: ElementType
    ndpn: int
    n_elements: float  # local elements (per process)
    n_nodes: float  # local owned nodes (per process)
    ghost_nodes: float
    boundary_elements: float  # dependent elements
    n_neighbors: float
    n_ranks: int
    structured: bool = True

    @classmethod
    def from_granularity(
        cls,
        etype: ElementType,
        operator: Operator,
        dofs_per_process: float,
        n_ranks: int,
        structured: bool = True,
    ) -> "CaseGeometry":
        """Derive per-process geometry from the weak-scaling granularity."""
        ndpn = operator.ndpn
        nodes = dofs_per_process / ndpn
        npe = _NODES_PER_ELEM[etype]
        elements = nodes / npe
        # side length of the process's element cube
        hexes = elements / (6.0 if etype.is_tet else 1.0)
        m = max(hexes, 1.0) ** (1.0 / 3.0)
        faces = 3.0 * m * m  # ghosted faces (lowest-rank ownership ≈ half)
        surf_scale = 1.0 if structured else 1.8
        ghost = faces * _SURF_NODES_PER_FACE[etype] * surf_scale
        boundary_elems = min(
            elements, 6.0 * m * m * (6.0 if etype.is_tet else 1.0) * surf_scale
        )
        neighbors = (6.0 if structured else 12.0) if n_ranks > 2 else 1.0
        neighbors = min(neighbors, max(n_ranks - 1, 0))
        if n_ranks == 1:
            ghost = 0.0
            boundary_elems = 0.0
        return cls(
            etype=etype,
            ndpn=ndpn,
            n_elements=elements,
            n_nodes=nodes,
            ghost_nodes=min(ghost, nodes),
            boundary_elements=boundary_elems,
            n_neighbors=neighbors,
            n_ranks=n_ranks,
            structured=structured,
        )


def _eff(threads: int, machine: FronteraMachine) -> float:
    """Effective core multiplier of one process with OpenMP threads."""
    return threads * machine.rates.omp_efficiency if threads > 1 else 1.0


def _exchange_time(geo: CaseGeometry, machine: FronteraMachine) -> float:
    """One ghost scatter (or gather): messages to each neighbor."""
    if geo.n_ranks <= 1:
        return 0.0
    net = machine.network
    ghost_bytes = geo.ghost_nodes * geo.ndpn * 8.0
    return geo.n_neighbors * net.latency_inter + ghost_bytes / net.bandwidth_inter


def method_setup_time(
    method: str,
    geo: CaseGeometry,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    threads: int = 1,
) -> dict[str, float]:
    """Setup-phase breakdown (seconds) for one method.

    Returns a dict with at least ``total``; HYMV/assembled include
    ``emat_compute`` and ``overhead`` (local copy resp. global assembly),
    mirroring the bar splits of Figs. 5 and 7.
    """
    r = machine.rates
    eff = _eff(threads, machine)
    E = geo.n_elements
    nd = operator.element_dofs(geo.etype)
    emat_rate = r.emat_setup_gflops(geo.etype)
    t_emat = E * operator.ke_flops(geo.etype) / (emat_rate * 1e9 * eff)

    if method == "matfree":
        return {"emat_compute": 0.0, "overhead": 0.0, "total": 0.0}

    if method == "hymv":
        ke_bytes = E * nd * nd * 8.0
        t_copy = ke_bytes / (r.copy_gbps * 1e9 * eff)
        t_maps = geo.ghost_nodes * geo.ndpn * 8.0 / (
            r.rhs_gather_gbps * 1e9
        ) + _exchange_time(geo, machine)
        return {
            "emat_compute": t_emat,
            "overhead": t_copy + t_maps,
            "total": t_emat + t_copy + t_maps,
        }

    if method == "assembled":
        nnz = estimate_nnz(geo.etype, geo.ndpn, geo.n_nodes)
        insert = r.insert_s_per_nnz
        if not geo.structured:
            insert *= r.unstructured_insert_factor
        t_base = r.assembly_base_s * nnz / (nnz + r.assembly_base_nnz)
        t_insert = (nnz * insert + t_base) / eff
        # off-rank row triplets of boundary elements (24 B per entry)
        trip_bytes = geo.boundary_elements * nd * nd * 24.0 * 0.5
        net = machine.network
        t_comm = (
            geo.n_neighbors * net.latency_inter
            + trip_bytes / net.bandwidth_inter
            + trip_bytes / 24.0 * insert  # merge received triplets
        )
        if geo.n_ranks > 1:
            # MatAssembly flush/synchronization rounds (stragglers at scale)
            t_comm += math.log2(geo.n_ranks) * r.assembly_sync_s
        return {
            "emat_compute": t_emat,
            "overhead": t_insert + t_comm,
            "total": t_emat + t_insert + t_comm,
        }
    raise ValueError(f"unknown method {method!r}")


def method_spmv_time(
    method: str,
    geo: CaseGeometry,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    threads: int = 1,
    overlap: bool = True,
    n_spmv: int = 1,
) -> float:
    """Time of ``n_spmv`` products for one method (seconds)."""
    r = machine.rates
    eff = _eff(threads, machine)
    c = spmv_counters(method, geo.etype, operator, geo.n_elements, geo.n_nodes)
    if method == "hymv":
        rate = r.emv_gflops
        if threads > 1:
            eff *= r.hybrid_emv_bonus
    elif method == "matfree":
        rate = r.emat_gflops
    else:
        rate = r.csr_gflops
        dofs = geo.n_nodes * geo.ndpn
        rate *= dofs / (dofs + r.csr_overhead_dofs)
    if not geo.structured and method == "assembled":
        # irregular sparsity and partition boundaries degrade CSR SPMV
        # (paper's own observation for Fig. 7; factor calibrated to the
        # reported 3.6x average HYMV advantage)
        rate *= 0.25
    t_local = c.flops / (rate * 1e9 * eff)
    t_comm = _exchange_time(geo, machine)
    interior_frac = 1.0 - min(
        geo.boundary_elements / max(geo.n_elements, 1.0), 1.0
    )

    if method == "assembled":
        # halo exchange overlapped with the diagonal-block product; no gather
        hidden = t_local * interior_frac
        t = t_local + max(0.0, t_comm - hidden)
    else:
        if overlap:
            hidden = t_local * interior_frac
            t = t_local + max(0.0, t_comm - hidden) + t_comm  # + gather
        else:
            t = t_local + 2.0 * t_comm
    return t * n_spmv


# ----------------------------------------------------------------------------
# GPU variants (Algorithm 3)
# ----------------------------------------------------------------------------

def gpu_setup_time(
    geo: CaseGeometry,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    gpu: GpuModel = GPU_NODE,
    threads: int = 1,
) -> dict[str, float]:
    """HYMV-GPU setup: CPU-side HYMV setup + element-matrix H2D transfer
    (the reason GPU setup is slightly above CPU setup in Fig. 8)."""
    base = method_setup_time("hymv", geo, operator, machine, threads)
    nd = operator.element_dofs(geo.etype)
    ke_bytes = geo.n_elements * nd * nd * 8.0
    t_h2d = ke_bytes / (gpu.setup_h2d_gbps * 1e9)
    return {
        "emat_compute": base["emat_compute"],
        "overhead": base["overhead"] + t_h2d,
        "total": base["total"] + t_h2d,
    }


def gpu_spmv_time(
    geo: CaseGeometry,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    gpu: GpuModel = GPU_NODE,
    threads: int = 1,
    n_streams: int = 8,
    scheme: str = "gpu",
    n_spmv: int = 1,
) -> float:
    """HYMV-GPU SPMV (Algorithm 3) with the stream pipeline.

    ``scheme``: ``"gpu"`` (blocking comm, all elements on device),
    ``"gpu_cpu_overlap"`` (dependent elements on host, overlapped),
    ``"gpu_gpu_overlap"`` (all on device, comm overlapped with the
    independent-element kernel).
    """
    r = machine.rates
    eff = _eff(threads, machine)
    E = geo.n_elements
    nd = operator.element_dofs(geo.etype)
    flops = E * operator.emv_flops(geo.etype)
    ke_bytes = E * nd * nd * 8.0
    vec_bytes = E * nd * 8.0

    # host side: build bue / accumulate bve (OpenMP parallel, Alg. 3)
    t_host = 2.0 * vec_bytes / (r.rhs_gather_gbps * 1e9 * eff)
    # device kernel: stream stored matrices through GDDR6
    t_kernel = max(ke_bytes / (gpu.mem_gbps * 1e9), flops / (gpu.fp64_gflops * 1e9))
    t_kernel += n_streams * gpu.kernel_launch_s
    # PCIe transfers (H2D of bue, D2H of bve on separate copy engines)
    t_h2d = vec_bytes / (gpu.pcie_gbps * 1e9)
    t_d2h = vec_bytes / (gpu.pcie_gbps * 1e9)
    # stream pipeline: stages overlap, pipeline fill/drain ~ 1/n_streams
    stages = [t_h2d, t_kernel, t_d2h]
    t_pipe = max(stages) + (sum(stages) - max(stages)) / max(n_streams, 1)

    t_comm = _exchange_time(geo, machine)
    dep_frac = min(geo.boundary_elements / max(geo.n_elements, 1.0), 1.0)

    if scheme == "gpu":
        t = t_comm + t_host + t_pipe + t_comm
    elif scheme == "gpu_gpu_overlap":
        hidden = t_pipe * (1.0 - dep_frac)
        t = t_host + t_pipe + max(0.0, t_comm - hidden) + t_comm
    elif scheme == "gpu_cpu_overlap":
        # dependent elements on host CPU while transfers/kernel run
        t_dep_host = dep_frac * flops / (r.emv_gflops * 1e9 * eff)
        t_indep_pipe = t_pipe * (1.0 - dep_frac)
        t = t_host + max(t_indep_pipe, t_comm + t_dep_host) + t_comm
    else:
        raise ValueError(f"unknown GPU scheme {scheme!r}")
    return t * n_spmv


def sellcs_gpu_spmv_time(
    geo: CaseGeometry,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    gpu: GpuModel = GPU_NODE,
    n_streams: int = 8,
    n_chunks: int | None = None,
    C: int = 32,
    occupancy: float | None = None,
    n_spmv: int = 1,
) -> float:
    """SELL-C-sigma SPMV on the GPU: occupancy-scaled streamed-chunk model.

    The SELL layout is the GPU-native unified format (Kreutzer et al.,
    arXiv:1112.5588): chunks of ``C`` rows are processed by one warp
    each, streaming the padded value/column slices at GDDR rate.  The
    model books:

    * padded traffic and flops — the real nonzeros inflated by
      ``1/occupancy`` (every padded slot is streamed and multiplied
      against the pinned zero), plus the permuted x gather and the
      permute-out pass;
    * a warp-efficiency factor ``min(1, C/32)``: chunks narrower than a
      warp leave lanes idle, so the effective streaming rate scales by
      ``C/32`` below the warp width (wider chunks fill the warp; going
      past 32 adds nothing because chunks map to whole warps);
    * the stream pipeline of Algorithm 3 — the vectors cross PCIe in
      ``n_chunks`` chunks over ``n_streams`` streams while the kernel
      streams the resident slices, with per-chunk launch overhead — via
      the same fill/drain approximation as :func:`gpu_spmv_time`;
    * a host-staged halo exchange per product (the layout lives on
      device; ghost values stage D2H/H2D like the cuSPARSE path).

    ``occupancy`` defaults to the calibrated model value
    (:data:`~repro.perfmodel.counters.SELLCS_MODEL_OCCUPANCY`); pass the
    measured ``sellcs.occupancy`` gauge of the actual ``(C, sigma)``
    layout for tuned placements.
    """
    if n_streams < 1:
        raise ValueError(f"need at least one stream, got {n_streams}")
    if C < 1:
        raise ValueError(f"chunk height C must be >= 1, got {C}")
    occ = occupancy if occupancy is not None else SELLCS_MODEL_OCCUPANCY
    if not 0.0 < occ <= 1.0:
        raise ValueError(f"occupancy must be in (0, 1], got {occ}")
    if n_chunks is None:
        n_chunks = n_streams
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")

    n_dofs = geo.n_nodes * geo.ndpn
    padded = estimate_nnz(geo.etype, geo.ndpn, geo.n_nodes) / occ
    flops = 2.0 * padded
    # slice values + int32 columns, the x gather through the padded
    # vector, perm/inv index streams and the permute-out pass
    kernel_bytes = (
        padded * (8.0 + 4.0 + 8.0) + n_dofs * 4.0 * 2 + n_dofs * 8.0 * 3
    )
    warp_eff = min(1.0, C / 32.0)
    t_kernel = max(
        kernel_bytes / (gpu.mem_gbps * 1e9 * warp_eff),
        flops / (gpu.fp64_gflops * 1e9 * warp_eff),
    )
    t_kernel += n_chunks * gpu.kernel_launch_s
    vec_bytes = n_dofs * 8.0
    t_h2d = vec_bytes / (gpu.pcie_gbps * 1e9)
    t_d2h = vec_bytes / (gpu.pcie_gbps * 1e9)
    stages = [t_h2d, t_kernel, t_d2h]
    t_pipe = max(stages) + (sum(stages) - max(stages)) / max(n_streams, 1)

    ghost_bytes = geo.ghost_nodes * geo.ndpn * 8.0
    t_halo = (
        _exchange_time(geo, machine)
        + 2.0 * ghost_bytes / (gpu.pcie_gbps * 1e9)  # D2H + H2D staging
    )
    return (t_pipe + t_halo) * n_spmv


def assembled_gpu_setup_time(
    geo: CaseGeometry,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    gpu: GpuModel = GPU_NODE,
) -> float:
    """PETSc-GPU (cuSPARSE) setup: CPU assembly + CSR H2D transfer +
    cuSPARSE analysis pass."""
    base = method_setup_time("assembled", geo, operator, machine)["total"]
    nnz = estimate_nnz(geo.etype, geo.ndpn, geo.n_nodes)
    csr_bytes = nnz * 12.0
    t_h2d = csr_bytes / (gpu.setup_h2d_gbps * 1e9)
    t_analysis = nnz * 2.0e-9  # cuSPARSE csrmv analysis
    return base + t_h2d + t_analysis


def assembled_gpu_spmv_time(
    geo: CaseGeometry,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    gpu: GpuModel = GPU_NODE,
    n_spmv: int = 1,
) -> float:
    """PETSc-GPU SPMV: cuSPARSE CSR kernel + host-staged halo exchange."""
    nnz = estimate_nnz(geo.etype, geo.ndpn, geo.n_nodes)
    csr_bytes = nnz * 12.0 + geo.n_nodes * geo.ndpn * 8.0 * 2
    t_kernel = csr_bytes / (gpu.csr_gbps * 1e9) + gpu.kernel_launch_s
    ghost_bytes = geo.ghost_nodes * geo.ndpn * 8.0
    t_halo = (
        _exchange_time(geo, machine)
        + 2.0 * ghost_bytes / (gpu.pcie_gbps * 1e9)  # D2H + H2D staging
    )
    return (t_kernel + t_halo) * n_spmv
