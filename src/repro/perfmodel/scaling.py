"""Weak/strong scaling series at paper scale (the modeled tier)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fem.operators import Operator
from repro.mesh.element import ElementType
from repro.perfmodel.costs import (
    CaseGeometry,
    method_setup_time,
    method_spmv_time,
)
from repro.perfmodel.machine import FRONTERA, FronteraMachine

__all__ = ["ScalingPoint", "weak_scaling_series", "strong_scaling_series"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (cores, method) sample of a scaling study."""

    cores: int
    method: str
    setup_time: float
    spmv_time: float  # ten SPMV, the paper's protocol
    emat_time: float
    overhead_time: float


def _point(
    method: str,
    cores: int,
    dofs_per_rank: float,
    etype: ElementType,
    operator: Operator,
    machine: FronteraMachine,
    structured: bool,
    threads: int,
    overlap: bool,
    n_spmv: int,
) -> ScalingPoint:
    n_ranks = max(cores // threads, 1)
    # per-process partition: `threads` cores' worth of dofs per MPI rank
    geo = CaseGeometry.from_granularity(
        etype, operator, dofs_per_rank * threads, n_ranks,
        structured=structured,
    )
    setup = method_setup_time(method, geo, operator, machine, threads)
    spmv = method_spmv_time(
        method, geo, operator, machine, threads, overlap, n_spmv
    )
    return ScalingPoint(
        cores=cores,
        method=method,
        setup_time=setup["total"],
        spmv_time=spmv,
        emat_time=setup["emat_compute"],
        overhead_time=setup["overhead"],
    )


def weak_scaling_series(
    methods: list[str],
    core_counts: list[int],
    dofs_per_rank: float,
    etype: ElementType,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    structured: bool = True,
    threads: int = 1,
    overlap: bool = True,
    n_spmv: int = 10,
) -> dict[str, list[ScalingPoint]]:
    """Fixed granularity per rank, growing core counts (Figs. 4a/5a/6a)."""
    return {
        m: [
            _point(
                m, c, dofs_per_rank, etype, operator, machine,
                structured, threads, overlap, n_spmv,
            )
            for c in core_counts
        ]
        for m in methods
    }


def strong_scaling_series(
    methods: list[str],
    core_counts: list[int],
    total_dofs: float,
    etype: ElementType,
    operator: Operator,
    machine: FronteraMachine = FRONTERA,
    structured: bool = True,
    threads: int = 1,
    overlap: bool = True,
    n_spmv: int = 10,
) -> dict[str, list[ScalingPoint]]:
    """Fixed total problem, growing core counts (Figs. 4b/5b/6b/7)."""
    return {
        m: [
            _point(
                m, c, total_dofs / c, etype, operator,
                machine, structured, threads, overlap, n_spmv,
            )
            for c in core_counts
        ]
        for m in methods
    }
