"""Machine constants for TACC Frontera (the paper's testbed).

Every effective rate is calibrated against a number the paper itself
reports; the provenance is given inline.  These are *effective end-to-end
rates* (what the operation achieves inside the full code path), not
peaks — which is why they sit far below the roofline ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simmpi.network import NetworkModel

__all__ = ["CoreRates", "FronteraMachine", "GpuModel", "FRONTERA", "GPU_NODE"]


@dataclass(frozen=True)
class CoreRates:
    """Effective per-core rates of one Cascade Lake core.

    Calibration sources (Table I uses 20-node hex elasticity at 56
    processes per node):

    * ``emat_gflops`` — matrix-free SPMV achieves 303 GFLOP/s on one node
      (Table I) ⇒ ≈ 5.4 GFLOP/s per core for elemental-assembly compute.
    * ``emv_gflops`` — HYMV SPMV achieves 44.7 GFLOP/s per node (Table I)
      ⇒ ≈ 0.8 GFLOP/s per core for the batched dense EMV sweep
      (bandwidth-bound: streaming stored element matrices).
    * ``csr_gflops`` — assembled SPMV achieves 24.1 GFLOP/s per node
      (Table I) ⇒ ≈ 0.43 GFLOP/s per core for CSR with irregular access.
    * ``emat_setup_gflops`` — the *one-time* element-matrix computation in
      the setup phase runs colder than the matrix-free hot loop
      (allocation, first-touch): Fig. 5a shows HYMV setup ≈ 0.25 s at
      33.5K DoFs/rank hex8 elasticity ⇒ ≈ 1.6 GFLOP/s per core.
    * ``insert_s_per_nnz`` — Figs. 4a/5a: PETSc setup ≈ 5–10× HYMV setup
      ⇒ ≈ 0.45 µs per inserted nonzero (MatSetValues hash/search cost);
      ``unstructured_insert_factor`` reflects the extra cache misses of
      irregular sparsity (Fig. 7 reports 11× on unstructured meshes).
    * ``assembly_sync_s`` — MatAssembly flush/synchronization cost per
      log2(p) round (stragglers at scale).
    * ``copy_gbps`` — streaming copy per core ≈ DRAM roofline share,
      Fig. 10: 15.16 GB/s single-core DRAM bandwidth, derated to 13.
    * ``rhs_gather_gbps`` — irregular gather bandwidth (matrix halo and
      element-vector extraction), ≈ 1/4 of streaming.
    * ``single_core_gflops`` — single-core SPMV rates measured by the
      paper's Advisor roofline run (Fig. 10), used by the roofline
      reproduction (a lone core gets the whole DRAM bandwidth, hence the
      higher rates than the per-core Table I shares).
    """

    emat_gflops: float = 5.4
    # one-time setup elemental computation, per element family (effective
    # rates back-solved from Figs. 4a/5a [linear hex], 8a [hex20], 9a
    # [hex27], 7 [tets]):
    emat_setup_hex8_gflops: float = 1.6
    emat_setup_hex20_gflops: float = 1.0
    emat_setup_hex27_gflops: float = 2.0
    emat_setup_tet_gflops: float = 1.6
    emv_gflops: float = 0.8
    csr_gflops: float = 0.465
    # CSR SPMV degrades at small per-process matrices (per-row overhead,
    # larger halo fraction): rate_eff = csr_gflops * g / (g + csr_overhead_dofs)
    # calibrated so the 0.1M-dof/rank Table I point achieves 0.43 GF/s/core
    csr_overhead_dofs: float = 8000.0
    # fewer, larger-granularity processes stream dense batches with less
    # DRAM contention and fewer messages (Fig. 6a hybrid vs pure MPI)
    hybrid_emv_bonus: float = 1.35
    insert_s_per_nnz: float = 0.1e-6
    # saturating per-rank assembly overhead (preallocation, hashing,
    # stash handling): assembly_base_s * nnz / (nnz + assembly_base_nnz)
    assembly_base_s: float = 0.6
    assembly_base_nnz: float = 2.0e6
    unstructured_insert_factor: float = 1.5
    assembly_sync_s: float = 8.0e-3
    copy_gbps: float = 13.0
    rhs_gather_gbps: float = 3.3
    omp_efficiency: float = 0.85  # per-socket OpenMP scaling efficiency
    single_core_gflops: tuple = (
        ("hymv", 1.614),
        ("assembled", 1.062),
        ("matfree", 5.053),
    )

    def emat_setup_gflops(self, etype) -> float:
        """Setup-phase elemental-computation rate for an element type."""
        from repro.mesh.element import ElementType

        return {
            ElementType.HEX8: self.emat_setup_hex8_gflops,
            ElementType.HEX20: self.emat_setup_hex20_gflops,
            ElementType.HEX27: self.emat_setup_hex27_gflops,
            ElementType.TET4: self.emat_setup_tet_gflops,
            ElementType.TET10: self.emat_setup_tet_gflops,
        }[etype]


@dataclass(frozen=True)
class FronteraMachine:
    """One Frontera Cascade Lake (Xeon Platinum 8280) dual-socket node."""

    cores_per_node: int = 56
    sockets_per_node: int = 2
    mem_per_node_gb: float = 192.0
    # Fig. 10 roofline ceilings (single core, Intel Advisor)
    l1_gbps: float = 368.99
    l2_gbps: float = 117.37
    l3_gbps: float = 25.69
    dram_gbps: float = 15.16
    dp_fma_peak_gflops: float = 76.44
    dp_add_peak_gflops: float = 38.22
    scalar_add_peak_gflops: float = 6.57
    rates: CoreRates = field(default_factory=CoreRates)
    network: NetworkModel = field(default_factory=NetworkModel)

    @property
    def cores_per_socket(self) -> int:
        return self.cores_per_node // self.sockets_per_node


@dataclass(frozen=True)
class GpuModel:
    """NVIDIA Quadro RTX 5000 (Turing) — the paper's GPU (§V-A).

    * ``mem_gbps`` — 448 GB/s GDDR6 (spec), derated to an effective
      streaming rate for the batched-EMV kernel.
    * ``fp64_gflops`` — Turing FP64 = 1/32 FP32 ≈ 350 GFLOP/s.
    * ``pcie_gbps`` — PCIe 3.0 x16 ≈ 12 GB/s effective per direction
      (independent H2D and D2H copy engines, so transfers in opposite
      directions overlap — the mechanism of Fig. 3).
    * ``kernel_launch_s`` — per-kernel launch/driver latency.

    Calibration target: Fig. 8a reports GPU SPMV ≈ 7.4× the CPU SPMV of
    2 MPI × 14 OpenMP Cascade Lake processes at 25.1M DoFs.
    """

    mem_gbps: float = 380.0
    fp64_gflops: float = 350.0
    pcie_gbps: float = 12.0
    kernel_launch_s: float = 8.0e-6
    setup_h2d_gbps: float = 11.0
    gpus_per_node: int = 4
    mem_gb: float = 16.0
    csr_gbps: float = 140.0  # cuSPARSE effective bandwidth (irregular)


FRONTERA = FronteraMachine()
GPU_NODE = GpuModel()
