"""Fig. 10: roofline placement of the SPMV methods.

Produces (arithmetic intensity, GFLOP/s) for each method on a single
Cascade Lake core — the paper's Intel Advisor experiment, extended with
the repo's SELL-C-sigma backend — plus the roofline ceilings, and can
render an ASCII roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fem.operators import Operator
from repro.mesh.element import ElementType
from repro.perfmodel.counters import advisor_counters
from repro.perfmodel.machine import FRONTERA, FronteraMachine

__all__ = ["RooflinePoint", "roofline_points", "PAPER_ROOFLINE", "render_ascii"]

#: The paper's reported single-core values (Fig. 10, 20-node hex elasticity).
PAPER_ROOFLINE = {
    "hymv": (0.079, 1.614),
    "assembled": (0.161, 1.062),
    "matfree": (0.083, 5.053),
}


@dataclass(frozen=True)
class RooflinePoint:
    method: str
    arithmetic_intensity: float  # FLOP / byte
    gflops: float
    bound: str  # limiting ceiling at this AI


def _ceiling(ai: float, machine: FronteraMachine) -> tuple[float, str]:
    """Attainable single-core GFLOP/s at arithmetic intensity ``ai``."""
    mem = ai * machine.dram_gbps
    if mem < machine.dp_fma_peak_gflops:
        return mem, "DRAM"
    return machine.dp_fma_peak_gflops, "DP FMA peak"


def roofline_points(
    etype: ElementType,
    operator: Operator,
    n_elements: float,
    n_nodes: float,
    measured_rates: dict[str, float] | None = None,
    machine: FronteraMachine = FRONTERA,
    sellcs_occupancy: float | None = None,
) -> list[RooflinePoint]:
    """Roofline placement of the SPMV methods.

    ``measured_rates`` maps method → achieved GFLOP/s; when omitted the
    machine's single-core rates (calibrated from the paper's own Advisor
    run, Fig. 10) are used.  Methods the paper never measured on a lone
    core (``sellcs``) are placed *on* the attainable ceiling at their AI
    unless a measured rate is supplied — a model-only upper placement,
    flagged by the ceiling coinciding with the rate.  Bytes follow the
    Advisor all-level traffic convention — see
    :data:`repro.perfmodel.counters.ADVISOR_TRAFFIC_FACTOR`.
    ``sellcs_occupancy`` moves the sellcs point to a measured/tuned
    padding level instead of the model default.
    """
    default_rates = dict(machine.rates.single_core_gflops)
    rates = {**default_rates, **(measured_rates or {})}
    out = []
    for method in ("hymv", "assembled", "matfree", "sellcs"):
        c = advisor_counters(
            method, etype, operator, n_elements, n_nodes,
            sellcs_occupancy=sellcs_occupancy,
        )
        ceiling, bound = _ceiling(c.arithmetic_intensity, machine)
        gf = rates.get(method)
        if gf is None:
            gf = ceiling
        # points above the DRAM line are cache-resident traffic (Advisor
        # counts all levels), exactly as in the paper's plot
        out.append(
            RooflinePoint(
                method=method,
                arithmetic_intensity=c.arithmetic_intensity,
                gflops=gf,
                bound=bound if gf <= ceiling else "cache",
            )
        )
    return out


def render_ascii(
    points: list[RooflinePoint], machine: FronteraMachine = FRONTERA
) -> str:
    """A small log-log ASCII roofline (for the harness output)."""
    import math

    cols, rows = 64, 16
    ai_lo, ai_hi = 1e-3, 1e3
    gf_lo, gf_hi = 1e-2, 1e2
    grid = [[" "] * cols for _ in range(rows)]

    def col(ai):
        return int(
            (math.log10(ai) - math.log10(ai_lo))
            / (math.log10(ai_hi) - math.log10(ai_lo))
            * (cols - 1)
        )

    def row(gf):
        frac = (math.log10(gf) - math.log10(gf_lo)) / (
            math.log10(gf_hi) - math.log10(gf_lo)
        )
        return rows - 1 - int(frac * (rows - 1))

    for j in range(cols):
        ai = ai_lo * (ai_hi / ai_lo) ** (j / (cols - 1))
        ceil, _ = _ceiling(ai, machine)
        rr = row(min(max(ceil, gf_lo), gf_hi))
        grid[rr][j] = "."
    for p in points:
        rr = row(min(max(p.gflops, gf_lo), gf_hi))
        cc = col(min(max(p.arithmetic_intensity, ai_lo), ai_hi))
        grid[rr][cc] = p.method[0].upper()
    legend = "  ".join(f"{p.method[0].upper()}={p.method}" for p in points)
    return "\n".join("".join(r) for r in grid) + "\n" + legend
