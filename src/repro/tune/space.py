"""Declarative search space: typed knobs over the system's tunables.

A :class:`Knob` is an ordered grid of admissible values (ranges are
materialized as explicit grids — linear or log-spaced — so every search
strategy moves on the same discrete lattice and configs fingerprint
stably).  Knobs may be *conditional* on the rest of the config (the SELL
``(C, sigma)`` pair only matters when the backend crossover routes any
shape to sellcs); inactive knobs are pinned to their default so two
configs that differ only in dead knobs share one fingerprint and one
evaluation-cache entry.

:data:`default_space` covers every hand-picked default the system
exposes: GPU streams ``Ns``, chunk count, micro-batch cap, cache
capacity, queue bound, fused-vs-classic CG, the GEMM ``k_min``
crossover, the HYMV-vs-SELL backend crossover, and SELL ``(C, sigma)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.sellcs import DEFAULT_C, DEFAULT_SIGMA_FACTOR

__all__ = [
    "Knob",
    "SearchSpace",
    "bool_knob",
    "choice_knob",
    "default_space",
    "int_knob",
]


@dataclass(frozen=True)
class Knob:
    """One typed, ordered tunable.

    ``values`` is the full admissible grid in search order (adjacent
    entries are "neighbors" for hill-climb moves); ``condition`` gates
    the knob on the rest of the config — an inactive knob is pinned to
    ``default`` by :meth:`SearchSpace.normalize`.
    """

    name: str
    values: tuple
    default: Any
    kind: str = "choice"  # "int" | "choice" | "bool"
    log: bool = False  # grid was log-spaced (documentation of intent)
    condition: Callable[[dict], bool] | None = field(
        default=None, compare=False
    )

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"knob {self.name!r} has an empty grid")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"knob {self.name!r} grid has duplicates")
        if self.default not in self.values:
            raise ValueError(
                f"knob {self.name!r} default {self.default!r} not on the grid"
            )

    def active(self, config: dict) -> bool:
        return self.condition is None or bool(self.condition(config))

    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "values": list(self.values),
            "default": self.default,
            "log": self.log,
            "conditional": self.condition is not None,
        }


def int_knob(
    name: str,
    lo: int,
    hi: int,
    default: int,
    *,
    log: bool = False,
    step: int = 1,
    condition: Callable[[dict], bool] | None = None,
) -> Knob:
    """An integer range knob, materialized as an explicit grid.

    ``log=True`` doubles from ``lo`` to ``hi`` (powers-of-two ladder,
    the natural spacing for stream counts and batch caps); otherwise the
    grid is ``lo, lo+step, ...``.
    """
    if log:
        vals, v = [], int(lo)
        while v < hi:
            vals.append(v)
            v *= 2
        vals.append(int(hi))
    else:
        vals = list(range(int(lo), int(hi) + 1, int(step)))
        if vals[-1] != hi:
            vals.append(int(hi))
    return Knob(
        name=name, values=tuple(vals), default=default, kind="int",
        log=log, condition=condition,
    )


def choice_knob(
    name: str,
    values: tuple,
    default: Any,
    condition: Callable[[dict], bool] | None = None,
) -> Knob:
    return Knob(
        name=name, values=tuple(values), default=default, kind="choice",
        condition=condition,
    )


def bool_knob(
    name: str,
    default: bool,
    condition: Callable[[dict], bool] | None = None,
) -> Knob:
    return Knob(
        name=name, values=(False, True), default=default, kind="bool",
        condition=condition,
    )


@dataclass(frozen=True)
class SearchSpace:
    """An ordered collection of knobs with seeded move operators.

    Every operator (sample, neighbor, mutate, crossover) draws from a
    caller-supplied ``numpy`` generator and returns a *normalized*
    config — values on the grid, inactive knobs pinned — so identical
    seeds give identical search trajectories on every machine.
    """

    knobs: tuple

    def __post_init__(self):
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob names in {names}")

    def knob(self, name: str) -> Knob:
        for k in self.knobs:
            if k.name == name:
                return k
        raise KeyError(name)

    def default_config(self) -> dict:
        return {k.name: k.default for k in self.knobs}

    def normalize(self, config: dict) -> dict:
        """Project onto the space: every knob present, every value on its
        grid, inactive knobs pinned to their default.

        Conditions are evaluated against the partially-normalized config
        in knob order, so conditional knobs may only depend on knobs
        declared before them (the declaration order is the dependency
        order).
        """
        out: dict = {}
        for k in self.knobs:
            v = config.get(k.name, k.default)
            if v not in k.values:
                raise ValueError(
                    f"knob {k.name!r}: value {v!r} not on the grid {k.values}"
                )
            out[k.name] = v if k.active(out) else k.default
        return out

    def fingerprint(self, config: dict) -> str:
        """Stable short hash of the normalized config (the evaluation
        cache key): configs that differ only in inactive knobs collide
        by construction."""
        canon = json.dumps(self.normalize(config), sort_keys=True)
        return hashlib.sha1(canon.encode()).hexdigest()[:12]

    # ------------------------------------------------------------------
    # seeded move operators
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> dict:
        """One uniform draw per knob (inactive knobs then pinned)."""
        cfg = {
            k.name: k.values[int(rng.integers(len(k.values)))]
            for k in self.knobs
        }
        return self.normalize(cfg)

    def neighbor(self, config: dict, rng: np.random.Generator) -> dict:
        """One hill-climb move: pick an active knob uniformly, step one
        grid position up or down (choices/bools jump to a different
        value)."""
        config = self.normalize(config)
        active = [k for k in self.knobs if k.active(config)]
        k = active[int(rng.integers(len(active)))]
        i = k.values.index(config[k.name])
        if k.kind == "int" and len(k.values) > 1:
            j = i + (1 if rng.random() < 0.5 else -1)
            j = min(max(j, 0), len(k.values) - 1)
            if j == i:  # bounced off the edge: step the other way
                j = i + (1 if i == 0 else -1)
        else:
            others = [jj for jj in range(len(k.values)) if jj != i]
            if not others:
                return config
            j = others[int(rng.integers(len(others)))]
        out = dict(config)
        out[k.name] = k.values[j]
        return self.normalize(out)

    def mutate(
        self, config: dict, rng: np.random.Generator, p: float = 0.3
    ) -> dict:
        """Evolutionary mutation: each knob independently resampled with
        probability ``p`` (grid-uniform)."""
        config = self.normalize(config)
        out = dict(config)
        for k in self.knobs:
            if rng.random() < p:
                out[k.name] = k.values[int(rng.integers(len(k.values)))]
        return self.normalize(out)

    def crossover(
        self, a: dict, b: dict, rng: np.random.Generator
    ) -> dict:
        """Uniform crossover of two parents."""
        a, b = self.normalize(a), self.normalize(b)
        child = {
            k.name: (a if rng.random() < 0.5 else b)[k.name]
            for k in self.knobs
        }
        return self.normalize(child)

    def describe(self) -> list[dict]:
        return [k.describe() for k in self.knobs]


def _sell_routed(cfg: dict) -> bool:
    # the (C, sigma) pair only matters once the backend crossover can
    # route at least one shape to the SELL backend
    return cfg.get("sellcs_crossover_dofs", 0) > 0


def default_space() -> SearchSpace:
    """The full system search space (ISSUE 10's knob inventory)."""
    return SearchSpace(knobs=(
        # GPU stream pipeline (Algorithm 3)
        choice_knob("n_streams", (1, 2, 4, 8, 16), default=8),
        int_knob("gpu_chunks", 2, 64, default=8, log=True),
        # serving tier
        choice_knob("max_batch", (2, 4, 6, 8, 12, 16, 24, 32), default=8),
        choice_knob("cache_capacity", (1, 2, 3, 4, 6, 8), default=2),
        int_knob("queue_capacity", 8, 128, default=32, log=True),
        # solver
        bool_knob("fused_cg", default=True),
        # BLAS3 crossover
        int_knob("gemm_k_min", 1, 32, default=8, log=True),
        # backend routing: largest dof count still served by SELL
        # (0 = every shape stays on HYMV)
        choice_knob(
            "sellcs_crossover_dofs",
            (0, 100, 400, 1000, 5000, 20000),
            default=0,
        ),
        # SELL-C-sigma layout, live only when some shape routes to it
        choice_knob(
            "sell_c", (4, 8, 16, 32, 64), default=DEFAULT_C,
            condition=_sell_routed,
        ),
        choice_knob(
            "sell_sigma_factor", (1, 2, 8, 16),
            default=DEFAULT_SIGMA_FACTOR, condition=_sell_routed,
        ),
    ))
