"""``python -m repro.harness tune`` — the autotuner entry point.

Pipeline: calibrate the perfmodel from the checked-in measured reports,
run the seeded strategy battery over the full search space, keep the
Pareto front over (throughput, p99, memory), and pick the winner — the
best-scoring config that is **no worse than the hand-picked default on
every gated metric** (the default itself always qualifies, so the
winner can never regress it).  Everything runs in virtual time or
against the cost model, so the ``TUNE_report.json`` is bit-reproducible
given the seed — the CI determinism gate diffs two runs.

Artifacts:

* ``TUNE_report.json`` — schema ``repro.tune/1``: the full trajectory,
  Pareto front, calibrated constants, default and winner;
* ``tuned_config.json`` — schema ``repro.tune-config/1``: just the
  winning knobs, consumable by ``SolverService(tuned=...)`` and the
  serve/shard harness ``--tuned-from`` flags;
* ``BENCH_tune.json`` — the standard bench projection so
  ``repro.obs.compare`` can gate default-vs-winner phases against a
  checked-in baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.obs.schema import (
    new_bench_doc,
    new_tune_doc,
    validate_bench_doc,
    validate_tune_doc,
)
from repro.tune.calibration import TunedConfig, fit_machine_constants
from repro.tune.evaluate import GATED_METRICS, EvalResult, Evaluator
from repro.tune.pareto import pareto_front
from repro.tune.space import default_space
from repro.tune.strategies import run_search

__all__ = ["main", "run_tune"]

_DEFAULT_KERNELS = pathlib.Path("benchmarks/baseline/BENCH_kernels.json")
_DEFAULT_SELLCS = pathlib.Path("benchmarks/baseline/BENCH_sellcs.json")


def _qualifies(cand: EvalResult, default: EvalResult) -> bool:
    """Winner gate: no gated metric regresses the hand-picked default."""
    return all(
        cand.metrics[k] <= default.metrics[k] for k in GATED_METRICS
    )


def run_tune(
    seed: int = 1234,
    budget: int = 20,
    kernels_baseline=None,
    sellcs_baseline=None,
    machine_profile: str = "frontera-rtx5000",
    verbose: bool = True,
) -> dict:
    """Run the full tuning pipeline; returns a validated TUNE doc."""
    calibrated = fit_machine_constants(kernels_baseline, sellcs_baseline)
    if verbose and calibrated is not None:
        print(
            f"[tune] calibrated emv={calibrated.get('emv_gflops', 0):.3g} "
            f"csr={calibrated.get('csr_gflops', 0):.3g} "
            f"sellcs={calibrated.get('sellcs_gflops', 0):.3g} GF/s, "
            f"rank agreement "
            f"{calibrated.get('rank_agreement', 0):.0%} over "
            f"{calibrated.get('rank_cases', 0)} case(s)"
        )
    space = default_space()
    evaluator = Evaluator(space, seed=seed, calibrated=calibrated)

    default = evaluator.evaluate(space.default_config())
    trajectory, results = run_search(space, evaluator, seed, budget)
    if verbose:
        print(
            f"[tune] {len(trajectory)} trials, "
            f"{evaluator.evaluations} evaluations, "
            f"{evaluator.cache_hits} cache hits"
        )

    front = pareto_front([default, *results])
    qualified = [r for r in [default, *results] if _qualifies(r, default)]
    winner = min(qualified, key=lambda r: (r.score, r.fingerprint))
    if verbose:
        print(
            f"[tune] pareto front {len(front)} point(s); winner "
            f"{winner.fingerprint} score {winner.score:.4f} "
            f"(default {default.score:.4f})"
        )
        for name in sorted(
            k for k in winner.config if winner.config[k] != default.config[k]
        ):
            print(
                f"[tune]   {name}: {default.config[name]} -> "
                f"{winner.config[name]}"
            )

    doc = new_tune_doc(config={
        "seed": seed,
        "budget_per_strategy": budget,
        "kernels_baseline": str(kernels_baseline) if kernels_baseline else None,
        "sellcs_baseline": str(sellcs_baseline) if sellcs_baseline else None,
    })
    doc["machine_profile"] = machine_profile
    doc["space"] = space.describe()
    doc["calibrated"] = calibrated
    doc["trajectory"] = trajectory
    doc["evaluations"] = evaluator.evaluations
    doc["cache_hits"] = evaluator.cache_hits
    doc["pareto"] = [
        {
            "fingerprint": r.fingerprint,
            "config": dict(r.config),
            "objectives": r.objectives.to_dict(),
        }
        for r in front
    ]
    doc["default"] = default.as_winner()
    doc["winner"] = winner.as_winner()
    return validate_tune_doc(doc)


def _bench_doc(doc: dict) -> dict:
    """Project default-vs-winner onto the bench schema for the compare
    gate.  All phases are virtual-time/model numbers — machine-
    independent, so the checked-in baseline holds everywhere."""
    bench = new_bench_doc(suite="tune", repeats=1, config=dict(doc["config"]))
    winner_m = doc["winner"]["metrics"]
    default_m = doc["default"]["metrics"]
    regressions = sum(
        1 for k in GATED_METRICS if winner_m[k] > default_m[k]
    )
    for case, entry in (("tune-default", doc["default"]),
                        ("tune-winner", doc["winner"])):
        m = entry["metrics"]
        phases = {
            name: {"median": m[key], "min": m[key], "max": m[key],
                   "repeats": 1}
            for name, key in (
                ("tune.serve.time_per_req", "serve.time_per_req_s"),
                ("tune.serve.p99", "serve.p99_s"),
                ("tune.solve.total", "solve.vtime_s"),
                ("tune.model.gpu_pipeline", "model.gpu_pipeline_s"),
            )
        }
        counters = {
            "tune.mem_bytes": m["mem.bytes"],
            "tune.evaluations": doc["evaluations"],
            "tune.winner_worse_than_default": regressions,
        }
        bench["results"].append({
            "case": case,
            "method": "tune",
            "n_parts": 1,
            "n_dofs": 0,
            "phases": phases,
            "counters": counters,
        })
    return validate_bench_doc(bench)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness tune",
        description="Autotuner: seeded search over the system knobs "
        "against virtual-time harness probes and the perfmodel; emits "
        "TUNE_report.json, tuned_config.json and BENCH_tune.json",
    )
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument(
        "--budget", type=int, default=None,
        help="trials per strategy (default: 20, or 12 with --smoke)",
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI-sized budget (same pipeline, fewer trials)",
    )
    ap.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("TUNE_report.json"),
    )
    ap.add_argument(
        "--tuned-out", type=pathlib.Path,
        default=pathlib.Path("tuned_config.json"),
        help="winning-knobs artifact for SolverService/--tuned-from",
    )
    ap.add_argument(
        "--bench-out", type=pathlib.Path,
        default=pathlib.Path("BENCH_tune.json"),
        help="bench-schema projection for the compare gate",
    )
    ap.add_argument(
        "--kernels-baseline", type=pathlib.Path, default=_DEFAULT_KERNELS,
        help="measured kernels report to calibrate from (missing: skip)",
    )
    ap.add_argument(
        "--sellcs-baseline", type=pathlib.Path, default=_DEFAULT_SELLCS,
        help="measured sellcs report to calibrate from (missing: skip)",
    )
    ap.add_argument("--machine-profile", default="frontera-rtx5000")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    budget = args.budget if args.budget is not None else (12 if args.smoke else 20)
    doc = run_tune(
        seed=args.seed,
        budget=budget,
        kernels_baseline=args.kernels_baseline,
        sellcs_baseline=args.sellcs_baseline,
        machine_profile=args.machine_profile,
        verbose=not args.quiet,
    )
    tuned = TunedConfig(doc["winner"]["config"], source=str(args.out))
    bench = _bench_doc(doc)
    for path, payload in (
        (args.out, doc),
        (args.tuned_out, tuned.to_doc()),
        (args.bench_out, bench),
    ):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if not args.quiet:
        print(
            f"[tune] wrote {args.out}, {args.tuned_out} and {args.bench_out}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
