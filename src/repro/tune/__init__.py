"""repro.tune — autotuner & design-space exploration.

Declarative search space over every system knob (GPU streams, batching,
caching, crossovers, SELL layout), seeded deterministic strategies
scored by virtual-time harness probes and the perfmodel, multi-objective
Pareto pruning, and perfmodel calibration from measured bench reports.

Entry point: ``python -m repro.harness tune``.

This package root only exposes the dependency-light pieces (space,
Pareto, calibration) so that ``repro.serve`` can import
:func:`~repro.tune.calibration.load_tuned_config` without a cycle; the
evaluator, strategies and CLI (which import the serve/harness tiers)
load on demand from their own modules.
"""

from repro.tune.calibration import (
    TunedConfig,
    calibrated_machine,
    fit_machine_constants,
    load_tuned_config,
)
from repro.tune.pareto import Objectives, dominates, pareto_front
from repro.tune.space import Knob, SearchSpace, default_space

__all__ = [
    "Knob",
    "Objectives",
    "SearchSpace",
    "TunedConfig",
    "calibrated_machine",
    "default_space",
    "dominates",
    "fit_machine_constants",
    "load_tuned_config",
    "pareto_front",
]
