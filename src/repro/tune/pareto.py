"""Multi-objective scoring: dominance pruning and the Pareto front.

The tuner scores every candidate on three axes — serving throughput
(maximize), tail latency p99 (minimize), and resident memory footprint
(minimize).  :func:`pareto_front` keeps the non-dominated set; the front
is computed over a canonically sorted copy of the input so the result is
invariant to evaluation order (a property the hypothesis suite pins
down).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Objectives", "dominates", "pareto_front"]


@dataclass(frozen=True)
class Objectives:
    """One candidate's scores. Throughput is maximized, the rest minimized."""

    throughput_rps: float
    p99_s: float
    mem_bytes: float

    def as_min_tuple(self) -> tuple[float, float, float]:
        """All-minimization view (throughput negated) used for dominance."""
        return (-self.throughput_rps, self.p99_s, self.mem_bytes)

    def to_dict(self) -> dict:
        return {
            "throughput_rps": self.throughput_rps,
            "p99_s": self.p99_s,
            "mem_bytes": self.mem_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Objectives":
        return cls(
            throughput_rps=float(d["throughput_rps"]),
            p99_s=float(d["p99_s"]),
            mem_bytes=float(d["mem_bytes"]),
        )


def dominates(a: Objectives, b: Objectives) -> bool:
    """True iff ``a`` is no worse than ``b`` on every axis and strictly
    better on at least one (strict Pareto dominance)."""
    ta, tb = a.as_min_tuple(), b.as_min_tuple()
    return all(x <= y for x, y in zip(ta, tb)) and any(
        x < y for x, y in zip(ta, tb)
    )


def pareto_front(candidates: list) -> list:
    """Non-dominated subset of ``candidates``.

    Each candidate is an object with ``.objectives`` (an
    :class:`Objectives`) and ``.fingerprint`` (a stable id).  Duplicate
    fingerprints collapse to one entry.  The scan runs over a canonical
    sort (objective tuple, then fingerprint), so the returned front —
    including its order — does not depend on the order candidates were
    evaluated in.
    """
    by_fp: dict = {}
    for c in candidates:
        by_fp.setdefault(c.fingerprint, c)
    pool = sorted(
        by_fp.values(),
        key=lambda c: (c.objectives.as_min_tuple(), c.fingerprint),
    )
    front = []
    for c in pool:
        if not any(dominates(f.objectives, c.objectives) for f in front):
            front.append(c)
    return front
