"""Candidate evaluation: virtual-time probes + perfmodel scoring.

Every config is scored by four deterministic sub-probes, each cached on
the exact knob subset it reads (so a hill-climb step that only moves
``n_streams`` never re-runs the serving probe):

* **serve** — a short open-loop workload through the real
  :class:`~repro.serve.service.SolverService` in virtual time
  (throughput, p99, per-request latency), with the config's backend
  crossover and SELL ``(C, sigma)`` defaults installed;
* **solve** — one distributed CG solve in pure virtual time
  (fused vs classic iteration);
* **layout** — an exact SELL-C-sigma build of a reference stencil
  matrix (occupancy and stored bytes, the padding the memory objective
  charges);
* **model** — the perfmodel's GPU stream-pipeline costs
  (:func:`~repro.perfmodel.costs.gpu_spmv_time` and the SELL streamed-
  chunk branch) on the paper's Fig. 8 granularity, on a machine model
  optionally re-rated by the calibration stage.

The whole-config cache keys on the space fingerprint, so two configs
differing only in inactive knobs share one evaluation — the cache-hit
accounting the tuner reports and the hypothesis suite checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.sellcs import (
    _SELL_DEFAULTS,
    build_sellcs,
    configure_sell_defaults,
)
from repro.fem.operators import ElasticityOperator
from repro.mesh.element import ElementType
from repro.perfmodel.costs import (
    CaseGeometry,
    gpu_spmv_time,
    sellcs_gpu_spmv_time,
)
from repro.tune.calibration import calibrated_machine
from repro.tune.pareto import Objectives
from repro.tune.space import SearchSpace

__all__ = ["BaseEvaluator", "EvalResult", "Evaluator"]

#: gated metrics (all minimized): the winner must be no worse than the
#: hand-picked default on every one of these
GATED_METRICS = (
    "serve.time_per_req_s",
    "serve.p99_s",
    "solve.vtime_s",
    "model.gpu_pipeline_s",
    "mem.bytes",
)


@dataclass(frozen=True)
class EvalResult:
    """One scored candidate."""

    fingerprint: str
    config: dict
    objectives: Objectives
    metrics: dict
    score: float
    cached: bool = False

    def as_trial(self, step: int, strategy: str) -> dict:
        return {
            "step": step,
            "strategy": strategy,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "objectives": self.objectives.to_dict(),
            "score": self.score,
            "cached": self.cached,
        }

    def as_winner(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "objectives": self.objectives.to_dict(),
            "metrics": dict(self.metrics),
            "score": self.score,
        }


def _score(metrics: dict) -> float:
    """Scalar rank: sum of log gated metrics (a geometric mean, so no
    single axis dominates by unit choice)."""
    return float(sum(math.log(max(metrics[k], 1e-300)) for k in GATED_METRICS))


class BaseEvaluator:
    """Fingerprint-keyed evaluation cache around an abstract probe.

    Subclasses implement ``_compute(config) -> metrics dict`` containing
    at least the :data:`GATED_METRICS` plus ``serve.throughput_rps``.
    Tests subclass this with an analytic stub; the real
    :class:`Evaluator` runs the harnesses.
    """

    def __init__(self, space: SearchSpace):
        self.space = space
        self.evaluations = 0
        self.cache_hits = 0
        self._cache: dict[str, EvalResult] = {}

    def evaluate(self, config: dict) -> EvalResult:
        config = self.space.normalize(config)
        fp = self.space.fingerprint(config)
        hit = self._cache.get(fp)
        if hit is not None:
            self.cache_hits += 1
            return EvalResult(
                fp, hit.config, hit.objectives, hit.metrics, hit.score,
                cached=True,
            )
        self.evaluations += 1
        metrics = self._compute(config)
        res = EvalResult(
            fingerprint=fp,
            config=config,
            objectives=Objectives(
                throughput_rps=metrics["serve.throughput_rps"],
                p99_s=metrics["serve.p99_s"],
                mem_bytes=metrics["mem.bytes"],
            ),
            metrics=metrics,
            score=_score(metrics),
        )
        self._cache[fp] = res
        return res

    def _compute(self, config: dict) -> dict:
        raise NotImplementedError


def _reference_stencil(n: int = 13) -> sp.csr_matrix:
    """A 3-D 27-point stencil on an ``n**3`` grid — the deterministic
    reference sparsity for layout probes (boundary rows are shorter, so
    ``(C, sigma)`` genuinely moves occupancy)."""
    one = sp.diags(
        [np.ones(n - 1), np.ones(n), np.ones(n - 1)], [-1, 0, 1],
        format="csr",
    )
    return sp.kron(sp.kron(one, one), one).tocsr()


class Evaluator(BaseEvaluator):
    """The real probe battery (virtual-time harness runs + perfmodel)."""

    #: dofs of the serving probe's hot key (poisson tet4 nel=4)
    _SERVE_DOFS = 125

    def __init__(self, space: SearchSpace, seed: int = 1234, calibrated=None):
        super().__init__(space)
        self.seed = seed
        self.calibrated = dict(calibrated) if calibrated else None
        self.machine = calibrated_machine(self.calibrated)
        self._serve_cache: dict = {}
        self._solve_cache: dict = {}
        self._layout_cache: dict = {}
        self._model_cache: dict = {}
        self._geo = CaseGeometry.from_granularity(
            ElementType.HEX8, ElasticityOperator(),
            dofs_per_process=1.0e6, n_ranks=2,
        )

    # -- sub-probes ----------------------------------------------------

    def _serve_probe(self, config: dict) -> dict:
        key = tuple(
            config[k]
            for k in (
                "max_batch", "queue_capacity", "cache_capacity",
                "gemm_k_min", "sellcs_crossover_dofs", "sell_c",
                "sell_sigma_factor",
            )
        )
        if key in self._serve_cache:
            return self._serve_cache[key]
        from repro.serve.cache import ProblemKey
        from repro.serve.loadgen import Workload, run_workload

        crossover = config["sellcs_crossover_dofs"]
        w = Workload(
            name="tune-probe",
            keys=(
                ProblemKey(problem="poisson", nel=3, n_parts=2,
                           etype="tet4", seed=1),
                ProblemKey(problem="poisson", nel=4, n_parts=2,
                           etype="tet4", seed=2),
            ),
            arrival="open",
            n_requests=24,
            rate_rps=20000.0,
            solve_frac=0.25,
            max_batch=config["max_batch"],
            queue_capacity=config["queue_capacity"],
            cache_capacity=config["cache_capacity"],
            k_min=config["gemm_k_min"],
            backend="auto" if crossover > 0 else None,
            sellcs_crossover_dofs=crossover if crossover > 0 else None,
            verify=False,
        )
        saved = list(_SELL_DEFAULTS)
        try:
            configure_sell_defaults(
                config["sell_c"],
                config["sell_sigma_factor"] * config["sell_c"],
            )
            sc = run_workload(w, seed=self.seed)
        finally:
            _SELL_DEFAULTS[:] = saved
        lat = sc["latency_s"].get("all", {})
        thr = sc["throughput_rps"]
        out = {
            "serve.throughput_rps": thr,
            "serve.p99_s": float(lat.get("p99", 0.0)),
            "serve.time_per_req_s": 1.0 / thr if thr > 0 else float("inf"),
        }
        self._serve_cache[key] = out
        return out

    def _solve_probe(self, config: dict) -> dict:
        key = (config["fused_cg"],)
        if key in self._solve_cache:
            return self._solve_cache[key]
        from repro.harness.driver import run_solve
        from repro.problems import elastic_bar_problem

        # elastic needs ~130 CG iterations, so the fused iteration's
        # halved allreduce count shows up in the virtual solve time
        outcome = run_solve(
            elastic_bar_problem(4, 2, ElementType.HEX8), "hymv",
            rtol=1e-8, maxiter=400, compute_scale=0.0,
            cg_fused=config["fused_cg"],
        )
        out = {
            "solve.vtime_s": float(outcome.solve_time),
            "solve.iterations": int(outcome.iterations),
        }
        self._solve_cache[key] = out
        return out

    def _layout_probe(self, config: dict) -> dict:
        key = (config["sell_c"], config["sell_sigma_factor"])
        if key in self._layout_cache:
            return self._layout_cache[key]
        C = config["sell_c"]
        sellcs = build_sellcs(
            _reference_stencil(), C, config["sell_sigma_factor"] * C
        )
        out = {
            "layout.occupancy": float(sellcs.occupancy),
            "layout.stored_bytes": float(sellcs.stored_bytes()),
            "layout.bytes_per_dof": sellcs.stored_bytes() / sellcs.n_rows,
        }
        self._layout_cache[key] = out
        return out

    def _model_probe(self, config: dict, occupancy: float) -> dict:
        key = (
            config["n_streams"], config["gpu_chunks"], config["sell_c"],
            config["sell_sigma_factor"],
        )
        if key in self._model_cache:
            return self._model_cache[key]
        op = ElasticityOperator()
        t_hymv = gpu_spmv_time(
            self._geo, op, machine=self.machine,
            n_streams=config["n_streams"],
        )
        t_sell = sellcs_gpu_spmv_time(
            self._geo, op, machine=self.machine,
            n_streams=config["n_streams"], n_chunks=config["gpu_chunks"],
            C=config["sell_c"], occupancy=occupancy,
        )
        out = {
            "model.gpu_hymv_s": t_hymv,
            "model.gpu_sellcs_s": t_sell,
            "model.gpu_pipeline_s": min(t_hymv, t_sell),
        }
        self._model_cache[key] = out
        return out

    def _mem_model(self, config: dict, layout: dict) -> float:
        """Coarse resident-footprint model of the serving tier: cached
        operator contexts + queue slots + in-flight batch columns."""
        nd = self._SERVE_DOFS
        if config["sellcs_crossover_dofs"] > 0:
            # SELL routing keeps both layouts resident (assembled CSR +
            # sorted padded slices) — charge the measured per-dof rate
            ctx_bytes = nd * (27 * 12 + layout["layout.bytes_per_dof"])
        else:
            # HYMV: stored element matrices dominate (~2 CSR's worth)
            ctx_bytes = nd * 27 * 8 * 2
        return float(
            config["cache_capacity"] * ctx_bytes
            + config["queue_capacity"] * nd * 8
            + config["max_batch"] * nd * 8 * 2
        )

    # -- whole-config probe --------------------------------------------

    def _compute(self, config: dict) -> dict:
        metrics: dict = {}
        metrics.update(self._serve_probe(config))
        metrics.update(self._solve_probe(config))
        layout = self._layout_probe(config)
        metrics.update(layout)
        metrics.update(
            self._model_probe(config, layout["layout.occupancy"])
        )
        metrics["mem.bytes"] = self._mem_model(config, layout)
        return metrics
