"""Tuned-config loading and perfmodel calibration from measured reports.

Two jobs live here, deliberately free of any ``repro.serve`` import so
the serving tier can consume tuned configs without a cycle:

* :class:`TunedConfig` / :func:`load_tuned_config` — the *single*
  loader for every calibrated-artifact format the repo has grown:
  ``repro.tune-config/1`` documents (the autotuner's native artifact),
  full ``repro.tune/1`` reports (the winner's config is extracted), and
  legacy ``repro.bench/1`` reports whose ``config`` block carries the
  one-off crossover fields (``gemm_k_min_crossover``,
  ``sellcs_crossover_dofs``).  The old ``--k-min-from`` loaders in
  ``repro.serve.loadgen`` now delegate here.

* :func:`fit_machine_constants` — least-squares fit of the perfmodel's
  effective machine rates (EMV sweep, CSR SPMV, SELL slice sweep) from
  measured ``BENCH_kernels``/``BENCH_sellcs`` reports, with a rank-
  agreement check that the calibrated model orders backends the way the
  measurements do.  The affine fit ``t = a + f·b`` is clamped: a
  negative intercept or non-positive slope (possible on noisy two-point
  data) falls back to the through-origin estimator ``b = Σf·t / Σf²``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.obs.schema import (
    BENCH_SCHEMA,
    TUNE_CONFIG_SCHEMA,
    TUNE_SCHEMA,
)
from repro.perfmodel.machine import FRONTERA, FronteraMachine

__all__ = [
    "TunedConfig",
    "calibrated_machine",
    "fit_machine_constants",
    "load_tuned_config",
]

#: legacy repro.bench/1 config keys → tuned-config knob names
_LEGACY_KEYS = {
    "gemm_k_min_crossover": "gemm_k_min",
    "sellcs_crossover_dofs": "sellcs_crossover_dofs",
}

#: analytic per-SPMV HYMV flop counts for the kernel-suite cases
#: (2 · n_elements · (nodes_per_elem · dofs_per_node)², the batched
#: dense EMV sweep) — paired with the measured per-call medians to fit
#: the EMV rate
_KERNEL_CASE_FLOPS = {
    "poisson-hex8-medium": 2.0 * 8000 * (8 * 1) ** 2,
    "elastic-bar-hex8-medium": 2.0 * 1024 * (8 * 3) ** 2,
}


class TunedConfig:
    """A named bag of tuned knob values with dict-like ``get``.

    Consumers (``SolverService``, the kernel benches) duck-type against
    ``get`` only, so they never import this module.
    """

    def __init__(self, values: dict, source: str = ""):
        self.values = dict(values)
        self.source = source

    def get(self, name: str, default=None):
        v = self.values.get(name, default)
        return default if v is None else v

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def __repr__(self) -> str:
        return f"TunedConfig({self.values!r}, source={self.source!r})"

    def to_doc(self) -> dict:
        return {
            "schema": TUNE_CONFIG_SCHEMA,
            "config": dict(self.values),
            "source": self.source,
        }


def load_tuned_config(path) -> TunedConfig | None:
    """Load a tuned config from any supported artifact, or ``None``.

    Accepts ``repro.tune-config/1`` documents, ``repro.tune/1`` reports
    (winner's config), and legacy ``repro.bench/1`` reports (crossover
    fields only).  A missing, unreadable, or unrecognized file yields
    ``None`` — callers fall back to hand-picked defaults.
    """
    if path is None:
        return None
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict):
        return None
    schema = doc.get("schema")
    if schema == TUNE_CONFIG_SCHEMA:
        cfg = doc.get("config")
        if isinstance(cfg, dict):
            return TunedConfig(cfg, source=str(path))
        return None
    if schema == TUNE_SCHEMA:
        winner = doc.get("winner") or {}
        cfg = winner.get("config")
        if isinstance(cfg, dict):
            return TunedConfig(cfg, source=str(path))
        return None
    # legacy fallback: any bench-style doc (repro.bench/1 or the older
    # schema-less reports) whose config block carries the one-off
    # crossover fields
    cfg = doc.get("config")
    if schema in (BENCH_SCHEMA, None) and isinstance(cfg, dict):
        values = {
            new: cfg[old]
            for old, new in _LEGACY_KEYS.items()
            if cfg.get(old) is not None
        }
        if values:
            return TunedConfig(values, source=str(path))
    return None


# ----------------------------------------------------------------------
# machine-constant calibration
# ----------------------------------------------------------------------


def _affine_fit(points: list) -> tuple[float, float]:
    """Fit ``t = a + f·b`` over ``points = [(flops, seconds), ...]``.

    Returns ``(a, b)`` with ``a >= 0`` and ``b > 0``: an inadmissible
    least-squares solution (negative overhead or non-positive rate,
    which two noisy points can produce) falls back to the through-origin
    fit ``b = Σf·t / Σf²``.
    """
    f = np.asarray([p[0] for p in points], dtype=float)
    t = np.asarray([p[1] for p in points], dtype=float)
    a, b = 0.0, 0.0
    if len(points) >= 2:
        design = np.stack([np.ones_like(f), f], axis=1)
        (a, b), *_ = np.linalg.lstsq(design, t, rcond=None)
    if len(points) < 2 or a < 0.0 or b <= 0.0:
        a, b = 0.0, float(np.sum(f * t) / np.sum(f * f))
    return float(a), float(b)


def _fit_block(points: list) -> dict:
    a, b = _affine_fit(points)
    return {
        "gflops": 1.0 / (b * 1e9),
        "overhead_s": a,
        "n_points": len(points),
    }


def _load_bench(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA:
        return doc
    return None


def _median(row: dict, phase: str = "spmv.total"):
    ph = row.get("phases", {}).get(phase)
    return None if ph is None else float(ph["median"])


def fit_machine_constants(
    kernels_path=None, sellcs_path=None
) -> dict | None:
    """Calibrate effective rates from measured bench reports.

    Fits three rate/overhead pairs (EMV from the kernels suite, CSR and
    SELL slice-sweep from the sellcs suite), extracts the measured SELL
    occupancy at the default ``(C, sigma) = (32, 256)`` layout, carries
    over the measured GEMM ``k_min`` crossover, and scores
    ``rank_agreement``: the fraction of cases where the calibrated model
    predicts the same assembled-vs-SELL winner the measurements show.
    Returns ``None`` when neither report is readable.
    """
    kernels = _load_bench(kernels_path) if kernels_path else None
    sellcs = _load_bench(sellcs_path) if sellcs_path else None
    if kernels is None and sellcs is None:
        return None
    out: dict = {"machine": "measured"}

    if kernels is not None:
        pts = []
        for row in kernels.get("results", ()):
            flops = _KERNEL_CASE_FLOPS.get(row.get("case"))
            med = _median(row)
            if (
                flops is not None
                and med is not None
                and row.get("method") == "hymv-einsum-workspace"
            ):
                pts.append((flops, med))
        if pts:
            fit = _fit_block(pts)
            out["emv_gflops"] = fit["gflops"]
            out["emv_overhead_s"] = fit["overhead_s"]
            out["emv_points"] = fit["n_points"]
        kcfg = kernels.get("config", {})
        if kcfg.get("gemm_k_min_crossover") is not None:
            out["gemm_k_min"] = int(kcfg["gemm_k_min_crossover"])

    if sellcs is not None:
        csr_pts, sell_pts, occs = [], [], []
        cases: dict = {}
        for row in sellcs.get("results", ()):
            med = _median(row)
            if med is None:
                continue
            case = row.get("case")
            method = row.get("method")
            counters = row.get("counters", {})
            if method == "assembled-spmv":
                cases.setdefault(case, {})["assembled"] = med
            elif method == "sellcs-C32-s256-spmv":
                padded = counters.get("sellcs.padded_nnz")
                occ = counters.get("sellcs.occupancy")
                if padded and occ:
                    # true nnz = padded · occupancy (the gauges are exact)
                    csr_flops = 2.0 * padded * occ
                    cases.setdefault(case, {}).update(
                        sellcs=med, nnz_flops=csr_flops,
                        padded_flops=2.0 * padded,
                    )
                    sell_pts.append((2.0 * padded, med))
                    occs.append(float(occ))
        for c in cases.values():
            if "assembled" in c and "nnz_flops" in c:
                csr_pts.append((c["nnz_flops"], c["assembled"]))
        if csr_pts:
            fit = _fit_block(csr_pts)
            out["csr_gflops"] = fit["gflops"]
            out["csr_overhead_s"] = fit["overhead_s"]
            out["csr_points"] = fit["n_points"]
        if sell_pts:
            fit = _fit_block(sell_pts)
            out["sellcs_gflops"] = fit["gflops"]
            out["sellcs_overhead_s"] = fit["overhead_s"]
            out["sellcs_points"] = fit["n_points"]
        if occs:
            out["sellcs_occupancy"] = float(np.mean(occs))
        scfg = sellcs.get("config", {})
        if scfg.get("sellcs_crossover_dofs") is not None:
            out["sellcs_crossover_dofs"] = int(scfg["sellcs_crossover_dofs"])

        # rank agreement: does the calibrated model order the two
        # assembled-format backends the way the measurements do?
        if csr_pts and sell_pts and "csr_gflops" in out:
            agree = total = 0
            for c in cases.values():
                if not {"assembled", "sellcs", "nnz_flops"} <= c.keys():
                    continue
                pred_a = out["csr_overhead_s"] + c["nnz_flops"] / (
                    out["csr_gflops"] * 1e9
                )
                pred_s = out["sellcs_overhead_s"] + c["padded_flops"] / (
                    out["sellcs_gflops"] * 1e9
                )
                total += 1
                if (pred_a <= pred_s) == (c["assembled"] <= c["sellcs"]):
                    agree += 1
            out["rank_agreement"] = agree / total if total else 0.0
            out["rank_cases"] = total

    out["n_points"] = sum(
        out.get(k, 0) for k in ("emv_points", "csr_points", "sellcs_points")
    )
    return out


def calibrated_machine(
    calibrated: dict | None, base: FronteraMachine = FRONTERA
) -> FronteraMachine:
    """A machine model with measured effective rates substituted in.

    Only the rates the calibration actually produced are replaced; the
    paper-calibrated constants remain for everything else.
    """
    if not calibrated:
        return base
    fields = {}
    if calibrated.get("emv_gflops"):
        fields["emv_gflops"] = float(calibrated["emv_gflops"])
    if calibrated.get("csr_gflops"):
        fields["csr_gflops"] = float(calibrated["csr_gflops"])
    if not fields:
        return base
    return replace(base, rates=replace(base.rates, **fields))
