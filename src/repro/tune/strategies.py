"""Seeded search strategies over a :class:`~repro.tune.space.SearchSpace`.

Three deliberately small, fully deterministic loops — pure functions of
``(space, evaluator, seed, budget)``:

* **random** — grid-uniform sampling (the coverage baseline);
* **hill-climb** — greedy single-knob moves with restarts, the first
  restart anchored at the hand-picked default so the winner can only
  walk *away* from it along improving moves;
* **evolutionary** — a (mu + lambda) loop with uniform crossover and
  per-knob mutation.

Every probe is appended to a shared trajectory (step, strategy, config,
objectives, score, cached) — the audit log the TUNE report carries.
Scores are "lower is better" (see :func:`repro.tune.evaluate._score`);
ties break on fingerprint so ordering never depends on dict iteration.
"""

from __future__ import annotations

import numpy as np

from repro.tune.evaluate import BaseEvaluator, EvalResult
from repro.tune.space import SearchSpace

__all__ = ["STRATEGIES", "evolutionary", "hill_climb", "random_search", "run_search"]


def _better(a: EvalResult, b: EvalResult) -> bool:
    """Strict "a beats b" with a deterministic fingerprint tiebreak."""
    return (a.score, a.fingerprint) < (b.score, b.fingerprint)


def random_search(
    space: SearchSpace,
    evaluator: BaseEvaluator,
    rng: np.random.Generator,
    budget: int,
    trajectory: list,
) -> list[EvalResult]:
    out = []
    for _ in range(budget):
        r = evaluator.evaluate(space.sample(rng))
        trajectory.append(r.as_trial(len(trajectory), "random"))
        out.append(r)
    return out


def hill_climb(
    space: SearchSpace,
    evaluator: BaseEvaluator,
    rng: np.random.Generator,
    budget: int,
    trajectory: list,
) -> list[EvalResult]:
    """Greedy coordinate descent with random restarts.

    Sweeps the knobs in declaration order, probing one grid step up and
    down per knob and moving on improvement; a full sweep with no
    improving move restarts from a fresh sample.  The first walk starts
    at the hand-picked default, so every single-knob improvement over
    the default is found deterministically (the rng is only consulted
    for restarts)."""
    out: list[EvalResult] = []

    def probe(cfg: dict) -> EvalResult:
        r = evaluator.evaluate(cfg)
        trajectory.append(r.as_trial(len(trajectory), "hill-climb"))
        out.append(r)
        return r

    cur = probe(space.default_config())
    while len(out) < budget:
        improved = False
        for knob in space.knobs:
            if len(out) >= budget:
                break
            if not knob.active(cur.config):
                continue
            i = knob.values.index(cur.config[knob.name])
            for j in (i + 1, i - 1):
                if len(out) >= budget or not 0 <= j < len(knob.values):
                    continue
                cand_cfg = dict(cur.config)
                cand_cfg[knob.name] = knob.values[j]
                cand = probe(space.normalize(cand_cfg))
                if _better(cand, cur):
                    cur, improved = cand, True
                    break
        if not improved and len(out) < budget:
            cur = probe(space.sample(rng))
    return out


def evolutionary(
    space: SearchSpace,
    evaluator: BaseEvaluator,
    rng: np.random.Generator,
    budget: int,
    trajectory: list,
    mu: int = 3,
    lam: int = 4,
    p_mutate: float = 0.3,
) -> list[EvalResult]:
    """A small (mu + lambda) loop seeded with the default config."""
    out: list[EvalResult] = []

    def probe(cfg: dict) -> EvalResult:
        r = evaluator.evaluate(cfg)
        trajectory.append(r.as_trial(len(trajectory), "evolutionary"))
        out.append(r)
        return r

    pop = [probe(space.default_config())]
    while len(out) < budget and len(pop) < mu:
        pop.append(probe(space.sample(rng)))
    while len(out) < budget:
        pop.sort(key=lambda r: (r.score, r.fingerprint))
        parents = pop[:mu]
        for _ in range(min(lam, budget - len(out))):
            a = parents[int(rng.integers(len(parents)))]
            b = parents[int(rng.integers(len(parents)))]
            child = space.mutate(
                space.crossover(a.config, b.config, rng), rng, p=p_mutate
            )
            pop.append(probe(child))
    return out


STRATEGIES = (
    ("random", random_search),
    ("hill-climb", hill_climb),
    ("evolutionary", evolutionary),
)


def run_search(
    space: SearchSpace,
    evaluator: BaseEvaluator,
    seed: int,
    budget_per_strategy: int,
) -> tuple[list, list[EvalResult]]:
    """Run every strategy under its own sub-seeded generator.

    Returns ``(trajectory, results)``; the trajectory is the flat audit
    log, ``results`` the evaluated candidates (cached re-probes
    included, so dominance analysis sees every visit).
    """
    trajectory: list = []
    results: list[EvalResult] = []
    for idx, (name, fn) in enumerate(STRATEGIES):
        rng = np.random.default_rng([seed, idx])
        results.extend(
            fn(space, evaluator, rng, budget_per_strategy, trajectory)
        )
    return trajectory, results
