"""CUDA-stream pipeline scheduler (the mechanism behind Fig. 3).

A device executes chunked work through three serial engines — the H2D
copy engine, the compute engine, and the D2H copy engine.  Work items in
one stream are ordered (H2D → kernel → D2H per chunk); items in different
streams overlap freely subject to engine availability.  This is exactly
the model CUDA exposes (one copy engine per direction on Quadro parts,
one compute queue), and it reproduces the interleaved timeline the paper
profiles with eight streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.perfmodel.machine import GPU_NODE, GpuModel

__all__ = ["StreamEvent", "StreamScheduler"]


@dataclass(frozen=True)
class StreamEvent:
    """One scheduled operation on the device timeline."""

    stream: int
    kind: str  # "h2d" | "kernel" | "d2h"
    chunk: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StreamScheduler:
    """Schedules chunked (H2D, kernel, D2H) triples over ``n_streams``.

    Chunks are issued round-robin to streams, as Algorithm 3 does with
    its ``Ns`` chunks of the element-matrix/vector arrays.
    """

    gpu: GpuModel = field(default_factory=lambda: GPU_NODE)
    n_streams: int = 8

    def __post_init__(self) -> None:
        if self.n_streams < 1:
            raise ValueError("need at least one stream")
        self.reset()

    def reset(self) -> None:
        self.events: list[StreamEvent] = []
        self._engine_free = {"h2d": 0.0, "kernel": 0.0, "d2h": 0.0}
        self._stream_free = [0.0] * self.n_streams
        self._t0 = 0.0

    def _issue(self, stream: int, kind: str, chunk: int, duration: float) -> float:
        start = max(self._engine_free[kind], self._stream_free[stream])
        end = start + duration
        self._engine_free[kind] = end
        self._stream_free[stream] = end
        self.events.append(StreamEvent(stream, kind, chunk, start, end))
        return end

    def run_batch(
        self,
        h2d_bytes: float,
        kernel_flops: float,
        kernel_bytes: float,
        d2h_bytes: float,
        n_chunks: int | None = None,
        kernel_scale: Sequence[float] | None = None,
    ) -> float:
        """Schedule a full batched EMV: the arrays are split into chunks
        (default: one per stream) and pipelined.  Returns the makespan.

        ``kernel_scale`` optionally multiplies the kernel duration of each
        chunk individually (length ``n_chunks``, factors >= 1) — a
        straggler-chunk model for fault-injection studies.
        """
        g = self.gpu
        if n_chunks is None:
            n_chunks = self.n_streams
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        if kernel_scale is not None:
            kernel_scale = list(kernel_scale)
            if len(kernel_scale) != n_chunks:
                raise ValueError(
                    f"kernel_scale has {len(kernel_scale)} entries "
                    f"for {n_chunks} chunks"
                )
            if any(f < 1.0 for f in kernel_scale):
                raise ValueError("kernel_scale factors must be >= 1")
        for c in range(n_chunks):
            s = c % self.n_streams
            self._issue(s, "h2d", c, h2d_bytes / n_chunks / (g.pcie_gbps * 1e9))
            t_k = max(
                kernel_bytes / n_chunks / (g.mem_gbps * 1e9),
                kernel_flops / n_chunks / (g.fp64_gflops * 1e9),
            ) + g.kernel_launch_s
            if kernel_scale is not None:
                t_k *= kernel_scale[c]
            self._issue(s, "kernel", c, t_k)
            self._issue(s, "d2h", c, d2h_bytes / n_chunks / (g.pcie_gbps * 1e9))
        return self.makespan

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def export_events(self, obs, t_offset: float = 0.0, prefix: str = "gpu"):
        """Append the scheduled device segments to an
        :class:`repro.obs.Instrumentation` event stream.

        Each segment becomes a ``{prefix}.s{stream}.{kind}`` interval of
        kind ``"gpu"`` offset by ``t_offset`` (the virtual time at which
        the batch was issued), so device pipelines line up with the rank
        timeline in :func:`repro.simmpi.trace.render_gantt` exports.
        """
        for e in self.events:
            obs.event(
                f"{prefix}.s{e.stream}.{e.kind}",
                t_offset + e.start,
                t_offset + e.end,
                kind="gpu",
                stream=e.stream,
                chunk=e.chunk,
            )

    def busy_time(self, kind: str) -> float:
        return sum(e.duration for e in self.events if e.kind == kind)

    def overlap_efficiency(self) -> float:
        """Serial-sum of all operations divided by the makespan (1.0 = no
        overlap; ~3.0 = perfect three-engine overlap)."""
        total = sum(e.duration for e in self.events)
        ms = self.makespan
        return total / ms if ms > 0 else 0.0

    def render_ascii(self, width: int = 72) -> str:
        """Fig. 3-style timeline: one row per (stream, engine) lane."""
        ms = self.makespan
        if ms == 0:
            return "(empty timeline)"
        sym = {"h2d": "H", "kernel": "K", "d2h": "D"}
        lanes: dict[tuple[int, str], list[str]] = {}
        for kind in ("h2d", "kernel", "d2h"):
            for s in range(self.n_streams):
                lanes[(s, kind)] = [" "] * width
        for e in self.events:
            a = int(e.start / ms * (width - 1))
            b = max(int(e.end / ms * (width - 1)), a + 1)
            row = lanes[(e.stream, e.kind)]
            for i in range(a, min(b, width)):
                row[i] = sym[e.kind]
        out = []
        for s in range(self.n_streams):
            for kind in ("h2d", "kernel", "d2h"):
                out.append(f"s{s}:{kind:6s} |" + "".join(lanes[(s, kind)]) + "|")
        out.append(f"makespan = {ms * 1e3:.3f} ms, "
                   f"overlap efficiency = {self.overlap_efficiency():.2f}x")
        return "\n".join(out)
