"""Simulated GPU backend (Algorithm 3).

The paper's GPU is an NVIDIA Quadro RTX 5000 driven through MAGMA batched
kernels and CUDA streams.  Here the device is simulated: the batched EMV
math runs in NumPy (bit-comparable to the CPU path, so every correctness
test covers the GPU code path too), while *timing* comes from the
calibrated :class:`repro.perfmodel.machine.GpuModel` through an explicit
three-engine stream scheduler (H2D copy engine, compute engine, D2H copy
engine) that reproduces the copy/kernel overlap of the paper's Fig. 3.

Components:

* :mod:`repro.gpu.streams` — the stream pipeline scheduler; produces the
  per-chunk event timeline and makespan.
* :mod:`repro.gpu.hymv_gpu` — ``HymvGpuOperator`` (Alg. 3, with the three
  overlap schemes of §V-D) and ``AssembledGpuOperator`` (the PETSc-GPU /
  cuSPARSE substitute); both plug into the solve/bench drivers.
"""

from repro.gpu.hymv_gpu import AssembledGpuOperator, HymvGpuOperator
from repro.gpu.streams import StreamEvent, StreamScheduler

__all__ = [
    "StreamEvent",
    "StreamScheduler",
    "HymvGpuOperator",
    "AssembledGpuOperator",
]
