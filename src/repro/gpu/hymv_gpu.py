"""GPU operators: HYMV-GPU (Algorithm 3) and the PETSc-GPU substitute.

Numerics run in NumPy (identical results to the CPU operators — covered
by the same equality tests); virtual time advances by *modeled* device
durations from the calibrated GPU model, so the emulated GPU experiments
are consistent with the Frontera-scale model tier.

Overlap schemes (paper §V-D):

* ``"gpu"`` — blocking MPI, all elements batched on the device.
* ``"gpu_cpu_overlap"`` — nonblocking MPI overlapped with the device
  pipeline of independent elements; dependent elements on the host CPU.
* ``"gpu_gpu_overlap"`` — nonblocking MPI overlapped with the device
  pipeline; dependent elements in a second device batch.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.assembled import AssembledOperator
from repro.core.da import DistributedArray
from repro.core.hymv import HymvOperator
from repro.core.kernels import (
    accumulate_element_vectors,
    emv_columns,
    gather_element_vectors,
)
from repro.core.scatter import (
    gather_begin,
    gather_end,
    scatter,
    scatter_begin,
    scatter_end,
)
from repro.gpu.streams import StreamScheduler
from repro.perfmodel.machine import FRONTERA, GPU_NODE, FronteraMachine, GpuModel

__all__ = ["HymvGpuOperator", "AssembledGpuOperator"]


class HymvGpuOperator(HymvOperator):
    """Algorithm 3: batched EMV on the (simulated) device.

    Extra setup cost: the one-time element-matrix H2D transfer.  Per
    SPMV: host-side ``bue`` assembly, the chunked stream pipeline
    (H2D of ``bue``, batched kernel, D2H of ``bve``), host-side ``bve``
    accumulation, and the ghost exchange per the selected scheme.
    """

    def __init__(
        self,
        comm,
        lmesh,
        operator,
        ranges=None,
        kernel: str = "einsum",
        n_streams: int = 8,
        scheme: str = "gpu_gpu_overlap",
        gpu: GpuModel = GPU_NODE,
        machine: FronteraMachine = FRONTERA,
        threads: int = 4,
        workspace: bool = True,
        ke_cache: dict | None = None,
        elem_scale: np.ndarray | None = None,
    ):
        super().__init__(
            comm, lmesh, operator, ranges=ranges, kernel=kernel,
            workspace=workspace, ke_cache=ke_cache, elem_scale=elem_scale,
        )
        if scheme not in ("gpu", "gpu_cpu_overlap", "gpu_gpu_overlap"):
            raise ValueError(f"unknown GPU scheme {scheme!r}")
        self.n_streams = n_streams
        self.scheme = scheme
        self.gpu = gpu
        self.machine = machine
        self.threads = threads
        self.last_timeline: StreamScheduler | None = None
        # one-time element-matrix transfer to the device
        t_h2d = self.ke.nbytes / (gpu.setup_h2d_gbps * 1e9)
        comm.advance(t_h2d, "setup.ke_h2d")

    def _refresh_elements(self, pos) -> None:
        """Host recompute plus the H2D transfer of only the touched
        element matrices — the device-side adaptive update stays
        proportional to the touched subset, like the host one."""
        super()._refresh_elements(pos)
        nd = self.e2l_dofs.shape[1]
        touched_bytes = pos.size * nd * nd * 8.0
        self.comm.advance(
            touched_bytes / (self.gpu.setup_h2d_gbps * 1e9), "update.ke_h2d"
        )

    # -- device-side sweep -------------------------------------------------

    def _host_rate(self) -> float:
        r = self.machine.rates
        eff = self.threads * r.omp_efficiency if self.threads > 1 else 1.0
        return r.rhs_gather_gbps * 1e9 * eff

    def _device_sweep(
        self, u: DistributedArray, v: DistributedArray, sl: slice
    ) -> float:
        """Run one batched EMV on the device; returns modeled duration."""
        idx = self.e2l_dofs[sl]
        if idx.shape[0] == 0:
            return 0.0
        ke = self.ke[sl]
        uf = u.data.reshape(-1)
        vf = v.data.reshape(-1)
        # host: build bue (pinned staging buffer), Alg. 3 line 3
        if self._ws is not None:
            ue, _ = self._ws.views(idx.shape[0])
            gather_element_vectors(uf, idx, out=ue)
        else:
            ue = gather_element_vectors(uf, idx)
        t_host = ue.nbytes / self._host_rate()
        # device: chunked pipeline
        sched = StreamScheduler(gpu=self.gpu, n_streams=self.n_streams)
        E, nd = ue.shape
        t_pipe = sched.run_batch(
            h2d_bytes=ue.nbytes,
            kernel_flops=2.0 * E * nd * nd,
            kernel_bytes=ke.nbytes,
            d2h_bytes=ue.nbytes,
        )
        self.last_timeline = sched
        obs = self.comm.obs
        obs.incr("gpu.h2d_bytes", ue.nbytes)
        obs.incr("gpu.d2h_bytes", ue.nbytes)
        obs.incr("gpu.kernel_flops", 2.0 * E * nd * nd)
        obs.incr("gpu.batches")
        sched.export_events(obs, t_offset=self.comm.vtime)
        ve = self._kernel_into(ke, ue, sl)  # actual math (device-equivalent)
        # host: accumulate bve, Alg. 3 line 8
        self._accumulate(vf, idx, ve, sl)
        t_host += ve.nbytes / self._host_rate()
        return t_host + t_pipe

    def _kernel_into(self, ke, ue, sl) -> np.ndarray:
        """Run the EMV kernel, through the workspace when enabled."""
        if self._ws is None:
            return self.kernel(ke, ue)
        _, ve = self._ws.views(ue.shape[0])
        if self.kernel is emv_columns:
            return emv_columns(
                ke, ue, out=ve, tmp=self._ws.tmp[: ue.shape[0]],
                columns=self._columns_batch(sl),
            )
        return self.kernel(ke, ue, out=ve)

    def _accumulate(self, vf, idx, ve, sl) -> None:
        seg = self._segment_for(sl) if self._ws is not None else None
        if seg is not None:
            seg.add_into(vf, ve)
        else:
            accumulate_element_vectors(vf, idx, ve)

    def spmv(
        self,
        u: DistributedArray,
        v: DistributedArray,
        overlap: bool | None = None,
    ) -> DistributedArray:
        comm = self.comm
        halo = self.halo
        t0 = comm.vtime
        v.data[:] = 0.0
        scheme = self.scheme
        if overlap is not None:  # the base-class flag maps onto schemes
            scheme = "gpu_gpu_overlap" if overlap else scheme

        def _scatter_begin():
            if halo is not None:
                return halo.scatter_begin(comm, u.data)
            return scatter_begin(comm, u.data, self.cmaps)

        def _scatter_end(reqs):
            if halo is not None:
                halo.scatter_end(comm, u.data, reqs)
            else:
                scatter_end(comm, u.data, self.cmaps, reqs)

        if scheme == "gpu":
            if halo is not None:
                halo.scatter(comm, u.data)
            else:
                scatter(comm, u.data, self.cmaps)
            if self._check_ghosts:
                self._verify_ghosts(u)
            comm.advance(self._device_sweep(u, v, self._sl_all), "spmv.gpu")
        elif scheme == "gpu_gpu_overlap":
            reqs = _scatter_begin()
            comm.advance(
                self._device_sweep(u, v, self._sl_indep), "spmv.gpu.independent"
            )
            _scatter_end(reqs)
            if self._check_ghosts:
                self._verify_ghosts(u)
            comm.advance(
                self._device_sweep(u, v, self._sl_dep), "spmv.gpu.dependent"
            )
        else:  # gpu_cpu_overlap: dependent elements on the host CPU
            reqs = _scatter_begin()
            comm.advance(
                self._device_sweep(u, v, self._sl_indep), "spmv.gpu.independent"
            )
            _scatter_end(reqs)
            if self._check_ghosts:
                self._verify_ghosts(u)
            t_cpu = self._cpu_sweep(u, v, self._sl_dep)
            comm.advance(t_cpu, "spmv.cpu.dependent")
        if halo is not None:
            halo.gather_end(comm, v.data, halo.gather_begin(comm, v.data))
        else:
            greqs = gather_begin(comm, v.data, self.cmaps)
            gather_end(comm, v.data, self.cmaps, greqs)
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += 1
        return v

    def spmv_multi(self, u, v, overlap: bool = True, mode: str = "auto"):
        """Batched multi-RHS device SPMV.

        Numerics are the base-class multi path (``mode`` forwarded: the
        resolved oracle is bitwise identical per column to single-RHS,
        the resolved gemm matches to rounding — the device emulation
        computes with the same host kernels either way).  The modeled
        device time is where batching pays: the multivector pipeline
        streams the element-matrix batch from device memory **once** for
        all ``k`` columns (``Ke`` bytes amortized k-fold — the
        MAGMA-style batched-kernel headroom the paper's related work
        points at), while H2D/D2H vector traffic and kernel flops scale
        with ``k``; the modeled durations are mode-independent.
        """
        v = super().spmv_multi(u, v, overlap=overlap, mode=mode)
        E = self.n_local_elements
        if E:
            comm = self.comm
            nd = self.e2l_dofs.shape[1]
            k = u.k
            vec_bytes = E * nd * 8.0 * k
            sched = StreamScheduler(gpu=self.gpu, n_streams=self.n_streams)
            t_pipe = sched.run_batch(
                h2d_bytes=vec_bytes,
                kernel_flops=2.0 * E * nd * nd * k,
                kernel_bytes=self.ke.nbytes,
                d2h_bytes=vec_bytes,
            )
            self.last_timeline = sched
            obs = comm.obs
            obs.incr("gpu.h2d_bytes", vec_bytes)
            obs.incr("gpu.d2h_bytes", vec_bytes)
            obs.incr("gpu.kernel_flops", 2.0 * E * nd * nd * k)
            obs.incr("gpu.batches")
            sched.export_events(obs, t_offset=comm.vtime)
            t_host = 2.0 * vec_bytes / self._host_rate()
            comm.advance(t_host + t_pipe, "spmv.gpu.multivector")
        return v

    def _cpu_sweep(
        self, u: DistributedArray, v: DistributedArray, sl: slice
    ) -> float:
        """Host EMV of a subset; returns modeled CPU duration."""
        idx = self.e2l_dofs[sl]
        if idx.shape[0] == 0:
            return 0.0
        ke = self.ke[sl]
        if self._ws is not None:
            ue, _ = self._ws.views(idx.shape[0])
            gather_element_vectors(u.data.reshape(-1), idx, out=ue)
        else:
            ue = gather_element_vectors(u.data.reshape(-1), idx)
        ve = self._kernel_into(ke, ue, sl)
        self._accumulate(v.data.reshape(-1), idx, ve, sl)
        r = self.machine.rates
        eff = self.threads * r.omp_efficiency if self.threads > 1 else 1.0
        flops = 2.0 * ue.shape[0] * ue.shape[1] ** 2
        return flops / (r.emv_gflops * 1e9 * eff)


class AssembledGpuOperator(AssembledOperator):
    """PETSc-GPU substitute: CSR SPMV timed by the cuSPARSE model.

    Setup adds the CSR H2D transfer and analysis pass; each SPMV pays the
    device kernel (bandwidth model) plus host-staged halo movement over
    PCIe around the MPI exchange.
    """

    def __init__(
        self,
        comm,
        lmesh,
        operator,
        ranges=None,
        gpu: GpuModel = GPU_NODE,
        elem_scale=None,
    ):
        super().__init__(
            comm, lmesh, operator, ranges=ranges, elem_scale=elem_scale
        )
        self.gpu = gpu
        csr_bytes = self.stored_bytes()
        comm.advance(
            csr_bytes / (gpu.setup_h2d_gbps * 1e9) + self.nnz * 2.0e-9,
            "setup.csr_h2d",
        )

    def update_elements(self, local_elems, coords=None, stiffness_scale=None):
        """Full reassembly plus re-upload of the whole CSR — values and
        structure both changed, so the device copy is rebuilt outright."""
        super().update_elements(
            local_elems, coords=coords, stiffness_scale=stiffness_scale
        )
        csr_bytes = self.stored_bytes()
        self.comm.advance(
            csr_bytes / (self.gpu.setup_h2d_gbps * 1e9) + self.nnz * 2.0e-9,
            "update.csr_h2d",
        )

    def apply_owned(self, x: np.ndarray, copy: bool = True) -> np.ndarray:
        # ``copy`` is a no-op (the CSR product is freshly allocated);
        # kept for signature parity with the EBE operators
        comm = self.comm
        t0 = comm.vtime
        if not hasattr(self, "_work_u"):
            self._work_u = self.new_array()
        u = self._work_u
        u.set_owned(x)
        # halo staged through the host: D2H of owned boundary values,
        # MPI exchange, H2D of received ghosts
        ghost_bytes = sum(s.size for s in self.cmaps.recv_slots) * self.ndpn * 8.0
        comm.advance(ghost_bytes / (self.gpu.pcie_gbps * 1e9), "spmv.halo.d2h")
        scatter(comm, u.data, self.cmaps)
        comm.advance(ghost_bytes / (self.gpu.pcie_gbps * 1e9), "spmv.halo.h2d")
        npre = self.maps.n_pre * self.ndpn
        y = self.A_diag @ u.owned_flat
        if self.A_pre.shape[1]:
            y += self.A_pre @ u.data.reshape(-1)[:npre]
        if self.A_post.shape[1]:
            y += self.A_post @ u.data.reshape(-1)[npre + self.n_dofs_owned:]
        csr_bytes = self.stored_bytes() + y.nbytes * 2
        comm.advance(
            csr_bytes / (self.gpu.csr_gbps * 1e9) + self.gpu.kernel_launch_s,
            "spmv.cusparse",
        )
        comm.timing.add("spmv.total", comm.vtime - t0)
        self.spmv_count += 1
        return y
