"""Incremental-update harness: ``python -m repro.harness adapt``.

Serves a delta stream against warm cached operators — crack-front
softening (stiffness scales), near-front mesh smoothing (node moves) and
local refinement (structural) — interleaved with batched solves in
deterministic virtual time, and *differentially verifies every step*:
after each delta the updated context's products and solves are compared
**bitwise** (oracle mode) against a context freshly built from the
post-update key.  Any mismatch is a wrong answer; the CI gate requires
zero.

The same fresh build doubles as the cost baseline: each step reports the
modeled cost of the delta path (measured on the warm context's
simulator), of a full context rebuild (fresh build comm time plus the
modeled recompute of every element matrix, net of nothing), and of a CSR
reassembly (an assembled-method shadow context fed the same deltas).
Costs are modeled virtual time, so the checked-in ``BENCH_adapt.json``
baseline compares across machines.

Outputs ``ADAPT_report.json`` (schema ``repro.adapt/1``) plus a
bench-schema projection ``BENCH_adapt.json`` for ``repro.obs.compare``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.adapt.delta import CrackFront, MeshDelta
from repro.obs.instrumentation import Instrumentation
from repro.obs.schema import (
    new_adapt_doc,
    new_bench_doc,
    validate_adapt_doc,
    validate_bench_doc,
)
from repro.serve.cache import (
    DEFAULT_RATE_GFLOPS,
    OperatorCache,
    ProblemKey,
    SolverContext,
)

__all__ = ["AdaptScenario", "run_scenario", "run_adapt_suite", "main"]

#: front granularity: the crack advances 1/N of the domain per step, so
#: a scale delta touches ~1/N of the band — small enough for the patch
#: path at the default 10% threshold
_FRONT_STEPS = 8


@dataclass(frozen=True)
class AdaptScenario:
    """One delta-stream scenario against a warm cached operator."""

    name: str
    kind: str  # "scale" | "move" | "refine"
    method: str = "hymv"
    nel: int = 4
    n_parts: int = 2
    steps: int = 4
    n_rhs: int = 3
    rtol: float = 1e-8
    #: narrower softening band for move deltas: a moved node dirties every
    #: incident element, so the same band touches ~3x more elements
    half_width: float = 0.26


def suite_scenarios(smoke: bool = True) -> list[AdaptScenario]:
    """The standard scenario set (same structure in smoke and full)."""
    steps = 4 if smoke else 8
    nel = 4 if smoke else 6
    n_parts = 2 if smoke else 4
    return [
        AdaptScenario("crack-scale", "scale", nel=nel, n_parts=n_parts,
                      steps=steps),
        AdaptScenario("crack-coords", "move", nel=nel, n_parts=n_parts,
                      steps=steps, half_width=0.08),
        AdaptScenario("refine-local", "refine", nel=nel, n_parts=n_parts,
                      steps=min(steps, 3)),
        AdaptScenario("crack-scale-assembled", "scale", method="assembled",
                      nel=nel, n_parts=n_parts, steps=steps),
    ]


def _make_delta(cf: CrackFront, ctx: SolverContext, kind: str,
                step: int) -> MeshDelta:
    if kind == "scale":
        return cf.scale_delta(ctx.spec.mesh, step, _FRONT_STEPS)
    if kind == "move":
        return cf.move_delta(ctx.spec, step, _FRONT_STEPS, amplitude=2e-3)
    if kind == "refine":
        return cf.refine_delta(ctx.spec.mesh, step, _FRONT_STEPS)
    raise ValueError(f"unknown delta kind {kind!r}")


def run_scenario(sc: AdaptScenario, seed: int = 1234) -> dict[str, Any]:
    """Run one scenario; returns its schema-conforming report entry."""
    obs = Instrumentation(rank=-1)
    cache = OperatorCache(capacity=4, obs=obs)
    key = ProblemKey(
        problem="poisson", nel=sc.nel, n_parts=sc.n_parts, etype="tet4",
        seed=seed % 100, method=sc.method,
    )
    ctx, _ = cache.get(key)
    # shadow baseline: the same delta stream against the assembled-CSR
    # operator (reassembly on every update) on its own simulator
    shadow = SolverContext(
        ProblemKey(
            problem="poisson", nel=sc.nel, n_parts=sc.n_parts, etype="tet4",
            seed=seed % 100, method="assembled",
        )
    )
    cf = CrackFront(half_width=sc.half_width)
    rng = np.random.default_rng(seed)
    kf = ctx.spec.operator.ke_flops(ctx.spec.mesh.etype)
    rate = ctx.modeled_rate or DEFAULT_RATE_GFLOPS

    patches = rebuilds = touched_total = checks = bitwise = wrong = 0
    max_fraction = 0.0
    delta_s = rebuild_s = reassembly_s = 0.0
    detail: list[dict[str, Any]] = []
    for step in range(sc.steps):
        delta = _make_delta(cf, ctx, sc.kind, step)
        # -- serve-path update (re-keys the cached context in place)
        key, info = cache.update(key, delta)
        ctx = cache.peek(key)
        assert ctx is not None and info is not None
        patches += info["path"] == "patch"
        rebuilds += info["path"] == "full_rebuild"
        touched_total += info["touched"]
        max_fraction = max(max_fraction, info["fraction"])
        delta_s += info["vtime"]

        # -- reassembly baseline: same delta on the assembled shadow
        rinfo = shadow.apply_delta(delta)
        reassembly_s += rinfo["vtime"]

        # -- full-rebuild baseline: fresh context from the post-update
        # key; its build time is comm-modeled, the element-matrix work is
        # the analytic E * ke_flops / rate it would pay with no reuse
        fresh = SolverContext(key)
        step_rebuild = (
            fresh.build_vtime + ctx.spec.mesh.n_elements * kf / (rate * 1e9)
        )
        rebuild_s += step_rebuild

        # -- differential verification, bitwise in oracle mode: the
        # delta-updated context must be indistinguishable from the fresh
        # build on single-RHS, multi-RHS and solve paths
        n = ctx.n_dofs
        step_wrong = 0
        for k in (1, sc.n_rhs):
            X = rng.standard_normal((n, k))
            Yd, _ = ctx.apply_multi(X, mode="oracle")
            Yf, _ = fresh.apply_multi(X, mode="oracle")
            checks += 1
            if np.array_equal(Yd, Yf):
                bitwise += 1
            else:
                step_wrong += 1
        F = rng.standard_normal((n, 2))
        Sd, _ = ctx.solve_multi(F, rtol=sc.rtol, mode="oracle")
        Sf, _ = fresh.solve_multi(F, rtol=sc.rtol, mode="oracle")
        checks += 1
        if (
            np.array_equal(Sd["x"], Sf["x"])
            and Sd["iterations"] == Sf["iterations"]
        ):
            bitwise += 1
        else:
            step_wrong += 1
        wrong += step_wrong
        if step_wrong:
            obs.incr("adapt.wrong_answers", step_wrong)

        # -- serving continues on the warm context between deltas
        F = rng.standard_normal((n, sc.n_rhs))
        out, _ = ctx.solve_multi(F, rtol=sc.rtol)
        if not all(out["converged"]):
            wrong += 1
            obs.incr("adapt.wrong_answers")

        detail.append({
            "step": step,
            "delta": delta.describe(),
            "path": info["path"],
            "touched": info["touched"],
            "fraction": info["fraction"],
            "delta_s": info["vtime"],
            "rebuild_s": step_rebuild,
            "reassembly_s": rinfo["vtime"],
        })

    counters = {
        k: v for k, v in ctx.counters().items() if k.startswith("update.")
    }
    counters["adapt.wrong_answers"] = obs.counter("adapt.wrong_answers")
    return {
        "scenario": sc.name,
        "method": sc.method,
        "n_parts": sc.n_parts,
        "n_dofs": ctx.n_dofs,
        "steps": sc.steps,
        "deltas": {
            "applied": sc.steps,
            "patches": patches,
            "rebuilds": rebuilds,
            "touched_total": touched_total,
            "max_fraction": max_fraction,
        },
        "verify": {
            "checks": checks,
            "bitwise": bitwise,
            "wrong_answers": wrong,
        },
        "costs": {
            "delta_s": delta_s,
            "rebuild_s": rebuild_s,
            "reassembly_s": reassembly_s,
            "speedup_vs_rebuild": rebuild_s / delta_s if delta_s else 0.0,
        },
        "cache": cache.stats(),
        "steps_detail": detail,
        "counters": counters,
    }


def run_adapt_suite(
    seed: int = 1234, smoke: bool = True, verbose: bool = True
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run the standard scenarios; returns ``(adapt_doc, bench_doc)``."""
    doc = new_adapt_doc(config={"seed": seed, "smoke": smoke})
    for sc in suite_scenarios(smoke=smoke):
        if verbose:
            print(f"[adapt] scenario {sc.name} ...", flush=True)
        entry = run_scenario(sc, seed=seed)
        doc["scenarios"].append(entry)
        if verbose:
            v, c = entry["verify"], entry["costs"]
            print(
                f"[adapt]   {entry['deltas']['patches']} patch / "
                f"{entry['deltas']['rebuilds']} rebuild, "
                f"verify {v['bitwise']}/{v['checks']} bitwise, "
                f"delta {c['delta_s'] * 1e3:.3f} ms vs rebuild "
                f"{c['rebuild_s'] * 1e3:.3f} ms "
                f"({c['speedup_vs_rebuild']:.1f}x), "
                f"wrong {v['wrong_answers']}"
            )
    return validate_adapt_doc(doc), validate_bench_doc(_bench_doc(doc))


def _bench_doc(adapt_doc: dict[str, Any]) -> dict[str, Any]:
    """Project the adapt report onto the standard bench schema so the
    existing ``repro.obs.compare`` gate applies unchanged."""
    bench = new_bench_doc(
        suite="adapt", repeats=1, config=dict(adapt_doc["config"])
    )
    for sc in adapt_doc["scenarios"]:
        steps = sc["steps_detail"]
        phases = {}
        for label in ("delta_s", "rebuild_s", "reassembly_s"):
            vals = sorted(st[label] for st in steps)
            phases[f"adapt.update.{label[:-2]}"] = {
                "median": vals[len(vals) // 2],
                "min": vals[0],
                "max": vals[-1],
                "repeats": len(vals),
            }
        counters = {
            "adapt.checks": sc["verify"]["checks"],
            "adapt.bitwise": sc["verify"]["bitwise"],
            "adapt.wrong_answers": sc["verify"]["wrong_answers"],
            "adapt.patches": sc["deltas"]["patches"],
            "adapt.rebuilds": sc["deltas"]["rebuilds"],
        }
        bench["results"].append({
            "case": f"adapt-{sc['scenario']}",
            "method": sc["method"],
            "n_parts": sc["n_parts"],
            "n_dofs": sc["n_dofs"],
            "phases": phases,
            "counters": counters,
        })
    return bench


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness adapt",
        description="Incremental-update harness: delta streams against "
        "warm cached operators, every step differentially verified "
        "(bitwise) against a fresh build; emits ADAPT_report.json "
        "(+ BENCH_adapt.json for the compare gate)",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized scenarios (fewer steps; same structure)",
    )
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("ADAPT_report.json"),
        help="adapt report path (default: ./ADAPT_report.json)",
    )
    ap.add_argument(
        "--bench-out",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_adapt.json"),
        help="bench-schema projection path (default: ./BENCH_adapt.json)",
    )
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    doc, bench = run_adapt_suite(
        seed=args.seed, smoke=args.smoke, verbose=not args.quiet
    )
    for path, payload in ((args.out, doc), (args.bench_out, bench)):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    wrong = sum(sc["verify"]["wrong_answers"] for sc in doc["scenarios"])
    if not args.quiet:
        print(f"\n[adapt] wrote {args.out} and {args.bench_out}")
    if wrong:
        print(f"[adapt] FAIL: {wrong} wrong answer(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
