"""Applying a :class:`~repro.adapt.delta.MeshDelta` to a problem spec.

Two layers:

* :func:`apply_delta_to_spec` — the *truth* update: patch the spec's
  mesh coordinates / per-element scales in place (non-structural), or
  refine the mesh and re-partition deterministically (structural).
  ``ProblemKey.build_spec()`` replays deltas through this same function,
  so a delta-updated context and a context freshly built from the
  post-update key see bit-identical inputs.
* :func:`localize_delta` — project an applied non-structural delta onto
  ranks: the touched element set (scaled elements plus every element
  incident on a moved node) split into per-rank
  :class:`~repro.adapt.delta.OperatorDelta`\\ s for ``update_elements``.

Determinism notes (what makes the bitwise differential suite pass):

* the partition is built from the *pre-delta* coordinates and is never
  recomputed on a coordinate move, so both paths share one partition;
* a structural refinement re-partitions by ancestry
  (``elem_part_new = elem_part[ancestor]``) — children stay on their
  ancestor's rank, deterministically in both paths;
* scales are absolute and multiply element matrices row-wise, and
  ``x * 1.0`` is exact in IEEE-754 — a fresh build scaling the whole
  batch equals a delta path scaling only the touched rows, bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.adapt.delta import MeshDelta, OperatorDelta
from repro.mesh.adapt import LocalRefinement, refine_local
from repro.mesh.element import ElementType
from repro.partition.interface import partition_from_elem_part
from repro.util.arrays import INDEX_DTYPE

__all__ = ["apply_delta_to_spec", "localize_delta", "touched_elements"]


def apply_delta_to_spec(spec, delta: MeshDelta):
    """Apply ``delta`` to ``spec``; returns ``(spec, refinement)``.

    Non-structural deltas mutate ``spec`` in place (coords, elem_scale,
    and every rank's local coords view) and return ``refinement=None``.
    Structural deltas return a *new* spec on the refined, re-partitioned
    mesh plus the :class:`~repro.mesh.adapt.LocalRefinement` ancestry
    (for ``ke_cache`` carry-over).  Element ids in the delta are mesh
    element ids; node ids are renumbered (partition) ids.
    """
    if delta.is_structural:
        return _refine_spec(spec, delta)

    mesh, part = spec.mesh, spec.partition
    if delta.scale_elements.size:
        hi = int(delta.scale_elements.max())
        if int(delta.scale_elements.min()) < 0 or hi >= mesh.n_elements:
            raise IndexError(
                f"scale_elements out of range vs {mesh.n_elements} elements"
            )
        if spec.elem_scale is None:
            spec.elem_scale = np.ones(mesh.n_elements)
        spec.elem_scale[delta.scale_elements] = delta.scale_values
    if delta.move_nodes.size:
        hi = int(delta.move_nodes.max())
        if int(delta.move_nodes.min()) < 0 or hi >= mesh.n_nodes:
            raise IndexError(
                f"move_nodes out of range vs {mesh.n_nodes} nodes"
            )
        old_ids = part.old_of_new[delta.move_nodes]
        mesh.coords[old_ids] = delta.move_coords
        # refresh every rank's per-element coordinate view (the locals
        # were materialized from mesh.coords at partition time)
        for r in range(part.n_parts):
            lm = part.local(r)
            lm.coords = mesh.coords[mesh.conn[lm.elements]]
    return spec, None


def _refine_spec(spec, delta: MeshDelta):
    """Structural path: Rivara bisection + ancestry re-partition."""
    from dataclasses import replace

    from repro.fem.dirichlet import DirichletBC

    mesh, part = spec.mesh, spec.partition
    if mesh.etype is not ElementType.TET4:
        raise NotImplementedError(
            f"local refinement supports TET4 meshes, not {mesh.etype}"
        )
    if spec.operator.ndpn != 1:
        raise NotImplementedError(
            "structural deltas are wired for the Poisson problem "
            "(boundary-condition reconstruction is problem-specific)"
        )
    ref: LocalRefinement = refine_local(mesh, delta.refine_elements)
    # children inherit their ancestor's rank: deterministic, local, and
    # identical whether reached by delta or by a fresh key rebuild
    elem_part_new = part.elem_part[ref.ancestor]
    part_new = partition_from_elem_part(
        ref.mesh, part.n_parts, elem_part_new
    )
    bcs = [DirichletBC(part_new.boundary_nodes_new(), 0.0, ndpn=1)]
    elem_scale = (
        None
        if spec.elem_scale is None
        else np.ascontiguousarray(spec.elem_scale[ref.ancestor])
    )
    spec_new = replace(
        spec,
        mesh=ref.mesh,
        partition=part_new,
        bcs=bcs,
        elem_scale=elem_scale,
    )
    return spec_new, ref


def touched_elements(spec, delta: MeshDelta) -> np.ndarray:
    """Mesh element ids a non-structural delta dirties: the scaled set
    plus every element incident on a moved node."""
    if delta.is_structural:
        raise ValueError("touched_elements is for non-structural deltas")
    parts = [delta.scale_elements]
    if delta.move_nodes.size:
        old_ids = spec.partition.old_of_new[delta.move_nodes]
        incident = np.isin(spec.mesh.conn, old_ids).any(axis=1)
        parts.append(np.flatnonzero(incident).astype(INDEX_DTYPE))
    return np.unique(np.concatenate(parts)).astype(INDEX_DTYPE)


def localize_delta(spec, delta: MeshDelta):
    """Rank-local projections of an *already applied* non-structural
    delta; returns ``(touched, [OperatorDelta per rank])``.

    Each rank's coords/scale rows are read back from the post-update
    spec, so elements touched only through a node move still carry their
    current absolute scale (idempotent to re-apply — same bits).
    """
    touched = touched_elements(spec, delta)
    mesh, part = spec.mesh, spec.partition
    out = []
    for r in range(part.n_parts):
        lm = part.local(r)
        local_ids = np.flatnonzero(
            np.isin(lm.elements, touched)
        ).astype(INDEX_DTYPE)
        gids = lm.elements[local_ids]
        coords = (
            mesh.coords[mesh.conn[gids]] if delta.move_nodes.size else None
        )
        scale = (
            spec.elem_scale[gids] if spec.elem_scale is not None else None
        )
        out.append(
            OperatorDelta(local_elems=local_ids, coords=coords, scale=scale)
        )
    return touched, out
