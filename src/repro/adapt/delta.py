"""Delta types: the wire format of an incremental mesh/operator change.

A :class:`MeshDelta` describes one atomic update to a served problem in
*global* terms (mesh element ids, renumbered node ids) — the form a
client or a crack-propagation model produces.  It is canonicalized at
construction (sorted unique ids, last occurrence wins), so value-equal
deltas have equal :meth:`~MeshDelta.fingerprint`\\ s and composition is
associative-by-construction.

A :class:`OperatorDelta` is the rank-local projection the serve layer
hands to ``update_elements``: local element indices plus the post-update
coords/scale rows for exactly those elements.

Scales are **absolute** (the effective element matrix is
``scale * Ke(coords)``), matching
:meth:`repro.core.hymv.EbeOperatorBase.update_elements`: re-applying a
delta is idempotent, and two deltas compose by last-wins override.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.util.arrays import INDEX_DTYPE, as_index

__all__ = ["MeshDelta", "OperatorDelta", "CrackFront"]


def _empty_ids() -> np.ndarray:
    return np.empty(0, dtype=INDEX_DTYPE)


def _last_wins(ids: np.ndarray, vals: np.ndarray):
    """Sorted-unique ids with, for duplicates, the *last* value kept."""
    ids = as_index(ids)
    vals = np.asarray(vals, dtype=np.float64)
    if ids.size == 0:
        return ids, vals.reshape((0,) + vals.shape[1:])
    # np.unique on the reversed ids returns the index of each id's first
    # occurrence there — i.e. its last occurrence in the original order
    uniq, first_rev = np.unique(ids[::-1], return_index=True)
    return uniq, vals[::-1][first_rev]


@dataclass(frozen=True)
class MeshDelta:
    """One atomic incremental update, in global mesh/problem terms.

    Attributes
    ----------
    scale_elements / scale_values:
        Absolute stiffness scales for mesh element ids (crack-front
        softening: the element matrix becomes ``scale * Ke``).
    move_nodes / move_coords:
        New xyz positions for *renumbered* node ids (the id space the
        serving layer works in — mesh smoothing, boundary tracking).
    refine_elements:
        Mesh element ids to bisect (:func:`repro.mesh.adapt.refine_local`).
        A refining delta is *structural* — it changes dof counts — and
        must be pure: no scales or moves in the same delta.
    """

    scale_elements: np.ndarray = field(default_factory=_empty_ids)
    scale_values: np.ndarray = field(default_factory=lambda: np.empty(0))
    move_nodes: np.ndarray = field(default_factory=_empty_ids)
    move_coords: np.ndarray = field(
        default_factory=lambda: np.empty((0, 3))
    )
    refine_elements: np.ndarray = field(default_factory=_empty_ids)

    def __post_init__(self):
        se = as_index(self.scale_elements)
        sv = np.asarray(self.scale_values, dtype=np.float64).reshape(-1)
        if se.size != sv.size:
            raise ValueError(
                f"scale_elements ({se.size}) and scale_values ({sv.size}) "
                "length mismatch"
            )
        if sv.size and sv.min() <= 0.0:
            raise ValueError(
                f"stiffness scales must be positive, got min {sv.min()}"
            )
        se, sv = _last_wins(se, sv)
        mn = as_index(self.move_nodes)
        mc = np.asarray(self.move_coords, dtype=np.float64).reshape(-1, 3)
        if mn.size != mc.shape[0]:
            raise ValueError(
                f"move_nodes ({mn.size}) and move_coords ({mc.shape[0]}) "
                "length mismatch"
            )
        mn, mc = _last_wins(mn, mc)
        re = np.unique(as_index(self.refine_elements))
        if re.size and (se.size or mn.size):
            raise ValueError(
                "a structural (refining) delta must be pure — compose "
                "scales/moves as separate deltas around the refinement"
            )
        object.__setattr__(self, "scale_elements", se)
        object.__setattr__(self, "scale_values", sv)
        object.__setattr__(self, "move_nodes", mn)
        object.__setattr__(self, "move_coords", mc)
        object.__setattr__(self, "refine_elements", re)

    # -- identity -------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable short hash of the canonicalized payload."""
        h = hashlib.sha1()
        for tag, arr in (
            (b"se", self.scale_elements),
            (b"sv", self.scale_values),
            (b"mn", self.move_nodes),
            (b"mc", self.move_coords),
            (b"re", self.refine_elements),
        ):
            h.update(tag)
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()[:12]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MeshDelta)
            and self.fingerprint() == other.fingerprint()
        )

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    # -- shape ----------------------------------------------------------

    @property
    def is_structural(self) -> bool:
        return self.refine_elements.size > 0

    @property
    def is_empty(self) -> bool:
        return (
            self.scale_elements.size == 0
            and self.move_nodes.size == 0
            and self.refine_elements.size == 0
        )

    def compose(self, other: "MeshDelta") -> "MeshDelta":
        """The single delta equivalent to applying ``self`` then
        ``other`` (non-structural only; ``other`` wins on overlap)."""
        if self.is_structural or other.is_structural:
            raise ValueError("cannot compose structural deltas")
        return MeshDelta(
            scale_elements=np.concatenate(
                [self.scale_elements, other.scale_elements]
            ),
            scale_values=np.concatenate(
                [self.scale_values, other.scale_values]
            ),
            move_nodes=np.concatenate([self.move_nodes, other.move_nodes]),
            move_coords=np.concatenate(
                [self.move_coords, other.move_coords]
            ),
        )

    def describe(self) -> str:
        return (
            f"delta[{self.fingerprint()}] scales={self.scale_elements.size} "
            f"moves={self.move_nodes.size} "
            f"refines={self.refine_elements.size}"
        )


@dataclass(frozen=True)
class OperatorDelta:
    """Rank-local projection of a non-structural :class:`MeshDelta`:
    exactly the arguments one rank passes to ``update_elements``."""

    local_elems: np.ndarray
    coords: np.ndarray | None  # (k, n_nodes, 3) post-update rows
    scale: np.ndarray | None  # (k,) absolute scales

    @property
    def n_touched(self) -> int:
        return int(self.local_elems.size)


class CrackFront:
    """A planar crack front advancing through the unit cube along +x.

    A deterministic softening model driving the adapt harness: at step
    ``i`` of ``n_steps`` the front sits at ``x = (i+1)/n_steps``, and the
    elements whose centroid entered the band since the previous step —
    within ``half_width`` of the crack plane ``y = y0`` — are softened to
    the absolute ``soft_scale`` (an XFEM-style enrichment proxy).  Pure
    function of the mesh and the step index: every run, and the fresh
    rebuilds the differential verifier makes, see identical deltas.
    """

    def __init__(
        self,
        soft_scale: float = 0.05,
        y0: float = 0.5,
        half_width: float = 0.26,
    ):
        if soft_scale <= 0:
            raise ValueError(f"soft_scale must be positive, got {soft_scale}")
        self.soft_scale = soft_scale
        self.y0 = y0
        self.half_width = half_width

    def _band(self, mesh, x_lo: float, x_hi: float) -> np.ndarray:
        c = mesh.coords[mesh.conn].mean(axis=1)
        sel = (
            (c[:, 0] > x_lo)
            & (c[:, 0] <= x_hi)
            & (np.abs(c[:, 1] - self.y0) <= self.half_width)
        )
        return np.flatnonzero(sel).astype(INDEX_DTYPE)

    def scale_delta(self, mesh, step: int, n_steps: int) -> MeshDelta:
        """Softening delta of step ``step`` (may be empty)."""
        x_lo = step / n_steps
        x_hi = (step + 1) / n_steps
        elems = self._band(mesh, x_lo, x_hi)
        return MeshDelta(
            scale_elements=elems,
            scale_values=np.full(elems.size, self.soft_scale),
        )

    def refine_delta(self, mesh, step: int, n_steps: int) -> MeshDelta:
        """Refinement delta of step ``step``: bisect the elements the
        front just crossed (TET4 meshes only)."""
        x_lo = step / n_steps
        x_hi = (step + 1) / n_steps
        return MeshDelta(refine_elements=self._band(mesh, x_lo, x_hi))

    def move_delta(
        self, spec, step: int, n_steps: int, amplitude: float = 5e-3
    ) -> MeshDelta:
        """Node-smoothing delta of step ``step``: interior nodes ahead of
        the front shift by a small deterministic offset (renumbered ids,
        amplitude well under the mesh spacing so geometry stays valid)."""
        part = spec.partition
        coords_new = part.coords_by_new_id()
        x_hi = (step + 1) / n_steps
        boundary = np.zeros(coords_new.shape[0], dtype=bool)
        boundary[part.boundary_nodes_new()] = True
        sel = np.flatnonzero(
            ~boundary
            & (coords_new[:, 0] <= x_hi)
            & (np.abs(coords_new[:, 1] - self.y0) <= self.half_width)
        ).astype(INDEX_DTYPE)
        if sel.size == 0:
            return MeshDelta()
        rng = np.random.default_rng(1000 + step)
        shift = amplitude * rng.standard_normal((sel.size, 3))
        return MeshDelta(
            move_nodes=sel, move_coords=coords_new[sel] + shift
        )
