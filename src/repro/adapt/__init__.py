"""Incremental operator updates as a serving workload.

The paper's headline "adaptive-matrix" claim — on local refinement or
XFEM enrichment, recompute only the affected element matrices with no
global reassembly — lives here as a *workload*:

* :mod:`repro.adapt.delta` — :class:`MeshDelta` (the wire format of a
  mesh change: stiffness scales, node moves, local refinement), the
  rank-local :class:`OperatorDelta`, and the :class:`CrackFront`
  softening model that generates deterministic delta streams;
* :mod:`repro.adapt.apply` — applying a delta to a
  :class:`~repro.problems.ProblemSpec` and localizing it per rank;
* :mod:`repro.adapt.harness` — ``python -m repro.harness adapt``: delta
  streams interleaved with solves in virtual time, every answer
  differentially verified (bitwise, oracle mode) against an operator
  freshly built from the post-update mesh, written to a
  schema-versioned ``ADAPT_report.json`` + ``BENCH_adapt.json``.
"""

from repro.adapt.apply import apply_delta_to_spec, localize_delta
from repro.adapt.delta import CrackFront, MeshDelta, OperatorDelta

__all__ = [
    "MeshDelta",
    "OperatorDelta",
    "CrackFront",
    "apply_delta_to_spec",
    "localize_delta",
]
