"""Array helpers shared across the library.

All index arrays in the library use a single dtype (``INDEX_DTYPE``) so that
connectivity maps, scatter maps and CSR structures interoperate without
silent copies.
"""

from __future__ import annotations

import numpy as np

#: Integer dtype used for every connectivity / index array in the library.
INDEX_DTYPE = np.int64


def as_f64(a) -> np.ndarray:
    """Return ``a`` as a C-contiguous float64 array (no copy when possible)."""
    return np.ascontiguousarray(a, dtype=np.float64)


def as_index(a) -> np.ndarray:
    """Return ``a`` as a C-contiguous ``INDEX_DTYPE`` array."""
    return np.ascontiguousarray(a, dtype=INDEX_DTYPE)


def scatter_add(out: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Accumulate ``vals`` into ``out`` at (possibly repeated) indices ``idx``.

    Equivalent to ``np.add.at(out, idx, vals)`` up to summation order,
    but implemented with ``np.bincount`` which is substantially faster
    for the large, highly duplicated index sets produced by
    element-vector accumulation (each mesh node is shared by up to 8
    hexes / ~24 tets).

    Small batches (``idx.size < out.size // 8`` — adaptive
    ``update_elements``-style accumulations, thin dependent sweeps)
    skip the ``O(n_dofs)`` bincount scratch and reduce over the touched
    range only.  **Grouping contract:** both branches produce the exact
    bits of the legacy ``out += np.bincount(...)`` path on every touched
    entry — duplicates are folded into a per-dof total sequentially in
    occurrence order starting from 0.0, and each total is added to
    ``out`` with a single rounding — even when ``out`` is already
    nonzero (the dependent sweep accumulates onto the independent
    sweep's partial result).  The only divergence is that the small
    branch never writes untouched entries, while the bincount branch
    adds ``+0.0`` to them (observable only on ``-0.0``).

    For sweeps whose index structure repeats across calls, prefer
    :class:`repro.core.segment.SegmentScatter`, which precomputes the
    reduction once and accumulates allocation-free (same grouping).

    Parameters
    ----------
    out:
        1-D float64 destination, modified in place and returned.
    idx:
        Integer indices into ``out`` (any shape; flattened).
    vals:
        Values to accumulate, same number of entries as ``idx``.
    """
    flat_idx = idx.reshape(-1)
    flat_vals = vals.reshape(-1)
    if flat_idx.size != flat_vals.size:
        raise ValueError(
            f"index/value size mismatch: {flat_idx.size} vs {flat_vals.size}"
        )
    if flat_idx.size and flat_idx.size < out.shape[0] // 8:
        # A bare np.add.at(out, ...) would fold every duplicate into
        # ``out`` sequentially — different rounding than the bincount
        # grouping once ``out`` is nonzero.  Reduce each dof's
        # duplicates into a zeroed per-group scratch first (np.add.at
        # over compacted group ids accumulates in occurrence order from
        # 0.0, exactly like bincount), then add the totals with one
        # rounding per touched dof.
        touched, group = np.unique(flat_idx, return_inverse=True)
        if touched[0] < 0:
            # mirror bincount, which rejects negative indices
            raise ValueError("scatter_add: negative index")
        sums = np.zeros(touched.size)
        np.add.at(sums, group, flat_vals)
        out[touched] += sums
    else:
        out += np.bincount(flat_idx, weights=flat_vals, minlength=out.shape[0])
    return out


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse of a permutation array."""
    perm = as_index(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=INDEX_DTYPE)
    return inv


def rows_unique(a: np.ndarray) -> bool:
    """True when the rows of a 2-D integer array are pairwise distinct."""
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    view = np.ascontiguousarray(a).view([("", a.dtype)] * a.shape[1])
    return np.unique(view).size == a.shape[0]
