"""Array helpers shared across the library.

All index arrays in the library use a single dtype (``INDEX_DTYPE``) so that
connectivity maps, scatter maps and CSR structures interoperate without
silent copies.
"""

from __future__ import annotations

import numpy as np

#: Integer dtype used for every connectivity / index array in the library.
INDEX_DTYPE = np.int64


def as_f64(a) -> np.ndarray:
    """Return ``a`` as a C-contiguous float64 array (no copy when possible)."""
    return np.ascontiguousarray(a, dtype=np.float64)


def as_index(a) -> np.ndarray:
    """Return ``a`` as a C-contiguous ``INDEX_DTYPE`` array."""
    return np.ascontiguousarray(a, dtype=INDEX_DTYPE)


def scatter_add(out: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Accumulate ``vals`` into ``out`` at (possibly repeated) indices ``idx``.

    Equivalent to ``np.add.at(out, idx, vals)`` but implemented with
    ``np.bincount`` which is substantially faster for the large, highly
    duplicated index sets produced by element-vector accumulation (each mesh
    node is shared by up to 8 hexes / ~24 tets).

    Small batches (``idx.size < out.size // 8`` — adaptive
    ``update_elements``-style accumulations, tiny dependent sweeps) fall
    back to ``np.add.at``: a bincount would still pay the full
    ``O(n_dofs)`` scratch allocation and final add for a handful of
    touched entries.

    For sweeps whose index structure repeats across calls, prefer
    :class:`repro.core.segment.SegmentScatter`, which precomputes the
    reduction once and accumulates allocation-free.

    Parameters
    ----------
    out:
        1-D float64 destination, modified in place and returned.
    idx:
        Integer indices into ``out`` (any shape; flattened).
    vals:
        Values to accumulate, same number of entries as ``idx``.
    """
    flat_idx = idx.reshape(-1)
    flat_vals = vals.reshape(-1)
    if flat_idx.size != flat_vals.size:
        raise ValueError(
            f"index/value size mismatch: {flat_idx.size} vs {flat_vals.size}"
        )
    if flat_idx.size < out.shape[0] // 8:
        np.add.at(out, flat_idx, flat_vals)
    else:
        out += np.bincount(flat_idx, weights=flat_vals, minlength=out.shape[0])
    return out


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse of a permutation array."""
    perm = as_index(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=INDEX_DTYPE)
    return inv


def rows_unique(a: np.ndarray) -> bool:
    """True when the rows of a 2-D integer array are pairwise distinct."""
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    view = np.ascontiguousarray(a).view([("", a.dtype)] * a.shape[1])
    return np.unique(view).size == a.shape[0]
