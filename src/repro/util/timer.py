"""Lightweight wall-clock timers used across the harness.

The emulation tier measures real NumPy compute with ``time.perf_counter``
inside serialized compute sections (see :mod:`repro.simmpi.engine`), so the
timers here only need to be cheap and re-entrant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class TimingRecord:
    """Accumulated timings keyed by label (seconds)."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, label: str, seconds: float) -> None:
        self.totals[label] = self.totals.get(label, 0.0) + float(seconds)
        self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        return self.totals.get(label, 0.0)

    def mean(self, label: str) -> float:
        n = self.counts.get(label, 0)
        return self.totals.get(label, 0.0) / n if n else 0.0

    def merge(self, other: "TimingRecord") -> None:
        for label, seconds in other.totals.items():
            self.totals[label] = self.totals.get(label, 0.0) + seconds
            self.counts[label] = self.counts.get(label, 0) + other.counts[label]

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed
