"""Legacy-VTK output of meshes and nodal fields.

Lets the examples dump solutions viewable in ParaView — the standard
workflow around the paper's kind of library.  Writes ASCII legacy ``.vtk``
unstructured grids (no external dependencies).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.mesh.element import ElementType
from repro.mesh.mesh import Mesh

__all__ = ["write_vtk"]

# legacy VTK cell type ids
_VTK_CELL = {
    ElementType.HEX8: 12,
    ElementType.HEX20: 25,
    ElementType.HEX27: 29,
    ElementType.TET4: 10,
    ElementType.TET10: 24,
}

# node-order permutation from our convention to VTK's
_VTK_ORDER = {
    ElementType.HEX8: list(range(8)),
    # VTK quadratic hexahedron: corners, bottom edges, top edges, vertical
    ElementType.HEX20: list(range(8))
    + [8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19],
    ElementType.HEX27: list(range(20)) + [25, 23, 22, 24, 20, 21, 26],
    ElementType.TET4: list(range(4)),
    ElementType.TET10: list(range(10)),
}


def write_vtk(
    path: str | pathlib.Path,
    mesh: Mesh,
    point_data: dict[str, np.ndarray] | None = None,
    cell_data: dict[str, np.ndarray] | None = None,
    title: str = "repro output",
) -> pathlib.Path:
    """Write ``mesh`` and optional nodal/cell fields as legacy VTK.

    ``point_data`` values may be scalars ``(n_nodes,)`` or vectors
    ``(n_nodes, 3)``; ``cell_data`` analogously per element.
    """
    path = pathlib.Path(path)
    perm = _VTK_ORDER[mesh.etype]
    n = mesh.etype.n_nodes
    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {mesh.n_nodes} double",
    ]
    lines.extend(
        " ".join(f"{v:.17g}" for v in row) for row in mesh.coords
    )
    lines.append(f"CELLS {mesh.n_elements} {mesh.n_elements * (n + 1)}")
    conn = mesh.conn[:, perm]
    lines.extend(
        f"{n} " + " ".join(str(int(v)) for v in row) for row in conn
    )
    lines.append(f"CELL_TYPES {mesh.n_elements}")
    lines.extend([str(_VTK_CELL[mesh.etype])] * mesh.n_elements)

    def _emit(data: dict[str, np.ndarray], count: int) -> None:
        for name, values in data.items():
            values = np.asarray(values, dtype=np.float64)
            if values.shape[0] != count:
                raise ValueError(
                    f"field {name!r} has {values.shape[0]} entries, "
                    f"expected {count}"
                )
            if values.ndim == 1:
                lines.append(f"SCALARS {name} double 1")
                lines.append("LOOKUP_TABLE default")
                lines.extend(f"{v:.17g}" for v in values)
            elif values.ndim == 2 and values.shape[1] == 3:
                lines.append(f"VECTORS {name} double")
                lines.extend(
                    " ".join(f"{v:.17g}" for v in row) for row in values
                )
            else:
                raise ValueError(
                    f"field {name!r} must be (n,) or (n, 3), got "
                    f"{values.shape}"
                )

    if point_data:
        lines.append(f"POINT_DATA {mesh.n_nodes}")
        _emit(point_data, mesh.n_nodes)
    if cell_data:
        lines.append(f"CELL_DATA {mesh.n_elements}")
        _emit(cell_data, mesh.n_elements)

    path.write_text("\n".join(lines) + "\n")
    return path
