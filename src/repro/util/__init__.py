"""Shared utilities: timing, tables, array helpers, deterministic RNG."""

from repro.util.arrays import (
    INDEX_DTYPE,
    as_f64,
    as_index,
    scatter_add,
)
from repro.util.tables import ResultTable
from repro.util.timer import Timer, TimingRecord

__all__ = [
    "Timer",
    "TimingRecord",
    "ResultTable",
    "as_f64",
    "as_index",
    "scatter_add",
    "INDEX_DTYPE",
]
