"""Plain-text result tables used by the experiment harness.

Every figure/table reproduction renders its series through
:class:`ResultTable` so that ``python -m repro.harness`` and the benchmark
suite emit a uniform, diff-friendly format that maps 1:1 onto the rows the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0.0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


@dataclass
class ResultTable:
    """A titled table of rows with named columns."""

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """Return a column by name."""
        j = list(self.columns).index(name)
        return [row[j] for row in self.rows]

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[j]) for r in cells)) if cells else len(str(c))
            for j, c in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        body = [
            " | ".join(r[j].rjust(widths[j]) for j in range(len(widths)))
            for r in cells
        ]
        lines = [f"== {self.title} ==", header, sep, *body]
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_many(tables: Iterable[ResultTable]) -> str:
    return "\n\n".join(t.render() for t in tables)
