"""Per-rank communicator: nonblocking point-to-point, collectives, and
virtual-time accounting.

The API deliberately mirrors the mpi4py idioms used in distributed FEM
codes (``isend``/``irecv``/``waitall``, ``allreduce``, ``alltoall``) so the
HYMV algorithms read like their C++/MPI counterparts in the paper.

Every communicator owns an :class:`repro.obs.Instrumentation`: compute
sections and modeled advances record dotted phases, point-to-point calls
count per-message bytes and wait time, and — with ``Simulator(trace=True)``
— each interval lands on the structured event stream that
:func:`repro.simmpi.trace.render_gantt` renders.  ``comm.timing`` is the
same object (the instrumentation implements the legacy ``TimingRecord``
API), so existing call sites keep working.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.faults.plan import MessageLostError, corrupt_array, payload_checksum
from repro.obs.instrumentation import Instrumentation
from repro.simmpi.network import NetworkModel

__all__ = ["Communicator", "Request"]


class _Aborted(RuntimeError):
    """Raised inside rank threads when a sibling rank failed."""


def _nbytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, np.floating, np.integer)):
        return 8
    # container of arrays / generic object: rough estimate
    if isinstance(payload, (list, tuple)):
        return sum(_nbytes(x) for x in payload) + 16
    return 64


@dataclass
class _Message:
    payload: Any
    arrival_vtime: float
    seq: int = 0
    checksum: int | None = None
    drops: int = 0  # injected transmission losses the receiver must absorb


@dataclass
class Request:
    """Handle for a nonblocking operation."""

    kind: str  # "send" | "recv"
    peer: int
    tag: int
    complete_vtime: float = 0.0
    payload: Any = None
    done: bool = False
    seq: int = 0


class _Mailbox:
    """Thread-safe per-rank mailbox with (source, tag, seq) matching.

    Messages carry per-edge sequence numbers, so matching is immune to
    physical delivery order: a :class:`repro.faults.plan.Reorder` fault
    may enqueue a message at the *front* of its queue, and receives still
    complete in posted order (MPI's non-overtaking guarantee, restored at
    the receiver).
    """

    def __init__(self, abort: threading.Event) -> None:
        self._abort = abort
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, int], deque[_Message]] = {}

    def put(
        self, source: int, tag: int, msg: _Message, front: bool = False
    ) -> None:
        with self._cond:
            q = self._queues.setdefault((source, tag), deque())
            if front:
                q.appendleft(msg)
            else:
                q.append(msg)
            self._cond.notify_all()

    def get(self, source: int, tag: int, seq: int) -> _Message:
        key = (source, tag)
        with self._cond:
            while True:
                q = self._queues.get(key)
                if q:
                    for i, msg in enumerate(q):
                        if msg.seq == seq:
                            del q[i]
                            return msg
                if self._abort.is_set():
                    raise _Aborted()
                self._cond.wait(timeout=0.05)

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def empty(self) -> bool:
        with self._cond:
            return all(not q for q in self._queues.values())


class Communicator:
    """One rank's endpoint into the simulated communicator.

    Created by :class:`repro.simmpi.engine.Simulator`; user code receives
    one per rank program.
    """

    def __init__(self, simulator, rank: int):
        self._sim = simulator
        self.rank = rank
        self.size = simulator.n_ranks
        self.vtime = 0.0
        #: unified observability registry: phases + counters + events
        self.obs = Instrumentation(
            rank=rank,
            clock=lambda: self.vtime,
            trace=bool(getattr(simulator, "trace_enabled", False)),
        )
        #: legacy alias — the instrumentation implements the old
        #: ``TimingRecord`` API (``add``/``total``/``mean``/``as_dict``)
        self.timing = self.obs
        self.network: NetworkModel = simulator.network
        #: bound fault injector (None on fault-free runs)
        self._faults = getattr(simulator, "faults", None)
        self._compute_factor = (
            self._faults.compute_factor(rank)
            if self._faults is not None
            else 1.0
        )
        # per-edge sequence counters for send/recv matching
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_seq: dict[tuple[int, int], int] = {}

    @property
    def faults_active(self) -> bool:
        """True when this run injects faults (enables detection hooks)."""
        return self._faults is not None

    @property
    def trace(self) -> list[tuple[str, float, float]]:
        """Traced ``(label, start, end)`` virtual-time intervals (legacy
        view over ``obs.events``)."""
        return [(e.label, e.t0, e.t1) for e in self.obs.events]

    def _trace(
        self, label: str, t0: float, t1: float, kind: str = "compute", **meta
    ) -> None:
        self.obs.event(label, t0, t1, kind=kind, **meta)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking (buffered/eager) send.  The payload is copied, so
        the caller may reuse its buffer immediately.

        With a bound :class:`~repro.faults.plan.FaultPlan` the message may
        be delayed, reordered, dropped (``drops`` attempts absorbed by the
        receiver's retry path) or corrupted in flight; every injection is
        counted under ``faults.*`` on the sender's instrumentation.
        """
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        nbytes = _nbytes(payload)
        self.obs.incr("comm.bytes_sent", nbytes)
        self.obs.incr("comm.msgs_sent")
        key = (dest, tag)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1

        checksum = None
        extra_delay = 0.0
        drops = 0
        front = False
        fi = self._faults
        if fi is not None:
            eff = fi.on_send(self.rank, dest, tag)
            if fi.checksums and isinstance(payload, np.ndarray):
                # checksummed before in-flight corruption is applied
                checksum = payload_checksum(payload)
            if eff.corrupt_mode is not None and isinstance(payload, np.ndarray):
                if corrupt_array(payload, eff.corrupt_mode, eff.corrupt_seed):
                    self.obs.incr("faults.corrupted")
            if eff.delay > 0.0:
                extra_delay = eff.delay
                self.obs.incr("faults.delayed")
                self.obs.incr("faults.delay_s", eff.delay)
            if eff.drops:
                drops = eff.drops
                self.obs.incr("faults.dropped", eff.drops)
            if eff.reorder:
                front = True
                self.obs.incr("faults.reordered")

        self.vtime += self.network.send_overhead
        arrival = (
            self.vtime
            + self.network.msg_time(self.rank, dest, nbytes)
            + extra_delay
        )
        self._sim.mailbox(dest).put(
            self.rank,
            tag,
            _Message(payload, arrival, seq=seq, checksum=checksum, drops=drops),
            front=front,
        )
        return Request(
            "send", dest, tag, complete_vtime=self.vtime, done=True, seq=seq
        )

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Nonblocking receive; the payload is available after ``wait``."""
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source rank {source}")
        key = (source, tag)
        seq = self._recv_seq.get(key, 0)
        self._recv_seq[key] = seq + 1
        return Request("recv", source, tag, seq=seq)

    def wait(self, req: Request) -> Any:
        """Complete one request; returns the payload for receives.

        Idempotent: waiting an already-completed request (including a
        second ``wait`` on the same handle) returns the cached payload
        without advancing the clock or double-counting bytes.
        """
        if req.done:
            return req.payload
        t0 = self.vtime
        msg = self._sim.mailbox(self.rank).get(req.peer, req.tag, req.seq)
        req.payload = msg.payload
        nbytes = _nbytes(req.payload)
        complete = max(self.vtime, msg.arrival_vtime)
        if msg.drops:
            complete = self._recover_dropped(req, msg, nbytes, complete)
        if msg.checksum is not None and isinstance(req.payload, np.ndarray):
            if payload_checksum(req.payload) != msg.checksum:
                self.obs.incr("faults.checksum_fail")
                self._trace(
                    f"fault.checksum<-{req.peer}",
                    t0,
                    complete,
                    kind="fault",
                    bytes=nbytes,
                )
        req.complete_vtime = complete
        req.done = True
        self.vtime = complete
        self.obs.incr("comm.bytes_recv", nbytes)
        self.obs.incr("comm.msgs_recv")
        self.obs.record("comm.wait", vtime=self.vtime - t0)
        self._trace(
            f"wait<-{req.peer}", t0, self.vtime, kind="wait", bytes=nbytes
        )
        return req.payload

    def _recover_dropped(
        self, req: Request, msg: _Message, nbytes: int, complete: float
    ) -> float:
        """Timeout + bounded-retry recovery of a dropped message.

        Each injected drop costs the receiver a modeled ``retry_timeout``
        (loss detection) plus one retransmission; past ``max_retries`` the
        message is declared lost and the rank fails.
        """
        fi = self._faults
        max_retries = fi.max_retries if fi is not None else 0
        if msg.drops >= max_retries:
            raise MessageLostError(
                f"message {req.peer}->{self.rank} tag {req.tag} lost: "
                f"dropped {msg.drops}x, max_retries={max_retries}"
            )
        retry_cost = msg.drops * (
            fi.retry_timeout + self.network.msg_time(req.peer, self.rank, nbytes)
        )
        self.obs.incr("faults.retries", msg.drops)
        self._trace(
            f"fault.retry<-{req.peer}",
            complete,
            complete + retry_cost,
            kind="fault",
            retries=msg.drops,
        )
        return complete + retry_cost

    def waitall(self, reqs: list[Request]) -> list[Any]:
        """Complete all requests; the clock advances to the latest.

        Payloads come back in *request* order — sequence-numbered matching
        keeps this stable even when a fault plan reorders the physical
        delivery of same-edge messages.
        """
        return [self.wait(r) for r in reqs]

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        self.wait(self.isend(payload, dest, tag))

    def recv(self, source: int, tag: int = 0) -> Any:
        return self.wait(self.irecv(source, tag))

    # ------------------------------------------------------------------
    # collectives (deterministic reduction order)
    # ------------------------------------------------------------------

    def barrier(self) -> None:
        times = self._sim.exchange(self.rank, self.vtime)
        self.vtime = max(times) + self.network.barrier_time(self.size)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Allreduce of a scalar or ndarray, reduced in rank order."""
        entries = self._sim.exchange(self.rank, (self.vtime, value))
        tmax = max(t for t, _ in entries)
        vals = [v for _, v in entries]
        result = _reduce(vals, op)
        self.vtime = tmax + self.network.allreduce_time(
            self.size, _nbytes(vals[0])
        )
        return result

    def allgather(self, value: Any) -> list[Any]:
        entries = self._sim.exchange(self.rank, (self.vtime, value))
        tmax = max(t for t, _ in entries)
        total = sum(_nbytes(v) for _, v in entries)
        self.vtime = tmax + self.network.allreduce_time(self.size, total)
        return [v for _, v in entries]

    def bcast(self, value: Any, root: int = 0) -> Any:
        entries = self._sim.exchange(self.rank, (self.vtime, value))
        tmax = max(t for t, _ in entries)
        self.vtime = tmax + self.network.allreduce_time(
            self.size, _nbytes(entries[root][1])
        )
        return entries[root][1]

    def alltoall(self, per_dest: list[Any]) -> list[Any]:
        """Personalized all-to-all: entry ``d`` goes to rank ``d``."""
        if len(per_dest) != self.size:
            raise ValueError("alltoall needs one entry per rank")
        entries = self._sim.exchange(self.rank, (self.vtime, per_dest))
        tmax = max(t for t, _ in entries)
        received = [v[self.rank] for _, v in entries]
        total = sum(_nbytes(v) for v in received) + sum(
            _nbytes(v) for v in per_dest
        )
        self.vtime = tmax + self.network.allreduce_time(self.size, total)
        return received

    # ------------------------------------------------------------------
    # compute accounting
    # ------------------------------------------------------------------

    @contextmanager
    def compute(self, label: str = "compute"):
        """Measure the enclosed local compute and advance the clock.

        Durations are measured with per-thread CPU time
        (``time.thread_time``), so concurrent sibling rank threads do not
        pollute each other's measurements.  The measured time is scaled by
        the simulator's ``compute_scale`` before advancing virtual time.
        """
        t0 = time.thread_time()
        w0 = time.perf_counter()
        v0 = self.vtime
        try:
            yield self
        finally:
            dt = (time.thread_time() - t0) * self._sim.compute_scale
            if self._compute_factor != 1.0:
                self.obs.incr(
                    "faults.straggler_s", dt * (self._compute_factor - 1.0)
                )
                dt *= self._compute_factor
            self.vtime += dt
            # the virtual-time delta includes nested modeled advances, so
            # hierarchical phases stay meaningful under compute_scale=0
            self.obs.record(
                label, vtime=self.vtime - v0, wall=time.perf_counter() - w0
            )
            self._trace(label, v0, self.vtime)

    def advance(self, seconds: float, label: str = "modeled") -> None:
        """Advance virtual time by a modeled (not measured) duration.

        Modeled durations represent rank-local compute/device work, so a
        :class:`~repro.faults.plan.Straggler` rule scales them too.
        """
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        if self._compute_factor != 1.0:
            self.obs.incr(
                "faults.straggler_s", seconds * (self._compute_factor - 1.0)
            )
            seconds *= self._compute_factor
        v0 = self.vtime
        self.vtime += seconds
        self.obs.record(label, vtime=seconds)
        self._trace(label, v0, self.vtime, kind="modeled")


def _reduce(vals: list[Any], op: str) -> Any:
    if op == "sum":
        out = vals[0]
        if isinstance(out, np.ndarray):
            out = out.copy()
        for v in vals[1:]:
            out = out + v
        return out
    if op == "max":
        out = vals[0]
        for v in vals[1:]:
            out = np.maximum(out, v) if isinstance(out, np.ndarray) else max(out, v)
        return out
    if op == "min":
        out = vals[0]
        for v in vals[1:]:
            out = np.minimum(out, v) if isinstance(out, np.ndarray) else min(out, v)
        return out
    raise ValueError(f"unknown reduction op {op!r}")
