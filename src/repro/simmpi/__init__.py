"""Deterministic in-process MPI runtime (the distributed-memory substitute).

The paper runs MPI on TACC Frontera.  This package provides an mpi4py-like
API whose ranks run as threads inside one process:

* **Real data movement** — ``isend``/``irecv`` transfer actual NumPy
  payloads between rank mailboxes, so every distributed algorithm in the
  library is exercised end-to-end and checked bitwise against serial
  references.
* **Virtual time** — every rank carries a virtual clock advanced by
  (a) *measured* wall time of its local NumPy compute (serialized under a
  global lock so measurements are honest on any host), and (b) *modeled*
  communication costs from an α–β :class:`~repro.simmpi.network.NetworkModel`
  that distinguishes intra-node from inter-node links.  Message completion
  respects true dependencies (a receive cannot complete before the matching
  send was posted plus transfer time), which is exactly what makes
  communication/computation overlap measurable — the paper's Alg. 2.

The scaling *shape* experiments use these virtual clocks; correctness tests
use the payloads.

A bound :class:`repro.faults.plan.FaultPlan` (``Simulator(...,
faults=plan)``) injects deterministic message/compute faults — delays,
reordering, drop+retry, stragglers, in-flight corruption with optional
payload checksums — for the chaos suite in :mod:`repro.faults`.
"""

from repro.simmpi.communicator import Communicator, Request
from repro.simmpi.engine import Simulator, run_spmd
from repro.simmpi.network import NetworkModel

__all__ = ["NetworkModel", "Simulator", "run_spmd", "Communicator", "Request"]
