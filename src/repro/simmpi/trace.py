"""Virtual-time trace rendering: per-rank Gantt charts.

With ``Simulator(trace=True)`` every compute section, modeled advance and
blocking wait records a ``(label, start, end)`` interval; this module
renders them as an ASCII Gantt per rank — the distributed analogue of the
Fig. 3 device timeline, showing where each rank spends its virtual time
(EMV sweeps vs scatter waits vs gathers).
"""

from __future__ import annotations

from repro.simmpi.communicator import Communicator

__all__ = ["render_gantt"]

# label prefix -> glyph; matched longest-prefix-first so that a specific
# entry (``spmv.emv``) is never shadowed by a generic one (``spmv``)
# regardless of the table's textual order
_GLYPHS = [
    ("spmv.emv", "E"),
    ("spmv.scatter.wait", "w"),
    ("setup", "S"),
    ("wait", "w"),
    ("spmv", "c"),
    ("update", "U"),
    ("precond", "P"),
    ("fault", "F"),
]
_GLYPHS_BY_LENGTH = sorted(_GLYPHS, key=lambda e: len(e[0]), reverse=True)


def _glyph(label: str) -> str:
    for prefix, g in _GLYPHS_BY_LENGTH:
        if label.startswith(prefix):
            return g
    return "*"


def render_gantt(
    comms: list[Communicator],
    width: int = 72,
    t_max: float | None = None,
) -> str:
    """Render the traced intervals of all ranks as one Gantt chart.

    Returns a string with one lane per rank plus a legend.  ``t_max``
    truncates/expands the horizontal axis (defaults to the latest traced
    end time).
    """
    if t_max is None:
        t_max = max(
            (t1 for c in comms for _, _, t1 in c.trace), default=0.0
        )
    if t_max <= 0:
        return "(no traced intervals — run with Simulator(trace=True))"
    lanes = []
    for c in comms:
        row = [" "] * width
        for label, t0, t1 in c.trace:
            a = int(min(t0, t_max) / t_max * (width - 1))
            b = max(int(min(t1, t_max) / t_max * (width - 1)), a + 1)
            g = _glyph(label)
            for i in range(a, min(b, width)):
                row[i] = g
        lanes.append(f"rank {c.rank:3d} |" + "".join(row) + "|")
    legend = (
        "S=setup  E=EMV sweep  w=blocking wait  c=other spmv  "
        "U=update  P=precond  F=fault  *=other"
    )
    scale = f"0 {'-' * (width - 12)} {t_max * 1e3:.3f} ms"
    return "\n".join([*lanes, scale, legend])
