"""Multi-service simulation wiring: a registry of named simulators.

One :class:`~repro.simmpi.engine.Simulator` models one machine.  The
sharded serving tier (:mod:`repro.serve.shard`) runs *many* persistent
simulators side by side — one per warm
:class:`~repro.serve.cache.SolverContext` on every shard — and needs an
aggregate view per logical node: how much virtual compute time did shard
``s2`` burn across all the contexts it ever held, including ones the LRU
cache has since evicted?

:class:`VirtualCluster` is that view.  It is deliberately passive: parts
of the system that create simulators :meth:`register` them under a node
name, and reporting code reads back summed busy time and communicator
counters.  Registration keeps a strong reference, so an evicted context's
history stays visible — the same whole-history convention
:class:`~repro.serve.cache.OperatorCache` uses for its retired counters.

Because every simulator advances its own virtual clock only while it
runs, the sum of ``max_vtime`` over a node's simulators *is* that node's
busy time under the serial-dispatch model the shard balancer enforces
(one in-flight batch per shard), which is what the per-shard utilization
numbers in ``SHARD_report.json`` are built from.
"""

from __future__ import annotations

from repro.simmpi.engine import Simulator

__all__ = ["VirtualCluster"]


class VirtualCluster:
    """Registry of named simulators for multi-service simulations."""

    def __init__(self) -> None:
        self._sims: dict[str, list[Simulator]] = {}

    def register(self, name: str, sim: Simulator) -> None:
        """Attach ``sim`` to logical node ``name`` (keeps a reference)."""
        self._sims.setdefault(name, []).append(sim)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._sims))

    def n_sims(self, name: str) -> int:
        return len(self._sims.get(name, ()))

    def busy_vtime(self, name: str) -> float:
        """Total virtual compute seconds burned on node ``name`` (summed
        final clocks of every simulator ever registered under it)."""
        return sum(s.max_vtime for s in self._sims.get(name, ()))

    def total_busy_vtime(self) -> float:
        return sum(self.busy_vtime(n) for n in self._sims)

    def counters(self, name: str) -> dict[str, float]:
        """Summed per-rank communicator counters of node ``name``."""
        out: dict[str, float] = {}
        for sim in self._sims.get(name, ()):
            for comm in sim.comms:
                for cname, val in comm.obs.counters.items():
                    out[cname] = out.get(cname, 0) + val
        return out
