"""α–β network cost model with node topology.

Defaults approximate Frontera's fabric (Mellanox HDR100 to the nodes:
~100 Gb/s, ~1–2 µs MPI latency) and 56-core Cascade Lake nodes, the
machine of every experiment in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Per-message cost ``alpha + n_bytes / beta``, topology-aware.

    Ranks are packed onto nodes in order: rank ``r`` lives on node
    ``r // cores_per_node``.
    """

    latency_intra: float = 0.6e-6  # s, shared-memory transport
    latency_inter: float = 2.0e-6  # s, network transport
    bandwidth_intra: float = 8.0e9  # B/s
    bandwidth_inter: float = 12.0e9  # B/s (HDR100 ≈ 100 Gb/s)
    cores_per_node: int = 56
    send_overhead: float = 0.2e-6  # s, CPU cost of posting a send

    def node_of(self, rank: int) -> int:
        return rank // self.cores_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def msg_time(self, src: int, dst: int, n_bytes: int) -> float:
        """Transfer time of one point-to-point message."""
        if self.same_node(src, dst):
            return self.latency_intra + n_bytes / self.bandwidth_intra
        return self.latency_inter + n_bytes / self.bandwidth_inter

    def allreduce_time(self, n_ranks: int, n_bytes: int) -> float:
        """Recursive-doubling allreduce estimate."""
        if n_ranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(n_ranks))
        return rounds * (self.latency_inter + n_bytes / self.bandwidth_inter)

    def barrier_time(self, n_ranks: int) -> float:
        if n_ranks <= 1:
            return 0.0
        return math.ceil(math.log2(n_ranks)) * self.latency_inter
