"""Thread-per-rank SPMD execution engine."""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.faults.plan import FaultPlan
from repro.simmpi.communicator import Communicator, _Aborted, _Mailbox
from repro.simmpi.network import NetworkModel

__all__ = ["Simulator", "run_spmd"]

MAX_RANKS = 256


class _Rendezvous:
    """Reusable all-ranks exchange point (the collective substrate)."""

    def __init__(self, n: int, abort: threading.Event) -> None:
        self._n = n
        self._abort = abort
        self._cond = threading.Condition()
        self._slots: list[Any] = [None] * n
        self._count = 0
        self._gen = 0
        self._result: list[Any] = []

    def exchange(self, rank: int, value: Any) -> list[Any]:
        with self._cond:
            gen = self._gen
            self._slots[rank] = value
            self._count += 1
            if self._count == self._n:
                self._result = list(self._slots)
                self._slots = [None] * self._n
                self._count = 0
                self._gen += 1
                self._cond.notify_all()
                return self._result
            while self._gen == gen:
                if self._abort.is_set():
                    raise _Aborted()
                self._cond.wait(timeout=0.05)
            return self._result

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()


class Simulator:
    """Runs an SPMD program on ``n_ranks`` simulated MPI ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (threads).  Bounded by ``MAX_RANKS``; paper-scale
        rank counts are handled by the analytic model in
        :mod:`repro.perfmodel`, not by emulation.
    network:
        Communication cost model (default: Frontera-like
        :class:`NetworkModel`).
    compute_scale:
        Factor applied to measured compute durations before advancing
        virtual clocks.  ``1.0`` reports this host's speed; the perfmodel
        calibration uses it to map onto Frontera core speeds.
    faults:
        Optional :class:`repro.faults.plan.FaultPlan`; when given, the
        plan is bound to this run and the communicators inject its
        message/compute faults (chaos testing).
    """

    def __init__(
        self,
        n_ranks: int,
        network: NetworkModel | None = None,
        compute_scale: float = 1.0,
        trace: bool = False,
        faults: FaultPlan | None = None,
    ):
        if not (1 <= n_ranks <= MAX_RANKS):
            raise ValueError(f"n_ranks must be in [1, {MAX_RANKS}]")
        self.n_ranks = n_ranks
        self.network = network or NetworkModel()
        self.compute_scale = compute_scale
        self.trace_enabled = trace
        #: bound per-run fault injector (None = fault-free)
        self.faults = faults.bind(n_ranks) if faults is not None else None
        self.compute_lock = threading.RLock()
        self.abort_event = threading.Event()
        self._mailboxes = [_Mailbox(self.abort_event) for _ in range(n_ranks)]
        self._rendezvous = _Rendezvous(n_ranks, self.abort_event)
        self.comms = [Communicator(self, r) for r in range(n_ranks)]

    def mailbox(self, rank: int) -> _Mailbox:
        return self._mailboxes[rank]

    def exchange(self, rank: int, value: Any) -> list[Any]:
        return self._rendezvous.exchange(rank, value)

    @property
    def vtimes(self) -> list[float]:
        """Per-rank virtual clocks (inspect after :meth:`run`)."""
        return [c.vtime for c in self.comms]

    @property
    def max_vtime(self) -> float:
        return max(self.vtimes)

    def _abort(self) -> None:
        self.abort_event.set()
        self._rendezvous.wake()
        for mb in self._mailboxes:
            mb.wake()

    def run(
        self,
        program: Callable[..., Any],
        rank_args: Sequence[tuple] | None = None,
        **shared_kwargs: Any,
    ) -> list[Any]:
        """Execute ``program(comm, *rank_args[r], **shared_kwargs)`` on
        every rank concurrently; returns per-rank results.

        Any rank exception aborts the whole run and is re-raised (first
        by rank order).  Leftover unreceived messages are a protocol
        error and raise.
        """
        results: list[Any] = [None] * self.n_ranks
        errors: list[BaseException | None] = [None] * self.n_ranks

        def runner(rank: int) -> None:
            args = rank_args[rank] if rank_args is not None else ()
            try:
                results[rank] = program(self.comms[rank], *args, **shared_kwargs)
            except _Aborted:
                pass  # killed because a peer failed
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[rank] = exc
                self._abort()

        if self.n_ranks == 1:
            runner(0)
        else:
            threads = [
                threading.Thread(target=runner, args=(r,), daemon=True)
                for r in range(self.n_ranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600.0)
                if t.is_alive():
                    self._abort()
                    raise RuntimeError(
                        "simulated rank deadlocked (600 s timeout)"
                    )
        for err in errors:
            if err is not None:
                raise err
        for r, mb in enumerate(self._mailboxes):
            if not mb.empty():
                raise RuntimeError(
                    f"rank {r} finished with unreceived messages "
                    "(mismatched send/recv protocol)"
                )
        return results


def run_spmd(
    n_ranks: int,
    program: Callable[..., Any],
    rank_args: Sequence[tuple] | None = None,
    network: NetworkModel | None = None,
    compute_scale: float = 1.0,
    trace: bool = False,
    faults: FaultPlan | None = None,
    **shared_kwargs: Any,
) -> tuple[list[Any], Simulator]:
    """Convenience wrapper: build a :class:`Simulator`, run, return
    ``(per-rank results, simulator)``."""
    sim = Simulator(
        n_ranks,
        network=network,
        compute_scale=compute_scale,
        trace=trace,
        faults=faults,
    )
    results = sim.run(program, rank_args=rank_args, **shared_kwargs)
    return results, sim
