"""Dirichlet-constrained systems at the solver level.

Builds the projected SPD system

    A_hat = P A P + (I - P),     b_hat = P (f - A u0) + (I - P) u0

whose solution equals the eliminated system's with the prescribed values
in place.  Works with any ``apply_owned`` operator, keeping the three SPMV
methods directly comparable under identical boundary conditions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["dirichlet_system"]

ApplyFn = Callable[[np.ndarray], np.ndarray]


def dirichlet_system(
    apply_A: ApplyFn,
    f: np.ndarray,
    u0: np.ndarray,
    constrained_mask: np.ndarray,
) -> tuple[ApplyFn, np.ndarray]:
    """Return ``(apply_A_hat, b_hat)`` for the constrained solve.

    Parameters
    ----------
    apply_A:
        Unconstrained operator on owned dof vectors.
    f:
        Owned right-hand side (load vector).
    u0:
        Owned prescribed values (zero on free dofs).
    constrained_mask:
        Boolean mask over owned dofs marking Dirichlet entries.

    The returned operator is SPD on the full space, and CG started from
    zero yields ``x`` with ``x[constrained] == u0[constrained]`` and the
    correct free-dof solution.
    """
    mask = np.asarray(constrained_mask, dtype=bool)
    f = np.asarray(f, dtype=np.float64)
    u0 = np.asarray(u0, dtype=np.float64)
    if mask.shape != f.shape or u0.shape != f.shape:
        raise ValueError("f, u0 and constrained_mask must share a shape")

    b_hat = f - apply_A(u0)
    b_hat[mask] = u0[mask]

    def apply_hat(x: np.ndarray) -> np.ndarray:
        xp = x.copy()
        xp[mask] = 0.0
        y = apply_A(xp)
        y[mask] = x[mask]
        return y

    return apply_hat, b_hat
