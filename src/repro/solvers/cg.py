"""Distributed preconditioned conjugate gradients.

Operates on owned-dof vectors; all inner products are distributed
reductions through the simulated communicator, and the operator
application internally performs the ghost exchange — the same division of
labour as PETSc's KSPCG over a MatShell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.simmpi.communicator import Communicator

__all__ = ["cg", "CGResult"]

ApplyFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class CGResult:
    """Outcome of a CG solve (per rank: ``x`` is the owned block)."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_relative_residual(self) -> float:
        if not self.residual_norms or self.residual_norms[0] == 0.0:
            return 0.0
        return self.residual_norms[-1] / self.residual_norms[0]


def cg(
    comm: Communicator,
    apply_A: ApplyFn,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    apply_M: ApplyFn | None = None,
    rtol: float = 1e-3,
    atol: float = 0.0,
    maxiter: int = 10000,
) -> CGResult:
    """Preconditioned CG on the distributed system ``A x = b``.

    Parameters
    ----------
    comm:
        Rank communicator (collective call).
    apply_A:
        SPD operator on owned dof vectors.
    b:
        Owned right-hand side.
    apply_M:
        Preconditioner application (``M ≈ A^-1``); identity if None.
    rtol:
        Relative tolerance on ``||r||_2 / ||r_0||_2`` (the paper solves to
        ``1e-3``).
    """

    def dot(u: np.ndarray, v: np.ndarray) -> float:
        return float(comm.allreduce(float(u @ v)))

    x = np.zeros_like(b) if x0 is None else x0.astype(np.float64).copy()
    r = b - apply_A(x) if x0 is not None else b.copy()
    z = apply_M(r) if apply_M is not None else r
    p = z.copy()
    rz = dot(r, z)
    r0 = np.sqrt(dot(r, r))
    norms = [r0]
    if r0 == 0.0:
        return CGResult(x, 0, True, norms)

    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        Ap = apply_A(p)
        pAp = dot(p, Ap)
        if pAp <= 0.0:
            raise RuntimeError(
                f"CG breakdown: p^T A p = {pAp:.3e} (operator not SPD?)"
            )
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        rn = np.sqrt(dot(r, r))
        norms.append(rn)
        if rn <= max(rtol * r0, atol):
            converged = True
            break
        z = apply_M(r) if apply_M is not None else r
        rz_new = dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return CGResult(x, it, converged, norms)
