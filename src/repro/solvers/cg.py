"""Distributed preconditioned conjugate gradients.

Operates on owned-dof vectors; all inner products are distributed
reductions through the simulated communicator, and the operator
application internally performs the ghost exchange — the same division of
labour as PETSc's KSPCG over a MatShell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.simmpi.communicator import Communicator

__all__ = ["cg", "CGResult"]

ApplyFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class CGResult:
    """Outcome of a CG solve (per rank: ``x`` is the owned block)."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_relative_residual(self) -> float:
        if not self.residual_norms or self.residual_norms[0] == 0.0:
            return 0.0
        return self.residual_norms[-1] / self.residual_norms[0]


def cg(
    comm: Communicator,
    apply_A: ApplyFn,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    apply_M: ApplyFn | None = None,
    rtol: float = 1e-3,
    atol: float = 0.0,
    maxiter: int = 10000,
) -> CGResult:
    """Preconditioned CG on the distributed system ``A x = b``.

    Parameters
    ----------
    comm:
        Rank communicator (collective call).
    apply_A:
        SPD operator on owned dof vectors.
    b:
        Owned right-hand side.
    apply_M:
        Preconditioner application (``M ≈ A^-1``); identity if None.
    rtol:
        Relative tolerance on ``||r||_2 / ||r_0||_2`` (the paper solves to
        ``1e-3``).
    """

    obs = comm.obs

    def dot(u: np.ndarray, v: np.ndarray) -> float:
        t = comm.vtime
        s = float(comm.allreduce(float(u @ v)))
        obs.record("solve.reduce", vtime=comm.vtime - t)
        return s

    def matvec(p: np.ndarray) -> np.ndarray:
        t = comm.vtime
        Ap = apply_A(p)
        obs.record("solve.spmv", vtime=comm.vtime - t)
        return Ap

    def precond(r: np.ndarray) -> np.ndarray:
        if apply_M is None:
            return r
        t = comm.vtime
        z = apply_M(r)
        obs.record("solve.precond", vtime=comm.vtime - t)
        return z

    t_solve = comm.vtime
    x = np.zeros_like(b) if x0 is None else x0.astype(np.float64).copy()
    r = b - matvec(x) if x0 is not None else b.copy()
    z = precond(r)
    p = z.copy()
    rz = dot(r, z)
    r0 = np.sqrt(dot(r, r))
    norms = [r0]
    if r0 == 0.0:
        return CGResult(x, 0, True, norms)

    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        Ap = matvec(p)
        pAp = dot(p, Ap)
        if pAp <= 0.0:
            raise RuntimeError(
                f"CG breakdown: p^T A p = {pAp:.3e} (operator not SPD?)"
            )
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        rn = np.sqrt(dot(r, r))
        norms.append(rn)
        if rn <= max(rtol * r0, atol):
            converged = True
            break
        z = precond(r)
        rz_new = dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    obs.incr("solve.iterations", it)
    obs.record("solve.cg", vtime=comm.vtime - t_solve)
    return CGResult(x, it, converged, norms)
