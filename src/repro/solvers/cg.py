"""Distributed preconditioned conjugate gradients.

Operates on owned-dof vectors; all inner products are distributed
reductions through the simulated communicator, and the operator
application internally performs the ghost exchange — the same division of
labour as PETSc's KSPCG over a MatShell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.simmpi.communicator import Communicator

__all__ = ["cg", "cg_multi", "CGResult", "ResilienceConfig"]

ApplyFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ResilienceConfig:
    """Breakdown detection + restart policy for :func:`cg`.

    When passed, every iteration reduces a fault flag across ranks (one
    extra scalar allreduce): non-finite ``p^T A p`` / residual norms,
    non-SPD breakdowns, and locally detected ghost corruption (the
    ``faults.checksum_fail`` / ``spmv.ghost_nonfinite`` counters) all
    trigger a collective restart from the last globally-clean iterate
    instead of diverging silently.  ``max_restarts`` bounds recovery; the
    solve fails loudly past it.
    """

    max_restarts: int = 3


@dataclass
class CGResult:
    """Outcome of a CG solve (per rank: ``x`` is the owned block)."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    restarts: int = 0

    @property
    def final_relative_residual(self) -> float:
        if not self.residual_norms or self.residual_norms[0] == 0.0:
            return 0.0
        return self.residual_norms[-1] / self.residual_norms[0]


def _fault_signals(obs) -> float:
    """Locally observed corruption indicators (monotonic counters)."""
    return obs.counter("faults.checksum_fail") + obs.counter(
        "spmv.ghost_nonfinite"
    )


def cg(
    comm: Communicator,
    apply_A: ApplyFn,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    apply_M: ApplyFn | None = None,
    rtol: float = 1e-3,
    atol: float = 0.0,
    maxiter: int = 10000,
    resilience: ResilienceConfig | None = None,
    fused: bool = True,
) -> CGResult:
    """Preconditioned CG on the distributed system ``A x = b``.

    Parameters
    ----------
    comm:
        Rank communicator (collective call).
    apply_A:
        SPD operator on owned dof vectors.
    b:
        Owned right-hand side.
    apply_M:
        Preconditioner application (``M ≈ A^-1``); identity if None.
        May optionally accept an ``out=`` keyword to apply in place.
    rtol:
        Relative tolerance on ``||r||_2 / ||r_0||_2`` (the paper solves to
        ``1e-3``).
    resilience:
        Optional :class:`ResilienceConfig` enabling breakdown detection
        and restart-from-last-good-iterate (chaos/fault-injection runs).
        ``None`` keeps the classic fail-fast behaviour bit-for-bit.
    fused:
        Use the fused-reduction iteration: the residual norm and the
        ``r·z`` dot product are shipped as a *single* allreduce of a
        2-vector per iteration (half the global synchronizations), with
        all solver vectors preallocated and updated in place.  Iterates
        are bitwise identical to the classic loop (the simulated
        allreduce reduces vectors elementwise in the same rank order as
        scalars, and the in-place axpy updates round identically).
        Ignored when ``resilience`` is active — the restart path keeps
        the classic, separately-guarded reductions.
    """

    obs = comm.obs
    detect = resilience is not None

    def dot(u: np.ndarray, v: np.ndarray) -> float:
        t = comm.vtime
        s = float(comm.allreduce(float(u @ v)))
        obs.record("solve.reduce", vtime=comm.vtime - t)
        return s

    def matvec(p: np.ndarray) -> np.ndarray:
        t = comm.vtime
        Ap = apply_A(p)
        obs.record("solve.spmv", vtime=comm.vtime - t)
        return Ap

    def precond(r: np.ndarray) -> np.ndarray:
        if apply_M is None:
            return r
        t = comm.vtime
        z = apply_M(r)
        obs.record("solve.precond", vtime=comm.vtime - t)
        return z

    if fused and not detect:
        return _cg_fused(
            comm, apply_A, b, x0, apply_M, rtol, atol, maxiter,
            dot=dot, matvec=matvec,
        )

    t_solve = comm.vtime
    x = np.zeros_like(b) if x0 is None else x0.astype(np.float64).copy()
    r = b - matvec(x) if x0 is not None else b.copy()
    z = precond(r)
    p = z.copy()
    rz = dot(r, z)
    r0 = np.sqrt(dot(r, r))
    norms = [r0]
    if r0 == 0.0:
        return CGResult(x, 0, True, norms)

    x_good = x.copy() if detect else None
    seen_faults = _fault_signals(obs) if detect else 0.0
    restarts = 0
    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        Ap = matvec(p)
        pAp = dot(p, Ap)
        if detect:
            broken = (not np.isfinite(pAp)) or pAp <= 0.0
            if not broken:
                alpha = rz / pAp
                x += alpha * p
                r -= alpha * Ap
                rn = np.sqrt(dot(r, r))
                broken = not np.isfinite(rn)
            faulted = _fault_signals(obs) > seen_faults
            flag = comm.allreduce(1.0 if (broken or faulted) else 0.0, op="max")
            if flag > 0.0:
                # collective rollback: every rank restores the last iterate
                # that completed without breakdowns or detected corruption,
                # then rebuilds the Krylov state from a fresh residual
                seen_faults = _fault_signals(obs)
                restarts += 1
                obs.incr("solve.breakdowns")
                if restarts > resilience.max_restarts:
                    raise RuntimeError(
                        "CG: breakdown/corruption persisted beyond "
                        f"max_restarts={resilience.max_restarts}"
                    )
                obs.incr("solve.restarts")
                t_r = comm.vtime
                x = x_good.copy()
                r = b - matvec(x)
                z = precond(r)
                p = z.copy()
                rz = dot(r, z)
                obs.record("solve.restart", vtime=comm.vtime - t_r)
                continue
            x_good = x.copy()
        else:
            if pAp <= 0.0:
                raise RuntimeError(
                    f"CG breakdown: p^T A p = {pAp:.3e} (operator not SPD?)"
                )
            alpha = rz / pAp
            x += alpha * p
            r -= alpha * Ap
            rn = np.sqrt(dot(r, r))
        norms.append(rn)
        if rn <= max(rtol * r0, atol):
            converged = True
            break
        z = precond(r)
        rz_new = dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    obs.incr("solve.iterations", it)
    obs.record("solve.cg", vtime=comm.vtime - t_solve)
    return CGResult(x, it, converged, norms, restarts=restarts)


def _cg_fused(
    comm: Communicator,
    apply_A: ApplyFn,
    b: np.ndarray,
    x0: np.ndarray | None,
    apply_M: ApplyFn | None,
    rtol: float,
    atol: float,
    maxiter: int,
    dot: Callable[[np.ndarray, np.ndarray], float],
    matvec: ApplyFn,
) -> CGResult:
    """Fused-reduction CG iteration (no resilience).

    One allreduce of ``[r·r, r·z]`` per iteration instead of two scalar
    reductions, preallocated axpy scratch, in-place direction update.
    Bitwise identical iterates to the classic loop; the preconditioner
    is applied *before* the convergence check (its value is discarded on
    the final iteration), which does not change any iterate.
    """
    obs = comm.obs
    t_solve = comm.vtime
    x = np.zeros_like(b) if x0 is None else x0.astype(np.float64).copy()
    r = b - matvec(x) if x0 is not None else b.copy()

    zbuf = np.empty_like(b) if apply_M is not None else None
    use_out = apply_M is not None  # downgraded on first TypeError

    def precond(r: np.ndarray) -> np.ndarray:
        nonlocal use_out
        if apply_M is None:
            return r
        t = comm.vtime
        if use_out:
            try:
                z = apply_M(r, out=zbuf)
            except TypeError:
                use_out = False
                z = apply_M(r)
        else:
            z = apply_M(r)
        obs.record("solve.precond", vtime=comm.vtime - t)
        return z

    z = precond(r)
    p = z.copy()
    rz = dot(r, z)
    r0 = np.sqrt(dot(r, r))
    norms = [r0]
    if r0 == 0.0:
        return CGResult(x, 0, True, norms)

    w = np.empty_like(b)  # axpy scratch (alpha*p, then alpha*Ap)
    pair = np.empty(2)  # fused-reduction payload [r.r, r.z]
    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        Ap = matvec(p)
        pAp = dot(p, Ap)
        if pAp <= 0.0:
            raise RuntimeError(
                f"CG breakdown: p^T A p = {pAp:.3e} (operator not SPD?)"
            )
        alpha = rz / pAp
        np.multiply(p, alpha, out=w)
        x += w
        np.multiply(Ap, alpha, out=w)
        r -= w
        z = precond(r)
        pair[0] = r @ r
        pair[1] = r @ z
        t = comm.vtime
        red = comm.allreduce(pair)
        obs.record("solve.reduce", vtime=comm.vtime - t)
        rn = float(np.sqrt(red[0]))
        norms.append(rn)
        if rn <= max(rtol * r0, atol):
            converged = True
            break
        rz_new = float(red[1])
        beta = rz_new / rz
        rz = rz_new
        # p = z + beta*p in place (IEEE addition commutes bitwise)
        p *= beta
        p += z
    obs.incr("solve.iterations", it)
    obs.record("solve.cg", vtime=comm.vtime - t_solve)
    return CGResult(x, it, converged, norms)


def _col(A: np.ndarray, j: int) -> np.ndarray:
    """Contiguous copy of column ``j`` — dots must run on contiguous
    operands so BLAS picks the same accumulation path as the single-RHS
    loop (strided ddot kernels may sum in a different order)."""
    return np.ascontiguousarray(A[:, j])


def cg_multi(
    comm: Communicator,
    apply_A: Callable[[np.ndarray], np.ndarray],
    B: np.ndarray,
    x0: np.ndarray | None = None,
    apply_M: ApplyFn | None = None,
    rtol: float = 1e-3,
    atol: float = 0.0,
    maxiter: int = 10000,
    mode: str | None = None,
) -> list[CGResult]:
    """Blocked multi-RHS CG: solve ``A X = B`` for all ``k`` columns of
    ``B`` at once, advancing the ``k`` independent Krylov iterations in
    lock-step.

    With the default/oracle execution, column ``j`` of the result is
    **bitwise identical** to ``cg(comm, ..., B[:, j], fused=True)``: each
    column's arithmetic is the exact fused-loop sequence (same in-place
    axpy updates, same contiguous dot operands), the columns never mix
    numerically, and a converged column is frozen — never touched again —
    just as its single-RHS solve would have stopped.  What *is* batched
    is the synchronization: each iteration ships ONE allreduce of a
    ``k``-vector of ``p·Ap`` values and one of the fused ``[r·r, r·z]``
    pairs, where ``k`` sequential solves would ship ``2 k`` — the
    elementwise vector reduction reduces every slot in the same rank
    order as a scalar, so the reduced values carry the single-RHS bits.
    With the batched SPMV (``apply_owned_multi``) as ``apply_A`` this is
    the serve layer's latency story: global synchronizations per
    iteration drop k-fold.

    ``mode`` (``"oracle"`` | ``"gemm"`` | ``"auto"``) is forwarded to
    ``apply_A`` as a keyword on every matvec, selecting the multi-RHS
    execution mode of operators that support it; ``None`` (the default)
    calls ``apply_A(P)`` unchanged, so plain closures keep working.
    Under a resolved ``"gemm"`` the per-column bitwise identity above is
    relaxed to rounding-level equivalence (the BLAS3 elemental stage
    reorders accumulation, see
    :func:`repro.core.kernels.gemm_equivalence_rtol`); CG convergence
    behaviour is unaffected beyond the usual last-ulp iterate drift.

    Returns one :class:`CGResult` per column.
    """
    obs = comm.obs
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"expected (n, k) multivector RHS, got shape {B.shape}")
    n, k = B.shape
    t_solve = comm.vtime

    def matvec(P: np.ndarray) -> np.ndarray:
        t = comm.vtime
        AP = apply_A(P) if mode is None else apply_A(P, mode=mode)
        obs.record("solve.spmv", vtime=comm.vtime - t)
        return AP

    def reduce_vec(payload: np.ndarray) -> np.ndarray:
        t = comm.vtime
        out = comm.allreduce(payload)
        obs.record("solve.reduce", vtime=comm.vtime - t)
        return np.asarray(out)

    X = np.zeros_like(B) if x0 is None else np.asarray(
        x0, dtype=np.float64
    ).reshape(n, k).copy()
    R = B - matvec(X) if x0 is not None else B.copy()
    Z = R if apply_M is None else np.empty_like(B)
    active = np.ones(k, dtype=bool)

    def precond_into() -> None:
        if apply_M is None:
            return
        t = comm.vtime
        for j in range(k):
            if active[j]:
                Z[:, j] = apply_M(_col(R, j))
        obs.record("solve.precond", vtime=comm.vtime - t)

    precond_into()
    P = Z.copy()
    payload = np.zeros(k)
    for j in range(k):
        payload[j] = float(_col(R, j) @ _col(Z, j))
    rz = reduce_vec(payload.copy())
    for j in range(k):
        payload[j] = float(_col(R, j) @ _col(R, j))
    r0 = np.sqrt(reduce_vec(payload.copy()))
    norms = [[float(r0[j])] for j in range(k)]
    iters = [0] * k
    conv = [False] * k
    for j in range(k):
        if r0[j] == 0.0:
            active[j] = False
            conv[j] = True

    w = np.empty(n)  # axpy scratch, shared across columns
    pair = np.empty(2 * k)  # fused payload: [r·r, r·z] per column
    it = 0
    while bool(active.any()) and it < maxiter:
        it += 1
        AP = matvec(P)
        payload[:] = 0.0
        for j in range(k):
            if active[j]:
                payload[j] = float(_col(P, j) @ _col(AP, j))
        pAp = reduce_vec(payload.copy())
        for j in range(k):
            if active[j] and pAp[j] <= 0.0:
                raise RuntimeError(
                    f"CG breakdown: p^T A p = {pAp[j]:.3e} (operator not SPD?)"
                )
        for j in range(k):
            if not active[j]:
                continue
            alpha = float(rz[j]) / float(pAp[j])
            np.multiply(P[:, j], alpha, out=w)
            X[:, j] += w
            np.multiply(AP[:, j], alpha, out=w)
            R[:, j] -= w
        precond_into()
        pair[:] = 0.0
        for j in range(k):
            if active[j]:
                pair[2 * j] = float(_col(R, j) @ _col(R, j))
                pair[2 * j + 1] = float(_col(R, j) @ _col(Z, j))
        red = reduce_vec(pair.copy())
        for j in range(k):
            if not active[j]:
                continue
            rn = float(np.sqrt(red[2 * j]))
            norms[j].append(rn)
            iters[j] = it
            if rn <= max(rtol * float(r0[j]), atol):
                conv[j] = True
                active[j] = False
                continue
            rz_new = float(red[2 * j + 1])
            beta = rz_new / float(rz[j])
            rz[j] = rz_new
            P[:, j] *= beta
            P[:, j] += Z[:, j]
    obs.incr("solve.iterations", sum(iters))
    obs.incr("solve.mrhs_columns", k)
    obs.record("solve.cg", vtime=comm.vtime - t_solve)
    return [
        CGResult(np.ascontiguousarray(X[:, j]), iters[j], conv[j], norms[j])
        for j in range(k)
    ]
