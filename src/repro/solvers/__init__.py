"""Distributed iterative solvers and preconditioners.

The paper integrates HYMV into PETSc's CG through the MatShell interface;
here the equivalent is :func:`repro.solvers.cg.cg`, which consumes any
object exposing ``apply_owned`` (HYMV, matrix-free, assembled, and the GPU
variants all do).  Preconditioners: Jacobi (exact assembled diagonal) and
block Jacobi (owned diagonal block factorized with SuperLU).
"""

from repro.solvers.cg import CGResult, ResilienceConfig, cg
from repro.solvers.constrained import dirichlet_system
from repro.solvers.preconditioners import (
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
)

__all__ = [
    "cg",
    "CGResult",
    "ResilienceConfig",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "dirichlet_system",
]
