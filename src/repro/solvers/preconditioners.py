"""Preconditioners (paper §V-F).

* Jacobi — exact assembled diagonal (identical operator ⇒ identical
  iteration counts for HYMV and the assembled baseline).
* Block Jacobi — the rank's owned diagonal block, factorized once with
  SuperLU and applied by triangular solves.  HYMV assembles its block from
  local elements (paper: "HYMV needs to assemble the diagonal block
  matrix"); the assembled baseline extracts the exact block from its CSR,
  so iteration counts may differ slightly between the two — as they do
  between the real codes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = [
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
]


class IdentityPreconditioner:
    """No preconditioning."""

    def __call__(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            return r.copy()
        np.copyto(out, r)
        return out

    setup_flops = 0.0
    apply_flops = 0.0


class JacobiPreconditioner:
    """Diagonal scaling ``z = r / diag(A)``."""

    def __init__(self, diagonal: np.ndarray):
        diagonal = np.asarray(diagonal, dtype=np.float64)
        if (diagonal <= 0.0).any():
            raise ValueError(
                "Jacobi preconditioner requires a positive diagonal"
            )
        self._inv = 1.0 / diagonal
        self.setup_flops = float(diagonal.size)
        self.apply_flops = float(diagonal.size)

    def __call__(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            return r * self._inv
        np.multiply(r, self._inv, out=out)
        return out


class BlockJacobiPreconditioner:
    """Per-rank owned-block solve ``z = B^-1 r`` via sparse LU."""

    def __init__(self, block: sp.spmatrix):
        block = block.tocsc()
        if block.shape[0] != block.shape[1]:
            raise ValueError("block must be square")
        self._lu = spla.splu(block)
        self.n = block.shape[0]
        self.setup_flops = 2.0 * block.nnz * 10.0  # rough LU estimate
        self.apply_flops = 4.0 * block.nnz

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self._lu.solve(r)
